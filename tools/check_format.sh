#!/usr/bin/env bash
# Enforcing format gate: whitespace and encoding invariants that hold
# across the whole tree. clang-format style is checked separately (and
# non-blocking, until .clang-format is validated against a real
# binary); this script is the part of the format contract that must
# never regress.
set -u
cd "$(dirname "$0")/.."

fail=0

code_sources() {
    git ls-files -z -- '*.cc' '*.hh' '*.cpp' '*.asim' '*.yml' '*.sh' \
        '*.cmake' 'CMakeLists.txt' '.clang-format' '.editorconfig' \
        '.gitignore'
}

all_sources() {
    code_sources
    git ls-files -z -- '*.md'
}

# 1. No hard tabs in code (markdown may quote tab-indented excerpts).
if code_sources | xargs -0 -r grep -l -P '\t' | grep .; then
    echo "error: hard tabs found in the files above" >&2
    fail=1
fi

# 2. No trailing whitespace.
if all_sources | xargs -0 -r grep -l -P '[ \t]+$' | grep .; then
    echo "error: trailing whitespace found in the files above" >&2
    fail=1
fi

# 3. No CRLF line endings.
if all_sources | xargs -0 -r grep -l -P '\r' | grep .; then
    echo "error: CRLF line endings found in the files above" >&2
    fail=1
fi

# 4. Every file ends with a final newline.
while IFS= read -r -d '' f; do
    [ -s "$f" ] || continue
    if [ -n "$(tail -c 1 "$f")" ]; then
        echo "error: $f does not end with a newline" >&2
        fail=1
    fi
done < <(all_sources)

if [ "$fail" -eq 0 ]; then
    echo "format check OK"
fi
exit "$fail"
