#!/usr/bin/env python3
"""Diff Google-Benchmark JSON artifacts against BENCH_baseline.json.

CI's Release legs run bench_engines / bench_batch and call this to
compare their JSON output with the committed baseline (closing the
ROADMAP note that artifacts existed but nothing diffed them). The
comparison is *relative*: for each benchmark name present in both
files, the primary metric (items_per_second when present, else
real_time) is compared against the baseline with a tolerance, and a
per-benchmark Markdown table is written to --output and, when the
environment provides it, appended to $GITHUB_STEP_SUMMARY.

Exit status: 0 when no benchmark regressed beyond tolerance, 1
otherwise (the CI step is advisory via continue-on-error, so a red
mark is a reviewer signal, not a merge blocker). Benchmarks present
only on one side are reported as `new` / `missing` and never fail
the check — CI hosts and the baseline machine differ, fleets evolve.

Per-benchmark tolerances: --overrides points at a JSON object mapping
a benchmark name (exact match) to its own tolerance, overriding
--tolerance for that row. The committed tools/bench_tolerances.json
records the noisy benchmarks' slack in-repo so CI and local runs
agree on what counts as a regression.

Usage:
    tools/check_bench.py --baseline BENCH_baseline.json \
        [--tolerance 0.5] [--overrides tools/bench_tolerances.json] \
        [--output report.md] current.json...
"""

import argparse
import json
import os
import sys


def load_benchmarks(path):
    """name -> (metric_value, metric_name); aggregates are skipped."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        if not name:
            continue
        if "items_per_second" in b:
            out[name] = (float(b["items_per_second"]),
                         "items_per_second")
        elif "real_time" in b:
            out[name] = (float(b["real_time"]), "real_time")
    return out


def compare(baseline, current, tolerance, overrides=None):
    """Yield (name, base, cur, ratio, status) rows for the benchmarks
    in `current`, sorted by name. (The baseline may merge several
    bench binaries; names it alone holds are reported separately,
    once, against the union of all current files.)

    ratio is current/baseline oriented so that > 1 is better (the
    reciprocal is taken for time-based metrics). `overrides` maps a
    benchmark name to its own tolerance.
    """
    rows = []
    overrides = overrides or {}
    for name in sorted(current):
        cur, metric = current[name]
        if name not in baseline:
            rows.append((name, None, cur, None, "new"))
            continue
        base, _ = baseline[name]
        if base <= 0 or cur <= 0:
            rows.append((name, base, cur, None, "n/a"))
            continue
        ratio = cur / base
        if metric == "real_time":
            ratio = 1.0 / ratio  # smaller time is better
        tol = overrides.get(name, tolerance)
        status = "REGRESSION" if ratio < 1.0 - tol else "ok"
        rows.append((name, base, cur, ratio, status))
    return rows


def fmt(v):
    if v is None:
        return "-"
    if v >= 1e6:
        return f"{v:.3g}"
    return f"{v:.4g}"


def render(title, rows, tolerance):
    lines = [f"### Bench vs baseline: {title}", ""]
    lines.append(f"Tolerance: worse than {tolerance:.0%} below "
                 "baseline flags a regression. Ratios > 1 are "
                 "faster than baseline.")
    lines.append("")
    lines.append("| benchmark | baseline | current | ratio | "
                 "status |")
    lines.append("| --- | ---: | ---: | ---: | --- |")
    for name, base, cur, ratio, status in rows:
        mark = {"REGRESSION": "❌", "ok": "✅"}.get(status, "➖")
        r = "-" if ratio is None else f"{ratio:.2f}x"
        lines.append(f"| `{name}` | {fmt(base)} | {fmt(cur)} | {r} "
                     f"| {mark} {status} |")
    lines.append("")
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="committed reference JSON")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="allowed relative shortfall before a "
                    "benchmark counts as regressed (default 0.5: "
                    "flag only when < 50%% of baseline — CI hosts "
                    "and the baseline machine differ)")
    ap.add_argument("--overrides",
                    help="JSON object of per-benchmark tolerances "
                    "(see tools/bench_tolerances.json)")
    ap.add_argument("--output", help="write the Markdown report here")
    ap.add_argument("current", nargs="+",
                    help="Google-Benchmark JSON files to compare")
    args = ap.parse_args()

    overrides = {}
    if args.overrides:
        try:
            with open(args.overrides) as f:
                overrides = json.load(f)
        except (OSError, ValueError) as e:
            print(f"cannot read overrides {args.overrides}: {e}",
                  file=sys.stderr)
            return 2
        if not isinstance(overrides, dict) or not all(
                isinstance(v, (int, float))
                for v in overrides.values()):
            print(f"{args.overrides}: want an object of "
                  "name -> tolerance", file=sys.stderr)
            return 2

    try:
        baseline = load_benchmarks(args.baseline)
    except (OSError, ValueError) as e:
        print(f"cannot read baseline {args.baseline}: {e}",
              file=sys.stderr)
        return 2
    if not baseline:
        print(f"baseline {args.baseline} holds no benchmarks",
              file=sys.stderr)
        return 2

    report = []
    regressed = []
    seen = set()
    for path in args.current:
        try:
            current = load_benchmarks(path)
        except (OSError, ValueError) as e:
            print(f"cannot read {path}: {e}", file=sys.stderr)
            return 2
        seen |= set(current)
        rows = compare(baseline, current, args.tolerance, overrides)
        report.append(render(os.path.basename(path), rows,
                             args.tolerance))
        regressed += [f"{os.path.basename(path)}: {name}"
                      for name, _, _, _, s in rows
                      if s == "REGRESSION"]

    gone = sorted(set(baseline) - seen)
    if gone:
        lines = ["### Baseline benchmarks not exercised by any "
                 "current file", ""]
        lines += [f"- `{name}`" for name in gone]
        lines.append("")
        report.append("\n".join(lines))

    text = "\n".join(report)
    print(text)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write(text + "\n")

    if regressed:
        print(f"{len(regressed)} benchmark(s) regressed beyond "
              f"tolerance:", file=sys.stderr)
        for r in regressed:
            print(f"  {r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
