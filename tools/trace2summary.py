#!/usr/bin/env python3
"""Summarize an asim --trace-out file (Chrome trace_event JSON).

Reads the trace object `{"traceEvents": [...], "asim_metrics": {...}}`
(a bare event array is accepted too), aggregates the complete ("X")
events per span name, and prints one table row per span: count, total
duration, mean, and p95. When the embedded `asim_metrics` block is
present its counters and histogram quantiles are printed after the
span table. Loading the file at all doubles as the CI validation that
--trace-out emits well-formed JSON Perfetto can open.

With --metrics the input is instead a METRICS scrape (the payload of
`asim-run --connect=... --server-metrics` or ServeClient::metricsJson):
the uptime / stats / registry structure is validated and summarized.

Exit status: 0 on a well-formed input, 1 otherwise. --require NAME
additionally fails when no span (or, with --metrics, no registry
metric) matches NAME as a substring — CI smoke uses this to pin the
instrumentation it expects.

Usage:
    tools/trace2summary.py trace.json [--require sim.run ...]
    tools/trace2summary.py --metrics scrape.json [--require NAME ...]
"""

import argparse
import json
import sys


def percentile(sorted_values, q):
    """Nearest-rank percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(q * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


def fmt_us(us):
    if us >= 1e6:
        return f"{us / 1e6:.3f}s"
    if us >= 1e3:
        return f"{us / 1e3:.3f}ms"
    return f"{us:.1f}us"


def summarize_spans(events):
    """name -> ascending list of 'X'-event durations (us)."""
    spans = {}
    for ev in events:
        if not isinstance(ev, dict) or ev.get("ph") != "X":
            continue
        name = ev.get("name")
        dur = ev.get("dur")
        if name is None or dur is None:
            continue
        spans.setdefault(name, []).append(float(dur))
    for durs in spans.values():
        durs.sort()
    return spans


def print_span_table(spans):
    rows = []
    for name in sorted(spans):
        durs = spans[name]
        total = sum(durs)
        rows.append((name, len(durs), total, total / len(durs),
                     percentile(durs, 0.95)))
    w = max([len(r[0]) for r in rows] + [4])
    print(f"{'span':<{w}} {'count':>8} {'total':>12} {'mean':>12} "
          f"{'p95':>12}")
    for name, count, total, mean, p95 in rows:
        print(f"{name:<{w}} {count:>8} {fmt_us(total):>12} "
              f"{fmt_us(mean):>12} {fmt_us(p95):>12}")


def print_registry(registry, header):
    counters = registry.get("counters", {})
    gauges = registry.get("gauges", {})
    histograms = registry.get("histograms", {})
    if not isinstance(counters, dict) or \
       not isinstance(gauges, dict) or \
       not isinstance(histograms, dict):
        raise ValueError("registry counters/gauges/histograms must "
                         "be objects")
    print(f"\n{header}: {len(counters)} counters, {len(gauges)} "
          f"gauges, {len(histograms)} histograms")
    for name in sorted(counters):
        print(f"  {name} = {counters[name]}")
    for name in sorted(gauges):
        g = gauges[name]
        print(f"  {name} = {g.get('value')} (peak {g.get('peak')})")
    for name in sorted(histograms):
        h = histograms[name]
        print(f"  {name}: count={h.get('count')} "
              f"mean={h.get('mean'):.0f} p50={h.get('p50')} "
              f"p95={h.get('p95')} p99={h.get('p99')}")
    return (set(counters) | set(gauges) | set(histograms))


def run_trace(path, require):
    with open(path) as f:
        data = json.load(f)
    if isinstance(data, list):
        events, registry = data, None
    elif isinstance(data, dict):
        events = data.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("traceEvents must be an array")
        registry = data.get("asim_metrics")
    else:
        raise ValueError("top level must be an object or an array")

    spans = summarize_spans(events)
    print(f"{path}: {len(events)} events, {len(spans)} span names")
    if spans:
        print_span_table(spans)
    names = set(spans)
    if registry is not None:
        names |= print_registry(registry, "asim_metrics")
    return names


def run_metrics(path, require):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise ValueError("metrics scrape must be a JSON object")
    uptime = data.get("uptime_seconds")
    if not isinstance(uptime, (int, float)) or uptime < 0:
        raise ValueError("uptime_seconds missing or negative")
    stats = data.get("stats")
    if not isinstance(stats, dict):
        raise ValueError("stats must be an object")
    for key in ("sessions_live", "sessions_opened",
                "peak_sessions_live", "requests", "engines"):
        if key not in stats:
            raise ValueError(f"stats lacks {key}")
    registry = data.get("registry")
    if not isinstance(registry, dict):
        raise ValueError("registry must be an object")

    print(f"{path}: daemon up {uptime:.1f}s, "
          f"{stats['sessions_live']} live / "
          f"{stats.get('sessions_parked', 0)} parked sessions, "
          f"peak {stats['peak_sessions_live']}")
    reqs = stats["requests"]
    total = sum(v for v in reqs.values() if isinstance(v, int))
    print(f"requests: {total} total ("
          + ", ".join(f"{k}={v}" for k, v in sorted(reqs.items())
                      if v) + ")")
    return print_registry(registry, "registry")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("path", help="trace or scrape JSON file")
    ap.add_argument("--metrics", action="store_true",
                    help="input is a METRICS scrape, not a trace")
    ap.add_argument("--require", action="append", default=[],
                    help="fail unless a span/metric name contains "
                    "this substring (repeatable)")
    args = ap.parse_args()

    try:
        if args.metrics:
            names = run_metrics(args.path, args.require)
        else:
            names = run_trace(args.path, args.require)
    except (OSError, ValueError, KeyError, TypeError) as e:
        print(f"{args.path}: invalid: {e}", file=sys.stderr)
        return 1

    missing = [r for r in args.require
               if not any(r in n for n in names)]
    if missing:
        print(f"{args.path}: required names absent: "
              + ", ".join(missing), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
