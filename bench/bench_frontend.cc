/**
 * @file
 * Front-end throughput: the ASIM "Generate tables" phase (Figure 5.1
 * row 1) broken into lexing+parsing and resolution (dependency sort +
 * expression resolution), across spec sizes.
 */

#include <benchmark/benchmark.h>

#include "analysis/resolve.hh"
#include "lang/parser.hh"
#include "machines/stack_machine.hh"
#include "machines/synthetic.hh"

namespace {

using namespace asim;

std::string
synthText(int scale)
{
    SyntheticOptions opts;
    opts.seed = 777 + scale;
    opts.alus = scale * 6;
    opts.selectors = scale * 2;
    opts.memories = scale;
    return generateSyntheticText(opts);
}

void
BM_Parse(benchmark::State &state)
{
    std::string text = synthText(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(parseSpec(text));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * text.size()));
}

void
BM_ParseAndResolve(benchmark::State &state)
{
    std::string text = synthText(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(resolveText(text));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * text.size()));
}

BENCHMARK(BM_Parse)->Arg(1)->Arg(8)->Arg(32);
BENCHMARK(BM_ParseAndResolve)->Arg(1)->Arg(8)->Arg(32);

/** The real thesis workload: the full stack-machine specification
 *  (microcode ROM and program ROM included). */
void
BM_ParseStackMachine(benchmark::State &state)
{
    std::string text =
        stackMachineSpec(sieveProgram(kBenchSieveSize), 5545);
    for (auto _ : state)
        benchmark::DoNotOptimize(resolveText(text));
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * text.size()));
}

BENCHMARK(BM_ParseStackMachine);

} // namespace
