/**
 * @file
 * Engine throughput across the three example machines: cycles/second
 * for the interpreter (ASIM baseline) vs the bytecode VM (ASIM II
 * analog) vs the native --serve subprocess (ASIM II proper), all
 * constructed by name through the Simulation facade. The Figure 5.1
 * interpreted-vs-compiled gap should be visible on every machine,
 * growing with specification size; BM_NativeStep pins the per-cycle
 * stepping rate over the persistent protocol (the quadratic-replay
 * regression guard, bench-visible form).
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "analysis/resolve.hh"
#include "machines/counter.hh"
#include "machines/stack_machine.hh"
#include "machines/tiny_computer.hh"
#include "sim/native_engine.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace {

using namespace asim;

using SharedSpec = std::shared_ptr<const ResolvedSpec>;

const SharedSpec &
machine(int which)
{
    static const SharedSpec counter =
        std::make_shared<const ResolvedSpec>(
            resolveText(counterSpec(8, 1000)));
    static const SharedSpec tiny = [] {
        int r = 0;
        return std::make_shared<const ResolvedSpec>(resolveText(
            tinyComputerSpec(tinyModProgram(97, 13, r), 100000)));
    }();
    static const SharedSpec stack =
        std::make_shared<const ResolvedSpec>(resolveText(
            stackMachineSpec(sieveProgram(kBenchSieveSize), 100000)));
    switch (which) {
      case 0:
        return counter;
      case 1:
        return tiny;
      default:
        return stack;
    }
}

void
runEngine(benchmark::State &state, const char *engine)
{
    SimulationOptions opts;
    opts.resolved = machine(static_cast<int>(state.range(0)));
    opts.engine = engine;
    opts.config.collectStats = false;
    Simulation sim(opts);

    const uint64_t chunk = 1024;
    for (auto _ : state) {
        sim.run(chunk);
        if (sim.cycle() > (1u << 24))
            sim.reset();
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * chunk));
    state.SetLabel(state.range(0) == 0   ? "counter"
                   : state.range(0) == 1 ? "tiny_computer"
                                         : "stack_machine");
}

void
BM_SymbolicInterpreter(benchmark::State &state)
{
    runEngine(state, "symbolic");
}

void
BM_Interpreter(benchmark::State &state)
{
    runEngine(state, "interp");
}

void
BM_Vm(benchmark::State &state)
{
    runEngine(state, "vm");
}

void
BM_Native(benchmark::State &state)
{
    if (!NativeEngine::available()) {
        state.SkipWithError("no host compiler");
        return;
    }
    runEngine(state, "native");
}

/** Interactive stepping over the persistent --serve child: one pipe
 *  round trip per cycle. Pre-protocol this was quadratic (a process
 *  spawn plus a full replay per step); the rate here is the
 *  regression guard's bench-visible form. */
void
BM_NativeStep(benchmark::State &state)
{
    if (!NativeEngine::available()) {
        state.SkipWithError("no host compiler");
        return;
    }
    SimulationOptions opts;
    opts.resolved = machine(0);
    opts.engine = "native";
    opts.config.collectStats = false;
    Simulation sim(opts);
    for (auto _ : state) {
        sim.step();
        if (sim.cycle() > (1u << 20))
            sim.reset();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    state.SetLabel("counter, per-cycle step()");
}

BENCHMARK(BM_SymbolicInterpreter)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_Interpreter)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_Vm)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_Native)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_NativeStep);

/** Checkpoint-path costs per engine (sim/checkpoint.hh): the
 *  advance-then-snapshot pattern a periodic checkpointer pays, and
 *  restore of a mid-run snapshot. For "native" a snapshot is one
 *  SNAPSHOT round trip and restore one RESTORE round trip — both
 *  O(state); pre-protocol, restoring at cycle N replayed all N. */
void
BM_Snapshot(benchmark::State &state, const char *engine)
{
    if (std::strcmp(engine, "native") == 0 &&
        !NativeEngine::available()) {
        state.SkipWithError("no host compiler");
        return;
    }
    SimulationOptions opts;
    opts.resolved = machine(1); // tiny_computer: non-trivial state
    opts.engine = engine;
    opts.config.collectStats = false;
    Simulation sim(opts);
    for (auto _ : state) {
        sim.step();
        EngineSnapshot snap = sim.snapshot();
        benchmark::DoNotOptimize(snap.cycle);
        if (sim.cycle() > (1u << 20))
            sim.reset();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    state.SetLabel("tiny_computer, step + snapshot()");
}

void
BM_Restore(benchmark::State &state, const char *engine)
{
    if (std::strcmp(engine, "native") == 0 &&
        !NativeEngine::available()) {
        state.SkipWithError("no host compiler");
        return;
    }
    SimulationOptions opts;
    opts.resolved = machine(1);
    opts.engine = engine;
    opts.config.collectStats = false;
    Simulation sim(opts);
    sim.run(1000);
    EngineSnapshot snap = sim.snapshot();
    for (auto _ : state)
        sim.restore(snap);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
    state.SetLabel("tiny_computer, restore mid-run snapshot");
}

BENCHMARK_CAPTURE(BM_Snapshot, interp, "interp");
BENCHMARK_CAPTURE(BM_Snapshot, vm, "vm");
BENCHMARK_CAPTURE(BM_Snapshot, native, "native");
BENCHMARK_CAPTURE(BM_Restore, interp, "interp");
BENCHMARK_CAPTURE(BM_Restore, vm, "vm");
BENCHMARK_CAPTURE(BM_Restore, native, "native");

/** Tracing cost: the sieve machine with a trace sink swallowing
 *  events (isolates formatting from simulation). */
void
BM_VmTraced(benchmark::State &state)
{
    NullTrace trace;
    SimulationOptions opts;
    opts.resolved = std::make_shared<const ResolvedSpec>(resolveText(
        stackMachineSpec(sieveProgram(kBenchSieveSize), 100000,
                         true)));
    opts.engine = "vm";
    opts.config.trace = &trace;
    Simulation sim(opts);
    for (auto _ : state) {
        sim.run(1024);
        if (sim.cycle() > (1u << 24))
            sim.reset();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

BENCHMARK(BM_VmTraced);

} // namespace
