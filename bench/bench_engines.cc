/**
 * @file
 * Engine throughput across the three example machines: cycles/second
 * for the interpreter (ASIM baseline) vs the bytecode VM (ASIM II
 * analog). The Figure 5.1 interpreted-vs-compiled gap should be
 * visible on every machine, growing with specification size.
 */

#include <benchmark/benchmark.h>

#include "analysis/resolve.hh"
#include "machines/counter.hh"
#include "machines/stack_machine.hh"
#include "machines/tiny_computer.hh"
#include "sim/engine.hh"
#include "sim/symbolic.hh"

namespace {

using namespace asim;

const ResolvedSpec &
machine(int which)
{
    static const ResolvedSpec counter =
        resolveText(counterSpec(8, 1000));
    static const ResolvedSpec tiny = [] {
        int r = 0;
        return resolveText(tinyComputerSpec(tinyModProgram(97, 13, r),
                                            100000));
    }();
    static const ResolvedSpec stack = resolveText(
        stackMachineSpec(sieveProgram(kBenchSieveSize), 100000));
    switch (which) {
      case 0:
        return counter;
      case 1:
        return tiny;
      default:
        return stack;
    }
}

enum class Which
{
    Symbolic,
    Interp,
    Vm,
};

void
runEngine(benchmark::State &state, Which which)
{
    const ResolvedSpec &rs = machine(static_cast<int>(state.range(0)));
    NullIo io;
    EngineConfig cfg;
    cfg.io = &io;
    cfg.collectStats = false;
    std::unique_ptr<Engine> e;
    switch (which) {
      case Which::Symbolic:
        e = makeSymbolicInterpreter(rs, cfg);
        break;
      case Which::Interp:
        e = makeInterpreter(rs, cfg);
        break;
      case Which::Vm:
        e = makeVm(rs, cfg);
        break;
    }
    const uint64_t chunk = 1024;
    for (auto _ : state) {
        e->run(chunk);
        if (e->cycle() > (1u << 24))
            e->reset();
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * chunk));
    state.SetLabel(state.range(0) == 0   ? "counter"
                   : state.range(0) == 1 ? "tiny_computer"
                                         : "stack_machine");
}

void
BM_SymbolicInterpreter(benchmark::State &state)
{
    runEngine(state, Which::Symbolic);
}

void
BM_Interpreter(benchmark::State &state)
{
    runEngine(state, Which::Interp);
}

void
BM_Vm(benchmark::State &state)
{
    runEngine(state, Which::Vm);
}

BENCHMARK(BM_SymbolicInterpreter)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_Interpreter)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_Vm)->Arg(0)->Arg(1)->Arg(2);

/** Tracing cost: the sieve machine with a trace sink swallowing
 *  events (isolates formatting from simulation). */
void
BM_VmTraced(benchmark::State &state)
{
    const ResolvedSpec &rs = resolveText(
        stackMachineSpec(sieveProgram(kBenchSieveSize), 100000, true));
    NullTrace trace;
    NullIo io;
    EngineConfig cfg;
    cfg.io = &io;
    cfg.trace = &trace;
    auto e = makeVm(rs, cfg);
    for (auto _ : state) {
        e->run(1024);
        if (e->cycle() > (1u << 24))
            e->reset();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

BENCHMARK(BM_VmTraced);

} // namespace
