/**
 * @file
 * asim-serve protocol throughput: interactive stepping over the
 * wire, one RUN round trip at a time (ping-pong) versus pipelined
 * batches of queued RUNs, plus batched multi-cycle RUNs and the
 * park/resume round trip. All against an in-process ServeServer on
 * a Unix-domain socket — the same code path as the daemon binary
 * minus process startup. items_per_second is steps (or cycles, or
 * evict+resume round trips) per second; the acceptance bar for the
 * subsystem is pipelined stepping >= 10x ping-pong on the counter
 * spec.
 *
 * Run with --benchmark_format=json to get artifact-comparable output.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include <unistd.h>

#include "machines/counter.hh"
#include "serve/client.hh"
#include "serve/server.hh"

namespace {

using namespace asim;
using namespace asim::serve;

/** One shared daemon + connection for every benchmark in this
 *  binary; sessions are per-benchmark. */
struct Harness
{
    Harness()
    {
        ServeOptions o;
        o.unixPath =
            "/tmp/asim_bench_serve_" + std::to_string(::getpid());
        o.stateDir = o.unixPath + ".state";
        server = std::make_unique<ServeServer>(o);
        server->start();
        client = std::make_unique<ServeClient>(o.unixPath);
    }

    uint64_t
    openCounter(const std::string &name)
    {
        ServeClient::OpenOptions open;
        open.name = name;
        open.specText = counterSpec(8, 1000);
        return client->open(open).id;
    }

    std::unique_ptr<ServeServer> server;
    std::unique_ptr<ServeClient> client;
};

Harness &
harness()
{
    static Harness h;
    return h;
}

/** One cycle per round trip: the protocol floor interactive
 *  debuggers pay without pipelining. */
void
BM_ServeStepPingPong(benchmark::State &state)
{
    Harness &h = harness();
    uint64_t id = h.openCounter("pingpong");
    for (auto _ : state) {
        auto r = h.client->run(id, 1);
        benchmark::DoNotOptimize(r.cycle);
    }
    state.SetItemsProcessed(state.iterations());
    h.client->closeSession(id);
}

/** `depth` queued RUNs per flush: requests coalesce into one write,
 *  responses into few — the round trip amortizes away. */
void
BM_ServeStepPipelined(benchmark::State &state)
{
    const int depth = static_cast<int>(state.range(0));
    Harness &h = harness();
    uint64_t id = h.openCounter("pipelined");
    for (auto _ : state) {
        for (int i = 0; i < depth; ++i)
            h.client->sendRun(id, 1);
        uint64_t cycle = 0;
        for (int i = 0; i < depth; ++i)
            cycle = h.client->readRunReply().cycle;
        benchmark::DoNotOptimize(cycle);
    }
    state.SetItemsProcessed(state.iterations() * depth);
    state.SetLabel("depth " + std::to_string(depth));
    h.client->closeSession(id);
}

/** The batched alternative: one RUN carrying many cycles;
 *  items/sec counts cycles, not round trips. */
void
BM_ServeRunBatched(benchmark::State &state)
{
    const uint64_t cycles = static_cast<uint64_t>(state.range(0));
    Harness &h = harness();
    uint64_t id = h.openCounter("batched");
    for (auto _ : state) {
        auto r = h.client->run(id, cycles);
        benchmark::DoNotOptimize(r.cycle);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(cycles));
    state.SetLabel(std::to_string(cycles) + " cycles/RUN");
    h.client->closeSession(id);
}

/** Park-to-disk then transparently resume: the latency a tenant
 *  pays the first command after an idle eviction. */
void
BM_ServeSessionResume(benchmark::State &state)
{
    Harness &h = harness();
    uint64_t id = h.openCounter("resume");
    h.client->run(id, 100); // non-trivial state to serialize
    for (auto _ : state) {
        h.client->evict(id);
        auto r = h.client->run(id, 1);
        benchmark::DoNotOptimize(r.cycle);
    }
    state.SetItemsProcessed(state.iterations());
    h.client->closeSession(id);
}

BENCHMARK(BM_ServeStepPingPong);
BENCHMARK(BM_ServeStepPipelined)->Arg(64)->Arg(256);
BENCHMARK(BM_ServeRunBatched)->Arg(4096);
BENCHMARK(BM_ServeSessionResume);

} // namespace
