/**
 * @file
 * Batch throughput: aggregate cycles/second for a fixed fleet of
 * independent instances as the worker-thread count grows, for the
 * interpreter and the bytecode VM. All batches are constructed
 * through BatchRunner (one shared resolve, one shared vm program).
 * Emits the same Google-Benchmark JSON shape as bench_engines
 * (items_per_second = aggregate cycles/second); the acceptance bar
 * for the subsystem is >= 2x aggregate throughput at 4 threads vs 1
 * on a >= 4-core host (vm engine, Release).
 *
 * Run with --benchmark_format=json to get artifact-comparable output.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "analysis/resolve.hh"
#include "machines/counter.hh"
#include "machines/stack_machine.hh"
#include "sim/batch.hh"

namespace {

using namespace asim;

using SharedSpec = std::shared_ptr<const ResolvedSpec>;

constexpr size_t kBatchSize = 8;
constexpr uint64_t kCyclesPerInstance = 4096;

const SharedSpec &
machine(int which)
{
    static const SharedSpec counter =
        std::make_shared<const ResolvedSpec>(
            resolveText(counterSpec(8, 1000)));
    static const SharedSpec stack =
        std::make_shared<const ResolvedSpec>(resolveText(
            stackMachineSpec(sieveProgram(kBenchSieveSize), 100000)));
    return which == 0 ? counter : stack;
}

void
runBatch(benchmark::State &state, const char *engine)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));

    BatchJob job;
    job.options.resolved = machine(static_cast<int>(state.range(1)));
    job.options.engine = engine;
    job.options.config.collectStats = false;
    job.cycles = kCyclesPerInstance;

    BatchOptions bopts;
    bopts.threads = threads;
    bopts.captureState = false;
    BatchRunner runner(bopts);
    runner.addBatch(job, kBatchSize);

    for (auto _ : state) {
        BatchResult result = runner.run();
        benchmark::DoNotOptimize(result.aggregate.cycles);
    }
    state.SetItemsProcessed(static_cast<int64_t>(
        state.iterations() * kBatchSize * kCyclesPerInstance));
    state.SetLabel(std::string(state.range(1) == 0
                                   ? "counter"
                                   : "stack_machine") +
                   " x" + std::to_string(kBatchSize) + " @" +
                   std::to_string(threads) + "t");
}

void
BM_BatchInterp(benchmark::State &state)
{
    runBatch(state, "interp");
}

void
BM_BatchVm(benchmark::State &state)
{
    runBatch(state, "vm");
}

/** threads x machine; items/sec is the aggregate cycle rate. */
BENCHMARK(BM_BatchInterp)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_BatchVm)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->MeasureProcessCPUTime()
    ->UseRealTime();

} // namespace
