/**
 * @file
 * Fault-injection campaign throughput (analysis/campaign.hh):
 * injections/second for a fixed fleet of sampled transient upsets as
 * the worker-thread count grows, and the golden-checkpoint
 * amortization — the later the checkpoint, the shorter every
 * instance's re-executed suffix, so moving the golden cycle toward
 * the horizon must raise the injection rate. Each iteration is one
 * whole campaign: golden run, checkpoint, fan-out, classification.
 *
 * Run with --benchmark_format=json to get artifact-comparable output.
 */

#include <benchmark/benchmark.h>

#include <string>

#include "analysis/campaign.hh"
#include "machines/counter.hh"

namespace {

using namespace asim;

constexpr uint64_t kRuns = 64;
constexpr int64_t kHorizon = 20000;

CampaignOptions
campaign(unsigned threads, uint64_t goldenCycle)
{
    CampaignOptions o;
    o.base.specText = counterSpec(8, kHorizon);
    o.base.config.collectStats = false;
    o.runs = kRuns;
    o.seed = 42;
    o.goldenCycle = goldenCycle;
    o.threads = threads;
    return o;
}

void
BM_CampaignFanout(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    CampaignOptions opts = campaign(threads, 0);
    for (auto _ : state) {
        CampaignResult result = CampaignRunner(opts).run();
        benchmark::DoNotOptimize(result.total.injections);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * kRuns));
    state.SetLabel("x" + std::to_string(kRuns) + " @" +
                   std::to_string(threads) + "t");
}

void
BM_CampaignGoldenAmortization(benchmark::State &state)
{
    // Golden cycle as a fraction of the horizon: 1/8, 1/2, 7/8. The
    // checkpoint amortizes the healthy prefix across every instance.
    const uint64_t golden = static_cast<uint64_t>(
        kHorizon * state.range(0) / 8);
    CampaignOptions opts = campaign(2, golden ? golden : 1);
    for (auto _ : state) {
        CampaignResult result = CampaignRunner(opts).run();
        benchmark::DoNotOptimize(result.total.injections);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * kRuns));
    state.SetLabel("golden@" + std::to_string(opts.goldenCycle) +
                   "/" + std::to_string(kHorizon));
}

/** items/sec is the injection rate (one item = one classified run). */
BENCHMARK(BM_CampaignFanout)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_CampaignGoldenAmortization)
    ->Arg(1)
    ->Arg(4)
    ->Arg(7)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

} // namespace
