/**
 * @file
 * Code-generation throughput: the ASIM II "Generate code" phase
 * (Figure 5.1 row 3) for both backends, plus bytecode compilation,
 * across spec sizes.
 */

#include <benchmark/benchmark.h>

#include "analysis/resolve.hh"
#include "codegen/codegen.hh"
#include "machines/stack_machine.hh"
#include "machines/synthetic.hh"
#include "sim/compiler.hh"

namespace {

using namespace asim;

ResolvedSpec
synth(int scale)
{
    SyntheticOptions opts;
    opts.seed = 31 + scale;
    opts.alus = scale * 6;
    opts.selectors = scale * 2;
    opts.memories = scale;
    return resolve(generateSynthetic(opts));
}

void
BM_GeneratePascal(benchmark::State &state)
{
    ResolvedSpec rs = synth(static_cast<int>(state.range(0)));
    size_t bytes = 0;
    for (auto _ : state) {
        std::string code = generatePascal(rs);
        bytes = code.size();
        benchmark::DoNotOptimize(code);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * bytes));
}

void
BM_GenerateCpp(benchmark::State &state)
{
    ResolvedSpec rs = synth(static_cast<int>(state.range(0)));
    size_t bytes = 0;
    for (auto _ : state) {
        std::string code = generateCpp(rs);
        bytes = code.size();
        benchmark::DoNotOptimize(code);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * bytes));
}

void
BM_CompileBytecode(benchmark::State &state)
{
    ResolvedSpec rs = synth(static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(compileProgram(rs));
}

BENCHMARK(BM_GeneratePascal)->Arg(1)->Arg(8)->Arg(32);
BENCHMARK(BM_GenerateCpp)->Arg(1)->Arg(8)->Arg(32);
BENCHMARK(BM_CompileBytecode)->Arg(1)->Arg(8)->Arg(32);

/** The thesis workload through both backends. */
void
BM_GenerateCppStackMachine(benchmark::State &state)
{
    ResolvedSpec rs = resolveText(
        stackMachineSpec(sieveProgram(kBenchSieveSize), 5545));
    for (auto _ : state)
        benchmark::DoNotOptimize(generateCpp(rs));
}

BENCHMARK(BM_GenerateCppStackMachine);

} // namespace
