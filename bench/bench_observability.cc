/**
 * @file
 * Observability overhead guard: the same counter-machine workload on
 * the vm and interp engines with instrumentation fully off (the
 * default), with timing metrics on, and with a live trace file. The
 * off-path contract (support/metrics.hh) is that disabled
 * instrumentation costs one relaxed atomic load per site, so
 * BM_TracingOff must track the plain bench_engines rates and CI
 * asserts BM_TracingOff stays within tolerance of the committed
 * baseline (tools/bench_tolerances.json pins this bench's slack).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "analysis/resolve.hh"
#include "machines/counter.hh"
#include "sim/simulation.hh"
#include "support/metrics.hh"
#include "support/tracing.hh"

namespace {

using namespace asim;

using SharedSpec = std::shared_ptr<const ResolvedSpec>;

const SharedSpec &
counterMachine()
{
    static const SharedSpec spec =
        std::make_shared<const ResolvedSpec>(
            resolveText(counterSpec(8, 1000)));
    return spec;
}

void
runCounter(benchmark::State &state, const char *engine)
{
    SimulationOptions opts;
    opts.resolved = counterMachine();
    opts.engine = engine;
    opts.config.collectStats = false;
    Simulation sim(opts);

    const uint64_t chunk = 1024;
    for (auto _ : state) {
        sim.run(chunk);
        if (sim.cycle() > (1u << 24))
            sim.reset();
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * chunk));
    state.SetLabel(engine);
}

/** Baseline: instrumentation compiled in, everything disabled. */
void
BM_TracingOff(benchmark::State &state)
{
    tracing::stop();
    metrics::setTimingEnabled(false);
    runCounter(state, state.range(0) == 0 ? "vm" : "interp");
}

/** Timing metrics on (the serve daemon's standing mode), no trace
 *  file: clock reads at engine boundaries, histograms populate. */
void
BM_TimingOn(benchmark::State &state)
{
    tracing::stop();
    metrics::setTimingEnabled(true);
    runCounter(state, state.range(0) == 0 ? "vm" : "interp");
    metrics::setTimingEnabled(false);
}

/** Full tracing to a file (what --trace-out costs). */
void
BM_TracingOn(benchmark::State &state)
{
    const std::string path = "/tmp/asim_bench_obs_trace.json";
    if (!tracing::start(path)) {
        state.SkipWithError("cannot open trace file");
        return;
    }
    runCounter(state, state.range(0) == 0 ? "vm" : "interp");
    tracing::stop();
    metrics::setTimingEnabled(false);
    std::remove(path.c_str());
}

BENCHMARK(BM_TracingOff)->Arg(0)->Arg(1);
BENCHMARK(BM_TimingOn)->Arg(0)->Arg(1);
BENCHMARK(BM_TracingOn)->Arg(0)->Arg(1);

} // namespace
