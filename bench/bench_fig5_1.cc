/**
 * @file
 * Figure 5.1 reproduction: "Execution time comparison of ASIM and
 * ASIM II" on the stack-machine sieve, 5545 cycles.
 *
 * Paper rows (VAX 11/780, seconds):
 *
 *     ASIM      Generate tables    10.8
 *               Simulation time   310.6
 *     ASIM II   Generate code      34.2
 *               Pascal Compile     43.2
 *               Simulation time    15.0
 *     Traditional Generate Prototype 100000
 *               Run Prototype       0.01
 *
 * Our mapping: ASIM = the table-walking interpreter ("generate
 * tables" = parse+resolve); ASIM II = C++ code generation + host g++
 * + native run; plus the bytecode VM as a modern middle point. All
 * rows are driven through the Simulation facade — the three systems
 * differ only by registry name. The absolute numbers are ~10^5
 * smaller on 2020s hardware; the claims to check are the *ratios*:
 * compiled simulation roughly an order of magnitude faster than
 * interpreted (thesis: ~20x), and preparation dominating the
 * compiled pipeline (thesis: 2.5x end-to-end win).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/resolve.hh"
#include "machines/stack_machine.hh"
#include "sim/native_engine.hh"
#include "sim/simulation.hh"

namespace {

using Clock = std::chrono::steady_clock;
using asim::kThesisSieveCycles;

double
now()
{
    return std::chrono::duration<double>(
               Clock::now().time_since_epoch())
        .count();
}

/** Median-of-5 timing of a callable (the thesis took best-of-5). */
template <typename F>
double
timeIt(F &&f, int reps = 5)
{
    double best = 1e99;
    for (int i = 0; i < reps; ++i) {
        double t0 = now();
        f();
        best = std::min(best, now() - t0);
    }
    return best;
}

} // namespace

int
main()
{
    using namespace asim;

    const int64_t iterations = kThesisSieveCycles + 1; // inclusive loop
    const std::string specText =
        stackMachineSpec(sieveProgram(kBenchSieveSize),
                         kThesisSieveCycles);

    std::printf("Figure 5.1 — Execution time comparison "
                "(sieve stack machine, %lld cycles)\n",
                static_cast<long long>(kThesisSieveCycles));
    std::printf("  spec: %zu bytes, sieve size %d\n\n",
                specText.size(), kBenchSieveSize);

    // ---- ASIM row: generate tables + symbolic interpretation --------
    std::shared_ptr<const ResolvedSpec> rs;
    double genTables = timeIt([&] {
        rs = std::make_shared<const ResolvedSpec>(
            resolveText(specText));
    });

    SimulationOptions base;
    base.resolved = rs;
    base.config.collectStats = false;

    auto simTime = [&](const char *engine) {
        SimulationOptions o = base;
        o.engine = engine;
        return timeIt([&] {
            Simulation sim(o);
            sim.run(iterations);
        });
    };

    double interpSim = simTime("symbolic");

    // Modern slot-resolved interpreter (intermediate point).
    double resolvedSim = simTime("interp");

    // ---- Modern middle point: bytecode VM ---------------------------
    double vmCompile = timeIt([&] {
        SimulationOptions o = base;
        o.engine = "vm";
        Simulation sim(o);
    });
    double vmSim = simTime("vm");

    // ---- ASIM II row: generate C++ + host compile + native run ------
    double genCode = 0, hostCompile = 0, nativeSim = 0;
    bool haveNative = NativeEngine::available();
    std::unique_ptr<Simulation> nativeSimulation;
    NativeEngine *native = nullptr;
    if (haveNative) {
        SimulationOptions o = base;
        o.engine = "native";
        nativeSimulation = std::make_unique<Simulation>(o);
        native =
            dynamic_cast<NativeEngine *>(&nativeSimulation->engine());
        genCode = native->build().generateSeconds;
        hostCompile = native->build().compileSeconds;
        // Best-of-5 of the self-timed simulation loop.
        nativeSim = 1e99;
        for (int i = 0; i < 5; ++i) {
            nativeSimulation->reset();
            nativeSimulation->run(iterations);
            nativeSim = std::min(nativeSim, native->lastSimSeconds());
        }
    }

    std::printf("%-14s %-22s %12s %14s\n", "system", "phase",
                "paper (s)", "measured (s)");
    auto row = [](const char *sys, const char *phase, double paper,
                  double measured) {
        std::printf("%-14s %-22s %12.2f %14.6f\n", sys, phase, paper,
                    measured);
    };
    row("ASIM", "Generate tables", 10.8, genTables);
    row("ASIM", "Simulation time", 310.6, interpSim);
    if (haveNative) {
        row("ASIM II", "Generate code", 34.2, genCode);
        row("ASIM II", "Host compile", 43.2, hostCompile);
        row("ASIM II", "Simulation time", 15.0, nativeSim);
    } else {
        std::printf("%-14s %-22s %12s %14s\n", "ASIM II", "(no host "
                    "compiler)", "-", "-");
    }
    std::printf("%-14s %-22s %12s %14.6f\n", "(resolved)",
                "Simulation time", "-", resolvedSim);
    std::printf("%-14s %-22s %12s %14.6f\n", "(VM)",
                "Compile bytecode", "-", vmCompile);
    std::printf("%-14s %-22s %12s %14.6f\n", "(VM)",
                "Simulation time", "-", vmSim);
    std::printf("%-14s %-22s %12.2f %14s\n", "Traditional",
                "Generate Prototype", 100000.0, "(not built)");
    std::printf("%-14s %-22s %12.2f %14s\n", "Traditional",
                "Run Prototype", 0.01, "-");

    std::printf("\nratios (paper -> measured):\n");
    std::printf("  interpreted / compiled simulation: 20.7x -> "
                "%.1fx%s\n",
                haveNative ? interpSim / nativeSim : 0.0,
                haveNative ? "" : " (n/a)");
    std::printf("  interpreted / VM simulation:          -> %.1fx\n",
                interpSim / vmSim);
    std::printf("  interpreted / resolved-interpreter:   -> %.1fx\n",
                interpSim / resolvedSim);
    if (haveNative) {
        double asim = genTables + interpSim;
        double asim2 = genCode + hostCompile + nativeSim;
        std::printf("  end-to-end ASIM / ASIM II: 2.5x -> %.2fx\n",
                    asim / asim2);
        std::printf("  (compiled pipeline preparation share: paper "
                    "84%%, measured %.0f%%)\n",
                    100.0 * (genCode + hostCompile) / asim2);

        // The paper's 2.5x end-to-end win presumes a simulation long
        // enough to amortize compilation. On modern hardware the
        // same crossover exists at a larger cycle count; find it.
        double perCycleInterp = interpSim / double(iterations);
        double perCycleNative = nativeSim / double(iterations);
        double prep = genCode + hostCompile - genTables;
        double breakEven = prep / (perCycleInterp - perCycleNative);
        std::printf("\ncrossover: ASIM II wins end-to-end beyond "
                    "%.0f cycles (thesis ran %lld,\non hardware "
                    "~10^5 slower; at VAX speeds the crossover sat "
                    "well below 5545).\n",
                    breakEven,
                    static_cast<long long>(kThesisSieveCycles));

        // Demonstrate the crossover with a longer run (the compiled
        // binary is reused — the pipeline's point).
        const int64_t longCycles = 100 * kThesisSieveCycles;
        double longInterp = perCycleInterp * double(longCycles + 1);
        nativeSimulation->reset();
        nativeSimulation->run(static_cast<uint64_t>(longCycles + 1));
        double longAsim2 =
            genCode + hostCompile + native->lastSimSeconds();
        std::printf("\nscaled run (%lld cycles):\n",
                    static_cast<long long>(longCycles));
        std::printf("  ASIM    end-to-end: %10.3f s "
                    "(tables %.4f + sim %.3f)\n",
                    genTables + longInterp, genTables, longInterp);
        std::printf("  ASIM II end-to-end: %10.3f s "
                    "(gen %.4f + compile %.3f + sim %.4f)\n",
                    longAsim2, genCode, hostCompile,
                    native->lastSimSeconds());
        std::printf("  end-to-end ratio: %.1fx (paper: 2.5x)\n",
                    (genTables + longInterp) / longAsim2);
    }
    std::printf("\nShape check: compiled simulation should beat the "
                "interpreter by ~an order of\nmagnitude while paying "
                "a preparation cost; see EXPERIMENTS.md.\n");
    return 0;
}
