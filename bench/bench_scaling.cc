/**
 * @file
 * Engine scaling with specification size: synthetic machines from a
 * handful of components up to hundreds. Per-cycle cost should grow
 * linearly for both engines with the VM keeping a constant-factor
 * advantage (the Figure 5.1 gap is size-independent).
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "analysis/resolve.hh"
#include "machines/synthetic.hh"
#include "sim/simulation.hh"

namespace {

using namespace asim;

std::shared_ptr<const ResolvedSpec>
synth(int scale)
{
    SyntheticOptions opts;
    opts.seed = 12345 + scale;
    opts.alus = scale * 6;
    opts.selectors = scale * 2;
    opts.memories = scale;
    opts.withIo = false;
    opts.tracedPercent = 0;
    return std::make_shared<const ResolvedSpec>(
        resolve(generateSynthetic(opts)));
}

void
runScaled(benchmark::State &state, const char *engine)
{
    SimulationOptions opts;
    opts.resolved = synth(static_cast<int>(state.range(0)));
    opts.engine = engine;
    opts.config.collectStats = false;
    Simulation sim(opts);
    for (auto _ : state)
        sim.run(256);
    state.SetItemsProcessed(state.iterations() * 256);
    state.SetLabel(
        std::to_string(sim.resolved().spec.comps.size()) +
        " components");
}

void
BM_InterpreterScaling(benchmark::State &state)
{
    runScaled(state, "interp");
}

void
BM_VmScaling(benchmark::State &state)
{
    runScaled(state, "vm");
}

BENCHMARK(BM_InterpreterScaling)->Arg(1)->Arg(4)->Arg(16)->Arg(48);
BENCHMARK(BM_VmScaling)->Arg(1)->Arg(4)->Arg(16)->Arg(48);

} // namespace
