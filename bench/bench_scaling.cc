/**
 * @file
 * Engine scaling with specification size: synthetic machines from a
 * handful of components up to hundreds. Per-cycle cost should grow
 * linearly for both engines with the VM keeping a constant-factor
 * advantage (the Figure 5.1 gap is size-independent).
 *
 * The partitioned legs run ONE large layered design (the scaling
 * corpus presets) under the bulk-synchronous partitioned interpreter
 * at 1/2/4/8 lanes. On a multi-core host, cycles/s should rise with
 * the lane count until the cores run out; on a single-core host the
 * ladder is flat minus barrier overhead — compare against lanes:1 to
 * read the speedup either way (PERFORMANCE.md "Intra-spec
 * parallelism").
 */

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "analysis/resolve.hh"
#include "machines/synthetic.hh"
#include "sim/simulation.hh"

namespace {

using namespace asim;

std::shared_ptr<const ResolvedSpec>
synth(int scale)
{
    SyntheticOptions opts;
    opts.seed = 12345 + scale;
    opts.alus = scale * 6;
    opts.selectors = scale * 2;
    opts.memories = scale;
    opts.withIo = false;
    opts.tracedPercent = 0;
    return std::make_shared<const ResolvedSpec>(
        resolve(generateSynthetic(opts)));
}

void
runScaled(benchmark::State &state, const char *engine)
{
    SimulationOptions opts;
    opts.resolved = synth(static_cast<int>(state.range(0)));
    opts.engine = engine;
    opts.config.collectStats = false;
    Simulation sim(opts);
    for (auto _ : state)
        sim.run(256);
    state.SetItemsProcessed(state.iterations() * 256);
    state.SetLabel(
        std::to_string(sim.resolved().spec.comps.size()) +
        " components");
}

void
BM_InterpreterScaling(benchmark::State &state)
{
    runScaled(state, "interp");
}

void
BM_VmScaling(benchmark::State &state)
{
    runScaled(state, "vm");
}

BENCHMARK(BM_InterpreterScaling)->Arg(1)->Arg(4)->Arg(16)->Arg(48);
BENCHMARK(BM_VmScaling)->Arg(1)->Arg(4)->Arg(16)->Arg(48);

/** Scaling-corpus specs are expensive to generate and resolve;
 *  benchmarks of several lane counts share one resolve per size. */
const std::shared_ptr<const ResolvedSpec> &
corpus(int comps)
{
    static std::map<int, std::shared_ptr<const ResolvedSpec>> cache;
    auto it = cache.find(comps);
    if (it == cache.end()) {
        SyntheticOptions opts =
            syntheticPreset(std::to_string(comps));
        it = cache
                 .emplace(comps,
                          std::make_shared<const ResolvedSpec>(
                              resolve(generateSynthetic(opts))))
                 .first;
    }
    return it->second;
}

void
BM_PartitionedScaling(benchmark::State &state)
{
    const int comps = static_cast<int>(state.range(0));
    const unsigned lanes = static_cast<unsigned>(state.range(1));
    // Keep one iteration's work roughly constant across sizes.
    const uint64_t cycles = comps >= 100000 ? 8 : 64;

    SimulationOptions opts;
    opts.resolved = corpus(comps);
    opts.engine = "interp";
    opts.partitions = lanes;
    opts.partitionMinComponents = 1; // bench the machinery, always
    opts.config.collectStats = false;
    Simulation sim(opts);
    for (auto _ : state)
        sim.run(cycles);
    state.SetItemsProcessed(state.iterations() * cycles);
    state.SetLabel(std::to_string(comps) + " comb, " +
                   std::to_string(lanes) + " lanes");
}

// Wall-clock, not CPU time: the work happens on pool threads, and
// the speedup claim is about elapsed time per cycle.
BENCHMARK(BM_PartitionedScaling)
    ->ArgsProduct({{10000, 100000}, {1, 2, 4, 8}})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace
