/**
 * @file
 * Ablations of the thesis' §4.4 optimizations and the §5.4 "future
 * work" memory-temporary heuristic, measured on the bytecode VM over
 * the sieve stack machine: constant-function ALU inlining, constant-
 * operation memory specialization, constant-selector tables (the
 * microcode-ROM pattern), and unused-latch elision.
 */

#include <benchmark/benchmark.h>

#include "analysis/resolve.hh"
#include "machines/stack_machine.hh"
#include "sim/compiler.hh"
#include "sim/vm.hh"

namespace {

using namespace asim;

const ResolvedSpec &
sieve()
{
    static const ResolvedSpec rs = resolveText(
        stackMachineSpec(sieveProgram(kBenchSieveSize), 100000));
    return rs;
}

void
runWith(benchmark::State &state, const CompilerOptions &opts)
{
    NullIo io;
    EngineConfig cfg;
    cfg.io = &io;
    cfg.collectStats = false;
    Vm vm(sieve(), cfg, opts);
    for (auto _ : state) {
        vm.run(1024);
        if (vm.cycle() > (1u << 24))
            vm.reset();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
    state.SetLabel(std::to_string(vm.program().totalInstructions()) +
                   " instrs");
}

void
BM_AllOptimizations(benchmark::State &state)
{
    runWith(state, CompilerOptions{});
}

void
BM_NoConstAluInlining(benchmark::State &state)
{
    CompilerOptions o;
    o.inlineConstAlu = false;
    runWith(state, o);
}

void
BM_NoConstMemSpecialization(benchmark::State &state)
{
    CompilerOptions o;
    o.specializeConstMem = false;
    runWith(state, o);
}

void
BM_NoConstSelectorTables(benchmark::State &state)
{
    CompilerOptions o;
    o.constSelectorTables = false;
    runWith(state, o);
}

void
BM_NoOptimizations(benchmark::State &state)
{
    CompilerOptions o;
    o.inlineConstAlu = false;
    o.specializeConstMem = false;
    o.constSelectorTables = false;
    runWith(state, o);
}

void
BM_WithTempElision(benchmark::State &state)
{
    CompilerOptions o;
    o.elideUnusedTemps = true;
    runWith(state, o);
}

BENCHMARK(BM_AllOptimizations);
BENCHMARK(BM_NoConstAluInlining);
BENCHMARK(BM_NoConstMemSpecialization);
BENCHMARK(BM_NoConstSelectorTables);
BENCHMARK(BM_NoOptimizations);
BENCHMARK(BM_WithTempElision);

/** The thesis-quirk shift option should cost nothing measurable. */
void
BM_FixedShlSemantics(benchmark::State &state)
{
    NullIo io;
    EngineConfig cfg;
    cfg.io = &io;
    cfg.collectStats = false;
    cfg.aluSemantics = AluSemantics::Fixed;
    Vm vm(sieve(), cfg, {});
    for (auto _ : state) {
        vm.run(1024);
        if (vm.cycle() > (1u << 24))
            vm.reset();
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}

BENCHMARK(BM_FixedShlSemantics);

} // namespace
