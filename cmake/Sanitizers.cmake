# Attach sanitizer instrumentation to an interface target.
#
#   asim_enable_sanitizers(<target> "address;undefined")
#
# Accepts a semicolon- or comma-separated list (the comma form avoids
# shell quoting when passed as -DASIM_SANITIZE=address,undefined).
function(asim_enable_sanitizers target sanitizers)
    if(NOT sanitizers)
        return()
    endif()
    string(REPLACE "," ";" _san_list "${sanitizers}")
    string(REPLACE ";" "," _san_flag "${_san_list}")
    set(_gnu_like "$<CXX_COMPILER_ID:GNU,Clang,AppleClang>")
    target_compile_options(${target} INTERFACE
        $<${_gnu_like}:-fsanitize=${_san_flag};-fno-omit-frame-pointer;-g>)
    target_link_options(${target} INTERFACE
        $<${_gnu_like}:-fsanitize=${_san_flag}>)
endfunction()
