/** @file Tests for the Appendix F tiny computer. */

#include <gtest/gtest.h>

#include "analysis/resolve.hh"
#include "machines/tiny_computer.hh"
#include "sim/engine.hh"
#include "support/logging.hh"

namespace asim {
namespace {

TEST(TinyAssembler, Encoding)
{
    TinyAssembler as;
    // Opcodes follow the thesis macros: ~LD 256 ~ST 384 ~BB 512
    // ~BR 640 ~SU 768 (opcode in bits 7..9).
    EXPECT_EQ(as.ld(30), 0);
    EXPECT_EQ(as.image()[0], 256 + 30);
    as.st(32);
    EXPECT_EQ(as.image()[1], 384 + 32);
    as.bb(5);
    as.br(6);
    as.su(31);
    EXPECT_EQ(as.image()[2], 512 + 5);
    EXPECT_EQ(as.image()[3], 640 + 6);
    EXPECT_EQ(as.image()[4], 768 + 31);
    EXPECT_EQ(as.image().size(), size_t{kTinyMemWords});
}

TEST(TinyAssembler, Bounds)
{
    TinyAssembler as;
    EXPECT_THROW(as.ld(128), SpecError);
    EXPECT_THROW(as.ld(-1), SpecError);
}

TEST(TinyComputer, LoadStoreRoundTrip)
{
    // LD a; ST b; spin — memory cell b must receive cell a's value.
    TinyAssembler as;
    const int i0 = as.ld(0);
    const int i1 = as.st(0);
    const int spin = as.here();
    as.br(spin);
    const int a = as.cell(1234);
    const int b = as.cell(0);
    as.patchAddr(i0, a);
    as.patchAddr(i1, b);

    auto e = makeVm(resolveText(tinyComputerSpec(as.image(), 100)));
    e->run(3 * kTinyPhases + 2);
    EXPECT_EQ(e->memCell("memory", b), 1234);
    EXPECT_EQ(e->value("ac"), 1234);
}

TEST(TinyComputer, SubtractSetsBorrow)
{
    // LD a; SU b with a < b must set borrow; a >= b must clear it.
    auto build = [](int32_t a, int32_t b) {
        TinyAssembler as;
        const int i0 = as.ld(0);
        const int i1 = as.su(0);
        const int spin = as.here();
        as.br(spin);
        const int ca = as.cell(a);
        const int cb = as.cell(b);
        as.patchAddr(i0, ca);
        as.patchAddr(i1, cb);
        return as.image();
    };
    auto lt = makeVm(resolveText(tinyComputerSpec(build(3, 9), 100)));
    lt->run(3 * kTinyPhases);
    EXPECT_EQ(lt->value("borrow"), 1);
    EXPECT_EQ(lt->value("ac"), -6);

    auto ge = makeVm(resolveText(tinyComputerSpec(build(9, 3), 100)));
    ge->run(3 * kTinyPhases);
    EXPECT_EQ(ge->value("borrow"), 0);
    EXPECT_EQ(ge->value("ac"), 6);
}

TEST(TinyComputer, BranchRedirectsPc)
{
    TinyAssembler as;
    as.br(5);                    // 0: jump over the next words
    for (int i = 1; i < 5; ++i)
        as.word(0);              // filler (executes as opcode 0 = nop)
    const int spin = as.here();  // 5:
    as.br(spin);
    auto e = makeVm(resolveText(tinyComputerSpec(as.image(), 100)));
    // Two full instructions: BR 5, then the spin (BR 5) at 5 — the pc
    // ends on the branch target.
    e->run(2 * kTinyPhases);
    EXPECT_EQ(e->value("pc") & 0x7f, 5);
}

TEST(TinyComputer, ModProgram)
{
    int result = 0;
    auto img = tinyModProgram(23, 7, result);
    auto e = makeVm(resolveText(tinyComputerSpec(img, 1000)));
    e->run(400);
    EXPECT_EQ(e->memCell("memory", result), 2); // 23 mod 7
}

TEST(TinyComputer, ModProgramEdgeCases)
{
    struct Case
    {
        int32_t a, b, expect;
    };
    for (const Case &c : {Case{10, 2, 0}, Case{5, 9, 5},
                          Case{100, 13, 9}, Case{7, 7, 0}}) {
        int result = 0;
        auto img = tinyModProgram(c.a, c.b, result);
        auto e = makeVm(resolveText(tinyComputerSpec(img, 3000)));
        e->run(3000);
        EXPECT_EQ(e->memCell("memory", result), c.expect)
            << c.a << " mod " << c.b;
    }
}

TEST(TinyComputer, MulProgram)
{
    int result = 0;
    auto img = tinyMulProgram(6, 7, result);
    auto e = makeVm(resolveText(tinyComputerSpec(img, 3000)));
    e->run(3000);
    EXPECT_EQ(e->memCell("memory", result), 42);
}

TEST(TinyComputer, MulByZero)
{
    int result = 0;
    auto img = tinyMulProgram(9, 0, result);
    auto e = makeVm(resolveText(tinyComputerSpec(img, 2000)));
    e->run(2000);
    EXPECT_EQ(e->memCell("memory", result), 0);
}

TEST(TinyComputer, FourPhasesPerInstruction)
{
    // The phase selector must cycle 1,2,4,8 one-hot.
    TinyAssembler as;
    const int spin = as.here();
    as.br(spin);
    auto e = makeVm(resolveText(tinyComputerSpec(as.image(), 64)));
    std::vector<int32_t> phases;
    for (int i = 0; i < 8; ++i) {
        e->step();
        // phase is combinational over the pre-update state: the value
        // computed during cycle i corresponds to state == i mod 4.
        phases.push_back(e->value("phase"));
    }
    EXPECT_EQ(phases,
              (std::vector<int32_t>{1, 2, 4, 8, 1, 2, 4, 8}));
}

} // namespace
} // namespace asim
