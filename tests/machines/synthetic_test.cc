/** @file Tests for the synthetic specification generator. */

#include <gtest/gtest.h>

#include "analysis/resolve.hh"
#include "lang/parser.hh"
#include "machines/synthetic.hh"
#include "sim/engine.hh"

namespace asim {
namespace {

TEST(Synthetic, Deterministic)
{
    SyntheticOptions a, b;
    a.seed = b.seed = 42;
    EXPECT_EQ(generateSyntheticText(a), generateSyntheticText(b));
    b.seed = 43;
    EXPECT_NE(generateSyntheticText(a), generateSyntheticText(b));
}

TEST(Synthetic, RequestedComponentCounts)
{
    SyntheticOptions opts;
    opts.alus = 10;
    opts.selectors = 5;
    opts.memories = 4;
    Spec s = generateSynthetic(opts);
    int alus = 0, sels = 0, mems = 0;
    for (const auto &c : s.comps) {
        alus += c.kind == CompKind::Alu;
        sels += c.kind == CompKind::Selector;
        mems += c.kind == CompKind::Memory;
    }
    EXPECT_EQ(alus, 10);
    EXPECT_EQ(sels, 5);
    EXPECT_EQ(mems, 4);
}

/** Every generated spec must parse, resolve, and run 500 cycles on
 *  both engines without runtime faults. */
class SyntheticSafety : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(SyntheticSafety, ResolvesAndRuns)
{
    SyntheticOptions opts;
    opts.seed = GetParam();
    opts.alus = 12;
    opts.selectors = 6;
    opts.memories = 4;
    ResolvedSpec rs;
    ASSERT_NO_THROW(rs = resolve(parseSpec(generateSyntheticText(opts))));
    VectorIo io;
    for (int i = 0; i < 1024; ++i)
        io.pushInput(i);
    EngineConfig cfg;
    cfg.io = &io;
    auto e = makeVm(rs, cfg);
    EXPECT_NO_THROW(e->run(500));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticSafety,
                         ::testing::Range(100u, 140u));

} // namespace
} // namespace asim
