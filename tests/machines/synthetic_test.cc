/** @file Tests for the synthetic specification generator. */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/resolve.hh"
#include "lang/parser.hh"
#include "machines/synthetic.hh"
#include "sim/engine.hh"

namespace asim {
namespace {

TEST(Synthetic, Deterministic)
{
    SyntheticOptions a, b;
    a.seed = b.seed = 42;
    EXPECT_EQ(generateSyntheticText(a), generateSyntheticText(b));
    b.seed = 43;
    EXPECT_NE(generateSyntheticText(a), generateSyntheticText(b));
}

TEST(Synthetic, RequestedComponentCounts)
{
    SyntheticOptions opts;
    opts.alus = 10;
    opts.selectors = 5;
    opts.memories = 4;
    Spec s = generateSynthetic(opts);
    int alus = 0, sels = 0, mems = 0;
    for (const auto &c : s.comps) {
        alus += c.kind == CompKind::Alu;
        sels += c.kind == CompKind::Selector;
        mems += c.kind == CompKind::Memory;
    }
    EXPECT_EQ(alus, 10);
    EXPECT_EQ(sels, 5);
    EXPECT_EQ(mems, 4);
}

/** Every generated spec must parse, resolve, and run 500 cycles on
 *  both engines without runtime faults. */
class SyntheticSafety : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(SyntheticSafety, ResolvesAndRuns)
{
    SyntheticOptions opts;
    opts.seed = GetParam();
    opts.alus = 12;
    opts.selectors = 6;
    opts.memories = 4;
    ResolvedSpec rs;
    ASSERT_NO_THROW(rs = resolve(parseSpec(generateSyntheticText(opts))));
    VectorIo io;
    for (int i = 0; i < 1024; ++i)
        io.pushInput(i);
    EngineConfig cfg;
    cfg.io = &io;
    auto e = makeVm(rs, cfg);
    EXPECT_NO_THROW(e->run(500));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyntheticSafety,
                         ::testing::Range(100u, 140u));

/** Dependency depth of the resolved combinational network: longest
 *  chain of Var-bank references, in components. */
int
dependencyDepth(const ResolvedSpec &rs)
{
    std::vector<int> slotToComb(rs.numVarSlots, -1);
    for (size_t i = 0; i < rs.comb.size(); ++i)
        slotToComb[rs.comb[i].slot] = static_cast<int>(i);
    std::vector<int> level(rs.comb.size(), 0);
    int depth = 0;
    for (size_t i = 0; i < rs.comb.size(); ++i) {
        const CombComp &c = rs.comb[i];
        auto feed = [&](const ResolvedExpr &e) {
            for (const auto &t : e.terms) {
                if (t.bank != ResolvedTerm::Bank::Var)
                    continue;
                int p = slotToComb[t.slot];
                if (p >= 0 && level[p] + 1 > level[i])
                    level[i] = level[p] + 1;
            }
        };
        feed(c.funct);
        feed(c.left);
        feed(c.right);
        feed(c.select);
        for (const auto &cs : c.cases)
            feed(cs);
        depth = std::max(depth, level[i] + 1);
    }
    return depth;
}

TEST(SyntheticLayered, DepthBoundedByLayerCount)
{
    for (uint32_t seed : {1u, 7u, 21u}) {
        SyntheticOptions opts;
        opts.alus = 160;
        opts.selectors = 40;
        opts.memories = 4;
        opts.seed = seed;
        opts.layers = 6;
        ResolvedSpec rs = resolve(generateSynthetic(opts));
        EXPECT_LE(dependencyDepth(rs), 6) << "seed " << seed;
    }
}

TEST(SyntheticLayered, FullLocalityStaysDisconnected)
{
    // 100% locality references only the column directly above, so no
    // two columns ever merge: depth stays bounded AND the legacy mode
    // (layers = 0) produces a deeper network from the same budget.
    SyntheticOptions opts;
    opts.alus = 160;
    opts.selectors = 40;
    opts.memories = 4;
    opts.seed = 3;
    opts.layers = 5;
    opts.localityPercent = 100;
    ResolvedSpec layered = resolve(generateSynthetic(opts));
    EXPECT_LE(dependencyDepth(layered), 5);

    opts.layers = 0;
    ResolvedSpec legacy = resolve(generateSynthetic(opts));
    EXPECT_GT(dependencyDepth(legacy), 5);
}

TEST(SyntheticLayered, ResolvesAndRuns)
{
    for (uint32_t seed : {5u, 6u}) {
        SyntheticOptions opts;
        opts.seed = seed;
        opts.alus = 60;
        opts.selectors = 20;
        opts.memories = 4;
        opts.layers = 8;
        opts.localityPercent = 50;
        ResolvedSpec rs;
        ASSERT_NO_THROW(
            rs = resolve(parseSpec(generateSyntheticText(opts))));
        VectorIo io;
        for (int i = 0; i < 1024; ++i)
            io.pushInput(i);
        EngineConfig cfg;
        cfg.io = &io;
        auto vm = makeVm(rs, cfg);
        auto interp = makeInterpreter(rs, cfg);
        EXPECT_NO_THROW(vm->run(300));
        EXPECT_NO_THROW(interp->run(300));
    }
}

TEST(SyntheticPreset, NamesAndNumbers)
{
    SyntheticOptions k10 = syntheticPreset("10k");
    EXPECT_EQ(k10.alus + k10.selectors, 10000);
    EXPECT_EQ(k10.layers, 16);
    EXPECT_FALSE(k10.withIo);
    EXPECT_EQ(k10.tracedPercent, 0);

    EXPECT_EQ(syntheticPreset("1k").alus + syntheticPreset("1k").selectors,
              1000);
    EXPECT_EQ(syntheticPreset("250").alus +
                  syntheticPreset("250").selectors,
              250);

    EXPECT_THROW(syntheticPreset("bogus"), SpecError);
    EXPECT_THROW(syntheticPreset("0"), SpecError);
    EXPECT_THROW(syntheticPreset("-5"), SpecError);
    EXPECT_THROW(syntheticPreset("10kk"), SpecError);
}

TEST(SyntheticPreset, GeneratesDeterministically)
{
    EXPECT_EQ(generateSyntheticText(syntheticPreset("1k")),
              generateSyntheticText(syntheticPreset("1k")));
}

} // namespace
} // namespace asim
