/** @file Tests for the Itty Bitty Stack Machine. */

#include <gtest/gtest.h>

#include "analysis/resolve.hh"
#include "machines/stack_machine.hh"
#include "sim/engine.hh"
#include "support/logging.hh"

namespace asim {
namespace {

/** Run a program on the VM until HALT or `maxCycles`; returns the
 *  engine for inspection. */
std::unique_ptr<Engine>
runProgram(const std::vector<int32_t> &program, VectorIo *io,
           uint64_t maxCycles = 100000)
{
    ResolvedSpec rs = resolveText(stackMachineSpec(program, 1000));
    EngineConfig cfg;
    cfg.io = io;
    auto e = makeVm(rs, cfg);
    for (uint64_t c = 0; c < maxCycles; c += 64) {
        e->run(64);
        if (e->value("state") == kStackHaltState)
            return e;
    }
    ADD_FAILURE() << "program did not halt in " << maxCycles
                  << " cycles";
    return e;
}

/** Assemble, run, and return I/O-address-1 outputs. */
std::vector<int32_t>
outputsOf(StackAssembler &as)
{
    VectorIo io;
    runProgram(as.assemble(), &io);
    return io.outputsAt(1);
}

TEST(StackAssembler, LabelsResolve)
{
    StackAssembler as;
    auto l = as.newLabel();
    as.br(l);
    as.nop();
    as.bind(l);
    as.halt();
    auto prog = as.assemble();
    ASSERT_EQ(prog.size(), 4u);
    EXPECT_EQ(prog[0], kOpBr);
    EXPECT_EQ(prog[1], 3); // the halt's address
}

TEST(StackAssembler, UnboundLabelThrows)
{
    StackAssembler as;
    as.br(as.newLabel());
    EXPECT_THROW(as.assemble(), SpecError);
}

TEST(StackMachine, PushOut)
{
    StackAssembler as;
    as.pushi(42);
    as.out();
    as.halt();
    EXPECT_EQ(outputsOf(as), (std::vector<int32_t>{42}));
}

TEST(StackMachine, ArithmeticOps)
{
    struct Case
    {
        StackOp op;
        int32_t a, b, expect;
    };
    const Case cases[] = {
        {kOpAdd, 20, 22, 42},   {kOpSub, 50, 8, 42},
        {kOpMul, 6, 7, 42},     {kOpAnd, 0b1100, 0b1010, 0b1000},
        {kOpOr, 0b1100, 0b1010, 0b1110},
        {kOpXor, 0b1100, 0b1010, 0b0110},
        {kOpEq, 5, 5, 1},       {kOpEq, 5, 6, 0},
        {kOpLt, 5, 6, 1},       {kOpLt, 6, 5, 0},
    };
    for (const Case &c : cases) {
        StackAssembler as;
        as.pushi(c.a);
        as.pushi(c.b);
        switch (c.op) {
          case kOpAdd: as.add(); break;
          case kOpSub: as.sub(); break;
          case kOpMul: as.mul(); break;
          case kOpAnd: as.bitAnd(); break;
          case kOpOr: as.bitOr(); break;
          case kOpXor: as.bitXor(); break;
          case kOpEq: as.eq(); break;
          case kOpLt: as.lt(); break;
          default: FAIL();
        }
        as.out();
        as.halt();
        EXPECT_EQ(outputsOf(as), (std::vector<int32_t>{c.expect}))
            << "op " << c.op << " a=" << c.a << " b=" << c.b;
    }
}

TEST(StackMachine, UnaryOps)
{
    {
        StackAssembler as;
        as.pushi(5);
        as.neg();
        as.out();
        as.halt();
        EXPECT_EQ(outputsOf(as), (std::vector<int32_t>{-5}));
    }
    {
        StackAssembler as;
        as.pushi(0);
        as.bitNot();
        as.out();
        as.halt();
        EXPECT_EQ(outputsOf(as), (std::vector<int32_t>{0x7fffffff}));
    }
}

TEST(StackMachine, StackManipulation)
{
    // DUP: 7 dup add -> 14. SWAP: 1 2 swap sub -> 2-1 = 1.
    // DROP: 9 8 drop -> 9.
    {
        StackAssembler as;
        as.pushi(7);
        as.dup();
        as.add();
        as.out();
        as.halt();
        EXPECT_EQ(outputsOf(as), (std::vector<int32_t>{14}));
    }
    {
        StackAssembler as;
        as.pushi(1);
        as.pushi(2);
        as.swap();
        as.sub();
        as.out();
        as.halt();
        EXPECT_EQ(outputsOf(as), (std::vector<int32_t>{1}));
    }
    {
        StackAssembler as;
        as.pushi(9);
        as.pushi(8);
        as.drop();
        as.out();
        as.halt();
        EXPECT_EQ(outputsOf(as), (std::vector<int32_t>{9}));
    }
}

TEST(StackMachine, LoadStore)
{
    // Store 99 at address 5, load it back, print.
    StackAssembler as;
    as.pushi(99);
    as.pushi(5);
    as.store();
    as.pushi(5);
    as.load();
    as.out();
    as.halt();
    EXPECT_EQ(outputsOf(as), (std::vector<int32_t>{99}));
}

TEST(StackMachine, BranchesAndLoops)
{
    // Count 5 down to 0, printing each value.
    StackAssembler as;
    const int cell = 4;
    as.pushi(5);
    as.pushi(cell);
    as.store();
    auto loop = as.newLabel();
    auto done = as.newLabel();
    as.bind(loop);
    as.pushi(cell);
    as.load();
    as.dup();
    as.out();
    as.bz(done); // stops after printing 0
    as.pushi(cell);
    as.load();
    as.pushi(1);
    as.sub();
    as.pushi(cell);
    as.store();
    as.br(loop);
    as.bind(done);
    as.halt();
    EXPECT_EQ(outputsOf(as),
              (std::vector<int32_t>{5, 4, 3, 2, 1, 0}));
}

TEST(StackMachine, InputInstruction)
{
    StackAssembler as;
    as.in();
    as.in();
    as.add();
    as.out();
    as.halt();
    VectorIo io;
    io.pushInput(30);
    io.pushInput(12);
    runProgram(as.assemble(), &io);
    EXPECT_EQ(io.outputsAt(1), (std::vector<int32_t>{42}));
}

TEST(StackMachine, NopAndHalt)
{
    StackAssembler as;
    as.nop();
    as.nop();
    as.pushi(1);
    as.out();
    as.halt();
    EXPECT_EQ(outputsOf(as), (std::vector<int32_t>{1}));
}

TEST(StackMachine, HaltStateIsStable)
{
    StackAssembler as;
    as.halt();
    VectorIo io;
    auto e = runProgram(as.assemble(), &io);
    int32_t state = e->value("state");
    e->run(100);
    EXPECT_EQ(e->value("state"), state);
    EXPECT_EQ(state, kStackHaltState);
}

TEST(StackMachine, InvalidOpcodeHalts)
{
    // Undefined opcodes dispatch to a halt slot, not UB.
    std::vector<int32_t> prog{25, 0, 0};
    VectorIo io;
    auto e = runProgram(prog, &io);
    EXPECT_EQ(e->value("state"), kStackHaltState);
}

TEST(StackMachine, SieveReferenceValues)
{
    // size 20 sieves 3..43.
    auto ref = sieveReference(20);
    ASSERT_GE(ref.size(), 2u);
    EXPECT_EQ(ref.front(), 3);
    EXPECT_EQ(ref[ref.size() - 2], 43);
    EXPECT_EQ(ref.back(), 13); // 13 primes in 3..43
}

TEST(StackMachine, SievePrintsAllPrimes)
{
    VectorIo io;
    auto e = runProgram(sieveProgram(20), &io);
    EXPECT_EQ(io.outputsAt(1), sieveReference(20));
    // Report the completion cycle so the Figure 5.1 budget can be
    // sanity-checked against the thesis' 5545 cycles.
    std::cout << "[ sieve(20) halted at cycle " << e->cycle() << " ]\n";
}

TEST(StackMachine, SieveSizesSweep)
{
    for (int size : {1, 2, 5, 10, 30}) {
        VectorIo io;
        runProgram(sieveProgram(size), &io, 400000);
        EXPECT_EQ(io.outputsAt(1), sieveReference(size))
            << "size " << size;
    }
}

TEST(StackMachine, InterpreterAgreesOnSieve)
{
    ResolvedSpec rs = resolveText(stackMachineSpec(sieveProgram(10),
                                                   20000));
    VectorIo a, b;
    EngineConfig ca, cb;
    ca.io = &a;
    cb.io = &b;
    auto interp = makeInterpreter(rs, ca);
    auto vm = makeVm(rs, cb);
    interp->run(20000);
    vm->run(20000);
    EXPECT_EQ(a.outputs(), b.outputs());
    EXPECT_EQ(a.outputsAt(1), sieveReference(10));
}

} // namespace
} // namespace asim
