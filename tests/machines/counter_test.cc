/** @file Tests for the introductory machines. */

#include <gtest/gtest.h>

#include "analysis/resolve.hh"
#include "machines/counter.hh"
#include "sim/engine.hh"
#include "support/logging.hh"

namespace asim {
namespace {

TEST(Counter, WrapsAtWidth)
{
    auto e = makeVm(resolveText(counterSpec(3, 100)));
    for (int i = 1; i <= 20; ++i) {
        e->step();
        EXPECT_EQ(e->value("count") & 7, i % 8) << "cycle " << i;
    }
}

TEST(Counter, WidthValidation)
{
    EXPECT_THROW(counterSpec(0, 10), SpecError);
    EXPECT_THROW(counterSpec(31, 10), SpecError);
    EXPECT_NO_THROW(counterSpec(30, 10));
}

TEST(Counter, CyclesDirectivePropagates)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 123));
    EXPECT_TRUE(rs.spec.cyclesSpecified);
    EXPECT_EQ(rs.spec.cycles, 123);
}

TEST(TrafficLight, PeriodIsEight)
{
    auto e = makeVm(resolveText(trafficLightSpec(100)));
    // Skip the 1-cycle startup transient, then measure one period.
    e->run(5); // now in a steady state (phase 0 run started)
    std::vector<int32_t> a, b;
    for (int i = 0; i < 8; ++i) {
        a.push_back(e->value("phase"));
        e->step();
    }
    for (int i = 0; i < 8; ++i) {
        b.push_back(e->value("phase"));
        e->step();
    }
    EXPECT_EQ(a, b) << "phase sequence must be periodic";
}

TEST(TrafficLight, SpendsFourCyclesGreen)
{
    auto e = makeVm(resolveText(trafficLightSpec(100)));
    e->run(2); // transient
    int green = 0, yellow = 0, red = 0;
    for (int i = 0; i < 16; ++i) {
        switch (e->value("phase")) {
          case 0:
            ++green;
            break;
          case 1:
            ++yellow;
            break;
          case 2:
            ++red;
            break;
          default:
            FAIL() << "impossible phase";
        }
        e->step();
    }
    EXPECT_EQ(green, 8);
    EXPECT_EQ(yellow, 2);
    EXPECT_EQ(red, 6);
}

} // namespace
} // namespace asim
