/** @file
 * asim-serve tests: protocol round trips against an in-process
 * ServeServer, byte-identity of session output versus direct
 * Simulation runs, concurrent multi-tenant sessions, pipelined
 * stepping, explicit and idle-sweep eviction with transparent
 * resume, daemon-restart (and simulated-kill) recovery, the error
 * surface, and end-to-end runs of the real `asim-serve` and
 * `asim-run --connect` binaries.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "machines/counter.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "support/metrics.hh"
#include "sim/checkpoint.hh"
#include "sim/native_engine.hh"
#include "sim/simulation.hh"

namespace asim::serve {
namespace {

const char *kEchoSpec = "# integer echo\n"
                        "= 9\n"
                        "in out .\n"
                        "M in 1 0 2 1\n"
                        "M out 1 in 3 1\n"
                        ".\n";

const std::vector<int32_t> kEchoInputs = {11, 22, 33, 44, 55,
                                          66, 77, 88, 99, 110};

/** The session's byte stream, computed the direct way: one stream
 *  takes both scripted-I/O rendering and (optionally) the trace. */
std::string
directOutput(const ServeClient::OpenOptions &o, uint64_t cycles)
{
    std::ostringstream os;
    SimulationOptions opts;
    opts.specText = o.specText;
    opts.ioMode =
        o.io == SessionIo::Script ? IoMode::Script : IoMode::Null;
    opts.scriptInputs = o.inputs;
    opts.config.aluSemantics =
        o.aluFixed ? AluSemantics::Fixed : AluSemantics::Thesis;
    opts.ioOut = &os;
    if (o.trace)
        opts.traceStream = &os;
    Simulation sim(opts);
    sim.run(cycles);
    return os.str();
}

ServeClient::OpenOptions
echoOpen(const std::string &name)
{
    ServeClient::OpenOptions o;
    o.name = name;
    o.specText = kEchoSpec;
    o.io = SessionIo::Script;
    o.inputs = kEchoInputs;
    return o;
}

ServeClient::OpenOptions
counterOpen(const std::string &name)
{
    ServeClient::OpenOptions o;
    o.name = name;
    o.specText = counterSpec(4, 100);
    o.trace = true;
    return o;
}

/** Scratch area + short socket path (sockaddr_un caps paths at
 *  ~108 bytes, so everything lives directly under /tmp). */
class Serve : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const char *test = ::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->name();
        base_ = "/tmp/asrv_" + std::to_string(::getpid()) + "_" +
                test;
        std::filesystem::remove_all(base_);
        std::filesystem::create_directories(base_);
        sock_ = base_ + "/s";
    }

    void TearDown() override { std::filesystem::remove_all(base_); }

    ServeOptions
    serveOpts() const
    {
        ServeOptions o;
        o.unixPath = sock_;
        o.stateDir = base_ + "/state";
        return o;
    }

    std::string base_;
    std::string sock_;
};

// ---------------------------------------------------------------------
// Round trips and byte-identity against direct runs.
// ---------------------------------------------------------------------

TEST_F(Serve, RoundTripMatchesDirectSimulation)
{
    ServeServer server(serveOpts());
    server.start();

    ServeClient client(sock_);
    auto open = echoOpen("echo");
    auto session = client.open(open);
    EXPECT_NE(session.id, 0u);
    EXPECT_EQ(session.cycle, 0u);
    EXPECT_FALSE(session.resumed);
    // "= 9" is 10 thesis iterations (Simulation::defaultCycles).
    EXPECT_EQ(session.defaultCycles, 10);

    auto run = client.run(session.id, 9);
    EXPECT_EQ(run.cycle, 9u);
    EXPECT_EQ(run.output, directOutput(open, 9));
    EXPECT_EQ(client.value(session.id, "out"), 99);
    client.closeSession(session.id);
    EXPECT_THROW(client.run(session.id, 1), SimError);
}

TEST_F(Serve, TracedSessionStreamsTheTrace)
{
    ServeServer server(serveOpts());
    server.start();

    ServeClient client(sock_);
    auto open = counterOpen("counter");
    auto session = client.open(open);
    auto run = client.run(session.id, 6);
    std::string expect = directOutput(open, 6);
    ASSERT_FALSE(expect.empty());
    EXPECT_EQ(run.output, expect);
}

TEST_F(Serve, SplitRunsStreamDeltas)
{
    ServeServer server(serveOpts());
    server.start();

    ServeClient client(sock_);
    auto open = echoOpen("echo");
    auto session = client.open(open);
    std::string total;
    total += client.run(session.id, 3).output;
    total += client.run(session.id, 2).output;
    auto last = client.run(session.id, 4);
    total += last.output;
    EXPECT_EQ(last.cycle, 9u);
    EXPECT_EQ(total, directOutput(open, 9));
}

TEST_F(Serve, PipelinedSteppingMatchesOneAtATime)
{
    ServeServer server(serveOpts());
    server.start();

    ServeClient client(sock_);
    auto open = echoOpen("echo");
    auto session = client.open(open);
    for (int i = 0; i < 9; ++i)
        client.sendRun(session.id, 1);
    std::string total;
    uint64_t cycle = 0;
    for (int i = 0; i < 9; ++i) {
        auto reply = client.readRunReply();
        EXPECT_EQ(reply.cycle, static_cast<uint64_t>(i + 1));
        cycle = reply.cycle;
        total += reply.output;
    }
    EXPECT_EQ(cycle, 9u);
    EXPECT_EQ(total, directOutput(open, 9));
}

TEST_F(Serve, ReopeningAttachesToTheLiveSession)
{
    ServeServer server(serveOpts());
    server.start();

    ServeClient a(sock_);
    auto open = echoOpen("shared");
    auto first = a.open(open);
    a.run(first.id, 4);

    // Another connection attaches by name — with or without the
    // spec text — and sees the same session mid-flight.
    ServeClient b(sock_);
    ServeClient::OpenOptions attach;
    attach.name = "shared";
    auto second = b.open(attach);
    EXPECT_EQ(second.id, first.id);
    EXPECT_EQ(second.cycle, 4u);
    auto third = b.open(open);
    EXPECT_EQ(third.id, first.id);
}

// ---------------------------------------------------------------------
// Concurrency: many clients, many sessions, one daemon.
// ---------------------------------------------------------------------

TEST_F(Serve, ConcurrentClientsKeepSessionsByteIdentical)
{
    ServeServer server(serveOpts());
    server.start();

    constexpr int kClients = 4;
    constexpr int kSessionsEach = 2;
    std::vector<std::thread> threads;
    std::vector<std::string> errors(kClients);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            try {
                ServeClient client(sock_);
                for (int s = 0; s < kSessionsEach; ++s) {
                    std::string name = "t" + std::to_string(c) +
                                       "_" + std::to_string(s);
                    // Alternate tenants between the scripted echo
                    // and the traced counter.
                    auto open = (c + s) % 2 ? counterOpen(name)
                                            : echoOpen(name);
                    auto session = client.open(open);
                    std::string total;
                    for (int chunk = 0; chunk < 3; ++chunk)
                        total +=
                            client.run(session.id, 3).output;
                    if (total != directOutput(open, 9))
                        throw SimError(name + ": output diverged");
                    client.closeSession(session.id);
                }
            } catch (const std::exception &e) {
                errors[c] = e.what();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (int c = 0; c < kClients; ++c)
        EXPECT_EQ(errors[c], "") << "client " << c;
}

// ---------------------------------------------------------------------
// Eviction: explicit, idle-sweep, and resume across restarts.
// ---------------------------------------------------------------------

TEST_F(Serve, ExplicitEvictThenContinueIsByteIdentical)
{
    ServeServer server(serveOpts());
    server.start();

    ServeClient client(sock_);
    auto open = echoOpen("parked");
    auto session = client.open(open);
    std::string total = client.run(session.id, 4).output;

    client.evict(session.id);
    EXPECT_TRUE(std::filesystem::exists(base_ +
                                        "/state/parked.ckpt"));
    EXPECT_TRUE(std::filesystem::exists(base_ +
                                        "/state/parked.meta"));

    // Any command transparently resumes the parked session.
    auto run = client.run(session.id, 5);
    total += run.output;
    EXPECT_EQ(run.cycle, 9u);
    EXPECT_EQ(total, directOutput(open, 9));

    std::string stats = server.statsJson();
    EXPECT_NE(stats.find("\"evictions\":1"), std::string::npos)
        << stats;
    EXPECT_NE(stats.find("\"resumes\":1"), std::string::npos)
        << stats;
}

TEST_F(Serve, IdleSweepParksSessionsAutomatically)
{
    ServeOptions o = serveOpts();
    o.evictAfterMs = 50;
    o.sweepIntervalMs = 10;
    ServeServer server(o);
    server.start();

    ServeClient client(sock_);
    auto open = counterOpen("idle");
    auto session = client.open(open);
    std::string total = client.run(session.id, 2).output;

    // The sweep parks the idle session without any client action.
    std::string meta = base_ + "/state/idle.meta";
    for (int i = 0; i < 200 && !std::filesystem::exists(meta); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(std::filesystem::exists(meta)) << "never swept";

    total += client.run(session.id, 4).output;
    EXPECT_EQ(total, directOutput(open, 6));
}

TEST_F(Serve, GracefulRestartResumesSessionsByName)
{
    auto open = echoOpen("durable");
    std::string total;
    uint64_t firstHash = 0;
    {
        ServeServer server(serveOpts());
        server.start();
        ServeClient client(sock_);
        auto session = client.open(open);
        firstHash = session.specHash;
        total += client.run(session.id, 4).output;
        server.stop(/*parkSessions=*/true);
    }
    {
        ServeServer server(serveOpts());
        server.start();
        ServeClient client(sock_);
        // Attach without re-uploading the spec: the parked meta
        // carries the full rebuild recipe.
        ServeClient::OpenOptions attach;
        attach.name = "durable";
        auto session = client.open(attach);
        EXPECT_TRUE(session.resumed);
        EXPECT_EQ(session.cycle, 4u);
        EXPECT_EQ(session.specHash, firstHash);
        auto run = client.run(session.id, 5);
        total += run.output;
        EXPECT_EQ(run.cycle, 9u);
    }
    EXPECT_EQ(total, directOutput(open, 9));
}

TEST_F(Serve, HardKillKeepsParkedSessionsLosesLiveOnes)
{
    auto openA = echoOpen("evicted");
    auto openB = echoOpen("live");
    std::string totalA;
    {
        ServeServer server(serveOpts());
        server.start();
        ServeClient client(sock_);
        auto a = client.open(openA);
        totalA += client.run(a.id, 4).output;
        client.evict(a.id);
        auto b = client.open(openB);
        client.run(b.id, 4);
        server.stop(/*parkSessions=*/false); // simulated SIGKILL
    }
    {
        ServeServer server(serveOpts());
        server.start();
        ServeClient client(sock_);
        ServeClient::OpenOptions attach;
        attach.name = "evicted";
        auto a = client.open(attach);
        EXPECT_TRUE(a.resumed);
        EXPECT_EQ(a.cycle, 4u);
        totalA += client.run(a.id, 5).output;
        EXPECT_EQ(totalA, directOutput(openA, 9));

        attach.name = "live";
        EXPECT_THROW(client.open(attach), SimError);
    }
}

// ---------------------------------------------------------------------
// Snapshot / restore over the wire.
// ---------------------------------------------------------------------

TEST_F(Serve, SnapshotBlobIsACheckpointFile)
{
    ServeServer server(serveOpts());
    server.start();

    ServeClient client(sock_);
    auto session = client.open(echoOpen("snap"));
    client.run(session.id, 4);
    std::string blob = client.snapshot(session.id);

    CheckpointInfo info;
    EngineSnapshot snap = decodeCheckpoint(blob, "mem", &info);
    EXPECT_EQ(info.cycle, 4u);
    EXPECT_EQ(info.specHash, session.specHash);
    EXPECT_EQ(snap.cycle, 4u);

    // ... and round-trips back through RESTORE.
    client.run(session.id, 5);
    EXPECT_EQ(client.restore(session.id, blob), 4u);
    EXPECT_EQ(client.run(session.id, 5).cycle, 9u);
}

TEST_F(Serve, RestoreRejectsBlobsFromAnotherSpec)
{
    ServeServer server(serveOpts());
    server.start();

    ServeClient client(sock_);
    auto counter = client.open(counterOpen("counter"));
    client.run(counter.id, 3);
    std::string blob = client.snapshot(counter.id);

    auto echo = client.open(echoOpen("echo"));
    EXPECT_THROW(client.restore(echo.id, blob), SimError);
}

// ---------------------------------------------------------------------
// The error surface: hostile or confused clients get diagnostics,
// never a dead daemon.
// ---------------------------------------------------------------------

TEST_F(Serve, ErrorsAreDiagnosticAndNonFatal)
{
    ServeServer server(serveOpts());
    server.start();

    ServeClient client(sock_);
    auto bad = echoOpen("../evil");
    EXPECT_THROW(client.open(bad), SimError);

    ServeClient::OpenOptions attach;
    attach.name = "nosuch";
    EXPECT_THROW(client.open(attach), SimError);

    EXPECT_THROW(client.run(12345, 1), SimError);
    EXPECT_THROW(client.value(12345, "out"), SimError);

    auto broken = echoOpen("broken");
    broken.specText = "this is not a spec";
    EXPECT_THROW(client.open(broken), SimError);

    // A session name can't be reused for a different spec.
    auto first = client.open(echoOpen("taken"));
    auto conflict = counterOpen("taken");
    EXPECT_THROW(client.open(conflict), SimError);

    // The connection survives every error above.
    EXPECT_EQ(client.run(first.id, 9).cycle, 9u);
}

TEST_F(Serve, TcpEndpointSpeaksTheSameProtocol)
{
    ServeOptions o = serveOpts();
    o.unixPath.clear();
    o.tcpPort = 0; // ephemeral
    ServeServer server(o);
    server.start();

    ServeClient client("tcp:127.0.0.1:" +
                       std::to_string(server.tcpPort()));
    auto open = echoOpen("tcp");
    auto session = client.open(open);
    EXPECT_EQ(client.run(session.id, 9).output,
              directOutput(open, 9));
}

TEST_F(Serve, StatsJsonReportsThroughputAndCacheHits)
{
    ServeServer server(serveOpts());
    server.start();

    ServeClient client(sock_);
    auto session = client.open(echoOpen("stats"));
    client.run(session.id, 9);

    std::string stats = client.statsJson();
    EXPECT_NE(stats.find("\"sessions_opened\":1"),
              std::string::npos)
        << stats;
    EXPECT_NE(stats.find("\"run_commands\":1"), std::string::npos);
    EXPECT_NE(stats.find("\"vm\""), std::string::npos);
    EXPECT_NE(stats.find("\"cycles\":9"), std::string::npos);
    EXPECT_NE(stats.find("native_compile_cache_hits"),
              std::string::npos);
}

TEST_F(Serve, StatsJsonCarriesUptimePeakAndPerOpcodeCounts)
{
    ServeServer server(serveOpts());
    server.start();

    ServeClient client(sock_);
    auto session = client.open(echoOpen("statsplus"));
    client.run(session.id, 4);
    client.run(session.id, 5);

    std::string stats = client.statsJson();
    EXPECT_NE(stats.find("\"uptime_seconds\":"), std::string::npos)
        << stats;
    EXPECT_NE(stats.find("\"peak_sessions_live\":1"),
              std::string::npos)
        << stats;
    // Per-opcode request counts (DESIGN.md §9): 1 hello, 1 open,
    // 2 runs; the stats request itself is in flight, so its own
    // count was taken before the reply was built.
    EXPECT_NE(stats.find("\"requests\":{"), std::string::npos)
        << stats;
    EXPECT_NE(stats.find("\"hello\":1"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"open\":1"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"run\":2"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"unknown\":0"), std::string::npos) << stats;
}

// ---------------------------------------------------------------------
// METRICS (protocol v3) and version negotiation.
// ---------------------------------------------------------------------

TEST_F(Serve, MetricsRoundTripExposesTheRegistry)
{
    const bool wasTimed = metrics::timingEnabled();
    metrics::setTimingEnabled(true); // as the daemon binary does

    ServeServer server(serveOpts());
    server.start();

    ServeClient client(sock_);
    EXPECT_EQ(client.serverVersion(), kProtocolVersion);
    auto open = echoOpen("metrics");
    auto session = client.open(open);
    std::string output = client.run(session.id, 9).output;

    std::string scrape = client.metricsJson();
    EXPECT_NE(scrape.find("\"uptime_seconds\":"), std::string::npos)
        << scrape;
    EXPECT_NE(scrape.find("\"stats\":{"), std::string::npos);
    EXPECT_NE(scrape.find("\"registry\":{"), std::string::npos);
    // Request latencies populate per opcode once timing is on.
    EXPECT_NE(scrape.find("serve.request_ns.run"), std::string::npos)
        << scrape;
    EXPECT_NE(scrape.find("serve.sessions_live"), std::string::npos);
    EXPECT_NE(scrape.find("serve.sessions_opened"),
              std::string::npos);

    // Scraping never disturbs session results.
    EXPECT_EQ(output, directOutput(open, 9));

    metrics::setTimingEnabled(wasTimed);
}

TEST_F(Serve, V2ClientNegotiatesAndIsRefusedMetrics)
{
    ServeServer server(serveOpts());
    server.start();

    // Hand-rolled v2 handshake: the server must echo version 2 (the
    // reply an old client's `version != kProtocolVersion` check
    // accepts) and answer ERR to the v3-only METRICS opcode.
    FrameChannel ch(connectEndpoint(sock_));
    ByteWriter hello;
    hello.u8(static_cast<uint8_t>(Op::Hello));
    hello.str(std::string(kHelloMagic));
    hello.u32(2);
    ASSERT_TRUE(ch.writeFrame(hello.data()));
    std::string resp;
    ASSERT_TRUE(ch.readFrame(resp));
    {
        ByteReader r(resp, "hello reply");
        EXPECT_EQ(r.u8("status"),
                  static_cast<uint8_t>(Status::Ok));
        EXPECT_EQ(r.u32("version"), 2u);
    }

    ByteWriter metricsReq;
    metricsReq.u8(static_cast<uint8_t>(Op::Metrics));
    ASSERT_TRUE(ch.writeFrame(metricsReq.data()));
    ASSERT_TRUE(ch.readFrame(resp));
    {
        ByteReader r(resp, "metrics reply");
        EXPECT_EQ(r.u8("status"),
                  static_cast<uint8_t>(Status::Error));
        EXPECT_NE(r.str("error").find("protocol v3"),
                  std::string::npos);
    }

    // The connection survives; STATS still works at v2.
    ByteWriter stats;
    stats.u8(static_cast<uint8_t>(Op::Stats));
    ASSERT_TRUE(ch.writeFrame(stats.data()));
    ASSERT_TRUE(ch.readFrame(resp));
    {
        ByteReader r(resp, "stats reply");
        EXPECT_EQ(r.u8("status"),
                  static_cast<uint8_t>(Status::Ok));
        EXPECT_NE(r.str("stats json").find("sessions_live"),
                  std::string::npos);
    }
}

TEST_F(Serve, UnsupportedHelloVersionIsRejected)
{
    ServeServer server(serveOpts());
    server.start();

    FrameChannel ch(connectEndpoint(sock_));
    ByteWriter hello;
    hello.u8(static_cast<uint8_t>(Op::Hello));
    hello.str(std::string(kHelloMagic));
    hello.u32(1); // older than kMinProtocolVersion
    ASSERT_TRUE(ch.writeFrame(hello.data()));
    std::string resp;
    ASSERT_TRUE(ch.readFrame(resp));
    ByteReader r(resp, "hello reply");
    EXPECT_EQ(r.u8("status"), static_cast<uint8_t>(Status::Error));
    EXPECT_NE(r.str("error").find("protocol mismatch"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Native sessions: per-session subprocess isolation, shared
// compile cache across tenants.
// ---------------------------------------------------------------------

class ServeNative : public Serve
{
  protected:
    void
    SetUp() override
    {
        if (!NativeEngine::available())
            GTEST_SKIP() << "no host compiler";
        Serve::SetUp();
    }
};

TEST_F(ServeNative, NativeTenantsShareTheCompileCache)
{
    ServeServer server(serveOpts());
    server.start();

    ServeClient client(sock_);
    auto openOne = counterOpen("native1");
    openOne.engine = "native";
    auto openTwo = counterOpen("native2");
    openTwo.engine = "native";

    auto one = client.open(openOne);
    auto two = client.open(openTwo);
    EXPECT_EQ(client.run(one.id, 6).output,
              directOutput(openOne, 6));
    EXPECT_EQ(client.run(two.id, 6).output,
              directOutput(openTwo, 6));

    // Two native OPENs of one spec: the second hits the cache.
    std::string stats = client.statsJson();
    EXPECT_NE(stats.find("\"native_compile_requests\":2"),
              std::string::npos)
        << stats;
    EXPECT_NE(stats.find("\"native_compile_cache_hits\":1"),
              std::string::npos)
        << stats;
}

// ---------------------------------------------------------------------
// The real binaries, end to end.
// ---------------------------------------------------------------------

#if defined(ASIM_SERVE_BIN) && defined(ASIM_RUN_BIN)

TEST_F(Serve, DaemonBinaryServesAndShutsDownCleanly)
{
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        std::string sockArg = "--socket=" + sock_;
        std::string stateArg = "--state-dir=" + base_ + "/state";
        ::execl(ASIM_SERVE_BIN, "asim-serve", sockArg.c_str(),
                stateArg.c_str(), "--quiet", (char *)nullptr);
        ::_exit(127);
    }

    // The daemon binds before serving; retry until it's up.
    std::unique_ptr<ServeClient> client;
    for (int i = 0; i < 100 && !client; ++i) {
        try {
            client = std::make_unique<ServeClient>(sock_);
        } catch (const SimError &) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
    }
    ASSERT_TRUE(client) << "daemon never came up";

    auto open = echoOpen("e2e");
    auto session = client->open(open);
    EXPECT_EQ(client->run(session.id, 9).output,
              directOutput(open, 9));
    client->shutdownServer();

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "daemon exit status " << status;
}

TEST_F(Serve, AsimRunConnectMatchesDirectRun)
{
    ServeServer server(serveOpts());
    server.start();

    std::string specFile = base_ + "/counter.spec";
    std::ofstream(specFile) << counterSpec(4, 100);
    std::string outFile = base_ + "/out.txt";

    std::string cmd = std::string(ASIM_RUN_BIN) +
                      " --connect=unix:" + sock_ +
                      " --cycles=6 " + specFile + " > " + outFile +
                      " 2> " + base_ + "/err.txt";
    int rc = std::system(cmd.c_str());
    ASSERT_TRUE(WIFEXITED(rc) && WEXITSTATUS(rc) == 0)
        << "asim-run --connect failed, rc=" << rc;

    std::ifstream got(outFile);
    std::string output{std::istreambuf_iterator<char>(got),
                       std::istreambuf_iterator<char>()};
    // The CLI opens with trace on by default; the counter's starred
    // component makes the trace the whole output.
    auto open = counterOpen("ignored");
    EXPECT_EQ(output, directOutput(open, 6));

    // Admin mode: --server-stats without a spec.
    std::string statsFile = base_ + "/stats.json";
    cmd = std::string(ASIM_RUN_BIN) + " --connect=unix:" + sock_ +
          " --server-stats > " + statsFile + " 2> /dev/null";
    rc = std::system(cmd.c_str());
    ASSERT_TRUE(WIFEXITED(rc) && WEXITSTATUS(rc) == 0);
    std::ifstream sf(statsFile);
    std::string stats{std::istreambuf_iterator<char>(sf),
                      std::istreambuf_iterator<char>()};
    EXPECT_NE(stats.find("\"sessions_opened\":1"),
              std::string::npos)
        << stats;
}

#endif // ASIM_SERVE_BIN && ASIM_RUN_BIN

} // namespace
} // namespace asim::serve
