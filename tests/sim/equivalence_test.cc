/** @file
 * Engine-equivalence property tests: the interpreter (ASIM analog) and
 * the bytecode VM (ASIM II analog) must produce identical traces,
 * identical I/O, and identical final state on randomly generated
 * specifications — the library's strongest correctness guarantee.
 * All engine runs are constructed as BatchRunner jobs (one per
 * engine or flag combination) sharing a single resolve, so the
 * harness doubles as a parallel-execution soak of the batch
 * subsystem (the native pipeline has its own leg in
 * native_equivalence_test.cc, gated on a host compiler).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "analysis/resolve.hh"
#include "machines/counter.hh"
#include "machines/stack_machine.hh"
#include "machines/synthetic.hh"
#include "machines/tiny_computer.hh"
#include "sim/batch.hh"
#include "sim/io.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace asim {
namespace {

using SharedSpec = std::shared_ptr<const ResolvedSpec>;

SharedSpec
share(ResolvedSpec rs)
{
    return std::make_shared<const ResolvedSpec>(std::move(rs));
}

/** One engine/flag variant to run against the shared spec. */
struct Variant
{
    std::string engine;
    CompilerOptions compiler;
    std::string label;
    std::string fault = {}; ///< optional fault text (--inject form)
};

/**
 * Run every variant as one BatchRunner job off the shared resolve —
 * all instances concurrently — and return the per-variant results in
 * variant order. Each job owns its VectorIo (inputs are mirrored into
 * every instance) and captures its trace per-instance.
 */
std::vector<InstanceResult>
runVariants(const std::vector<Variant> &variants, const SharedSpec &rs,
            uint64_t cycles, const std::vector<int32_t> &inputs)
{
    std::vector<std::unique_ptr<VectorIo>> ios;
    BatchRunner runner;
    for (const Variant &v : variants) {
        auto io = std::make_unique<VectorIo>();
        for (int32_t value : inputs)
            io->pushInput(value);
        BatchJob job;
        job.options.resolved = rs;
        job.options.engine = v.engine;
        job.options.compiler = v.compiler;
        job.options.fault = v.fault;
        job.options.config.io = io.get();
        job.cycles = cycles;
        job.captureTrace = true;
        job.label = v.label.empty() ? v.engine : v.label;
        runner.addJob(std::move(job));
        ios.push_back(std::move(io));
    }

    BatchResult batch = runner.run();
    std::vector<InstanceResult> results =
        std::move(batch.instances);
    // VectorIo keeps the canonical thesis-format rendering.
    for (size_t i = 0; i < results.size(); ++i)
        results[i].ioText = ios[i]->text();
    return results;
}

void
expectEquivalent(const SharedSpec &rs, uint64_t cycles,
                 const std::vector<int32_t> &inputs = {})
{
    auto results = runVariants({{"interp", {}, ""},
                                {"vm", {}, ""},
                                {"symbolic", {}, ""}},
                               rs, cycles, inputs);
    const InstanceResult &a = results[0];
    for (size_t i = 1; i < results.size(); ++i) {
        const InstanceResult &b = results[i];
        EXPECT_EQ(a.faulted, b.faulted) << b.engine;
        if (a.faulted) {
            // Same diagnostic, modulo nothing: both name the
            // component.
            EXPECT_EQ(a.fault, b.fault) << b.engine;
        }
        EXPECT_EQ(a.traceText, b.traceText) << b.engine;
        EXPECT_EQ(a.ioText, b.ioText) << b.engine;
        EXPECT_TRUE(a.state == b.state)
            << "final state differs: " << b.engine;
    }
}

TEST(Equivalence, Counter)
{
    expectEquivalent(share(resolveText(counterSpec(6, 100))), 100);
}

TEST(Equivalence, TrafficLight)
{
    expectEquivalent(share(resolveText(trafficLightSpec(64))), 64);
}

TEST(Equivalence, TinyComputer)
{
    int result = 0;
    auto img = tinyModProgram(23, 7, result);
    expectEquivalent(share(resolveText(tinyComputerSpec(img, 400))),
                     400);
}

TEST(Equivalence, StackMachineSieve)
{
    expectEquivalent(
        share(resolveText(
            stackMachineSpec(sieveProgram(8), 6000, true))),
        6000);
}

/** The main property sweep: random specs across many seeds. */
class EquivalenceProperty : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(EquivalenceProperty, RandomSpec)
{
    SyntheticOptions opts;
    opts.seed = GetParam();
    opts.alus = 6 + GetParam() % 8;
    opts.selectors = 2 + GetParam() % 4;
    opts.memories = 1 + GetParam() % 4;
    SharedSpec rs = share(resolve(generateSynthetic(opts)));
    std::vector<int32_t> inputs;
    for (int i = 0; i < 256; ++i)
        inputs.push_back((i * 2654435761u) % 4096);
    expectEquivalent(rs, 200, inputs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProperty,
                         ::testing::Range(1u, 41u));

/** Optimization flags must never change behavior (VM vs VM). */
class OptEquivalence : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(OptEquivalence, AllFlagCombos)
{
    SyntheticOptions sopts;
    sopts.seed = GetParam() * 7919;
    SharedSpec rs = share(resolve(generateSynthetic(sopts)));

    std::vector<int32_t> inputs;
    for (int i = 0; i < 128; ++i)
        inputs.push_back(i * 37 % 1000);

    // All 32 flag combinations plus the reference run as one batch.
    // Bit 4 drops the whole cycle-stream optimizer (fusion,
    // dead-store elimination, check elision) so every compile-time
    // combination also runs against the unoptimized stream.
    std::vector<Variant> variants{{"vm", {}, "reference"}};
    for (int m = 0; m < 32; ++m) {
        CompilerOptions copts;
        copts.inlineConstAlu = m & 1;
        copts.specializeConstMem = m & 2;
        copts.constSelectorTables = m & 4;
        copts.elideUnusedTemps = m & 8;
        copts.fuseSuperinstructions = !(m & 16);
        copts.eliminateDeadStores = !(m & 16);
        copts.elideRedundantChecks = !(m & 16);
        variants.push_back(
            {"vm", copts, "flags" + std::to_string(m)});
    }
    auto results = runVariants(variants, rs, 100, inputs);
    std::string reference =
        results[0].traceText + "|" + results[0].ioText;
    for (size_t i = 1; i < results.size(); ++i) {
        EXPECT_EQ(results[i].traceText + "|" + results[i].ioText,
                  reference)
            << results[i].label;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptEquivalence,
                         ::testing::Range(1u, 11u));

/** Injected faults must corrupt every engine identically: a spec
 *  splice (permanent stuck bit) and a transient @cycle state upset
 *  each produce byte-identical traces, I/O, and final state across
 *  the in-process engines — and differ from the healthy run. */
TEST(Equivalence, InjectedFaultsMatchAcrossEngines)
{
    struct FaultCase
    {
        const char *fault;
        bool observable; ///< the counter never reads count's cell
                         ///< back, so a cell upset stays masked
    };
    SharedSpec rs = share(resolveText(counterSpec(6, 100)));
    for (const FaultCase &c :
         {FaultCase{"next:2:set1", true},
          FaultCase{"count:1:set0", true},
          FaultCase{"count:0:toggle@50", true},
          FaultCase{"count[0]:3:toggle@25", false}}) {
        const char *fault = c.fault;
        auto results = runVariants({{"interp", {}, "interp", fault},
                                    {"vm", {}, "vm", fault},
                                    {"symbolic", {}, "symbolic", fault},
                                    {"vm", {}, "healthy", ""}},
                                   rs, 100, {});
        const InstanceResult &a = results[0];
        EXPECT_FALSE(a.faulted) << fault << ": " << a.fault;
        for (size_t i = 1; i + 1 < results.size(); ++i) {
            const InstanceResult &b = results[i];
            EXPECT_EQ(a.traceText, b.traceText)
                << fault << " " << b.label;
            EXPECT_EQ(a.ioText, b.ioText) << fault << " " << b.label;
            EXPECT_TRUE(a.state == b.state)
                << fault << " " << b.label;
        }
        if (c.observable) {
            EXPECT_NE(a.traceText, results.back().traceText)
                << fault << " must be observable";
        } else {
            EXPECT_EQ(a.traceText, results.back().traceText)
                << fault << " must stay masked";
        }
    }
}

} // namespace
} // namespace asim
