/** @file
 * Engine-equivalence property tests: the interpreter (ASIM analog) and
 * the bytecode VM (ASIM II analog) must produce identical traces,
 * identical I/O, and identical final state on randomly generated
 * specifications — the library's strongest correctness guarantee.
 * All engines are constructed by name through the Simulation facade
 * (the native pipeline has its own leg in native_equivalence_test.cc,
 * gated on a host compiler).
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "analysis/resolve.hh"
#include "machines/counter.hh"
#include "machines/stack_machine.hh"
#include "machines/synthetic.hh"
#include "machines/tiny_computer.hh"
#include "sim/io.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace asim {
namespace {

using SharedSpec = std::shared_ptr<const ResolvedSpec>;

SharedSpec
share(ResolvedSpec rs)
{
    return std::make_shared<const ResolvedSpec>(std::move(rs));
}

struct RunResult
{
    std::string trace;
    std::string ioText;
    MachineState state;
    uint64_t aluEvals;
    bool faulted = false;
    std::string fault;
};

RunResult
runEngine(const std::string &engine, const SharedSpec &rs,
          uint64_t cycles, const std::vector<int32_t> &inputs,
          const CompilerOptions &copts = {})
{
    std::ostringstream os;
    StreamTrace trace(os);
    VectorIo io;
    for (int32_t v : inputs)
        io.pushInput(v);

    SimulationOptions opts;
    opts.resolved = rs;
    opts.engine = engine;
    opts.compiler = copts;
    opts.config.trace = &trace;
    opts.config.io = &io;
    Simulation sim(opts);

    RunResult r;
    try {
        sim.run(cycles);
    } catch (const SimError &err) {
        r.faulted = true;
        r.fault = err.what();
    }
    r.trace = os.str();
    r.ioText = io.text();
    r.state = sim.engine().state();
    r.aluEvals = sim.stats().aluEvals;
    return r;
}

void
expectEquivalent(const SharedSpec &rs, uint64_t cycles,
                 const std::vector<int32_t> &inputs = {})
{
    RunResult a = runEngine("interp", rs, cycles, inputs);
    for (const char *engine : {"vm", "symbolic"}) {
        RunResult b = runEngine(engine, rs, cycles, inputs);
        EXPECT_EQ(a.faulted, b.faulted) << engine;
        if (a.faulted) {
            // Same diagnostic, modulo nothing: both name the
            // component.
            EXPECT_EQ(a.fault, b.fault) << engine;
        }
        EXPECT_EQ(a.trace, b.trace) << engine;
        EXPECT_EQ(a.ioText, b.ioText) << engine;
        EXPECT_TRUE(a.state == b.state)
            << "final state differs: " << engine;
    }
}

TEST(Equivalence, Counter)
{
    expectEquivalent(share(resolveText(counterSpec(6, 100))), 100);
}

TEST(Equivalence, TrafficLight)
{
    expectEquivalent(share(resolveText(trafficLightSpec(64))), 64);
}

TEST(Equivalence, TinyComputer)
{
    int result = 0;
    auto img = tinyModProgram(23, 7, result);
    expectEquivalent(share(resolveText(tinyComputerSpec(img, 400))),
                     400);
}

TEST(Equivalence, StackMachineSieve)
{
    expectEquivalent(
        share(resolveText(
            stackMachineSpec(sieveProgram(8), 6000, true))),
        6000);
}

/** The main property sweep: random specs across many seeds. */
class EquivalenceProperty : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(EquivalenceProperty, RandomSpec)
{
    SyntheticOptions opts;
    opts.seed = GetParam();
    opts.alus = 6 + GetParam() % 8;
    opts.selectors = 2 + GetParam() % 4;
    opts.memories = 1 + GetParam() % 4;
    SharedSpec rs = share(resolve(generateSynthetic(opts)));
    std::vector<int32_t> inputs;
    for (int i = 0; i < 256; ++i)
        inputs.push_back((i * 2654435761u) % 4096);
    expectEquivalent(rs, 200, inputs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProperty,
                         ::testing::Range(1u, 41u));

/** Optimization flags must never change behavior (VM vs VM). */
class OptEquivalence : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(OptEquivalence, AllFlagCombos)
{
    SyntheticOptions sopts;
    sopts.seed = GetParam() * 7919;
    SharedSpec rs = share(resolve(generateSynthetic(sopts)));

    std::vector<int32_t> inputs;
    for (int i = 0; i < 128; ++i)
        inputs.push_back(i * 37 % 1000);

    auto runWith = [&](const CompilerOptions &copts) {
        RunResult r = runEngine("vm", rs, 100, inputs, copts);
        return r.trace + "|" + r.ioText;
    };

    std::string reference = runWith(CompilerOptions{});
    for (int m = 0; m < 16; ++m) {
        CompilerOptions copts;
        copts.inlineConstAlu = m & 1;
        copts.specializeConstMem = m & 2;
        copts.constSelectorTables = m & 4;
        copts.elideUnusedTemps = m & 8;
        EXPECT_EQ(runWith(copts), reference) << "flags " << m;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptEquivalence,
                         ::testing::Range(1u, 11u));

} // namespace
} // namespace asim
