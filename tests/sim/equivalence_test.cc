/** @file
 * Engine-equivalence property tests: the interpreter (ASIM analog) and
 * the bytecode VM (ASIM II analog) must produce identical traces,
 * identical I/O, and identical final state on randomly generated
 * specifications — the library's strongest correctness guarantee.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/resolve.hh"
#include "lang/writer.hh"
#include "machines/counter.hh"
#include "machines/stack_machine.hh"
#include "machines/synthetic.hh"
#include "machines/tiny_computer.hh"
#include "sim/engine.hh"
#include "sim/symbolic.hh"
#include "sim/vm.hh"

namespace asim {
namespace {

struct RunResult
{
    std::string trace;
    std::string ioText;
    MachineState state;
    uint64_t aluEvals;
    bool faulted = false;
    std::string fault;
};

enum class Which
{
    Interp,
    Vm,
    Symbolic,
};

RunResult
runEngine(Which which, const ResolvedSpec &rs, uint64_t cycles,
          const std::vector<int32_t> &inputs)
{
    std::ostringstream os;
    StreamTrace trace(os);
    VectorIo io;
    for (int32_t v : inputs)
        io.pushInput(v);
    EngineConfig cfg;
    cfg.trace = &trace;
    cfg.io = &io;
    std::unique_ptr<Engine> e;
    switch (which) {
      case Which::Interp:
        e = makeInterpreter(rs, cfg);
        break;
      case Which::Vm:
        e = makeVm(rs, cfg);
        break;
      case Which::Symbolic:
        e = makeSymbolicInterpreter(rs, cfg);
        break;
    }
    RunResult r;
    try {
        e->run(cycles);
    } catch (const SimError &err) {
        r.faulted = true;
        r.fault = err.what();
    }
    r.trace = os.str();
    r.ioText = io.text();
    r.state = e->state();
    r.aluEvals = e->stats().aluEvals;
    return r;
}

void
expectEquivalent(const ResolvedSpec &rs, uint64_t cycles,
                 const std::vector<int32_t> &inputs = {})
{
    RunResult a = runEngine(Which::Interp, rs, cycles, inputs);
    for (Which which : {Which::Vm, Which::Symbolic}) {
        RunResult b = runEngine(which, rs, cycles, inputs);
        EXPECT_EQ(a.faulted, b.faulted);
        if (a.faulted) {
            // Same diagnostic, modulo nothing: both name the
            // component.
            EXPECT_EQ(a.fault, b.fault);
        }
        EXPECT_EQ(a.trace, b.trace);
        EXPECT_EQ(a.ioText, b.ioText);
        EXPECT_TRUE(a.state == b.state) << "final state differs";
    }
}

TEST(Equivalence, Counter)
{
    expectEquivalent(resolveText(counterSpec(6, 100)), 100);
}

TEST(Equivalence, TrafficLight)
{
    expectEquivalent(resolveText(trafficLightSpec(64)), 64);
}

TEST(Equivalence, TinyComputer)
{
    int result = 0;
    auto img = tinyModProgram(23, 7, result);
    expectEquivalent(resolveText(tinyComputerSpec(img, 400)), 400);
}

TEST(Equivalence, StackMachineSieve)
{
    expectEquivalent(
        resolveText(stackMachineSpec(sieveProgram(8), 6000, true)),
        6000);
}

/** The main property sweep: random specs across many seeds. */
class EquivalenceProperty : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(EquivalenceProperty, RandomSpec)
{
    SyntheticOptions opts;
    opts.seed = GetParam();
    opts.alus = 6 + GetParam() % 8;
    opts.selectors = 2 + GetParam() % 4;
    opts.memories = 1 + GetParam() % 4;
    ResolvedSpec rs = resolve(generateSynthetic(opts));
    std::vector<int32_t> inputs;
    for (int i = 0; i < 256; ++i)
        inputs.push_back((i * 2654435761u) % 4096);
    expectEquivalent(rs, 200, inputs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceProperty,
                         ::testing::Range(1u, 41u));

/** Optimization flags must never change behavior (VM vs VM). */
class OptEquivalence : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(OptEquivalence, AllFlagCombos)
{
    SyntheticOptions sopts;
    sopts.seed = GetParam() * 7919;
    ResolvedSpec rs = resolve(generateSynthetic(sopts));

    auto runWith = [&](const CompilerOptions &copts) {
        std::ostringstream os;
        StreamTrace trace(os);
        VectorIo io;
        for (int i = 0; i < 128; ++i)
            io.pushInput(i * 37 % 1000);
        EngineConfig cfg;
        cfg.trace = &trace;
        cfg.io = &io;
        Vm vm(rs, cfg, copts);
        try {
            vm.run(100);
        } catch (const SimError &) {
        }
        return os.str() + "|" + io.text();
    };

    std::string reference = runWith(CompilerOptions{});
    for (int m = 0; m < 16; ++m) {
        CompilerOptions copts;
        copts.inlineConstAlu = m & 1;
        copts.specializeConstMem = m & 2;
        copts.constSelectorTables = m & 4;
        copts.elideUnusedTemps = m & 8;
        EXPECT_EQ(runWith(copts), reference) << "flags " << m;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptEquivalence,
                         ::testing::Range(1u, 11u));

} // namespace
} // namespace asim
