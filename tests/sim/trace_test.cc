/** @file Unit tests for the trace formats (thesis generated writeln). */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.hh"

namespace asim {
namespace {

TEST(Trace, CycleLineFormat)
{
    std::ostringstream os;
    StreamTrace t(os);
    t.beginCycle(0);
    t.value("pc", 5);
    t.value("ac", -3);
    t.endCycle();
    // Pascal `cyclecount:3` right-justifies in width 3.
    EXPECT_EQ(os.str(), "Cycle   0 pc= 5 ac= -3\n");
}

TEST(Trace, WideCycleNumbers)
{
    std::ostringstream os;
    StreamTrace t(os);
    t.beginCycle(5545);
    t.endCycle();
    EXPECT_EQ(os.str(), "Cycle 5545\n");
}

TEST(Trace, MemoryMessages)
{
    std::ostringstream os;
    StreamTrace t(os);
    t.memWrite("ram", 12, 99);
    t.memRead("ram", 3, 7);
    EXPECT_EQ(os.str(),
              "Write to ram at 12: 99\nRead from ram at 3: 7\n");
}

TEST(Trace, NullTraceSwallows)
{
    NullTrace t;
    t.beginCycle(1);
    t.value("x", 2);
    t.endCycle();
    t.memWrite("m", 0, 0);
    t.memRead("m", 0, 0);
    SUCCEED();
}

} // namespace
} // namespace asim
