/** @file
 * Native-engine equivalence leg (ROADMAP item): the "native" engine —
 * generated C++ compiled by the host compiler, run out of process —
 * must match the "vm" engine byte-for-byte on every on-disk
 * specification: combined trace + I/O text, final machine state, and
 * cycle count. Engines are constructed exclusively by name through
 * the Simulation facade.
 *
 * Built only when ASIM_NATIVE_EQUIVALENCE=ON (the default); skipped
 * at runtime when no host compiler exists.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "sim/native_engine.hh"
#include "sim/simulation.hh"

#ifndef ASIM_SPECS_DIR
#define ASIM_SPECS_DIR "specs"
#endif

namespace asim {
namespace {

struct SpecCase
{
    const char *file;      ///< name under specs/
    const char *stdinText; ///< scripted input, mirrored to both sides
};

std::ostream &
operator<<(std::ostream &os, const SpecCase &c)
{
    return os << c.file;
}

const SpecCase kCases[] = {
    {"counter.asim", ""},
    {"traffic_light.asim", ""},
    {"fig43_memory.asim", ""},
    {"dual_counter.asim", ""},
    // echo consumes one integer per cycle: 5 inclusive iterations.
    {"echo.asim", "10\n20\n30\n40\n50\n"},
    {"gcd.asim", ""},
    {"multiplier.asim", ""},
};

struct RunResult
{
    std::string text; ///< trace + I/O interleaved on one stream
    MachineState state;
    uint64_t cycle = 0;
};

RunResult
runSpec(const char *engine, const SpecCase &c)
{
    std::ostringstream os;
    std::istringstream is(c.stdinText);

    SimulationOptions opts;
    opts.specFile = std::string(ASIM_SPECS_DIR) + "/" + c.file;
    opts.engine = engine;
    // Interactive stream I/O mirrors the generated program's stdio
    // exactly (char reads at address 0, prompts above address 1);
    // for the native engine the facade pipes the stream to the
    // subprocess's stdin and echoes its output here.
    opts.ioMode = IoMode::Interactive;
    opts.ioIn = &is;
    opts.ioOut = &os;
    opts.traceStream = &os;

    Simulation sim(opts);
    int64_t cycles = sim.defaultCycles();
    EXPECT_GT(cycles, 0) << c.file << " names no cycle count";
    sim.run(static_cast<uint64_t>(cycles));

    RunResult r;
    r.text = os.str();
    r.state = sim.engine().state();
    r.cycle = sim.cycle();
    return r;
}

class NativeEquivalence : public ::testing::TestWithParam<SpecCase>
{
  protected:
    void
    SetUp() override
    {
        if (!NativeEngine::available())
            GTEST_SKIP() << "no host compiler";
    }
};

TEST_P(NativeEquivalence, MatchesVmOnEveryChannel)
{
    const SpecCase &c = GetParam();
    RunResult vm = runSpec("vm", c);
    RunResult native = runSpec("native", c);
    EXPECT_EQ(native.text, vm.text) << c.file;
    EXPECT_TRUE(native.state == vm.state)
        << c.file << ": final state differs";
    EXPECT_EQ(native.cycle, vm.cycle) << c.file;
}

/** The persistent-subprocess path the protocol added: drive the
 *  native engine cycle by cycle (one RUN round trip each) against a
 *  vm stepped in lockstep, comparing every traced observable every
 *  cycle — the interactive-stepping workload the old replay adapter
 *  made quadratic. */
TEST_P(NativeEquivalence, StepsInLockstepWithVm)
{
    const SpecCase &c = GetParam();
    std::istringstream isVm(c.stdinText), isNative(c.stdinText);
    std::ostringstream osVm, osNative;

    SimulationOptions opts;
    opts.specFile = std::string(ASIM_SPECS_DIR) + "/" + c.file;
    opts.ioMode = IoMode::Interactive;
    opts.traceStream = nullptr;

    opts.engine = "vm";
    opts.ioIn = &isVm;
    opts.ioOut = &osVm;
    Simulation vm(opts);

    opts.engine = "native";
    opts.ioIn = &isNative;
    opts.ioOut = &osNative;
    Simulation native(opts);

    int64_t cycles = std::min<int64_t>(vm.defaultCycles(), 25);
    ASSERT_GT(cycles, 0);
    for (int64_t i = 0; i < cycles; ++i) {
        vm.step();
        native.step();
        ASSERT_EQ(native.cycle(), vm.cycle());
        for (const auto &item : vm.resolved().traceList) {
            ASSERT_EQ(native.value(item.name), vm.value(item.name))
                << c.file << " cycle " << vm.cycle() << " "
                << item.name;
        }
    }
    EXPECT_TRUE(native.engine().state() == vm.engine().state())
        << c.file;
    EXPECT_EQ(osNative.str(), osVm.str()) << c.file;
}

/** Injected faults must cross the process boundary: the native
 *  engine's spliced spec and @cycle state upsets match the vm's on
 *  every channel. */
TEST(NativeFaultEquivalence, InjectedFaultsMatchVm)
{
    if (!NativeEngine::available())
        GTEST_SKIP() << "no host compiler";

    for (const char *fault :
         {"next:1:set1", "count:0:toggle@10"}) {
        RunResult results[2];
        const char *engines[] = {"vm", "native"};
        for (int i = 0; i < 2; ++i) {
            std::ostringstream os;
            std::istringstream is;
            SimulationOptions opts;
            opts.specFile =
                std::string(ASIM_SPECS_DIR) + "/counter.asim";
            opts.engine = engines[i];
            opts.fault = fault;
            opts.ioMode = IoMode::Interactive;
            opts.ioIn = &is;
            opts.ioOut = &os;
            opts.traceStream = &os;
            Simulation sim(opts);
            sim.run(static_cast<uint64_t>(sim.defaultCycles()));
            results[i] = {os.str(), sim.engine().state(),
                          sim.cycle()};
        }
        EXPECT_EQ(results[1].text, results[0].text) << fault;
        EXPECT_TRUE(results[1].state == results[0].state) << fault;
        EXPECT_EQ(results[1].cycle, results[0].cycle) << fault;
    }
}

std::string
caseName(const ::testing::TestParamInfo<SpecCase> &info)
{
    std::string name = info.param.file;
    if (auto dot = name.find('.'); dot != std::string::npos)
        name.resize(dot);
    return name;
}

INSTANTIATE_TEST_SUITE_P(Specs, NativeEquivalence,
                         ::testing::ValuesIn(kCases), caseName);

} // namespace
} // namespace asim
