/** @file Interpreter-specific tests (the ASIM baseline engine). */

#include <gtest/gtest.h>

#include "analysis/resolve.hh"
#include "machines/counter.hh"
#include "sim/engine.hh"

namespace asim {
namespace {

TEST(Interpreter, CounterMachine)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 100));
    auto e = makeInterpreter(rs);
    e->run(20);
    // 4-bit counter wraps at 16: after 20 cycles the latch holds 4.
    EXPECT_EQ(e->value("count") & 0xf, 4);
}

TEST(Interpreter, TrafficLight)
{
    ResolvedSpec rs = resolveText(trafficLightSpec(64));
    auto e = makeInterpreter(rs);
    // Phase durations: green(0) 4 cycles, yellow(1) 1, red(2) 3.
    // The first two cycles are a startup transient: initial values
    // live in memory *cells*, not output latches (thesis semantics),
    // so a write-only register starts from a zero latch.
    std::vector<int32_t> phases;
    for (int i = 0; i < 18; ++i) {
        phases.push_back(e->value("phase"));
        e->step();
    }
    EXPECT_EQ(phases,
              (std::vector<int32_t>{0, 1, 2, 2, 2, 0, 0, 0, 0, 1, 2, 2,
                                    2, 0, 0, 0, 0, 1}));
}

TEST(Interpreter, RunAccumulatesCycles)
{
    ResolvedSpec rs = resolveText(counterSpec(8, 10));
    auto e = makeInterpreter(rs);
    e->run(3);
    e->run(4);
    EXPECT_EQ(e->cycle(), 7u);
    EXPECT_EQ(e->stats().cycles, 7u);
}

TEST(Interpreter, StatsDisabled)
{
    EngineConfig cfg;
    cfg.collectStats = false;
    ResolvedSpec rs = resolveText(counterSpec(8, 10));
    auto e = makeInterpreter(rs, cfg);
    e->run(5);
    EXPECT_EQ(e->stats().cycles, 0u);
    EXPECT_EQ(e->stats().aluEvals, 0u);
}

} // namespace
} // namespace asim
