/** @file
 * NativeEngine persistent-subprocess protocol tests: the child
 * survives across run()/reset(), crashes surface as SimError with
 * the engine at its last confirmed cycle and reset() recovering,
 * restore() is protocol-native (one RESTORE round trip, O(state) —
 * never a replay from cycle zero), and — the regression the
 * protocol exists to fix — stepping is incremental, not quadratic.
 *
 * Skipped without a host compiler.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>

#include "analysis/resolve.hh"
#include "machines/counter.hh"
#include "sim/native_engine.hh"
#include "sim/simulation.hh"

#ifndef ASIM_SPECS_DIR
#define ASIM_SPECS_DIR "specs"
#endif

namespace asim {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** A machine that faults once its counter walks off a 10-cell
 *  memory (same shape as the batch suite's fault spec). */
const char *kFaultSpec = "# walks off the end of mem\n"
                         "count* next .\n"
                         "A next 4 count 1\n"
                         "M count 0 next 1 1\n"
                         "M mem count count 1 10\n"
                         ".\n";

class NativeEngineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!NativeEngine::available())
            GTEST_SKIP() << "no host compiler";
    }

    static std::unique_ptr<NativeEngine>
    counterEngine()
    {
        return std::make_unique<NativeEngine>(
            resolveText(counterSpec(4, 100)), EngineConfig{});
    }
};

TEST_F(NativeEngineTest, OneChildServesManyRunsAndResets)
{
    auto ep = counterEngine();
    NativeEngine &e = *ep;
    EXPECT_EQ(e.childPid(), -1)
        << "construction must not spawn (lazy: batches hold no "
           "process per idle instance)";
    e.run(3);
    long pid = e.childPid();
    EXPECT_GT(pid, 0);
    e.run(4);
    EXPECT_EQ(e.cycle(), 7u);
    EXPECT_EQ(e.value("count"), 7);
    EXPECT_EQ(e.childPid(), pid) << "run() must not respawn";
    e.reset();
    EXPECT_EQ(e.childPid(), pid) << "reset() is a protocol command";
    EXPECT_EQ(e.cycle(), 0u);
    EXPECT_EQ(e.value("count"), 0);
    e.run(2);
    EXPECT_EQ(e.value("count"), 2);
}

TEST_F(NativeEngineTest, KilledChildThrowsKeepsCycleAndResetRecovers)
{
    auto ep = counterEngine();
    NativeEngine &e = *ep;
    e.run(5);
    EXPECT_EQ(e.value("count"), 5);
    long pid = e.childPid();
    e.testKillChild();
    try {
        e.run(5);
        FAIL() << "expected SimError from the killed child";
    } catch (const SimError &err) {
        EXPECT_NE(std::string(err.what()).find("cycle 5"),
                  std::string::npos)
            << err.what();
    }
    EXPECT_EQ(e.cycle(), 5u) << "last confirmed cycle";
    EXPECT_EQ(e.value("count"), 5) << "last confirmed state";
    // Still down until reset():
    EXPECT_THROW(e.run(1), SimError);
    e.reset();
    EXPECT_NE(e.childPid(), pid) << "reset() must respawn";
    e.run(3);
    EXPECT_EQ(e.cycle(), 3u);
    EXPECT_EQ(e.value("count"), 3);
}

TEST_F(NativeEngineTest, UnfetchedStateAfterCrashRefusesToGoStale)
{
    auto ep = counterEngine();
    NativeEngine &e = *ep;
    e.run(2);
    EXPECT_EQ(e.value("count"), 2); // fetched: survives a crash
    e.run(3); // state for cycle 5 is never fetched...
    e.testKillChild();
    // ...so after the crash, observers must throw rather than pair
    // cycle()==5 with the stale cycle-2 mirror (first call detects
    // the death, later ones hit the reaped-child path).
    EXPECT_THROW(e.value("count"), SimError);
    EXPECT_THROW(e.state(), SimError);
    EXPECT_THROW(e.snapshot(), SimError);
    EXPECT_EQ(e.cycle(), 5u);
    e.reset();
    e.run(1);
    EXPECT_EQ(e.value("count"), 1);
}

TEST_F(NativeEngineTest, BrokenCommandPipeThrowsAndResetRecovers)
{
    auto ep = counterEngine();
    NativeEngine &e = *ep;
    e.run(4);
    e.testCloseCommandPipe();
    EXPECT_THROW(e.run(1), SimError);
    EXPECT_EQ(e.cycle(), 4u);
    e.reset();
    e.run(6);
    EXPECT_EQ(e.value("count"), 6);
}

TEST_F(NativeEngineTest, RuntimeFaultThrowsAndResetRecovers)
{
    NativeEngine e(resolveText(kFaultSpec), EngineConfig{});
    e.run(8); // safely inside the 10-cell memory
    EXPECT_EQ(e.cycle(), 8u);
    int32_t confirmed = e.value("count");
    EXPECT_THROW(e.run(50), SimError) << "must walk off the memory";
    EXPECT_EQ(e.cycle(), 8u) << "cycle rolls back to last confirmed";
    EXPECT_EQ(e.value("count"), confirmed);
    e.reset();
    e.run(8);
    EXPECT_EQ(e.cycle(), 8u);
}

TEST_F(NativeEngineTest, ScriptedInputRewindsOnReset)
{
    const char *echoSpec = "# integer echo\n"
                           "= 4\n"
                           "in out .\n"
                           "M in 1 0 2 1\n"
                           "M out 1 in 3 1\n"
                           ".\n";
    NativeEngine::Options opts;
    opts.stdinText = "10\n20\n30\n40\n50\n";
    NativeEngine e(resolveText(echoSpec), EngineConfig{},
                   std::move(opts));
    e.run(5);
    EXPECT_EQ(e.output(), "10\n20\n30\n40\n50\n");
    e.reset();
    e.run(2);
    EXPECT_EQ(e.output(), "10\n20\n") << "reset rewinds the script";
}

/** The O(1)-restore latency property, asserted in *cycle space* so
 *  it can never be wall-clock flaky: restoring a snapshot taken at
 *  cycle N must cost zero RUN-command cycles — the old adapter
 *  replayed all N. */
TEST_F(NativeEngineTest, RestoreIsProtocolNativeNotReplay)
{
    auto ap = counterEngine();
    NativeEngine &a = *ap;
    a.run(1000);
    EngineSnapshot snap = a.snapshot();

    auto bp = counterEngine();
    NativeEngine &b = *bp;
    EXPECT_EQ(b.runCommandCycles(), 0u);
    b.restore(snap);
    EXPECT_EQ(b.runCommandCycles(), 0u)
        << "restore() replayed cycles through RUN — the O(state) "
           "RESTORE protocol path is gone";
    EXPECT_EQ(b.cycle(), 1000u);
    EXPECT_EQ(b.value("count"), a.value("count"));

    // The continuation matches the uninterrupted engine.
    a.run(7);
    b.run(7);
    EXPECT_EQ(b.value("count"), a.value("count"));
    EXPECT_TRUE(b.state() == a.state());
}

TEST_F(NativeEngineTest, RestorePositionsTheInputCursor)
{
    const char *echoSpec = "# integer echo\n"
                           "= 4\n"
                           "in out .\n"
                           "M in 1 0 2 1\n"
                           "M out 1 in 3 1\n"
                           ".\n";
    ResolvedSpec rs = resolveText(echoSpec);
    NativeEngine::Options a;
    a.stdinText = "1\n2\n3\n4\n5\n";
    NativeEngine ea(rs, EngineConfig{}, std::move(a));
    ea.run(3);
    EngineSnapshot snap = ea.snapshot();
    EXPECT_EQ(snap.ioValues, 3u);
    EXPECT_NE(snap.ioBytes, kNoIoCursor);

    // Same-script engine: the continuation picks up at value 4.
    NativeEngine::Options c;
    c.stdinText = "1\n2\n3\n4\n5\n";
    NativeEngine ec(rs, EngineConfig{}, std::move(c));
    ec.restore(snap);
    EXPECT_EQ(ec.cycle(), 3u);
    EXPECT_TRUE(ec.state() == snap.state);
    ec.run(2);
    EXPECT_EQ(ec.output(), "4\n5\n");

    // A different-script engine adopts the state and the *cursor*:
    // the continuation reads its own script from position 3 —
    // exactly what an in-process engine with its own IoDevice does.
    NativeEngine::Options b;
    b.stdinText = "9\n9\n9\n9\n9\n";
    NativeEngine eb(rs, EngineConfig{}, std::move(b));
    eb.restore(snap);
    eb.run(2);
    EXPECT_EQ(eb.output(), "9\n9\n");
}

TEST_F(NativeEngineTest, RestoreRecoversADownedChild)
{
    auto ap = counterEngine();
    NativeEngine &a = *ap;
    a.run(6);
    EngineSnapshot snap = a.snapshot();
    a.testKillChild();
    EXPECT_THROW(a.run(1), SimError);
    // restore() is a full state overwrite: a valid recovery path
    // without an intervening reset().
    a.restore(snap);
    EXPECT_EQ(a.cycle(), 6u);
    a.run(2);
    EXPECT_EQ(a.value("count"), 8);
}

/** The regression guard the whole protocol exists for: stepping N
 *  cycles must cost O(N) round trips, not O(N²) replayed cycles.
 *  Before the protocol, 1000 step() calls spawned 1000 processes and
 *  re-simulated ~500k cycles (seconds); now they are 1000 pipe round
 *  trips (milliseconds). The bound is the acceptance bar's 3x a
 *  single run(1000) plus an absolute floor absorbing round-trip
 *  overhead on slow, loaded CI hosts. */
TEST_F(NativeEngineTest, SteppingIsIncrementalNotQuadratic)
{
    SimulationOptions opts;
    opts.specFile = std::string(ASIM_SPECS_DIR) + "/gcd.asim";
    opts.engine = "native";

    Simulation whole(opts);
    auto t0 = Clock::now();
    whole.run(1000);
    double runOnce = secondsSince(t0);

    Simulation stepped(opts);
    t0 = Clock::now();
    for (int i = 0; i < 1000; ++i)
        stepped.step();
    double stepAll = secondsSince(t0);

    EXPECT_EQ(stepped.cycle(), whole.cycle());
    EXPECT_TRUE(stepped.engine().state() == whole.engine().state());
    EXPECT_LT(stepAll, 3.0 * runOnce + 0.5)
        << "1000x step() took " << stepAll << "s vs run(1000) "
        << runOnce << "s — quadratic replay is back?";
}

} // namespace
} // namespace asim
