/** @file Tests for the symbolic interpreter (the ASIM baseline). */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/resolve.hh"
#include "lang/parser.hh"
#include "machines/counter.hh"
#include "machines/stack_machine.hh"
#include "sim/symbolic.hh"

namespace asim {
namespace {

TEST(Symbolic, CounterMatchesExpectation)
{
    auto e = makeSymbolicInterpreter(resolveText(counterSpec(4, 100)));
    e->run(20);
    EXPECT_EQ(e->value("count") & 0xf, 4);
}

TEST(Symbolic, RunsTheSieve)
{
    ResolvedSpec rs =
        resolveText(stackMachineSpec(sieveProgram(8), 10000));
    VectorIo io;
    EngineConfig cfg;
    cfg.io = &io;
    auto e = makeSymbolicInterpreter(rs, cfg);
    e->run(10000);
    EXPECT_EQ(io.outputsAt(1), sieveReference(8));
}

TEST(Symbolic, TraceFormatIdenticalToOtherEngines)
{
    ResolvedSpec rs = resolveText(counterSpec(3, 10));
    auto render = [&](std::unique_ptr<Engine> e) {
        // Each engine gets its own sink stream.
        return e;
    };
    (void)render;
    std::ostringstream a, b;
    StreamTrace ta(a), tb(b);
    EngineConfig ca, cb;
    ca.trace = &ta;
    cb.trace = &tb;
    auto sym = makeSymbolicInterpreter(rs, ca);
    auto interp = makeInterpreter(rs, cb);
    sym->run(10);
    interp->run(10);
    EXPECT_EQ(a.str(), b.str());
}

TEST(Symbolic, SelectorBoundsFault)
{
    ResolvedSpec rs = resolveText("# badsel\n"
                                  "inc count pick .\n"
                                  "A inc 4 count 1\n"
                                  "M count 0 inc 1 1\n"
                                  "S pick count 10 20\n"
                                  ".\n");
    auto e = makeSymbolicInterpreter(rs);
    e->run(2);
    EXPECT_THROW(e->step(), SimError);
}

TEST(Symbolic, StatsMatchResolvedInterpreter)
{
    ResolvedSpec rs =
        resolveText(stackMachineSpec(sieveProgram(5), 2000));
    auto a = makeSymbolicInterpreter(rs);
    auto b = makeInterpreter(rs);
    a->run(2000);
    b->run(2000);
    EXPECT_EQ(a->stats().aluEvals, b->stats().aluEvals);
    EXPECT_EQ(a->stats().selEvals, b->stats().selEvals);
    ASSERT_EQ(a->stats().mems.size(), b->stats().mems.size());
    for (size_t i = 0; i < a->stats().mems.size(); ++i) {
        EXPECT_EQ(a->stats().mems[i].total(),
                  b->stats().mems[i].total());
    }
}

} // namespace
} // namespace asim
