/** @file Unit tests for memory-mapped I/O devices. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/io.hh"

namespace asim {
namespace {

TEST(Io, FormatOutput)
{
    EXPECT_EQ(formatOutput(0, 65), "A\n");
    EXPECT_EQ(formatOutput(1, 42), "42\n");
    EXPECT_EQ(formatOutput(7, 99), "Output to address 7: 99\n");
    EXPECT_EQ(formatOutput(1, -5), "-5\n");
}

TEST(Io, StreamIoOutput)
{
    std::istringstream in("");
    std::ostringstream out;
    StreamIo io(in, out);
    io.output(0, 'H');
    io.output(1, 17);
    io.output(9, 3);
    EXPECT_EQ(out.str(), "H\n17\nOutput to address 9: 3\n");
}

TEST(Io, StreamIoInput)
{
    std::istringstream in("x 42 7");
    std::ostringstream out;
    StreamIo io(in, out);
    EXPECT_EQ(io.input(0), 'x');   // char read
    EXPECT_EQ(io.input(1), 42);    // integer read
    EXPECT_EQ(io.input(5), 7);     // addressed read with prompt
    EXPECT_EQ(out.str(), "Input from address 5: ");
}

TEST(Io, VectorIoQueue)
{
    VectorIo io;
    io.pushInput(10);
    io.pushInput(20);
    EXPECT_EQ(io.input(1), 10);
    EXPECT_EQ(io.input(1), 20);
    EXPECT_EQ(io.input(1), 0); // exhausted -> 0
}

TEST(Io, VectorIoRecordsOutputs)
{
    VectorIo io;
    io.output(1, 3);
    io.output(1, 5);
    io.output(4, 7);
    EXPECT_EQ(io.outputsAt(1), (std::vector<int32_t>{3, 5}));
    EXPECT_EQ(io.outputsAt(4), (std::vector<int32_t>{7}));
    EXPECT_EQ(io.text(), "3\n5\nOutput to address 4: 7\n");
    io.clear();
    EXPECT_TRUE(io.outputs().empty());
}

TEST(Io, NullIo)
{
    NullIo io;
    EXPECT_EQ(io.input(1), 0);
    io.output(1, 5); // no crash, no effect
}

} // namespace
} // namespace asim
