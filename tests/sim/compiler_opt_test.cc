/** @file
 * Optimizer-behavior tests: superinstruction fusion, dead-store
 * elimination, redundant bounds-check elision, and the guarantee
 * that none of it changes observable behavior. The disassembly
 * checks cover the same surface `asim-run --dump-bytecode` prints.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/resolve.hh"
#include "machines/counter.hh"
#include "machines/stack_machine.hh"
#include "sim/compiler.hh"
#include "sim/io.hh"
#include "sim/trace.hh"
#include "sim/vm.hh"

namespace asim {
namespace {

int
countOp(const std::vector<Instr> &code, Op op)
{
    int n = 0;
    for (const auto &in : code)
        n += in.op == op ? 1 : 0;
    return n;
}

ResolvedSpec
stackSieve()
{
    return resolveText(stackMachineSpec(sieveProgram(10), 3000));
}

TEST(CompilerOpt, FusionFormsSuperinstructions)
{
    ResolvedSpec rs = stackSieve();
    Program fused = compileProgram(rs, {});
    EXPECT_GT(fused.opt.fused, 0u);
    // The stack machine's mixed-case selectors collapse to SelStore
    // and its latch phase folds into one TraceLatchRun dispatch.
    EXPECT_GT(countOp(fused.cycle, Op::SelStoreV), 0);
    EXPECT_EQ(countOp(fused.cycle, Op::TraceLatchRun), 1);

    CompilerOptions off;
    off.fuseSuperinstructions = false;
    Program plain = compileProgram(rs, off);
    EXPECT_EQ(plain.opt.fused, 0u);
    EXPECT_EQ(countOp(plain.cycle, Op::SelStoreV), 0);
    EXPECT_EQ(countOp(plain.cycle, Op::SelStoreT), 0);
    EXPECT_EQ(countOp(plain.cycle, Op::TraceLatchRun), 0);
    // Fusion only ever shrinks the executed stream.
    EXPECT_LT(fused.cycle.size(), plain.cycle.size());
}

TEST(CompilerOpt, DeadStoresEliminated)
{
    // Consumer-side fusion orphans the scratch loads it absorbed;
    // the dead-store pass removes them.
    ResolvedSpec rs = stackSieve();
    Program opt = compileProgram(rs, {});
    EXPECT_GT(opt.opt.deadStores, 0u);

    CompilerOptions off;
    off.eliminateDeadStores = false;
    Program keep = compileProgram(rs, off);
    EXPECT_EQ(keep.opt.deadStores, 0u);
    // Keeping the dead stores leaves a strictly longer stream (the
    // exact delta also reflects follow-on merges the removal
    // unlocks, so only the direction is asserted).
    EXPECT_GT(keep.cycle.size(), opt.cycle.size());
}

TEST(CompilerOpt, RedundantChecksElided)
{
    // The counter's memory address is the constant 0: its bounds
    // check is statically discharged and the update op carries the
    // no-check flag.
    ResolvedSpec rs = resolveText(counterSpec(4, 10));
    Program opt = compileProgram(rs, {});
    EXPECT_EQ(opt.opt.checksElided, 1u);
    bool flagged = false;
    for (const Instr &in : opt.cycle) {
        if (in.op == Op::MemWriteV)
            flagged = flagged || (in.reg & kMemFlagNoCheck);
    }
    EXPECT_TRUE(flagged);

    CompilerOptions off;
    off.elideRedundantChecks = false;
    Program keep = compileProgram(rs, off);
    EXPECT_EQ(keep.opt.checksElided, 0u);
    for (const Instr &in : keep.cycle) {
        if (in.op == Op::MemWriteV) {
            EXPECT_EQ(in.reg & kMemFlagNoCheck, 0);
        }
    }
}

TEST(CompilerOpt, CheckElisionNeverProvesUnsafeAddresses)
{
    // `m` has 4 cells behind a 3-bit address field (range 0..7): its
    // bounds check must survive, while the register's constant
    // address 0 is statically discharged.
    const char *text = "# checked\n"
                       "inc count m .\n"
                       "A inc 4 count 1\n"
                       "M m count.0.2 count 0 4\n"
                       "M count 0 inc 1 1\n"
                       ".\n";
    ResolvedSpec rs = resolveText(text);
    ASSERT_EQ(rs.mems.size(), 2u);
    Program p = compileProgram(rs, {});
    EXPECT_EQ(p.opt.checksElided, 1u);
}

/** Final observable state of a VM run under the given options:
 *  trace text plus every output the machine emitted. */
std::string
observableRun(const ResolvedSpec &rs, const CompilerOptions &opts,
              uint64_t cycles)
{
    std::ostringstream os;
    StreamTrace trace(os);
    VectorIo io;
    EngineConfig cfg;
    cfg.io = &io;
    cfg.trace = &trace;
    Vm vm(rs, cfg, opts);
    vm.run(cycles);
    return os.str() + "|" + io.text();
}

TEST(CompilerOpt, OptimizedTraceMatchesUnoptimized)
{
    // Full trace (every visible value, every cycle) must be
    // byte-identical with each optimizer pass toggled individually
    // and all together.
    ResolvedSpec rs = stackSieve();
    const std::string reference = observableRun(rs, {}, 500);
    for (int m = 0; m < 8; ++m) {
        CompilerOptions opts;
        opts.fuseSuperinstructions = m & 1;
        opts.eliminateDeadStores = m & 2;
        opts.elideRedundantChecks = m & 4;
        EXPECT_EQ(observableRun(rs, opts, 500), reference)
            << "flags " << m;
    }
}

TEST(CompilerOpt, DisassemblyNamesSuperinstructions)
{
    // What `asim-run --dump-bytecode` prints for the stack machine:
    // the fused stream must disassemble with the superinstruction
    // mnemonics and report the pass counters.
    ResolvedSpec rs = stackSieve();
    Program p = compileProgram(rs, {});
    const std::string dis = p.disassemble();
    EXPECT_NE(dis.find("cycle (fused):"), std::string::npos);
    EXPECT_NE(dis.find("selst."), std::string::npos);
    EXPECT_NE(dis.find("trace.latchrun"), std::string::npos);
    EXPECT_NE(dis.find("aluf."), std::string::npos);
    EXPECT_NE(dis.find("mem.gen"), std::string::npos);
    EXPECT_NE(dis.find("fused="), std::string::npos);
    EXPECT_NE(dis.find("deadStores="), std::string::npos);
    EXPECT_NE(dis.find("checksElided="), std::string::npos);
    // Every line names a real opcode (no "?" placeholders).
    EXPECT_EQ(dis.find(": ? "), std::string::npos);
}

} // namespace
} // namespace asim
