/** @file VM-specific tests: compilation and optimization behavior. */

#include <gtest/gtest.h>

#include "analysis/resolve.hh"
#include "machines/counter.hh"
#include "machines/stack_machine.hh"
#include "sim/compiler.hh"
#include "sim/vm.hh"

namespace asim {
namespace {

int
countOp(const std::vector<Instr> &code, Op op)
{
    int n = 0;
    for (const auto &in : code)
        n += in.op == op ? 1 : 0;
    return n;
}

TEST(Vm, ConstAluInlined)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 10));
    Program withOpt = compileProgram(rs, {});
    CompilerOptions off;
    off.inlineConstAlu = false;
    Program without = compileProgram(rs, off);
    // Constant function 4 gets the direct add opcode.
    EXPECT_EQ(countOp(withOpt.comb, Op::AluGen), 0);
    EXPECT_EQ(countOp(withOpt.comb, Op::AluAdd), 1);
    EXPECT_EQ(countOp(without.comb, Op::AluGen), 1);
    EXPECT_EQ(countOp(without.comb, Op::AluAdd), 0);
}

TEST(Vm, SingleFieldLatchesFused)
{
    // The counter memory's address (constant 0) and operation
    // (constant 1) fuse into immediate latch opcodes.
    ResolvedSpec rs = resolveText(counterSpec(4, 10));
    Program p = compileProgram(rs, {});
    EXPECT_EQ(countOp(p.latch, Op::MemAdrC), 1);
    EXPECT_EQ(countOp(p.latch, Op::MemOpnC), 1);
    EXPECT_EQ(countOp(p.latch, Op::MemAdr), 0);
    EXPECT_EQ(countOp(p.latch, Op::MemOpn), 0);
}

TEST(Vm, DisassemblerCoversProgram)
{
    ResolvedSpec rs =
        resolveText(stackMachineSpec(sieveProgram(5), 100));
    Vm vm(rs, {}, {});
    std::string dis = vm.program().disassemble();
    EXPECT_NE(dis.find("comb:"), std::string::npos);
    EXPECT_NE(dis.find("latch:"), std::string::npos);
    EXPECT_NE(dis.find("update:"), std::string::npos);
    EXPECT_NE(dis.find("seltab"), std::string::npos);
    // Every emitted line names a real opcode (no "?" placeholders).
    EXPECT_EQ(dis.find(": ? "), std::string::npos);
}

TEST(Vm, ConstMemSpecialized)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 10));
    Program p = compileProgram(rs, {});
    EXPECT_EQ(countOp(p.update, Op::MemWrite), 1);
    EXPECT_EQ(countOp(p.update, Op::MemGenPre), 0);

    CompilerOptions off;
    off.specializeConstMem = false;
    Program q = compileProgram(rs, off);
    EXPECT_EQ(countOp(q.update, Op::MemWrite), 0);
    EXPECT_EQ(countOp(q.update, Op::MemGenPre), 1);
}

TEST(Vm, ConstSelectorBecomesTable)
{
    // The stack machine's microcode ROM is an all-constant selector.
    ResolvedSpec rs =
        resolveText(stackMachineSpec(sieveProgram(5), 100));
    Program p = compileProgram(rs, {});
    EXPECT_GT(countOp(p.comb, Op::SelTable), 0);

    CompilerOptions off;
    off.constSelectorTables = false;
    Program q = compileProgram(rs, off);
    EXPECT_EQ(countOp(q.comb, Op::SelTable), 0);
    EXPECT_GT(countOp(q.comb, Op::Switch), 0);
}

TEST(Vm, AllConstAluFullyFolded)
{
    ResolvedSpec rs = resolveText("# fold\n"
                                  "r .\n"
                                  "A r 4 20 22\n"
                                  ".\n");
    Vm vm(rs, {}, {});
    // Constant-folded to SetC + StoreS: no ALU op at all.
    EXPECT_EQ(countOp(vm.program().comb, Op::AluConst), 0);
    EXPECT_EQ(countOp(vm.program().comb, Op::AluGen), 0);
    vm.step();
    EXPECT_EQ(vm.value("r"), 42);
}

TEST(Vm, OptimizationsPreserveSemantics)
{
    // Same machine with every optimization flag combination: final
    // state must agree.
    ResolvedSpec rs =
        resolveText(stackMachineSpec(sieveProgram(5), 3000));
    std::vector<int32_t> reference;
    for (int m = 0; m < 16; ++m) {
        CompilerOptions opts;
        opts.inlineConstAlu = m & 1;
        opts.specializeConstMem = m & 2;
        opts.constSelectorTables = m & 4;
        opts.elideUnusedTemps = m & 8;
        VectorIo io;
        EngineConfig cfg;
        cfg.io = &io;
        Vm vm(rs, cfg, opts);
        vm.run(3000);
        if (reference.empty()) {
            reference = io.outputsAt(1);
            EXPECT_FALSE(reference.empty());
        } else {
            EXPECT_EQ(io.outputsAt(1), reference) << "flags " << m;
        }
    }
}

TEST(Vm, TempElisionOnlyTouchesUnobservedMemories)
{
    // `m` is read by nothing: with elideUnusedTemps its latch may stay
    // zero, but cells and every observed component are unaffected.
    const char *text = "# elide\n"
                       "inc count m .\n"
                       "A inc 4 count 1\n"
                       "M m count.0.2 count 0 8\n"
                       "M count 0 inc 1 1\n"
                       ".\n";
    ResolvedSpec rs = resolveText(text);
    CompilerOptions opts;
    opts.elideUnusedTemps = true;
    Vm vm(rs, {}, opts);
    vm.run(5);
    Vm plain(rs, {}, {});
    plain.run(5);
    EXPECT_EQ(vm.value("count"), plain.value("count"));
    EXPECT_EQ(vm.stats().mems[0].reads, plain.stats().mems[0].reads);
}

TEST(Vm, ProgramSizesReported)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 10));
    Vm vm(rs, {}, {});
    EXPECT_GT(vm.program().totalInstructions(), 0u);
}

} // namespace
} // namespace asim
