/** @file
 * Observability must never feed back into simulation results: traces,
 * scripted I/O, checkpoints, batch records, and campaign outcomes are
 * byte-identical with tracing + timing metrics off, on, and after a
 * mid-run state change (the contract in support/metrics.hh).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/campaign.hh"
#include "machines/synthetic.hh"
#include "sim/batch.hh"
#include "sim/checkpoint.hh"
#include "sim/simulation.hh"
#include "support/metrics.hh"
#include "support/tracing.hh"

namespace asim {
namespace {

/** Run the whole test body once with observability off and once with
 *  a live trace file, returning both captures for comparison. */
class ObservabilityScope
{
  public:
    ObservabilityScope()
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("asim_obs_det_" + std::to_string(::getpid()) +
                  ".json"))
                    .string();
        EXPECT_TRUE(tracing::start(path_));
    }

    ~ObservabilityScope()
    {
        tracing::stop();
        metrics::setTimingEnabled(false);
        std::remove(path_.c_str());
    }

  private:
    std::string path_;
};

/** Deterministic fingerprint of one simulation run. */
std::string
runFingerprint(const std::string &specText, unsigned partitions,
               const std::string &engine, uint64_t cycles)
{
    SimulationOptions o;
    o.specText = specText;
    o.engine = engine;
    o.partitions = partitions;
    o.partitionMinComponents = 1;
    o.ioMode = IoMode::Null;
    std::ostringstream trace;
    o.traceStream = &trace;

    Simulation sim(o);
    sim.run(cycles);
    std::string out = trace.str();
    out += "|cycle=" + std::to_string(sim.cycle());
    out += "|ckpt=" + encodeCheckpoint(sim.snapshot(), sim.specHash(),
                                       "test");
    return out;
}

/** Deterministic fingerprint of a small batch (timing fields like
 *  seconds are wall-clock and excluded by design). */
std::string
batchFingerprint(const std::string &specText)
{
    BatchOptions bo;
    bo.threads = 3;
    BatchRunner runner(bo);
    BatchJob job;
    job.options.specText = specText;
    job.options.ioMode = IoMode::Null;
    job.cycles = 64;
    runner.addBatch(job, 6);
    BatchResult result = runner.run();

    std::string out;
    for (const auto &r : result.instances) {
        out += r.label + "/" + r.engine + "/" +
               std::to_string(r.cyclesRun) + "/" +
               (r.faulted ? r.fault : "ok") + "/" + r.ioText + ";";
    }
    return out;
}

/** Deterministic fingerprint of a small fault campaign. */
std::string
campaignFingerprint(const std::string &specText)
{
    CampaignOptions co;
    co.base.specText = specText;
    co.base.ioMode = IoMode::Null;
    co.runs = 8;
    co.seed = 42;
    co.horizon = 64;
    co.threads = 2;
    CampaignRunner runner(std::move(co));
    CampaignResult result = runner.run();

    std::string out;
    for (const auto &rec : result.records) {
        out += rec.site + "/" + rec.component + "/" +
               std::to_string(static_cast<int>(rec.outcome)) + "/" +
               std::to_string(rec.cyclesRun) + ";";
    }
    return out;
}

TEST(ObservabilityDeterminismTest, SingleRunByteIdentical)
{
    const std::string spec =
        generateSyntheticText(syntheticPreset("1k"));
    const std::string off = runFingerprint(spec, 1, "interp", 32);
    std::string on;
    {
        ObservabilityScope scope;
        on = runFingerprint(spec, 1, "interp", 32);
    }
    EXPECT_EQ(off, on);
}

TEST(ObservabilityDeterminismTest, PartitionedRunByteIdentical)
{
    const std::string spec =
        generateSyntheticText(syntheticPreset("1k"));
    const std::string off = runFingerprint(spec, 4, "interp", 32);
    std::string on;
    {
        ObservabilityScope scope;
        on = runFingerprint(spec, 4, "interp", 32);
    }
    EXPECT_EQ(off, on);
}

TEST(ObservabilityDeterminismTest, VmRunByteIdentical)
{
    const std::string spec =
        generateSyntheticText(syntheticPreset("1k"));
    const std::string off = runFingerprint(spec, 1, "vm", 32);
    std::string on;
    {
        ObservabilityScope scope;
        on = runFingerprint(spec, 1, "vm", 32);
    }
    EXPECT_EQ(off, on);
}

TEST(ObservabilityDeterminismTest, BatchRecordsByteIdentical)
{
    const std::string spec =
        generateSyntheticText(syntheticPreset("1k"));
    const std::string off = batchFingerprint(spec);
    std::string on;
    {
        ObservabilityScope scope;
        on = batchFingerprint(spec);
    }
    EXPECT_EQ(off, on);
}

TEST(ObservabilityDeterminismTest, CampaignOutcomesByteIdentical)
{
    const std::string spec =
        generateSyntheticText(syntheticPreset("1k"));
    const std::string off = campaignFingerprint(spec);
    std::string on;
    {
        ObservabilityScope scope;
        on = campaignFingerprint(spec);
    }
    EXPECT_EQ(off, on);
}

TEST(ObservabilityDeterminismTest, MidRunStartStopHarmless)
{
    const std::string spec =
        generateSyntheticText(syntheticPreset("1k"));

    SimulationOptions o;
    o.specText = spec;
    o.engine = "interp";
    o.partitions = 2;
    o.partitionMinComponents = 1;
    o.ioMode = IoMode::Null;
    std::ostringstream trace;
    o.traceStream = &trace;
    Simulation sim(o);

    sim.run(16);
    {
        ObservabilityScope scope;
        sim.run(16); // tracing flips on mid-simulation
    }
    sim.run(16); // and back off

    const std::string uninterrupted =
        runFingerprint(spec, 2, "interp", 48);
    std::string got = trace.str();
    got += "|cycle=" + std::to_string(sim.cycle());
    got += "|ckpt=" + encodeCheckpoint(sim.snapshot(),
                                       sim.specHash(), "test");
    EXPECT_EQ(uninterrupted, got);
}

} // namespace
} // namespace asim
