/** @file
 * Tests of the BatchRunner subsystem: shared immutable artifacts
 * (one resolve, one vm program) across a batch, per-instance I/O
 * scripts and watchpoints, fault isolation, manifest loading, the
 * out-of-process refusal — and the headline determinism property:
 * batch results are byte-identical across thread counts for both
 * in-process engine families.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "analysis/fault.hh"
#include "machines/counter.hh"
#include "machines/tiny_computer.hh"
#include "sim/batch.hh"
#include "sim/native_engine.hh"
#include "sim/vm.hh"
#include "support/thread_pool.hh"

#ifndef ASIM_SPECS_DIR
#define ASIM_SPECS_DIR "specs"
#endif

namespace asim {
namespace {

std::string
specPath(const std::string &name)
{
    return std::string(ASIM_SPECS_DIR) + "/" + name;
}

/** Integer-echo machine (same shape as specs/echo.asim). */
const char *kEchoSpec = "# integer echo\n"
                        "= 4\n"
                        "in out .\n"
                        "M in 1 0 2 1\n"
                        "M out 1 in 3 1\n"
                        ".\n";

/** A machine that faults at cycle 11: a counter addressing a 10-cell
 *  memory with its own value. */
const char *kFaultSpec = "# walks off the end of mem at cycle 11\n"
                         "count* next .\n"
                         "A next 4 count 1\n"
                         "M count 0 next 1 1\n"
                         "M mem count count 1 10\n"
                         ".\n";

TEST(BatchRunnerTest, HomogeneousBatchSharesResolveAndProgram)
{
    BatchJob job;
    job.options.specFile = specPath("gcd.asim");
    BatchRunner runner;
    runner.addBatch(job, 4);
    EXPECT_EQ(runner.jobCount(), 4u);

    BatchResult result = runner.run();
    ASSERT_EQ(result.instances.size(), 4u);
    for (const auto &r : result.instances) {
        EXPECT_FALSE(r.faulted) << r.fault;
        EXPECT_EQ(r.cyclesRun, 41u); // `= 40` is inclusive
    }
    // gcd(1071, 462) = 21 in every instance's final state.
    const ResolvedSpec rs =
        Simulation::loadSpec([&] {
            SimulationOptions o;
            o.specFile = specPath("gcd.asim");
            return o;
        }());
    int aSlot = rs.memIndex("a");
    ASSERT_GE(aSlot, 0);
    for (const auto &r : result.instances)
        EXPECT_EQ(r.state.mems[aSlot].temp, 21);
}

TEST(BatchRunnerTest, VmInstancesShareOneCompiledProgram)
{
    SimulationOptions opts;
    opts.specText = counterSpec(6, 100);
    auto sims = Simulation::makeBatch(opts, 3);
    ASSERT_EQ(sims.size(), 3u);

    const auto *first = dynamic_cast<const Vm *>(&sims[0]->engine());
    ASSERT_NE(first, nullptr);
    for (auto &sim : sims) {
        EXPECT_EQ(&sim->resolved(), &sims[0]->resolved());
        const auto *vm = dynamic_cast<const Vm *>(&sim->engine());
        ASSERT_NE(vm, nullptr);
        EXPECT_EQ(vm->programShared().get(),
                  first->programShared().get())
            << "batch must share one compiled program";
    }
}

TEST(BatchRunnerTest, SharedProgramKeepsTraceChecksForCaptureTrace)
{
    // fig43_memory traces memory reads and writes; the shared vm
    // program of a homogeneous batch must keep those trace checks
    // when captureTrace attaches its sink only at run time.
    BatchJob job;
    job.options.specFile = specPath("fig43_memory.asim");
    job.captureTrace = true;

    BatchRunner viaJob;
    viaJob.addJob(job);
    std::string single = viaJob.run().instances[0].traceText;
    ASSERT_NE(single.find("Write to memory at"), std::string::npos)
        << single;
    ASSERT_NE(single.find("Read from memory at"), std::string::npos);

    BatchRunner viaBatch;
    viaBatch.addBatch(job, 3);
    BatchResult result = viaBatch.run();
    for (const auto &r : result.instances)
        EXPECT_EQ(r.traceText, single) << r.index;
}

// ---------------------------------------------------------------------
// Native (out-of-process) batches: one compiled binary, one --serve
// child per instance (skipped without a host compiler).
// ---------------------------------------------------------------------

class NativeBatch : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!NativeEngine::available())
            GTEST_SKIP() << "no host compiler";
    }
};

TEST_F(NativeBatch, InstancesShareOneCompiledBinary)
{
    SimulationOptions opts;
    opts.specText = counterSpec(6, 100);
    opts.engine = "native";
    auto sims = Simulation::makeBatch(opts, 3);
    ASSERT_EQ(sims.size(), 3u);

    const auto *first =
        dynamic_cast<const NativeEngine *>(&sims[0]->engine());
    ASSERT_NE(first, nullptr);
    for (auto &sim : sims) {
        const auto *ne =
            dynamic_cast<const NativeEngine *>(&sim->engine());
        ASSERT_NE(ne, nullptr);
        EXPECT_EQ(&ne->build(), &first->build())
            << "batch must share one compiled binary";
        EXPECT_EQ(ne->childPid(), -1)
            << "children spawn lazily, not at construction";
        sim->run(10);
        EXPECT_EQ(sim->value("count"), 10);
    }
    // After running, each instance owns its own live child off the
    // one shared binary.
    std::set<long> pids;
    for (auto &sim : sims) {
        const auto *ne =
            dynamic_cast<const NativeEngine *>(&sim->engine());
        EXPECT_GT(ne->childPid(), 0);
        pids.insert(ne->childPid());
    }
    EXPECT_EQ(pids.size(), sims.size());
}

TEST_F(NativeBatch, MatchesVmBatchOnEveryChannel)
{
    auto runEngine = [&](const char *engine) {
        BatchJob job;
        job.options.specFile = specPath("gcd.asim");
        job.options.engine = engine;
        job.captureTrace = true;
        BatchRunner runner;
        runner.addBatch(job, 3);
        return runner.run();
    };
    BatchResult native = runEngine("native");
    BatchResult vm = runEngine("vm");
    ASSERT_EQ(native.instances.size(), vm.instances.size());
    for (size_t i = 0; i < native.instances.size(); ++i) {
        EXPECT_FALSE(native.instances[i].faulted)
            << native.instances[i].fault;
        EXPECT_EQ(native.instances[i].traceText,
                  vm.instances[i].traceText)
            << i;
        EXPECT_EQ(native.instances[i].ioText, vm.instances[i].ioText);
        EXPECT_TRUE(native.instances[i].state == vm.instances[i].state)
            << "instance " << i << " final state differs";
        EXPECT_EQ(native.instances[i].cyclesRun,
                  vm.instances[i].cyclesRun);
    }
}

TEST(BatchRunnerTest, RefusesInteractiveIo)
{
    BatchJob job;
    job.options.specText = kEchoSpec;
    job.options.ioMode = IoMode::Interactive;
    BatchRunner runner;
    EXPECT_THROW(runner.addJob(job), SimError);
}

TEST(BatchRunnerTest, PerInstanceIoScripts)
{
    BatchRunner runner;
    for (int i = 0; i < 3; ++i) {
        BatchJob job;
        job.options.specText = kEchoSpec;
        job.options.ioMode = IoMode::Script;
        for (int k = 0; k < 5; ++k)
            job.options.scriptInputs.push_back(100 * i + k);
        job.label = "echo" + std::to_string(i);
        runner.addJob(std::move(job));
    }
    BatchResult result = runner.run();
    ASSERT_EQ(result.instances.size(), 3u);
    EXPECT_EQ(result.instances[0].ioText, "0\n1\n2\n3\n4\n");
    EXPECT_EQ(result.instances[1].ioText,
              "100\n101\n102\n103\n104\n");
    EXPECT_EQ(result.instances[2].ioText,
              "200\n201\n202\n203\n204\n");
}

TEST(BatchRunnerTest, WatchpointStopsEarly)
{
    BatchJob job;
    job.options.specFile = specPath("gcd.asim");
    job.watchName = "a";
    job.watchValue = 21;
    BatchRunner runner;
    runner.addJob(job);
    BatchResult result = runner.run();
    const InstanceResult &r = result.instances[0];
    EXPECT_TRUE(r.watchpointHit);
    EXPECT_LT(r.cyclesRun, r.cyclesRequested);
    EXPECT_FALSE(r.faulted);
}

TEST(BatchRunnerTest, FaultIsolatedToItsInstance)
{
    BatchRunner runner;
    BatchJob ok;
    ok.options.specText = counterSpec(4, 100);
    ok.cycles = 50;
    runner.addJob(ok);

    BatchJob bad;
    bad.options.specText = kFaultSpec;
    bad.cycles = 50;
    runner.addJob(bad);

    BatchResult result = runner.run();
    EXPECT_FALSE(result.allOk());
    EXPECT_FALSE(result.instances[0].faulted);
    EXPECT_EQ(result.instances[0].cyclesRun, 50u);
    EXPECT_TRUE(result.instances[1].faulted);
    EXPECT_NE(result.instances[1].fault.find("mem"),
              std::string::npos)
        << result.instances[1].fault;
    EXPECT_LT(result.instances[1].cyclesRun, 50u);
    EXPECT_EQ(result.aggregate.faults, 1u);
    EXPECT_NE(result.summaryTable().find("FAULT"),
              std::string::npos);
}

TEST(BatchRunnerTest, MissingCycleBudgetThrows)
{
    BatchJob job;
    job.options.specText = "# no cycle count\n"
                           "count* next .\n"
                           "A next 4 count 1\n"
                           "M count 0 next 1 1\n"
                           ".\n";
    BatchRunner runner;
    runner.addJob(job);
    EXPECT_THROW(runner.run(), SimError);
}

TEST(BatchRunnerTest, AggregateMatchesInstanceSums)
{
    BatchJob job;
    job.options.specFile = specPath("multiplier.asim");
    BatchRunner runner;
    runner.addBatch(job, 5);
    BatchResult result = runner.run();

    uint64_t cycles = 0, alu = 0;
    for (const auto &r : result.instances) {
        cycles += r.stats.cycles;
        alu += r.stats.aluEvals;
    }
    EXPECT_EQ(result.aggregate.tasks, 5u);
    EXPECT_EQ(result.aggregate.cycles, cycles);
    EXPECT_EQ(result.aggregate.aluEvals, alu);
    EXPECT_GT(result.aggregate.cycles, 0u);
}

TEST(BatchRunnerTest, JsonReportIsShapedAndEscaped)
{
    BatchJob job;
    job.options.specText = kEchoSpec;
    job.options.ioMode = IoMode::Script;
    job.options.scriptInputs = {1, 2, 3, 4, 5};
    BatchRunner runner;
    runner.addJob(job);
    BatchResult result = runner.run();
    std::string json = result.json();
    EXPECT_NE(json.find("\"instances\": ["), std::string::npos);
    EXPECT_NE(json.find("\"cycles_per_second\""), std::string::npos);
    // Newlines in captured I/O must be escaped, never literal.
    EXPECT_NE(json.find("1\\n2\\n3\\n4\\n5\\n"), std::string::npos)
        << json;
}

// ---------------------------------------------------------------------
// Manifest loading
// ---------------------------------------------------------------------

class ManifestTest : public ::testing::Test
{
  protected:
    /** Per-test file name: CTest runs sibling tests concurrently. */
    std::string
    manifestPath() const
    {
        const auto *info = ::testing::UnitTest::GetInstance()
                               ->current_test_info();
        return std::string("/tmp/asim_batch_manifest_") +
               info->name() + ".txt";
    }

    std::string
    writeManifest(const std::string &text)
    {
        std::string path = manifestPath();
        std::ofstream f(path);
        f << text;
        return path;
    }

    void
    TearDown() override
    {
        std::remove(manifestPath().c_str());
    }
};

TEST_F(ManifestTest, LoadsJobsWithAllKeys)
{
    std::string specs = ASIM_SPECS_DIR;
    std::string path = writeManifest(
        "# a comment line\n"
        "\n" +
        specs + "/counter.asim count=2  # trailing comment\n" +
        specs + "/gcd.asim watch=a:21 engine=interp\n" +
        specs + "/echo.asim io=" + specs + "/echo.io cycles=5\n");

    BatchRunner runner;
    SimulationOptions defaults;
    EXPECT_EQ(runner.loadManifest(path, defaults), 4u);
    EXPECT_EQ(runner.jobCount(), 4u);

    BatchResult result = runner.run();
    EXPECT_TRUE(result.allOk());
    EXPECT_EQ(result.instances[2].engine, "interp");
    EXPECT_TRUE(result.instances[2].watchpointHit);
    EXPECT_EQ(result.instances[3].ioText, "10\n20\n30\n40\n50\n");
}

TEST_F(ManifestTest, DefaultCyclesAppliesToLinesWithoutKey)
{
    std::string specs = ASIM_SPECS_DIR;
    std::string path = writeManifest(specs + "/counter.asim\n" +
                                     specs +
                                     "/counter.asim cycles=3\n");
    BatchRunner runner;
    runner.loadManifest(path, SimulationOptions{},
                        /*defaultCycles=*/7);
    BatchResult result = runner.run();
    // Like the CLI's --cycles: the default overrides the spec's `=`
    // count but never an explicit cycles= key.
    EXPECT_EQ(result.instances[0].cyclesRun, 7u);
    EXPECT_EQ(result.instances[1].cyclesRun, 3u);
}

TEST_F(ManifestTest, RelativePathsResolveAgainstManifestDir)
{
    // The manifest lives in specs/: bare file names must work.
    BatchRunner runner;
    SimulationOptions defaults;
    size_t n = runner.loadManifest(specPath("batch.manifest"),
                                   defaults);
    EXPECT_GE(n, 5u);
    BatchResult result = runner.run();
    EXPECT_TRUE(result.allOk());
}

TEST_F(ManifestTest, FaultKeyInjectsPerJob)
{
    std::string specs = ASIM_SPECS_DIR;
    std::string path = writeManifest(
        specs + "/counter.asim\n" +
        specs + "/counter.asim fault=next:1:set1\n" +
        specs + "/counter.asim fault=count:0:toggle@10\n");
    BatchOptions bo;
    bo.captureState = true;
    BatchRunner withState(bo);
    withState.loadManifest(path, SimulationOptions{});
    BatchResult result = withState.run();
    ASSERT_EQ(result.instances.size(), 3u);
    EXPECT_TRUE(result.allOk());
    // Both injected instances diverge from the healthy one.
    EXPECT_FALSE(result.instances[1].state.mems ==
                 result.instances[0].state.mems);
    EXPECT_FALSE(result.instances[2].state.mems ==
                 result.instances[0].state.mems);
}

TEST_F(ManifestTest, BadFaultTextMatchesTheSharedParsePath)
{
    std::string specs = ASIM_SPECS_DIR;
    std::string path = writeManifest(specs +
                                     "/counter.asim fault=count\n");
    BatchRunner runner;
    try {
        runner.loadManifest(path, SimulationOptions{});
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        // The manifest surfaces the exact parseFaultSite() text.
        std::string expected;
        try {
            parseFaultSite("count");
        } catch (const SpecError &p) {
            expected = p.what();
        }
        EXPECT_EQ(std::string(e.what()), expected);
    }
}

TEST_F(ManifestTest, RestoreKeyResumesFromCheckpoint)
{
    // Save a checkpoint at cycle 10, then resume it via the manifest
    // to the absolute budget of 20 cycles.
    std::string ckpt = manifestPath() + ".ckpt";
    {
        SimulationOptions opts;
        opts.specFile = specPath("counter.asim");
        Simulation sim(opts);
        sim.run(10);
        sim.saveCheckpoint(ckpt);
    }
    std::string path = writeManifest(specPath("counter.asim") +
                                     " restore=" + ckpt +
                                     " cycles=20\n");
    BatchOptions bo;
    bo.captureState = true;
    BatchRunner runner(bo);
    runner.loadManifest(path, SimulationOptions{});
    BatchResult result = runner.run();
    std::remove(ckpt.c_str());
    ASSERT_EQ(result.instances.size(), 1u);
    EXPECT_TRUE(result.allOk());
    // cycles= is an absolute budget: 10 restored + 10 executed.
    EXPECT_EQ(result.instances[0].cyclesRun, 20u);
}

TEST_F(ManifestTest, MalformedLinesThrowWithLineNumbers)
{
    for (const char *line :
         {"counter.asim cycles=0\n", "counter.asim count=0\n",
          "counter.asim watch=nocolon\n", "counter.asim froz=1\n",
          "counter.asim cycles\n"}) {
        std::string path = writeManifest(line);
        BatchRunner runner;
        try {
            runner.loadManifest(path, SimulationOptions{});
            FAIL() << "expected SimError for: " << line;
        } catch (const SimError &e) {
            EXPECT_NE(std::string(e.what()).find(":1:"),
                      std::string::npos)
                << e.what();
        }
    }
    EXPECT_THROW(BatchRunner().loadManifest("/nope/nothing.txt",
                                            SimulationOptions{}),
                 SimError);
}

// ---------------------------------------------------------------------
// The headline property: byte-identical results across thread counts.
// ---------------------------------------------------------------------

class BatchDeterminism : public ::testing::TestWithParam<const char *>
{};

/** Everything observable about a batch, rendered to one comparable
 *  string (stats summaries included — they fold in every counter). */
std::string
fingerprint(const BatchResult &result)
{
    std::ostringstream os;
    for (const auto &r : result.instances) {
        os << r.index << "|" << r.label << "|" << r.engine << "|"
           << r.cyclesRequested << "|" << r.cyclesRun << "|"
           << r.watchpointHit << "|" << r.faulted << "|" << r.fault
           << "|" << r.ioText << "|" << r.traceText << "|"
           << r.stats.summary() << "#";
        os << r.state.vars.size() << ":";
        for (int32_t v : r.state.vars)
            os << v << ",";
        for (const auto &m : r.state.mems) {
            os << m.temp << ";" << m.adr << ";" << m.opn << ";";
            for (int32_t c : m.cells)
                os << c << ",";
        }
        os << "\n";
    }
    return os.str();
}

/** A diverse workload: homogeneous shards, on-disk specs with
 *  watchpoints, scripted echo instances, and one faulting machine. */
void
buildWorkload(BatchRunner &runner, const char *engine)
{
    BatchJob shard;
    shard.options.specText = counterSpec(6, 100);
    shard.options.engine = engine;
    shard.cycles = 64;
    shard.captureTrace = true;
    shard.label = "counter";
    runner.addBatch(shard, 3);

    BatchJob gcd;
    gcd.options.specFile = specPath("gcd.asim");
    gcd.options.engine = engine;
    gcd.watchName = "a";
    gcd.watchValue = 21;
    runner.addJob(gcd);

    BatchJob mult;
    mult.options.specFile = specPath("multiplier.asim");
    mult.options.engine = engine;
    mult.captureTrace = true;
    runner.addJob(mult);

    for (int i = 0; i < 2; ++i) {
        BatchJob echo;
        echo.options.specText = kEchoSpec;
        echo.options.engine = engine;
        echo.options.ioMode = IoMode::Script;
        for (int k = 0; k < 5; ++k)
            echo.options.scriptInputs.push_back(10 * i + k);
        echo.label = "echo" + std::to_string(i);
        runner.addJob(std::move(echo));
    }

    BatchJob fault;
    fault.options.specText = kFaultSpec;
    fault.options.engine = engine;
    fault.cycles = 50;
    fault.label = "faulty";
    runner.addJob(fault);
}

TEST_P(BatchDeterminism, BitIdenticalAcrossThreadCounts)
{
    const char *engine = GetParam();
    std::string reference;
    unsigned counts[] = {1u, 2u, ThreadPool::hardwareThreads()};
    for (unsigned threads : counts) {
        BatchOptions bopts;
        bopts.threads = threads;
        BatchRunner runner(bopts);
        buildWorkload(runner, engine);
        BatchResult result = runner.run();
        EXPECT_EQ(result.threads, threads);
        std::string fp = fingerprint(result);
        if (reference.empty())
            reference = fp;
        else
            EXPECT_EQ(fp, reference)
                << engine << " diverged at " << threads
                << " threads";
    }
    EXPECT_NE(reference.find("faulty"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Engines, BatchDeterminism,
                         ::testing::Values("interp", "vm",
                                           "symbolic"));

/** The same §7 property for the out-of-process engine (acceptance
 *  bar of the persistent-subprocess protocol): shared-binary shards,
 *  a scripted echo, and a faulting machine come back byte-identical
 *  at 1/2/hw threads. Artifacts are pre-shared once so the test pays
 *  one compile per job family, not one per thread count. */
TEST_F(NativeBatch, BitIdenticalAcrossThreadCounts)
{
    auto share = [](SimulationOptions opts, bool tracing) {
        opts.engine = "native";
        return Simulation::shareBatchArtifacts(opts, tracing);
    };
    SimulationOptions shardOpts;
    shardOpts.specText = counterSpec(6, 100);
    shardOpts = share(shardOpts, /*tracing=*/true);

    SimulationOptions echoOpts;
    echoOpts.specText = kEchoSpec;
    echoOpts.ioMode = IoMode::Script;
    echoOpts.scriptInputs = {7, 8, 9, 10, 11};
    echoOpts = share(echoOpts, false);

    SimulationOptions faultOpts;
    faultOpts.specText = kFaultSpec;
    faultOpts = share(faultOpts, false);

    std::string reference;
    unsigned counts[] = {1u, 2u, ThreadPool::hardwareThreads()};
    for (unsigned threads : counts) {
        BatchOptions bopts;
        bopts.threads = threads;
        BatchRunner runner(bopts);

        BatchJob shard;
        shard.options = shardOpts;
        shard.cycles = 64;
        shard.captureTrace = true;
        shard.label = "counter";
        runner.addBatch(shard, 3);

        BatchJob echo;
        echo.options = echoOpts;
        echo.label = "echo";
        runner.addJob(echo);

        BatchJob fault;
        fault.options = faultOpts;
        fault.cycles = 50;
        fault.label = "faulty";
        runner.addJob(fault);

        BatchResult result = runner.run();
        EXPECT_EQ(result.threads, threads);
        std::string fp = fingerprint(result);
        if (reference.empty())
            reference = fp;
        else
            EXPECT_EQ(fp, reference)
                << "native diverged at " << threads << " threads";
    }
    EXPECT_NE(reference.find("faulty"), std::string::npos);
}

} // namespace
} // namespace asim
