/** @file
 * Cycle-semantics contract tests, run against BOTH engines via a
 * factory parameter. These pin the behaviors DESIGN.md §3 commits to:
 * dependency-ordered combinational evaluation, one-cycle memory
 * latency, declaration-order memory updates with live latches,
 * trace ordering, memory-mapped I/O, and runtime fault reporting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/resolve.hh"
#include "sim/engine.hh"

namespace asim {
namespace {

enum class Kind
{
    Interp,
    Vm,
};

class Engines : public ::testing::TestWithParam<Kind>
{
  protected:
    std::unique_ptr<Engine>
    make(const std::string &text, const EngineConfig &cfg = {})
    {
        rs_ = resolveText(text);
        return GetParam() == Kind::Interp ? makeInterpreter(rs_, cfg)
                                          : makeVm(rs_, cfg);
    }

    ResolvedSpec rs_;
};

TEST_P(Engines, CombinationalChainSettlesInOneCycle)
{
    // c = b + 1 = (a + 1) + 1 = (m + 1) + 2, all in one cycle.
    auto e = make("# chain\n"
                  "a b c m .\n"
                  "A c 4 b 1\n"
                  "A b 4 a 1\n"
                  "A a 4 m 1\n"
                  "M m 0 c 1 1\n"
                  ".\n");
    e->step();
    EXPECT_EQ(e->value("a"), 1);
    EXPECT_EQ(e->value("b"), 2);
    EXPECT_EQ(e->value("c"), 3);
}

TEST_P(Engines, MemoryOneCycleDelay)
{
    // Register pattern: count increments once per cycle, and the
    // incremented value is only visible the NEXT cycle.
    auto e = make("# counter\n"
                  "inc count .\n"
                  "A inc 4 count 1\n"
                  "M count 0 inc 1 1\n"
                  ".\n");
    e->step();
    EXPECT_EQ(e->value("inc"), 1);   // computed from count=0
    EXPECT_EQ(e->value("count"), 1); // latch updated at end of cycle
    e->step();
    EXPECT_EQ(e->value("inc"), 2);
    EXPECT_EQ(e->value("count"), 2);
    e->run(8);
    EXPECT_EQ(e->value("count"), 10);
}

TEST_P(Engines, ReadLatency)
{
    // mem reads cell `count`; the value read in cycle N is observable
    // in cycle N+1 — exactly one cycle behind.
    auto e = make("# readlat\n"
                  "inc count probe .\n"
                  "A inc 4 count 1\n"
                  "M count 0 inc 1 1\n"
                  "M probe 0 0 0 -4 10 20 30 40\n"
                  ".\n");
    // probe reads address 0 every cycle (addr expr 0).
    e->step();
    EXPECT_EQ(e->value("probe"), 10);
}

TEST_P(Engines, DeclarationOrderLatchVisibility)
{
    // `first` is declared before `second`; `second`'s data expression
    // reads `first` and observes the value `first` latched THIS cycle
    // (the STORE trick the stack machine relies on). `third`, declared
    // before `first`, sees the previous cycle's value.
    auto e = make("# order\n"
                  "inc count third first second .\n"
                  "A inc 4 count 1\n"
                  "M count 0 inc 1 1\n"
                  "M third 0 first 1 1\n"
                  "M first 0 count 1 1\n"
                  "M second 0 first 1 1\n"
                  ".\n");
    e->step(); // count: 0->1; first latches count.temp(pre)=...
    e->step();
    e->step();
    // After k cycles: count.temp = k. first latches count's *fresh*
    // temp? No: first's data expr reads count.temp, and count is
    // declared BEFORE first, so first sees the value count latched
    // this same cycle.
    EXPECT_EQ(e->value("count"), 3);
    EXPECT_EQ(e->value("first"), 3);  // fresh (count declared earlier)
    EXPECT_EQ(e->value("second"), 3); // fresh (first declared earlier)
    EXPECT_EQ(e->value("third"), 2);  // stale (declared before first)
}

TEST_P(Engines, SelectorSemantics)
{
    auto e = make("# sel\n"
                  "inc count pick .\n"
                  "A inc 4 count 1\n"
                  "M count 0 inc 1 1\n"
                  "S pick count.0.1 10 20 30 40\n"
                  ".\n");
    e->step(); // pick computed from count=0
    EXPECT_EQ(e->value("pick"), 10);
    e->step();
    EXPECT_EQ(e->value("pick"), 20);
    e->step();
    EXPECT_EQ(e->value("pick"), 30);
    e->step();
    EXPECT_EQ(e->value("pick"), 40);
    e->step();
    EXPECT_EQ(e->value("pick"), 10); // wraps via the 2-bit subfield
}

TEST_P(Engines, SelectorIndexOutOfRangeThrows)
{
    auto e = make("# badsel\n"
                  "inc count pick .\n"
                  "A inc 4 count 1\n"
                  "M count 0 inc 1 1\n"
                  "S pick count 10 20\n"
                  ".\n");
    e->step(); // count=0 -> case 0 fine
    e->step(); // count=1 -> case 1 fine
    EXPECT_THROW(e->step(), SimError); // count=2 -> out of range
}

TEST_P(Engines, MemoryAddressOutOfRangeThrows)
{
    auto e = make("# badaddr\n"
                  "inc count m .\n"
                  "A inc 4 count 1\n"
                  "M count 0 inc 1 1\n"
                  "M m count 0 0 4\n"
                  ".\n");
    e->run(4); // addresses 0..3 fine
    EXPECT_THROW(e->step(), SimError); // address 4
}

TEST_P(Engines, InitialValuesAndReset)
{
    auto e = make("# init\n"
                  "m .\n"
                  "M m 0 0 0 -4 12 34 56 78\n"
                  ".\n");
    EXPECT_EQ(e->memCell("m", 0), 12);
    EXPECT_EQ(e->memCell("m", 3), 78);
    EXPECT_EQ(e->value("m"), 0); // latch starts at zero
    e->step();
    EXPECT_EQ(e->value("m"), 12);
    e->reset();
    EXPECT_EQ(e->value("m"), 0);
    EXPECT_EQ(e->cycle(), 0u);
    EXPECT_EQ(e->memCell("m", 1), 34); // init values reapplied
}

TEST_P(Engines, WriteVisibleOnLatchAndInCell)
{
    // Figure 4.3 semantics: a write latches the written data, so the
    // memory's output equals the new value on the next cycle.
    // m is defined BEFORE count so its data expression observes the
    // previous cycle's count (stale latch).
    auto e = make("# write\n"
                  "inc count m .\n"
                  "A inc 4 count 1\n"
                  "M m count.0.2 count 1 8\n"
                  "M count 0 inc 1 1\n"
                  ".\n");
    e->run(3);
    // Cycle k wrote count.temp (pre-update value k) at address k.
    EXPECT_EQ(e->memCell("m", 0), 0);
    EXPECT_EQ(e->memCell("m", 1), 1);
    EXPECT_EQ(e->memCell("m", 2), 2);
}

TEST_P(Engines, MemoryMappedOutput)
{
    VectorIo io;
    EngineConfig cfg;
    cfg.io = &io;
    // Output `count` to I/O address 1 every cycle (operation 3);
    // port is defined before count to observe the stale latch.
    auto e = make("# out\n"
                  "inc count port .\n"
                  "A inc 4 count 1\n"
                  "M port 1 count 3 1\n"
                  "M count 0 inc 1 1\n"
                  ".\n",
                  cfg);
    e->run(3);
    EXPECT_EQ(io.outputsAt(1), (std::vector<int32_t>{0, 1, 2}));
}

TEST_P(Engines, MemoryMappedInput)
{
    VectorIo io;
    io.pushInput(7);
    io.pushInput(9);
    EngineConfig cfg;
    cfg.io = &io;
    auto e = make("# in\n"
                  "port .\n"
                  "M port 1 0 2 1\n"
                  ".\n",
                  cfg);
    e->step();
    EXPECT_EQ(e->value("port"), 7);
    e->step();
    EXPECT_EQ(e->value("port"), 9);
    e->step();
    EXPECT_EQ(e->value("port"), 0); // queue exhausted
}

TEST_P(Engines, TraceLineOrderAndMemoryPreUpdateValue)
{
    std::ostringstream os;
    StreamTrace trace(os);
    EngineConfig cfg;
    cfg.trace = &trace;
    auto e = make("# trace\n"
                  "count* inc* .\n"
                  "A inc 4 count 1\n"
                  "M count 0 inc 1 1\n"
                  ".\n",
                  cfg);
    e->run(2);
    // Memories print the value BEFORE this cycle's update ("the value
    // used in the computation is printed before it is updated").
    EXPECT_EQ(os.str(),
              "Cycle   0 count= 0 inc= 1\n"
              "Cycle   1 count= 1 inc= 2\n");
}

TEST_P(Engines, TraceReadsAndWrites)
{
    std::ostringstream os;
    StreamTrace trace(os);
    EngineConfig cfg;
    cfg.trace = &trace;
    // opn 5 = write + trace-writes (m before count: stale data).
    auto e = make("# tw\n"
                  "inc count m .\n"
                  "A inc 4 count 1\n"
                  "M m count.0.2 count 5 8\n"
                  "M count 0 inc 1 1\n"
                  ".\n",
                  cfg);
    e->run(2);
    EXPECT_EQ(os.str(),
              "Cycle   0\n"
              "Write to m at 0: 0\n"
              "Cycle   1\n"
              "Write to m at 1: 1\n");
}

TEST_P(Engines, TraceReadsMessage)
{
    std::ostringstream os;
    StreamTrace trace(os);
    EngineConfig cfg;
    cfg.trace = &trace;
    // opn 8 = read + trace-reads.
    auto e = make("# tr\n"
                  "m .\n"
                  "M m 0 0 8 -2 42 43\n"
                  ".\n",
                  cfg);
    e->step();
    EXPECT_EQ(os.str(), "Cycle   0\nRead from m at 0: 42\n");
}

TEST_P(Engines, DynamicTraceBits)
{
    std::ostringstream os;
    StreamTrace trace(os);
    EngineConfig cfg;
    cfg.trace = &trace;
    // Operation alternates 5, 4, 5, 4...: writes trace only when the
    // write bit is also set (opn&5 == 5).
    auto e = make("# dyntrace\n"
                  "inc count op m .\n"
                  "A inc 4 count 1\n"
                  "S op count.0 5 4\n"
                  "M m 0 count op.0.3 8\n"
                  "M count 0 inc 1 1\n"
                  ".\n",
                  cfg);
    e->run(2);
    EXPECT_EQ(os.str(),
              "Cycle   0\n"
              "Write to m at 0: 0\n"
              "Cycle   1\n");
}

TEST_P(Engines, StatsCounters)
{
    VectorIo io;
    EngineConfig cfg;
    cfg.io = &io;
    auto e = make("# stats\n"
                  "inc count m port .\n"
                  "A inc 4 count 1\n"
                  "M count 0 inc 1 1\n"
                  "M m 0 count 0 4\n"
                  "M port 1 count 3 1\n"
                  ".\n",
                  cfg);
    e->run(5);
    const SimStats &st = e->stats();
    EXPECT_EQ(st.cycles, 5u);
    EXPECT_EQ(st.aluEvals, 5u);
    ASSERT_EQ(st.mems.size(), 3u);
    EXPECT_EQ(st.mems[0].writes, 5u); // count
    EXPECT_EQ(st.mems[1].reads, 5u);  // m
    EXPECT_EQ(st.mems[2].outputs, 5u);
}

TEST_P(Engines, ThesisShiftQuirkObservable)
{
    // ALU function 6 with shift count 0 yields 0 under Thesis
    // semantics and the operand under Fixed semantics.
    const char *text = "# shl\n"
                       "r .\n"
                       "A r 6 5 0\n"
                       ".\n";
    auto e = make(text);
    e->step();
    EXPECT_EQ(e->value("r"), 0);

    EngineConfig fixed;
    fixed.aluSemantics = AluSemantics::Fixed;
    auto e2 = make(text, fixed);
    e2->step();
    EXPECT_EQ(e2->value("r"), 5);
}

TEST_P(Engines, UnknownValueNameThrows)
{
    auto e = make("# tiny\nx .\nA x 0 0 0\n.\n");
    EXPECT_THROW(e->value("ghost"), SimError);
    EXPECT_THROW(e->memCell("ghost", 0), SimError);
}

TEST_P(Engines, DynamicAluFunctionOutOfRangeThrows)
{
    // A dynamic funct that evaluates to 14 must fault at runtime.
    auto e = make("# dynbad\n"
                  "inc count r .\n"
                  "A inc 4 count 1\n"
                  "M count 0 inc 1 1\n"
                  "A r count.0.4 1 1\n"
                  ".\n");
    e->run(14);
    EXPECT_THROW(e->step(), SimError);
}

INSTANTIATE_TEST_SUITE_P(Both, Engines,
                         ::testing::Values(Kind::Interp, Kind::Vm),
                         [](const auto &info) {
                             return info.param == Kind::Interp
                                        ? "Interpreter"
                                        : "Vm";
                         });

} // namespace
} // namespace asim
