/** @file
 * Checkpoint subsystem tests: binary round trips through memory and
 * disk, the corrupt-input hardening contract (truncations and bit
 * flips of every byte must raise diagnostic SimErrors, never UB),
 * spec-identity binding, and BatchRunner's checkpoint/resume flow.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "machines/counter.hh"
#include "sim/batch.hh"
#include "sim/checkpoint.hh"
#include "sim/simulation.hh"
#include "support/serialize.hh"

namespace asim {
namespace {

const char *kEchoSpec = "# integer echo\n"
                        "= 9\n"
                        "in out .\n"
                        "M in 1 0 2 1\n"
                        "M out 1 in 3 1\n"
                        ".\n";

/** Unique scratch path per test; removed by the caller when needed. */
std::string
tmpPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() /
            ("asim_ckpt_test_" + name))
        .string();
}

class CheckpointFormat : public ::testing::Test
{
  protected:
    /** A mid-run snapshot with non-trivial state, stats, and an
     *  input cursor. */
    static Simulation
    makeEchoSim(std::ostream &out)
    {
        SimulationOptions opts;
        opts.specText = kEchoSpec;
        opts.ioMode = IoMode::Script;
        opts.scriptInputs = {11, 22, 33, 44, 55, 66, 77, 88, 99, 110};
        opts.ioOut = &out;
        return Simulation(opts);
    }
};

TEST_F(CheckpointFormat, EncodeDecodeRoundTrip)
{
    std::ostringstream os;
    Simulation sim = makeEchoSim(os);
    sim.run(4);
    EngineSnapshot snap = sim.snapshot();
    EXPECT_EQ(snap.ioValues, 4u);
    EXPECT_EQ(snap.ioBytes, kNoIoCursor);

    std::string blob = encodeCheckpoint(snap, 0x1234, "vm");
    CheckpointInfo info;
    EngineSnapshot back = decodeCheckpoint(blob, "mem", &info);

    EXPECT_EQ(info.version, kCheckpointVersion);
    EXPECT_EQ(info.specHash, 0x1234u);
    EXPECT_EQ(info.savedBy, "vm");
    EXPECT_EQ(info.cycle, 4u);
    EXPECT_TRUE(back.state == snap.state);
    EXPECT_EQ(back.cycle, snap.cycle);
    EXPECT_EQ(back.ioValues, snap.ioValues);
    EXPECT_EQ(back.ioBytes, snap.ioBytes);
    EXPECT_EQ(back.stats.cycles, snap.stats.cycles);
    EXPECT_EQ(back.stats.summary(), snap.stats.summary());
}

TEST_F(CheckpointFormat, FileRoundTripAndPeek)
{
    const std::string path = tmpPath("file_roundtrip.ckpt");
    std::ostringstream os;
    Simulation sim = makeEchoSim(os);
    sim.run(3);
    sim.saveCheckpoint(path);

    CheckpointInfo info = peekCheckpoint(path);
    EXPECT_EQ(info.cycle, 3u);
    EXPECT_EQ(info.savedBy, "vm");
    EXPECT_EQ(info.specHash, sim.specHash());

    EngineSnapshot snap =
        loadCheckpoint(path, sim.resolved());
    EXPECT_TRUE(snap.state == sim.snapshot().state);
    std::remove(path.c_str());
}

TEST_F(CheckpointFormat, RestoredRunContinuesByteIdentically)
{
    // Reference: uninterrupted 9-cycle scripted run.
    std::ostringstream refOut;
    Simulation ref = makeEchoSim(refOut);
    ref.run(9);

    // Save at cycle 4, restore into a *fresh* process-equivalent
    // simulation (new Simulation, same spec), finish the run: the
    // combined output must be byte-identical, including the input
    // cursor (values 5.. continue, not restart).
    const std::string path = tmpPath("continue.ckpt");
    std::ostringstream aOut;
    Simulation a = makeEchoSim(aOut);
    a.run(4);
    a.saveCheckpoint(path);

    std::ostringstream bOut;
    Simulation b = makeEchoSim(bOut);
    b.restoreCheckpoint(path);
    EXPECT_EQ(b.cycle(), 4u);
    b.run(5);

    EXPECT_EQ(aOut.str() + bOut.str(), refOut.str());
    EXPECT_TRUE(b.engine().state() == ref.engine().state());
    std::remove(path.c_str());
}

TEST_F(CheckpointFormat, WrongSpecRefusedByHash)
{
    const std::string path = tmpPath("wrong_spec.ckpt");
    std::ostringstream os;
    Simulation echo = makeEchoSim(os);
    echo.run(2);
    echo.saveCheckpoint(path);

    SimulationOptions counter;
    counter.specText = counterSpec(4, 100);
    Simulation other(counter);
    try {
        other.restoreCheckpoint(path);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("different specification"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
    }
    std::remove(path.c_str());
}

TEST_F(CheckpointFormat, UnreadableFileIsDiagnostic)
{
    SimulationOptions opts;
    opts.specText = kEchoSpec;
    Simulation sim(opts);
    EXPECT_THROW(
        sim.restoreCheckpoint("/nonexistent/dir/nothing.ckpt"),
        SimError);
    EXPECT_THROW(peekCheckpoint("/nonexistent/dir/nothing.ckpt"),
                 SimError);
}

// ---------------------------------------------------------------------
// Corrupt-input hardening: every truncation length and every
// single-byte flip of a real checkpoint must fail with SimError —
// diagnostics, not crashes, and never a silent success.
// ---------------------------------------------------------------------

class CheckpointFuzz : public ::testing::Test
{
  protected:
    static std::string
    realBlob()
    {
        std::ostringstream os;
        SimulationOptions opts;
        opts.specText = kEchoSpec;
        opts.ioMode = IoMode::Script;
        opts.scriptInputs = {1, 2, 3, 4, 5};
        opts.ioOut = &os;
        Simulation sim(opts);
        sim.run(3);
        return encodeCheckpoint(sim.snapshot(), sim.specHash(),
                                "vm");
    }
};

TEST_F(CheckpointFuzz, EveryTruncationLengthThrows)
{
    std::string blob = realBlob();
    ASSERT_GT(blob.size(), 40u);
    for (size_t len = 0; len < blob.size(); ++len) {
        EXPECT_THROW(decodeCheckpoint(blob.substr(0, len),
                                      "trunc" + std::to_string(len)),
                     SimError)
            << "length " << len;
    }
    // The untruncated blob still decodes (the harness is honest).
    EXPECT_NO_THROW(decodeCheckpoint(blob, "full"));
}

TEST_F(CheckpointFuzz, EverySingleByteFlipThrows)
{
    std::string blob = realBlob();
    for (size_t i = 0; i < blob.size(); ++i) {
        std::string bad = blob;
        bad[i] = static_cast<char>(bad[i] ^ 0x5a);
        EXPECT_THROW(decodeCheckpoint(bad, "flip"), SimError)
            << "flip at byte " << i;
    }
}

TEST_F(CheckpointFuzz, AppendedGarbageThrows)
{
    std::string blob = realBlob() + "garbage";
    EXPECT_THROW(decodeCheckpoint(blob, "padded"), SimError);
}

TEST_F(CheckpointFuzz, AbsurdCountRejectedBeforeAllocation)
{
    // Handcraft a header whose var count claims 2^40 entries; the
    // decoder must refuse on the count itself (sanity limit /
    // remaining-bytes check), not attempt the allocation. The CRC is
    // made valid so the count check is what fires.
    ByteWriter w;
    w.bytes(kCheckpointMagic);
    w.u32(kCheckpointVersion);
    w.u64(0);       // spec hash
    w.str("evil");  // saved-by
    w.u64(1);       // cycle
    w.u64(0);       // ioValues
    w.u64(0);       // ioBytes
    w.u64(1);       // stats cycles
    w.u64(0);       // stats alu
    w.u64(0);       // stats sel
    w.u64(0);       // stats mem count
    w.u64(1ull << 40); // state var count: absurd
    w.u32(crc32(w.data()));
    try {
        decodeCheckpoint(w.data(), "crafted");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("state var count"), std::string::npos)
            << msg;
    }
}

TEST_F(CheckpointFuzz, FutureVersionRefusedByName)
{
    std::string blob = realBlob();
    // Bump the version field (bytes 8..11) and re-seal the CRC so
    // only the version gate can object.
    blob[8] = static_cast<char>(kCheckpointVersion + 7);
    uint32_t crc = crc32(
        std::string_view(blob).substr(0, blob.size() - 4));
    for (int i = 0; i < 4; ++i)
        blob[blob.size() - 4 + i] =
            static_cast<char>((crc >> (8 * i)) & 0xff);
    try {
        decodeCheckpoint(blob, "future");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("newer"),
                  std::string::npos)
            << e.what();
    }
}

// ---------------------------------------------------------------------
// BatchRunner checkpoint/resume: a finished run's artifacts skip
// instances; a killed run's artifacts (checkpoint, no .done marker)
// resume them with byte-identical output.
// ---------------------------------------------------------------------

class BatchResume : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Suffix with the test name: ctest runs each case as its own
        // process, so a shared directory races under parallel runs.
        dir_ = tmpPath(std::string("batch_resume_") +
                       ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name());
        std::filesystem::remove_all(dir_);
    }
    void
    TearDown() override
    {
        std::filesystem::remove_all(dir_);
    }

    static BatchJob
    echoJob(uint64_t cycles)
    {
        BatchJob job;
        job.options.specText = kEchoSpec;
        job.options.ioMode = IoMode::Script;
        job.options.scriptInputs = {11, 22, 33, 44, 55,
                                    66, 77, 88, 99, 110};
        job.cycles = cycles;
        job.label = "echo";
        return job;
    }

    std::string dir_;
};

TEST_F(BatchResume, FinishedInstancesAreSkippedOnResume)
{
    BatchOptions bopts;
    bopts.checkpointDir = dir_;
    {
        BatchRunner runner(bopts);
        runner.addBatch(echoJob(6), 3);
        BatchResult first = runner.run();
        ASSERT_TRUE(first.allOk());
        EXPECT_FALSE(first.instances[0].resumed);
    }
    BatchRunner again(bopts);
    again.addBatch(echoJob(6), 3);
    EXPECT_EQ(again.resumeFromCheckpoints(), 3u);
    BatchResult second = again.run();
    ASSERT_TRUE(second.allOk());
    for (const auto &r : second.instances) {
        EXPECT_TRUE(r.resumed);
        EXPECT_EQ(r.cyclesRun, 6u);
        EXPECT_EQ(r.ioText, "11\n22\n33\n44\n55\n66\n");
        EXPECT_EQ(r.stats.cycles, 6u);
        EXPECT_FALSE(r.state.mems.empty()) << "state reloaded";
    }
}

TEST_F(BatchResume, KilledRunResumesWithByteIdenticalOutput)
{
    // Simulate the artifacts a killed batch leaves: a mid-run
    // checkpoint and its output text, but no completion marker.
    {
        std::ostringstream os;
        SimulationOptions opts = echoJob(0).options;
        opts.ioOut = &os;
        Simulation sim(opts);
        sim.run(4);
        std::filesystem::create_directories(dir_);
        sim.saveCheckpoint(dir_ + "/inst-0.ckpt");
        // The .io artifact carries the cycle it corresponds to.
        std::ofstream(dir_ + "/inst-0.io") << "4\n" << os.str();
    }

    BatchOptions bopts;
    bopts.checkpointDir = dir_;
    BatchRunner runner(bopts);
    runner.addJob(echoJob(9));
    EXPECT_EQ(runner.resumeFromCheckpoints(), 1u);
    BatchResult result = runner.run();
    ASSERT_TRUE(result.allOk());
    const InstanceResult &r = result.instances[0];
    EXPECT_TRUE(r.resumed);
    EXPECT_EQ(r.cyclesRun, 9u);

    // Reference: the same job uninterrupted.
    BatchRunner ref;
    ref.addJob(echoJob(9));
    BatchResult refResult = ref.run();
    EXPECT_EQ(r.ioText, refResult.instances[0].ioText)
        << "resumed output must be byte-identical";
    EXPECT_TRUE(r.state == refResult.instances[0].state);

    // And the dir is now marked done: a third run skips entirely.
    BatchRunner third(bopts);
    third.addJob(echoJob(9));
    EXPECT_EQ(third.resumeFromCheckpoints(), 1u);
    BatchResult done = third.run();
    EXPECT_EQ(done.instances[0].ioText,
              refResult.instances[0].ioText);
}

TEST_F(BatchResume, TornArtifactsRestartInsteadOfStitching)
{
    // A kill between the .io and .ckpt writes leaves their cycle
    // tags disagreeing. Resume must detect the tear and restart the
    // instance from zero — full, correct output, no duplicated or
    // missing chunk.
    {
        std::ostringstream os;
        SimulationOptions opts = echoJob(0).options;
        opts.ioOut = &os;
        Simulation sim(opts);
        sim.run(4);
        std::filesystem::create_directories(dir_);
        sim.saveCheckpoint(dir_ + "/inst-0.ckpt");
        std::ofstream(dir_ + "/inst-0.io") << "2\n11\n22\n"; // stale
    }
    BatchOptions bopts;
    bopts.checkpointDir = dir_;
    BatchRunner runner(bopts);
    runner.addJob(echoJob(9));
    EXPECT_EQ(runner.resumeFromCheckpoints(), 1u);
    BatchResult result = runner.run();
    ASSERT_TRUE(result.allOk());
    EXPECT_FALSE(result.instances[0].resumed) << "tear detected";
    EXPECT_EQ(result.instances[0].ioText,
              "11\n22\n33\n44\n55\n66\n77\n88\n99\n");
}

TEST_F(BatchResume, BudgetExtensionContinuesFromDoneMarker)
{
    BatchOptions bopts;
    bopts.checkpointDir = dir_;
    bopts.checkpointEvery = 2;
    {
        BatchRunner runner(bopts);
        runner.addJob(echoJob(4));
        ASSERT_TRUE(runner.run().allOk());
    }
    BatchRunner more(bopts);
    more.addJob(echoJob(9));
    EXPECT_EQ(more.resumeFromCheckpoints(), 1u);
    BatchResult result = more.run();
    ASSERT_TRUE(result.allOk());
    EXPECT_TRUE(result.instances[0].resumed);
    EXPECT_EQ(result.instances[0].cyclesRun, 9u);
    EXPECT_EQ(result.instances[0].ioText,
              "11\n22\n33\n44\n55\n66\n77\n88\n99\n");
}

TEST_F(BatchResume, ChecksumedArtifactsRejectForeignSpec)
{
    BatchOptions bopts;
    bopts.checkpointDir = dir_;
    {
        BatchRunner runner(bopts);
        runner.addJob(echoJob(4));
        ASSERT_TRUE(runner.run().allOk());
    }
    // Same dir, different machine: the spec-identity hash refuses.
    BatchRunner wrong(bopts);
    BatchJob job;
    job.options.specText = counterSpec(4, 100);
    job.cycles = 10;
    wrong.addJob(std::move(job));
    wrong.resumeFromCheckpoints();
    EXPECT_THROW(wrong.run(), SimError);
}

TEST_F(BatchResume, ResumeRequiresCheckpointDir)
{
    BatchRunner runner;
    runner.addJob(echoJob(4));
    EXPECT_THROW(runner.resumeFromCheckpoints(), SimError);
}

TEST_F(BatchResume, CorruptDoneMarkerIsDiagnostic)
{
    std::filesystem::create_directories(dir_);
    std::ofstream(dir_ + "/inst-0.done") << "not numbers";
    BatchOptions bopts;
    bopts.checkpointDir = dir_;
    BatchRunner runner(bopts);
    runner.addJob(echoJob(4));
    EXPECT_THROW(runner.resumeFromCheckpoints(), SimError);
}

// ---------------------------------------------------------------------
// The .trace sidecar: captured traces persist under the same
// cycle-tag discipline as .io, so resumed instances merge complete
// traces instead of losing everything before the kill.
// ---------------------------------------------------------------------

/** A tracing job: the counter machine stars its count component. */
static BatchJob
tracedCounterJob(uint64_t cycles)
{
    BatchJob job;
    job.options.specText = counterSpec(4, 100);
    job.cycles = cycles;
    job.captureTrace = true;
    job.label = "counter";
    return job;
}

TEST_F(BatchResume, TraceSidecarPersistsAndReloadsWhenSkipping)
{
    BatchOptions bopts;
    bopts.checkpointDir = dir_;
    std::string reference;
    {
        BatchRunner runner(bopts);
        runner.addJob(tracedCounterJob(6));
        BatchResult first = runner.run();
        ASSERT_TRUE(first.allOk());
        reference = first.instances[0].traceText;
        ASSERT_FALSE(reference.empty());
        EXPECT_TRUE(
            std::filesystem::exists(dir_ + "/inst-0.trace"));
    }
    // Skipped-as-done instances reload the trace from the sidecar.
    BatchRunner again(bopts);
    again.addJob(tracedCounterJob(6));
    EXPECT_EQ(again.resumeFromCheckpoints(), 1u);
    BatchResult second = again.run();
    ASSERT_TRUE(second.allOk());
    EXPECT_TRUE(second.instances[0].resumed);
    EXPECT_EQ(second.instances[0].traceText, reference);
}

TEST_F(BatchResume, KilledRunMergesTraceAcrossResume)
{
    // Simulate a kill after the cycle-4 persist: checkpoint, .io,
    // and .trace all tagged 4, no completion marker.
    {
        std::ostringstream ts;
        SimulationOptions opts = tracedCounterJob(0).options;
        opts.traceStream = &ts;
        Simulation sim(opts);
        sim.run(4);
        std::filesystem::create_directories(dir_);
        sim.saveCheckpoint(dir_ + "/inst-0.ckpt");
        std::ofstream(dir_ + "/inst-0.io") << "4\n";
        std::ofstream(dir_ + "/inst-0.trace") << "4\n" << ts.str();
    }
    BatchOptions bopts;
    bopts.checkpointDir = dir_;
    BatchRunner runner(bopts);
    runner.addJob(tracedCounterJob(9));
    EXPECT_EQ(runner.resumeFromCheckpoints(), 1u);
    BatchResult result = runner.run();
    ASSERT_TRUE(result.allOk());
    EXPECT_TRUE(result.instances[0].resumed);

    BatchRunner ref;
    ref.addJob(tracedCounterJob(9));
    BatchResult refResult = ref.run();
    EXPECT_EQ(result.instances[0].traceText,
              refResult.instances[0].traceText)
        << "resumed trace must merge to byte-identical";
}

TEST_F(BatchResume, TornTraceSidecarRestartsInsteadOfStitching)
{
    // .io matches the checkpoint but .trace carries a stale tag (a
    // kill between the .io and .trace writes can't produce this
    // order, but a corrupt file can): the tear restarts the
    // instance, same answer as a torn .io.
    {
        std::ostringstream ts;
        SimulationOptions opts = tracedCounterJob(0).options;
        opts.traceStream = &ts;
        Simulation sim(opts);
        sim.run(4);
        std::filesystem::create_directories(dir_);
        sim.saveCheckpoint(dir_ + "/inst-0.ckpt");
        std::ofstream(dir_ + "/inst-0.io") << "4\n";
        std::ofstream(dir_ + "/inst-0.trace") << "2\nstale";
    }
    BatchOptions bopts;
    bopts.checkpointDir = dir_;
    BatchRunner runner(bopts);
    runner.addJob(tracedCounterJob(9));
    EXPECT_EQ(runner.resumeFromCheckpoints(), 1u);
    BatchResult result = runner.run();
    ASSERT_TRUE(result.allOk());
    EXPECT_FALSE(result.instances[0].resumed) << "tear detected";

    BatchRunner ref;
    ref.addJob(tracedCounterJob(9));
    BatchResult refResult = ref.run();
    EXPECT_EQ(result.instances[0].traceText,
              refResult.instances[0].traceText);
}

// ---------------------------------------------------------------------
// Watchpoint jobs honor checkpointEvery: periodic checkpoints during
// the search, and a faulted search resumes from the last one.
// ---------------------------------------------------------------------

/** The batch_test fault machine: walks a counter off a 10-cell
 *  memory at cycle 11. */
static const char *kWalkOffSpec =
    "# walks off the end of mem at cycle 11\n"
    "count* next .\n"
    "A next 4 count 1\n"
    "M count 0 next 1 1\n"
    "M mem count count 1 10\n"
    ".\n";

TEST_F(BatchResume, WatchpointJobsHonorCheckpointEvery)
{
    BatchJob job;
    job.options.specText = kWalkOffSpec;
    job.cycles = 50;
    job.watchName = "count";
    job.watchValue = -1; // unreachable: the fault fires first
    job.label = "walkoff";

    BatchOptions bopts;
    bopts.checkpointDir = dir_;
    bopts.checkpointEvery = 4;
    {
        BatchRunner runner(bopts);
        runner.addJob(job);
        BatchResult result = runner.run();
        ASSERT_TRUE(result.instances[0].faulted);
        EXPECT_EQ(result.instances[0].cyclesRun, 10u);
    }
    // The fault killed the search mid-chunk, so the artifacts are
    // the last *periodic* checkpoint — cycle 8 — with no completion
    // marker. Before the fix, watchpoint runs left nothing at all.
    ASSERT_TRUE(std::filesystem::exists(dir_ + "/inst-0.ckpt"));
    EXPECT_EQ(peekCheckpoint(dir_ + "/inst-0.ckpt").cycle, 8u);
    EXPECT_FALSE(std::filesystem::exists(dir_ + "/inst-0.done"));

    // And the search resumes from it instead of restarting.
    BatchRunner again(bopts);
    again.addJob(job);
    EXPECT_EQ(again.resumeFromCheckpoints(), 1u);
    BatchResult result = again.run();
    EXPECT_TRUE(result.instances[0].resumed);
    EXPECT_TRUE(result.instances[0].faulted);
    EXPECT_EQ(result.instances[0].cyclesRun, 10u);
}

TEST_F(BatchResume, WatchpointHitStopsAtTheSameCycleWhenChunked)
{
    // Chunking the watch search must not move where it stops: hit
    // at cycle 5 with checkpointEvery=2 (chunk boundary at 4).
    BatchJob job;
    job.options.specText = counterSpec(4, 100);
    job.cycles = 20;
    job.watchName = "count";
    job.watchValue = 5;
    job.label = "counter";

    BatchOptions plain;
    BatchRunner ref(plain);
    ref.addJob(job);
    BatchResult refResult = ref.run();
    ASSERT_TRUE(refResult.instances[0].watchpointHit);

    BatchOptions bopts;
    bopts.checkpointDir = dir_;
    bopts.checkpointEvery = 2;
    BatchRunner runner(bopts);
    runner.addJob(job);
    BatchResult result = runner.run();
    ASSERT_TRUE(result.instances[0].watchpointHit);
    EXPECT_EQ(result.instances[0].cyclesRun,
              refResult.instances[0].cyclesRun);
    // Completion persisted a .done marker recording the hit.
    EXPECT_TRUE(std::filesystem::exists(dir_ + "/inst-0.done"));
}

} // namespace
} // namespace asim
