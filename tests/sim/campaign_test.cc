/** @file
 * Tests of the fault-injection campaign driver (analysis/campaign.hh):
 * the determinism contract (byte-identical JSON across thread counts
 * and reruns of the same seed), outcome classification against the
 * golden reference (masked / SDC / simulator fault / hang), the
 * transient state-site universe, the shared snapshot-injection
 * primitive, and the configuration errors run() promises.
 */

#include <gtest/gtest.h>

#include <string>

#include "analysis/campaign.hh"
#include "analysis/resolve.hh"
#include "machines/counter.hh"
#include "sim/simulation.hh"
#include "support/logging.hh"

#ifndef ASIM_SPECS_DIR
#define ASIM_SPECS_DIR "specs"
#endif

namespace asim {
namespace {

std::string
specPath(const std::string &name)
{
    return std::string(ASIM_SPECS_DIR) + "/" + name;
}

/** A counter (count = cycle) with a cycle count for the horizon. */
const char *kCounterSpec = "# plain counter\n"
                           "= 20\n"
                           "count* next .\n"
                           "A next 4 count 1\n"
                           "M count 0 next 1 1\n"
                           ".\n";

/** The same counter addressing a 40-cell memory with its own value:
 *  an upset that jumps `count` past 40 turns into an out-of-range
 *  memory operation — a simulator fault. */
const char *kAddressedSpec = "# counter addressing mem[count]\n"
                             "= 20\n"
                             "count* next .\n"
                             "A next 4 count 1\n"
                             "M count 0 next 1 1\n"
                             "M mem count count 1 40\n"
                             ".\n";

CampaignOptions
campaignFor(const char *specText, uint64_t runs, uint64_t seed)
{
    CampaignOptions o;
    o.base.specText = specText;
    o.runs = runs;
    o.seed = seed;
    o.threads = 2;
    return o;
}

TEST(Campaign, JsonIdenticalAcrossThreadCounts)
{
    std::string reference;
    for (unsigned threads : {1u, 2u, 0u}) {
        CampaignOptions o;
        o.base.specFile = specPath("gcd.asim");
        o.runs = 96;
        o.seed = 11;
        o.threads = threads;
        std::string json = CampaignRunner(o).run().json();
        if (reference.empty())
            reference = json;
        else
            EXPECT_EQ(json, reference) << threads << " threads";
    }
    EXPECT_NE(reference.find("\"runs\": 96"), std::string::npos);
}

TEST(Campaign, SameSeedReproducibleDifferentSeedNot)
{
    auto o = campaignFor(kCounterSpec, 32, 5);
    std::string first = CampaignRunner(o).run().json();
    std::string again = CampaignRunner(o).run().json();
    EXPECT_EQ(first, again);

    o.seed = 6;
    EXPECT_NE(CampaignRunner(o).run().json(), first)
        << "different seed must sample different faults";
}

TEST(Campaign, WatchpointCampaignClassifiesHangs)
{
    // Golden counter hits count == 15 at cycle 15. An upset that
    // pushes `count` past 15 before then can never reach the
    // watchpoint again (the counter only climbs), so it hangs; an
    // upset sampled after the golden stop cycle is never applied, so
    // it is masked; a small perturbation shifts the hit cycle — SDC.
    auto o = campaignFor(kCounterSpec, 48, 3);
    o.goldenCycle = 5;
    o.watchName = "count";
    o.watchValue = 15;
    CampaignResult r = CampaignRunner(o).run();

    EXPECT_EQ(r.goldenCycles, 15u);
    EXPECT_EQ(r.total.injections, 48u);
    EXPECT_GT(r.total.hang, 0u);
    EXPECT_GT(r.total.masked, 0u);
    EXPECT_GT(r.total.sdc, 0u);
    EXPECT_EQ(r.total.masked + r.total.sdc + r.total.fault +
                  r.total.hang,
              r.total.injections);
    // The spec's only state is `count`; every record aggregates there.
    ASSERT_EQ(r.components.size(), 1u);
    EXPECT_EQ(r.components[0].first, "count");
    for (const CampaignRecord &rec : r.records) {
        EXPECT_EQ(rec.component, "count");
        if (rec.outcome == FaultOutcome::Hang) {
            EXPECT_FALSE(rec.site.empty());
        }
    }
}

TEST(Campaign, EngineFaultsClassifiedAndCarryDiagnostic)
{
    CampaignResult r =
        CampaignRunner(campaignFor(kAddressedSpec, 96, 1)).run();
    EXPECT_GT(r.total.fault, 0u)
        << "a flipped high bit of count must walk off mem";
    for (const CampaignRecord &rec : r.records) {
        if (rec.outcome == FaultOutcome::EngineFault)
            EXPECT_NE(rec.fault.find("mem"), std::string::npos)
                << rec.fault;
        else
            EXPECT_TRUE(rec.fault.empty()) << rec.site;
    }
}

TEST(Campaign, SpliceCampaignRunsFromCycleZero)
{
    auto o = campaignFor(kCounterSpec, 32, 7);
    o.splice = true;
    o.goldenCycle = 9; // ignored: splices cannot restore the golden
    CampaignResult r = CampaignRunner(o).run();
    EXPECT_TRUE(r.splice);
    EXPECT_EQ(r.goldenCycle, 0u);
    EXPECT_EQ(r.total.injections, 32u);
    // Splices sample every component, not just state.
    bool sawAlu = false;
    for (const auto &[name, counts] : r.components)
        sawAlu = sawAlu || name == "next";
    EXPECT_TRUE(sawAlu) << "combinational components are splice "
                           "targets";
    EXPECT_GT(r.total.sdc, 0u);
}

TEST(Campaign, StateSiteUniverse)
{
    ResolvedSpec rs = resolveText(kAddressedSpec);
    // count: latch + 1 cell; mem: latch + 40 cells.
    ASSERT_EQ(stateSiteCount(rs), 43u);

    FaultSite s0 = stateSiteAt(rs, 0);
    EXPECT_EQ(s0.component, "count");
    EXPECT_EQ(s0.cell, -1);
    FaultSite s1 = stateSiteAt(rs, 1);
    EXPECT_EQ(s1.component, "count");
    EXPECT_EQ(s1.cell, 0);
    FaultSite s2 = stateSiteAt(rs, 2);
    EXPECT_EQ(s2.component, "mem");
    EXPECT_EQ(s2.cell, -1);
    FaultSite sLast = stateSiteAt(rs, 42);
    EXPECT_EQ(sLast.component, "mem");
    EXPECT_EQ(sLast.cell, 39);
    EXPECT_THROW(stateSiteAt(rs, 43), SpecError);
}

TEST(Campaign, ApplyFaultToSnapshotPerturbsOneWord)
{
    SimulationOptions opts;
    opts.specText = kAddressedSpec;
    Simulation sim(opts);
    sim.run(6); // count == 6; mem[c] == c+1 for c < 6 (the memory
                // latches its address, so writes land a cycle late)
    EngineSnapshot snap = sim.engine().snapshot();
    const ResolvedSpec &rs = sim.resolved();
    const int countMem = rs.memIndex("count");
    const int memMem = rs.memIndex("mem");
    ASSERT_GE(countMem, 0);
    ASSERT_GE(memMem, 0);

    FaultSite latch; // whole-component site = the output latch
    latch.component = "count";
    latch.bit = 3;
    latch.mode = "toggle";
    const int32_t before = snap.state.mems[countMem].temp;
    applyFaultToSnapshot(snap, rs, latch);
    EXPECT_EQ(snap.state.mems[countMem].temp, before ^ 8);

    FaultSite cell;
    cell.component = "mem";
    cell.cell = 3;
    cell.bit = 2;
    cell.mode = "set0";
    applyFaultToSnapshot(snap, rs, cell);
    EXPECT_EQ(snap.state.mems[memMem].cells[3], 0); // 4 & ~4

    cell.mode = "set1";
    cell.cell = 2;
    cell.bit = 4;
    applyFaultToSnapshot(snap, rs, cell);
    EXPECT_EQ(snap.state.mems[memMem].cells[2], 3 | 16);

    FaultSite bogus;
    bogus.component = "next"; // combinational: no state
    EXPECT_THROW(applyFaultToSnapshot(snap, rs, bogus), SpecError);
}

TEST(Campaign, ConfigurationErrors)
{
    // Golden cycle at/after the horizon (`= 20` runs 21 inclusive
    // thesis iterations).
    auto o = campaignFor(kCounterSpec, 8, 1);
    o.goldenCycle = 21;
    EXPECT_THROW(CampaignRunner(o).run(), SimError);

    // Unknown injector refused before any simulation runs.
    o = campaignFor(kCounterSpec, 8, 1);
    o.injector = "bogus";
    EXPECT_THROW(CampaignRunner(o).run(), SpecError);

    // Interactive I/O cannot fan out.
    o = campaignFor(kCounterSpec, 8, 1);
    o.base.ioMode = IoMode::Interactive;
    EXPECT_THROW(CampaignRunner(o).run(), SimError);

    // No horizon: spec names no cycle count and none was given.
    o = campaignFor("# no cycle count\n"
                    "count* next .\n"
                    "A next 4 count 1\n"
                    "M count 0 next 1 1\n"
                    ".\n",
                    8, 1);
    EXPECT_THROW(CampaignRunner(o).run(), SimError);

    // Zero runs.
    o = campaignFor(kCounterSpec, 8, 1);
    o.runs = 0;
    EXPECT_THROW(CampaignRunner(o).run(), SimError);
}

TEST(Campaign, WatchpointMustBeReachableByGolden)
{
    auto o = campaignFor(kCounterSpec, 8, 1);
    o.watchName = "count";
    o.watchValue = 1000; // counter never gets there in 20 cycles
    EXPECT_THROW(CampaignRunner(o).run(), SimError);

    // Golden checkpoint taken after the watchpoint already fired.
    o = campaignFor(kCounterSpec, 8, 1);
    o.goldenCycle = 10;
    o.watchName = "count";
    o.watchValue = 4;
    EXPECT_THROW(CampaignRunner(o).run(), SimError);
}

TEST(Campaign, TableCarriesTotalsAndJsonOmitsTimings)
{
    CampaignResult r =
        CampaignRunner(campaignFor(kCounterSpec, 16, 2)).run();
    std::string table = r.table();
    EXPECT_NE(table.find("total"), std::string::npos);
    EXPECT_NE(table.find("vulnerable"), std::string::npos);
    EXPECT_NE(table.find(" threads)"), std::string::npos);

    std::string json = r.json();
    EXPECT_EQ(json.find("seconds"), std::string::npos);
    EXPECT_EQ(json.find("threads"), std::string::npos);
    EXPECT_NE(json.find("\"records\""), std::string::npos);
}

} // namespace
} // namespace asim
