/** @file
 * Tests of the Simulation facade and the engine registry: pipeline
 * assembly from text/file/pre-resolved sources, engine selection by
 * name, scripted I/O, run control (runUntil, watchpoints), batched
 * construction, and snapshot/restore determinism — restoring mid-run
 * must continue cycle-for-cycle identical to an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "machines/counter.hh"
#include "machines/tiny_computer.hh"
#include "sim/native_engine.hh"
#include "sim/simulation.hh"

#ifndef ASIM_SPECS_DIR
#define ASIM_SPECS_DIR "specs"
#endif

namespace asim {
namespace {

/** Integer-echo machine: input address 1 routed to output address 1
 *  (same shape as specs/echo.asim). */
const char *kEchoSpec = "# integer echo\n"
                        "= 4\n"
                        "in out .\n"
                        "M in 1 0 2 1\n"
                        "M out 1 in 3 1\n"
                        ".\n";

TEST(EngineRegistryTest, ListsAllThreePaperSystems)
{
    EngineRegistry &reg = EngineRegistry::global();
    EXPECT_TRUE(reg.contains("interp"));
    EXPECT_TRUE(reg.contains("vm"));
    EXPECT_TRUE(reg.contains("native"));
    EXPECT_TRUE(reg.contains("symbolic"));
    EXPECT_FALSE(reg.contains("jit"));
    EXPECT_TRUE(reg.outOfProcess("native"));
    EXPECT_FALSE(reg.outOfProcess("vm"));

    auto names = reg.list();
    EXPECT_GE(names.size(), 4u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(EngineRegistryTest, UnknownEngineNamesAlternatives)
{
    SimulationOptions opts;
    opts.specText = counterSpec(4, 10);
    opts.engine = "jit";
    try {
        Simulation sim(opts);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("jit"), std::string::npos) << msg;
        EXPECT_NE(msg.find("vm"), std::string::npos) << msg;
        EXPECT_NE(msg.find("interp"), std::string::npos) << msg;
    }
}

TEST(EngineRegistryTest, DuplicateRegistrationThrows)
{
    EXPECT_THROW(
        EngineRegistry::global().add(
            "vm", "impostor",
            [](const std::shared_ptr<const ResolvedSpec> &,
               const EngineContext &) -> std::unique_ptr<Engine> {
                return nullptr;
            }),
        SimError);
}

TEST(SimulationTest, RunsFromSpecText)
{
    SimulationOptions opts;
    opts.specText = counterSpec(4, 100);
    Simulation sim(opts);
    sim.run(20);
    EXPECT_EQ(sim.cycle(), 20u);
    EXPECT_EQ(sim.value("count"), 20 % 16);
    EXPECT_EQ(sim.engineName(), "vm");
}

TEST(SimulationTest, RunsFromSpecFile)
{
    SimulationOptions opts;
    opts.specFile = std::string(ASIM_SPECS_DIR) + "/counter.asim";
    opts.engine = "interp";
    Simulation sim(opts);
    EXPECT_TRUE(sim.diagnostics().clean());
    sim.run(5);
    EXPECT_EQ(sim.value("count"), 5);
}

TEST(SimulationTest, RequiresExactlyOneSource)
{
    SimulationOptions none;
    EXPECT_THROW(Simulation sim(none), SimError);

    SimulationOptions both;
    both.specText = counterSpec(4, 10);
    both.specFile = "x.asim";
    EXPECT_THROW(Simulation sim(both), SimError);

    // A pre-resolved spec plus a text/file source is also ambiguous.
    SimulationOptions mixed;
    mixed.resolved = std::make_shared<const ResolvedSpec>(
        resolveText(counterSpec(4, 10)));
    mixed.specText = kEchoSpec;
    EXPECT_THROW(Simulation sim(mixed), SimError);
}

TEST(SimulationTest, LoadScriptParsesAndValidates)
{
    std::string path = "/tmp/asim_simulation_test_script.txt";
    {
        std::ofstream f(path);
        f << "# comment line\n10 -3 0x10 # trailing comment\n7\n";
    }
    EXPECT_EQ(Simulation::loadScript(path),
              (std::vector<int32_t>{10, -3, 16, 7}));

    {
        std::ofstream f(path);
        f << "1 two 3\n";
    }
    EXPECT_THROW(Simulation::loadScript(path), SimError);

    // Out-of-32-bit-range values are rejected, not wrapped.
    {
        std::ofstream f(path);
        f << "3000000000\n";
    }
    EXPECT_THROW(Simulation::loadScript(path), SimError);

    std::remove(path.c_str());
    EXPECT_THROW(Simulation::loadScript(path), SimError);
}

TEST(SimulationTest, DefaultCyclesFollowsSpec)
{
    SimulationOptions opts;
    opts.specText = counterSpec(4, 19);
    Simulation sim(opts);
    EXPECT_EQ(sim.defaultCycles(), 20); // thesis loop is inclusive
}

TEST(SimulationTest, ScriptIoFeedsInputsAndRendersOutputs)
{
    std::ostringstream os;
    SimulationOptions opts;
    opts.specText = kEchoSpec;
    opts.ioMode = IoMode::Script;
    opts.scriptInputs = {10, 20, 30, 40, 50};
    opts.ioOut = &os;
    Simulation sim(opts);
    sim.run(sim.defaultCycles());
    EXPECT_EQ(os.str(), "10\n20\n30\n40\n50\n");
}

TEST(SimulationTest, TraceStreamMatchesDirectEngine)
{
    std::ostringstream viaFacade;
    SimulationOptions opts;
    opts.specText = counterSpec(4, 100);
    opts.traceStream = &viaFacade;
    Simulation sim(opts);
    sim.run(10);

    // Reference: the engine driven directly (unit-level API).
    std::ostringstream direct;
    StreamTrace trace(direct);
    EngineConfig cfg;
    cfg.trace = &trace;
    auto e = makeVm(resolveText(counterSpec(4, 100)), cfg);
    e->run(10);

    EXPECT_EQ(viaFacade.str(), direct.str());
}

TEST(SimulationTest, RunUntilWatchpoint)
{
    SimulationOptions opts;
    opts.specText = counterSpec(4, 100);
    Simulation sim(opts);
    uint64_t steps = sim.runUntilValue("count", 7, 1000);
    EXPECT_EQ(sim.value("count"), 7);
    EXPECT_EQ(sim.cycle(), steps);
    EXPECT_LT(steps, 1000u);
}

TEST(SimulationTest, RunUntilCapsAtMaxCycles)
{
    SimulationOptions opts;
    opts.specText = counterSpec(4, 100);
    Simulation sim(opts);
    uint64_t steps =
        sim.runUntil([](const Simulation &) { return false; }, 10);
    EXPECT_EQ(steps, 10u);
    EXPECT_EQ(sim.cycle(), 10u);
}

TEST(SimulationTest, BatchSharesOneResolveAcrossInstances)
{
    SimulationOptions opts;
    opts.specText = counterSpec(4, 100);
    auto sims = Simulation::makeBatch(opts, 4);
    ASSERT_EQ(sims.size(), 4u);
    for (size_t i = 1; i < sims.size(); ++i) {
        EXPECT_EQ(&sims[i]->resolved(), &sims[0]->resolved())
            << "batch must share one ResolvedSpec";
    }
    // Instances are independent.
    for (size_t i = 0; i < sims.size(); ++i)
        sims[i]->run(i + 1);
    for (size_t i = 0; i < sims.size(); ++i) {
        EXPECT_EQ(sims[i]->cycle(), i + 1);
        EXPECT_EQ(sims[i]->value("count"),
                  static_cast<int32_t>(i + 1));
    }
}

// ---------------------------------------------------------------------
// Snapshot / restore determinism (both in-process engines): restoring
// mid-run must yield cycle-for-cycle identical traces, states, and
// statistics versus an uninterrupted run.
// ---------------------------------------------------------------------

class SnapshotDeterminism
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(SnapshotDeterminism, MidRunRestoreContinuesIdentically)
{
    int result = 0;
    auto img = tinyModProgram(23, 7, result);
    auto rs = std::make_shared<const ResolvedSpec>(
        resolveText(tinyComputerSpec(img, 400)));

    SimulationOptions opts;
    opts.resolved = rs;
    opts.engine = GetParam();

    // Uninterrupted reference run: 300 cycles.
    std::ostringstream osRef;
    SimulationOptions refOpts = opts;
    refOpts.traceStream = &osRef;
    Simulation ref(refOpts);
    ref.run(300);

    // Run A: snapshot at 150, then continue — the snapshot must not
    // perturb the run.
    std::ostringstream osA;
    SimulationOptions aOpts = opts;
    aOpts.traceStream = &osA;
    Simulation a(aOpts);
    a.run(150);
    size_t split = osA.str().size();
    EngineSnapshot snap = a.snapshot();
    EXPECT_EQ(snap.cycle, 150u);
    a.run(150);
    EXPECT_EQ(osA.str(), osRef.str());

    // Run B: a fresh simulation adopting the snapshot must replay
    // the identical tail.
    std::ostringstream osB;
    SimulationOptions bOpts = opts;
    bOpts.traceStream = &osB;
    Simulation b(bOpts);
    b.restore(snap);
    EXPECT_EQ(b.cycle(), 150u);
    b.run(150);
    EXPECT_EQ(osB.str(), osRef.str().substr(split));
    EXPECT_TRUE(b.engine().state() == a.engine().state());
    EXPECT_EQ(b.stats().cycles, a.stats().cycles);
    EXPECT_EQ(b.stats().aluEvals, a.stats().aluEvals);
    EXPECT_EQ(b.stats().selEvals, a.stats().selEvals);
    EXPECT_EQ(b.stats().summary(), a.stats().summary());
}

INSTANTIATE_TEST_SUITE_P(Engines, SnapshotDeterminism,
                         ::testing::Values("interp", "vm"));

TEST(SnapshotTest, CrossEngineRestore)
{
    // A snapshot taken from the interpreter restores into the VM and
    // continues identically (same resolved spec, same semantics).
    auto rs = std::make_shared<const ResolvedSpec>(
        resolveText(counterSpec(6, 100)));
    SimulationOptions opts;
    opts.resolved = rs;

    opts.engine = "interp";
    Simulation interp(opts);
    interp.run(40);

    opts.engine = "vm";
    Simulation vm(opts);
    vm.restore(interp.snapshot());
    vm.run(10);
    interp.run(10);
    EXPECT_TRUE(vm.engine().state() == interp.engine().state());
    EXPECT_EQ(vm.cycle(), interp.cycle());
}

TEST(SnapshotTest, RestoreRejectsShapeMismatch)
{
    SimulationOptions counter;
    counter.specText = counterSpec(4, 10);
    Simulation a(counter);
    a.run(3);

    SimulationOptions echo;
    echo.specText = kEchoSpec;
    Simulation b(echo);
    EXPECT_THROW(b.restore(a.snapshot()), SimError);
}

// ---------------------------------------------------------------------
// Native engine through the registry (skipped without a host
// compiler; the full per-spec equivalence leg lives in
// native_equivalence_test.cc).
// ---------------------------------------------------------------------

class NativeFacade : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!NativeEngine::available())
            GTEST_SKIP() << "no host compiler";
    }
};

TEST_F(NativeFacade, MatchesVmThroughFacade)
{
    auto rs = std::make_shared<const ResolvedSpec>(
        resolveText(counterSpec(4, 100)));

    std::ostringstream osVm, osNative;
    SimulationOptions opts;
    opts.resolved = rs;

    opts.engine = "vm";
    opts.traceStream = &osVm;
    Simulation vm(opts);
    vm.run(10);

    opts.engine = "native";
    opts.traceStream = &osNative;
    Simulation native(opts);
    native.run(10);

    EXPECT_EQ(osNative.str(), osVm.str());
    EXPECT_TRUE(native.engine().state() == vm.engine().state());
    EXPECT_EQ(native.value("count"), vm.value("count"));
    EXPECT_EQ(native.cycle(), vm.cycle());
    EXPECT_EQ(native.stats().cycles, 10u);
}

TEST_F(NativeFacade, IncrementalRunsReplayDeterministically)
{
    SimulationOptions opts;
    opts.specText = counterSpec(4, 100);
    opts.engine = "native";
    std::ostringstream os;
    opts.traceStream = &os;
    Simulation sim(opts);
    sim.run(3);
    EXPECT_EQ(sim.value("count"), 3);
    sim.run(4);
    EXPECT_EQ(sim.value("count"), 7);
    EXPECT_EQ(sim.cycle(), 7u);

    // One uninterrupted run produces the same trace.
    std::ostringstream osRef;
    SimulationOptions refOpts = opts;
    refOpts.traceStream = &osRef;
    Simulation ref(refOpts);
    ref.run(7);
    EXPECT_EQ(os.str(), osRef.str());
}

TEST_F(NativeFacade, RestoreContinuesIdentically)
{
    std::ostringstream osA, osB;
    SimulationOptions opts;
    opts.specText = counterSpec(4, 100);
    opts.engine = "native";
    opts.traceStream = &osA;
    Simulation sim(opts);
    sim.run(5);
    EngineSnapshot snap = sim.snapshot();
    EXPECT_EQ(snap.cycle, 5u);
    sim.run(7); // wander past the snapshot point

    // Restore ships the snapshot to the child as one RESTORE
    // payload (no replay, nothing traced), and the continuation
    // matches an uninterrupted run cycle for cycle.
    sim.restore(snap);
    EXPECT_EQ(sim.cycle(), 5u);
    EXPECT_EQ(sim.value("count"), 5);

    opts.traceStream = &osB;
    Simulation ref(opts);
    ref.run(12);
    osA.str("");
    sim.run(7);
    EXPECT_EQ(sim.value("count"), ref.value("count"));
    EXPECT_TRUE(sim.engine().state() == ref.engine().state());
    // osA now holds exactly the post-restore cycles 5..11.
    EXPECT_NE(osB.str().find(osA.str()), std::string::npos);
}

TEST_F(NativeFacade, RestoreFromVmSnapshotAcrossEngines)
{
    auto rs = std::make_shared<const ResolvedSpec>(
        resolveText(counterSpec(4, 100)));
    SimulationOptions opts;
    opts.resolved = rs;
    opts.engine = "vm";
    Simulation vm(opts);
    vm.run(9);

    opts.engine = "native";
    Simulation native(opts);
    native.restore(vm.snapshot());
    EXPECT_EQ(native.cycle(), 9u);
    EXPECT_EQ(native.value("count"), vm.value("count"));
    native.run(3);
    vm.run(3);
    EXPECT_TRUE(native.engine().state() == vm.engine().state());
}

TEST_F(NativeFacade, RepeatedConstructionSharesOneBuild)
{
    // The cross-job build cache: two independent Simulations over
    // the same resolved spec and options must adopt the same
    // generated+compiled artifact (one host-compiler invocation for
    // a whole heterogeneous batch of identical rows).
    auto rs = std::make_shared<const ResolvedSpec>(
        resolveText(counterSpec(7, 50)));
    SimulationOptions opts;
    opts.resolved = rs;
    opts.engine = "native";
    Simulation s1(opts);
    Simulation s2(opts);
    auto *n1 = dynamic_cast<NativeEngine *>(&s1.engine());
    auto *n2 = dynamic_cast<NativeEngine *>(&s2.engine());
    ASSERT_NE(n1, nullptr);
    ASSERT_NE(n2, nullptr);
    EXPECT_EQ(&n1->build(), &n2->build());
    // ...while both run independently off their own children.
    s1.run(3);
    s2.run(9);
    EXPECT_EQ(s1.value("count"), 3);
    EXPECT_EQ(s2.value("count"), 9);
}

TEST_F(NativeFacade, RejectsIoDevice)
{
    VectorIo io;
    SimulationOptions opts;
    opts.specText = kEchoSpec;
    opts.engine = "native";
    opts.config.io = &io;
    EXPECT_THROW(Simulation sim(opts), SimError);
}

TEST_F(NativeFacade, ScriptedStdinReachesProgram)
{
    std::ostringstream os;
    SimulationOptions opts;
    opts.specText = kEchoSpec;
    opts.engine = "native";
    opts.ioMode = IoMode::Script;
    opts.scriptInputs = {10, 20, 30, 40, 50};
    opts.ioOut = &os;
    opts.traceStream = nullptr;
    Simulation sim(opts);
    sim.run(sim.defaultCycles());
    EXPECT_EQ(os.str(), "10\n20\n30\n40\n50\n");

    auto *ne = dynamic_cast<NativeEngine *>(&sim.engine());
    ASSERT_NE(ne, nullptr);
    EXPECT_EQ(ne->output(), "10\n20\n30\n40\n50\n");
}

} // namespace
} // namespace asim
