/** @file
 * Partitioned-execution tests (sim/partition.hh): the bulk-
 * synchronous partitioned interpreter must be byte-identical to the
 * serial interpreter — traces, scripted I/O, statistics, checkpoints,
 * and fault messages — at every lane count, on both schedule shapes
 * (component-packed and levelized), plus plan-validity and balance
 * checks and the facade's auto-off threshold.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/resolve.hh"
#include "machines/synthetic.hh"
#include "sim/checkpoint.hh"
#include "sim/partition.hh"
#include "sim/simulation.hh"

namespace asim {
namespace {

const unsigned kLaneCounts[] = {2, 3, 8};

/** Everything observable about one run. */
struct RunResult
{
    std::string trace;
    std::string io;
    std::string ckpt; ///< encoded checkpoint (empty after a fault)
    std::string stats;
    std::string error; ///< SimError text ("" = clean run)
    uint64_t cycle = 0;
};

RunResult
runOnce(const std::string &specText, unsigned partitions,
        uint64_t cycles, const std::vector<int32_t> &inputs = {})
{
    SimulationOptions o;
    o.specText = specText;
    o.engine = "interp";
    o.partitions = partitions;
    o.partitionMinComponents = 1; // force tiny specs through
    std::ostringstream traceOs, ioOs;
    o.traceStream = &traceOs;
    o.ioMode = inputs.empty() ? IoMode::Null : IoMode::Script;
    o.scriptInputs = inputs;
    o.ioOut = &ioOs;

    Simulation sim(o);
    RunResult rr;
    try {
        sim.run(cycles);
    } catch (const SimError &e) {
        rr.error = e.what();
    }
    rr.trace = traceOs.str();
    rr.io = ioOs.str();
    rr.cycle = sim.cycle();
    rr.stats = sim.stats().summary();
    if (rr.error.empty()) {
        // The checkpoint encoding covers cycle, input cursor,
        // statistics, and the full machine state; fix savedBy so the
        // comparison is over content, not provenance.
        rr.ckpt = encodeCheckpoint(sim.snapshot(), sim.specHash(),
                                   "test");
    }
    return rr;
}

/** Serial-vs-partitioned byte identity across the lane matrix. */
void
expectIdenticalAcrossLanes(const std::string &specText, uint64_t cycles,
                           const std::vector<int32_t> &inputs = {})
{
    RunResult serial = runOnce(specText, 1, cycles, inputs);
    for (unsigned lanes : kLaneCounts) {
        SCOPED_TRACE("lanes=" + std::to_string(lanes));
        RunResult part = runOnce(specText, lanes, cycles, inputs);
        EXPECT_EQ(serial.trace, part.trace);
        EXPECT_EQ(serial.io, part.io);
        EXPECT_EQ(serial.stats, part.stats);
        EXPECT_EQ(serial.error, part.error);
        EXPECT_EQ(serial.cycle, part.cycle);
        EXPECT_EQ(serial.ckpt, part.ckpt);
    }
}

/** `chains` independent 3-ALU chains, each closed through its own
 *  memory — many small connected components, the component-packer's
 *  case. */
std::string
chainsSpec(int chains)
{
    std::string decls, comps;
    for (int i = 0; i < chains; ++i) {
        std::string n = std::to_string(i);
        decls += "a" + n + "* b" + n + " c" + n + "* m" + n + " ";
        comps += "A a" + n + " 4 m" + n + ".0.7 " + n + "\n";
        comps += "A b" + n + " 4 a" + n + ".0.5 1\n";
        comps += "A c" + n + " 10 b" + n + ".0.7 a" + n + ".0.3\n";
        comps += "M m" + n + " 0 c" + n + " 1 1\n";
    }
    return "# chains\n= 30\n" + decls + ".\n" + comps + ".\n";
}

/** One dense component: every ALU reads the previous two, so every
 *  partition boundary cuts edges and the plan must levelize. */
std::string
denseSpec(int alus)
{
    std::string decls = "m0 ", comps;
    for (int i = 0; i < alus; ++i) {
        std::string n = std::to_string(i);
        decls += "d" + n + (i % 7 == 0 ? "* " : " ");
        std::string left =
            i == 0 ? "m0.0.7" : "d" + std::to_string(i - 1) + ".0.9";
        std::string right =
            i < 2 ? "3" : "d" + std::to_string(i - 2) + ".0.6";
        comps += "A d" + n + " " + std::to_string(i % 6) + " " + left +
                 " " + right + "\n";
    }
    comps += "M m0 0 d" + std::to_string(alus - 1) + " 1 1\n";
    return "# dense\n= 25\n" + decls + ".\n" + comps + ".\n";
}

TEST(Partition, PackedChainsIdenticalAcrossLanes)
{
    expectIdenticalAcrossLanes(chainsSpec(12), 30);
}

TEST(Partition, DenseLevelizedIdenticalAcrossLanes)
{
    expectIdenticalAcrossLanes(denseSpec(40), 25);
}

TEST(Partition, ScriptedIoIdenticalAcrossLanes)
{
    // Multiple I/O memories interleaved with computation: input at
    // address 1, transformed outputs — update order is observable in
    // the scripted-output text and must stay declaration order.
    std::string spec = "# io\n= 8\n"
                       "in sum twice out1 out2 .\n"
                       "A sum 4 in.0.7 1\n"
                       "A twice 4 in.0.7 in.0.7\n"
                       "M in 1 0 2 1\n"
                       "M out1 1 sum 3 1\n"
                       "M out2 2 twice 3 1\n"
                       ".\n";
    expectIdenticalAcrossLanes(spec, 8, {5, 10, 15, 20, 25, 30, 35, 40});
}

TEST(Partition, UpdateClusterKeepsDeclarationOrder)
{
    // m2's data reads m1's output latch and m3's reads m2's: the
    // serial update loop lets m2 see m1's *new* temp within the same
    // cycle. The partitioned engine must cluster them onto one lane.
    std::string spec = "# t\n= 20\n"
                       "x m1 m2 m3 q q0 .\n"
                       "A x 4 m1.0.7 1\n"
                       "A q 4 m3.0.7 2\n"
                       "M m1 0 x 1 1\n"
                       "M m2 0 m1 1 1\n"
                       "M m3 0 m2 1 1\n"
                       "M q0 0 q 1 1\n"
                       ".\n";
    expectIdenticalAcrossLanes(spec, 20);

    ResolvedSpec rs = resolveText(spec);
    PartitionPlan plan = buildPartitionPlan(rs, 4, false);
    // {m1, m2, m3} share one lane; q0 may go anywhere.
    int laneOfM1 = -1, laneOfM2 = -1, laneOfM3 = -1;
    for (size_t l = 0; l < plan.updateLanes.size(); ++l) {
        for (int32_t mi : plan.updateLanes[l]) {
            if (rs.mems[mi].name == "m1")
                laneOfM1 = static_cast<int>(l);
            if (rs.mems[mi].name == "m2")
                laneOfM2 = static_cast<int>(l);
            if (rs.mems[mi].name == "m3")
                laneOfM3 = static_cast<int>(l);
        }
    }
    EXPECT_NE(laneOfM1, -1);
    EXPECT_EQ(laneOfM1, laneOfM2);
    EXPECT_EQ(laneOfM2, laneOfM3);
}

TEST(Partition, SyntheticLayeredMatrix)
{
    for (uint32_t seed : {1u, 2u, 3u}) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        SyntheticOptions so;
        so.alus = 300;
        so.selectors = 60;
        so.memories = 6;
        so.seed = seed;
        so.layers = 8;
        so.localityPercent = 85;
        std::vector<int32_t> inputs;
        for (int i = 0; i < 512; ++i)
            inputs.push_back(i * 7 + 3);
        expectIdenticalAcrossLanes(generateSyntheticText(so), 40,
                                   inputs);
    }
}

TEST(Partition, SyntheticLegacyGiantComponent)
{
    // layers=0 growth wires everything together: typically one giant
    // connected component, exercising the levelized fallback.
    SyntheticOptions so;
    so.alus = 200;
    so.selectors = 40;
    so.memories = 4;
    so.seed = 11;
    std::vector<int32_t> inputs;
    for (int i = 0; i < 512; ++i)
        inputs.push_back(i * 13 + 1);
    expectIdenticalAcrossLanes(generateSyntheticText(so), 40, inputs);
}

TEST(Partition, FaultMessageAndCycleIdentical)
{
    // A counter drives a 2-case selector; when count reaches 2 the
    // selector index is out of range. Same SimError text, same cycle,
    // at every lane count.
    std::string spec = "# t\n= 20\n"
                       "next pick count .\n"
                       "A next 4 count.0.3 1\n"
                       "S pick count.0.3 7 9\n"
                       "M count 0 next 1 1\n"
                       ".\n";
    RunResult serial = runOnce(spec, 1, 20);
    ASSERT_FALSE(serial.error.empty());
    for (unsigned lanes : kLaneCounts) {
        SCOPED_TRACE("lanes=" + std::to_string(lanes));
        RunResult part = runOnce(spec, lanes, 20);
        EXPECT_EQ(serial.error, part.error);
        EXPECT_EQ(serial.cycle, part.cycle);
        EXPECT_EQ(serial.trace, part.trace);
    }
}

TEST(Partition, MemoryFaultIdentical)
{
    // Address climbs past the memory size mid-run.
    std::string spec = "# t\n= 20\n"
                       "next m .\n"
                       "A next 4 m.0.5 1\n"
                       "M m next next 1 4\n"
                       ".\n";
    RunResult serial = runOnce(spec, 1, 20);
    ASSERT_FALSE(serial.error.empty());
    for (unsigned lanes : kLaneCounts) {
        SCOPED_TRACE("lanes=" + std::to_string(lanes));
        RunResult part = runOnce(spec, lanes, 20);
        EXPECT_EQ(serial.error, part.error);
        EXPECT_EQ(serial.cycle, part.cycle);
    }
}

// ---------------------------------------------------------------------
// Plan construction

/** Every component/memory appears exactly once in its schedule. */
void
expectPlanCoversSpec(const PartitionPlan &plan, const ResolvedSpec &rs)
{
    std::vector<int> combSeen(rs.comb.size(), 0);
    for (const auto &phase : plan.combPhases) {
        EXPECT_EQ(phase.size(), plan.lanes);
        for (const auto &lane : phase) {
            for (size_t k = 0; k < lane.size(); ++k) {
                ++combSeen[lane[k]];
                if (k > 0) {
                    EXPECT_LT(lane[k - 1], lane[k]); // topo order
                }
            }
        }
    }
    for (size_t i = 0; i < combSeen.size(); ++i)
        EXPECT_EQ(combSeen[i], 1) << "comb " << i;

    std::vector<int> latchSeen(rs.mems.size(), 0);
    for (const auto &lane : plan.latchLanes)
        for (int32_t mi : lane)
            ++latchSeen[mi];
    std::vector<int> updateSeen(rs.mems.size(), 0);
    for (const auto &lane : plan.updateLanes)
        for (int32_t mi : lane)
            ++updateSeen[mi];
    for (int32_t mi : plan.serialUpdates)
        ++updateSeen[mi];
    for (size_t i = 0; i < rs.mems.size(); ++i) {
        EXPECT_EQ(latchSeen[i], 1) << "mem " << i;
        EXPECT_EQ(updateSeen[i], 1) << "mem " << i;
    }
}

TEST(PartitionPlan, PackedChainsBalancedNoCrossEdges)
{
    ResolvedSpec rs = resolveText(chainsSpec(16));
    PartitionPlan plan = buildPartitionPlan(rs, 4, false);
    expectPlanCoversSpec(plan, rs);
    EXPECT_FALSE(plan.levelized);
    EXPECT_EQ(plan.levels, 1u);
    EXPECT_EQ(plan.crossEdges, 0u);
    EXPECT_EQ(plan.combComponents, 16u);
    // 16 equal chains over 4 lanes: near-perfect LPT balance.
    EXPECT_GE(plan.minLaneWeight * 5, plan.maxLaneWeight * 4);
    EXPECT_TRUE(plan.summary().find("component-packed") !=
                std::string::npos);
}

TEST(PartitionPlan, DenseSpecLevelizes)
{
    ResolvedSpec rs = resolveText(denseSpec(60));
    PartitionPlan plan = buildPartitionPlan(rs, 4, false);
    expectPlanCoversSpec(plan, rs);
    EXPECT_TRUE(plan.levelized);
    EXPECT_GT(plan.levels, 1u);
    EXPECT_GT(plan.totalEdges, 0u);
}

TEST(PartitionPlan, FullLocalityCorpusPacks)
{
    SyntheticOptions so;
    so.alus = 800;
    so.selectors = 100;
    so.memories = 4;
    so.seed = 5;
    so.layers = 8;
    so.localityPercent = 100; // pure column chains
    so.withIo = false;
    ResolvedSpec rs = resolveText(generateSyntheticText(so));
    PartitionPlan plan = buildPartitionPlan(rs, 4, false);
    expectPlanCoversSpec(plan, rs);
    EXPECT_FALSE(plan.levelized);
    EXPECT_EQ(plan.crossEdges, 0u);
    EXPECT_GT(plan.combComponents, 4u);
}

TEST(PartitionPlan, IoMemoriesGoSerial)
{
    std::string spec = "# t\n= 4\n"
                       "in out plain sum .\n"
                       "A sum 4 in.0.7 1\n"
                       "M in 1 0 2 1\n"
                       "M out 1 sum 3 1\n"
                       "M plain 0 sum 1 1\n"
                       ".\n";
    ResolvedSpec rs = resolveText(spec);
    PartitionPlan plan = buildPartitionPlan(rs, 4, false);
    expectPlanCoversSpec(plan, rs);
    std::vector<std::string> serialNames;
    for (int32_t mi : plan.serialUpdates)
        serialNames.push_back(rs.mems[mi].name);
    EXPECT_EQ(serialNames,
              (std::vector<std::string>{"in", "out"}));
}

TEST(PartitionPlan, TracedMemoriesGoSerialOnlyWhenTracing)
{
    // opn constant 5 = write + trace-write flag.
    std::string spec = "# t\n= 4\n"
                       "v m .\n"
                       "A v 4 m.0.7 1\n"
                       "M m 0 v 5 1\n"
                       ".\n";
    ResolvedSpec rs = resolveText(spec);
    PartitionPlan traced = buildPartitionPlan(rs, 2, true);
    EXPECT_EQ(traced.serialUpdates.size(), 1u);
    PartitionPlan untraced = buildPartitionPlan(rs, 2, false);
    EXPECT_TRUE(untraced.serialUpdates.empty());
}

// ---------------------------------------------------------------------
// Facade wiring

TEST(PartitionFacade, AutoThresholdKeepsSmallSpecsSerial)
{
    SimulationOptions o;
    o.specText = chainsSpec(4); // ~12 comb comps, far below 256
    o.engine = "interp";
    o.partitions = 4;
    Simulation sim(o);
    EXPECT_EQ(dynamic_cast<PartitionedInterpreter *>(&sim.engine()),
              nullptr);

    o.partitionMinComponents = 1;
    Simulation forced(o);
    auto *pi = dynamic_cast<PartitionedInterpreter *>(&forced.engine());
    ASSERT_NE(pi, nullptr);
    EXPECT_EQ(pi->plan().lanes, 4u);
}

TEST(PartitionFacade, PartitionsRequireInterp)
{
    SimulationOptions o;
    o.specText = chainsSpec(4);
    o.engine = "vm";
    o.partitions = 2;
    EXPECT_THROW(Simulation sim(o), SimError);
}

TEST(PartitionFacade, CycleReportingMatchesSerial)
{
    SimulationOptions o;
    o.specText = chainsSpec(8);
    o.engine = "interp";
    o.partitions = 3;
    o.partitionMinComponents = 1;
    Simulation sim(o);
    ASSERT_NE(dynamic_cast<PartitionedInterpreter *>(&sim.engine()),
              nullptr);
    EXPECT_EQ(sim.cycle(), 0u);
    sim.step();
    EXPECT_EQ(sim.cycle(), 1u);
    sim.run(9);
    EXPECT_EQ(sim.cycle(), 10u);
    EXPECT_EQ(sim.stats().cycles, 10u);
    sim.reset();
    EXPECT_EQ(sim.cycle(), 0u);
}

TEST(PartitionFacade, MidRunSnapshotCrossesEngineShapes)
{
    // Serial 15 cycles -> snapshot -> restore into a partitioned
    // instance; both continue 15 more and stay byte-identical.
    std::string spec = chainsSpec(10);
    auto mk = [&](unsigned partitions, std::ostringstream &traceOs) {
        SimulationOptions o;
        o.specText = spec;
        o.engine = "interp";
        o.partitions = partitions;
        o.partitionMinComponents = 1;
        o.traceStream = &traceOs;
        return std::make_unique<Simulation>(o);
    };
    std::ostringstream traceA, traceB;
    auto serial = mk(1, traceA);
    auto part = mk(4, traceB);
    serial->run(15);
    part->restore(serial->snapshot());
    serial->run(15);
    part->run(15);
    EXPECT_EQ(serial->cycle(), part->cycle());
    EXPECT_EQ(encodeCheckpoint(serial->snapshot(), serial->specHash(),
                               "t"),
              encodeCheckpoint(part->snapshot(), part->specHash(),
                               "t"));
    // The partitioned trace is the serial trace's cycle-15 suffix.
    std::string full = traceA.str(), suffix = traceB.str();
    ASSERT_GE(full.size(), suffix.size());
    EXPECT_EQ(full.substr(full.size() - suffix.size()), suffix);
}

} // namespace
} // namespace asim
