/** @file
 * Cross-engine checkpoint portability: a checkpoint saved mid-run by
 * any registry engine restores under every other engine, and the
 * continuation's output (trace + scripted I/O on one stream) is
 * byte-identical to an uninterrupted run — the acceptance property
 * of the checkpoint subsystem, extending the equivalence harness
 * across process death.
 *
 * The native engine joins the matrix when a host compiler exists
 * (same gating as the equivalence leg).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <tuple>
#include <vector>

#include "machines/counter.hh"
#include "sim/checkpoint.hh"
#include "sim/native_engine.hh"
#include "sim/simulation.hh"

namespace asim {
namespace {

/** Trace plus scripted integer I/O, so both continuation channels
 *  are exercised: a starred counter gating an echo through memory-
 *  mapped I/O. */
const char *kTracedEchoSpec = "# traced echo\n"
                              "= 11\n"
                              "count* in out .\n"
                              "A next 4 count 1\n"
                              "M count 0 next 1 1\n"
                              "M in 1 0 2 1\n"
                              "M out 1 in 3 1\n"
                              ".\n";

std::vector<std::string>
portableEngines()
{
    std::vector<std::string> engines{"interp", "vm", "symbolic"};
    if (NativeEngine::available())
        engines.push_back("native");
    return engines;
}

SimulationOptions
echoOptions(const std::shared_ptr<const ResolvedSpec> &rs,
            const std::string &engine, std::ostream &out)
{
    SimulationOptions opts;
    opts.resolved = rs;
    opts.engine = engine;
    opts.ioMode = IoMode::Script;
    opts.scriptInputs = {10, 20, 30, 40, 50, 60,
                         70, 80, 90, 100, 110, 120};
    opts.ioOut = &out;
    opts.traceStream = &out;
    return opts;
}

class CheckpointPortability
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
  protected:
    void
    SetUp() override
    {
        const auto &[saver, restorer] = GetParam();
        auto engines = portableEngines();
        auto has = [&](const std::string &e) {
            return std::find(engines.begin(), engines.end(), e) !=
                   engines.end();
        };
        if (!has(saver) || !has(restorer))
            GTEST_SKIP() << "no host compiler";
    }
};

TEST_P(CheckpointPortability, MidRunSaveRestoresByteIdentically)
{
    const auto &[saver, restorer] = GetParam();
    auto rs = std::make_shared<const ResolvedSpec>(
        resolveText(kTracedEchoSpec));
    const uint64_t kTotal = 12, kHalf = 5;
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("asim_port_" + saver + "_" + restorer + ".ckpt"))
            .string();

    // Reference: the saver engine, uninterrupted.
    std::ostringstream refOut;
    Simulation ref(echoOptions(rs, saver, refOut));
    ref.run(kTotal);

    // Save mid-run under the saver...
    std::ostringstream headOut;
    Simulation head(echoOptions(rs, saver, headOut));
    head.run(kHalf);
    head.saveCheckpoint(path);
    EXPECT_EQ(peekCheckpoint(path).savedBy, saver);

    // ...restore under the restorer and finish the run.
    std::ostringstream tailOut;
    Simulation tail(echoOptions(rs, restorer, tailOut));
    tail.restoreCheckpoint(path);
    EXPECT_EQ(tail.cycle(), kHalf);
    tail.run(kTotal - kHalf);

    // The equivalence property across the checkpoint boundary:
    // prefix (saver) + continuation (restorer) is byte-identical to
    // the uninterrupted run, and the final states agree.
    EXPECT_EQ(headOut.str() + tailOut.str(), refOut.str())
        << "continuation diverged: " << saver << " -> " << restorer;
    EXPECT_TRUE(tail.engine().state() == ref.engine().state());
    EXPECT_EQ(tail.cycle(), ref.cycle());
    EXPECT_EQ(tail.value("count"), ref.value("count"));
    std::remove(path.c_str());
}

/** Every ordered saver/restorer pair, including saver == restorer
 *  (persistence without engine hopping must obviously hold too). */
INSTANTIATE_TEST_SUITE_P(
    Matrix, CheckpointPortability,
    ::testing::Combine(::testing::Values("interp", "vm", "symbolic",
                                         "native"),
                       ::testing::Values("interp", "vm", "symbolic",
                                         "native")),
    [](const auto &info) {
        return std::get<0>(info.param) + "_to_" +
               std::get<1>(info.param);
    });

} // namespace
} // namespace asim
