/** @file Unit tests for the macro table. */

#include <gtest/gtest.h>

#include "lang/macro.hh"
#include "support/logging.hh"

namespace asim {
namespace {

TEST(Macro, DefineAndLookup)
{
    MacroTable t;
    t.define("w", "8");
    EXPECT_TRUE(t.defined("w"));
    EXPECT_EQ(t.lookup("w"), "8");
    EXPECT_FALSE(t.defined("x"));
}

TEST(Macro, ExpandInsideToken)
{
    MacroTable t;
    t.define("w", "8");
    t.define("pack", "#0000");
    EXPECT_EQ(t.expand("rom.~w"), "rom.8");
    EXPECT_EQ(t.expand("rom.~w,~pack"), "rom.8,#0000");
    EXPECT_EQ(t.expand("plain"), "plain");
}

TEST(Macro, NameDelimitedByNonAlnum)
{
    MacroTable t;
    t.define("d", "5");
    t.define("dd", "7");
    // `~d..~dd` — the '.' ends the first name.
    EXPECT_EQ(t.expand("~d.~dd"), "5.7");
    EXPECT_EQ(t.expand("x~d,~dd"), "x5,7");
}

TEST(Macro, UndefinedThrows)
{
    MacroTable t;
    EXPECT_THROW(t.expand("~nope"), SpecError);
    EXPECT_THROW(t.lookup("nope"), SpecError);
}

TEST(Macro, InvalidNameThrows)
{
    MacroTable t;
    EXPECT_THROW(t.define("9abc", "x"), SpecError);
    EXPECT_THROW(t.define("", "x"), SpecError);
    EXPECT_THROW(t.define("a-b", "x"), SpecError);
}

TEST(Macro, RedefinitionThrows)
{
    MacroTable t;
    t.define("a", "1");
    EXPECT_THROW(t.define("a", "2"), SpecError);
}

} // namespace
} // namespace asim
