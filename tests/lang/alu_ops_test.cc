/** @file Unit tests for the fourteen ALU functions (thesis dologic). */

#include <gtest/gtest.h>

#include "lang/alu_ops.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace asim {
namespace {

TEST(AluOps, BasicFunctions)
{
    EXPECT_EQ(dologic(kAluZero, 5, 7), 0);
    EXPECT_EQ(dologic(kAluRight, 5, 7), 7);
    EXPECT_EQ(dologic(kAluLeft, 5, 7), 5);
    EXPECT_EQ(dologic(kAluNot, 5, 7), kValueMask - 5);
    EXPECT_EQ(dologic(kAluAdd, 5, 7), 12);
    EXPECT_EQ(dologic(kAluSub, 5, 7), -2);
    EXPECT_EQ(dologic(kAluMul, 5, 7), 35);
    EXPECT_EQ(dologic(kAluAnd, 0b1100, 0b1010), 0b1000);
    EXPECT_EQ(dologic(kAluOr, 0b1100, 0b1010), 0b1110);
    EXPECT_EQ(dologic(kAluXor, 0b1100, 0b1010), 0b0110);
    EXPECT_EQ(dologic(kAluUnused, 5, 7), 0);
    EXPECT_EQ(dologic(kAluEq, 5, 5), 1);
    EXPECT_EQ(dologic(kAluEq, 5, 7), 0);
    EXPECT_EQ(dologic(kAluLt, 5, 7), 1);
    EXPECT_EQ(dologic(kAluLt, 7, 5), 0);
    EXPECT_EQ(dologic(kAluLt, -1, 0), 1); // signed compare
}

TEST(AluOps, ShiftLeftThesisQuirk)
{
    // The 1986 dologic never writes `value` when the loop does not
    // run: shift by zero yields 0, not the input.
    EXPECT_EQ(dologic(kAluShl, 5, 0), 0);
    EXPECT_EQ(dologic(kAluShl, 0, 3), 0);
    EXPECT_EQ(dologic(kAluShl, 5, 1), 10);
    EXPECT_EQ(dologic(kAluShl, 5, 3), 40);
    EXPECT_EQ(dologic(kAluShl, 1, 12), 4096);
}

TEST(AluOps, ShiftLeftFixedSemantics)
{
    EXPECT_EQ(dologic(kAluShl, 5, 0, AluSemantics::Fixed), 5);
    EXPECT_EQ(dologic(kAluShl, 0, 3, AluSemantics::Fixed), 0);
    EXPECT_EQ(dologic(kAluShl, 5, 3, AluSemantics::Fixed), 40);
}

TEST(AluOps, ShiftMasksTo31Bits)
{
    // Shifting past bit 30 drops bits through the 31-bit mask.
    EXPECT_EQ(dologic(kAluShl, 1, 31), 0);
    EXPECT_EQ(dologic(kAluShl, 1, 30), 1 << 30);
    EXPECT_EQ(dologic(kAluShl, 3, 30), 1 << 30);
}

TEST(AluOps, NotIs31BitComplement)
{
    EXPECT_EQ(dologic(kAluNot, 0, 0), kValueMask);
    EXPECT_EQ(dologic(kAluNot, kValueMask, 0), 0);
}

TEST(AluOps, InvalidFunctionThrows)
{
    EXPECT_THROW(dologic(14, 1, 2), SimError);
    EXPECT_THROW(dologic(-1, 1, 2), SimError);
    EXPECT_THROW(dologic(100, 1, 2), SimError);
}

TEST(AluOps, WrappingArithmetic)
{
    EXPECT_EQ(dologic(kAluAdd, INT32_MAX, 1), INT32_MIN);
    EXPECT_EQ(dologic(kAluSub, INT32_MIN, 1), INT32_MAX);
    EXPECT_EQ(dologic(kAluMul, 1 << 20, 1 << 20), 0);
}

/** Property sweep: OR/XOR identities hold for the add/and encodings
 *  the thesis uses (l + r - and, l + r - 2*and). */
class AluIdentity : public ::testing::TestWithParam<int32_t>
{};

TEST_P(AluIdentity, OrXorMatchBitwise)
{
    const int32_t a = GetParam();
    for (int32_t b :
         {0, 1, 2, 3, 0x55, 0xAA, 0xFF, 0x1234, 0x7FFF, 0x12345}) {
        EXPECT_EQ(dologic(kAluOr, a, b),
                  static_cast<int32_t>(static_cast<uint32_t>(a) |
                                       static_cast<uint32_t>(b)))
            << "a=" << a << " b=" << b;
        EXPECT_EQ(dologic(kAluXor, a, b),
                  static_cast<int32_t>(static_cast<uint32_t>(a) ^
                                       static_cast<uint32_t>(b)))
            << "a=" << a << " b=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Values, AluIdentity,
    ::testing::Values(0, 1, 2, 3, 0x55, 0xAA, 0x0F0F, 0x7FFFFFFF,
                      0x12345678, 0x40000000));

/** Property sweep: shift-left equals masked multiplication by 2^n for
 *  non-degenerate inputs, under both semantics. */
class AluShift : public ::testing::TestWithParam<int>
{};

TEST_P(AluShift, MatchesMaskedMultiply)
{
    const int n = GetParam();
    for (int32_t v : {1, 2, 3, 5, 100, 4097}) {
        int64_t expect64 = (static_cast<int64_t>(v) << n) & kValueMask;
        // The loop masks at every doubling, so once the value hits
        // zero it stays zero; for v>0 the final mask is identical.
        int32_t expect = static_cast<int32_t>(expect64);
        EXPECT_EQ(dologic(kAluShl, v, n), expect) << "v=" << v;
        EXPECT_EQ(dologic(kAluShl, v, n, AluSemantics::Fixed), expect);
    }
}

INSTANTIATE_TEST_SUITE_P(Shifts, AluShift, ::testing::Range(1, 20));

} // namespace
} // namespace asim
