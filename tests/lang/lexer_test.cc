/** @file Unit tests for the token scanner (thesis gettoken). */

#include <gtest/gtest.h>

#include <vector>

#include "lang/lexer.hh"
#include "support/logging.hh"

namespace asim {
namespace {

std::vector<std::string>
allTokens(Lexer &lex)
{
    std::vector<std::string> out;
    for (std::string t = lex.next(); !t.empty(); t = lex.next())
        out.push_back(t);
    return out;
}

TEST(Lexer, CommentLineThenTokens)
{
    Lexer lex("# hello world\na b c\n");
    EXPECT_EQ(lex.readCommentLine(), "# hello world");
    EXPECT_EQ(allTokens(lex),
              (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Lexer, BraceCommentsAreWhitespace)
{
    Lexer lex("a {skip me} b{x}c\n{leading} d\n");
    EXPECT_EQ(allTokens(lex),
              (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(Lexer, TrailingDotSplits)
{
    // "count." ends a list: token then "."; "count.3" stays whole.
    Lexer lex("count. count.3 x.\n");
    EXPECT_EQ(allTokens(lex),
              (std::vector<std::string>{"count", ".", "count.3", "x",
                                        "."}));
}

TEST(Lexer, LoneDot)
{
    Lexer lex(". a .\n");
    EXPECT_EQ(allTokens(lex),
              (std::vector<std::string>{".", "a", "."}));
}

TEST(Lexer, MacroExpansionToggle)
{
    Lexer lex("rom.~w rom.~w\n");
    lex.macros().define("w", "8");
    // Off by default.
    EXPECT_EQ(lex.next(), "rom.~w");
    lex.setExpandMacros(true);
    EXPECT_EQ(lex.next(), "rom.8");
}

TEST(Lexer, UndefinedMacroThrows)
{
    Lexer lex("~zap\n");
    lex.setExpandMacros(true);
    EXPECT_THROW(lex.next(), SpecError);
}

TEST(Lexer, MacroInsideLongToken)
{
    Lexer lex("addr.~n,rom.~w\n");
    lex.macros().define("n", "12");
    lex.macros().define("w", "8");
    lex.setExpandMacros(true);
    EXPECT_EQ(lex.next(), "addr.12,rom.8");
}

TEST(Lexer, LineNumbers)
{
    Lexer lex("a\nb\n\nc\n");
    lex.next();
    EXPECT_EQ(lex.line(), 1);
    lex.next();
    EXPECT_EQ(lex.line(), 2);
    lex.next();
    EXPECT_EQ(lex.line(), 4);
}

TEST(Lexer, EmptyAtEof)
{
    Lexer lex("a");
    EXPECT_EQ(lex.next(), "a");
    EXPECT_EQ(lex.next(), "");
    EXPECT_EQ(lex.next(), "");
}

} // namespace
} // namespace asim
