/** @file
 * Tests for the §5.4 modularity extension: module definition (D .. E)
 * and compile-time expansion (U).
 */

#include <gtest/gtest.h>

#include "analysis/resolve.hh"
#include "lang/parser.hh"
#include "sim/engine.hh"
#include "support/logging.hh"

namespace asim {
namespace {

/** A reusable full adder built once, instantiated twice. */
const char *kTwoCounters =
    "# two independent counters from one module\n"
    "c1* c2* .\n"
    "D counter out width .\n"
    "A next 4 out 1\n"
    "A masked 8 next width\n"
    "M out 0 masked 1 1\n"
    "E\n"
    "A w3 2 7 0\n"
    "A w4 2 15 0\n"
    "U u1 counter c1 w3\n"
    "U u2 counter c2 w4\n"
    ".\n";

TEST(Modules, ExpansionCreatesPrefixedComponents)
{
    Spec s = parseSpec(kTwoCounters);
    EXPECT_NE(s.find("c1"), nullptr);
    EXPECT_NE(s.find("c2"), nullptr);
    EXPECT_NE(s.find("u1next"), nullptr);
    EXPECT_NE(s.find("u1masked"), nullptr);
    EXPECT_NE(s.find("u2next"), nullptr);
    // Internals reference the mapped names.
    EXPECT_EQ(exprToString(s.find("u1next")->left), "c1");
    EXPECT_EQ(exprToString(s.find("u2next")->left), "c2");
    EXPECT_EQ(exprToString(s.find("u1masked")->right), "w3");
}

TEST(Modules, ExpandedNamesAutoDeclared)
{
    Spec s = parseSpec(kTwoCounters);
    int found = 0;
    for (const auto &d : s.decls) {
        if (d.name == "u1next" || d.name == "u2masked")
            ++found;
    }
    EXPECT_EQ(found, 2);
}

TEST(Modules, InstancesRunIndependently)
{
    auto e = makeVm(resolveText(kTwoCounters));
    e->run(10);
    // c1 is a 3-bit counter (mask 7), c2 a 4-bit counter (mask 15).
    EXPECT_EQ(e->value("c1"), 10 & 7);
    EXPECT_EQ(e->value("c2"), 10 & 15);
    e->run(8);
    EXPECT_EQ(e->value("c1"), 18 & 7);
    EXPECT_EQ(e->value("c2"), 18 % 16);
}

TEST(Modules, UnknownModuleThrows)
{
    EXPECT_THROW(parseSpec("# bad\nx .\nU i nomod x\n.\n"), SpecError);
}

TEST(Modules, DuplicateModuleThrows)
{
    EXPECT_THROW(parseSpec("# bad\nx .\n"
                           "D m a .\nA a 0 0 0\nE\n"
                           "D m b .\nA b 0 0 0\nE\n"
                           ".\n"),
                 SpecError);
}

TEST(Modules, UnterminatedModuleThrows)
{
    EXPECT_THROW(parseSpec("# bad\nx .\nD m a .\nA a 0 0 0\n"),
                 SpecError);
}

TEST(Modules, BadBodyComponentThrows)
{
    EXPECT_THROW(parseSpec("# bad\nx .\nD m a .\nQ a 0 0 0\nE\n.\n"),
                 SpecError);
}

TEST(Modules, MemoryInsideModule)
{
    // A module wrapping a register file cell.
    const char *text = "# module with memory\n"
                       "out .\n"
                       "D reg out in en .\n"
                       "M out 0 in en 1\n"
                       "E\n"
                       "A v 2 42 0\n"
                       "A one 2 1 0\n"
                       "U r reg out v one\n"
                       ".\n";
    auto e = makeVm(resolveText(text));
    e->step();
    EXPECT_EQ(e->value("out"), 42);
}

TEST(Modules, DoubleInstantiationOfSameActualsCollides)
{
    // Two instances driving the same output component: duplicate
    // definition error from resolution.
    const char *text = "# collide\n"
                       "o .\n"
                       "D m o .\nA o 2 1 0\nE\n"
                       "U a m o\n"
                       "U b m o\n"
                       ".\n";
    EXPECT_THROW(resolveText(text), SpecError);
}

TEST(Modules, ModuleUsingGlobalComponent)
{
    // Module bodies may reference globally defined components (they
    // pass through the rename map untouched).
    const char *text = "# global ref\n"
                       "g out .\n"
                       "A g 2 5 0\n"
                       "D addg out x .\n"
                       "A out 4 x g\n"
                       "E\n"
                       "A two 2 2 0\n"
                       "U i addg out two\n"
                       ".\n";
    auto e = makeVm(resolveText(text));
    e->step();
    EXPECT_EQ(e->value("out"), 7);
}

} // namespace
} // namespace asim
