/** @file Unit tests for the specification parser. */

#include <gtest/gtest.h>

#include "lang/parser.hh"
#include "support/logging.hh"

namespace asim {
namespace {

const char *kCounter =
    "# 4-bit counter\n"
    "= 20\n"
    "count* next .\n"
    "A next 4 count.0.3 1\n"
    "M count 0 next 1 1\n"
    ".\n";

TEST(Parser, CounterSpec)
{
    Spec s = parseSpec(kCounter);
    EXPECT_EQ(s.comment, " 4-bit counter");
    EXPECT_TRUE(s.cyclesSpecified);
    EXPECT_EQ(s.cycles, 20);
    ASSERT_EQ(s.decls.size(), 2u);
    EXPECT_EQ(s.decls[0].name, "count");
    EXPECT_TRUE(s.decls[0].traced);
    EXPECT_FALSE(s.decls[1].traced);
    ASSERT_EQ(s.comps.size(), 2u);
    EXPECT_EQ(s.comps[0].kind, CompKind::Alu);
    EXPECT_EQ(s.comps[0].name, "next");
    EXPECT_EQ(s.comps[1].kind, CompKind::Memory);
    EXPECT_EQ(s.comps[1].memSize, 1);
    EXPECT_EQ(s.thesisIterations(), 21);
}

TEST(Parser, CommentRequired)
{
    EXPECT_THROW(parseSpec("no comment\nx .\n.\n"), SpecError);
    EXPECT_THROW(parseSpec(""), SpecError);
}

TEST(Parser, Macros)
{
    Spec s = parseSpec("# macros\n"
                       "-w 8\n"
                       "-pack #00,rom.~w\n"
                       "= 5\n"
                       "rom alu .\n"
                       "M rom 0 0 0 4\n"
                       "A alu 4 ~pack rom.~w\n"
                       ".\n");
    ASSERT_EQ(s.comps.size(), 2u);
    // ~pack expanded at definition time using ~w.
    EXPECT_EQ(exprToString(s.comps[1].left), "#00,rom.8");
    EXPECT_EQ(exprToString(s.comps[1].right), "rom.8");
}

TEST(Parser, SelectorCases)
{
    Spec s = parseSpec("# sel\n"
                       "s m .\n"
                       "S s m.0.1 10 20 30 40\n"
                       "M m 0 0 0 4\n"
                       ".\n");
    ASSERT_EQ(s.comps[0].cases.size(), 4u);
    EXPECT_EQ(s.comps[0].cases[2].terms[0].value, 30);
}

TEST(Parser, MemoryWithInitValues)
{
    // Figure 4.3: M memory address data operation -4 12 34 56 78
    Spec s = parseSpec("# fig 4.3\n"
                       "memory address data operation .\n"
                       "A address 0 0 0\n"
                       "A data 0 0 0\n"
                       "A operation 0 0 0\n"
                       "M memory address data operation -4 12 34 56 78\n"
                       ".\n");
    const Component &m = s.comps[3];
    EXPECT_EQ(m.memSize, 4);
    ASSERT_EQ(m.init.size(), 4u);
    EXPECT_EQ(m.init[0], 12);
    EXPECT_EQ(m.init[3], 78);
}

TEST(Parser, ZeroSizeMemoryThrows)
{
    EXPECT_THROW(parseSpec("# bad\n"
                           "m .\n"
                           "M m 0 0 0 0\n"
                           ".\n"),
                 SpecError);
}

TEST(Parser, BadComponentLetter)
{
    EXPECT_THROW(parseSpec("# bad\n"
                           "x .\n"
                           "Q x 0 0 0\n"
                           ".\n"),
                 SpecError);
}

TEST(Parser, TruncatedComponentThrows)
{
    EXPECT_THROW(parseSpec("# bad\nx .\nA x 4 1\n"), SpecError);
}

TEST(Parser, InvalidNameThrows)
{
    EXPECT_THROW(parseSpec("# bad\n9name .\n.\n"), SpecError);
    EXPECT_THROW(parseSpec("# bad\nok .\nA 9x 0 0 0\n.\n"),
                 SpecError);
}

TEST(Parser, CyclesOptional)
{
    Spec s = parseSpec("# no cycles\nx .\nA x 0 0 0\n.\n");
    EXPECT_FALSE(s.cyclesSpecified);
}

TEST(Parser, SelectorWithNoCasesThrows)
{
    EXPECT_THROW(parseSpec("# bad\ns .\nS s 0\n.\n"), SpecError);
}

TEST(Parser, FindComponent)
{
    Spec s = parseSpec(kCounter);
    ASSERT_NE(s.find("next"), nullptr);
    EXPECT_EQ(s.find("next")->kind, CompKind::Alu);
    EXPECT_EQ(s.find("nosuch"), nullptr);
}

TEST(Parser, CommentsInsideComponentList)
{
    Spec s = parseSpec("# commented\n"
                       "a m .\n"
                       "A a 4 {the function} m 1 {the right operand}\n"
                       "M m 0 {addr} a 1 1\n"
                       ".\n");
    EXPECT_EQ(s.comps.size(), 2u);
}

TEST(Parser, ThesisStyleHeaderFragment)
{
    // A fragment shaped like the Appendix D opening, exercising
    // macros, '=' cycles, and the traced-name list together.
    Spec s = parseSpec("# Itty Bitty fragment\n"
                       "-k 0\n"
                       "-w 8\n"
                       "= 5545\n"
                       "state* rom ram .\n"
                       "S rom state.0.1 1 2 4 8\n"
                       "M state 0 rom.~k 1 1\n"
                       "M ram state.0.3 rom rom.~w 16\n"
                       ".\n");
    EXPECT_EQ(s.cycles, 5545);
    EXPECT_EQ(s.comps.size(), 3u);
    EXPECT_EQ(exprToString(s.comps[1].data), "rom.0");
    EXPECT_EQ(exprToString(s.comps[2].opn), "rom.8");
}

} // namespace
} // namespace asim
