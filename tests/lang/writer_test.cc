/** @file Round-trip tests: parse(write(spec)) is structurally equal. */

#include <gtest/gtest.h>

#include "lang/parser.hh"
#include "lang/writer.hh"
#include "machines/counter.hh"
#include "machines/synthetic.hh"

namespace asim {
namespace {

void
expectSpecsEqual(const Spec &a, const Spec &b)
{
    EXPECT_EQ(a.comment, b.comment);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.cyclesSpecified, b.cyclesSpecified);
    ASSERT_EQ(a.decls.size(), b.decls.size());
    for (size_t i = 0; i < a.decls.size(); ++i)
        EXPECT_EQ(a.decls[i], b.decls[i]);
    ASSERT_EQ(a.comps.size(), b.comps.size());
    for (size_t i = 0; i < a.comps.size(); ++i) {
        const Component &x = a.comps[i];
        const Component &y = b.comps[i];
        EXPECT_EQ(x.kind, y.kind);
        EXPECT_EQ(x.name, y.name);
        EXPECT_EQ(x.funct, y.funct);
        EXPECT_EQ(x.left, y.left);
        EXPECT_EQ(x.right, y.right);
        EXPECT_EQ(x.select, y.select);
        EXPECT_EQ(x.cases, y.cases);
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.data, y.data);
        EXPECT_EQ(x.opn, y.opn);
        EXPECT_EQ(x.memSize, y.memSize);
        EXPECT_EQ(x.init, y.init);
    }
}

TEST(Writer, CounterRoundTrip)
{
    Spec a = parseSpec(counterSpec(4, 20));
    Spec b = parseSpec(writeSpec(a));
    expectSpecsEqual(a, b);
}

TEST(Writer, TrafficLightRoundTrip)
{
    Spec a = parseSpec(trafficLightSpec(50));
    Spec b = parseSpec(writeSpec(a));
    expectSpecsEqual(a, b);
}

TEST(Writer, ComponentLineShapes)
{
    Spec s = parseSpec("# shapes\n"
                       "a sel m n .\n"
                       "A a 4 m.0.3 #01\n"
                       "S sel a.0 1 2\n"
                       "M m 0 a 1 4\n"
                       "M n 0 a 1 -2 7 9\n"
                       ".\n");
    EXPECT_EQ(writeComponent(s.comps[0]), "A a 4 m.0.3 #01");
    EXPECT_EQ(writeComponent(s.comps[1]), "S sel a.0 1 2");
    EXPECT_EQ(writeComponent(s.comps[2]), "M m 0 a 1 4");
    EXPECT_EQ(writeComponent(s.comps[3]), "M n 0 a 1 -2 7 9");
}

/** Property: every synthetic spec round-trips through text. */
class WriterProperty : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(WriterProperty, SyntheticRoundTrip)
{
    SyntheticOptions opts;
    opts.seed = GetParam();
    Spec a = generateSynthetic(opts);
    Spec b = parseSpec(writeSpec(a));
    expectSpecsEqual(a, b);
    // And again: serialization is a fixed point.
    EXPECT_EQ(writeSpec(a), writeSpec(b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriterProperty,
                         ::testing::Range(1u, 21u));

} // namespace
} // namespace asim
