/** @file Unit tests for the ASIM II number grammar (thesis str2num). */

#include <gtest/gtest.h>

#include "lang/number.hh"
#include "support/logging.hh"

namespace asim {
namespace {

TEST(Number, Decimal)
{
    EXPECT_EQ(parseNumber("0"), 0);
    EXPECT_EQ(parseNumber("7"), 7);
    EXPECT_EQ(parseNumber("128"), 128);
    EXPECT_EQ(parseNumber("2147483647"), 2147483647);
}

TEST(Number, Hex)
{
    EXPECT_EQ(parseNumber("$0"), 0);
    EXPECT_EQ(parseNumber("$A"), 10);
    EXPECT_EQ(parseNumber("$7F"), 127);
    EXPECT_EQ(parseNumber("$FF"), 255);
    EXPECT_EQ(parseNumber("$5D"), 93); // thesis: ldc 93=$5d
}

TEST(Number, Binary)
{
    EXPECT_EQ(parseNumber("%0"), 0);
    EXPECT_EQ(parseNumber("%1"), 1);
    EXPECT_EQ(parseNumber("%1101"), 13);
    EXPECT_EQ(parseNumber("%0100"), 4);
    EXPECT_EQ(parseNumber("%0001"), 1);
}

TEST(Number, PowerOfTwo)
{
    EXPECT_EQ(parseNumber("^0"), 1);
    EXPECT_EQ(parseNumber("^3"), 8);
    EXPECT_EQ(parseNumber("^12"), 4096);
    EXPECT_EQ(parseNumber("^30"), 1 << 30);
}

TEST(Number, Sums)
{
    // The thesis decode ROM uses sums like 128+3+^8 (= 387).
    EXPECT_EQ(parseNumber("128+3+^8"), 387);
    EXPECT_EQ(parseNumber("0+^5+^7+^8"), 32 + 128 + 256);
    EXPECT_EQ(parseNumber("16+^5+^7+^8"), 16 + 32 + 128 + 256);
    EXPECT_EQ(parseNumber("%10+$10+2"), 2 + 16 + 2);
}

TEST(Number, SignedSizes)
{
    EXPECT_EQ(parseSignedNumber("-133"), -133);
    EXPECT_EQ(parseSignedNumber("-4"), -4);
    EXPECT_EQ(parseSignedNumber("4096"), 4096);
}

TEST(Number, MalformedThrows)
{
    EXPECT_THROW(parseNumber(""), SpecError);
    EXPECT_THROW(parseNumber("abc"), SpecError);
    EXPECT_THROW(parseNumber("12a"), SpecError);
    EXPECT_THROW(parseNumber("$"), SpecError);
    EXPECT_THROW(parseNumber("$G"), SpecError);
    EXPECT_THROW(parseNumber("%"), SpecError);
    EXPECT_THROW(parseNumber("%12"), SpecError);
    EXPECT_THROW(parseNumber("^"), SpecError);
    EXPECT_THROW(parseNumber("^x"), SpecError);
    EXPECT_THROW(parseNumber("1+"), SpecError);
    EXPECT_THROW(parseNumber("+1"), SpecError);
    EXPECT_THROW(parseNumber("1++2"), SpecError);
    // Lower-case hex digits are not in the thesis grammar.
    EXPECT_THROW(parseNumber("$ff"), SpecError);
}

TEST(Number, IsNumberPredicate)
{
    EXPECT_TRUE(isNumber("42"));
    EXPECT_TRUE(isNumber("%101+^2"));
    EXPECT_FALSE(isNumber("count"));
    EXPECT_FALSE(isNumber(""));
}

TEST(Number, NumericTextPredicate)
{
    // Mirrors the thesis numeric() used to gate optimization.
    EXPECT_TRUE(isNumericText("4"));
    EXPECT_TRUE(isNumericText("$7F"));
    EXPECT_TRUE(isNumericText("%110"));
    EXPECT_FALSE(isNumericText("left"));
    EXPECT_FALSE(isNumericText(""));
    EXPECT_FALSE(isNumericText("4,rom"));
}

struct WrapCase
{
    const char *text;
    int32_t expect;
};

class NumberWrap : public ::testing::TestWithParam<WrapCase>
{};

TEST_P(NumberWrap, WrapsLikeInt32)
{
    EXPECT_EQ(parseNumber(GetParam().text), GetParam().expect);
}

INSTANTIATE_TEST_SUITE_P(
    Overflow, NumberWrap,
    ::testing::Values(
        WrapCase{"^31", INT32_MIN},                   // 2^31 wraps
        WrapCase{"^31+^31", 0},                       // wraps to zero
        WrapCase{"2147483647+1", INT32_MIN},
        WrapCase{"^30+^30", INT32_MIN}));

} // namespace
} // namespace asim
