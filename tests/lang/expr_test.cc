/** @file Unit tests for expression parsing and Figure 3.1 semantics. */

#include <gtest/gtest.h>

#include "analysis/resolve.hh"
#include "lang/expr.hh"
#include "support/logging.hh"

namespace asim {
namespace {

TEST(Expr, SingleConst)
{
    Expr e = parseExpr("3048");
    ASSERT_EQ(e.terms.size(), 1u);
    EXPECT_EQ(e.terms[0].kind, Term::Kind::Const);
    EXPECT_EQ(e.terms[0].value, 3048);
    EXPECT_EQ(e.terms[0].width, -1);
    EXPECT_TRUE(e.isConstant());
}

TEST(Expr, ConstWithWidth)
{
    Expr e = parseExpr("5.3");
    ASSERT_EQ(e.terms.size(), 1u);
    EXPECT_EQ(e.terms[0].value, 5);
    EXPECT_EQ(e.terms[0].width, 3);
}

TEST(Expr, BitString)
{
    Expr e = parseExpr("#0101");
    ASSERT_EQ(e.terms.size(), 1u);
    EXPECT_EQ(e.terms[0].kind, Term::Kind::BitString);
    EXPECT_EQ(e.terms[0].value, 5);
    EXPECT_EQ(e.terms[0].width, 4);
}

TEST(Expr, WholeRef)
{
    Expr e = parseExpr("count");
    ASSERT_EQ(e.terms.size(), 1u);
    EXPECT_EQ(e.terms[0].kind, Term::Kind::Ref);
    EXPECT_EQ(e.terms[0].ref, "count");
    EXPECT_EQ(e.terms[0].from, -1);
    EXPECT_FALSE(e.isConstant());
}

TEST(Expr, SingleBit)
{
    Expr e = parseExpr("rom.8");
    ASSERT_EQ(e.terms.size(), 1u);
    EXPECT_EQ(e.terms[0].from, 8);
    EXPECT_EQ(e.terms[0].to, -1);
}

TEST(Expr, BitRange)
{
    Expr e = parseExpr("mem.3.4");
    ASSERT_EQ(e.terms.size(), 1u);
    EXPECT_EQ(e.terms[0].from, 3);
    EXPECT_EQ(e.terms[0].to, 4);
}

TEST(Expr, Concatenation)
{
    Expr e = parseExpr("mem.3.4,#01,count.1");
    ASSERT_EQ(e.terms.size(), 3u);
    EXPECT_EQ(e.terms[0].ref, "mem");
    EXPECT_EQ(e.terms[1].kind, Term::Kind::BitString);
    EXPECT_EQ(e.terms[2].ref, "count");
}

TEST(Expr, NumberFormsInsideTerms)
{
    Expr e = parseExpr("%110,rom.8");
    ASSERT_EQ(e.terms.size(), 2u);
    EXPECT_EQ(e.terms[0].value, 6);
    EXPECT_EQ(e.terms[1].ref, "rom");

    Expr sum = parseExpr("128+3+^8");
    EXPECT_EQ(sum.terms[0].value, 387);
}

TEST(Expr, MalformedThrows)
{
    EXPECT_THROW(parseExpr(""), SpecError);
    EXPECT_THROW(parseExpr(","), SpecError);
    EXPECT_THROW(parseExpr("a,"), SpecError);
    EXPECT_THROW(parseExpr("mem.4.3"), SpecError);   // to < from
    EXPECT_THROW(parseExpr("mem.1.2.3"), SpecError); // too many dots
    EXPECT_THROW(parseExpr("#"), SpecError);
    EXPECT_THROW(parseExpr("#012"), SpecError);      // not binary
    EXPECT_THROW(parseExpr("mem..3"), SpecError);
    EXPECT_THROW(parseExpr("*x"), SpecError);
}

TEST(Expr, RoundTripToString)
{
    for (const char *text :
         {"mem.3.4,#01,count.1", "5.3", "rom", "a.1,b.2.4,#000"}) {
        Expr e = parseExpr(text);
        EXPECT_EQ(exprToString(e), text);
    }
}

TEST(Expr, ReferencedNames)
{
    Expr e = parseExpr("a.1,#01,b.2.3,c");
    auto names = referencedNames(e);
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
    EXPECT_EQ(names[2], "c");
}

/** Resolution-level checks of the Figure 3.1 concatenation layout:
 *  `mem.3.4,#01,count.1` = [mem bits 3..4][0][1][count bit 1]. */
class Fig31 : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // A tiny spec defining mem and count so resolution works.
        rs_ = resolveText("# fig 3.1 harness\n"
                          "mem count .\n"
                          "M mem 0 0 0 16\n"
                          "M count 0 0 0 1\n"
                          ".\n");
    }
    ResolvedSpec rs_;
};

TEST_F(Fig31, ConstantPartAndLayout)
{
    ResolvedExpr r = resolveExpr(parseExpr("mem.3.4,#01,count.1"), rs_);
    // #01 sits at bit positions 1..2 with value 01 -> constant 2.
    EXPECT_EQ(r.constTotal, 2);
    EXPECT_EQ(r.width, 5);
    ASSERT_EQ(r.terms.size(), 2u);
    // mem.3.4: mask bits 3..4, shifted to positions 3..4 (shift 0).
    EXPECT_EQ(r.terms[0].mask, 0b11000);
    EXPECT_EQ(r.terms[0].shift, 0);
    // count.1: mask bit 1, shifted down to position 0.
    EXPECT_EQ(r.terms[1].mask, 0b10);
    EXPECT_EQ(r.terms[1].shift, -1);
}

TEST_F(Fig31, TooManyBits)
{
    // 31 bits + 1 more overflows.
    EXPECT_THROW(resolveExpr(parseExpr("mem.0.15,mem.0.15"), rs_),
                 SpecError);
    EXPECT_THROW(resolveExpr(parseExpr("count.1,mem"), rs_),
                 SpecError);
    // Exactly 31 is fine.
    ResolvedExpr ok =
        resolveExpr(parseExpr("mem.0.15,mem.0.14"), rs_);
    EXPECT_EQ(ok.width, 31);
    // Faithful thesis quirk: a whole reference *sets* the bit counter
    // to 31 instead of adding, so `mem,count` is accepted (the second
    // term shifts off the top) — exactly what the 1986 expr() did.
    EXPECT_NO_THROW(resolveExpr(parseExpr("mem,count"), rs_));
}

TEST_F(Fig31, UnknownComponent)
{
    EXPECT_THROW(resolveExpr(parseExpr("nosuch.1"), rs_), SpecError);
}

TEST_F(Fig31, UnboundedConstConsumesRest)
{
    // `1,count.1,count.2`: constant 1 shifted past two 1-bit fields.
    ResolvedExpr r =
        resolveExpr(parseExpr("1,count.1,count.2"), rs_);
    EXPECT_EQ(r.constTotal, 4);
    EXPECT_EQ(r.width, 31);
}

} // namespace
} // namespace asim
