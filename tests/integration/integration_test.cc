/** @file
 * Whole-pipeline integration tests: specification text -> parse ->
 * resolve -> all three execution systems -> identical observable
 * behavior, on the thesis workloads.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/fault.hh"
#include "lang/parser.hh"
#include "analysis/resolve.hh"
#include "lang/parser.hh"
#include "codegen/native.hh"
#include "machines/stack_machine.hh"
#include "machines/tiny_computer.hh"
#include "sim/engine.hh"

namespace asim {
namespace {

TEST(Integration, SieveOfEratosthenesFullRun)
{
    // The thesis' flagship demo: the stack machine runs the sieve and
    // the primes come out of the memory-mapped output port.
    ResolvedSpec rs = resolveText(
        stackMachineSpec(sieveProgram(kBenchSieveSize), 60000));
    VectorIo io;
    EngineConfig cfg;
    cfg.io = &io;
    auto e = makeVm(rs, cfg);
    e->run(60000);
    EXPECT_EQ(io.outputsAt(1), sieveReference(kBenchSieveSize));
    EXPECT_EQ(e->value("state"), kStackHaltState);
}

TEST(Integration, ThesisCycleBudgetProducesPartialPrimes)
{
    // Figure 5.1 runs exactly 5545 cycles; at that budget the machine
    // must still be mid-sieve (busy), having printed some primes.
    ResolvedSpec rs = resolveText(stackMachineSpec(
        sieveProgram(kBenchSieveSize), kThesisSieveCycles));
    VectorIo io;
    EngineConfig cfg;
    cfg.io = &io;
    auto e = makeVm(rs, cfg);
    e->run(kThesisSieveCycles + 1); // thesis inclusive loop
    auto primes = io.outputsAt(1);
    EXPECT_GE(primes.size(), 1u);
    EXPECT_NE(e->value("state"), kStackHaltState)
        << "machine should still be busy at the thesis budget";
    auto ref = sieveReference(kBenchSieveSize);
    for (size_t i = 0; i < primes.size(); ++i)
        EXPECT_EQ(primes[i], ref[i]);
}

TEST(Integration, TraceMatchesBetweenEnginesOnTracedStackMachine)
{
    ResolvedSpec rs = resolveText(
        stackMachineSpec(sieveProgram(5), 2000, /*traced=*/true));
    auto run = [&](bool vm) {
        std::ostringstream os;
        StreamTrace trace(os);
        VectorIo io;
        EngineConfig cfg;
        cfg.trace = &trace;
        cfg.io = &io;
        auto e = vm ? makeVm(rs, cfg) : makeInterpreter(rs, cfg);
        e->run(2000);
        return os.str();
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(Integration, FaultInjectionBreaksTheSieve)
{
    // Stuck-at-0 on the ALU result bus bit 1: the sieve must produce
    // wrong output (the fault is observable), demonstrating the
    // thesis' §2.3.2 fault-injection workflow end to end.
    Spec healthy = parseSpec(stackMachineSpec(sieveProgram(10), 30000));
    Spec faulty =
        injectStuckBit(healthy, "alures", 1, StuckMode::StuckAt0);

    VectorIo io;
    EngineConfig cfg;
    cfg.io = &io;
    auto e = makeVm(resolve(faulty), cfg);
    e->run(30000);
    EXPECT_NE(io.outputsAt(1), sieveReference(10));
}

TEST(Integration, NativePipelineOnTheSieve)
{
    if (!hostCompilerAvailable())
        GTEST_SKIP() << "no host compiler";
    ResolvedSpec rs =
        resolveText(stackMachineSpec(sieveProgram(10), 20000));
    CodegenOptions opts;
    opts.emitTrace = false; // stdout carries only the primes
    NativeResult res = compileAndRun(rs, 20000, opts);
    // Expected stdout: one line per prime plus the count.
    std::string expect;
    for (int32_t v : sieveReference(10))
        expect += std::to_string(v) + "\n";
    EXPECT_EQ(res.stdoutText, expect);
}

TEST(Integration, TinyComputerInterpAndVmAgree)
{
    int result = 0;
    auto img = tinyMulProgram(11, 9, result);
    ResolvedSpec rs = resolveText(tinyComputerSpec(img, 4000));
    auto a = makeInterpreter(rs);
    auto b = makeVm(rs);
    a->run(4000);
    b->run(4000);
    EXPECT_TRUE(a->state() == b->state());
    EXPECT_EQ(a->memCell("memory", result), 99);
}

TEST(Integration, StatsOnSieveRun)
{
    ResolvedSpec rs =
        resolveText(stackMachineSpec(sieveProgram(10), 20000));
    auto e = makeVm(rs);
    e->run(20000);
    const SimStats &st = e->stats();
    EXPECT_EQ(st.cycles, 20000u);
    // The RAM and the program ROM dominate memory traffic.
    uint64_t ramTotal = 0, progReads = 0;
    for (const auto &m : st.mems) {
        if (m.name == "ram")
            ramTotal = m.total();
        if (m.name == "prog")
            progReads = m.reads;
    }
    EXPECT_GT(ramTotal, 1000u);
    EXPECT_EQ(progReads, 20000u); // the ROM reads every cycle
}

} // namespace
} // namespace asim
