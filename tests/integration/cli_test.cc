/** @file
 * End-to-end tests of the command-line tools (asim-run, asim2c),
 * driven through the shell exactly as a user would.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#ifndef ASIM_RUN_BIN
#define ASIM_RUN_BIN "asim-run"
#endif
#ifndef ASIM2C_BIN
#define ASIM2C_BIN "asim2c"
#endif
#ifndef ASIM_SPECS_DIR
#define ASIM_SPECS_DIR "specs"
#endif

namespace {

struct CmdResult
{
    int status = -1;
    std::string out;
};

CmdResult
run(const std::string &cmd)
{
    CmdResult r;
    std::string full = cmd + " 2>&1";
    FILE *p = popen(full.c_str(), "r");
    if (!p)
        return r;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), p)) > 0)
        r.out.append(buf, n);
    r.status = pclose(p);
    return r;
}

std::string
counterSpec()
{
    return std::string(ASIM_SPECS_DIR) + "/counter.asim";
}

TEST(Cli, AsimRunTracesCounter)
{
    CmdResult r = run(std::string(ASIM_RUN_BIN) + " --cycles=5 " +
                      counterSpec());
    EXPECT_EQ(r.status, 0) << r.out;
    EXPECT_NE(r.out.find("Cycle   0 count= 0"),
              std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("Cycle   4 count= 4"),
              std::string::npos);
    EXPECT_NE(r.out.find("components read"), std::string::npos);
}

TEST(Cli, AsimRunEnginesAgree)
{
    auto strip = [](std::string s) {
        // Drop the stderr banner lines (component count).
        std::string out;
        std::istringstream is(s);
        std::string line;
        while (std::getline(is, line)) {
            if (line.rfind("Cycle", 0) == 0)
                out += line + "\n";
        }
        return out;
    };
    CmdResult vm = run(std::string(ASIM_RUN_BIN) +
                       " --engine=vm --cycles=8 " + counterSpec());
    CmdResult in = run(std::string(ASIM_RUN_BIN) +
                       " --engine=interp --cycles=8 " + counterSpec());
    EXPECT_EQ(strip(vm.out), strip(in.out));
    EXPECT_FALSE(strip(vm.out).empty());
}

TEST(Cli, AsimRunStats)
{
    CmdResult r = run(std::string(ASIM_RUN_BIN) +
                      " --no-trace --stats --cycles=10 " +
                      counterSpec());
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.out.find("cycles: 10"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("memory count: reads=0 writes=10"),
              std::string::npos);
}

TEST(Cli, AsimRunScriptedIo)
{
    std::string script = "/tmp/asim_cli_echo_script.txt";
    {
        std::ofstream f(script);
        f << "# five inputs\n10 20 30 40 50\n";
    }
    CmdResult r = run(std::string(ASIM_RUN_BIN) +
                      " --io=script:" + script + " --no-trace " +
                      std::string(ASIM_SPECS_DIR) + "/echo.asim");
    EXPECT_EQ(r.status, 0) << r.out;
    EXPECT_NE(r.out.find("10\n20\n30\n40\n50\n"), std::string::npos)
        << r.out;
    std::remove(script.c_str());
}

TEST(Cli, AsimRunRejectsMissingScript)
{
    CmdResult r = run(std::string(ASIM_RUN_BIN) +
                      " --io=script:/nonexistent.txt " +
                      counterSpec());
    EXPECT_NE(r.status, 0);
    EXPECT_NE(r.out.find("cannot read"), std::string::npos) << r.out;
}

TEST(Cli, AsimRunBatchHomogeneous)
{
    CmdResult r = run(std::string(ASIM_RUN_BIN) +
                      " --batch=3 --threads=2 --stats " +
                      std::string(ASIM_SPECS_DIR) + "/gcd.asim");
    EXPECT_EQ(r.status, 0) << r.out;
    EXPECT_NE(r.out.find("3 instances, 2 threads"),
              std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("gcd.asim#2"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("total cycles: 123"), std::string::npos)
        << r.out; // 3 x 41 inclusive iterations
}

TEST(Cli, AsimRunBatchManifestWithJson)
{
    CmdResult r = run(std::string(ASIM_RUN_BIN) +
                      " --batch-manifest=" +
                      std::string(ASIM_SPECS_DIR) +
                      "/batch.manifest --json=-");
    EXPECT_EQ(r.status, 0) << r.out;
    EXPECT_NE(r.out.find("\"faults\": 0"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("multiplier.asim"), std::string::npos)
        << r.out;
    EXPECT_NE(r.out.find("\"watchpoint_hit\": true"),
              std::string::npos)
        << r.out; // the gcd watch=a:21 line
}

TEST(Cli, AsimRunBatchNative)
{
    if (std::system("g++ --version > /dev/null 2>&1") != 0)
        GTEST_SKIP() << "no host compiler";
    // Batch-eligible since the persistent --serve protocol: one
    // compiled binary, one child per instance (DESIGN.md §5/§7).
    CmdResult r = run(std::string(ASIM_RUN_BIN) +
                      " --batch=2 --engine=native --cycles=10 " +
                      counterSpec());
    EXPECT_EQ(r.status, 0) << r.out;
    EXPECT_NE(r.out.find("2 instances"), std::string::npos) << r.out;
}

TEST(Cli, AsimRunBatchExitsTwoOnFault)
{
    // gcd.asim run on 5 cycles with a watch that can never hit is
    // fine; instead drive a faulting spec through the batch path.
    std::string spec = "/tmp/asim_cli_batch_fault.asim";
    {
        std::ofstream f(spec);
        f << "# walks off a 4-cell memory\n"
             "count* next .\n"
             "A next 4 count 1\n"
             "M count 0 next 1 1\n"
             "M mem count count 1 4\n"
             ".\n";
    }
    CmdResult r = run(std::string(ASIM_RUN_BIN) +
                      " --batch=2 --cycles=20 " + spec);
    EXPECT_EQ(WEXITSTATUS(r.status), 2) << r.out;
    EXPECT_NE(r.out.find("FAULT"), std::string::npos) << r.out;
    std::remove(spec.c_str());
}

TEST(Cli, AsimRunListsEngines)
{
    CmdResult r = run(std::string(ASIM_RUN_BIN) + " --list-engines");
    EXPECT_EQ(r.status, 0);
    for (const char *name : {"interp", "vm", "native", "symbolic"})
        EXPECT_NE(r.out.find(name), std::string::npos) << r.out;
}

TEST(Cli, AsimRunDumpBytecode)
{
    // Golden smoke over the compile-only path: the dump names the
    // dispatch strategy, every phase stream, and the pass counters.
    CmdResult r = run(std::string(ASIM_RUN_BIN) +
                      " --dump-bytecode " + counterSpec());
    EXPECT_EQ(r.status, 0) << r.out;
    EXPECT_NE(r.out.find("dispatch: "), std::string::npos) << r.out;
    for (const char *section :
         {"comb:", "latch:", "update:", "cycle (fused):"})
        EXPECT_NE(r.out.find(section), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("opt: linked="), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("fused="), std::string::npos) << r.out;
    // The counter's only bounds check is statically discharged.
    EXPECT_NE(r.out.find("checksElided=1"), std::string::npos)
        << r.out;
}

TEST(Cli, AsimRunRejectsUnknownEngine)
{
    CmdResult r = run(std::string(ASIM_RUN_BIN) +
                      " --engine=bogus --cycles=5 " + counterSpec());
    EXPECT_NE(r.status, 0);
    EXPECT_NE(r.out.find("registered engines"), std::string::npos)
        << r.out;
}

TEST(Cli, AsimRunNativeEngine)
{
    if (std::system("g++ --version > /dev/null 2>&1") != 0)
        GTEST_SKIP() << "no host compiler";
    CmdResult r = run(std::string(ASIM_RUN_BIN) +
                      " --engine=native --cycles=5 " + counterSpec());
    EXPECT_EQ(r.status, 0) << r.out;
    EXPECT_NE(r.out.find("Cycle   4 count= 4"), std::string::npos)
        << r.out;
}

TEST(Cli, AsimRunRejectsBadSpec)
{
    CmdResult r = run(std::string(ASIM_RUN_BIN) + " /dev/null");
    EXPECT_NE(r.status, 0);
    EXPECT_NE(r.out.find("Error"), std::string::npos);
}

TEST(Cli, Asim2cGeneratesPascal)
{
    std::string out = "/tmp/asim2c_test_simulator.p";
    CmdResult r = run(std::string(ASIM2C_BIN) + " --lang=pascal -o " +
                      out + " " + counterSpec());
    EXPECT_EQ(r.status, 0) << r.out;
    EXPECT_NE(r.out.find("Sorting components."), std::string::npos);
    EXPECT_NE(r.out.find("Generating code."), std::string::npos);
    std::ifstream f(out);
    std::stringstream ss;
    ss << f.rdbuf();
    EXPECT_NE(ss.str().find("program simulator (input, output);"),
              std::string::npos);
    std::remove(out.c_str());
}

TEST(Cli, Asim2cGeneratedCppCompilesAndRuns)
{
    if (std::system("g++ --version > /dev/null 2>&1") != 0)
        GTEST_SKIP() << "no host compiler";
    std::string cc = "/tmp/asim2c_test_simulator.cc";
    std::string bin = "/tmp/asim2c_test_simulator";
    CmdResult gen = run(std::string(ASIM2C_BIN) + " --lang=cpp -o " +
                        cc + " " + counterSpec());
    ASSERT_EQ(gen.status, 0) << gen.out;
    CmdResult compile =
        run("g++ -O2 -fwrapv -o " + bin + " " + cc);
    ASSERT_EQ(compile.status, 0) << compile.out;
    CmdResult sim = run(bin + std::string(" 3"));
    EXPECT_EQ(sim.status, 0);
    EXPECT_NE(sim.out.find("Cycle   0 count= 0"),
              std::string::npos)
        << sim.out;
    EXPECT_NE(sim.out.find("Cycle   3 count= 3"),
              std::string::npos);
    std::remove(cc.c_str());
    std::remove(bin.c_str());
}

TEST(Cli, Asim2cRejectsUnknownLanguage)
{
    CmdResult r = run(std::string(ASIM2C_BIN) + " --lang=cobol " +
                      counterSpec());
    EXPECT_NE(r.status, 0);
}

} // namespace
