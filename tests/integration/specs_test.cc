/** @file
 * Tests over the on-disk example specifications in specs/ — the
 * file-loading path plus behavioral checks of each machine.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "analysis/resolve.hh"
#include "lang/parser.hh"
#include "sim/engine.hh"
#include "support/logging.hh"

#ifndef ASIM_SPECS_DIR
#define ASIM_SPECS_DIR "specs"
#endif

namespace asim {
namespace {

std::string
specPath(const std::string &name)
{
    return std::string(ASIM_SPECS_DIR) + "/" + name;
}

TEST(SpecFiles, MissingFileThrows)
{
    EXPECT_THROW(parseSpecFile(specPath("nope.asim")), SpecError);
}

TEST(SpecFiles, CounterFromDisk)
{
    Diagnostics diag;
    ResolvedSpec rs =
        resolve(parseSpecFile(specPath("counter.asim"), &diag), &diag);
    EXPECT_TRUE(diag.clean());
    auto e = makeVm(rs);
    e->run(20);
    EXPECT_EQ(e->value("count") & 0xf, 4); // 20 mod 16
}

TEST(SpecFiles, TrafficLightFromDisk)
{
    ResolvedSpec rs =
        resolve(parseSpecFile(specPath("traffic_light.asim")));
    auto e = makeVm(rs);
    e->run(32);
    int32_t phase = e->value("phase");
    EXPECT_GE(phase, 0);
    EXPECT_LE(phase, 2);
}

TEST(SpecFiles, Fig43MemoryTracesReadsAndWrites)
{
    ResolvedSpec rs =
        resolve(parseSpecFile(specPath("fig43_memory.asim")));
    std::ostringstream os;
    StreamTrace trace(os);
    EngineConfig cfg;
    cfg.trace = &trace;
    auto e = makeVm(rs, cfg);
    e->run(8);
    // Even counter values write (op 13), odd ones read (op 12).
    EXPECT_NE(os.str().find("Write to memory at"), std::string::npos);
    EXPECT_NE(os.str().find("Read from memory at"), std::string::npos);
    // Initialized contents observable through the read path.
    EXPECT_EQ(e->memCell("memory", 3), 78);
}

TEST(SpecFiles, EchoRoundTripsInput)
{
    ResolvedSpec rs = resolve(parseSpecFile(specPath("echo.asim")));
    VectorIo io;
    for (int32_t v : {10, 20, 30, 40, 50})
        io.pushInput(v);
    EngineConfig cfg;
    cfg.io = &io;
    auto e = makeVm(rs, cfg);
    e->run(rs.spec.thesisIterations());
    EXPECT_EQ(io.outputsAt(1),
              (std::vector<int32_t>{10, 20, 30, 40, 50}));
}

TEST(SpecFiles, DualCounterModulesFromDisk)
{
    ResolvedSpec rs =
        resolve(parseSpecFile(specPath("dual_counter.asim")));
    auto e = makeVm(rs);
    e->run(rs.spec.thesisIterations()); // 21 cycles
    EXPECT_EQ(e->value("fast"), 21 & 7);
    EXPECT_EQ(e->value("slow"), 21 & 31);
}

TEST(SpecFiles, GcdConvergesFromDisk)
{
    ResolvedSpec rs = resolve(parseSpecFile(specPath("gcd.asim")));
    auto e = makeVm(rs);
    e->run(rs.spec.thesisIterations());
    EXPECT_EQ(e->value("a"), 21); // gcd(1071, 462)
    EXPECT_EQ(e->value("b"), 21);
    // Converged: one more cycle changes nothing.
    e->step();
    EXPECT_EQ(e->value("a"), 21);
}

TEST(SpecFiles, MultiplierShiftAddFromDisk)
{
    ResolvedSpec rs =
        resolve(parseSpecFile(specPath("multiplier.asim")));
    auto e = makeVm(rs);
    e->run(rs.spec.thesisIterations());
    EXPECT_EQ(e->value("acc"), 143); // 13 * 11
    EXPECT_EQ(e->value("mplier"), 0);
}

TEST(SpecFiles, AllSpecsRunOnAllEngines)
{
    for (const char *name : {"counter.asim", "traffic_light.asim",
                             "fig43_memory.asim", "echo.asim",
                             "dual_counter.asim", "gcd.asim",
                             "multiplier.asim"}) {
        ResolvedSpec rs = resolve(parseSpecFile(specPath(name)));
        for (int engine = 0; engine < 2; ++engine) {
            VectorIo io;
            for (int i = 0; i < 64; ++i)
                io.pushInput(i);
            EngineConfig cfg;
            cfg.io = &io;
            auto e = engine ? makeVm(rs, cfg)
                            : makeInterpreter(rs, cfg);
            EXPECT_NO_THROW(e->run(rs.spec.thesisIterations()))
                << name << " engine " << engine;
        }
    }
}

} // namespace
} // namespace asim
