/** @file Structural tests for the C++ backend output. */

#include <gtest/gtest.h>

#include "analysis/resolve.hh"
#include "codegen/codegen.hh"
#include "machines/counter.hh"
#include "machines/stack_machine.hh"
#include "support/text.hh"

namespace asim {
namespace {

TEST(CppBackend, CounterShape)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 20));
    std::string code = generateCpp(rs);
    EXPECT_TRUE(contains(code, "static int32_t ljbnext = 0;"));
    EXPECT_TRUE(contains(code, "static int32_t ljbcount[1];"));
    EXPECT_TRUE(contains(code, "land(int32_t a, int32_t b)"));
    EXPECT_TRUE(contains(code, "long long cycles = 20;"));
    EXPECT_TRUE(
        contains(code, "ljbnext = land(tempcount, 15) + 1;"));
    EXPECT_TRUE(contains(code, "SIM_NS"));
}

TEST(CppBackend, TraceLineMatchesEngineFormat)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 20));
    std::string code = generateCpp(rs);
    EXPECT_TRUE(
        contains(code, "std::printf(\"Cycle %3lld\", cyclecount);"));
    EXPECT_TRUE(contains(
        code, "std::printf(\" count= %d\", (int)tempcount);"));
}

TEST(CppBackend, NoTraceOption)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 20));
    CodegenOptions opts;
    opts.emitTrace = false;
    std::string code = generateCpp(rs, opts);
    EXPECT_FALSE(contains(code, "Cycle %3lld"));
}

TEST(CppBackend, SelectorSwitchWithBoundsDefault)
{
    ResolvedSpec rs = resolveText("# sel\n"
                                  "s m .\n"
                                  "S s m 1 2\n"
                                  "M m 0 0 0 4\n"
                                  ".\n");
    std::string code = generateCpp(rs);
    EXPECT_TRUE(contains(code, "switch (tempm) {"));
    EXPECT_TRUE(contains(code, "case 0: ljbs = 1; break;"));
    EXPECT_TRUE(contains(code, "selfail(\"s\""));
}

TEST(CppBackend, MemoryBoundsChecks)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 20));
    std::string code = generateCpp(rs);
    EXPECT_TRUE(contains(code, "adrfail(\"count\""));
}

TEST(CppBackend, DynamicMemoryOperation)
{
    ResolvedSpec rs = resolveText("# dyn\n"
                                  "m op .\n"
                                  "A op 2 0 0\n"
                                  "M m 0 op op.0.3 4\n"
                                  ".\n");
    std::string code = generateCpp(rs);
    EXPECT_TRUE(contains(code, "switch (land(opnm, 3)) {"));
    EXPECT_TRUE(contains(code, "sinput(adrm)"));
    EXPECT_TRUE(contains(code, "soutput(adrm, tempm);"));
    EXPECT_TRUE(contains(code, "if (land(opnm, 5) == 5)"));
    EXPECT_TRUE(contains(code, "if (land(opnm, 9) == 8)"));
}

TEST(CppBackend, FixedShiftSemanticsOption)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 20));
    CodegenOptions thesis;
    CodegenOptions fixed;
    fixed.aluSemantics = AluSemantics::Fixed;
    std::string a = generateCpp(rs, thesis);
    std::string b = generateCpp(rs, fixed);
    EXPECT_NE(a, b);
    EXPECT_TRUE(contains(b, "value = land(left, mask);"));
}

TEST(CppBackend, StackMachineGeneratesLargeSwitchTables)
{
    ResolvedSpec rs =
        resolveText(stackMachineSpec(sieveProgram(5), 1000));
    std::string code = generateCpp(rs);
    // The 144-state microcode ROM becomes one big switch.
    EXPECT_GE(countOccurrences(code, "case "), 144);
    EXPECT_TRUE(contains(code, "static int32_t ljbram[256];"));
}

TEST(CppBackend, ServeLoopShape)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 20));
    CodegenOptions opts;
    opts.emitServeLoop = true;
    opts.emitStateDump = true;
    std::string code = generateCpp(rs, opts);
    // The command dispatcher and its framing.
    EXPECT_TRUE(contains(code, "--serve"));
    for (const char *cmd :
         {"\"RUN \"", "\"INPUT \"", "\"RESET\"", "\"STATE\"",
          "\"SNAPSHOT\"", "\"RESTORE \"", "\"STATS\"", "\"QUIT\""})
        EXPECT_TRUE(contains(code, cmd)) << cmd;
    EXPECT_TRUE(contains(code, "respond(\"OK\""));
    EXPECT_TRUE(contains(code, "resetstate();"));
    EXPECT_TRUE(contains(code, "dumpstate();"));
    // The checkpoint pair: SNAPSHOT extends the dump with the input
    // cursor; RESTORE parses the same line formats back with every
    // index bounds-checked.
    EXPECT_TRUE(contains(code, "STATE_I"));
    EXPECT_TRUE(contains(code, "restorestate(blob, &newcyc)"));
    EXPECT_TRUE(contains(code, "\"STATE_CYC \""));
    EXPECT_TRUE(contains(code, "bad restore payload"));
    // Simulation output is buffered per command in serve builds...
    EXPECT_TRUE(
        contains(code, "xprintf(\"Cycle %3lld\", cyclecount);"));
    // ...while the one-shot entry point survives unchanged.
    EXPECT_TRUE(contains(code, "cycles = std::atoll(argv[1]);"));
}

TEST(CppBackend, OneShotBuildsCarryNoServePlumbing)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 20));
    std::string code = generateCpp(rs);
    EXPECT_FALSE(contains(code, "--serve"));
    EXPECT_FALSE(contains(code, "xprintf"));
    EXPECT_FALSE(contains(code, "servemode"));
    EXPECT_FALSE(contains(code, "restorestate"));
}

TEST(CppBackend, ServeStateDumpRidesTheResponseBuffer)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 20));
    CodegenOptions opts;
    opts.emitServeLoop = true;
    opts.emitStateDump = true;
    std::string code = generateCpp(rs, opts);
    EXPECT_TRUE(contains(code, "dpf(\"STATE_V "));
    EXPECT_TRUE(contains(code, "dpf(\"STATE_END\\n\")"));
    // One-shot state dumps still print to stderr.
    CodegenOptions oneShot;
    oneShot.emitStateDump = true;
    std::string plain = generateCpp(rs, oneShot);
    EXPECT_TRUE(
        contains(plain, "std::fprintf(stderr, \"STATE_V "));
}

TEST(CppBackend, GeneratedCodeIsDeterministic)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 20));
    EXPECT_EQ(generateCpp(rs), generateCpp(rs));
    EXPECT_EQ(generatePascal(rs), generatePascal(rs));
}

} // namespace
} // namespace asim
