/** @file
 * End-to-end tests of the native pipeline: generated C++ is compiled
 * with the host compiler, executed, and its output compared
 * byte-for-byte with the interpreter and the VM — the three execution
 * systems of the reproduction.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/resolve.hh"
#include "codegen/native.hh"
#include "machines/counter.hh"
#include "machines/stack_machine.hh"
#include "machines/synthetic.hh"
#include "machines/tiny_computer.hh"
#include "sim/engine.hh"

namespace asim {
namespace {

/** Run an engine with trace+I/O interleaved on one stream, exactly
 *  like the generated program's stdout. */
std::string
engineOutput(const ResolvedSpec &rs, uint64_t cycles, bool vm,
             bool traced = true, const std::string &inputsText = "")
{
    std::ostringstream os;
    std::istringstream is(inputsText);
    StreamTrace trace(os);
    StreamIo io(is, os);
    EngineConfig cfg;
    cfg.trace = traced ? &trace : nullptr;
    cfg.io = &io;
    auto e = vm ? makeVm(rs, cfg) : makeInterpreter(rs, cfg);
    e->run(cycles);
    return os.str();
}

class Native : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!hostCompilerAvailable())
            GTEST_SKIP() << "no host compiler";
    }
};

TEST_F(Native, CounterMatchesEngines)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 40));
    // The generated program runs cycles+1 iterations (thesis loop).
    NativeResult res = compileAndRun(rs, 40);
    std::string expect = engineOutput(rs, 41, false);
    EXPECT_EQ(res.stdoutText, expect);
    EXPECT_EQ(engineOutput(rs, 41, true), expect);
    EXPECT_GT(res.compileSeconds, 0.0);
    EXPECT_GE(res.simSeconds, 0.0);
}

TEST_F(Native, TinyComputerMatchesEngines)
{
    int result = 0;
    auto img = tinyModProgram(23, 7, result);
    ResolvedSpec rs = resolveText(tinyComputerSpec(img, 300));
    NativeResult res = compileAndRun(rs, 300);
    EXPECT_EQ(res.stdoutText, engineOutput(rs, 301, false));
}

TEST_F(Native, StackMachineSievePrintsPrimes)
{
    ResolvedSpec rs =
        resolveText(stackMachineSpec(sieveProgram(8), 8000));
    // Trace-free build: stdout carries only the memory-mapped output.
    CodegenOptions opts;
    opts.emitTrace = false;
    NativeResult res = compileAndRun(rs, 8000, opts);
    std::string expect = engineOutput(rs, 8001, true, false);
    EXPECT_EQ(res.stdoutText, expect);
    // And the primes are in there.
    EXPECT_NE(res.stdoutText.find("3\n5\n7\n11\n13\n17\n19\n"),
              std::string::npos);
}

TEST_F(Native, SyntheticSpecsMatch)
{
    // A couple of random machines through the whole pipeline.
    for (uint32_t seed : {3u, 11u}) {
        SyntheticOptions opts;
        opts.seed = seed;
        opts.withIo = false; // stdin-free comparison
        ResolvedSpec rs = resolve(generateSynthetic(opts));
        NativeResult res = compileAndRun(rs, 50);
        EXPECT_EQ(res.stdoutText, engineOutput(rs, 51, false))
            << "seed " << seed;
    }
}

TEST_F(Native, ReportsPipelinePhases)
{
    ResolvedSpec rs = resolveText(counterSpec(4, 10));
    NativeResult res = compileAndRun(rs, 10);
    EXPECT_GT(res.generateSeconds, 0.0);
    EXPECT_GT(res.compileSeconds, 0.0);
    EXPECT_GT(res.runSeconds, 0.0);
    EXPECT_EQ(res.exitCode, 0);
    EXPECT_FALSE(res.generatedPath.empty());
}

TEST_F(Native, BuildCacheSharesIdenticalCompiles)
{
    ResolvedSpec rs = resolveText(counterSpec(5, 60));
    uint64_t hash = specIdentityHash(rs);
    CodegenOptions opts;
    opts.emitServeLoop = true;
    opts.emitStateDump = true;

    uint64_t before = nativeCompileCount();
    auto a = compileSpecCached(rs, opts, hash);
    auto b = compileSpecCached(rs, opts, hash);
    EXPECT_EQ(a.get(), b.get())
        << "identical (spec, options) must share one build";
    EXPECT_EQ(nativeCompileCount(), before + 1);

    // Any option that changes the emitted program is a new key.
    CodegenOptions traced = opts;
    traced.emitTrace = !opts.emitTrace;
    auto c = compileSpecCached(rs, traced, hash);
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(nativeCompileCount(), before + 2);

    // A different spec is a new key even with equal options.
    ResolvedSpec other = resolveText(counterSpec(6, 60));
    auto d = compileSpecCached(other, opts, specIdentityHash(other));
    EXPECT_NE(a.get(), d.get());
    EXPECT_EQ(nativeCompileCount(), before + 3);

    // The strong ring keeps recent builds alive across the gap
    // between jobs: dropping every handle and asking again must
    // still hit.
    a.reset();
    b.reset();
    auto e = compileSpecCached(rs, opts, hash);
    EXPECT_EQ(nativeCompileCount(), before + 3) << "cache miss";
}

} // namespace
} // namespace asim
