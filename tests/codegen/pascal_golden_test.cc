/** @file
 * Golden tests for the Pascal backend against the thesis figures:
 * Figure 4.1 (ALU codegen, generic and constant-function optimized),
 * Figure 4.2 (selector codegen), Figure 4.3 (memory codegen), and the
 * Appendix E program shape.
 */

#include <gtest/gtest.h>

#include "analysis/resolve.hh"
#include "codegen/codegen.hh"
#include "support/text.hh"

namespace asim {
namespace {

/** Figure 4.1 harness: the two ALUs from the figure. */
std::string
fig41()
{
    ResolvedSpec rs = resolveText("# fig 4.1\n"
                                  "alu add compute left .\n"
                                  "A alu compute left 3048\n"
                                  "A add 4 left 3048\n"
                                  "M compute 0 0 0 16\n"
                                  "M left 0 0 0 16\n"
                                  ".\n");
    return generatePascal(rs);
}

TEST(PascalGolden, Fig41GenericAluCallsDologic)
{
    // "alu := dologic(compute, left, 3048);"
    EXPECT_TRUE(contains(
        fig41(), "ljbalu := dologic(tempcompute, templeft, 3048);"));
}

TEST(PascalGolden, Fig41ConstantFunctionInlined)
{
    // "add := left + 3048;"
    EXPECT_TRUE(contains(fig41(), "ljbadd := templeft + 3048;"));
    EXPECT_FALSE(contains(fig41(), "ljbadd := dologic"));
}

TEST(PascalGolden, Fig41NoOptimizeFallsBackToDologic)
{
    ResolvedSpec rs = resolveText("# fig 4.1 unopt\n"
                                  "add left .\n"
                                  "A add 4 left 3048\n"
                                  "M left 0 0 0 16\n"
                                  ".\n");
    CodegenOptions opts;
    opts.inlineConstAlu = false;
    EXPECT_TRUE(contains(generatePascal(rs, opts),
                         "ljbadd := dologic(4, templeft, 3048);"));
}

TEST(PascalGolden, Fig42SelectorCase)
{
    // Figure 4.2: a case statement over the selector index.
    ResolvedSpec rs =
        resolveText("# fig 4.2\n"
                    "selector index value0 value1 value2 value3 .\n"
                    "S selector index.0.1 value0 value1 value2 value3\n"
                    "M index 0 0 0 4\n"
                    "M value0 0 0 0 4\n"
                    "M value1 0 0 0 4\n"
                    "M value2 0 0 0 4\n"
                    "M value3 0 0 0 4\n"
                    ".\n");
    std::string code = generatePascal(rs);
    EXPECT_TRUE(contains(code, "case land(tempindex, 3) of"));
    EXPECT_TRUE(contains(code, "0 : ljbselector := tempvalue0;"));
    EXPECT_TRUE(contains(code, "3 : ljbselector := tempvalue3"));
}

/** Figure 4.3 harness: the initialized memory from the figure. */
std::string
fig43()
{
    ResolvedSpec rs =
        resolveText("# fig 4.3\n"
                    "memory address data operation .\n"
                    "A address 2 0 0\n"
                    "A data 2 0 0\n"
                    "A operation 2 0 0\n"
                    "M memory address data operation.0.3 -4 12 34 56 78\n"
                    ".\n");
    return generatePascal(rs);
}

TEST(PascalGolden, Fig43InitializationProcedure)
{
    std::string code = fig43();
    EXPECT_TRUE(contains(code, "ljbmemory[0] := 12;"));
    EXPECT_TRUE(contains(code, "ljbmemory[1] := 34;"));
    EXPECT_TRUE(contains(code, "ljbmemory[2] := 56;"));
    EXPECT_TRUE(contains(code, "ljbmemory[3] := 78;"));
}

TEST(PascalGolden, Fig43OperationCase)
{
    std::string code = fig43();
    EXPECT_TRUE(contains(code, "case land(opnmemory, 3) of"));
    EXPECT_TRUE(
        contains(code, "tempmemory := ljbmemory[adrmemory];"));
    EXPECT_TRUE(contains(code, "tempmemory := sinput(adrmemory);"));
    EXPECT_TRUE(contains(code, "soutput(adrmemory, tempmemory);"));
}

TEST(PascalGolden, Fig43TraceStatements)
{
    std::string code = fig43();
    // operation.0.3 is 4 bits wide: both trace checks are emitted.
    EXPECT_TRUE(contains(code, "if land(opnmemory, 5) = 5 then"));
    EXPECT_TRUE(contains(code, "if land(opnmemory, 9) = 8 then"));
    EXPECT_TRUE(contains(code, "writeln('Write to memory at ', "
                               "adrmemory:1, ': ', tempmemory:1);"));
    EXPECT_TRUE(contains(code, "writeln('Read from memory at ', "
                               "adrmemory:1, ': ', tempmemory:1);"));
}

TEST(PascalGolden, NarrowOperationElidesTraceCode)
{
    // A 2-bit operation cannot carry the trace bits: no trace code.
    ResolvedSpec rs = resolveText("# narrow\n"
                                  "m op .\n"
                                  "A op 2 0 0\n"
                                  "M m 0 op op.0.1 4\n"
                                  ".\n");
    std::string code = generatePascal(rs);
    EXPECT_FALSE(contains(code, "Write to m"));
    EXPECT_FALSE(contains(code, "Read from m"));
}

TEST(PascalGolden, AppendixEProgramShape)
{
    ResolvedSpec rs = resolveText("# Itty Bitty Stack Machine\n"
                                  "= 5545\n"
                                  "count* next .\n"
                                  "A next 4 count.0.3 1\n"
                                  "M count 0 next 1 1\n"
                                  ".\n");
    std::string code = generatePascal(rs);
    // Appendix E structural landmarks, in order of appearance.
    const char *landmarks[] = {
        "program simulator (input, output);",
        "{# Itty Bitty Stack Machine}",
        "function land (a, b: integer): integer;",
        "procedure initvalues;",
        "function dologic (funct, left, right: integer): integer;",
        "const mask = 2147483647;",
        "function sinput (address: integer): integer;",
        "procedure soutput (address, data: integer);",
        "cycles := 5545;",
        "while cyclecount <= cycles do begin",
        "write('Cycle ', cyclecount:3);",
        "cyclecount := cyclecount + 1;",
        "Continue to cycle (0 to quit)",
        "end.",
    };
    size_t at = 0;
    for (const char *m : landmarks) {
        size_t next = code.find(m, at);
        ASSERT_NE(next, std::string::npos) << "missing: " << m;
        at = next;
    }
}

TEST(PascalGolden, DataLatchQuirkToggle)
{
    ResolvedSpec rs = resolveText("# quirk\n"
                                  "next count .\n"
                                  "A next 4 count 1\n"
                                  "M count 0 next 1 1\n"
                                  ".\n");
    // Appendix E latches a never-read data<name> variable.
    EXPECT_TRUE(
        contains(generatePascal(rs), "datacount := tempcount;"));
    CodegenOptions opts;
    opts.emitDataLatchQuirk = false;
    EXPECT_FALSE(contains(generatePascal(rs, opts), "datacount"));
}

TEST(PascalGolden, ConstantMemorySpecialized)
{
    ResolvedSpec rs = resolveText("# const op\n"
                                  "next count .\n"
                                  "A next 4 count 1\n"
                                  "M count 0 next 1 1\n"
                                  ".\n");
    std::string code = generatePascal(rs);
    // Operation 1 is constant: direct write, no case dispatch.
    EXPECT_TRUE(contains(code, "tempcount := ljbnext;"));
    EXPECT_TRUE(contains(code, "ljbcount[adrcount] := tempcount;"));
    EXPECT_FALSE(contains(code, "case land(opncount, 3) of"));
}

TEST(PascalGolden, ExpressionRendering)
{
    // The `land(x, mask) div/mul 2^k` shapes from Appendix E.
    ResolvedSpec rs = resolveText("# exprs\n"
                                  "a rom .\n"
                                  "A a 4 rom.8 %110,rom.2.3\n"
                                  "M rom 0 0 0 16\n"
                                  ".\n");
    std::string code = generatePascal(rs);
    EXPECT_TRUE(contains(code, "land(temprom, 256) div 256"));
    EXPECT_TRUE(contains(code, "land(temprom, 12) div 4 + 24"));
}

TEST(PascalGolden, TraceLineUsesLatchForMemories)
{
    ResolvedSpec rs = resolveText("# traceline\n"
                                  "count* next* .\n"
                                  "A next 4 count 1\n"
                                  "M count 0 next 1 1\n"
                                  ".\n");
    std::string code = generatePascal(rs);
    EXPECT_TRUE(contains(code, "write(' count= ', tempcount:1);"));
    EXPECT_TRUE(contains(code, "write(' next= ', ljbnext:1);"));
}

} // namespace
} // namespace asim
