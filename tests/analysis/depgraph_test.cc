/** @file Unit tests for dependency ordering (thesis orderit). */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/depgraph.hh"
#include "lang/parser.hh"
#include "support/logging.hh"

namespace asim {
namespace {

std::vector<std::string>
orderNames(const std::string &text)
{
    Spec s = parseSpec(text);
    std::vector<std::string> names;
    for (int i : orderCombinational(s.comps))
        names.push_back(s.comps[i].name);
    return names;
}

TEST(Depgraph, ChainSortsInDependencyOrder)
{
    // c depends on b depends on a, declared in reverse.
    auto names = orderNames("# chain\n"
                            "a b c .\n"
                            "A c 4 b 1\n"
                            "A b 4 a 1\n"
                            "A a 4 1 1\n"
                            ".\n");
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
    EXPECT_EQ(names[2], "c");
}

TEST(Depgraph, IndependentKeepDeclarationOrder)
{
    auto names = orderNames("# indep\n"
                            "x y z .\n"
                            "A x 4 1 1\n"
                            "A y 4 2 2\n"
                            "A z 4 3 3\n"
                            ".\n");
    EXPECT_EQ(names, (std::vector<std::string>{"x", "y", "z"}));
}

TEST(Depgraph, MemoriesImposeNoOrder)
{
    // Both ALUs read memory latches: no edges between them.
    auto names = orderNames("# mems\n"
                            "a b m .\n"
                            "A a 4 m 1\n"
                            "A b 4 m a\n"
                            "M m 0 b 1 1\n"
                            ".\n");
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a"); // b reads a -> a first
    EXPECT_EQ(names[1], "b");
}

TEST(Depgraph, SelectorCasesCreateDependencies)
{
    auto names = orderNames("# selcases\n"
                            "s a m .\n"
                            "S s m.0 1 a\n"
                            "A a 4 1 1\n"
                            "M m 0 s 1 1\n"
                            ".\n");
    EXPECT_EQ(names, (std::vector<std::string>{"a", "s"}));
}

TEST(Depgraph, CircularDependencyThrows)
{
    try {
        orderNames("# circle\n"
                   "a b .\n"
                   "A a 4 b 1\n"
                   "A b 4 a 1\n"
                   ".\n");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("Circular dependency"), std::string::npos);
        EXPECT_NE(msg.find("a"), std::string::npos);
        EXPECT_NE(msg.find("b"), std::string::npos);
    }
}

TEST(Depgraph, SelfReferenceIsCircular)
{
    EXPECT_THROW(orderNames("# self\n"
                            "a .\n"
                            "A a 4 a 1\n"
                            ".\n"),
                 SpecError);
}

TEST(Depgraph, SelfReferenceThroughMemoryIsFine)
{
    // A memory feeding itself through its latch is the normal
    // register pattern, not a combinational cycle.
    auto names = orderNames("# reg\n"
                            "inc count .\n"
                            "A inc 4 count 1\n"
                            "M count 0 inc 1 1\n"
                            ".\n");
    EXPECT_EQ(names, (std::vector<std::string>{"inc"}));
}

TEST(Depgraph, DependsOnHelper)
{
    Spec s = parseSpec("# dep\n"
                       "a b .\n"
                       "A a 4 b.3 1\n"
                       "A b 4 1 1\n"
                       ".\n");
    EXPECT_TRUE(dependsOn(s.comps[0], s.comps[1]));
    EXPECT_FALSE(dependsOn(s.comps[1], s.comps[0]));
}

TEST(Depgraph, LargeDiamond)
{
    // root -> n1..n40 -> sink; valid topological order required.
    std::string text = "# diamond\nroot sink";
    for (int i = 0; i < 40; ++i)
        text += " n" + std::to_string(i);
    text += " .\n";
    text += "A sink 4 n0 n1\n";
    for (int i = 0; i < 40; ++i)
        text += "A n" + std::to_string(i) + " 4 root 1\n";
    text += "A root 4 1 1\n.\n";

    auto names = orderNames(text);
    ASSERT_EQ(names.size(), 42u);
    EXPECT_EQ(names.front(), "root");
    // Every ni must appear after root; sink after its inputs n0, n1.
    auto pos = [&](const std::string &n) {
        return std::find(names.begin(), names.end(), n) - names.begin();
    };
    for (int i = 0; i < 40; ++i)
        EXPECT_GT(pos("n" + std::to_string(i)), pos("root"));
    EXPECT_GT(pos("sink"), pos("n0"));
    EXPECT_GT(pos("sink"), pos("n1"));
}

} // namespace
} // namespace asim
