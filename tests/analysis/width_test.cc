/** @file Unit tests for bit-width analysis (thesis numberofbits). */

#include <gtest/gtest.h>

#include "analysis/width.hh"

namespace asim {
namespace {

int
w(const char *text)
{
    return widthOf(parseExpr(text));
}

TEST(Width, Constants)
{
    EXPECT_EQ(w("5"), 31);     // unbounded constant
    EXPECT_EQ(w("5.3"), 3);    // explicit width
    EXPECT_EQ(w("#0101"), 4);  // bit string
    EXPECT_EQ(w("#0"), 1);
}

TEST(Width, Refs)
{
    EXPECT_EQ(w("rom"), 31);
    EXPECT_EQ(w("rom.8"), 1);
    EXPECT_EQ(w("rom.3.4"), 2);
    EXPECT_EQ(w("rom.0.11"), 12);
}

TEST(Width, Concatenation)
{
    EXPECT_EQ(w("mem.3.4,#01,count.1"), 5);
    EXPECT_EQ(w("a.0.7,b.0.7"), 16);
    EXPECT_EQ(w("a,b.0.1"), 31); // whole ref saturates
}

TEST(Width, CapsAt31)
{
    EXPECT_EQ(w("a.0.20,b.0.20"), 31);
}

TEST(Width, GatesTraceBits)
{
    // The thesis emits write-trace code when numberofbits >= 3 and
    // read-trace code when >= 4.
    EXPECT_LT(w("addr.12,rom.8"), 3); // 2 bits: no trace possible
    EXPECT_GE(w("addr.0.2"), 3);      // could carry bit 2
    EXPECT_GE(w("op.0.3"), 4);        // could carry bit 3
}

} // namespace
} // namespace asim
