/** @file Unit tests for semantic resolution. */

#include <gtest/gtest.h>

#include "analysis/resolve.hh"
#include "lang/parser.hh"

namespace asim {
namespace {

TEST(Resolve, SlotsAndIndexes)
{
    ResolvedSpec rs = resolveText("# slots\n"
                                  "a s m n .\n"
                                  "A a 4 1 1\n"
                                  "S s a.0 1 2\n"
                                  "M m 0 a 1 4\n"
                                  "M n 0 s 1 8\n"
                                  ".\n");
    EXPECT_EQ(rs.numVarSlots, 2);
    EXPECT_EQ(rs.varSlot("a"), 0);
    EXPECT_EQ(rs.varSlot("s"), 1);
    EXPECT_EQ(rs.varSlot("m"), -1);
    EXPECT_EQ(rs.memIndex("m"), 0);
    EXPECT_EQ(rs.memIndex("n"), 1);
    EXPECT_EQ(rs.memIndex("a"), -1);
    ASSERT_EQ(rs.mems.size(), 2u);
    EXPECT_EQ(rs.mems[0].size, 4);
    EXPECT_EQ(rs.mems[1].size, 8);
}

TEST(Resolve, ConstantFunctDetected)
{
    ResolvedSpec rs = resolveText("# funct\n"
                                  "add dyn m .\n"
                                  "A add 4 m 1\n"
                                  "A dyn m.0.2 m 1\n"
                                  "M m 0 add 1 2\n"
                                  ".\n");
    const CombComp *add = nullptr, *dyn = nullptr;
    for (const auto &c : rs.comb) {
        if (c.name == "add")
            add = &c;
        if (c.name == "dyn")
            dyn = &c;
    }
    ASSERT_NE(add, nullptr);
    ASSERT_NE(dyn, nullptr);
    EXPECT_TRUE(add->functConst);
    EXPECT_EQ(add->functValue, 4);
    EXPECT_FALSE(dyn->functConst);
}

TEST(Resolve, ConstFunctOutOfRangeThrows)
{
    EXPECT_THROW(resolveText("# bad funct\n"
                             "a .\n"
                             "A a 99 1 1\n"
                             ".\n"),
                 SpecError);
}

TEST(Resolve, DuplicateDefinitionThrows)
{
    EXPECT_THROW(resolveText("# dup\n"
                             "a .\n"
                             "A a 4 1 1\n"
                             "A a 4 2 2\n"
                             ".\n"),
                 SpecError);
}

TEST(Resolve, UnknownReferenceThrows)
{
    EXPECT_THROW(resolveText("# unknown\n"
                             "a .\n"
                             "A a 4 ghost 1\n"
                             ".\n"),
                 SpecError);
}

TEST(Resolve, CheckdclWarnings)
{
    Diagnostics diag;
    resolveText("# warn\n"
                "declared defined .\n"
                "A defined 4 1 1\n"
                "A extra 4 1 1\n"
                ".\n",
                &diag);
    ASSERT_EQ(diag.warnings().size(), 2u);
    EXPECT_NE(diag.warnings()[0].find("declared but not defined"),
              std::string::npos);
    EXPECT_NE(diag.warnings()[1].find("defined but not declared"),
              std::string::npos);
}

TEST(Resolve, InitCountMismatchThrows)
{
    // parser enforces exact counts via the -N form; resolve re-checks.
    Spec s = parseSpec("# init\n"
                       "m .\n"
                       "M m 0 0 0 -2 7 9\n"
                       ".\n");
    s.comps[0].init.push_back(11); // corrupt: 3 values, size 2
    EXPECT_THROW(resolve(s), SpecError);
}

TEST(Resolve, TraceListInDeclOrder)
{
    ResolvedSpec rs = resolveText("# trace\n"
                                  "z* a* m* .\n"
                                  "A a 4 1 1\n"
                                  "A z 4 a 1\n"
                                  "M m 0 a 1 1\n"
                                  ".\n");
    ASSERT_EQ(rs.traceList.size(), 3u);
    EXPECT_EQ(rs.traceList[0].name, "z");
    EXPECT_EQ(rs.traceList[1].name, "a");
    EXPECT_EQ(rs.traceList[2].name, "m");
    EXPECT_TRUE(rs.traceList[2].isMem);
}

TEST(Resolve, TracedButUndefinedSkippedWithWarning)
{
    Diagnostics diag;
    ResolvedSpec rs = resolveText("# ghost trace\n"
                                  "ghost* a .\n"
                                  "A a 4 1 1\n"
                                  ".\n",
                                  &diag);
    EXPECT_TRUE(rs.traceList.empty());
    ASSERT_GE(diag.warnings().size(), 1u);
}

TEST(Resolve, TraceModesFromConstantOps)
{
    ResolvedSpec rs =
        resolveText("# tmodes\n"
                    "w r plain m .\n"
                    "A plain 4 1 1\n"
                    "M w 0 plain 5 1\n"   // write + trace-writes
                    "M r 0 plain 8 1\n"   // read + trace-reads
                    "M m 0 plain 1 1\n"   // plain write
                    ".\n");
    EXPECT_EQ(rs.mems[0].traceWrites, MemDesc::TraceMode::Always);
    EXPECT_EQ(rs.mems[0].traceReads, MemDesc::TraceMode::Never);
    EXPECT_EQ(rs.mems[1].traceWrites, MemDesc::TraceMode::Never);
    EXPECT_EQ(rs.mems[1].traceReads, MemDesc::TraceMode::Always);
    EXPECT_EQ(rs.mems[2].traceWrites, MemDesc::TraceMode::Never);
    EXPECT_EQ(rs.mems[2].traceReads, MemDesc::TraceMode::Never);
}

TEST(Resolve, TraceModesFromDynamicOps)
{
    ResolvedSpec rs =
        resolveText("# dyn tmodes\n"
                    "narrow wide m .\n"
                    "A narrow 4 1 1\n"
                    "A wide 4 1 1\n"
                    "M narrow2 0 narrow narrow.0.1 1\n" // 2 bits
                    "M wide2 0 wide wide.0.3 1\n"       // 4 bits
                    "M m 0 narrow 1 1\n"
                    ".\n");
    EXPECT_EQ(rs.mems[0].traceWrites, MemDesc::TraceMode::Never);
    EXPECT_EQ(rs.mems[0].traceReads, MemDesc::TraceMode::Never);
    EXPECT_EQ(rs.mems[1].traceWrites, MemDesc::TraceMode::Runtime);
    EXPECT_EQ(rs.mems[1].traceReads, MemDesc::TraceMode::Runtime);
}

TEST(Resolve, CombSortedOrderExposed)
{
    ResolvedSpec rs = resolveText("# order\n"
                                  "a b .\n"
                                  "A a 4 b 1\n"
                                  "A b 4 1 1\n"
                                  ".\n");
    ASSERT_EQ(rs.comb.size(), 2u);
    EXPECT_EQ(rs.comb[0].name, "b");
    EXPECT_EQ(rs.comb[1].name, "a");
}

} // namespace
} // namespace asim
