/** @file Unit tests for stuck-at fault injection (thesis §2.3.2). */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/fault.hh"
#include "lang/parser.hh"
#include "analysis/resolve.hh"
#include "lang/parser.hh"
#include "machines/counter.hh"
#include "sim/engine.hh"

namespace asim {
namespace {

TEST(Fault, StructureOfInjectedSpec)
{
    Spec s = parseSpec(counterSpec(4, 20));
    Spec f = injectStuckBit(s, "next", 0, StuckMode::StuckAt0);
    EXPECT_NE(f.find("next"), nullptr);
    EXPECT_NE(f.find("nextFAULTED"), nullptr);
    EXPECT_EQ(f.find("next")->kind, CompKind::Alu);
    // The splice is an AND with the all-ones-except-bit-0 mask.
    EXPECT_EQ(f.find("next")->funct.terms[0].value, 8);
}

TEST(Fault, UnknownComponentThrows)
{
    Spec s = parseSpec(counterSpec(4, 20));
    EXPECT_THROW(injectStuckBit(s, "ghost", 0, StuckMode::StuckAt0),
                 SpecError);
    EXPECT_THROW(injectStuckBit(s, "next", 31, StuckMode::StuckAt0),
                 SpecError);
    EXPECT_THROW(injectStuckBit(s, "next", -1, StuckMode::StuckAt0),
                 SpecError);
}

TEST(Fault, StuckAt0ForcesEvenCounter)
{
    // Counter with bit 0 of `next` stuck at 0: count can only ever be
    // even (in fact it sticks at 0: 0+1=1 -> masked to 0).
    Spec f = injectStuckBit(parseSpec(counterSpec(4, 20)), "next", 0,
                            StuckMode::StuckAt0);
    auto engine = makeVm(resolve(f));
    engine->run(16);
    EXPECT_EQ(engine->value("count"), 0);
}

TEST(Fault, StuckAt1OnCounterBit)
{
    // Bit 1 of next stuck at 1: sequence forced through odd patterns.
    Spec f = injectStuckBit(parseSpec(counterSpec(4, 20)), "next", 1,
                            StuckMode::StuckAt1);
    auto engine = makeVm(resolve(f));
    for (int i = 0; i < 8; ++i) {
        engine->step();
        EXPECT_EQ(engine->value("count") & 2, 2)
            << "cycle " << i << ": bit 1 must be stuck high";
    }
}

TEST(Fault, HealthyCounterDiffersFromFaulty)
{
    // The fault must be observable: run both machines and compare.
    Spec healthy = parseSpec(counterSpec(4, 20));
    Spec faulty =
        injectStuckBit(healthy, "next", 2, StuckMode::StuckAt0);

    auto a = makeVm(resolve(healthy));
    auto b = makeVm(resolve(faulty));
    bool diverged = false;
    for (int i = 0; i < 16 && !diverged; ++i) {
        a->step();
        b->step();
        diverged = a->value("count") != b->value("count");
    }
    EXPECT_TRUE(diverged);
}

TEST(Fault, MemoryVictimKeepsTiming)
{
    // Faulting a memory splices a combinational ALU after the latch;
    // the observed value still changes one cycle after the write.
    Spec s = parseSpec(counterSpec(4, 20));
    Spec f = injectStuckBit(s, "count", 3, StuckMode::StuckAt1);
    auto engine = makeVm(resolve(f));
    engine->step();
    // count (observed) = latch | 8.
    EXPECT_EQ(engine->value("count") & 8, 8);
}

TEST(Fault, DoubleInjectionOnSameNameThrows)
{
    Spec s = parseSpec(counterSpec(4, 20));
    Spec once = injectStuckBit(s, "next", 0, StuckMode::StuckAt0);
    EXPECT_THROW(injectStuckBit(once, "next", 1, StuckMode::StuckAt0),
                 SpecError);
}

// ---------------------------------------------------------------------
// The injector registry (mirrors the engine registry idiom)
// ---------------------------------------------------------------------

/** Run `fn` and return the SpecError text it throws (must throw). */
template <typename Fn>
std::string
specErrorText(Fn &&fn)
{
    try {
        fn();
    } catch (const SpecError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected SpecError";
    return "";
}

TEST(FaultRegistry, BuiltinPolicies)
{
    auto &reg = FaultInjectorRegistry::global();
    EXPECT_EQ(reg.list(),
              (std::vector<std::string>{"set0", "set1", "toggle"}));
    EXPECT_TRUE(reg.contains("toggle"));
    EXPECT_FALSE(reg.contains("bogus"));

    // apply(): one bit perturbed under each policy.
    EXPECT_EQ(reg.get("set0").apply(0b1111, 1), 0b1101);
    EXPECT_EQ(reg.get("set1").apply(0b0000, 2), 0b0100);
    EXPECT_EQ(reg.get("toggle").apply(0b0110, 1), 0b0100);
    EXPECT_EQ(reg.get("toggle").apply(0b0110, 3), 0b1110);
}

TEST(FaultRegistry, UnknownInjectorNamesTheRegistered)
{
    EXPECT_EQ(specErrorText([] {
                  FaultInjectorRegistry::global().get("bogus");
              }),
              "Error. Unknown fault injector <bogus>; registered "
              "injectors: set0, set1, toggle.");
}

TEST(FaultRegistry, ToggleSpliceFlipsOneOutputBit)
{
    // toggle on bit 2 of `next`: the counter sees (count+1) ^ 4.
    Spec f = FaultInjectorRegistry::global().get("toggle").splice(
        parseSpec(counterSpec(6, 100)), "next", 2);
    auto engine = makeVm(resolve(f));
    int32_t healthy = 0;
    for (int i = 0; i < 12; ++i) {
        healthy = (healthy + 1) ^ 4;
        engine->step();
        ASSERT_EQ(engine->value("count"), healthy) << "cycle " << i;
    }
}

// ---------------------------------------------------------------------
// The shared fault grammar: component[cell]:bit:mode[@cycle]
// ---------------------------------------------------------------------

TEST(FaultGrammar, ParsesSpliceForm)
{
    FaultSite s = parseFaultSite("next:4:set1");
    EXPECT_EQ(s.component, "next");
    EXPECT_EQ(s.cell, -1);
    EXPECT_EQ(s.bit, 4);
    EXPECT_EQ(s.mode, "set1");
    EXPECT_FALSE(s.atCycle);
    EXPECT_EQ(formatFaultSite(s), "next:4:set1");
}

TEST(FaultGrammar, ParsesTransientCellForm)
{
    FaultSite s = parseFaultSite("mem[13]:7:toggle@250");
    EXPECT_EQ(s.component, "mem");
    EXPECT_EQ(s.cell, 13);
    EXPECT_EQ(s.bit, 7);
    EXPECT_EQ(s.mode, "toggle");
    EXPECT_TRUE(s.atCycle);
    EXPECT_EQ(s.cycle, 250u);
    EXPECT_EQ(formatFaultSite(s), "mem[13]:7:toggle@250");
}

TEST(FaultGrammar, RoundTripsThroughFormat)
{
    for (const char *text :
         {"a:0:set0", "b[0]:30:toggle@1", "long_name[999]:15:set1@0",
          "count:12:toggle@64"}) {
        FaultSite s = parseFaultSite(text);
        EXPECT_EQ(formatFaultSite(s), text);
    }
}

TEST(FaultGrammar, RejectsMalformedText)
{
    EXPECT_EQ(specErrorText([] { parseFaultSite("count"); }),
              "Error. Bad fault <count>: missing :bit:mode "
              "(want component[cell]:bit:mode[@cycle]).");
    EXPECT_EQ(specErrorText([] { parseFaultSite("count:x:set0"); }),
              "Error. Bad fault <count:x:set0>: bit must be an "
              "integer (want component[cell]:bit:mode[@cycle]).");
    EXPECT_EQ(specErrorText([] { parseFaultSite("count:1:"); }),
              "Error. Bad fault <count:1:>: missing mode "
              "(want component[cell]:bit:mode[@cycle]).");
    EXPECT_EQ(
        specErrorText([] { parseFaultSite("count:1:set0@next"); }),
        "Error. Bad fault <count:1:set0@next>: cycle must be a "
        "non-negative integer "
        "(want component[cell]:bit:mode[@cycle]).");
    EXPECT_EQ(specErrorText([] { parseFaultSite("count:31:set0"); }),
              "Error. Fault bit 31 out of range 0..30.");
    // A cell fault with no @cycle cannot be a spec splice.
    EXPECT_EQ(specErrorText([] { parseFaultSite("mem[3]:1:set0"); }),
              "Error. Cell faults need @cycle (a spec splice can "
              "only observe component <mem>'s output).");
}

TEST(FaultGrammar, ValidatesAgainstResolvedSpec)
{
    // gcd-like machine: `count` memory of size 1, `next` ALU.
    ResolvedSpec rs = resolve(parseSpec(counterSpec(6, 100)));

    validateFaultSite(rs, parseFaultSite("count:3:toggle@5"));
    validateFaultSite(rs, parseFaultSite("count[0]:3:set1@5"));
    validateFaultSite(rs, parseFaultSite("next:3:set0"));

    EXPECT_EQ(specErrorText([&] {
                  validateFaultSite(
                      rs, parseFaultSite("ghost:1:set0"));
              }),
              "Error. Component <ghost> not found.");
    EXPECT_EQ(specErrorText([&] {
                  validateFaultSite(
                      rs, parseFaultSite("count:1:bogus@2"));
              }),
              "Error. Unknown fault injector <bogus>; registered "
              "injectors: set0, set1, toggle.");
    EXPECT_EQ(specErrorText([&] {
                  validateFaultSite(
                      rs, parseFaultSite("next[0]:1:set0@2"));
              }),
              "Error. Component <next> is not a memory; cell faults "
              "need a memory.");
    EXPECT_EQ(specErrorText([&] {
                  validateFaultSite(
                      rs, parseFaultSite("count[5]:1:set0@2"));
              }),
              "Error. Fault cell 5 out of range for memory <count> "
              "(size 1).");
    EXPECT_EQ(specErrorText([&] {
                  validateFaultSite(
                      rs, parseFaultSite("next:1:set0@2"));
              }),
              "Error. Component <next> holds no state; @cycle faults "
              "need a memory (omit @cycle to splice a stuck bit).");
}

} // namespace
} // namespace asim
