/** @file Unit tests for stuck-at fault injection (thesis §2.3.2). */

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/fault.hh"
#include "lang/parser.hh"
#include "analysis/resolve.hh"
#include "lang/parser.hh"
#include "machines/counter.hh"
#include "sim/engine.hh"

namespace asim {
namespace {

TEST(Fault, StructureOfInjectedSpec)
{
    Spec s = parseSpec(counterSpec(4, 20));
    Spec f = injectStuckBit(s, "next", 0, StuckMode::StuckAt0);
    EXPECT_NE(f.find("next"), nullptr);
    EXPECT_NE(f.find("nextFAULTED"), nullptr);
    EXPECT_EQ(f.find("next")->kind, CompKind::Alu);
    // The splice is an AND with the all-ones-except-bit-0 mask.
    EXPECT_EQ(f.find("next")->funct.terms[0].value, 8);
}

TEST(Fault, UnknownComponentThrows)
{
    Spec s = parseSpec(counterSpec(4, 20));
    EXPECT_THROW(injectStuckBit(s, "ghost", 0, StuckMode::StuckAt0),
                 SpecError);
    EXPECT_THROW(injectStuckBit(s, "next", 31, StuckMode::StuckAt0),
                 SpecError);
    EXPECT_THROW(injectStuckBit(s, "next", -1, StuckMode::StuckAt0),
                 SpecError);
}

TEST(Fault, StuckAt0ForcesEvenCounter)
{
    // Counter with bit 0 of `next` stuck at 0: count can only ever be
    // even (in fact it sticks at 0: 0+1=1 -> masked to 0).
    Spec f = injectStuckBit(parseSpec(counterSpec(4, 20)), "next", 0,
                            StuckMode::StuckAt0);
    auto engine = makeVm(resolve(f));
    engine->run(16);
    EXPECT_EQ(engine->value("count"), 0);
}

TEST(Fault, StuckAt1OnCounterBit)
{
    // Bit 1 of next stuck at 1: sequence forced through odd patterns.
    Spec f = injectStuckBit(parseSpec(counterSpec(4, 20)), "next", 1,
                            StuckMode::StuckAt1);
    auto engine = makeVm(resolve(f));
    for (int i = 0; i < 8; ++i) {
        engine->step();
        EXPECT_EQ(engine->value("count") & 2, 2)
            << "cycle " << i << ": bit 1 must be stuck high";
    }
}

TEST(Fault, HealthyCounterDiffersFromFaulty)
{
    // The fault must be observable: run both machines and compare.
    Spec healthy = parseSpec(counterSpec(4, 20));
    Spec faulty =
        injectStuckBit(healthy, "next", 2, StuckMode::StuckAt0);

    auto a = makeVm(resolve(healthy));
    auto b = makeVm(resolve(faulty));
    bool diverged = false;
    for (int i = 0; i < 16 && !diverged; ++i) {
        a->step();
        b->step();
        diverged = a->value("count") != b->value("count");
    }
    EXPECT_TRUE(diverged);
}

TEST(Fault, MemoryVictimKeepsTiming)
{
    // Faulting a memory splices a combinational ALU after the latch;
    // the observed value still changes one cycle after the write.
    Spec s = parseSpec(counterSpec(4, 20));
    Spec f = injectStuckBit(s, "count", 3, StuckMode::StuckAt1);
    auto engine = makeVm(resolve(f));
    engine->step();
    // count (observed) = latch | 8.
    EXPECT_EQ(engine->value("count") & 8, 8);
}

TEST(Fault, DoubleInjectionOnSameNameThrows)
{
    Spec s = parseSpec(counterSpec(4, 20));
    Spec once = injectStuckBit(s, "next", 0, StuckMode::StuckAt0);
    EXPECT_THROW(injectStuckBit(once, "next", 1, StuckMode::StuckAt0),
                 SpecError);
}

} // namespace
} // namespace asim
