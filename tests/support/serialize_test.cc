/** @file
 * Binary serialization primitives: writer/reader round trips, the
 * bounds-checking discipline hostile input relies on, and the hash
 * functions' reference vectors.
 */

#include <gtest/gtest.h>

#include "support/serialize.hh"

namespace asim {
namespace {

TEST(ByteWriterTest, LittleEndianLayout)
{
    ByteWriter w;
    w.u8(0xab);
    w.u32(0x01020304u);
    w.u64(0x1122334455667788ull);
    w.i32(-1);
    const std::string &d = w.data();
    ASSERT_EQ(d.size(), 1u + 4 + 8 + 4);
    EXPECT_EQ(static_cast<uint8_t>(d[0]), 0xab);
    EXPECT_EQ(static_cast<uint8_t>(d[1]), 0x04); // LSB first
    EXPECT_EQ(static_cast<uint8_t>(d[4]), 0x01);
    EXPECT_EQ(static_cast<uint8_t>(d[5]), 0x88);
    EXPECT_EQ(static_cast<uint8_t>(d[13]), 0xff);
}

TEST(ByteReaderTest, RoundTripsEveryType)
{
    ByteWriter w;
    w.u8(7);
    w.u32(123456789u);
    w.u64(0xdeadbeefcafef00dull);
    w.i32(-42);
    w.str("hello");
    w.str("");

    ByteReader r(w.data(), "test");
    EXPECT_EQ(r.u8("a"), 7);
    EXPECT_EQ(r.u32("b"), 123456789u);
    EXPECT_EQ(r.u64("c"), 0xdeadbeefcafef00dull);
    EXPECT_EQ(r.i32("d"), -42);
    EXPECT_EQ(r.str("e"), "hello");
    EXPECT_EQ(r.str("f"), "");
    EXPECT_TRUE(r.atEnd());
}

TEST(ByteReaderTest, TruncationThrowsWithContextAndOffset)
{
    ByteWriter w;
    w.u32(5);
    ByteReader r(w.data(), "/some/file.ckpt");
    r.u32("first");
    try {
        r.u32("second");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("/some/file.ckpt"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("second"), std::string::npos) << msg;
        EXPECT_NE(msg.find("offset 4"), std::string::npos) << msg;
    }
}

TEST(ByteReaderTest, LyingStringLengthFailsBeforeAllocating)
{
    // A u32 length far beyond the data must be rejected by
    // comparison with the remaining bytes, not attempted.
    ByteWriter w;
    w.u32(0x7fffffffu);
    w.bytes("xy");
    ByteReader r(w.data(), "t");
    EXPECT_THROW(r.str("name"), SimError);
}

TEST(ByteReaderTest, CountEnforcesLimitAndRemainingBytes)
{
    {
        ByteWriter w;
        w.u64(1000);
        ByteReader r(w.data(), "t");
        EXPECT_THROW(r.count("n", 100, 1), SimError) << "above limit";
    }
    {
        ByteWriter w;
        w.u64(50); // 50 elements of 4 bytes, but no payload follows
        ByteReader r(w.data(), "t");
        EXPECT_THROW(r.count("n", 100, 4), SimError)
            << "more elements than bytes";
    }
    {
        ByteWriter w;
        w.u64(3);
        w.bytes("0123456789ab"); // exactly 3 x 4 bytes
        ByteReader r(w.data(), "t");
        EXPECT_EQ(r.count("n", 100, 4), 3u);
    }
}

TEST(HashTest, Fnv1a64ReferenceVectors)
{
    // Standard FNV-1a test vectors (seed 0 keeps the offset basis).
    EXPECT_EQ(fnv1a64(""), 14695981039346656037ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
    // Seeding separates domains.
    EXPECT_NE(fnv1a64("x", 1), fnv1a64("x", 2));
}

TEST(HashTest, Crc32ReferenceVectors)
{
    EXPECT_EQ(crc32(""), 0x00000000u);
    EXPECT_EQ(crc32("123456789"), 0xcbf43926u); // the classic check
    EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
              0x414fa339u);
}

TEST(HashTest, Crc32DetectsEverySingleByteFlip)
{
    std::string data = "checkpoint payload bytes";
    uint32_t good = crc32(data);
    for (size_t i = 0; i < data.size(); ++i) {
        std::string bad = data;
        bad[i] = static_cast<char>(bad[i] ^ 0x40);
        EXPECT_NE(crc32(bad), good) << "flip at " << i;
    }
}

} // namespace
} // namespace asim
