/** @file
 * Metrics registry: counter/gauge/histogram semantics, cross-thread
 * accumulation through the shards, quantile math, and the two
 * expositions the METRICS opcode and --trace-out embed.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "support/metrics.hh"

namespace asim::metrics {
namespace {

/** Private registry so tests never see each other's metrics (the
 *  global registry is process-wide by design). */
class MetricsTest : public ::testing::Test
{
  protected:
    Registry reg;
};

TEST_F(MetricsTest, CounterAccumulatesAcrossThreads)
{
    Counter &c = reg.counter("test.counter");
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                c.add();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, CounterAddN)
{
    Counter &c = reg.counter("test.addn");
    c.add(5);
    c.add(37);
    EXPECT_EQ(c.value(), 42u);
}

TEST_F(MetricsTest, SameNameReturnsSameCounter)
{
    Counter &a = reg.counter("test.same");
    Counter &b = reg.counter("test.same");
    EXPECT_EQ(&a, &b);
    a.add();
    EXPECT_EQ(b.value(), 1u);
}

TEST_F(MetricsTest, GaugeTracksValueAndPeak)
{
    Gauge &g = reg.gauge("test.gauge");
    g.set(5);
    g.set(12);
    g.set(3);
    EXPECT_EQ(g.value(), 3);
    EXPECT_EQ(g.peak(), 12);
    g.add(-10);
    EXPECT_EQ(g.value(), -7);
    EXPECT_EQ(g.peak(), 12); // peak never decreases
    g.add(100);
    EXPECT_EQ(g.peak(), 93);
}

TEST_F(MetricsTest, HistogramBucketsAndQuantiles)
{
    Histogram &h = reg.histogram("test.hist", {10, 100, 1000});
    // 90 samples <= 10, 9 samples <= 100, 1 sample in overflow.
    for (int i = 0; i < 90; ++i)
        h.record(5);
    for (int i = 0; i < 9; ++i)
        h.record(50);
    h.record(5000);

    Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 100u);
    EXPECT_EQ(s.sum, 90u * 5 + 9u * 50 + 5000);
    ASSERT_EQ(s.counts.size(), 4u); // 3 bounds + overflow
    EXPECT_EQ(s.counts[0], 90u);
    EXPECT_EQ(s.counts[1], 9u);
    EXPECT_EQ(s.counts[2], 0u);
    EXPECT_EQ(s.counts[3], 1u);
    EXPECT_EQ(s.quantile(0.5), 10u);  // p50 in first bucket
    EXPECT_EQ(s.quantile(0.95), 100u);
    // Overflow samples report the last finite bound.
    EXPECT_EQ(s.quantile(1.0), 1000u);
    EXPECT_DOUBLE_EQ(s.mean(), double(s.sum) / 100.0);
}

TEST_F(MetricsTest, HistogramCrossThreadTotal)
{
    Histogram &h = reg.histogram(
        "test.hist.mt", Histogram::exponentialBounds(1, 2.0, 10));
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&h] {
            for (uint64_t i = 0; i < 1000; ++i)
                h.record(i % 512);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(h.snapshot().count, 4000u);
}

TEST_F(MetricsTest, ExponentialBoundsLadder)
{
    auto b = Histogram::exponentialBounds(1000, 2.0, 4);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(b[0], 1000u);
    EXPECT_EQ(b[1], 2000u);
    EXPECT_EQ(b[2], 4000u);
    EXPECT_EQ(b[3], 8000u);
}

TEST_F(MetricsTest, EmptyHistogramSnapshot)
{
    Histogram &h = reg.histogram("test.empty", {10});
    Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.quantile(0.5), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST_F(MetricsTest, SnapshotCollectsEverything)
{
    reg.counter("c.one").add(7);
    reg.gauge("g.one").set(3);
    reg.histogram("h.one", {100}).record(50);

    RegistrySnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.count("c.one"), 1u);
    EXPECT_EQ(snap.counters.at("c.one"), 7u);
    ASSERT_EQ(snap.gauges.count("g.one"), 1u);
    EXPECT_EQ(snap.gauges.at("g.one").first, 3);
    ASSERT_EQ(snap.histograms.count("h.one"), 1u);
    EXPECT_EQ(snap.histograms.at("h.one").count, 1u);
}

TEST_F(MetricsTest, TextExpositionFormat)
{
    reg.counter("zz.last").add(1);
    reg.counter("aa.first").add(2);
    std::string text = reg.textExposition();
    // Sorted by name, one `name value` line each.
    auto aa = text.find("aa.first 2");
    auto zz = text.find("zz.last 1");
    ASSERT_NE(aa, std::string::npos) << text;
    ASSERT_NE(zz, std::string::npos) << text;
    EXPECT_LT(aa, zz);
}

TEST_F(MetricsTest, JsonExpositionIsWellFormedAndComplete)
{
    reg.counter("c").add(9);
    reg.gauge("g").set(-4);
    reg.histogram("h", {10, 20}).record(15);
    std::string json = reg.jsonExposition();
    EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"c\":9"), std::string::npos) << json;
    EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"value\":-4"), std::string::npos) << json;
    EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"buckets\""), std::string::npos) << json;
    // Balanced braces (cheap well-formedness check; the Python
    // tooling in CI parses it for real).
    int depth = 0;
    for (char ch : json) {
        if (ch == '{')
            ++depth;
        if (ch == '}')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST_F(MetricsTest, TimingEnabledToggle)
{
    const bool was = timingEnabled();
    setTimingEnabled(true);
    EXPECT_TRUE(timingEnabled());
    {
        Histogram &h = reg.histogram("t.scoped", {1u << 30});
        {
            ScopedTimerNs timer(h);
        }
        EXPECT_EQ(h.snapshot().count, 1u);
    }
    setTimingEnabled(false);
    EXPECT_FALSE(timingEnabled());
    {
        Histogram &h = reg.histogram("t.off", {1u << 30});
        {
            ScopedTimerNs timer(h);
        }
        EXPECT_EQ(h.snapshot().count, 0u); // inert when disabled
    }
    setTimingEnabled(was);
}

TEST_F(MetricsTest, NowNsIsMonotonic)
{
    uint64_t a = nowNs();
    uint64_t b = nowNs();
    EXPECT_LE(a, b);
}

} // namespace
} // namespace asim::metrics
