/** @file
 * Tests of the support-layer thread pool (work queue, parallelFor,
 * deterministic exception surfacing) and RunStats aggregation — the
 * substrate the batch subsystem's determinism guarantee stands on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "support/stats.hh"
#include "support/thread_pool.hh"

namespace asim {
namespace {

TEST(ThreadPoolTest, HardwareThreadsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPoolTest, SizeDefaultsToHardware)
{
    ThreadPool pool;
    EXPECT_EQ(pool.size(), ThreadPool::hardwareThreads());
    ThreadPool four(4);
    EXPECT_EQ(four.size(), 4u);
}

TEST(ThreadPoolTest, PostRunsTasksAndDrainWaits)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i)
        pool.post([&done] { ++done; });
    pool.drain();
    EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> hits(100);
        pool.parallelFor(0, 100,
                         [&](size_t i) { ++hits[i]; });
        for (size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i
                                         << " threads " << threads;
    }
}

TEST(ThreadPoolTest, ParallelForHandlesOffsetAndEmptyRanges)
{
    ThreadPool pool(2);
    std::set<size_t> seen;
    std::mutex m;
    pool.parallelFor(10, 20, [&](size_t i) {
        std::lock_guard<std::mutex> lock(m);
        seen.insert(i);
    });
    EXPECT_EQ(seen.size(), 10u);
    EXPECT_EQ(*seen.begin(), 10u);
    EXPECT_EQ(*seen.rbegin(), 19u);

    pool.parallelFor(5, 5, [&](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestFailingIndex)
{
    // Indices 7 and 3 both throw; the surfaced exception must be
    // index 3's under every thread count (deterministic errors).
    for (unsigned threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        std::atomic<int> ran{0};
        try {
            pool.parallelFor(0, 10, [&](size_t i) {
                ++ran;
                if (i == 3 || i == 7)
                    throw std::runtime_error(
                        "boom " + std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom 3");
        }
        // A failing index never cancels the rest of the range.
        EXPECT_EQ(ran.load(), 10);
    }
}

TEST(ThreadPoolTest, MoreThreadsThanWork)
{
    ThreadPool pool(8);
    std::atomic<int> sum{0};
    pool.parallelFor(0, 3, [&](size_t i) {
        sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 3);
}

TEST(RunStatsTest, AddTaskAccumulatesAllCounters)
{
    SimStats s;
    s.cycles = 100;
    s.aluEvals = 40;
    s.selEvals = 7;
    s.mems.push_back({"m", 1, 2, 3, 4});

    RunStats agg;
    agg.addTask(s, 0.5);
    agg.addTask(s, 0.25, /*faulted=*/true);

    EXPECT_EQ(agg.tasks, 2u);
    EXPECT_EQ(agg.faults, 1u);
    EXPECT_EQ(agg.cycles, 200u);
    EXPECT_EQ(agg.aluEvals, 80u);
    EXPECT_EQ(agg.selEvals, 14u);
    EXPECT_EQ(agg.memAccesses, 20u);
    EXPECT_DOUBLE_EQ(agg.busySeconds, 0.75);
}

TEST(RunStatsTest, MergeAndThroughput)
{
    RunStats a, b;
    SimStats s;
    s.cycles = 1000;
    a.addTask(s, 1.0);
    b.addTask(s, 3.0);
    b.wallSeconds = 2.0;

    a.merge(b);
    EXPECT_EQ(a.tasks, 2u);
    EXPECT_EQ(a.cycles, 2000u);
    EXPECT_DOUBLE_EQ(a.busySeconds, 4.0);
    EXPECT_DOUBLE_EQ(a.wallSeconds, 2.0);
    EXPECT_DOUBLE_EQ(a.cyclesPerSecond(), 1000.0);
    EXPECT_DOUBLE_EQ(a.speedup(), 2.0);

    RunStats zero;
    EXPECT_DOUBLE_EQ(zero.cyclesPerSecond(), 0.0);
    EXPECT_DOUBLE_EQ(zero.speedup(), 0.0);
}

TEST(RunStatsTest, SummaryMentionsTotalsAndFaults)
{
    RunStats agg;
    SimStats s;
    s.cycles = 42;
    agg.addTask(s, 0.1, true);
    agg.wallSeconds = 0.1;
    std::string text = agg.summary();
    EXPECT_NE(text.find("tasks: 1"), std::string::npos) << text;
    EXPECT_NE(text.find("1 faulted"), std::string::npos) << text;
    EXPECT_NE(text.find("total cycles: 42"), std::string::npos)
        << text;
    EXPECT_NE(text.find("aggregate cycles/sec"), std::string::npos)
        << text;
}

} // namespace
} // namespace asim
