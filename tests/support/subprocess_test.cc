/** @file
 * Subprocess pipe-plumbing tests: round trips, EOF/EPIPE reporting
 * (instead of SIGPIPE death), kill/reap, and stderr redirection.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include <sys/wait.h>
#include <unistd.h>

#include "support/subprocess.hh"

namespace asim {
namespace {

TEST(SubprocessTest, EchoRoundTrip)
{
    Subprocess p;
    p.start({"/bin/cat"});
    EXPECT_GT(p.pid(), 0);
    EXPECT_TRUE(p.writeAll("hello\nworld\n"));
    std::string line;
    ASSERT_TRUE(p.readLine(line));
    EXPECT_EQ(line, "hello");
    std::string rest;
    ASSERT_TRUE(p.readExact(rest, 6));
    EXPECT_EQ(rest, "world\n");
    p.closeStdin();
    EXPECT_FALSE(p.readLine(line)) << "expected EOF after close";
    int status = p.waitExit();
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    EXPECT_FALSE(p.running());
}

TEST(SubprocessTest, WriteToDeadChildFailsInsteadOfKillingUs)
{
    Subprocess p;
    p.start({"/bin/true"});
    std::string line;
    EXPECT_FALSE(p.readLine(line)); // EOF: the child is exiting
    // EOF on stdout does not guarantee the dying child's stdin
    // read end is closed *yet*, so poll: the write must start
    // failing (EPIPE) shortly — and must never SIGPIPE-kill us.
    bool ok = true;
    for (int i = 0; i < 2000 && ok; ++i) {
        ok = p.writeAll("x\n");
        if (ok)
            usleep(1000);
    }
    EXPECT_FALSE(ok) << "writes kept succeeding after child death";
    EXPECT_NE(p.terminate(), -1);
}

TEST(SubprocessTest, TerminateKillsARunningChild)
{
    Subprocess p;
    p.start({"/bin/cat"}); // blocks on stdin forever
    int status = p.terminate();
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    EXPECT_FALSE(p.running());
}

TEST(SubprocessTest, StderrGoesToTheSuppliedFd)
{
    FILE *spool = std::tmpfile();
    ASSERT_NE(spool, nullptr);
    Subprocess p;
    p.start({"/bin/sh", "-c", "echo oops >&2"}, fileno(spool));
    std::string line;
    EXPECT_FALSE(p.readLine(line));
    p.waitExit();
    std::rewind(spool);
    char buf[64] = {};
    size_t n = std::fread(buf, 1, sizeof buf - 1, spool);
    EXPECT_EQ(std::string(buf, n), "oops\n");
    std::fclose(spool);
}

TEST(SubprocessTest, StartRejectsNonsense)
{
    Subprocess p;
    EXPECT_THROW(p.start({}), std::runtime_error);
    EXPECT_THROW(p.start({"/nonexistent/binary"}),
                 std::runtime_error);
    p.start({"/bin/cat"});
    EXPECT_THROW(p.start({"/bin/cat"}), std::runtime_error);
    p.terminate();
}

} // namespace
} // namespace asim
