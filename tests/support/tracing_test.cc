/** @file
 * Span tracer: trace-file shape (Chrome trace_event JSON with the
 * metrics registry embedded), start/stop lifecycle, span inertness
 * when disabled, and the jsonEscape helper span args rely on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include <unistd.h>

#include "support/metrics.hh"
#include "support/tracing.hh"

namespace asim::tracing {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

class TracingTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("asim_tracing_test_" +
                  std::to_string(::getpid()) + ".json"))
                    .string();
    }

    void TearDown() override
    {
        stop(); // idempotent; never leave tracing on for other tests
        std::remove(path_.c_str());
    }

    std::string path_;
};

TEST_F(TracingTest, DisabledByDefault)
{
    EXPECT_FALSE(enabled());
}

TEST_F(TracingTest, StartStopProducesTraceObject)
{
    ASSERT_TRUE(start(path_));
    EXPECT_TRUE(enabled());
    EXPECT_TRUE(metrics::timingEnabled()); // start flips timing on

    {
        Span s("unit.span", "test");
        s.setArgs("\"k\":1");
    }
    instantEvent("unit.instant", "test");
    counterEvent("unit.counter", "depth", 3.0);
    setThreadName("tester");
    stop();
    EXPECT_FALSE(enabled());

    std::string text = slurp(path_);
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    EXPECT_NE(text.find("\"name\":\"unit.span\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"name\":\"unit.instant\""),
              std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(text.find("\"args\":{\"k\":1}"), std::string::npos);
    EXPECT_NE(text.find("thread_name"), std::string::npos);
    // The metrics registry rides along in the same artifact.
    EXPECT_NE(text.find("\"asim_metrics\""), std::string::npos);
    // Well-formed JSON object end to end (braces balance and the
    // text is one object).
    int depth = 0;
    bool inStr = false;
    bool esc = false;
    for (char ch : text) {
        if (esc) {
            esc = false;
            continue;
        }
        if (ch == '\\') {
            esc = true;
            continue;
        }
        if (ch == '"') {
            inStr = !inStr;
            continue;
        }
        if (inStr)
            continue;
        if (ch == '{')
            ++depth;
        if (ch == '}')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST_F(TracingTest, DoubleStartRefused)
{
    ASSERT_TRUE(start(path_));
    EXPECT_FALSE(start(path_)); // already recording
    stop();
}

TEST_F(TracingTest, StartOnUnwritablePathFails)
{
    EXPECT_FALSE(start("/nonexistent-dir-xyz/trace.json"));
    EXPECT_FALSE(enabled());
}

TEST_F(TracingTest, SpansInertWhenDisabled)
{
    ASSERT_FALSE(enabled());
    {
        Span s("never.emitted", "test");
        s.setArgs("\"ignored\":true");
    } // must not crash, must not write anywhere
    completeEvent("also.never", "test", 0, 1);
    instantEvent("also.never", "test");
    EXPECT_FALSE(std::filesystem::exists(path_));
}

TEST_F(TracingTest, SpanOpenAcrossStopIsDropped)
{
    ASSERT_TRUE(start(path_));
    auto s = std::make_unique<Span>("late.span", "test");
    stop();
    s.reset(); // finishes after the file closed: dropped, no crash
    std::string text = slurp(path_);
    EXPECT_EQ(text.find("late.span"), std::string::npos);
}

TEST_F(TracingTest, JsonEscape)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape(std::string("a\nb")), "a b");
}

TEST_F(TracingTest, CurrentTidStablePerThread)
{
    uint32_t a = currentTid();
    uint32_t b = currentTid();
    EXPECT_EQ(a, b);
}

TEST_F(TracingTest, SyncWriterDiscardsOnNull)
{
    SyncWriter w(nullptr);
    w.writeLine("dropped");
    w.write("dropped");
    w.flush(); // no crash is the assertion
}

} // namespace
} // namespace asim::tracing
