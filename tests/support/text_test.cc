/** @file Unit tests for text helpers. */

#include <gtest/gtest.h>

#include "support/text.hh"

namespace asim {
namespace {

TEST(Text, CharClasses)
{
    EXPECT_TRUE(isLetter('a'));
    EXPECT_TRUE(isLetter('Z'));
    EXPECT_FALSE(isLetter('1'));
    EXPECT_FALSE(isLetter('_'));
    EXPECT_TRUE(isDigit('0'));
    EXPECT_FALSE(isDigit('a'));
    EXPECT_TRUE(isHexDigit('F'));
    EXPECT_FALSE(isHexDigit('f')); // thesis hex is upper-case only
    EXPECT_FALSE(isHexDigit('G'));
}

TEST(Text, ValidNames)
{
    EXPECT_TRUE(isValidName("count"));
    EXPECT_TRUE(isValidName("alu2"));
    EXPECT_TRUE(isValidName("A"));
    EXPECT_FALSE(isValidName(""));
    EXPECT_FALSE(isValidName("2alu"));
    EXPECT_FALSE(isValidName("a_b"));
    EXPECT_FALSE(isValidName("a.b"));
}

TEST(Text, Split)
{
    auto p = split("a,b,,c", ',');
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p[0], "a");
    EXPECT_EQ(p[2], "");
    EXPECT_EQ(split("abc", ',').size(), 1u);
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Text, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(Text, StartsWithContains)
{
    EXPECT_TRUE(startsWith("abcdef", "abc"));
    EXPECT_FALSE(startsWith("ab", "abc"));
    EXPECT_TRUE(contains("hello world", "lo w"));
    EXPECT_FALSE(contains("hello", "xyz"));
}

TEST(Text, CountOccurrences)
{
    EXPECT_EQ(countOccurrences("aaa", "a"), 3);
    EXPECT_EQ(countOccurrences("aaaa", "aa"), 2);
    EXPECT_EQ(countOccurrences("abc", "x"), 0);
    EXPECT_EQ(countOccurrences("abc", ""), 0);
}

} // namespace
} // namespace asim
