/** @file Unit tests for the bit-level value model. */

#include <gtest/gtest.h>

#include "support/bitops.hh"

namespace asim {
namespace {

TEST(Bitops, Land)
{
    EXPECT_EQ(land(0b1100, 0b1010), 0b1000);
    EXPECT_EQ(land(-1, kValueMask), kValueMask);
    EXPECT_EQ(land(-2, 0x7fffffff), 0x7ffffffe);
    EXPECT_EQ(land(0, 12345), 0);
}

TEST(Bitops, Highbit)
{
    EXPECT_EQ(highbit(0), 1);
    EXPECT_EQ(highbit(5), 32);
    EXPECT_EQ(highbit(30), 1 << 30);
    EXPECT_EQ(highbit(31), INT32_MIN);
}

TEST(Bitops, MaskBits)
{
    EXPECT_EQ(maskBits(0, 0), 1);
    EXPECT_EQ(maskBits(3, 4), 0b11000);
    EXPECT_EQ(maskBits(0, 11), 4095);
    EXPECT_EQ(maskBits(12, 12), 4096);
    EXPECT_EQ(maskBits(0, 30), kValueMask);
}

TEST(Bitops, LowMask)
{
    EXPECT_EQ(lowMask(0), 0);
    EXPECT_EQ(lowMask(1), 1);
    EXPECT_EQ(lowMask(4), 15);
    EXPECT_EQ(lowMask(31), kValueMask);
}

TEST(Bitops, WrappingOps)
{
    EXPECT_EQ(wadd(INT32_MAX, 1), INT32_MIN);
    EXPECT_EQ(wsub(INT32_MIN, 1), INT32_MAX);
    EXPECT_EQ(wmul(65536, 65536), 0);
    EXPECT_EQ(wadd(5, 7), 12);
}

TEST(Bitops, ShiftField)
{
    EXPECT_EQ(shiftField(0b11, 3), 0b11000);
    EXPECT_EQ(shiftField(0b11000, -3), 0b11);
    EXPECT_EQ(shiftField(5, 0), 5);
    // Left shifts wrap through the 32-bit representation.
    EXPECT_EQ(shiftField(1, 31), INT32_MIN);
}

} // namespace
} // namespace asim
