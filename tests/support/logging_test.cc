/** @file
 * Logging layer: exception taxonomy, the Diagnostics collector, and
 * the redirectable log sink shared with the tracer's SyncWriter (so
 * concurrent threads never shear a line).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "support/logging.hh"
#include "support/tracing.hh"

namespace asim {
namespace {

TEST(LoggingTest, ErrorTypesCarryMessages)
{
    SpecError spec("bad spec");
    SimError sim("bad run");
    EXPECT_STREQ(spec.what(), "bad spec");
    EXPECT_STREQ(sim.what(), "bad run");
    // Both are runtime_errors so one catch site can take either.
    EXPECT_NO_THROW({
        try {
            throw SpecError("x");
        } catch (const std::runtime_error &) {
        }
    });
}

TEST(LoggingTest, DiagnosticsCollectInOrder)
{
    Diagnostics d;
    EXPECT_TRUE(d.clean());
    d.warn("first");
    d.warn("second");
    EXPECT_FALSE(d.clean());
    ASSERT_EQ(d.warnings().size(), 2u);
    EXPECT_EQ(d.warnings()[0], "first");
    EXPECT_EQ(d.warnings()[1], "second");
}

/** Redirect the sink to a temp file, restore it on scope exit. */
class SinkCapture
{
  public:
    SinkCapture()
    {
        static std::atomic<int> serial{0};
        path_ = (std::filesystem::temp_directory_path() /
                 ("asim_logging_test_" +
                  std::to_string(::getpid()) + "_" +
                  std::to_string(serial.fetch_add(1)) + ".log"))
                    .string();
        file_ = std::fopen(path_.c_str(), "w+b");
        writer_ = std::make_unique<tracing::SyncWriter>(file_);
        prev_ = setLogSink(writer_.get());
    }

    ~SinkCapture()
    {
        setLogSink(prev_);
        std::fclose(file_);
        std::remove(path_.c_str());
    }

    std::string text() const
    {
        std::fflush(file_);
        std::ifstream in(path_, std::ios::binary);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::unique_ptr<tracing::SyncWriter> writer_;
    tracing::SyncWriter *prev_ = nullptr;
};

TEST(LoggingTest, LogLineGoesToInstalledSink)
{
    SinkCapture capture;
    logLine("hello sink");
    EXPECT_EQ(capture.text(), "hello sink\n");
}

TEST(LoggingTest, SetLogSinkReturnsPrevious)
{
    SinkCapture outer;
    {
        SinkCapture inner;
        logLine("inner line");
        EXPECT_NE(inner.text().find("inner line"), std::string::npos);
    }
    // inner's destructor restored outer's writer.
    logLine("outer line");
    EXPECT_NE(outer.text().find("outer line"), std::string::npos);
    EXPECT_EQ(outer.text().find("inner line"), std::string::npos);
}

TEST(LoggingTest, ConcurrentLogLinesNeverShear)
{
    SinkCapture capture;
    constexpr int kThreads = 8;
    constexpr int kLines = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            const std::string line(20 + t, 'a' + char(t));
            for (int i = 0; i < kLines; ++i)
                logLine(line);
        });
    }
    for (auto &t : threads)
        t.join();

    // Every line in the file must be exactly one writer's payload —
    // uniform characters of the expected length.
    std::istringstream in(capture.text());
    std::string line;
    size_t n = 0;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty());
        const char c = line[0];
        ASSERT_GE(c, 'a');
        ASSERT_LT(c, 'a' + kThreads);
        const int t = c - 'a';
        EXPECT_EQ(line.size(), size_t(20 + t));
        for (char ch : line)
            ASSERT_EQ(ch, c);
        ++n;
    }
    EXPECT_EQ(n, size_t(kThreads) * kLines);
}

TEST(LoggingDeathTest, PanicAbortsWithMessage)
{
    EXPECT_DEATH(panic("invariant broken"), "panic: invariant broken");
}

} // namespace
} // namespace asim
