# Scripted input for echo.asim (asim-run --io=script:specs/echo.io):
# one integer per cycle, five inclusive iterations (= 4).
10 20 30 40 50
