/**
 * @file
 * Quickstart: describe a small piece of hardware in the ASIM II
 * language, simulate it with both engines, inspect statistics, and
 * generate the Pascal the thesis' compiler would have produced.
 *
 * The machine is the thesis' own "simple counter" example (§3.2) —
 * one ALU and one single-cell memory.
 */

#include <iostream>

#include "analysis/resolve.hh"
#include "codegen/codegen.hh"
#include "sim/engine.hh"

int
main()
{
    using namespace asim;

    // A 4-bit counter, traced, for 20 cycles.
    const char *spec = "# 4-bit counter quickstart\n"
                       "= 20\n"
                       "count* next* .\n"
                       "A next 4 count.0.3 1\n"
                       "M count 0 next 1 1\n"
                       ".\n";

    std::cout << "--- specification ---------------------------\n"
              << spec << "\n";

    // Parse and resolve (any spec problems throw SpecError here).
    Diagnostics diag;
    ResolvedSpec rs = resolveText(spec, &diag);
    for (const auto &w : diag.warnings())
        std::cout << w << "\n";

    // Run on the compiled (VM) engine with a live trace.
    std::cout << "--- simulation (VM engine) ------------------\n";
    StreamTrace trace(std::cout);
    EngineConfig cfg;
    cfg.trace = &trace;
    auto engine = makeVm(rs, cfg);
    engine->run(rs.spec.thesisIterations());

    std::cout << "--- statistics -------------------------------\n"
              << engine->stats().summary();

    // The interpreter (ASIM baseline) gives identical results.
    auto interp = makeInterpreter(rs);
    interp->run(rs.spec.thesisIterations());
    std::cout << "interpreter count = " << interp->value("count")
              << ", vm count = " << engine->value("count") << "\n";

    // And this is what the 1986 compiler emitted: Pascal.
    std::cout << "--- generated Pascal (ASIM II output) --------\n"
              << generatePascal(rs);
    return 0;
}
