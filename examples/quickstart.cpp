/**
 * @file
 * Quickstart: describe a small piece of hardware in the ASIM II
 * language, simulate it through the Simulation facade on two of the
 * registered engines, inspect statistics, and generate the Pascal
 * the thesis' compiler would have produced.
 *
 * The machine is the thesis' own "simple counter" example (§3.2) —
 * one ALU and one single-cell memory.
 */

#include <iostream>

#include "codegen/codegen.hh"
#include "sim/simulation.hh"

int
main()
{
    using namespace asim;

    // A 4-bit counter, traced, for 20 cycles.
    const char *spec = "# 4-bit counter quickstart\n"
                       "= 20\n"
                       "count* next* .\n"
                       "A next 4 count.0.3 1\n"
                       "M count 0 next 1 1\n"
                       ".\n";

    std::cout << "--- specification ---------------------------\n"
              << spec << "\n";

    // The paper's execution systems, interchangeable by name.
    std::cout << "--- registered engines ----------------------\n";
    for (const auto &[name, description] :
         EngineRegistry::global().list())
        std::cout << name << ": " << description << "\n";

    // One options struct owns the whole parse -> resolve -> engine
    // pipeline (any spec problems throw SpecError here).
    SimulationOptions opts;
    opts.specText = spec;
    opts.engine = "vm";
    opts.traceStream = &std::cout;

    std::cout << "--- simulation (vm engine) ------------------\n";
    Simulation vm(opts);
    for (const auto &w : vm.diagnostics().warnings())
        std::cout << w << "\n";
    vm.run(vm.defaultCycles());

    std::cout << "--- statistics -------------------------------\n"
              << vm.stats().summary();

    // The interpreter (ASIM baseline) gives identical results.
    opts.engine = "interp";
    opts.traceStream = nullptr;
    Simulation interp(opts);
    interp.run(interp.defaultCycles());
    std::cout << "interpreter count = " << interp.value("count")
              << ", vm count = " << vm.value("count") << "\n";

    // Run control beyond run(n): watchpoints and snapshots.
    Simulation watched(opts);
    uint64_t steps = watched.runUntilValue("count", 9, 100);
    std::cout << "count reached 9 after " << steps << " cycles\n";
    EngineSnapshot snap = watched.snapshot();
    watched.run(5);
    watched.restore(snap);
    std::cout << "restored to cycle " << watched.cycle()
              << ", count = " << watched.value("count") << "\n";

    // And this is what the 1986 compiler emitted: Pascal.
    std::cout << "--- generated Pascal (ASIM II output) --------\n"
              << generatePascal(watched.resolved());
    return 0;
}
