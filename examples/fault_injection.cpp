/**
 * @file
 * Fault injection (thesis §2.3.2): "inserting a fault in the
 * specification to cause errors (by design) in the simulation run."
 *
 * We take the healthy sieve-running stack machine, inject stuck-at
 * faults on individual bits of the ALU result bus, and report which
 * faults are catastrophic (wrong primes), which are fatal (the
 * machine runs off its microcode), and which are silent at this
 * workload — exactly the kind of design-robustness sweep the thesis
 * proposes CHDL simulators for.
 */

#include <iostream>

#include "analysis/fault.hh"
#include "lang/parser.hh"
#include "analysis/resolve.hh"
#include "lang/parser.hh"
#include "machines/stack_machine.hh"
#include "sim/engine.hh"

int
main()
{
    using namespace asim;

    const int size = 10;
    const auto expected = sieveReference(size);
    Spec healthy = parseSpec(stackMachineSpec(sieveProgram(size),
                                              50000));

    std::cout << "healthy machine: ";
    {
        VectorIo io;
        EngineConfig cfg;
        cfg.io = &io;
        auto e = makeVm(resolve(healthy), cfg);
        e->run(50000);
        std::cout << io.outputsAt(1).size() << " outputs, "
                  << (io.outputsAt(1) == expected ? "correct"
                                                  : "WRONG")
                  << "\n\n";
    }

    std::cout << "stuck-at-0 sweep over ALU result bus bits:\n";
    for (int bit = 0; bit < 12; ++bit) {
        Spec faulty = injectStuckBit(healthy, "alures", bit,
                                     StuckMode::StuckAt0);
        VectorIo io;
        EngineConfig cfg;
        cfg.io = &io;
        std::cout << "  alures bit " << bit << " stuck at 0: ";
        try {
            auto e = makeVm(resolve(faulty), cfg);
            e->run(50000);
            auto out = io.outputsAt(1);
            if (out == expected)
                std::cout << "SILENT (output unchanged)\n";
            else if (out.empty())
                std::cout << "DEAD (no output)\n";
            else
                std::cout << "CORRUPT (" << out.size()
                          << " outputs, first "
                          << (out[0] == expected[0] ? "ok" : "wrong")
                          << ")\n";
        } catch (const SimError &e) {
            std::cout << "FATAL: " << e.what() << "\n";
        }
    }

    std::cout << "\nstuck-at-1 on the branch condition path "
                 "(iszero output):\n  ";
    try {
        Spec faulty = injectStuckBit(healthy, "iszero", 0,
                                     StuckMode::StuckAt1);
        VectorIo io;
        EngineConfig cfg;
        cfg.io = &io;
        auto e = makeVm(resolve(faulty), cfg);
        e->run(50000);
        std::cout << "every BZ taken: " << io.outputsAt(1).size()
                  << " outputs (expected "
                  << expected.size() << ")\n";
    } catch (const SimError &e) {
        std::cout << "FATAL: " << e.what() << "\n";
    }
    return 0;
}
