/**
 * @file
 * Reproduces the thesis' code-generation figures: Figure 3.1 (bit
 * concatenation), Figure 4.1 (ALU codegen, generic vs constant-
 * function optimized), Figure 4.2 (selector codegen), and Figure 4.3
 * (memory codegen with tracing) — printing the specification next to
 * the Pascal ASIM II generates for it, plus the modern C++ output.
 */

#include <iostream>

#include "analysis/resolve.hh"
#include "codegen/codegen.hh"
#include "sim/engine.hh"

namespace {

void
banner(const char *title)
{
    std::cout << "\n==== " << title << " "
              << std::string(60 - std::string(title).size(), '=')
              << "\n";
}

} // namespace

int
main()
{
    using namespace asim;

    banner("Figure 3.1: bit concatenation");
    {
        // mem.3.4,#01,count.1 — evaluated against live values.
        ResolvedSpec rs = resolveText("# fig 3.1\n"
                                      "r mem count .\n"
                                      "A r 1 0 mem.3.4,#01,count.1\n"
                                      "M mem 0 0 0 -16 0 0 0 0 0 0 0 0 "
                                      "0 0 0 0 0 0 0 0\n"
                                      "M count 0 0 0 -1 0\n"
                                      ".\n");
        auto e = makeVm(rs);
        // mem latch: bits 3..4 = 0b11 -> set cells so a read shows it.
        e->state().mems[0].temp = 0b11000; // mem output latch
        e->state().mems[1].temp = 0b10;    // count bit 1 set
        e->step();
        std::cout << "mem.3.4,#01,count.1 with mem=11000b, count=10b"
                  << " -> r = " << e->value("r") << " (binary 11011)\n";
    }

    banner("Figure 4.1: ALU specification and generated code");
    {
        ResolvedSpec rs = resolveText("# fig 4.1\n"
                                      "alu add compute left .\n"
                                      "A alu compute left 3048\n"
                                      "A add 4 left 3048\n"
                                      "M compute 0 0 0 16\n"
                                      "M left 0 0 0 16\n"
                                      ".\n");
        std::cout << "Specification:\n"
                  << "  A alu compute left 3048\n"
                  << "  A add 4 left 3048\n\n"
                  << "Generated Pascal (the figure's two lines):\n";
        std::string code = generatePascal(rs);
        for (const char *needle :
             {"ljbalu := dologic", "ljbadd := "}) {
            size_t at = code.find(needle);
            size_t end = code.find('\n', at);
            std::cout << "  " << code.substr(at, end - at) << "\n";
        }
    }

    banner("Figure 4.2: selector specification and generated code");
    {
        ResolvedSpec rs = resolveText(
            "# fig 4.2\n"
            "selector index value0 value1 value2 value3 .\n"
            "S selector index.0.1 value0 value1 value2 value3\n"
            "M index 0 0 0 4\nM value0 0 0 0 4\nM value1 0 0 0 4\n"
            "M value2 0 0 0 4\nM value3 0 0 0 4\n"
            ".\n");
        std::string code = generatePascal(rs);
        size_t at = code.find("case land(tempindex");
        size_t end = code.find("end;", at);
        std::cout << code.substr(at, end - at + 4) << "\n";
    }

    banner("Figure 4.3: memory specification and generated code");
    {
        ResolvedSpec rs = resolveText(
            "# fig 4.3\n"
            "memory address data operation .\n"
            "A address 2 0 0\nA data 2 0 0\nA operation 2 0 0\n"
            "M memory address data operation.0.3 -4 12 34 56 78\n"
            ".\n");
        std::string code = generatePascal(rs);
        size_t at = code.find("case land(opnmemory, 3) of");
        size_t end = code.find("writeln('Read from memory", at);
        end = code.find('\n', end);
        std::cout << code.substr(at, end - at) << "\n";
    }

    banner("The same memory, as modern C++");
    {
        ResolvedSpec rs = resolveText(
            "# fig 4.3 cpp\n"
            "memory address data operation .\n"
            "A address 2 0 0\nA data 2 0 0\nA operation 2 0 0\n"
            "M memory address data operation.0.3 -4 12 34 56 78\n"
            ".\n");
        std::string code = generateCpp(rs);
        size_t at = code.find("switch (land(opnmemory, 3)) {");
        size_t end = code.find("}", code.find("case 3:", at));
        std::cout << code.substr(at, end - at + 1) << "\n";
    }
    return 0;
}
