/**
 * @file
 * The Appendix F tiny computer: a 10-bit, five-instruction (LD, ST,
 * BB, BR, SU) accumulator machine with 128 words of unified memory.
 * Demonstrates assembling programs for a machine that has *only*
 * subtract, and watching the architectural registers cycle by cycle.
 */

#include <iostream>

#include "analysis/resolve.hh"
#include "machines/tiny_computer.hh"
#include "sim/engine.hh"

int
main()
{
    using namespace asim;

    // 23 mod 7 by repeated subtraction.
    int modResult = 0;
    auto modImg = tinyModProgram(23, 7, modResult);
    ResolvedSpec rs = resolveText(tinyComputerSpec(modImg, 400));

    std::cout << "tiny computer: 23 mod 7, tracing pc/ir/ac/borrow "
                 "for the first 12 instruction phases\n";
    StreamTrace trace(std::cout);
    EngineConfig cfg;
    cfg.trace = &trace;
    auto engine = makeVm(rs, cfg);
    engine->run(12);

    // Finish without tracing.
    auto rest = makeVm(rs);
    rest->run(400);
    std::cout << "...\nresult cell[" << modResult
              << "] = " << rest->memCell("memory", modResult)
              << " (expected 2)\n\n";

    // 6 * 7 on a machine with no multiply and no add.
    int mulResult = 0;
    auto mulImg = tinyMulProgram(6, 7, mulResult);
    auto mul = makeVm(resolveText(tinyComputerSpec(mulImg, 3000)));
    mul->run(3000);
    std::cout << "6 * 7 via repeated x - (0 - y): cell[" << mulResult
              << "] = " << mul->memCell("memory", mulResult)
              << " (expected 42)\n";
    std::cout << mul->stats().summary();
    return 0;
}
