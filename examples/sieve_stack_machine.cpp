/**
 * @file
 * The thesis' flagship workload (Appendix D): a microcoded stack
 * machine running the Sieve of Eratosthenes, with the primes flowing
 * out of the memory-mapped output port.
 *
 * Usage: sieve_stack_machine [size] [--trace]
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "analysis/resolve.hh"
#include "machines/stack_machine.hh"
#include "sim/engine.hh"

int
main(int argc, char **argv)
{
    using namespace asim;

    int size = 20;
    bool traced = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0)
            traced = true;
        else
            size = std::atoi(argv[i]);
    }

    std::cout << "Assembling sieve(" << size
              << ") for the Itty Bitty Stack Machine...\n";
    auto program = sieveProgram(size);
    std::cout << "program: " << program.size() << " words\n";

    ResolvedSpec rs =
        resolveText(stackMachineSpec(program, 100000, traced));
    std::cout << "specification: " << rs.spec.comps.size()
              << " components (" << rs.comb.size()
              << " combinational, " << rs.mems.size()
              << " memories)\n\n";

    StreamTrace trace(std::cout);
    StreamIo io(std::cin, std::cout);
    EngineConfig cfg;
    cfg.io = &io;
    if (traced)
        cfg.trace = &trace;

    auto engine = makeVm(rs, cfg);
    std::cout << "primes (each line is one memory-mapped output; the "
                 "last line is the count):\n";
    uint64_t cycles = 0;
    while (engine->value("state") != kStackHaltState &&
           cycles < 1000000) {
        engine->run(64);
        cycles += 64;
    }
    std::cout << "\nhalted after ~" << engine->cycle() << " cycles\n";
    std::cout << engine->stats().summary();
    return 0;
}
