/**
 * @file
 * The symbolic interpreter — the faithful ASIM baseline.
 *
 * ASIM "reads the specification into tables, and produces a simulation
 * run by interpreting the symbols in the table" (thesis §3.1): every
 * evaluation walks the parsed component definitions, looks up each
 * referenced component *by name* in the symbol table, and rebuilds the
 * field masks and shift factors from the subfield positions — exactly
 * the work a 1986 table interpreter repeated every cycle, and exactly
 * the work ASIM II's generated code amortizes away. Figure 5.1's ASIM
 * rows map onto this engine.
 *
 * (The library also ships a slot-resolved interpreter — sim/
 * interpreter.hh — as a modern intermediate point; see bench_fig5_1.)
 */

#ifndef ASIM_SIM_SYMBOLIC_HH
#define ASIM_SIM_SYMBOLIC_HH

#include "sim/engine.hh"

namespace asim {

/** See file comment. Construct via makeSymbolicInterpreter(). */
class SymbolicInterpreter : public Engine
{
  public:
    SymbolicInterpreter(std::shared_ptr<const ResolvedSpec> rs,
                        const EngineConfig &cfg);

    void step() override;

  private:
    int32_t lookup(const std::string &name) const;
    int32_t eval(const Expr &e) const;
    void evalComponent(const Component &c);
    void updateMemory(const Component &c, int index);

    /** Components in evaluation order (combinational sorted, then
     *  memories in declaration order), as (component, memIndex). */
    std::vector<std::pair<const Component *, int>> combOrder_;
    std::vector<std::pair<const Component *, int>> memOrder_;
};

/** Build the symbolic interpreter (the ASIM row of Figure 5.1). */
std::unique_ptr<Engine>
makeSymbolicInterpreter(const ResolvedSpec &rs,
                        const EngineConfig &cfg = {});
std::unique_ptr<Engine>
makeSymbolicInterpreter(std::shared_ptr<const ResolvedSpec> rs,
                        const EngineConfig &cfg = {});

} // namespace asim

#endif // ASIM_SIM_SYMBOLIC_HH
