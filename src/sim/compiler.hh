/**
 * @file
 * Bytecode compiler: ResolvedSpec -> Program.
 */

#ifndef ASIM_SIM_COMPILER_HH
#define ASIM_SIM_COMPILER_HH

#include "analysis/resolve.hh"
#include "sim/bytecode.hh"
#include "sim/engine.hh"

namespace asim {

/**
 * Compile a resolved specification to VM bytecode.
 *
 * @param rs the resolved specification
 * @param opts optimization switches (all enabled by default; the
 *        ablation benches toggle them individually)
 * @param tracingPossible if false (no trace sink will ever be
 *        attached), trace checks are compiled out entirely
 */
Program compileProgram(const ResolvedSpec &rs,
                       const CompilerOptions &opts = {},
                       bool tracingPossible = true);

} // namespace asim

#endif // ASIM_SIM_COMPILER_HH
