#include "sim/symbolic.hh"

#include "support/bitops.hh"

namespace asim {

SymbolicInterpreter::SymbolicInterpreter(
    std::shared_ptr<const ResolvedSpec> rs, const EngineConfig &cfg)
    : Engine(std::move(rs), cfg)
{
    for (const auto &cc : rs_->comb) {
        combOrder_.emplace_back(&rs_->spec.comps[cc.declIndex], -1);
    }
    for (const auto &m : rs_->mems)
        memOrder_.emplace_back(&rs_->spec.comps[m.declIndex], m.index);
}

int32_t
SymbolicInterpreter::lookup(const std::string &name) const
{
    // The defining characteristic of the ASIM baseline: a symbol-table
    // lookup per reference, every cycle.
    auto vit = rs_->varSlots.find(name);
    if (vit != rs_->varSlots.end())
        return state_.vars[vit->second];
    auto mit = rs_->memIndexes.find(name);
    if (mit != rs_->memIndexes.end())
        return state_.mems[mit->second].temp;
    throw SimError("Error. Component <" + name + "> not found.");
}

int32_t
SymbolicInterpreter::eval(const Expr &e) const
{
    // Right-to-left accumulation over the *unresolved* terms, building
    // masks and shift factors on the fly (the thesis expr() logic,
    // executed per evaluation instead of once).
    int32_t acc = 0;
    int numbits = 0;
    for (auto it = e.terms.rbegin(); it != e.terms.rend(); ++it) {
        const Term &t = *it;
        switch (t.kind) {
          case Term::Kind::Const:
            if (t.width >= 0) {
                acc = wadd(acc, shiftField(land(t.value,
                                                lowMask(t.width)),
                                           numbits));
                numbits += t.width;
            } else {
                acc = wadd(acc, shiftField(t.value, numbits));
                numbits = kMaxBits;
            }
            break;
          case Term::Kind::BitString:
            acc = wadd(acc, shiftField(t.value, numbits));
            numbits += t.width;
            break;
          case Term::Kind::Ref: {
            int32_t v = lookup(t.ref);
            if (t.from >= 0) {
                int to = t.to < 0 ? t.from : t.to;
                v = land(v, maskBits(t.from, to));
                v = shiftField(v, numbits - t.from);
                numbits += to - t.from + 1;
            } else {
                v = shiftField(v, numbits);
                numbits = kMaxBits;
            }
            acc = wadd(acc, v);
            break;
          }
        }
    }
    return acc;
}

void
SymbolicInterpreter::evalComponent(const Component &c)
{
    int slot = rs_->varSlot(c.name);
    if (c.kind == CompKind::Alu) {
        int32_t f = eval(c.funct);
        int32_t l = eval(c.left);
        int32_t r = eval(c.right);
        state_.vars[slot] = dologic(f, l, r, cfg_.aluSemantics);
        if (cfg_.collectStats)
            ++stats_.aluEvals;
    } else {
        int32_t idx = eval(c.select);
        if (idx < 0 || idx >= static_cast<int32_t>(c.cases.size())) {
            throw SimError("selector " + c.name + " index " +
                           std::to_string(idx) + " outside its " +
                           std::to_string(c.cases.size()) +
                           " cases (cycle " + std::to_string(cycle_) +
                           ")");
        }
        state_.vars[slot] = eval(c.cases[idx]);
        if (cfg_.collectStats)
            ++stats_.selEvals;
    }
}

void
SymbolicInterpreter::updateMemory(const Component &c, int index)
{
    MemoryState &ms = state_.mems[index];
    const int32_t op = land(ms.opn, 3);
    const int32_t adr = ms.adr;

    auto checkAddr = [&]() {
        if (adr < 0 || adr >= static_cast<int32_t>(ms.cells.size())) {
            throw SimError("memory " + c.name + " address " +
                           std::to_string(adr) + " outside 0.." +
                           std::to_string(ms.cells.size() - 1) +
                           " (cycle " + std::to_string(cycle_) + ")");
        }
    };

    switch (op) {
      case mem_op::kRead:
        checkAddr();
        ms.temp = ms.cells[adr];
        if (cfg_.collectStats)
            ++stats_.mems[index].reads;
        break;
      case mem_op::kWrite:
        checkAddr();
        ms.temp = eval(c.data);
        ms.cells[adr] = ms.temp;
        if (cfg_.collectStats)
            ++stats_.mems[index].writes;
        break;
      case mem_op::kInput:
        ms.temp = io_->input(adr);
        if (cfg_.collectStats)
            ++stats_.mems[index].inputs;
        break;
      case mem_op::kOutput:
        ms.temp = eval(c.data);
        io_->output(adr, ms.temp);
        if (cfg_.collectStats)
            ++stats_.mems[index].outputs;
        break;
    }

    if (cfg_.trace) {
        if (land(ms.opn, 5) == 5)
            cfg_.trace->memWrite(c.name, adr, ms.temp);
        if (land(ms.opn, 9) == 8)
            cfg_.trace->memRead(c.name, adr, ms.temp);
    }
}

void
SymbolicInterpreter::step()
{
    for (const auto &[c, unused] : combOrder_)
        evalComponent(*c);
    traceCycle();
    for (const auto &[c, index] : memOrder_) {
        MemoryState &ms = state_.mems[index];
        ms.adr = eval(c->addr);
        ms.opn = eval(c->opn);
    }
    for (const auto &[c, index] : memOrder_)
        updateMemory(*c, index);
    ++cycle_;
    if (cfg_.collectStats)
        ++stats_.cycles;
}

std::unique_ptr<Engine>
makeSymbolicInterpreter(const ResolvedSpec &rs, const EngineConfig &cfg)
{
    return makeSymbolicInterpreter(
        std::make_shared<const ResolvedSpec>(rs), cfg);
}

std::unique_ptr<Engine>
makeSymbolicInterpreter(std::shared_ptr<const ResolvedSpec> rs,
                        const EngineConfig &cfg)
{
    return std::make_unique<SymbolicInterpreter>(std::move(rs), cfg);
}

} // namespace asim
