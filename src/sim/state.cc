#include "sim/state.hh"

namespace asim {

void
MachineState::reset(const ResolvedSpec &rs)
{
    vars.assign(rs.numVarSlots, 0);
    mems.clear();
    mems.resize(rs.mems.size());
    for (size_t i = 0; i < rs.mems.size(); ++i) {
        const MemDesc &m = rs.mems[i];
        mems[i].cells.assign(static_cast<size_t>(m.size), 0);
        for (size_t j = 0; j < m.init.size(); ++j)
            mems[i].cells[j] = m.init[j];
        mems[i].temp = 0;
        mems[i].adr = 0;
        mems[i].opn = 0;
    }
}

} // namespace asim
