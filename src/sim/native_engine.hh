/**
 * @file
 * NativeEngine — the full ASIM II pipeline (generate C++ -> host
 * compiler -> native execution, thesis §5.2) wrapped as a true Engine
 * subclass, registered as "native" in the EngineRegistry so all three
 * of the paper's execution systems are interchangeable by name.
 *
 * The generated simulator runs out of process as a **persistent
 * child** speaking the `--serve` command protocol (DESIGN.md §5):
 * the binary is compiled once (or adopted pre-compiled from a batch,
 * Options::prebuilt), spawned lazily at the first command, and then
 * driven incrementally —
 * `run(n)` is one `RUN n` round trip advancing the child in place,
 * so stepping to cycle n costs O(n) total, not the O(n²) of the old
 * replay-from-zero adapter. The process boundary rules:
 *
 *  - cycles: `RUN n` executes exactly n §3 cycles in the child and
 *    returns the output produced by those cycles as a framed
 *    payload; reset() is a `RESET` command (no respawn);
 *  - trace: the payload's "Cycle"/"Write to"/"Read from" lines are
 *    parsed and replayed into the configured TraceSink, in order;
 *  - I/O: inputs are scripted text (Options::stdinText) shipped to
 *    the child once per spawn via `INPUT` (RESET rewinds them);
 *    non-trace payload lines accumulate in output() and are echoed
 *    to Options::ioEcho as they arrive. EngineConfig::io must be
 *    null — a callback device cannot cross the process boundary;
 *  - state: fetched lazily. run() only marks state stale; the first
 *    observer (value(), memCell(), state(), snapshot()) issues a
 *    `SNAPSHOT` command and parses the dump (machine state plus the
 *    scripted-input cursor) back into the mirror, so per-cycle
 *    stepping does not pay a state transfer per step;
 *  - faults & crashes: a child that exits, is killed, or breaks the
 *    pipe mid-protocol surfaces as SimError; the engine stays at its
 *    last confirmed cycle and keeps serving the state it had fetched
 *    for it — but if the confirmed cycle's state was never fetched,
 *    state accessors throw rather than pair cycle() with an older
 *    mirror. A fresh reset() respawns the child and recovers;
 *  - restore() is protocol-native and O(state): the snapshot's
 *    machine state, cycle counter, and input cursor ship to the
 *    child as one length-framed `RESTORE` payload — no replay from
 *    cycle zero. Snapshots taken by *any* engine over the same spec
 *    restore here (a snapshot without a byte cursor positions the
 *    child's script by skipping the snapshot's count of consumed
 *    input values as whitespace-separated tokens, matching integer
 *    input; address-0 character-input histories are not portable
 *    across the process boundary — see sim/io.hh). A child that
 *    rejects the payload is terminated and the engine reports down
 *    until reset();
 *  - stats() counts cycles only; ALU/selector/memory counters do not
 *    cross the boundary (a restored snapshot's counters are adopted
 *    as-is).
 */

#ifndef ASIM_SIM_NATIVE_ENGINE_HH
#define ASIM_SIM_NATIVE_ENGINE_HH

#include <cstdio>
#include <iosfwd>
#include <string>
#include <string_view>

#include "codegen/native.hh"
#include "sim/engine.hh"
#include "support/subprocess.hh"

namespace asim {

/** See file comment. Usually constructed via the EngineRegistry as
 *  engine "native". */
class NativeEngine : public Engine
{
  public:
    struct Options
    {
        /** Scripted input text for the generated program; shipped to
         *  the child via the INPUT command on every spawn. */
        std::string stdinText;

        /** Stream receiving the program's non-trace output lines as
         *  they arrive; nullptr discards them (they still accumulate
         *  in output()). */
        std::ostream *ioEcho = nullptr;

        /** Artifact directory; empty = fresh temp dir owned (and
         *  removed) by the engine. Ignored with `prebuilt`. */
        std::string workDir;

        /** Code generation knobs; aluSemantics, emitTrace,
         *  emitStateDump, and emitServeLoop are overridden from the
         *  EngineConfig / protocol needs. Ignored with `prebuilt`. */
        CodegenOptions codegen;

        /** Adopt an already-compiled serve-capable build instead of
         *  compiling: a homogeneous batch compiles once and every
         *  instance spawns its own child off this shared binary
         *  (Simulation::shareBatchArtifacts). Must be serve-capable,
         *  dump state, and emit trace whenever the EngineConfig
         *  carries a trace sink. */
        std::shared_ptr<const NativeBuild> prebuilt;
    };

    /** Generates and host-compiles the simulator (unless
     *  Options::prebuilt short-circuits that). The serve child
     *  spawns lazily at the first command, so a batch constructs any
     *  number of instances without holding a process per idle
     *  instance. @throws SimError when no host compiler is available
     *  or compilation fails */
    NativeEngine(std::shared_ptr<const ResolvedSpec> rs,
                 const EngineConfig &cfg, Options opts);
    NativeEngine(const ResolvedSpec &rs, const EngineConfig &cfg,
                 Options opts)
        : NativeEngine(std::make_shared<const ResolvedSpec>(rs), cfg,
                       std::move(opts))
    {}
    NativeEngine(const ResolvedSpec &rs, const EngineConfig &cfg)
        : NativeEngine(rs, cfg, Options())
    {}
    ~NativeEngine() override;

    /** True if the host compiler needed by this engine exists. */
    static bool available() { return hostCompilerAvailable(); }

    void reset() override;
    void step() override { run(1); }
    void run(uint64_t cycles) override;
    EngineSnapshot snapshot() const override;
    void restore(const EngineSnapshot &snap) override;

    /** Total cycles this engine has asked its children to execute
     *  via RUN commands (monotonic across reset()). The O(1)-restore
     *  guarantee in cycle space: restore() never adds to it. */
    uint64_t runCommandCycles() const { return runCommandCycles_; }

    /** The program's non-trace stdout so far (memory-mapped output
     *  and prompts, thesis text format). */
    const std::string &output() const { return ioText_; }

    /** The program's complete simulation output so far (trace + I/O
     *  interleaved exactly as an in-process engine writing both to
     *  one stream). */
    const std::string &combinedOutput() const { return allOut_; }

    /** Generate/compile phase timings (Figure 5.1 rows). */
    const NativeBuild &build() const { return *build_; }

    /** Wall time of the last RUN round trip. */
    double lastRunSeconds() const { return lastRunSeconds_; }

    /** The child's self-timed simulation-loop duration of the last
     *  RUN (its per-command ns report). */
    double lastSimSeconds() const { return lastSimSeconds_; }

    /** Child process id (test hook; -1 until the first command
     *  spawns the child, or after a failure reaps it). */
    long childPid() const { return child_.pid(); }

    /// @{ Crash-injection hooks for the fault-handling tests:
    /// SIGKILL the child / break the command pipe mid-protocol.
    void testKillChild() { child_.kill(); }
    void testCloseCommandPipe() { child_.closeStdin(); }
    /// @}

  protected:
    void refreshState() const override;

  private:
    struct Reply
    {
        uint64_t cycle = 0;
        double simSeconds = 0;
        std::string payload;
    };

    void ensureChild();
    void spawnChild();
    Reply exchange(const std::string &cmd,
                   std::string_view extra = {});
    [[noreturn]] void childFailed(const std::string &what);
    void ingest(std::string_view fresh);
    void replayTraceLine(std::string_view line);
    void replayMemLine(std::string_view line, bool write);
    void parseStateDump(const std::string &dump);

    Options opts_;
    std::shared_ptr<const NativeBuild> build_;
    Subprocess child_;
    FILE *errSpool_ = nullptr; ///< child stderr capture (tmpfile)
    double lastRunSeconds_ = 0;
    double lastSimSeconds_ = 0;
    uint64_t runCommandCycles_ = 0;
    std::string allOut_;   ///< simulation output consumed so far
    std::string ioText_;   ///< non-trace subset of allOut_
    bool midLine_ = false; ///< last consumed char was not a newline
    bool down_ = false; ///< child failed; reset() required to respawn
    mutable bool stateDirty_ = false; ///< state_ lags the child
    mutable uint64_t ioOps_ = 0;   ///< child input ops (SNAPSHOT)
    mutable uint64_t ioBytes_ = 0; ///< child script byte cursor
};

} // namespace asim

#endif // ASIM_SIM_NATIVE_ENGINE_HH
