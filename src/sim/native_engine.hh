/**
 * @file
 * NativeEngine — the full ASIM II pipeline (generate C++ -> host
 * compiler -> native execution, thesis §5.2) wrapped as a true Engine
 * subclass, registered as "native" in the EngineRegistry so all three
 * of the paper's execution systems are interchangeable by name.
 *
 * The generated simulator runs out of process, which draws a sharp
 * boundary the adapter honors as follows (see DESIGN.md):
 *
 *  - cycles: run(n) re-executes the deterministic program from cycle
 *    zero to the new target and consumes only the fresh suffix of its
 *    output, so repeated step() is quadratic — batch with run(n);
 *  - trace: the program's "Cycle"/"Write to"/"Read from" stdout lines
 *    are parsed and replayed into the configured TraceSink, in order;
 *  - I/O: inputs are scripted text piped to the program's stdin
 *    (Options::stdinText); non-trace output lines accumulate in
 *    output() and are echoed to Options::ioEcho as they arrive.
 *    EngineConfig::io must be null — a callback device cannot cross
 *    the process boundary;
 *  - state: the program dumps its final machine state on stderr
 *    (CodegenOptions::emitStateDump), which the adapter parses back
 *    into MachineState, so value()/memCell()/state() and equivalence
 *    checks against the in-process engines all work;
 *  - faults: a nonzero exit becomes a SimError carrying the
 *    program's diagnostic; the engine stays at its pre-run cycle;
 *  - snapshot() works; restore() throws (the process cannot adopt
 *    external state);
 *  - stats() counts cycles only; ALU/selector/memory counters do not
 *    cross the boundary.
 */

#ifndef ASIM_SIM_NATIVE_ENGINE_HH
#define ASIM_SIM_NATIVE_ENGINE_HH

#include <iosfwd>
#include <string>
#include <string_view>

#include "codegen/native.hh"
#include "sim/engine.hh"

namespace asim {

/** See file comment. Usually constructed via the EngineRegistry as
 *  engine "native". */
class NativeEngine : public Engine
{
  public:
    struct Options
    {
        /** Text piped to the generated program's standard input on
         *  every (re-)execution. */
        std::string stdinText;

        /** Stream receiving the program's non-trace output lines as
         *  they arrive; nullptr discards them (they still accumulate
         *  in output()). */
        std::ostream *ioEcho = nullptr;

        /** Artifact directory; empty = fresh temp dir owned (and
         *  removed) by the engine. */
        std::string workDir;

        /** Code generation knobs; aluSemantics, emitTrace, and
         *  emitStateDump are overridden from the EngineConfig. */
        CodegenOptions codegen;
    };

    /** Generates and host-compiles the simulator (the expensive,
     *  once-only half of the pipeline). @throws SimError when no host
     *  compiler is available or compilation fails */
    NativeEngine(std::shared_ptr<const ResolvedSpec> rs,
                 const EngineConfig &cfg, Options opts);
    NativeEngine(const ResolvedSpec &rs, const EngineConfig &cfg,
                 Options opts)
        : NativeEngine(std::make_shared<const ResolvedSpec>(rs), cfg,
                       std::move(opts))
    {}
    NativeEngine(const ResolvedSpec &rs, const EngineConfig &cfg)
        : NativeEngine(rs, cfg, Options())
    {}
    ~NativeEngine() override;

    /** True if the host compiler needed by this engine exists. */
    static bool available() { return hostCompilerAvailable(); }

    void reset() override;
    void step() override { run(1); }
    void run(uint64_t cycles) override;
    [[noreturn]] void restore(const EngineSnapshot &snap) override;

    /** The program's non-trace stdout so far (memory-mapped output
     *  and prompts, thesis text format). */
    const std::string &output() const { return ioText_; }

    /** The program's complete stdout so far (trace + I/O interleaved
     *  exactly as an in-process engine writing both to one stream). */
    const std::string &combinedOutput() const { return allOut_; }

    /** Generate/compile phase timings (Figure 5.1 rows). */
    const NativeBuild &build() const { return build_; }

    /** Wall time of the last subprocess execution. */
    double lastRunSeconds() const { return lastRun_.runSeconds; }

    /** Self-timed simulation-loop duration of the last execution
     *  (the program's SIM_NS report). */
    double lastSimSeconds() const { return lastRun_.simSeconds; }

  private:
    void advanceTo(uint64_t target);
    void ingest(std::string_view fresh);
    void replayTraceLine(std::string_view line);
    void replayMemLine(std::string_view line, bool write);
    void parseStateDump(const std::string &err);

    Options opts_;
    NativeBuild build_;
    bool ownWorkDir_ = false;
    NativeRun lastRun_;
    std::string allOut_;   ///< stdout consumed so far
    std::string ioText_;   ///< non-trace subset of allOut_
    bool midLine_ = false; ///< last consumed char was not a newline
};

} // namespace asim

#endif // ASIM_SIM_NATIVE_ENGINE_HH
