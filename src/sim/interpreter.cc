#include "sim/interpreter.hh"

#include "support/bitops.hh"

namespace asim {

Interpreter::Interpreter(std::shared_ptr<const ResolvedSpec> rs,
                         const EngineConfig &cfg)
    : Engine(std::move(rs), cfg)
{}

int32_t
Interpreter::eval(const ResolvedExpr &e) const
{
    int32_t acc = e.constTotal;
    for (const auto &t : e.terms) {
        int32_t v = t.bank == ResolvedTerm::Bank::Var
                        ? state_.vars[t.slot]
                        : state_.mems[t.slot].temp;
        if (!t.whole)
            v = land(v, t.mask);
        acc = wadd(acc, shiftField(v, t.shift));
    }
    return acc;
}

void
Interpreter::evalCombOne(const CombComp &c)
{
    if (c.kind == CompKind::Alu) {
        int32_t f = eval(c.funct);
        int32_t l = eval(c.left);
        int32_t r = eval(c.right);
        state_.vars[c.slot] = dologic(f, l, r, cfg_.aluSemantics);
    } else {
        int32_t idx = eval(c.select);
        if (idx < 0 || idx >= static_cast<int32_t>(c.cases.size())) {
            throw SimError(
                "selector " + c.name + " index " +
                std::to_string(idx) + " outside its " +
                std::to_string(c.cases.size()) + " cases (cycle " +
                std::to_string(cycle_) + ")");
        }
        state_.vars[c.slot] = eval(c.cases[idx]);
    }
}

void
Interpreter::evalCombinational()
{
    for (const auto &c : rs_->comb) {
        evalCombOne(c);
        if (cfg_.collectStats) {
            if (c.kind == CompKind::Alu)
                ++stats_.aluEvals;
            else
                ++stats_.selEvals;
        }
    }
}

void
Interpreter::latchMemOne(const MemDesc &m)
{
    MemoryState &ms = state_.mems[m.index];
    ms.adr = eval(m.addr);
    ms.opn = eval(m.opn);
}

void
Interpreter::latchMemories()
{
    for (const auto &m : rs_->mems)
        latchMemOne(m);
}

void
Interpreter::updateMemOne(const MemDesc &m)
{
    MemoryState &ms = state_.mems[m.index];
    const int32_t op = land(ms.opn, 3);
    const int32_t adr = ms.adr;

    auto checkAddr = [&]() {
        if (adr < 0 ||
            adr >= static_cast<int32_t>(ms.cells.size())) {
            throw SimError(
                "memory " + m.name + " address " +
                std::to_string(adr) + " outside 0.." +
                std::to_string(ms.cells.size() - 1) + " (cycle " +
                std::to_string(cycle_) + ")");
        }
    };

    switch (op) {
      case mem_op::kRead:
        checkAddr();
        ms.temp = ms.cells[adr];
        if (cfg_.collectStats)
            ++stats_.mems[m.index].reads;
        break;
      case mem_op::kWrite:
        checkAddr();
        ms.temp = eval(m.data);
        ms.cells[adr] = ms.temp;
        if (cfg_.collectStats)
            ++stats_.mems[m.index].writes;
        break;
      case mem_op::kInput:
        ms.temp = io_->input(adr);
        if (cfg_.collectStats)
            ++stats_.mems[m.index].inputs;
        break;
      case mem_op::kOutput:
        ms.temp = eval(m.data);
        io_->output(adr, ms.temp);
        if (cfg_.collectStats)
            ++stats_.mems[m.index].outputs;
        break;
    }

    if (cfg_.trace) {
        if (land(ms.opn, 5) == 5)
            cfg_.trace->memWrite(m.name, adr, ms.temp);
        if (land(ms.opn, 9) == 8)
            cfg_.trace->memRead(m.name, adr, ms.temp);
    }
}

void
Interpreter::updateMemories()
{
    for (const auto &m : rs_->mems)
        updateMemOne(m);
}

void
Interpreter::step()
{
    evalCombinational();
    traceCycle();
    latchMemories();
    updateMemories();
    ++cycle_;
    if (cfg_.collectStats)
        ++stats_.cycles;
}

std::unique_ptr<Engine>
makeInterpreter(const ResolvedSpec &rs, const EngineConfig &cfg)
{
    return makeInterpreter(std::make_shared<const ResolvedSpec>(rs),
                           cfg);
}

std::unique_ptr<Engine>
makeInterpreter(std::shared_ptr<const ResolvedSpec> rs,
                const EngineConfig &cfg)
{
    return std::make_unique<Interpreter>(std::move(rs), cfg);
}

} // namespace asim
