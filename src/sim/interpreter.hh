/**
 * @file
 * The table-walking interpreter — our ASIM baseline.
 *
 * ASIM "reads the specification into tables, and produces a simulation
 * run by interpreting the symbols in the table" (thesis §3.1). This
 * engine does the same: each cycle it walks the resolved component
 * tables, re-evaluating every expression term and dispatching the
 * generic `dologic` for every ALU. No specialization, no fusion — the
 * honest baseline that ASIM II is measured against in Figure 5.1.
 *
 * The per-component operations (evaluate one ALU/selector, latch one
 * memory, update one memory) are protected hooks so the partitioned
 * engine (sim/partition.hh) can drive exactly the same table-walking
 * code from its worker threads — equivalence by shared implementation,
 * not by parallel maintenance of two interpreters.
 */

#ifndef ASIM_SIM_INTERPRETER_HH
#define ASIM_SIM_INTERPRETER_HH

#include "sim/engine.hh"

namespace asim {

/** See file comment. Construct via makeInterpreter(). */
class Interpreter : public Engine
{
  public:
    Interpreter(std::shared_ptr<const ResolvedSpec> rs,
                const EngineConfig &cfg);

    void step() override;

  protected:
    int32_t eval(const ResolvedExpr &e) const;

    /** Evaluate one combinational component into its var slot. Does
     *  not touch the aggregate statistics counters (callers account
     *  for those; the partitioned engine bulk-adds them once per
     *  cycle so worker threads never share a counter). @throws
     *  SimError on a selector index outside its cases */
    void evalCombOne(const CombComp &c);

    /** Latch one memory's address and operation. */
    void latchMemOne(const MemDesc &m);

    /** Perform one memory's latched operation: cell read/write, I/O,
     *  output-latch update, per-memory statistics, and trace events.
     *  @throws SimError on an address outside the memory */
    void updateMemOne(const MemDesc &m);

    /// @{ Whole-phase serial loops (step() = comb, trace, latch,
    /// update).
    void evalCombinational();
    void latchMemories();
    void updateMemories();
    /// @}
};

} // namespace asim

#endif // ASIM_SIM_INTERPRETER_HH
