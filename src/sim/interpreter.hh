/**
 * @file
 * The table-walking interpreter — our ASIM baseline.
 *
 * ASIM "reads the specification into tables, and produces a simulation
 * run by interpreting the symbols in the table" (thesis §3.1). This
 * engine does the same: each cycle it walks the resolved component
 * tables, re-evaluating every expression term and dispatching the
 * generic `dologic` for every ALU. No specialization, no fusion — the
 * honest baseline that ASIM II is measured against in Figure 5.1.
 */

#ifndef ASIM_SIM_INTERPRETER_HH
#define ASIM_SIM_INTERPRETER_HH

#include "sim/engine.hh"

namespace asim {

/** See file comment. Construct via makeInterpreter(). */
class Interpreter : public Engine
{
  public:
    Interpreter(std::shared_ptr<const ResolvedSpec> rs,
                const EngineConfig &cfg);

    void step() override;

  private:
    int32_t eval(const ResolvedExpr &e) const;
    void evalCombinational();
    void latchMemories();
    void updateMemories();
};

} // namespace asim

#endif // ASIM_SIM_INTERPRETER_HH
