/**
 * @file
 * Bytecode VM engine (see sim/bytecode.hh).
 *
 * The VM executes the program's fused whole-cycle stream in a single
 * dispatch loop: one runCycles() call executes any number of cycles
 * without leaving the interpreter core. Dispatch is threaded
 * (computed goto) on GCC/Clang when ASIM_VM_COMPUTED_GOTO is enabled
 * at configure time, with a portable switch fallback otherwise —
 * vmDispatchMode() reports which one this build uses.
 */

#ifndef ASIM_SIM_VM_HH
#define ASIM_SIM_VM_HH

#include "sim/bytecode.hh"
#include "sim/engine.hh"

namespace asim {

/** The compiled-execution engine. Construct via makeVm(). The
 *  program, like the resolved spec, is immutable and may be shared
 *  by any number of concurrently running instances. */
class Vm : public Engine
{
  public:
    Vm(std::shared_ptr<const ResolvedSpec> rs, const EngineConfig &cfg,
       const CompilerOptions &opts);
    Vm(const ResolvedSpec &rs, const EngineConfig &cfg = {},
       const CompilerOptions &opts = {})
        : Vm(std::make_shared<const ResolvedSpec>(rs), cfg, opts)
    {}

    /** Adopt a pre-compiled shared program (batch construction). */
    Vm(std::shared_ptr<const ResolvedSpec> rs, const EngineConfig &cfg,
       std::shared_ptr<const Program> program);

    void step() override;

    /** Runs all `cycles` inside one dispatch-loop activation (the
     *  base-class implementation would pay a virtual call and a loop
     *  restart per cycle). */
    void run(uint64_t cycles) override;

    /** The compiled program (for inspection and tests). */
    const Program &program() const { return *prog_; }

    /** The shared immutable program this VM executes. */
    const std::shared_ptr<const Program> &
    programShared() const
    {
        return prog_;
    }

  private:
    /** Execute `n` cycles (n >= 1) of the fused cycle stream. */
    void runCycles(uint64_t n);

    /** Bounds-check a latched address; throws SimError. */
    void checkAddr(const MemoryState &ms, uint16_t idx,
                   uint64_t cycle) const;

    /** Selector bounds failure (cold path); throws SimError. */
    [[noreturn]] void selFail(const Instr &in, int32_t sel,
                              uint64_t cycle) const;

    /** Runtime trace checks (cold path, flag-gated). */
    void memTrace(const MemoryState &ms, const Instr &in) const;

    /** Immutable, potentially cross-thread-shared; never written. */
    std::shared_ptr<const Program> prog_;
};

/** Human-readable name of the dispatch strategy compiled into this
 *  build of the VM: "computed-goto (threaded)" or
 *  "portable switch". */
const char *vmDispatchMode();

} // namespace asim

#endif // ASIM_SIM_VM_HH
