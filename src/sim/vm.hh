/**
 * @file
 * Bytecode VM engine (see sim/bytecode.hh).
 */

#ifndef ASIM_SIM_VM_HH
#define ASIM_SIM_VM_HH

#include "sim/bytecode.hh"
#include "sim/engine.hh"

namespace asim {

/** The compiled-execution engine. Construct via makeVm(). The
 *  program, like the resolved spec, is immutable and may be shared
 *  by any number of concurrently running instances. */
class Vm : public Engine
{
  public:
    Vm(std::shared_ptr<const ResolvedSpec> rs, const EngineConfig &cfg,
       const CompilerOptions &opts);
    Vm(const ResolvedSpec &rs, const EngineConfig &cfg = {},
       const CompilerOptions &opts = {})
        : Vm(std::make_shared<const ResolvedSpec>(rs), cfg, opts)
    {}

    /** Adopt a pre-compiled shared program (batch construction). */
    Vm(std::shared_ptr<const ResolvedSpec> rs, const EngineConfig &cfg,
       std::shared_ptr<const Program> program);

    void step() override;

    /** The compiled program (for inspection and tests). */
    const Program &program() const { return *prog_; }

    /** The shared immutable program this VM executes. */
    const std::shared_ptr<const Program> &
    programShared() const
    {
        return prog_;
    }

  private:
    void exec(const std::vector<Instr> &code);

    /** Bounds-check a latched address; throws SimError. */
    void checkAddr(const MemoryState &ms, uint16_t idx) const;

    /** Selector bounds failure (cold path); throws SimError. */
    [[noreturn]] void selFail(const Instr &in) const;

    /** Runtime trace checks (cold path, flag-gated). */
    void memTrace(const MemoryState &ms, const Instr &in) const;

    void
    bumpAlu()
    {
        if (cfg_.collectStats)
            ++stats_.aluEvals;
    }

    void
    bumpSel()
    {
        if (cfg_.collectStats)
            ++stats_.selEvals;
    }

    /** Immutable, potentially cross-thread-shared; never written. */
    std::shared_ptr<const Program> prog_;
    int32_t s_[4] = {0, 0, 0, 0};
};

} // namespace asim

#endif // ASIM_SIM_VM_HH
