/**
 * @file
 * Intra-spec parallelism: bulk-synchronous partitioned execution of
 * one large design (Manticore/GSIM-style; DESIGN.md §7,
 * docs/INTERNALS.md "Partitioned execution").
 *
 * The batch layer scales across *instances*; this engine scales one
 * big specification across cores. The resolved combinational network
 * (ALUs + selectors) is **statically** partitioned at construction
 * into N balanced lanes with minimized cross-lane edges, and every
 * cycle executes as a fixed sequence of bulk-synchronous phases on a
 * private support/thread_pool:
 *
 *   comb phase(s)  every lane evaluates its components in topological
 *                  order; barrier
 *   trace          coordinator only (byte-identical trace line)
 *   latch phase    every lane latches its memories' address/operation;
 *                  barrier
 *   update phase   independent memory clusters update in parallel;
 *                  I/O-capable and trace-emitting memories run on the
 *                  coordinator in declaration order; barrier
 *
 * Cross-lane communication inside a cycle is forbidden by
 * construction: when the comb network splits into small connected
 * components, whole components are bin-packed into lanes (zero
 * cross-lane edges, one comb phase); when one component is too large
 * to balance, the network is levelized and each dependency level is
 * one bulk-synchronous phase — values cross lanes only over a phase
 * barrier, through the ordinary var array. Between cycles, lanes
 * exchange values through the memory output latches, which the cycle
 * semantics already double-buffer (`temp` holds the previous cycle's
 * value throughout comb+latch and is rewritten only in update).
 *
 * The result is **byte-identical** to the serial interpreter at any
 * lane count: identical traces, identical I/O text and cursors,
 * identical statistics and checkpoints at every cycle boundary.
 * Runtime faults (selector index, memory address) surface with the
 * serial engine's message and cycle; only the not-observable partial
 * state *behind* a faulted cycle may differ (DESIGN.md §7).
 */

#ifndef ASIM_SIM_PARTITION_HH
#define ASIM_SIM_PARTITION_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/interpreter.hh"
#include "support/thread_pool.hh"

namespace asim {

/** Below this many combinational components the facade keeps the
 *  serial interpreter even when partitions are requested: the seven
 *  hand-written paper machines never pay a barrier. Overridable via
 *  SimulationOptions::partitionMinComponents (tests force tiny
 *  crafted specs through the partitioned path). */
inline constexpr size_t kPartitionAutoThreshold = 256;

/** The static execution schedule of a PartitionedInterpreter. */
struct PartitionPlan
{
    /** Lane (= worker) count the plan was built for (>= 1). */
    unsigned lanes = 1;

    /** Combinational schedule: phases_[phase][lane] lists indices
     *  into ResolvedSpec::comb, ascending (topological within a
     *  lane). One phase when component-packed; one per dependency
     *  level when levelized. */
    std::vector<std::vector<std::vector<int32_t>>> combPhases;

    /** Memory-latch schedule: lane -> memory indices, ascending. */
    std::vector<std::vector<int32_t>> latchLanes;

    /** Memory-update schedule: lane -> memory indices in declaration
     *  order. A lane's memories are whole update clusters (closed
     *  under data-expression output-latch references), so lanes never
     *  observe each other's in-flight updates. */
    std::vector<std::vector<int32_t>> updateLanes;

    /** Memories that must update on the coordinator in global
     *  declaration order: anything that may perform I/O or emit trace
     *  events (order is observable), plus their whole clusters. */
    std::vector<int32_t> serialUpdates;

    /// @{ Plan accounting (reports, balance tests).
    bool levelized = false;   ///< false = component-packed
    size_t levels = 1;        ///< comb phases per cycle
    size_t combComponents = 0;
    size_t aluCount = 0;
    size_t selCount = 0;
    size_t totalEdges = 0;    ///< distinct comb dependency edges
    size_t crossEdges = 0;    ///< edges crossing a lane boundary
    size_t maxLaneWeight = 0; ///< comb weight of the heaviest lane
    size_t minLaneWeight = 0; ///< ... and the lightest
    /// @}

    /** One human-readable line for logs and --stats. */
    std::string summary() const;
};

/**
 * Build the static schedule for `lanes` workers.
 *
 * @param rs resolved specification
 * @param lanes worker count (clamped to >= 1)
 * @param tracingEnabled whether a trace sink will be attached — when
 *        true, memories that may emit read/write trace events join
 *        the serial update lane so event order stays declaration
 *        order
 */
PartitionPlan buildPartitionPlan(const ResolvedSpec &rs,
                                 unsigned lanes, bool tracingEnabled);

/**
 * The partitioned table-walking engine. Identical component semantics
 * to Interpreter (it *is* an Interpreter driving the same protected
 * per-component operations from worker threads); see the file comment
 * for the phase schedule and determinism argument. Construct via
 * makePartitionedInterpreter() or the "interp" registry factory with
 * SimulationOptions::partitions >= 2.
 */
class PartitionedInterpreter : public Interpreter
{
  public:
    PartitionedInterpreter(std::shared_ptr<const ResolvedSpec> rs,
                           const EngineConfig &cfg, unsigned lanes);

    void step() override;

    const PartitionPlan &plan() const { return plan_; }

  private:
    void runCombPhases();
    void runLatchPhase();
    void runUpdatePhase();

    /** Fold one bulk-synchronous phase's per-lane timestamps into the
     *  metrics registry (per-lane phase-duration + barrier-wait
     *  histograms) and, on sampled cycles, into the span tracer.
     *  Called only when metrics::timingEnabled(). */
    void recordPhaseObservations(const char *phaseName, size_t lanes);

    /** Lowest faulting component/memory key across lanes, -1 for
     *  none; faults are captured per lane so the surfaced error never
     *  depends on scheduling. */
    int32_t minFaultKey() const;
    void clearFaults();
    [[noreturn]] void throwFault(int32_t key) const;

    PartitionPlan plan_;
    ThreadPool pool_;
    std::vector<int32_t> faultKey_;      ///< per lane; -1 = no fault
    std::vector<std::string> faultMsg_;  ///< per lane

    /** Per-lane phase start/finish timestamps of the most recent
     *  bulk-synchronous phase. Written by lane tasks (disjoint slots),
     *  read by the coordinator after the barrier; populated only when
     *  metrics::timingEnabled(). Timing never feeds back into
     *  simulation state — traces/IO/checkpoints stay byte-identical
     *  with observability on or off. */
    std::vector<uint64_t> laneStartNs_;
    std::vector<uint64_t> laneFinishNs_;
};

/** Build a partitioned interpreter with `lanes` worker lanes. */
std::unique_ptr<Engine>
makePartitionedInterpreter(std::shared_ptr<const ResolvedSpec> rs,
                           const EngineConfig &cfg, unsigned lanes);

} // namespace asim

#endif // ASIM_SIM_PARTITION_HH
