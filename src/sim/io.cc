#include "sim/io.hh"

#include <algorithm>
#include <sstream>

namespace asim {

std::string
formatOutput(int32_t address, int32_t data)
{
    std::ostringstream os;
    if (address == 0)
        os << static_cast<char>(data & 0xff) << '\n';
    else if (address == 1)
        os << data << '\n';
    else
        os << "Output to address " << address << ": " << data << '\n';
    return os.str();
}

int32_t
StreamIo::input(int32_t address)
{
    if (address == 0) {
        char c = 0;
        in_->get(c);
        return static_cast<unsigned char>(c);
    }
    if (address != 1)
        *out_ << "Input from address " << address << ": ";
    int32_t v = 0;
    *in_ >> v;
    return v;
}

void
StreamIo::output(int32_t address, int32_t data)
{
    *out_ << formatOutput(address, data);
}

int32_t
VectorIo::input(int32_t)
{
    if (pos_ >= inputs_.size())
        return 0;
    return inputs_[pos_++];
}

bool
VectorIo::seekInputs(uint64_t consumed)
{
    pos_ = static_cast<size_t>(
        std::min<uint64_t>(consumed, inputs_.size()));
    return true;
}

void
VectorIo::output(int32_t address, int32_t data)
{
    outputs_.emplace_back(address, data);
    text_ += formatOutput(address, data);
}

ScriptIo::ScriptIo(std::vector<int32_t> inputs, std::ostream &out)
    : inputs_(std::move(inputs)), out_(&out)
{}

int32_t
ScriptIo::input(int32_t)
{
    if (pos_ >= inputs_.size())
        return 0;
    return inputs_[pos_++];
}

bool
ScriptIo::seekInputs(uint64_t consumed)
{
    pos_ = static_cast<size_t>(
        std::min<uint64_t>(consumed, inputs_.size()));
    return true;
}

void
ScriptIo::output(int32_t address, int32_t data)
{
    *out_ << formatOutput(address, data);
}

std::vector<int32_t>
VectorIo::outputsAt(int32_t address) const
{
    std::vector<int32_t> out;
    for (const auto &[a, d] : outputs_) {
        if (a == address)
            out.push_back(d);
    }
    return out;
}

} // namespace asim
