/**
 * @file
 * Link + optimize stage of the bytecode compiler: builds the fused
 * whole-cycle stream the VM executes (see sim/bytecode.hh for the
 * two-stage pipeline overview and docs/INTERNALS.md for the design).
 */

#ifndef ASIM_SIM_OPTIMIZER_HH
#define ASIM_SIM_OPTIMIZER_HH

#include "analysis/resolve.hh"
#include "sim/bytecode.hh"
#include "sim/engine.hh"

namespace asim {

/**
 * Populate `prog.cycle` / `prog.cycleJumpTable` / `prog.opt` from the
 * canonical per-phase streams:
 *
 *  1. link comb + TraceCycle + latch + update + EndCycle into one
 *     stream (always — the VM executes nothing else);
 *  2. elide statically safe memory bounds checks
 *     (opts.elideRedundantChecks);
 *  3. fuse adjacent pairs into superinstructions
 *     (opts.fuseSuperinstructions);
 *  4. remove dead scratch-register stores
 *     (opts.eliminateDeadStores);
 *  5. compact Nops out and remap every jump target.
 *
 * The canonical phase streams are left untouched.
 */
void linkAndOptimize(Program &prog, const ResolvedSpec &rs,
                     const CompilerOptions &opts);

} // namespace asim

#endif // ASIM_SIM_OPTIMIZER_HH
