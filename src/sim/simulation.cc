#include "sim/simulation.hh"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/campaign.hh"
#include "analysis/resolve.hh"
#include "lang/parser.hh"
#include "sim/checkpoint.hh"
#include "sim/compiler.hh"
#include "sim/io.hh"
#include "sim/native_engine.hh"
#include "sim/partition.hh"
#include "sim/symbolic.hh"
#include "sim/trace.hh"
#include "support/metrics.hh"
#include "support/tracing.hh"

namespace asim {

// EngineContext/SimulationOptions repeat the threshold as a literal
// default (256) to keep this header out of simulation.hh; catch
// drift here.
static_assert(kPartitionAutoThreshold == 256);

// ---------------------------------------------------------------------
// EngineRegistry
// ---------------------------------------------------------------------

EngineRegistry &
EngineRegistry::global()
{
    using SharedSpec = std::shared_ptr<const ResolvedSpec>;
    static EngineRegistry *reg = [] {
        auto *r = new EngineRegistry;
        r->add("interp",
               "slot-resolved table interpreter (ASIM analog); "
               "--partitions=N runs one design bulk-synchronously "
               "across N lanes",
               [](const SharedSpec &rs, const EngineContext &ctx) {
                   if (ctx.partitions >= 2 &&
                       rs->comb.size() >= ctx.partitionMinComponents) {
                       return makePartitionedInterpreter(
                           rs, ctx.config, ctx.partitions);
                   }
                   return makeInterpreter(rs, ctx.config);
               });
        r->add("symbolic",
               "name-lookup symbolic interpreter (faithful ASIM "
               "baseline)",
               [](const SharedSpec &rs, const EngineContext &ctx) {
                   return makeSymbolicInterpreter(rs, ctx.config);
               });
        r->add("vm", "compiled bytecode VM (portable ASIM II analog)",
               [](const SharedSpec &rs, const EngineContext &ctx) {
                   if (ctx.program)
                       return makeVm(rs, ctx.config, ctx.program);
                   return makeVm(rs, ctx.config, ctx.compiler);
               });
        r->add("native",
               "generated C++ through the host compiler, run as a "
               "persistent --serve subprocess (ASIM II pipeline)",
               [](const SharedSpec &rs, const EngineContext &ctx) {
                   NativeEngine::Options no;
                   no.stdinText = ctx.stdinText;
                   no.ioEcho = ctx.ioEcho;
                   no.workDir = ctx.workDir;
                   no.prebuilt = ctx.nativeBuild;
                   no.codegen.inlineConstAlu =
                       ctx.compiler.inlineConstAlu;
                   no.codegen.specializeConstMem =
                       ctx.compiler.specializeConstMem;
                   if (!no.prebuilt && no.workDir.empty()) {
                       // Cross-job build cache: identical
                       // (spec, options) constructions — repeated
                       // manifest rows especially — share one
                       // generate+compile.
                       CodegenOptions cg = no.codegen;
                       cg.aluSemantics = ctx.config.aluSemantics;
                       cg.emitTrace = ctx.config.trace != nullptr;
                       cg.emitStateDump = true;
                       cg.emitServeLoop = true;
                       no.prebuilt = compileSpecCached(
                           *rs, cg, specIdentityHash(*rs));
                   }
                   return std::make_unique<NativeEngine>(
                       rs, ctx.config, std::move(no));
               },
               /*outOfProcess=*/true);
        return r;
    }();
    return *reg;
}

void
EngineRegistry::add(const std::string &name,
                    const std::string &description, Factory factory,
                    bool outOfProcess)
{
    auto [it, inserted] = entries_.try_emplace(
        name, Entry{std::move(factory), description, outOfProcess});
    if (!inserted)
        throw SimError("engine <" + name + "> is already registered");
}

bool
EngineRegistry::contains(std::string_view name) const
{
    return entries_.find(name) != entries_.end();
}

bool
EngineRegistry::outOfProcess(std::string_view name) const
{
    auto it = entries_.find(name);
    return it != entries_.end() && it->second.outOfProcess;
}

std::vector<std::pair<std::string, std::string>>
EngineRegistry::list() const
{
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto &[name, entry] : entries_)
        out.emplace_back(name, entry.description);
    return out;
}

std::unique_ptr<Engine>
EngineRegistry::make(std::string_view name,
                     const std::shared_ptr<const ResolvedSpec> &rs,
                     const EngineContext &ctx) const
{
    auto it = entries_.find(name);
    if (it == entries_.end())
        throwUnknown(name);
    return it->second.factory(rs, ctx);
}

void
EngineRegistry::throwUnknown(std::string_view name) const
{
    std::string known;
    for (const auto &[n, entry] : entries_) {
        if (!known.empty())
            known += ", ";
        known += n;
    }
    throw SimError("unknown engine <" + std::string(name) +
                   ">; registered engines: " + known);
}

// ---------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------

namespace {

int
sourceCount(const SimulationOptions &opts)
{
    return (opts.specFile.empty() ? 0 : 1) +
           (opts.specText.empty() ? 0 : 1) + (opts.resolved ? 1 : 0);
}

std::string
renderStdin(const std::vector<int32_t> &inputs)
{
    std::string text;
    for (int32_t v : inputs) {
        text += std::to_string(v);
        text += '\n';
    }
    return text;
}

std::string
slurp(std::istream &in)
{
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

ResolvedSpec
Simulation::loadSpec(const SimulationOptions &opts, Diagnostics *diag)
{
    if (sourceCount(opts) != 1) {
        throw SimError("exactly one of specFile, specText, or "
                       "resolved must be set");
    }

    // A splice fault changes the specification itself: parse the
    // healthy spec, splice, and resolve the result. @cycle faults
    // leave the spec untouched (validated against the resolve).
    if (!opts.fault.empty()) {
        FaultSite site = parseFaultSite(opts.fault);
        if (!site.atCycle) {
            const FaultInjector &injector =
                FaultInjectorRegistry::global().get(site.mode);
            Spec spec = opts.resolved
                            ? opts.resolved->spec
                            : (!opts.specFile.empty()
                                   ? parseSpecFile(opts.specFile, diag)
                                   : parseSpec(opts.specText, diag));
            return resolve(
                injector.splice(spec, site.component, site.bit),
                diag);
        }
        ResolvedSpec rs =
            opts.resolved
                ? *opts.resolved
                : (!opts.specFile.empty()
                       ? resolve(parseSpecFile(opts.specFile, diag),
                                 diag)
                       : resolveText(opts.specText, diag));
        validateFaultSite(rs, site);
        return rs;
    }

    if (opts.resolved)
        return *opts.resolved;
    if (!opts.specFile.empty())
        return resolve(parseSpecFile(opts.specFile, diag), diag);
    return resolveText(opts.specText, diag);
}

std::vector<int32_t>
Simulation::loadScript(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw SimError("cannot read script file " + path);
    std::vector<int32_t> values;
    std::string token;
    while (in >> token) {
        if (token[0] == '#') {
            std::string rest;
            std::getline(in, rest);
            continue;
        }
        size_t used = 0;
        long long v = 0;
        try {
            v = std::stoll(token, &used, 0);
        } catch (const std::exception &) {
            used = 0;
        }
        if (used != token.size()) {
            throw SimError("script file " + path +
                           ": not an integer: " + token);
        }
        if (v < INT32_MIN || v > INT32_MAX) {
            throw SimError("script file " + path +
                           ": value out of 32-bit range: " + token);
        }
        values.push_back(static_cast<int32_t>(v));
    }
    return values;
}

Simulation::Simulation(const SimulationOptions &opts)
    : engineName_(opts.engine)
{
    if (sourceCount(opts) != 1) {
        throw SimError("exactly one of specFile, specText, or "
                       "resolved must be set");
    }
    bool spliceFault = false;
    if (!opts.fault.empty()) {
        fault_ = parseFaultSite(opts.fault);
        hasFault_ = fault_.atCycle;
        spliceFault = !fault_.atCycle;
    }
    if (opts.resolved && !spliceFault) {
        rs_ = opts.resolved;
    } else {
        // A splice fault re-resolves even off a shared resolve: the
        // shared spec stays healthy, this instance gets the spliced
        // one (loadSpec).
        tracing::Span span("sim.parse_resolve", "lifecycle");
        rs_ = std::make_shared<const ResolvedSpec>(
            loadSpec(opts, &diag_));
        span.setArgs("\"components\":" +
                     std::to_string(rs_->comb.size()));
    }
    if (hasFault_) {
        validateFaultSite(*rs_, fault_);
        faultArmed_ = true;
    }

    EngineRegistry &reg = EngineRegistry::global();
    if (!reg.contains(engineName_)) {
        EngineContext dummy;
        reg.make(engineName_, rs_, dummy); // throws, naming engines
    }

    EngineContext ctx;
    ctx.config = opts.config;
    ctx.compiler = opts.compiler;
    // A splice fault re-resolved the spec above; shared artifacts
    // compiled from the healthy spec no longer match it.
    if (!spliceFault) {
        ctx.program = opts.program;
        ctx.nativeBuild = opts.nativeBuild;
    }
    ctx.workDir = opts.workDir;
    if (opts.partitions >= 2 && engineName_ != "interp") {
        throw SimError("engine <" + engineName_ +
                       "> does not support partitioned execution; "
                       "partitions require the interp engine");
    }
    ctx.partitions = opts.partitions;
    ctx.partitionMinComponents = opts.partitionMinComponents;

    std::ostream *out = opts.ioOut ? opts.ioOut : &std::cout;

    if (reg.outOfProcess(engineName_)) {
        if (ctx.config.io) {
            throw SimError("engine <" + engineName_ +
                           "> performs I/O over stdio; use ioMode "
                           "instead of an IoDevice");
        }
        switch (opts.ioMode) {
          case IoMode::Null:
            break;
          case IoMode::Interactive:
            // Out-of-process runs consume their input up front; only
            // an explicit stream is slurped (never std::cin).
            if (opts.ioIn)
                ctx.stdinText = slurp(*opts.ioIn);
            ctx.ioEcho = out;
            break;
          case IoMode::Script:
            ctx.stdinText = renderStdin(opts.scriptInputs);
            ctx.ioEcho = out;
            break;
        }
    } else if (!ctx.config.io) {
        switch (opts.ioMode) {
          case IoMode::Null:
            break;
          case IoMode::Interactive: {
            std::istream *in = opts.ioIn ? opts.ioIn : &std::cin;
            ownedIo_ = std::make_unique<StreamIo>(*in, *out);
            break;
          }
          case IoMode::Script:
            ownedIo_ =
                std::make_unique<ScriptIo>(opts.scriptInputs, *out);
            break;
        }
        ctx.config.io = ownedIo_.get();
    }

    if (!ctx.config.trace && opts.traceStream) {
        ownedTrace_ = std::make_unique<StreamTrace>(*opts.traceStream);
        ctx.config.trace = ownedTrace_.get();
    }

    {
        // Covers engine-local compilation: bytecode for the vm,
        // generate+host-compile for native (unless shared artifacts
        // were prebuilt), partition planning for lanes >= 2.
        tracing::Span span("sim.build_engine", "lifecycle");
        span.setArgs("\"engine\":\"" + engineName_ + "\"");
        engine_ = reg.make(engineName_, rs_, ctx);
    }
    metrics::counter("sim.engines_built." + engineName_).add();
}

SimulationOptions
Simulation::shareBatchArtifacts(const SimulationOptions &opts,
                                bool forceTracingPossible)
{
    SimulationOptions shared = opts;
    const bool spliceFault =
        !shared.fault.empty() &&
        !parseFaultSite(shared.fault).atCycle;
    if (spliceFault) {
        // Bake the splice into the shared resolve once (loadSpec
        // applies it) so every instance shares the spliced spec and
        // artifacts instead of re-splicing per instance.
        shared.resolved =
            std::make_shared<const ResolvedSpec>(loadSpec(opts));
        shared.specFile.clear();
        shared.specText.clear();
        shared.fault.clear();
    } else if (!shared.resolved) {
        shared.resolved =
            std::make_shared<const ResolvedSpec>(loadSpec(opts));
        shared.specFile.clear();
        shared.specText.clear();
    }
    // Compile the expensive per-engine artifact once; every instance
    // shares it immutably. Trace checks / trace output are kept
    // whenever any trace wiring exists (or the caller promises to
    // attach a sink later), so shared artifacts behave identically
    // to per-instance compiles.
    const bool tracingPossible = forceTracingPossible ||
                                 shared.config.trace != nullptr ||
                                 shared.traceStream != nullptr;
    if (shared.engine == "vm" && !shared.program) {
        tracing::Span span("sim.compile.vm", "lifecycle");
        shared.program = std::make_shared<const Program>(
            compileProgram(*shared.resolved, shared.compiler,
                           tracingPossible));
    }
    if (shared.engine == "native" && !shared.nativeBuild) {
        // One generated+host-compiled binary for the whole batch;
        // each instance spawns its own --serve child off it. Routed
        // through the cross-job build cache (unless an explicit
        // workDir pins the artifacts), so repeated batches of the
        // same machine also share one compile.
        CodegenOptions cg;
        cg.inlineConstAlu = shared.compiler.inlineConstAlu;
        cg.specializeConstMem = shared.compiler.specializeConstMem;
        cg.aluSemantics = shared.config.aluSemantics;
        cg.emitTrace = tracingPossible;
        cg.emitStateDump = true;
        cg.emitServeLoop = true;
        tracing::Span span("sim.compile.native", "lifecycle");
        shared.nativeBuild =
            shared.workDir.empty()
                ? compileSpecCached(*shared.resolved, cg,
                                    specIdentityHash(*shared.resolved))
                : compileSpecShared(*shared.resolved, cg,
                                    shared.workDir);
    }
    return shared;
}

std::vector<std::unique_ptr<Simulation>>
Simulation::makeBatch(const SimulationOptions &opts, size_t count)
{
    SimulationOptions shared = shareBatchArtifacts(opts);
    std::vector<std::unique_ptr<Simulation>> sims;
    sims.reserve(count);
    for (size_t i = 0; i < count; ++i)
        sims.push_back(std::make_unique<Simulation>(shared));
    return sims;
}

uint64_t
Simulation::specHash() const
{
    if (specHash_ == 0)
        specHash_ = specIdentityHash(*rs_);
    return specHash_;
}

void
Simulation::saveCheckpoint(const std::string &path) const
{
    asim::saveCheckpoint(*engine_, path, engineName_);
}

void
Simulation::restoreCheckpoint(const std::string &path)
{
    restore(loadCheckpoint(path, *rs_));
}

// ---------------------------------------------------------------------
// Run control + @cycle fault injection
// ---------------------------------------------------------------------

void
Simulation::reset()
{
    engine_->reset();
    faultArmed_ = hasFault_;
}

void
Simulation::step()
{
    injectPending();
    engine_->step();
}

void
Simulation::run(uint64_t cycles)
{
    tracing::Span span("sim.run", "lifecycle");
    span.setArgs("\"engine\":\"" + engineName_ +
                 "\",\"cycles\":" + std::to_string(cycles));
    const bool timed = metrics::timingEnabled();
    const uint64_t t0 = timed ? metrics::nowNs() : 0;
    const uint64_t startCycle = timed ? engine_->cycle() : 0;
    const uint64_t startAlu = timed ? engine_->stats().aluEvals : 0;
    const uint64_t startSel = timed ? engine_->stats().selEvals : 0;

    while (cycles > 0) {
        injectPending();
        uint64_t chunk = cycles;
        // Stop the engine chunk at the fault boundary so the
        // injection lands mid-run exactly where step()-ing would put
        // it.
        if (faultArmed_ && fault_.cycle > engine_->cycle())
            chunk = std::min(chunk, fault_.cycle - engine_->cycle());
        engine_->run(chunk);
        cycles -= chunk;
    }

    if (timed) {
        // Per-engine throughput and sampled hot-loop work counters:
        // the engines accumulate SimStats in locals and flush at run
        // exit, so the deltas here are one subtraction, not a
        // per-cycle tax.
        const SimStats &end = engine_->stats();
        metrics::counter("engine.cycles." + engineName_)
            .add(engine_->cycle() - startCycle);
        metrics::counter("engine.alu_evals." + engineName_)
            .add(end.aluEvals - startAlu);
        metrics::counter("engine.sel_evals." + engineName_)
            .add(end.selEvals - startSel);
        metrics::histogram("engine.run_ns." + engineName_,
                           metrics::Histogram::exponentialBounds(
                               1000, 4.0, 16))
            .record(metrics::nowNs() - t0);
    }
}

void
Simulation::restore(const EngineSnapshot &snap)
{
    engine_->restore(snap);
    // Restoring before the fault boundary re-arms the injection
    // (continuation replays it); restoring past it means the fault
    // already lives in the restored history.
    if (hasFault_)
        faultArmed_ = snap.cycle <= fault_.cycle;
}

void
Simulation::injectPending()
{
    if (!faultArmed_ || engine_->cycle() < fault_.cycle)
        return;
    EngineSnapshot snap = engine_->snapshot();
    applyFaultToSnapshot(snap, *rs_, fault_);
    engine_->restore(snap);
    faultArmed_ = false;
}

int64_t
Simulation::defaultCycles() const
{
    return rs_->spec.cyclesSpecified ? rs_->spec.thesisIterations()
                                     : -1;
}

uint64_t
Simulation::runUntil(const Predicate &pred, uint64_t maxCycles)
{
    for (uint64_t n = 0; n < maxCycles;) {
        step();
        ++n;
        if (pred(*this))
            return n;
    }
    return maxCycles;
}

uint64_t
Simulation::runUntilValue(std::string_view name, int32_t value,
                          uint64_t maxCycles)
{
    std::string comp(name);
    return runUntil(
        [&](const Simulation &sim) {
            return sim.value(comp) == value;
        },
        maxCycles);
}

} // namespace asim
