#include "sim/checkpoint.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/serialize.hh"

namespace asim {

namespace {

/** Sanity ceilings for counts that drive allocations. Far above any
 *  real specification, far below anything that could exhaust memory
 *  off a bit-flipped count (counts are additionally validated
 *  against the bytes actually present — ByteReader::count()). */
constexpr uint64_t kMaxVars = 1u << 24;
constexpr uint64_t kMaxMems = 1u << 20;
constexpr uint64_t kMaxCells = 1u << 28;
constexpr uint64_t kMaxNameLen = 1u << 12;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SimError("cannot read checkpoint " + path);
    std::ostringstream os;
    os << in.rdbuf();
    if (in.bad())
        throw SimError("cannot read checkpoint " + path);
    return os.str();
}

std::string
hex(uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

std::string
encodeCheckpoint(const EngineSnapshot &snap, uint64_t specHash,
                 std::string_view savedBy)
{
    ByteWriter w;
    w.bytes(kCheckpointMagic);
    w.u32(kCheckpointVersion);
    w.u64(specHash);
    w.str(savedBy);
    w.u64(snap.cycle);
    w.u64(snap.ioValues);
    w.u64(snap.ioBytes);

    const SimStats &st = snap.stats;
    w.u64(st.cycles);
    w.u64(st.aluEvals);
    w.u64(st.selEvals);
    w.u64(st.mems.size());
    for (const MemStats &m : st.mems) {
        w.str(m.name);
        w.u64(m.reads);
        w.u64(m.writes);
        w.u64(m.inputs);
        w.u64(m.outputs);
    }

    const MachineState &ms = snap.state;
    w.u64(ms.vars.size());
    for (int32_t v : ms.vars)
        w.i32(v);
    w.u64(ms.mems.size());
    for (const MemoryState &m : ms.mems) {
        w.i32(m.temp);
        w.i32(m.adr);
        w.i32(m.opn);
        w.u64(m.cells.size());
        for (int32_t c : m.cells)
            w.i32(c);
    }

    w.u32(crc32(w.data()));
    return w.take();
}

EngineSnapshot
decodeCheckpoint(std::string_view bytes, const std::string &context,
                 CheckpointInfo *info)
{
    // Integrity gates before any field is trusted: magic first (is
    // this a checkpoint at all — arbitrary files read as themselves,
    // not as checksum noise), then the CRC over the whole file (did
    // it arrive intact), and only then the fields, version
    // included — a bit-flipped version reports corruption, not a
    // phantom format skew.
    {
        ByteReader probe(bytes, context);
        std::string_view magic =
            probe.bytes(kCheckpointMagic.size(), "file magic");
        if (magic != kCheckpointMagic)
            probe.fail("not an ASIM checkpoint (bad magic)");
        if (bytes.size() < kCheckpointMagic.size() + 8)
            probe.fail("truncated before the checksum trailer");
        uint32_t storedCrc = 0;
        for (int i = 0; i < 4; ++i)
            storedCrc |= static_cast<uint32_t>(static_cast<uint8_t>(
                             bytes[bytes.size() - 4 + i]))
                         << (8 * i);
        uint32_t actualCrc =
            crc32(bytes.substr(0, bytes.size() - 4));
        if (storedCrc != actualCrc)
            probe.fail("checksum mismatch (file corrupt): stored " +
                       std::to_string(storedCrc) + ", computed " +
                       std::to_string(actualCrc));
    }

    ByteReader body(bytes.substr(0, bytes.size() - 4), context);
    body.bytes(kCheckpointMagic.size(), "file magic");

    CheckpointInfo ci;
    ci.version = body.u32("format version");
    if (ci.version == 0 || ci.version > kCheckpointVersion) {
        body.fail("format version " + std::to_string(ci.version) +
                  " is newer than this build supports (max " +
                  std::to_string(kCheckpointVersion) + ")");
    }

    ci.specHash = body.u64("spec identity hash");
    ci.savedBy = body.str("saved-by tag");
    if (ci.savedBy.size() > kMaxNameLen)
        body.fail("saved-by tag implausibly long");

    EngineSnapshot snap;
    snap.cycle = body.u64("cycle count");
    ci.cycle = snap.cycle;
    snap.ioValues = body.u64("input value cursor");
    snap.ioBytes = body.u64("input byte cursor");

    snap.stats.cycles = body.u64("stats cycles");
    snap.stats.aluEvals = body.u64("stats ALU evals");
    snap.stats.selEvals = body.u64("stats selector evals");
    uint64_t statMems =
        body.count("stats memory count", kMaxMems, 8 * 4 + 4);
    snap.stats.mems.resize(statMems);
    for (uint64_t i = 0; i < statMems; ++i) {
        MemStats &m = snap.stats.mems[i];
        m.name = body.str("stats memory name");
        if (m.name.size() > kMaxNameLen)
            body.fail("stats memory name implausibly long");
        m.reads = body.u64("stats memory reads");
        m.writes = body.u64("stats memory writes");
        m.inputs = body.u64("stats memory inputs");
        m.outputs = body.u64("stats memory outputs");
    }

    uint64_t vars = body.count("state var count", kMaxVars, 4);
    snap.state.vars.resize(vars);
    for (uint64_t i = 0; i < vars; ++i)
        snap.state.vars[i] = body.i32("state var value");
    uint64_t mems = body.count("state memory count", kMaxMems, 3 * 4 + 8);
    snap.state.mems.resize(mems);
    for (uint64_t i = 0; i < mems; ++i) {
        MemoryState &m = snap.state.mems[i];
        m.temp = body.i32("memory output latch");
        m.adr = body.i32("memory address latch");
        m.opn = body.i32("memory operation latch");
        uint64_t cells = body.count("memory cell count", kMaxCells, 4);
        m.cells.resize(cells);
        for (uint64_t c = 0; c < cells; ++c)
            m.cells[c] = body.i32("memory cell value");
    }

    if (!body.atEnd())
        body.fail("trailing bytes after the machine state (" +
                  std::to_string(body.remaining()) + " unread)");

    if (info)
        *info = ci;
    return snap;
}

void
saveCheckpoint(const Engine &engine, const std::string &path,
               std::string_view savedBy)
{
    writeFileAtomic(
        path,
        encodeCheckpoint(engine.snapshot(),
                         specIdentityHash(engine.resolved()),
                         savedBy));
}

EngineSnapshot
loadCheckpoint(const std::string &path, const ResolvedSpec &rs)
{
    CheckpointInfo ci;
    EngineSnapshot snap = decodeCheckpoint(readFile(path), path, &ci);

    uint64_t expect = specIdentityHash(rs);
    if (ci.specHash != expect) {
        throw SimError("checkpoint " + path +
                       " was saved for a different specification "
                       "(spec hash " + hex(ci.specHash) +
                       ", this spec is " + hex(expect) + ")");
    }
    if (snap.state.vars.size() !=
            static_cast<size_t>(rs.numVarSlots) ||
        snap.state.mems.size() != rs.mems.size()) {
        throw SimError("checkpoint " + path +
                       " does not match the specification shape "
                       "(component counts differ)");
    }
    for (size_t i = 0; i < rs.mems.size(); ++i) {
        if (snap.state.mems[i].cells.size() !=
            static_cast<size_t>(rs.mems[i].size)) {
            throw SimError("checkpoint " + path +
                           " does not match the specification shape "
                           "(memory <" + rs.mems[i].name +
                           "> size differs)");
        }
    }
    return snap;
}

CheckpointInfo
peekCheckpoint(const std::string &path)
{
    CheckpointInfo ci;
    decodeCheckpoint(readFile(path), path, &ci);
    return ci;
}

} // namespace asim
