#include "sim/compiler.hh"

#include <set>
#include <sstream>

#include "lang/alu_ops.hh"
#include "sim/optimizer.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace asim {

namespace {

/** Which ALU operands a given constant function actually reads —
 *  mirrors the thesis' inline expansions, which only emit the
 *  expressions they need. */
void
aluOperandNeeds(int32_t funct, bool &needL, bool &needR)
{
    switch (funct) {
      case kAluZero:
      case kAluUnused:
        needL = needR = false;
        break;
      case kAluRight:
        needL = false;
        needR = true;
        break;
      case kAluLeft:
      case kAluNot:
        needL = true;
        needR = false;
        break;
      default:
        needL = needR = true;
        break;
    }
}

/** Direct opcode for a constant ALU function; AluConst for the two
 *  that keep the generic handler (Shl depends on AluSemantics). */
Op
aluDirectOp(int32_t funct)
{
    switch (funct) {
      case kAluZero:
      case kAluUnused:
        return Op::AluZero;
      case kAluRight:
        return Op::AluRight;
      case kAluLeft:
        return Op::AluLeft;
      case kAluNot:
        return Op::AluNot;
      case kAluAdd:
        return Op::AluAdd;
      case kAluSub:
        return Op::AluSub;
      case kAluMul:
        return Op::AluMul;
      case kAluAnd:
        return Op::AluAnd;
      case kAluOr:
        return Op::AluOr;
      case kAluXor:
        return Op::AluXor;
      case kAluEq:
        return Op::AluEq;
      case kAluLt:
        return Op::AluLt;
      default:
        return Op::AluConst;
    }
}

class Compiler
{
  public:
    Compiler(const ResolvedSpec &rs, const CompilerOptions &opts,
             bool tracingPossible)
        : rs_(rs), opts_(opts), tracing_(tracingPossible)
    {}

    Program
    run()
    {
        findUnobservedTemps();
        for (const auto &c : rs_.comb) {
            if (c.kind == CompKind::Alu)
                compileAlu(c);
            else
                compileSelector(c);
        }
        compileMemories();
        return std::move(prog_);
    }

  private:
    /** Emit code evaluating `e` into scratch register `reg`. */
    void
    compileExpr(std::vector<Instr> &code, const ResolvedExpr &e,
                uint8_t reg)
    {
        if (e.isConstant()) {
            code.push_back({Op::SetC, reg, 0, e.constTotal, 0, 0});
            return;
        }
        bool first = true;
        if (e.constTotal != 0) {
            code.push_back({Op::SetC, reg, 0, e.constTotal, 0, 0});
            first = false;
        }
        for (const auto &t : e.terms) {
            Op op;
            if (t.bank == ResolvedTerm::Bank::Var)
                op = first ? Op::LoadVar : Op::AccVar;
            else
                op = first ? Op::LoadTemp : Op::AccTemp;
            first = false;
            code.push_back({op, reg, static_cast<uint16_t>(t.slot),
                            t.mask, t.shift, 0});
        }
    }

    /** True if `e` is a pure single-field expression (one term, no
     *  constant part) — fusable with its destination. */
    static bool
    singleField(const ResolvedExpr &e)
    {
        return e.terms.size() == 1 && e.constTotal == 0;
    }

    /** Emit `vars[dst] = e`, fusing constants and single fields. */
    void
    compileStoreVar(std::vector<Instr> &code, const ResolvedExpr &e,
                    uint16_t dst)
    {
        if (e.isConstant()) {
            code.push_back({Op::StoreC, 0, dst, e.constTotal, 0, 0});
            return;
        }
        if (singleField(e)) {
            const ResolvedTerm &t = e.terms[0];
            Op op = t.bank == ResolvedTerm::Bank::Var ? Op::StoreFVar
                                                      : Op::StoreFTemp;
            code.push_back({op, 0, dst, t.mask, t.shift, t.slot});
            return;
        }
        compileExpr(code, e, 1);
        code.push_back({Op::StoreS, 1, dst, 0, 0, 0});
    }

    /** Emit a latch (`mems[m].adr/opn = e`) with the same fusions. */
    void
    compileLatch(std::vector<Instr> &code, const ResolvedExpr &e,
                 uint16_t mem, bool isAdr)
    {
        if (e.isConstant()) {
            code.push_back({isAdr ? Op::MemAdrC : Op::MemOpnC, 0, mem,
                            e.constTotal, 0, 0});
            return;
        }
        if (singleField(e)) {
            const ResolvedTerm &t = e.terms[0];
            Op op;
            if (t.bank == ResolvedTerm::Bank::Var)
                op = isAdr ? Op::MemAdrFVar : Op::MemOpnFVar;
            else
                op = isAdr ? Op::MemAdrFTemp : Op::MemOpnFTemp;
            code.push_back({op, 0, mem, t.mask, t.shift, t.slot});
            return;
        }
        compileExpr(code, e, 0);
        code.push_back(
            {isAdr ? Op::MemAdr : Op::MemOpn, 0, mem, 0, 0, 0});
    }

    void
    compileAlu(const CombComp &c)
    {
        auto &code = prog_.comb;
        const auto slot = static_cast<uint16_t>(c.slot);

        if (c.functConst && opts_.inlineConstAlu) {
            bool needL = true, needR = true;
            aluOperandNeeds(c.functValue, needL, needR);

            // Full constant folding when every needed operand is
            // constant (except Shl, whose thesis semantics depend on
            // the run-time AluSemantics configuration).
            int32_t lv = 0, rv = 0;
            bool lc = !needL || c.left.isConstant();
            bool rc = !needR || c.right.isConstant();
            if (needL && c.left.isConstant())
                lv = c.left.constTotal;
            if (needR && c.right.isConstant())
                rv = c.right.constTotal;
            if (lc && rc && c.functValue != kAluShl) {
                int32_t v = dologic(c.functValue, lv, rv);
                code.push_back({Op::StoreC, 0, slot, v, 0, 0});
                return;
            }

            if (needL)
                compileExpr(code, c.left, 1);
            if (needR)
                compileExpr(code, c.right, 2);
            Op direct = aluDirectOp(c.functValue);
            code.push_back({direct, 0, slot,
                            direct == Op::AluConst ? c.functValue : 0,
                            0, 0});
            return;
        }

        compileExpr(code, c.funct, 0);
        compileExpr(code, c.left, 1);
        compileExpr(code, c.right, 2);
        code.push_back({Op::AluGen, 0, slot, 0, 0, 0});
    }

    void
    compileSelector(const CombComp &c)
    {
        auto &code = prog_.comb;
        const auto slot = static_cast<uint16_t>(c.slot);

        prog_.selInfos.push_back(
            {c.name, static_cast<int32_t>(c.cases.size())});
        const auto selIdx =
            static_cast<int32_t>(prog_.selInfos.size() - 1);
        const auto count = static_cast<int32_t>(c.cases.size());

        // Microcode-ROM pattern: all cases constant -> table lookup.
        bool allConst = true;
        for (const auto &e : c.cases) {
            if (!e.isConstant()) {
                allConst = false;
                break;
            }
        }
        if (allConst && opts_.constSelectorTables) {
            const auto base =
                static_cast<int32_t>(prog_.constTable.size());
            for (const auto &e : c.cases)
                prog_.constTable.push_back(e.constTotal);
            compileExpr(code, c.select, 0);
            code.push_back(
                {Op::SelTable, 0, slot, base, count, selIdx});
            return;
        }

        // General form: switch over a jump table of case blocks.
        compileExpr(code, c.select, 0);
        const auto base = static_cast<int32_t>(prog_.jumpTable.size());
        prog_.jumpTable.resize(base + c.cases.size());
        code.push_back({Op::Switch, 0, slot, base, count, selIdx});

        std::vector<size_t> jumpFixups;
        for (size_t i = 0; i < c.cases.size(); ++i) {
            prog_.jumpTable[base + i] =
                static_cast<uint32_t>(code.size());
            compileStoreVar(code, c.cases[i], slot);
            if (i + 1 != c.cases.size()) {
                jumpFixups.push_back(code.size());
                code.push_back({Op::Jump, 0, 0, 0, 0, 0});
            }
        }
        const auto end = static_cast<int32_t>(code.size());
        for (size_t at : jumpFixups)
            code[at].a = end;
    }

    /** §5.4 heuristic: a memory's output latch can be skipped when no
     *  expression reads it, it is not traced, and its traced-access
     *  messages never print it. */
    void
    findUnobservedTemps()
    {
        observedTemps_.clear();
        auto note = [&](const ResolvedExpr &e) {
            for (const auto &t : e.terms) {
                if (t.bank == ResolvedTerm::Bank::MemTemp)
                    observedTemps_.insert(t.slot);
            }
        };
        for (const auto &c : rs_.comb) {
            note(c.funct);
            note(c.left);
            note(c.right);
            note(c.select);
            for (const auto &e : c.cases)
                note(e);
        }
        for (const auto &m : rs_.mems) {
            note(m.addr);
            note(m.data);
            note(m.opn);
        }
        for (const auto &t : rs_.traceList) {
            if (t.isMem)
                observedTemps_.insert(t.slot);
        }
    }

    void
    compileMemories()
    {
        // Latch phase: address and operation of every memory.
        for (const auto &m : rs_.mems) {
            const auto idx = static_cast<uint16_t>(m.index);
            compileLatch(prog_.latch, m.addr, idx, true);
            compileLatch(prog_.latch, m.opn, idx, false);
        }

        // Update phase, declaration order.
        for (const auto &m : rs_.mems) {
            const auto idx = static_cast<uint16_t>(m.index);
            prog_.memInfos.push_back({m.name});

            const bool mayTrace =
                tracing_ &&
                (m.traceWrites != MemDesc::TraceMode::Never ||
                 m.traceReads != MemDesc::TraceMode::Never);
            uint8_t flags = 0;
            if (tracing_ && m.traceWrites != MemDesc::TraceMode::Never)
                flags |= kMemFlagTraceW;
            if (tracing_ && m.traceReads != MemDesc::TraceMode::Never)
                flags |= kMemFlagTraceR;
            if (opts_.elideUnusedTemps &&
                !observedTemps_.count(m.index) && !mayTrace) {
                flags |= kMemFlagElideTemp;
            }

            if (m.opnConst && opts_.specializeConstMem) {
                switch (land(m.opnValue, 3)) {
                  case mem_op::kRead:
                    prog_.update.push_back(
                        {Op::MemRead, flags, idx, 0, 0, 0});
                    break;
                  case mem_op::kWrite:
                    compileExpr(prog_.update, m.data, 1);
                    prog_.update.push_back(
                        {Op::MemWrite, flags, idx, 0, 0, 0});
                    break;
                  case mem_op::kInput:
                    prog_.update.push_back(
                        {Op::MemInput, flags, idx, 0, 0, 0});
                    break;
                  case mem_op::kOutput:
                    compileExpr(prog_.update, m.data, 1);
                    prog_.update.push_back(
                        {Op::MemOutput, flags, idx, 0, 0, 0});
                    break;
                }
            } else {
                const size_t preAt = prog_.update.size();
                prog_.update.push_back(
                    {Op::MemGenPre, flags, idx, 0, 0, 0});
                compileExpr(prog_.update, m.data, 1);
                prog_.update.push_back(
                    {Op::MemGenData, flags, idx, 0, 0, 0});
                prog_.update[preAt].a =
                    static_cast<int32_t>(prog_.update.size());
            }
        }
    }

    const ResolvedSpec &rs_;
    CompilerOptions opts_;
    bool tracing_;
    Program prog_;
    std::set<int> observedTemps_;
};

} // namespace

const char *
opName(Op op)
{
    switch (op) {
      case Op::SetC: return "setc";
      case Op::LoadVar: return "ldv";
      case Op::LoadTemp: return "ldt";
      case Op::AccVar: return "accv";
      case Op::AccTemp: return "acct";
      case Op::AluGen: return "alu.gen";
      case Op::AluConst: return "alu.const";
      case Op::AluZero: return "alu.zero";
      case Op::AluRight: return "alu.right";
      case Op::AluLeft: return "alu.left";
      case Op::AluNot: return "alu.not";
      case Op::AluAdd: return "alu.add";
      case Op::AluSub: return "alu.sub";
      case Op::AluMul: return "alu.mul";
      case Op::AluAnd: return "alu.and";
      case Op::AluOr: return "alu.or";
      case Op::AluXor: return "alu.xor";
      case Op::AluEq: return "alu.eq";
      case Op::AluLt: return "alu.lt";
      case Op::StoreS: return "st";
      case Op::StoreC: return "stc";
      case Op::StoreFVar: return "stfv";
      case Op::StoreFTemp: return "stft";
      case Op::Switch: return "switch";
      case Op::Jump: return "jmp";
      case Op::SelTable: return "seltab";
      case Op::MemAdr: return "madr";
      case Op::MemOpn: return "mopn";
      case Op::MemAdrC: return "madrc";
      case Op::MemOpnC: return "mopnc";
      case Op::MemAdrFVar: return "madrfv";
      case Op::MemAdrFTemp: return "madrft";
      case Op::MemOpnFVar: return "mopnfv";
      case Op::MemOpnFTemp: return "mopnft";
      case Op::MemRead: return "mem.rd";
      case Op::MemWrite: return "mem.wr";
      case Op::MemInput: return "mem.in";
      case Op::MemOutput: return "mem.out";
      case Op::MemGenPre: return "mem.pre";
      case Op::MemGenData: return "mem.fin";
      case Op::TraceCycle: return "trace.cycle";
      case Op::EndCycle: return "end.cycle";
      case Op::Nop: return "nop";
      case Op::Ext: return "ext";
      case Op::LoadPairCC: return "ldp.cc";
      case Op::LoadPairCV: return "ldp.cv";
      case Op::LoadPairCT: return "ldp.ct";
      case Op::LoadPairVC: return "ldp.vc";
      case Op::LoadPairVV: return "ldp.vv";
      case Op::LoadPairVT: return "ldp.vt";
      case Op::LoadPairTC: return "ldp.tc";
      case Op::LoadPairTV: return "ldp.tv";
      case Op::LoadPairTT: return "ldp.tt";
      case Op::LoadAccCV: return "lda.cv";
      case Op::LoadAccCT: return "lda.ct";
      case Op::LoadAccVV: return "lda.vv";
      case Op::LoadAccVT: return "lda.vt";
      case Op::LoadAccTV: return "lda.tv";
      case Op::LoadAccTT: return "lda.tt";
      case Op::MemLatchCC: return "mlatch.cc";
      case Op::MemLatchVC: return "mlatch.vc";
      case Op::MemLatchTC: return "mlatch.tc";
      case Op::MemLatchVV: return "mlatch.vv";
      case Op::MemWriteC: return "mem.wrc";
      case Op::MemWriteV: return "mem.wrv";
      case Op::MemWriteT: return "mem.wrt";
      case Op::MemOutputC: return "mem.outc";
      case Op::MemOutputV: return "mem.outv";
      case Op::MemOutputT: return "mem.outt";
      case Op::SelTableV: return "seltab.v";
      case Op::SelTableT: return "seltab.t";
      case Op::SwitchV: return "switch.v";
      case Op::SwitchT: return "switch.t";
      case Op::StoreSJ: return "stj";
      case Op::StoreCJ: return "stcj";
      case Op::StoreFVarJ: return "stfvj";
      case Op::StoreFTempJ: return "stftj";
      case Op::MemLatchCV: return "mlatch.cv";
      case Op::MemLatchCT: return "mlatch.ct";
      case Op::MemLatchVT: return "mlatch.vt";
      case Op::MemLatchTV: return "mlatch.tv";
      case Op::MemLatchTT: return "mlatch.tt";
      case Op::MemGenDataC: return "mem.finc";
      case Op::MemGenDataV: return "mem.finv";
      case Op::MemGenDataT: return "mem.fint";
#define ASIM_ALU_FUSED_NAME(OPNAME, COMBO, L, R, V)                    \
      case Op::AluF##OPNAME##COMBO:                                    \
        return "aluf." #OPNAME "." #COMBO;
      ASIM_ALU_FUSED_ALL(ASIM_ALU_FUSED_NAME)
#undef ASIM_ALU_FUSED_NAME
      case Op::SelStoreV: return "selst.v";
      case Op::SelStoreT: return "selst.t";
      case Op::TraceLatchRun: return "trace.latchrun";
      case Op::AluGenF: return "aluf.gen";
      case Op::MemGenC: return "mem.genc";
      case Op::MemGenV: return "mem.genv";
      case Op::MemGenT: return "mem.gent";
    }
    return "?";
}

std::string
Program::disassemble() const
{
    std::ostringstream os;
    auto dump = [&](const char *title, const std::vector<Instr> &code) {
        os << title << ":\n";
        for (size_t i = 0; i < code.size(); ++i) {
            const Instr &in = code[i];
            os << "  " << i << ": " << opName(in.op) << " r"
               << int(in.reg) << " #" << in.idx << " a=" << in.a
               << " b=" << in.b << " c=" << in.c << "\n";
        }
    };
    dump("comb", comb);
    dump("latch", latch);
    dump("update", update);
    dump("cycle (fused)", cycle);
    os << "jumpTable: " << jumpTable.size()
       << " entries, constTable: " << constTable.size()
       << " entries\n";
    os << "opt: linked=" << opt.linked << " cycle=" << cycle.size()
       << " fused=" << opt.fused << " deadStores=" << opt.deadStores
       << " checksElided=" << opt.checksElided << "\n";
    return os.str();
}

Program
compileProgram(const ResolvedSpec &rs, const CompilerOptions &opts,
               bool tracingPossible)
{
    Program prog = Compiler(rs, opts, tracingPossible).run();
    linkAndOptimize(prog, rs, opts);
    return prog;
}

} // namespace asim
