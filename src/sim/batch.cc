#include "sim/batch.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <memory>
#include <sstream>

#include "analysis/fault.hh"
#include "sim/checkpoint.hh"
#include "sim/trace.hh"
#include "support/metrics.hh"
#include "support/serialize.hh"
#include "support/thread_pool.hh"
#include "support/tracing.hh"

namespace asim {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
readFileOr(const std::string &path, bool *found = nullptr)
{
    std::ifstream in(path, std::ios::binary);
    if (found)
        *found = static_cast<bool>(in);
    if (!in)
        return "";
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string
defaultLabel(const BatchJob &job)
{
    if (!job.label.empty())
        return job.label;
    if (!job.options.specFile.empty()) {
        return std::filesystem::path(job.options.specFile)
            .filename()
            .string();
    }
    return job.options.engine;
}

} // namespace

// ---------------------------------------------------------------------
// BatchResult
// ---------------------------------------------------------------------

bool
BatchResult::allOk() const
{
    return std::all_of(
        instances.begin(), instances.end(),
        [](const InstanceResult &r) { return !r.faulted; });
}

std::string
BatchResult::summaryTable() const
{
    size_t labelWidth = 8;
    for (const auto &r : instances)
        labelWidth = std::max(labelWidth, r.label.size());

    std::ostringstream os;
    os << std::left << std::setw(5) << "#" << std::setw(labelWidth + 2)
       << "spec" << std::setw(10) << "engine" << std::right
       << std::setw(12) << "cycles" << std::setw(12) << "cycles/s"
       << "  status\n";
    for (const auto &r : instances) {
        os << std::left << std::setw(5) << r.index
           << std::setw(labelWidth + 2) << r.label << std::setw(10)
           << r.engine << std::right << std::setw(12) << r.cyclesRun
           << std::setw(12) << std::fixed << std::setprecision(0)
           << (r.seconds > 0
                   ? static_cast<double>(r.cyclesRun) / r.seconds
                   : 0.0)
           << "  ";
        if (r.faulted)
            os << "FAULT: " << r.fault;
        else if (r.watchpointHit)
            os << "watchpoint after " << r.cyclesRun;
        else
            os << "ok";
        if (r.resumed && !r.faulted)
            os << " (resumed)";
        os << "\n";
    }
    os << instances.size() << " instances, " << threads
       << " threads: " << aggregate.cycles << " cycles in "
       << std::setprecision(3) << aggregate.wallSeconds << "s ("
       << std::setprecision(0) << aggregate.cyclesPerSecond()
       << " cycles/s aggregate";
    if (aggregate.faults)
        os << ", " << aggregate.faults << " faulted";
    os << ")\n";
    return os.str();
}

std::string
BatchResult::json() const
{
    std::ostringstream os;
    os << "{\n  \"threads\": " << threads << ",\n";
    os << "  \"aggregate\": {\"tasks\": " << aggregate.tasks
       << ", \"faults\": " << aggregate.faults
       << ", \"cycles\": " << aggregate.cycles
       << ", \"alu_evals\": " << aggregate.aluEvals
       << ", \"sel_evals\": " << aggregate.selEvals
       << ", \"mem_accesses\": " << aggregate.memAccesses
       << ", \"busy_seconds\": " << aggregate.busySeconds
       << ", \"wall_seconds\": " << aggregate.wallSeconds
       << ", \"cycles_per_second\": " << aggregate.cyclesPerSecond()
       << "},\n";
    os << "  \"instances\": [\n";
    for (size_t i = 0; i < instances.size(); ++i) {
        const InstanceResult &r = instances[i];
        os << "    {\"index\": " << r.index << ", \"label\": \""
           << jsonEscape(r.label) << "\", \"engine\": \""
           << jsonEscape(r.engine)
           << "\", \"cycles_requested\": " << r.cyclesRequested
           << ", \"cycles_run\": " << r.cyclesRun
           << ", \"watchpoint_hit\": "
           << (r.watchpointHit ? "true" : "false")
           << ", \"resumed\": " << (r.resumed ? "true" : "false")
           << ", \"faulted\": " << (r.faulted ? "true" : "false")
           << ", \"fault\": \"" << jsonEscape(r.fault)
           << "\", \"io_text\": \"" << jsonEscape(r.ioText)
           << "\", \"seconds\": " << r.seconds << "}"
           << (i + 1 < instances.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

// ---------------------------------------------------------------------
// BatchRunner
// ---------------------------------------------------------------------

BatchRunner::BatchRunner(BatchOptions opts)
    : opts_(opts)
{}

size_t
BatchRunner::addJob(BatchJob job)
{
    if (job.options.ioMode == IoMode::Interactive) {
        throw SimError("batch instances run concurrently; "
                       "interactive I/O is not supported — use null "
                       "or script I/O per instance");
    }
    job.label = defaultLabel(job);
    jobs_.push_back(std::move(job));
    return jobs_.size() - 1;
}

size_t
BatchRunner::addBatch(BatchJob job, size_t count)
{
    size_t first = jobs_.size();
    if (count == 0)
        return first;
    // Label before sharing: shareBatchArtifacts folds specFile into
    // the resolved spec, which would erase the file-name label.
    std::string base = defaultLabel(job);
    // Resolve (and for "vm" compile) once up front; the copies below
    // all carry the same shared immutable artifacts. captureTrace
    // attaches its sink only at run(), so it must force trace
    // checks into the shared bytecode here.
    job.options = Simulation::shareBatchArtifacts(job.options,
                                                  job.captureTrace);
    job.label = base;
    for (size_t i = 0; i < count; ++i) {
        BatchJob j = job;
        if (count > 1)
            j.label = base + "#" + std::to_string(i);
        addJob(std::move(j));
    }
    return first;
}

std::string
BatchRunner::instancePath(size_t index, const char *ext) const
{
    return (std::filesystem::path(opts_.checkpointDir) /
            ("inst-" + std::to_string(index) + ext))
        .string();
}

size_t
BatchRunner::resumeFromCheckpoints()
{
    if (opts_.checkpointDir.empty()) {
        throw SimError("resumeFromCheckpoints() needs "
                       "BatchOptions::checkpointDir");
    }
    plans_.assign(jobs_.size(), ResumePlan{});
    size_t affected = 0;
    for (size_t i = 0; i < jobs_.size(); ++i) {
        ResumePlan &plan = plans_[i];
        bool found = false;
        std::string marker = readFileOr(instancePath(i, ".done"),
                                        &found);
        if (found) {
            unsigned long long cycles = 0;
            int watch = 0;
            if (std::sscanf(marker.c_str(), "%llu %d", &cycles,
                            &watch) != 2) {
                throw SimError("corrupt batch completion marker " +
                               instancePath(i, ".done"));
            }
            plan.done = true;
            plan.doneCycles = cycles;
            plan.doneWatch = watch != 0;
        }
        plan.hasCheckpoint = std::filesystem::exists(
            instancePath(i, ".ckpt"));
        if (plan.done || plan.hasCheckpoint)
            ++affected;
    }
    return affected;
}

BatchResult
BatchRunner::run()
{
    /** Everything one instance touches while running — all owned
     *  here, none of it shared across instances. */
    struct Work
    {
        std::unique_ptr<Simulation> sim;
        std::ostringstream io;
        std::ostringstream trace;
        std::unique_ptr<StreamTrace> traceSink;
        uint64_t budget = 0;  ///< absolute target cycle
        bool skip = false;    ///< finished in a prior run
        bool pendingRestore = false; ///< job restore not yet applied
    };

    const bool checkpointing = !opts_.checkpointDir.empty();
    if (opts_.checkpointEvery != 0 && !checkpointing) {
        throw SimError(
            "BatchOptions::checkpointEvery needs checkpointDir");
    }
    if (checkpointing)
        std::filesystem::create_directories(opts_.checkpointDir);
    if (plans_.size() < jobs_.size())
        plans_.resize(jobs_.size());

    BatchResult result;
    result.instances.resize(jobs_.size());
    std::vector<Work> works(jobs_.size());

    // Persist one instance's progress. Write order is the crash
    // contract: output text (tagged with its cycle) first, the
    // captured trace sidecar second (same tag discipline), the
    // checkpoint third, the completion marker last. A kill between
    // writes leaves a text tag and the checkpoint cycle
    // disagreeing — which resume *detects* and answers by
    // restarting that instance from zero (correctness over saved
    // progress), never by stitching mismatched halves together.
    auto persist = [&](size_t i, Work &w, const InstanceResult &r,
                       bool complete) {
        writeFileAtomic(instancePath(i, ".io"),
                        std::to_string(w.sim->cycle()) + "\n" +
                            w.io.str());
        if (w.traceSink) {
            writeFileAtomic(instancePath(i, ".trace"),
                            std::to_string(w.sim->cycle()) + "\n" +
                                w.trace.str());
        }
        w.sim->saveCheckpoint(instancePath(i, ".ckpt"));
        if (complete) {
            writeFileAtomic(instancePath(i, ".done"),
                            std::to_string(w.sim->cycle()) + " " +
                                (r.watchpointHit ? "1" : "0") + "\n");
        }
    };

    // A tagged text artifact (.io or .trace): "<cycle>\n" then the
    // text verbatim. Returns false when the file is missing/corrupt
    // or its tag does not match `cycle`.
    auto loadTaggedAt = [&](size_t i, const char *ext, uint64_t cycle,
                            std::string *text) {
        bool found = false;
        std::string blob = readFileOr(instancePath(i, ext), &found);
        if (!found)
            return false;
        char *end = nullptr;
        unsigned long long tag = std::strtoull(blob.c_str(), &end, 10);
        if (end == blob.c_str() || *end != '\n' || tag != cycle)
            return false;
        *text = blob.substr(
            static_cast<size_t>(end + 1 - blob.c_str()));
        return true;
    };
    auto loadIoAt = [&](size_t i, uint64_t cycle, std::string *text) {
        return loadTaggedAt(i, ".io", cycle, text);
    };

    // Construction is serial: any SpecError/SimError here is a batch
    // configuration problem and propagates to the caller.
    for (size_t i = 0; i < jobs_.size(); ++i) {
        const BatchJob &job = jobs_[i];
        const ResumePlan &plan = plans_[i];
        Work &w = works[i];
        InstanceResult &r = result.instances[i];
        r.index = i;
        r.label = job.label;
        r.engine = job.options.engine;

        // Budget resolution needs only the resolved spec; reuse the
        // shared one when the job carries it. loadSpec bakes a
        // splice fault into the resolve, so the fault text must not
        // reach the Simulation ctor again (it would re-splice).
        std::shared_ptr<const ResolvedSpec> rs = job.options.resolved;
        bool spliceBaked = false;
        if (!rs) {
            rs = std::make_shared<const ResolvedSpec>(
                Simulation::loadSpec(job.options));
            spliceBaked = !job.options.fault.empty() &&
                          !parseFaultSite(job.options.fault).atCycle;
        }
        int64_t budget = static_cast<int64_t>(job.cycles);
        if (budget == 0 && rs->spec.cyclesSpecified)
            budget = rs->spec.thesisIterations();
        if (budget <= 0) {
            throw SimError("batch job " + std::to_string(i) + " (" +
                           job.label +
                           "): no cycle budget — the spec names no "
                           "cycle count and none was given");
        }
        w.budget = static_cast<uint64_t>(budget);
        r.cyclesRequested = w.budget;

        // A prior run finished this instance (and its budget covers
        // ours): reload its recorded results instead of re-running.
        if (plan.done &&
            (plan.doneWatch || plan.doneCycles >= w.budget)) {
            EngineSnapshot snap =
                loadCheckpoint(instancePath(i, ".ckpt"), *rs);
            if (!loadIoAt(i, snap.cycle, &r.ioText)) {
                throw SimError("batch checkpoint artifacts for "
                               "instance " + std::to_string(i) +
                               " are inconsistent (" +
                               instancePath(i, ".io") +
                               " does not match the checkpoint)");
            }
            if (job.captureTrace &&
                !loadTaggedAt(i, ".trace", snap.cycle,
                              &r.traceText)) {
                throw SimError("batch checkpoint artifacts for "
                               "instance " + std::to_string(i) +
                               " are inconsistent (" +
                               instancePath(i, ".trace") +
                               " does not match the checkpoint)");
            }
            w.skip = true;
            r.resumed = true;
            r.cyclesRun = plan.doneCycles;
            r.watchpointHit = plan.doneWatch;
            r.stats = snap.stats;
            if (opts_.captureState)
                r.state = snap.state;
            continue;
        }

        SimulationOptions opts = job.options;
        opts.resolved = rs;
        opts.specFile.clear();
        opts.specText.clear();
        if (spliceBaked)
            opts.fault.clear();
        opts.ioOut = &w.io;
        opts.traceStream = nullptr;
        if (job.captureTrace && !opts.config.trace) {
            w.traceSink = std::make_unique<StreamTrace>(w.trace);
            opts.config.trace = w.traceSink.get();
        }
        w.sim = std::make_unique<Simulation>(opts);

        // Interrupted (or budget-extended) instance: restore the
        // checkpoint and preload the output (and captured trace) it
        // had produced, so the continuation's channels match an
        // uninterrupted run's. A kill between the text and .ckpt
        // writes leaves their cycles disagreeing — then this
        // instance restarts from zero rather than resume with torn
        // output or a truncated trace.
        if (plan.hasCheckpoint) {
            EngineSnapshot snap =
                loadCheckpoint(instancePath(i, ".ckpt"), *rs);
            std::string saved;
            std::string savedTrace;
            bool intact = loadIoAt(i, snap.cycle, &saved);
            if (intact && job.captureTrace) {
                intact = loadTaggedAt(i, ".trace", snap.cycle,
                                      &savedTrace);
            }
            if (intact) {
                w.sim->restore(snap);
                w.io.str(saved);
                w.io.seekp(0, std::ios::end);
                w.trace.str(savedTrace);
                w.trace.seekp(0, std::ios::end);
                r.resumed = true;
            }
        }

        // Job-level restore (golden-checkpoint fan-out): applied in
        // the worker, not here — out-of-process engines spawn their
        // child on first contact, and a serial restore would spawn
        // the whole batch's children up front. A runner-checkpoint
        // resume above supersedes it (it carries later progress).
        w.pendingRestore =
            !r.resumed &&
            (job.restoreSnapshot || !job.restoreFrom.empty());
    }

    ThreadPool pool(opts_.threads);
    result.threads = pool.size();

    auto batchStart = std::chrono::steady_clock::now();
    tracing::Span batchSpan("batch.run", "batch");
    batchSpan.setArgs("\"instances\":" +
                      std::to_string(works.size()) +
                      ",\"threads\":" + std::to_string(pool.size()));
    pool.parallelFor(0, works.size(), [&](size_t i) {
        const BatchJob &job = jobs_[i];
        Work &w = works[i];
        InstanceResult &r = result.instances[i];
        if (w.skip) {
            metrics::counter("batch.instances_skipped").add();
            return;
        }

        tracing::Span span("batch.instance", "batch");
        auto t0 = std::chrono::steady_clock::now();
        try {
            if (w.pendingRestore) {
                if (job.restoreSnapshot)
                    w.sim->restore(*job.restoreSnapshot);
                else
                    w.sim->restoreCheckpoint(job.restoreFrom);
            }
            if (!job.watchName.empty()) {
                // Watchpoint runs honor checkpointEvery too: chunk
                // the search and persist between chunks. The hit
                // check between chunks matches runUntilValue's own
                // (after each cycle), so chunking never changes
                // where the run stops.
                for (;;) {
                    uint64_t left = w.budget > w.sim->cycle()
                                        ? w.budget - w.sim->cycle()
                                        : 0;
                    if (left == 0)
                        break;
                    uint64_t chunk = left;
                    if (checkpointing && opts_.checkpointEvery != 0)
                        chunk = std::min(chunk,
                                         opts_.checkpointEvery);
                    w.sim->runUntilValue(job.watchName,
                                         job.watchValue, chunk);
                    if (w.sim->value(job.watchName) ==
                        job.watchValue)
                        break;
                    if (checkpointing &&
                        w.sim->cycle() < w.budget)
                        persist(i, w, r, /*complete=*/false);
                }
                r.watchpointHit =
                    w.sim->value(job.watchName) == job.watchValue;
                r.cyclesRun = w.sim->cycle();
            } else {
                while (w.sim->cycle() < w.budget) {
                    uint64_t chunk = w.budget - w.sim->cycle();
                    if (checkpointing && opts_.checkpointEvery != 0) {
                        chunk = std::min(chunk,
                                         opts_.checkpointEvery);
                    }
                    w.sim->run(chunk);
                    if (checkpointing &&
                        w.sim->cycle() < w.budget)
                        persist(i, w, r, /*complete=*/false);
                }
                r.cyclesRun = w.sim->cycle();
            }
            if (checkpointing)
                persist(i, w, r, /*complete=*/true);
        } catch (const SimError &e) {
            r.faulted = true;
            r.fault = e.what();
            r.cyclesRun = w.sim->cycle();
        }
        r.seconds = secondsSince(t0);
        span.setArgs(
            "\"index\":" + std::to_string(i) + ",\"label\":\"" +
            tracing::jsonEscape(job.label) + "\",\"engine\":\"" +
            r.engine +
            "\",\"cycles\":" + std::to_string(r.cyclesRun) +
            ",\"resumed\":" + (r.resumed ? "true" : "false") +
            ",\"faulted\":" + (r.faulted ? "true" : "false"));
        metrics::counter("batch.instances").add();
        if (r.resumed)
            metrics::counter("batch.instances_resumed").add();
        if (r.faulted)
            metrics::counter("batch.instances_faulted").add();
        r.ioText = w.io.str();
        r.traceText = w.trace.str();
        r.stats = w.sim->stats();
        if (opts_.captureState) {
            // state() is fallible for out-of-process engines (a lazy
            // STATE fetch from a child that may have died since its
            // run completed); a capture failure faults this instance,
            // never the batch.
            try {
                r.state = w.sim->engine().state();
            } catch (const SimError &e) {
                if (!r.faulted) {
                    r.faulted = true;
                    r.fault = e.what();
                }
            }
        }
        // Everything observable is captured: release the instance
        // now so per-instance resources (an out-of-process engine's
        // child + pipes in particular) are bounded by the pool size,
        // not the batch size.
        w.sim.reset();
    });
    double wall = secondsSince(batchStart);

    // Deterministic aggregation: fold per-instance records in index
    // order, independent of which thread finished when.
    for (const auto &r : result.instances)
        result.aggregate.addTask(r.stats, r.seconds, r.faulted);
    result.aggregate.wallSeconds = wall;
    return result;
}

size_t
BatchRunner::loadManifest(const std::string &path,
                          const SimulationOptions &defaults,
                          uint64_t defaultCycles)
{
    std::ifstream in(path);
    if (!in)
        throw SimError("cannot read batch manifest " + path);
    const std::filesystem::path dir =
        std::filesystem::path(path).parent_path();

    auto resolvePath = [&](const std::string &p) {
        std::filesystem::path fp(p);
        return fp.is_absolute() ? fp.string() : (dir / fp).string();
    };

    size_t added = 0;
    std::string line;
    for (int lineNo = 1; std::getline(in, line); ++lineNo) {
        if (auto hash = line.find('#'); hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::string spec;
        if (!(ls >> spec))
            continue; // blank or comment-only line

        auto bad = [&](const std::string &what) {
            return SimError("batch manifest " + path + ":" +
                            std::to_string(lineNo) + ": " + what);
        };

        BatchJob job;
        job.options = defaults;
        job.options.specFile = resolvePath(spec);
        job.cycles = defaultCycles;
        size_t count = 1;

        std::string kv;
        while (ls >> kv) {
            auto eq = kv.find('=');
            if (eq == std::string::npos)
                throw bad("expected key=value, got: " + kv);
            std::string key = kv.substr(0, eq);
            std::string value = kv.substr(eq + 1);
            if (key == "cycles") {
                job.cycles = std::strtoull(value.c_str(), nullptr, 10);
                if (job.cycles == 0)
                    throw bad("cycles must be a positive integer: " +
                              value);
            } else if (key == "io") {
                job.options.ioMode = IoMode::Script;
                job.options.scriptInputs =
                    Simulation::loadScript(resolvePath(value));
            } else if (key == "engine") {
                job.options.engine = value;
            } else if (key == "count") {
                count = std::strtoull(value.c_str(), nullptr, 10);
                if (count == 0)
                    throw bad("count must be a positive integer: " +
                              value);
            } else if (key == "partitions") {
                unsigned long p =
                    std::strtoul(value.c_str(), nullptr, 10);
                if (p == 0)
                    throw bad("partitions must be a positive "
                              "integer: " + value);
                job.options.partitions = static_cast<unsigned>(p);
            } else if (key == "fault") {
                // Deliberately unwrapped: a malformed fault throws
                // parseFaultSite's own SpecError, the same text the
                // CLI --inject= path produces (spec-dependent checks
                // — component/cell/mode — follow at construction).
                parseFaultSite(value);
                job.options.fault = value;
            } else if (key == "restore") {
                job.restoreFrom = resolvePath(value);
            } else if (key == "watch") {
                auto colon = value.find(':');
                if (colon == std::string::npos)
                    throw bad("watch wants component:value, got: " +
                              value);
                job.watchName = value.substr(0, colon);
                job.watchValue = static_cast<int32_t>(std::strtol(
                    value.c_str() + colon + 1, nullptr, 0));
            } else {
                throw bad("unknown key <" + key + ">");
            }
        }

        if (count > 1)
            addBatch(std::move(job), count);
        else
            addJob(std::move(job));
        added += count;
    }
    return added;
}

} // namespace asim
