/**
 * @file
 * Machine state shared by all engines.
 *
 * Combinational outputs live in a flat var array; each memory carries
 * its cell array plus the output latch (`temp` — the thesis'
 * temp<name>, "similar to the memory buffer register in actual
 * hardware") and the per-cycle address/operation latches.
 */

#ifndef ASIM_SIM_STATE_HH
#define ASIM_SIM_STATE_HH

#include <cstdint>
#include <vector>

#include "analysis/resolve.hh"

namespace asim {

/** One memory's storage and latches. */
struct MemoryState
{
    std::vector<int32_t> cells;
    int32_t temp = 0;  ///< output latch (one-cycle delay)
    int32_t adr = 0;   ///< latched address
    int32_t opn = 0;   ///< latched operation

    bool operator==(const MemoryState &) const = default;
};

/** Complete simulator state. */
struct MachineState
{
    std::vector<int32_t> vars;
    std::vector<MemoryState> mems;

    /** Size and zero/initialize all storage for `rs` ("All components
     *  are initialized to zero before simulation begins (except
     *  memories with initial values listed)"). */
    void reset(const ResolvedSpec &rs);

    bool operator==(const MachineState &) const = default;
};

} // namespace asim

#endif // ASIM_SIM_STATE_HH
