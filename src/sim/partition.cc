#include "sim/partition.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "support/bitops.hh"
#include "support/metrics.hh"
#include "support/tracing.hh"

namespace asim {

namespace {

/** Per-lane phase-duration histograms, one per phase kind, plus the
 *  barrier-wait histogram the ROADMAP's "overlap the serial tail"
 *  item needs. Exponential ns ladders: 250ns .. ~2s. */
metrics::Histogram &
phaseHist(const char *phaseName)
{
    auto bounds = [] {
        return metrics::Histogram::exponentialBounds(250, 2.0, 24);
    };
    if (phaseName[0] == 'c') {
        static metrics::Histogram &h =
            metrics::histogram("partition.lane.comb_ns", bounds());
        return h;
    }
    if (phaseName[0] == 'l') {
        static metrics::Histogram &h =
            metrics::histogram("partition.lane.latch_ns", bounds());
        return h;
    }
    static metrics::Histogram &h =
        metrics::histogram("partition.lane.update_ns", bounds());
    return h;
}

metrics::Histogram &
barrierHist()
{
    static metrics::Histogram &h = metrics::histogram(
        "partition.barrier_wait_ns",
        metrics::Histogram::exponentialBounds(100, 2.0, 24));
    return h;
}

/** Sample one cycle in 64 for per-lane trace spans: dense enough to
 *  see lane imbalance in Perfetto, sparse enough that the trace-file
 *  mutex never becomes a per-cycle barrier of its own. */
constexpr uint64_t kSpanSampleMask = 63;

/** Chrome tid base for lane tracks (coordinator threads keep their
 *  natural small tids). */
constexpr int64_t kLaneTidBase = 1000;

/** Path-halving union-find over declaration/index space. unite()
 *  always hangs the larger root under the smaller so a cluster's
 *  canonical element is its lowest index. */
struct UnionFind
{
    std::vector<int32_t> parent;

    explicit UnionFind(size_t n) : parent(n)
    {
        std::iota(parent.begin(), parent.end(), 0);
    }

    int32_t
    find(int32_t x)
    {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }

    void
    unite(int32_t a, int32_t b)
    {
        a = find(a);
        b = find(b);
        if (a != b)
            parent[std::max(a, b)] = std::min(a, b);
    }
};

size_t
exprCost(const ResolvedExpr &e)
{
    return e.terms.size();
}

/** Per-component evaluation cost estimate: one dispatch plus one unit
 *  per expression term the interpreter will touch. Selector cases all
 *  count — the balance target is the worst case, and which case runs
 *  is data-dependent. */
size_t
combCost(const CombComp &c)
{
    size_t w = 1;
    if (c.kind == CompKind::Alu) {
        w += exprCost(c.funct) + exprCost(c.left) + exprCost(c.right);
    } else {
        w += exprCost(c.select);
        for (const auto &e : c.cases)
            w += exprCost(e);
    }
    return w;
}

/** Least-loaded lane, ties to the lowest lane id. */
size_t
lightestLane(const std::vector<size_t> &load)
{
    size_t best = 0;
    for (size_t l = 1; l < load.size(); ++l) {
        if (load[l] < load[best])
            best = l;
    }
    return best;
}

/** True when the memory's latched operation can ever be an I/O op.
 *  A constant operation decides statically; a computed one can only
 *  reach kInput/kOutput (op bit 1) when it is at least two bits
 *  wide. */
bool
mayDoIo(const MemDesc &m)
{
    if (m.opnConst)
        return land(m.opnValue, 3) >= mem_op::kInput;
    return m.opnWidth >= 2;
}

bool
mayTrace(const MemDesc &m)
{
    return m.traceWrites != MemDesc::TraceMode::Never ||
           m.traceReads != MemDesc::TraceMode::Never;
}

} // namespace

std::string
PartitionPlan::summary() const
{
    std::ostringstream os;
    os << "partition plan: " << lanes << " lanes, "
       << (aluCount + selCount) << " comb (" << aluCount << " alu, "
       << selCount << " sel), "
       << (levelized ? "levelized" : "component-packed") << ", "
       << levels << " phase" << (levels == 1 ? "" : "s") << ", "
       << combComponents << " components, " << crossEdges << "/"
       << totalEdges << " cross edges, lane weight "
       << minLaneWeight << ".." << maxLaneWeight << ", "
       << serialUpdates.size() << " serial mem"
       << (serialUpdates.size() == 1 ? "" : "s");
    return os.str();
}

PartitionPlan
buildPartitionPlan(const ResolvedSpec &rs, unsigned lanes,
                   bool tracingEnabled)
{
    PartitionPlan plan;
    plan.lanes = std::max(1u, lanes);
    const size_t L = plan.lanes;
    const int32_t n = static_cast<int32_t>(rs.comb.size());

    for (const auto &c : rs.comb) {
        if (c.kind == CompKind::Alu)
            ++plan.aluCount;
        else
            ++plan.selCount;
    }

    // ---- Combinational dependency edges (producer comb index ->
    // consumer comb index), deduplicated per consumer. Memory output
    // latches are not edges: they hold the previous cycle's value for
    // the whole comb phase.
    std::vector<int32_t> slotToComb(rs.numVarSlots, -1);
    for (int32_t i = 0; i < n; ++i)
        slotToComb[rs.comb[i].slot] = i;

    std::vector<std::vector<int32_t>> deps(n);
    std::vector<size_t> weight(n);
    auto addExpr = [&](int32_t i, const ResolvedExpr &e) {
        for (const auto &t : e.terms) {
            if (t.bank != ResolvedTerm::Bank::Var)
                continue;
            int32_t j = slotToComb[t.slot];
            if (j >= 0 && j != i)
                deps[i].push_back(j);
        }
    };
    size_t totalWeight = 0;
    for (int32_t i = 0; i < n; ++i) {
        const CombComp &c = rs.comb[i];
        weight[i] = combCost(c);
        totalWeight += weight[i];
        if (c.kind == CompKind::Alu) {
            addExpr(i, c.funct);
            addExpr(i, c.left);
            addExpr(i, c.right);
        } else {
            addExpr(i, c.select);
            for (const auto &e : c.cases)
                addExpr(i, e);
        }
        std::sort(deps[i].begin(), deps[i].end());
        deps[i].erase(std::unique(deps[i].begin(), deps[i].end()),
                      deps[i].end());
        plan.totalEdges += deps[i].size();
    }

    // ---- Connected components of the comb network.
    UnionFind uf(n);
    for (int32_t i = 0; i < n; ++i) {
        for (int32_t j : deps[i])
            uf.unite(i, j);
    }
    std::vector<size_t> groupWeight(n, 0);
    size_t maxGroupWeight = 0;
    for (int32_t i = 0; i < n; ++i) {
        int32_t r = uf.find(i);
        if (groupWeight[r] == 0)
            ++plan.combComponents;
        groupWeight[r] += weight[i];
        maxGroupWeight = std::max(maxGroupWeight, groupWeight[r]);
    }

    std::vector<int32_t> laneOf(n, 0);
    // A component-packed schedule is worth it only when no single
    // connected component dominates the balance: allow the heaviest
    // component up to 25% over a perfect per-lane share.
    const size_t share = (totalWeight + L - 1) / std::max<size_t>(L, 1);
    const bool pack =
        L == 1 || n == 0 || maxGroupWeight * 4 <= share * 5;

    if (pack) {
        // ---- Whole components into lanes, heaviest first (LPT).
        // Zero cross-lane edges; one bulk-synchronous comb phase.
        struct Group
        {
            int32_t root;
            size_t weight;
        };
        std::vector<Group> groups;
        for (int32_t i = 0; i < n; ++i) {
            if (uf.find(i) == i)
                groups.push_back({i, groupWeight[i]});
        }
        std::stable_sort(groups.begin(), groups.end(),
                         [](const Group &a, const Group &b) {
                             return a.weight > b.weight;
                         });
        std::vector<size_t> load(L, 0);
        std::vector<int32_t> laneOfRoot(n, 0);
        for (const Group &g : groups) {
            size_t lane = lightestLane(load);
            load[lane] += g.weight;
            laneOfRoot[g.root] = static_cast<int32_t>(lane);
        }
        for (int32_t i = 0; i < n; ++i)
            laneOf[i] = laneOfRoot[uf.find(i)];

        if (n > 0) {
            plan.combPhases.emplace_back(L);
            for (int32_t i = 0; i < n; ++i)
                plan.combPhases[0][laneOf[i]].push_back(i);
        }
        plan.levels = n == 0 ? 0 : 1;
        plan.levelized = false;
    } else {
        // ---- Levelized schedule: one phase per dependency depth,
        // every lane's work at one level is independent of its peers'
        // (producers all sit at strictly lower levels, sealed by the
        // phase barrier). Lane choice is affinity-greedy: prefer the
        // lane holding most of a component's producers, unless that
        // lane is already past its balance cap for the level.
        std::vector<int32_t> level(n, 0);
        size_t levels = 0;
        for (int32_t i = 0; i < n; ++i) {
            for (int32_t j : deps[i])
                level[i] = std::max(level[i], level[j] + 1);
            levels = std::max(levels, static_cast<size_t>(level[i]) + 1);
        }
        std::vector<std::vector<int32_t>> byLevel(levels);
        for (int32_t i = 0; i < n; ++i)
            byLevel[level[i]].push_back(i);

        plan.combPhases.assign(levels,
                               std::vector<std::vector<int32_t>>(L));
        std::vector<size_t> affinity(L, 0);
        for (size_t lvl = 0; lvl < levels; ++lvl) {
            std::vector<int32_t> order = byLevel[lvl];
            std::stable_sort(order.begin(), order.end(),
                             [&](int32_t a, int32_t b) {
                                 return weight[a] > weight[b];
                             });
            size_t levelWeight = 0;
            size_t maxW = 0;
            for (int32_t i : order) {
                levelWeight += weight[i];
                maxW = std::max(maxW, weight[i]);
            }
            const size_t cap = (levelWeight * 5) / (L * 4) + maxW;
            std::vector<size_t> load(L, 0);
            for (int32_t i : order) {
                std::fill(affinity.begin(), affinity.end(), 0);
                for (int32_t j : deps[i])
                    affinity[laneOf[j]] += 1;
                // Best affinity among lanes under the cap; fall back
                // to the lightest lane when every lane is capped.
                int32_t lane = -1;
                for (size_t l = 0; l < L; ++l) {
                    if (load[l] + weight[i] > cap)
                        continue;
                    if (lane < 0 || affinity[l] > affinity[lane] ||
                        (affinity[l] == affinity[lane] &&
                         load[l] < load[lane])) {
                        lane = static_cast<int32_t>(l);
                    }
                }
                if (lane < 0)
                    lane = static_cast<int32_t>(lightestLane(load));
                load[lane] += weight[i];
                laneOf[i] = lane;
                plan.combPhases[lvl][lane].push_back(i);
            }
            // Restore ascending (topological) order within the lane.
            for (auto &list : plan.combPhases[lvl])
                std::sort(list.begin(), list.end());
        }
        plan.levels = levels;
        plan.levelized = true;
    }

    // Cross-lane edge count and lane weights, for reporting/tests.
    std::vector<size_t> laneWeight(L, 0);
    for (int32_t i = 0; i < n; ++i) {
        laneWeight[laneOf[i]] += weight[i];
        for (int32_t j : deps[i]) {
            if (laneOf[j] != laneOf[i])
                ++plan.crossEdges;
        }
    }
    if (n > 0) {
        plan.maxLaneWeight =
            *std::max_element(laneWeight.begin(), laneWeight.end());
        plan.minLaneWeight =
            *std::min_element(laneWeight.begin(), laneWeight.end());
    }

    // ---- Memory latch phase: every memory only reads vars and output
    // latches, so any balanced split works (LPT by latch cost).
    const int32_t nm = static_cast<int32_t>(rs.mems.size());
    plan.latchLanes.assign(L, {});
    {
        std::vector<int32_t> order(nm);
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [&](int32_t a, int32_t b) {
                             return exprCost(rs.mems[a].addr) +
                                        exprCost(rs.mems[a].opn) >
                                    exprCost(rs.mems[b].addr) +
                                        exprCost(rs.mems[b].opn);
                         });
        std::vector<size_t> load(L, 0);
        for (int32_t mi : order) {
            size_t lane = lightestLane(load);
            load[lane] +=
                1 + exprCost(rs.mems[mi].addr) + exprCost(rs.mems[mi].opn);
            plan.latchLanes[lane].push_back(mi);
        }
        for (auto &list : plan.latchLanes)
            std::sort(list.begin(), list.end());
    }

    // ---- Memory update phase. The serial loop has an intra-phase
    // order: memory j's data expression may read memory i's output
    // latch *after* i updated it this cycle (declaration order, i < j).
    // Cluster memories whose data expressions reference other output
    // latches; a cluster executes on one lane in declaration order.
    // Clusters touching the I/O device or the trace sink go to the
    // coordinator's serial list — their side-effect order is
    // observable and must stay global declaration order.
    UnionFind muf(nm);
    for (int32_t mi = 0; mi < nm; ++mi) {
        for (const auto &t : rs.mems[mi].data.terms) {
            if (t.bank == ResolvedTerm::Bank::MemTemp &&
                t.slot != mi)
                muf.unite(mi, t.slot);
        }
    }
    std::vector<char> rootSerial(nm, 0);
    for (int32_t mi = 0; mi < nm; ++mi) {
        if (mayDoIo(rs.mems[mi]) ||
            (tracingEnabled && mayTrace(rs.mems[mi])))
            rootSerial[muf.find(mi)] = 1;
    }
    std::vector<size_t> clusterWeight(nm, 0);
    for (int32_t mi = 0; mi < nm; ++mi)
        clusterWeight[muf.find(mi)] +=
            1 + exprCost(rs.mems[mi].data);

    plan.updateLanes.assign(L, {});
    {
        std::vector<int32_t> roots;
        for (int32_t mi = 0; mi < nm; ++mi) {
            if (muf.find(mi) == mi && !rootSerial[mi])
                roots.push_back(mi);
        }
        std::stable_sort(roots.begin(), roots.end(),
                         [&](int32_t a, int32_t b) {
                             return clusterWeight[a] > clusterWeight[b];
                         });
        std::vector<size_t> load(L, 0);
        std::vector<int32_t> laneOfRoot(nm, -1);
        for (int32_t r : roots) {
            size_t lane = lightestLane(load);
            load[lane] += clusterWeight[r];
            laneOfRoot[r] = static_cast<int32_t>(lane);
        }
        for (int32_t mi = 0; mi < nm; ++mi) {
            int32_t r = muf.find(mi);
            if (rootSerial[r])
                plan.serialUpdates.push_back(mi);
            else
                plan.updateLanes[laneOfRoot[r]].push_back(mi);
        }
        // Ascending memory index == declaration order within a lane.
        for (auto &list : plan.updateLanes)
            std::sort(list.begin(), list.end());
    }

    return plan;
}

PartitionedInterpreter::PartitionedInterpreter(
    std::shared_ptr<const ResolvedSpec> rs, const EngineConfig &cfg,
    unsigned lanes)
    : Interpreter(rs, cfg),
      plan_(buildPartitionPlan(*rs, lanes, cfg.trace != nullptr)),
      pool_(plan_.lanes),
      faultKey_(plan_.lanes, -1),
      faultMsg_(plan_.lanes),
      laneStartNs_(plan_.lanes, 0),
      laneFinishNs_(plan_.lanes, 0)
{}

void
PartitionedInterpreter::recordPhaseObservations(const char *phaseName,
                                                size_t lanes)
{
    uint64_t maxFinish = 0;
    for (size_t l = 0; l < lanes; ++l)
        maxFinish = std::max(maxFinish, laneFinishNs_[l]);
    metrics::Histogram &perLane = phaseHist(phaseName);
    metrics::Histogram &barrier = barrierHist();
    const bool sampled =
        tracing::enabled() && (cycle_ & kSpanSampleMask) == 0;
    for (size_t l = 0; l < lanes; ++l) {
        const uint64_t busy = laneFinishNs_[l] - laneStartNs_[l];
        perLane.record(busy);
        // Barrier wait: how long this lane's result sat idle waiting
        // for the slowest lane of the phase.
        barrier.record(maxFinish - laneFinishNs_[l]);
        if (sampled) {
            tracing::completeEvent(
                phaseName, "partition", laneStartNs_[l], busy,
                "\"lane\":" + std::to_string(l) +
                    ",\"cycle\":" + std::to_string(cycle_),
                kLaneTidBase + static_cast<int64_t>(l));
        }
    }
}

void
PartitionedInterpreter::clearFaults()
{
    std::fill(faultKey_.begin(), faultKey_.end(), -1);
}

int32_t
PartitionedInterpreter::minFaultKey() const
{
    int32_t best = -1;
    for (int32_t k : faultKey_) {
        if (k >= 0 && (best < 0 || k < best))
            best = k;
    }
    return best;
}

void
PartitionedInterpreter::throwFault(int32_t key) const
{
    for (size_t l = 0; l < faultKey_.size(); ++l) {
        if (faultKey_[l] == key)
            throw SimError(faultMsg_[l]);
    }
    throw SimError("partitioned engine lost a captured fault");
}

void
PartitionedInterpreter::runCombPhases()
{
    const bool timed = metrics::timingEnabled();
    for (const auto &phase : plan_.combPhases) {
        clearFaults();
        pool_.parallelFor(0, phase.size(), [&](size_t lane) {
            if (timed)
                laneStartNs_[lane] = metrics::nowNs();
            for (int32_t ci : phase[lane]) {
                try {
                    evalCombOne(rs_->comb[ci]);
                } catch (const SimError &e) {
                    // Capture instead of throwing through the pool:
                    // the surfaced fault must be the lowest *schedule*
                    // index across lanes, not the lowest lane id.
                    faultKey_[lane] = ci;
                    faultMsg_[lane] = e.what();
                    break;
                }
            }
            if (timed)
                laneFinishNs_[lane] = metrics::nowNs();
        });
        if (timed)
            recordPhaseObservations("comb", phase.size());
        int32_t fault = minFaultKey();
        if (fault >= 0)
            throwFault(fault);
    }
}

void
PartitionedInterpreter::runLatchPhase()
{
    const bool timed = metrics::timingEnabled();
    pool_.parallelFor(0, plan_.latchLanes.size(), [&](size_t lane) {
        if (timed)
            laneStartNs_[lane] = metrics::nowNs();
        for (int32_t mi : plan_.latchLanes[lane])
            latchMemOne(rs_->mems[mi]);
        if (timed)
            laneFinishNs_[lane] = metrics::nowNs();
    });
    if (timed)
        recordPhaseObservations("latch", plan_.latchLanes.size());
}

void
PartitionedInterpreter::runUpdatePhase()
{
    const bool timed = metrics::timingEnabled();
    clearFaults();
    pool_.parallelFor(0, plan_.updateLanes.size(), [&](size_t lane) {
        if (timed)
            laneStartNs_[lane] = metrics::nowNs();
        for (int32_t mi : plan_.updateLanes[lane]) {
            try {
                updateMemOne(rs_->mems[mi]);
            } catch (const SimError &e) {
                faultKey_[lane] = mi;
                faultMsg_[lane] = e.what();
                break;
            }
        }
        if (timed)
            laneFinishNs_[lane] = metrics::nowNs();
    });
    if (timed)
        recordPhaseObservations("update", plan_.updateLanes.size());
    // Serial (I/O + trace) memories run on the coordinator in global
    // declaration order. If a parallel lane faulted, execute exactly
    // the prefix a serial run would have reached so the I/O stream and
    // trace bytes match the serial engine at the fault point.
    const int32_t fault = minFaultKey();
    const uint64_t tailStart = timed ? metrics::nowNs() : 0;
    for (int32_t mi : plan_.serialUpdates) {
        if (fault >= 0 && mi >= fault)
            break;
        updateMemOne(rs_->mems[mi]);
    }
    if (timed) {
        // The coordinator-only tail every lane waits behind — the
        // overlap candidate named in ROADMAP's partition item.
        static metrics::Histogram &tail = metrics::histogram(
            "partition.serial_tail_ns",
            metrics::Histogram::exponentialBounds(100, 2.0, 24));
        tail.record(metrics::nowNs() - tailStart);
    }
    if (fault >= 0)
        throwFault(fault);
}

void
PartitionedInterpreter::step()
{
    runCombPhases();
    // Aggregate comb counters are bulk-added from the plan so worker
    // lanes never share a counter; the totals per completed phase
    // match the serial engine's per-component increments.
    if (cfg_.collectStats) {
        stats_.aluEvals += plan_.aluCount;
        stats_.selEvals += plan_.selCount;
    }
    traceCycle();
    runLatchPhase();
    runUpdatePhase();
    ++cycle_;
    if (cfg_.collectStats)
        ++stats_.cycles;
}

std::unique_ptr<Engine>
makePartitionedInterpreter(std::shared_ptr<const ResolvedSpec> rs,
                           const EngineConfig &cfg, unsigned lanes)
{
    return std::make_unique<PartitionedInterpreter>(std::move(rs), cfg,
                                                    lanes);
}

} // namespace asim
