/**
 * @file
 * BatchRunner — bulk-parallel execution of independent simulations.
 *
 * The paper's pipeline produces one simulator per specification; the
 * throughput story for modern RTL workloads is *many* independent
 * instances saturating all host cores off shared immutable inputs.
 * BatchRunner is that driver:
 *
 *  - a **homogeneous** batch (addBatch) shards N instances off one
 *    parse+resolve — and one compiled artifact per engine family:
 *    a shared bytecode program for "vm", a shared generated+compiled
 *    binary for "native" (Simulation::shareBatchArtifacts);
 *  - a **heterogeneous** batch (addJob / loadManifest) mixes specs,
 *    engines, cycle budgets, per-instance input scripts, and
 *    watchpoints in one run;
 *  - run() executes every job on a support/thread_pool work queue
 *    and merges results **deterministically**: InstanceResults come
 *    back ordered by instance index with contents (state, trace,
 *    I/O text, statistics) byte-identical under any thread count —
 *    the property tests/sim/batch_test.cc enforces;
 *  - with BatchOptions::checkpointDir, instances leave durable
 *    checkpoints (sim/checkpoint.hh) as they run, and
 *    resumeFromCheckpoints() lets a re-created runner — after a
 *    crash, a kill, or a budget extension — re-run only the
 *    instances that never finished.
 *
 * What is shared between concurrently running instances is immutable
 * (ResolvedSpec, Program, NativeBuild — see DESIGN.md §7);
 * everything mutable (MachineState, statistics, I/O devices, trace
 * sinks, output buffers) is per-instance. The "native" engine is
 * batch-eligible since the persistent --serve protocol (DESIGN.md
 * §5): each instance owns one long-lived child process advanced
 * incrementally, and live children are bounded by the *pool* size,
 * not the batch size — children spawn lazily at the instance's
 * first cycle and the runner releases each instance as soon as its
 * results are captured. Interactive I/O remains refused —
 * concurrent instances cannot multiplex one terminal.
 */

#ifndef ASIM_SIM_BATCH_HH
#define ASIM_SIM_BATCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulation.hh"
#include "support/stats.hh"

namespace asim {

/** One simulation to run as part of a batch. */
struct BatchJob
{
    /** Full per-job pipeline options. Stream pointers (ioOut,
     *  traceStream) are ignored — the runner substitutes per-instance
     *  buffers so parallel jobs never share a stream. An explicit
     *  config.io / config.trace is honored but must not be shared
     *  with any other job in the batch. */
    SimulationOptions options;

    /** Cycle budget; 0 means the spec's `=` count (an error when the
     *  spec names none). The budget is an *absolute* target cycle:
     *  an instance restored from `restoreFrom`/`restoreSnapshot` at
     *  cycle N runs only the remaining budget-N cycles. */
    uint64_t cycles = 0;

    /** When set, restore this checkpoint file (sim/checkpoint.hh)
     *  before the instance runs — the fault-campaign pattern: every
     *  instance resumes one shared golden checkpoint instead of
     *  replaying from cycle zero. The checkpoint must match the
     *  job's specification (identity hash is verified); a mismatch
     *  or unreadable file faults the instance, not the batch. */
    std::string restoreFrom;

    /** Like restoreFrom but pre-decoded: campaigns decode the golden
     *  checkpoint once and share the immutable snapshot across every
     *  instance. Takes precedence over restoreFrom. */
    std::shared_ptr<const EngineSnapshot> restoreSnapshot;

    /** Optional watchpoint: stop early once component `watchName`
     *  reads `watchValue` (checked after each cycle). */
    std::string watchName;
    int32_t watchValue = 0;

    /** Capture the thesis-format per-cycle trace into
     *  InstanceResult::traceText. Off by default: tracing a large
     *  batch is rarely wanted and never free. */
    bool captureTrace = false;

    /** Display label for reports; defaults to the spec file name or
     *  the engine name. */
    std::string label;
};

/** What one instance produced, every channel per-instance. */
struct InstanceResult
{
    size_t index = 0;          ///< position in the batch
    std::string label;
    std::string engine;
    uint64_t cyclesRequested = 0;
    uint64_t cyclesRun = 0;
    bool watchpointHit = false;
    bool resumed = false;      ///< continued from / finished in a
                               ///< prior run's checkpoints
    bool faulted = false;
    std::string fault;         ///< SimError text when faulted
    std::string ioText;        ///< scripted outputs, thesis format
    std::string traceText;     ///< captured trace (captureTrace)
    SimStats stats;
    MachineState state;        ///< final machine state
    double seconds = 0;        ///< this instance's wall time
};

/** A completed batch: per-instance results in index order plus the
 *  deterministic aggregate. */
struct BatchResult
{
    std::vector<InstanceResult> instances;
    RunStats aggregate;
    unsigned threads = 0;      ///< pool size that ran the batch

    /** True when no instance faulted. */
    bool allOk() const;

    /** Render the CLI summary table. */
    std::string summaryTable() const;

    /** Render a JSON report (asim-run --json). */
    std::string json() const;
};

/** Execution knobs for a BatchRunner. */
struct BatchOptions
{
    /** Worker threads; 0 means ThreadPool::hardwareThreads(). */
    unsigned threads = 0;

    /** Keep each instance's final MachineState in the result (memory
     *  proportional to batch size x spec size when on). */
    bool captureState = true;

    /** When set, every instance leaves durable artifacts here
     *  (sim/checkpoint.hh): `inst-<i>.ckpt` (latest checkpoint),
     *  `inst-<i>.io` (scripted output up to that checkpoint), for
     *  captureTrace jobs `inst-<i>.trace` (captured trace up to
     *  that checkpoint, same cycle-tag discipline), and — on
     *  completion — `inst-<i>.done`. A later runner with the
     *  same job list calls resumeFromCheckpoints() to skip finished
     *  instances and continue interrupted ones (resumed instances
     *  merge the saved output/trace with the continuation's, so the
     *  final channels match an uninterrupted run). Created on
     *  demand. */
    std::string checkpointDir;

    /** Cycles between periodic mid-run checkpoints (plain-budget
     *  and watchpoint jobs alike). 0 = checkpoint only when an
     *  instance finishes. Requires checkpointDir. */
    uint64_t checkpointEvery = 0;
};

/** See file comment. */
class BatchRunner
{
  public:
    explicit BatchRunner(BatchOptions opts = {});

    /**
     * Append one heterogeneous job. @return the job's instance index
     * @throws SimError for interactive I/O (see file comment)
     */
    size_t addJob(BatchJob job);

    /** Append `count` homogeneous instances sharing one resolve (and
     *  one compiled program for "vm", one compiled binary for
     *  "native"). Per-instance fields of `job` (cycles, watchpoint,
     *  label) apply to every instance; labels get an `#i` suffix.
     *  @return index of the first instance */
    size_t addBatch(BatchJob job, size_t count);

    /** Jobs added so far. */
    size_t jobCount() const { return jobs_.size(); }

    /**
     * Build every simulation (serially — construction cost is the
     * shared-resolve path's to amortize), run all instances on the
     * thread pool, and merge results by instance index.
     *
     * Spec/engine errors (SpecError, SimError during construction)
     * propagate; *runtime* faults inside an instance are captured in
     * its InstanceResult instead of aborting the batch.
     */
    BatchResult run();

    /**
     * Parse a batch manifest: one job per line,
     *
     *     <spec-file> [key=value]...   # comment
     *
     * with keys `cycles` (uint), `io` (input script path, parsed by
     * Simulation::loadScript), `engine` (registry name), `count`
     * (instances of this line), `watch` (`component:value`), `fault`
     * (a fault in the shared grammar of analysis/fault.hh —
     * malformed faults produce the same SpecError text as
     * `asim-run --inject=`), and `restore` (checkpoint file restored
     * before running, see BatchJob::restoreFrom). Relative
     * spec/io/restore paths resolve against the manifest's
     * directory. `defaults` seeds every job's SimulationOptions
     * (engine, compiler flags, ALU semantics...); `defaultCycles`,
     * when nonzero, is the budget for lines without a `cycles=` key
     * (overriding any spec `=` count, like the CLI's --cycles).
     * @throws SimError on unreadable files or malformed lines
     */
    size_t loadManifest(const std::string &path,
                        const SimulationOptions &defaults,
                        uint64_t defaultCycles = 0);

    /**
     * Resume support: scan BatchOptions::checkpointDir for the
     * artifacts a previous run of this same job list left behind
     * (a *killed* run leaves checkpoints without `.done` markers;
     * a finished one leaves both). Instances with a `.done` marker
     * satisfying their budget are not re-run — their recorded
     * results are reloaded; instances with a checkpoint restore it
     * and execute only the remaining cycles. Output text saved at
     * the last checkpoint is preloaded, so a resumed instance's
     * ioText matches an uninterrupted run's.
     *
     * Call after every job is added and before run(). Jobs must
     * match the earlier run's (the checkpoint spec-identity hash is
     * verified per instance; a mismatch faults construction).
     *
     * @return instances that will skip or shorten their run
     * @throws SimError when checkpointDir is unset or a marker file
     *         is unreadable
     */
    size_t resumeFromCheckpoints();

  private:
    /** What resumeFromCheckpoints() found for one instance. */
    struct ResumePlan
    {
        bool done = false;       ///< `.done` marker present
        uint64_t doneCycles = 0; ///< cycles recorded in the marker
        bool doneWatch = false;  ///< watchpoint flag in the marker
        bool hasCheckpoint = false;
    };

    std::string instancePath(size_t index, const char *ext) const;

    BatchOptions opts_;
    std::vector<BatchJob> jobs_;
    std::vector<ResumePlan> plans_;
};

} // namespace asim

#endif // ASIM_SIM_BATCH_HH
