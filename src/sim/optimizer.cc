#include "sim/optimizer.hh"

#include <cstddef>
#include <set>

namespace asim {

namespace {

/** Operand-source kind of a simple scratch load. */
enum class Side
{
    None,
    C, ///< SetC: constant in `a`
    V, ///< LoadVar: field of vars[idx]
    T, ///< LoadTemp: field of mems[idx].temp
};

Side
loadSide(Op op)
{
    switch (op) {
      case Op::SetC: return Side::C;
      case Op::LoadVar: return Side::V;
      case Op::LoadTemp: return Side::T;
      default: return Side::None;
    }
}

Op
pairOp(Side s1, Side s2)
{
    static constexpr Op table[3][3] = {
        {Op::LoadPairCC, Op::LoadPairCV, Op::LoadPairCT},
        {Op::LoadPairVC, Op::LoadPairVV, Op::LoadPairVT},
        {Op::LoadPairTC, Op::LoadPairTV, Op::LoadPairTT},
    };
    return table[static_cast<int>(s1) - 1][static_cast<int>(s2) - 1];
}

/** Bank of a LoadPair's first / second side (row-major enum block:
 *  pair fusion keeps each side's original simple-load operands, so a
 *  half-dead pair can demote back to a plain load). */
Side
pairSide1(Op op)
{
    const int i = static_cast<int>(op) -
                  static_cast<int>(Op::LoadPairCC);
    return static_cast<Side>(i / 3 + 1);
}

Side
pairSide2(Op op)
{
    const int i = static_cast<int>(op) -
                  static_cast<int>(Op::LoadPairCC);
    return static_cast<Side>(i % 3 + 1);
}

Op
simpleLoadOp(Side s)
{
    return s == Side::C ? Op::SetC
           : s == Side::V ? Op::LoadVar
                          : Op::LoadTemp;
}

Op
accOp(Side s1, Side s2)
{
    // Second side is always a field (AccVar/AccTemp source).
    if (s1 == Side::C)
        return s2 == Side::V ? Op::LoadAccCV : Op::LoadAccCT;
    if (s1 == Side::V)
        return s2 == Side::V ? Op::LoadAccVV : Op::LoadAccVT;
    return s2 == Side::V ? Op::LoadAccTV : Op::LoadAccTT;
}

Op
latchOp(Side adr, Side opn)
{
    static constexpr Op table[3][3] = {
        {Op::MemLatchCC, Op::MemLatchCV, Op::MemLatchCT},
        {Op::MemLatchVC, Op::MemLatchVV, Op::MemLatchVT},
        {Op::MemLatchTC, Op::MemLatchTV, Op::MemLatchTT},
    };
    return table[static_cast<int>(adr) - 1][static_cast<int>(opn) - 1];
}

/** Position of a direct binary ALU op in the fused-ALU op group, or
 *  -1. Order matches ASIM_ALU_FUSED_ALL in sim/bytecode.hh. */
int
aluDirectIndex(Op op)
{
    switch (op) {
      case Op::AluAdd: return 0;
      case Op::AluSub: return 1;
      case Op::AluMul: return 2;
      case Op::AluAnd: return 3;
      case Op::AluOr: return 4;
      case Op::AluXor: return 5;
      case Op::AluEq: return 6;
      case Op::AluLt: return 7;
      default: return -1;
    }
}

/** Position of an operand-bank combo in a fused-ALU op group, or -1
 *  for const/const (which constant folding removes before this ever
 *  runs). Order matches ASIM_ALU_FUSED_COMBOS in sim/bytecode.hh. */
int
aluComboIndex(Side l, Side r)
{
    if (l == Side::V)
        return r == Side::V ? 0 : r == Side::T ? 1 : 4;
    if (l == Side::T)
        return r == Side::V ? 2 : r == Side::T ? 3 : 5;
    return r == Side::V ? 6 : r == Side::T ? 7 : -1;
}

/**
 * True when every value of the address expression provably lies in
 * [0, cells): the constant part is non-negative, every term is a
 * masked (bounded, non-negative) field, and the running maximum never
 * reaches 2^31 (so the wrapping adds cannot wrap) nor `cells`.
 */
bool
addrSafe(const ResolvedExpr &e, int64_t cells)
{
    if (e.constTotal < 0)
        return false;
    int64_t max = e.constTotal;
    for (const auto &t : e.terms) {
        if (t.mask < 0)
            return false; // whole-word term: value unbounded
        const int64_t m = static_cast<int64_t>(t.mask);
        const int64_t termMax =
            t.shift >= 0 ? m << t.shift : m >> -t.shift;
        max += termMax;
        if (max >= (int64_t{1} << 31))
            return false;
    }
    return max < cells;
}

/** Scratch registers read by `in` (bitmask over s0..s3). Extension
 *  words and fused forms read nothing: their operands are inline. */
uint8_t
useMask(const Instr &in)
{
    switch (in.op) {
      case Op::AccVar:
      case Op::AccTemp:
      case Op::StoreS:
      case Op::StoreSJ:
        return static_cast<uint8_t>(1u << in.reg);
      case Op::AluGen:
        return 0b0111;
      case Op::AluConst:
      case Op::AluAdd:
      case Op::AluSub:
      case Op::AluMul:
      case Op::AluAnd:
      case Op::AluOr:
      case Op::AluXor:
      case Op::AluEq:
      case Op::AluLt:
        return 0b0110;
      case Op::AluRight:
        return 0b0100;
      case Op::AluLeft:
      case Op::AluNot:
        return 0b0010;
      case Op::Switch:
      case Op::SelTable:
      case Op::MemAdr:
      case Op::MemOpn:
        return 0b0001;
      case Op::MemWrite:
      case Op::MemOutput:
      case Op::MemGenData:
        return 0b0010;
      default:
        return 0;
    }
}

class Optimizer
{
  public:
    Optimizer(Program &prog, const ResolvedSpec &rs,
              const CompilerOptions &opts)
        : p_(prog), rs_(rs), opts_(opts)
    {}

    void
    run()
    {
        link();
        p_.opt.linked = static_cast<uint32_t>(p_.cycle.size());
        if (opts_.elideRedundantChecks)
            elideChecks();
        if (opts_.fuseSuperinstructions)
            fuse();
        if (opts_.eliminateDeadStores)
            eliminateDeadStores();
        compact();
        if (opts_.fuseSuperinstructions) {
            // Second round on the compacted stream: dead-store
            // removal brings MemGenPre next to its inline-data
            // finisher, and the latch phase next to TraceCycle.
            mergeMemGen();
            fuseLatchRun();
            compact();
        }
    }

  private:
    /** Concatenate the phase streams into one executable cycle.
     *  comb sits at offset 0, so its jump targets and jump-table
     *  entries carry over unchanged; update-phase targets shift. */
    void
    link()
    {
        auto &c = p_.cycle;
        c.clear();
        c.insert(c.end(), p_.comb.begin(), p_.comb.end());
        c.push_back({Op::TraceCycle, 0, 0, 0, 0, 0});
        c.insert(c.end(), p_.latch.begin(), p_.latch.end());
        const auto updOff = static_cast<int32_t>(c.size());
        for (const Instr &in : p_.update) {
            c.push_back(in);
            if (in.op == Op::MemGenPre)
                c.back().a += updOff;
        }
        c.push_back({Op::EndCycle, 0, 0, 0, 0, 0});
        p_.cycleJumpTable = p_.jumpTable;
    }

    /** Mark memory accesses whose latched address can never be out of
     *  range (the latch phase recomputes `adr` from the resolved
     *  address expression every cycle before the update phase runs,
     *  so the static bound holds for any machine state — including a
     *  restored snapshot). */
    void
    elideChecks()
    {
        std::set<int> safe;
        for (const auto &m : rs_.mems) {
            if (addrSafe(m.addr, m.size))
                safe.insert(m.index);
        }
        if (safe.empty())
            return;
        for (Instr &in : p_.cycle) {
            switch (in.op) {
              case Op::MemRead:
              case Op::MemWrite:
              case Op::MemGenPre:
              case Op::MemGenData:
                if (safe.count(in.idx))
                    in.reg |= kMemFlagNoCheck;
                break;
              default:
                break;
            }
        }
        p_.opt.checksElided = static_cast<uint32_t>(safe.size());
    }

    /** Every instruction some jump or table dispatch can land on.
     *  Fusion never spans such a boundary at its *second* slot: the
     *  pair's combined effect must not be entered halfway. (The first
     *  slot may be a target — the superinstruction subsumes both
     *  originals, so landing on it is unchanged behavior.) */
    std::vector<bool>
    jumpTargets() const
    {
        std::vector<bool> target(p_.cycle.size() + 1, false);
        for (uint32_t t : p_.cycleJumpTable)
            target[t] = true;
        for (const Instr &in : p_.cycle) {
            if (in.op == Op::Jump || in.op == Op::MemGenPre)
                target[in.a] = true;
        }
        return target;
    }

    /**
     * Collapse each Switch whose case bodies are all single simple
     * stores to one variable into a SelStore descriptor table: one
     * dispatch per selector instead of an indirect jump plus a case
     * body. Runs before pair fusion, which would otherwise rewrite
     * the canonical store/jump bodies this pattern matches on.
     *
     * The rewrite is in place: the region `[select load][Switch]
     * [store][jump] ... [store]` (2k+1 slots for k cases) becomes
     * `[SelStore][Ext select][desc * k]` plus k-1 trailing Nops; the
     * switch's jump-table slice goes stale, which is harmless — only
     * Switch handlers read the table, and compaction remaps every
     * entry to a survivor.
     */
    void
    fuseSelectors()
    {
        auto &c = p_.cycle;
        const std::vector<bool> target = jumpTargets();
        for (size_t i = 0; i + 1 < c.size(); ++i) {
            const Side sx = loadSide(c[i].op);
            if ((sx != Side::V && sx != Side::T) || c[i].reg != 0)
                continue;
            if (c[i + 1].op != Op::Switch || target[i + 1])
                continue;
            const Instr sw = c[i + 1];
            const auto k = static_cast<size_t>(sw.b);
            if (k < 1 || i + 2 + 2 * k - 1 > c.size())
                continue;
            const size_t end = i + 2 + 2 * k - 1;
            bool ok = true;
            bool uniform = true; // no case reads a memory temp
            std::vector<Instr> descs(k);
            for (size_t j = 0; ok && j < k; ++j) {
                const size_t t = i + 2 + 2 * j;
                if (p_.cycleJumpTable[sw.a + j] != t) {
                    ok = false;
                    break;
                }
                const Instr &st = c[t];
                // Descriptors are normalised to one arithmetic form,
                //   value = bias + field(src[slot], mask, shift)
                // with reg selecting the source array (0 = vars,
                // 1 = mem temps).  Constants ride the vars form with a
                // zero mask (slot 0 is always valid: the selector's own
                // destination proves vars is non-empty), so mixed
                // const/var selectors decode without a bank branch.
                Instr d = {};
                d.op = Op::Ext;
                switch (st.op) {
                  case Op::StoreC:
                    d.reg = 0;
                    d.c = st.a; // bias = constant, mask 0 kills field
                    break;
                  case Op::StoreFVar:
                    d.reg = 0;
                    d.idx = static_cast<uint16_t>(st.c);
                    d.a = st.a;
                    d.b = st.b;
                    break;
                  case Op::StoreFTemp:
                    d.reg = 1;
                    d.idx = static_cast<uint16_t>(st.c);
                    d.a = st.a;
                    d.b = st.b;
                    uniform = false;
                    break;
                  default:
                    ok = false;
                    break;
                }
                if (!ok)
                    break;
                if (st.idx != c[i + 2].idx)
                    ok = false; // all cases store the same variable
                else if (j + 1 < k &&
                         (c[t + 1].op != Op::Jump ||
                          static_cast<size_t>(c[t + 1].a) != end))
                    ok = false; // non-final case exits to selector end
                else
                    descs[j] = d;
            }
            if (!ok)
                continue;
            const Instr field = c[i]; // save before overwriting
            Instr &op = c[i];
            op.op = sx == Side::V ? Op::SelStoreV : Op::SelStoreT;
            op.reg = uniform ? 1 : 0;
            op.idx = c[i + 2].idx;
            op.a = 0;
            op.b = sw.b;
            op.c = sw.c;
            c[i + 1] = {Op::Ext, 0, 0, field.a, field.b,
                        static_cast<int32_t>(field.idx)};
            for (size_t j = 0; j < k; ++j)
                c[i + 2 + j] = descs[j];
            for (size_t j = i + 2 + k; j < end; ++j)
                c[j] = {Op::Nop, 0, 0, 0, 0, 0};
            p_.opt.fused += static_cast<uint32_t>(k);
            i = end - 1;
        }
    }

    /** One left-to-right pass pairing adjacent instructions into
     *  superinstructions. Consumer-side fusions (memory data,
     *  selector select) inline the producing load into the consumer
     *  and leave the load behind as an orphan for dead-store
     *  elimination. */
    void
    fuse()
    {
        auto &c = p_.cycle;
        fuseSelectors();
        const std::vector<bool> target = jumpTargets();
        size_t i = 0;
        while (i + 1 < c.size()) {
            if (target[i + 1]) {
                ++i;
                continue;
            }
            Instr &x = c[i];
            Instr &y = c[i + 1];
            const Side sx = loadSide(x.op);
            const Side sy = loadSide(y.op);

            // Three simple loads feeding a generic ALU: the whole
            // dologic evaluation in one dispatch, operands carried in
            // three extension words (original load layout).
            if (i + 3 < c.size() && !target[i + 2] && !target[i + 3] &&
                sx != Side::None && sy != Side::None && x.reg == 0 &&
                y.reg == 1 && c[i + 3].op == Op::AluGen) {
                const Side sz = loadSide(c[i + 2].op);
                if (sz != Side::None && c[i + 2].reg == 2) {
                    const auto bank = [](Side s) {
                        return static_cast<uint8_t>(
                            static_cast<int>(s) - 1);
                    };
                    Instr fx = {};
                    fx.op = Op::AluGenF;
                    fx.reg = static_cast<uint8_t>(
                        bank(sx) | (bank(sy) << 2) | (bank(sz) << 4));
                    fx.idx = c[i + 3].idx;
                    x.op = Op::Ext;
                    y.op = Op::Ext;
                    c[i + 2].op = Op::Ext;
                    c[i + 3] = c[i + 2];
                    c[i + 2] = y;
                    c[i + 1] = x;
                    c[i] = fx;
                    ++p_.opt.fused;
                    i += 4;
                    continue;
                }
            }

            // Two simple operand loads feeding a direct binary ALU:
            // the whole expression in one dispatch. Must win over
            // plain pair fusion, so it is tried first.
            if (i + 2 < c.size() && !target[i + 2] &&
                sx != Side::None && sy != Side::None && x.reg == 1 &&
                y.reg == 2) {
                const int op8 = aluDirectIndex(c[i + 2].op);
                const int combo = aluComboIndex(sx, sy);
                if (op8 >= 0 && combo >= 0) {
                    Instr fx = {};
                    fx.op = static_cast<Op>(
                        static_cast<int>(Op::AluFAddVV) + op8 * 8 +
                        combo);
                    fx.idx = c[i + 2].idx;
                    fx.a = x.a; // const, or field mask
                    if (sx != Side::C) {
                        fx.b = x.b;
                        fx.c = x.idx;
                    }
                    Instr fe = {};
                    fe.op = Op::Ext;
                    fe.a = y.a;
                    if (sy != Side::C) {
                        fe.b = y.b;
                        fe.c = y.idx;
                    }
                    x = fx;
                    y = fe;
                    c[i + 2] = {Op::Nop, 0, 0, 0, 0, 0};
                    ++p_.opt.fused;
                    i += 3;
                    continue;
                }
            }

            // Two independent loads into different registers.
            if (sx != Side::None && sy != Side::None &&
                x.reg != y.reg) {
                x.op = pairOp(sx, sy);
                y.op = Op::Ext;
                fused(i);
                continue;
            }
            // Load + accumulate into the same register: a two-term
            // expression in one dispatch.
            if (sx != Side::None &&
                (y.op == Op::AccVar || y.op == Op::AccTemp) &&
                x.reg == y.reg) {
                x.op = accOp(sx, y.op == Op::AccVar ? Side::V
                                                    : Side::T);
                y.op = Op::Ext;
                fused(i);
                continue;
            }
            // Memory latch pairs (same memory, adr then opn). The
            // all-constant pair fits one word; every other bank combo
            // keeps the opn operands in the second slot as an
            // extension word.
            if (x.op == Op::MemAdrC && y.op == Op::MemOpnC &&
                x.idx == y.idx) {
                x.op = Op::MemLatchCC;
                x.b = y.a;
                y = {Op::Nop, 0, 0, 0, 0, 0};
                fused(i);
                continue;
            }
            const Side adrSide =
                x.op == Op::MemAdrC ? Side::C
                : x.op == Op::MemAdrFVar ? Side::V
                : x.op == Op::MemAdrFTemp ? Side::T
                                          : Side::None;
            const Side opnSide =
                y.op == Op::MemOpnC ? Side::C
                : y.op == Op::MemOpnFVar ? Side::V
                : y.op == Op::MemOpnFTemp ? Side::T
                                          : Side::None;
            if (adrSide != Side::None && opnSide != Side::None &&
                x.idx == y.idx) {
                x.op = latchOp(adrSide, opnSide);
                y.op = Op::Ext; // opn const (a) or field (a/b/c)
                fused(i);
                continue;
            }
            // Single-load data expression inlined into the memory
            // update; the load at `i` becomes an orphan.
            if (sx != Side::None && x.reg == 1 &&
                y.op == Op::MemGenData) {
                y.op = sx == Side::C ? Op::MemGenDataC
                       : sx == Side::V ? Op::MemGenDataV
                                       : Op::MemGenDataT;
                y.a = x.a;
                y.b = x.b;
                y.c = x.idx;
                fused(i);
                continue;
            }
            if (sx != Side::None && x.reg == 1 &&
                (y.op == Op::MemWrite || y.op == Op::MemOutput)) {
                const bool wr = y.op == Op::MemWrite;
                if (sx == Side::C) {
                    y.op = wr ? Op::MemWriteC : Op::MemOutputC;
                    y.a = x.a;
                } else {
                    y.op = wr ? (sx == Side::V ? Op::MemWriteV
                                               : Op::MemWriteT)
                              : (sx == Side::V ? Op::MemOutputV
                                               : Op::MemOutputT);
                    y.a = x.a;
                    y.b = x.b;
                    y.c = x.idx;
                }
                fused(i);
                continue;
            }
            // Single-field select expression inlined into the
            // selector dispatch. The fused pair replaces both slots:
            // the selector operands move into the first word, the
            // select field into the extension word.
            if ((sx == Side::V || sx == Side::T) && x.reg == 0 &&
                (y.op == Op::SelTable || y.op == Op::Switch)) {
                const Instr field = x;
                const bool tab = y.op == Op::SelTable;
                x = y;
                x.op = tab ? (sx == Side::V ? Op::SelTableV
                                            : Op::SelTableT)
                           : (sx == Side::V ? Op::SwitchV
                                            : Op::SwitchT);
                y = {Op::Ext, 0, field.idx, field.a, field.b, 0};
                fused(i);
                continue;
            }
            // Selector case body: store + exit jump in one dispatch.
            if (y.op == Op::Jump) {
                if (x.op == Op::StoreS) {
                    x.op = Op::StoreSJ;
                    x.a = y.a;
                    y = {Op::Nop, 0, 0, 0, 0, 0};
                    fused(i);
                    continue;
                }
                if (x.op == Op::StoreC) {
                    x.op = Op::StoreCJ;
                    x.b = y.a;
                    y = {Op::Nop, 0, 0, 0, 0, 0};
                    fused(i);
                    continue;
                }
                if (x.op == Op::StoreFVar || x.op == Op::StoreFTemp) {
                    x.op = x.op == Op::StoreFVar ? Op::StoreFVarJ
                                                 : Op::StoreFTempJ;
                    y.op = Op::Ext; // target stays in y.a
                    fused(i);
                    continue;
                }
            }
            ++i;
        }
        // `i` advanced past both slots of each fusion.
        void(0);
    }

    void
    fused(size_t &i)
    {
        ++p_.opt.fused;
        i += 2;
    }

    /**
     * Exact backward liveness over the four scratch registers; loads
     * whose register is provably never read again become Nops.
     *
     * Every control transfer in the cycle stream is *forward* (Jump
     * and the fused store-jumps exit a selector, Switch dispatches to
     * a later case body, MemGenPre skips a later data expression), so
     * one backward pass computes exact live-in sets: when an
     * instruction's successor is a jump target, that target's
     * live-in is already known. The one backward edge — EndCycle to
     * the cycle start — carries nothing: every expression defines its
     * scratch registers before reading them, so no value crosses a
     * cycle boundary.
     */
    void
    eliminateDeadStores()
    {
        auto &c = p_.cycle;
        const size_t n = c.size();
        // Live-in mask per instruction (index n: past the end).
        std::vector<uint8_t> lb(n + 1, 0);
        for (size_t i = n; i-- > 0;) {
            Instr &in = c[i];
            if (in.op == Op::Ext) {
                lb[i] = lb[i + 1]; // transparent: owner decodes it
                continue;
            }
            // Live-after: join over the actual successors.
            uint8_t la;
            switch (in.op) {
              case Op::EndCycle:
                la = 0;
                break;
              case Op::Jump:
              case Op::StoreSJ:
                la = lb[in.a];
                break;
              case Op::StoreCJ:
                la = lb[in.b];
                break;
              case Op::StoreFVarJ:
              case Op::StoreFTempJ:
                la = lb[c[i + 1].a]; // target in the extension word
                break;
              case Op::MemGenPre:
                // Falls through to the data expression or jumps past
                // it, depending on the latched operation.
                la = static_cast<uint8_t>(lb[i + 1] | lb[in.a]);
                break;
              case Op::Switch:
              case Op::SwitchV:
              case Op::SwitchT:
                la = 0;
                for (int32_t k = 0; k < in.b; ++k)
                    la |= lb[p_.cycleJumpTable[in.a + k]];
                break;
              default:
                la = lb[i + 1];
                break;
            }
            const auto defBit = static_cast<uint8_t>(1u << in.reg);
            switch (in.op) {
              case Op::SetC:
              case Op::LoadVar:
              case Op::LoadTemp:
                if (!(la & defBit)) {
                    in = {Op::Nop, 0, 0, 0, 0, 0};
                    ++p_.opt.deadStores;
                } else {
                    la &= static_cast<uint8_t>(~defBit);
                }
                break;
              case Op::AccVar:
              case Op::AccTemp:
                // Reads and writes the same register: removable when
                // dead, otherwise the register stays live upward.
                if (!(la & defBit)) {
                    in = {Op::Nop, 0, 0, 0, 0, 0};
                    ++p_.opt.deadStores;
                } else {
                    la |= defBit;
                }
                break;
              case Op::LoadAccCV:
              case Op::LoadAccCT:
              case Op::LoadAccVV:
              case Op::LoadAccVT:
              case Op::LoadAccTV:
              case Op::LoadAccTT:
                if (!(la & defBit)) {
                    in = {Op::Nop, 0, 0, 0, 0, 0};
                    c[i + 1] = {Op::Nop, 0, 0, 0, 0, 0};
                    p_.opt.deadStores += 2;
                } else {
                    la &= static_cast<uint8_t>(~defBit);
                }
                break;
              case Op::LoadPairCC:
              case Op::LoadPairCV:
              case Op::LoadPairCT:
              case Op::LoadPairVC:
              case Op::LoadPairVV:
              case Op::LoadPairVT:
              case Op::LoadPairTC:
              case Op::LoadPairTV:
              case Op::LoadPairTT: {
                // Sides are independent: a half-dead pair demotes to
                // the surviving side's simple load.
                const Side s1 = pairSide1(in.op);
                const Side s2 = pairSide2(in.op);
                Instr &ext = c[i + 1];
                const auto defBit2 =
                    static_cast<uint8_t>(1u << ext.reg);
                const bool live1 = (la & defBit) != 0;
                const bool live2 = (la & defBit2) != 0;
                if (!live1 && !live2) {
                    in = {Op::Nop, 0, 0, 0, 0, 0};
                    ext = {Op::Nop, 0, 0, 0, 0, 0};
                    p_.opt.deadStores += 2;
                } else if (!live2) {
                    in.op = simpleLoadOp(s1);
                    ext = {Op::Nop, 0, 0, 0, 0, 0};
                    ++p_.opt.deadStores;
                    la &= static_cast<uint8_t>(~defBit);
                } else if (!live1) {
                    ext.op = simpleLoadOp(s2);
                    in = {Op::Nop, 0, 0, 0, 0, 0};
                    ++p_.opt.deadStores;
                    la &= static_cast<uint8_t>(~defBit2);
                } else {
                    la &= static_cast<uint8_t>(~(defBit | defBit2));
                }
                break;
              }
              default:
                la |= useMask(in);
                break;
            }
            lb[i] = la;
        }
    }

    /**
     * Merge MemGenPre with a directly adjacent inline-data finisher
     * into a single MemGen dispatch. Only valid once dead-store
     * elimination and compaction have removed the orphaned data load
     * between them: the pre's skip target must be the slot right
     * after the finisher, proving there is no data-expression code
     * left to jump over.
     */
    void
    mergeMemGen()
    {
        auto &c = p_.cycle;
        const std::vector<bool> target = jumpTargets();
        for (size_t i = 0; i + 1 < c.size(); ++i) {
            if (c[i].op != Op::MemGenPre || target[i + 1])
                continue;
            Instr &fin = c[i + 1];
            Op merged;
            switch (fin.op) {
              case Op::MemGenDataC: merged = Op::MemGenC; break;
              case Op::MemGenDataV: merged = Op::MemGenV; break;
              case Op::MemGenDataT: merged = Op::MemGenT; break;
              default: continue;
            }
            if (static_cast<size_t>(c[i].a) != i + 2)
                continue;
            Instr m = fin;
            m.op = merged;
            m.reg |= c[i].reg; // same memory: flags already agree
            c[i] = m;
            fin = {Op::Nop, 0, 0, 0, 0, 0};
            ++p_.opt.fused;
        }
    }

    /**
     * Fold the TraceCycle word and a following contiguous run of
     * MemLatch* words into TraceLatchRun: the whole latch phase
     * becomes one dispatch whose handler interprets the (unchanged)
     * latch words inline. Bails out if anything can jump into the
     * run, which never happens for compiler-emitted streams — the
     * latch phase sits between the comb selectors (whose jumps stay
     * inside the comb phase) and the update phase.
     */
    void
    fuseLatchRun()
    {
        auto &c = p_.cycle;
        size_t tc = c.size();
        for (size_t i = 0; i < c.size(); ++i) {
            if (c[i].op == Op::TraceCycle) {
                tc = i;
                break;
            }
        }
        if (tc == c.size())
            return;
        size_t q = tc + 1;
        size_t ops = 0;
        while (q < c.size()) {
            switch (c[q].op) {
              case Op::MemLatchCC:
                q += 1;
                ++ops;
                continue;
              case Op::MemLatchVC:
              case Op::MemLatchTC:
              case Op::MemLatchVV:
              case Op::MemLatchCV:
              case Op::MemLatchCT:
              case Op::MemLatchVT:
              case Op::MemLatchTV:
              case Op::MemLatchTT:
                q += 2;
                ++ops;
                continue;
              default:
                break;
            }
            break;
        }
        if (ops == 0)
            return;
        const std::vector<bool> target = jumpTargets();
        for (size_t j = tc + 1; j < q; ++j) {
            if (target[j])
                return;
        }
        c[tc] = {Op::TraceLatchRun, 0, 0, 0,
                 static_cast<int32_t>(q - tc - 1), 0};
        p_.opt.fused += static_cast<uint32_t>(ops);
    }

    /** Drop Nops and remap every jump target. A target that sat on a
     *  removed instruction maps to the next survivor. */
    void
    compact()
    {
        auto &c = p_.cycle;
        bool any = false;
        for (const Instr &in : c) {
            if (in.op == Op::Nop) {
                any = true;
                break;
            }
        }
        // Remap-to-next-survivor table (one past the end maps to the
        // compacted size, for jumps that target stream end).
        std::vector<int32_t> remap(c.size() + 1, 0);
        int32_t next = 0;
        for (const Instr &in : c) {
            if (in.op != Op::Nop)
                ++next;
        }
        remap[c.size()] = next;
        for (size_t i = c.size(); i-- > 0;) {
            if (c[i].op != Op::Nop)
                --next;
            remap[i] = c[i].op == Op::Nop ? remap[i + 1] : next;
        }
        if (any) {
            for (size_t i = 0; i < c.size(); ++i) {
                Instr &in = c[i];
                switch (in.op) {
                  case Op::Jump:
                  case Op::StoreSJ:
                  case Op::MemGenPre:
                    in.a = remap[in.a];
                    break;
                  case Op::StoreCJ:
                    in.b = remap[in.b];
                    break;
                  case Op::StoreFVarJ:
                  case Op::StoreFTempJ:
                    c[i + 1].a = remap[c[i + 1].a];
                    break;
                  default:
                    break;
                }
            }
            for (uint32_t &t : p_.cycleJumpTable)
                t = static_cast<uint32_t>(remap[t]);
            std::vector<Instr> out;
            out.reserve(c.size());
            for (const Instr &in : c) {
                if (in.op != Op::Nop)
                    out.push_back(in);
            }
            c = std::move(out);
        }
    }

    Program &p_;
    const ResolvedSpec &rs_;
    CompilerOptions opts_;
};

} // namespace

void
linkAndOptimize(Program &prog, const ResolvedSpec &rs,
                const CompilerOptions &opts)
{
    Optimizer(prog, rs, opts).run();
}

bool
opHasExt(Op op)
{
    switch (op) {
      case Op::LoadPairCC:
      case Op::LoadPairCV:
      case Op::LoadPairCT:
      case Op::LoadPairVC:
      case Op::LoadPairVV:
      case Op::LoadPairVT:
      case Op::LoadPairTC:
      case Op::LoadPairTV:
      case Op::LoadPairTT:
      case Op::LoadAccCV:
      case Op::LoadAccCT:
      case Op::LoadAccVV:
      case Op::LoadAccVT:
      case Op::LoadAccTV:
      case Op::LoadAccTT:
      case Op::MemLatchVC:
      case Op::MemLatchTC:
      case Op::MemLatchVV:
      case Op::MemLatchCV:
      case Op::MemLatchCT:
      case Op::MemLatchVT:
      case Op::MemLatchTV:
      case Op::MemLatchTT:
#define ASIM_ALU_FUSED_EXT(OPNAME, COMBO, L, R, V)                     \
      case Op::AluF##OPNAME##COMBO:
      ASIM_ALU_FUSED_ALL(ASIM_ALU_FUSED_EXT)
#undef ASIM_ALU_FUSED_EXT
      case Op::SelTableV:
      case Op::SelTableT:
      case Op::SwitchV:
      case Op::SwitchT:
      case Op::StoreFVarJ:
      case Op::StoreFTempJ:
      case Op::SelStoreV: // select field word + per-case descriptors
      case Op::SelStoreT:
      case Op::AluGenF: // three extension words
        return true;
      default:
        return false;
    }
}

} // namespace asim
