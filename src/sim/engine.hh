/**
 * @file
 * Engine interface: the common face of the three execution systems.
 *
 *  - Interpreter  — the ASIM baseline: walks resolved expression
 *                   tables every cycle.
 *  - Vm           — the portable ASIM II analog: executes a compiled
 *                   bytecode program.
 *  - native codegen (codegen/native.hh) — the ASIM II pipeline proper:
 *    generated C++ compiled by the host compiler and run out of
 *    process.
 *
 * All engines implement the identical cycle semantics (DESIGN.md §3)
 * and are cross-checked by equivalence property tests.
 */

#ifndef ASIM_SIM_ENGINE_HH
#define ASIM_SIM_ENGINE_HH

#include <cstdint>
#include <memory>
#include <string_view>

#include "analysis/resolve.hh"
#include "lang/alu_ops.hh"
#include "sim/io.hh"
#include "sim/state.hh"
#include "sim/trace.hh"
#include "support/stats.hh"

namespace asim {

/** Options shared by all engines. */
struct EngineConfig
{
    /** ALU shift-left edge case semantics. */
    AluSemantics aluSemantics = AluSemantics::Thesis;

    /** Trace sink; nullptr disables tracing entirely. */
    TraceSink *trace = nullptr;

    /** I/O device; nullptr behaves like NullIo. */
    IoDevice *io = nullptr;

    /** Collect access statistics (small overhead when enabled). */
    bool collectStats = true;
};

/** "This cursor field was not captured" (e.g. the byte cursor of an
 *  in-process snapshot, which has no byte-oriented script). */
inline constexpr uint64_t kNoIoCursor = ~0ull;

/** A complete capture of an engine's execution at a cycle boundary:
 *  machine state, cycle counter, statistics, and the scripted-input
 *  cursor. Snapshots taken from one engine may be restored into any
 *  engine running the same resolved specification (the equivalence
 *  property guarantees the continuation is identical). */
struct EngineSnapshot
{
    MachineState state;
    uint64_t cycle = 0;
    SimStats stats;

    /** Scripted input *values* consumed when the snapshot was taken
     *  (IoDevice::inputsConsumed(), or the serve child's input-op
     *  count); restore seeks the script here so the continuation
     *  reads the same inputs an uninterrupted run would. */
    uint64_t ioValues = 0;

    /** Byte position into an out-of-process engine's rendered stdin
     *  text (the serve child's cursor); kNoIoCursor for in-process
     *  snapshots. Restoring into a native engine prefers this and
     *  falls back to skipping `ioValues` whitespace-separated tokens
     *  of its own script. */
    uint64_t ioBytes = kNoIoCursor;
};

/**
 * A loaded simulation ready to run.
 *
 * The resolved specification is held through a
 * `shared_ptr<const ResolvedSpec>`: engines only ever *read* it, so
 * any number of instances — including instances running concurrently
 * on different threads (sim/batch.hh) — may share one resolve. The
 * const-ref constructor copies the argument into a fresh shared spec,
 * so temporaries remain safe: `makeVm(resolveText(text))`.
 */
class Engine
{
  public:
    explicit Engine(const ResolvedSpec &rs, const EngineConfig &cfg);
    Engine(std::shared_ptr<const ResolvedSpec> rs,
           const EngineConfig &cfg);
    virtual ~Engine() = default;

    /** Re-initialize all state ("All components are initialized to
     *  zero...") and reset statistics and the cycle counter. */
    virtual void reset();

    /** Execute exactly one cycle. @throws SimError on runtime faults */
    virtual void step() = 0;

    /** Execute `cycles` cycles. Virtual so out-of-process engines can
     *  advance in one batch instead of cycle by cycle. */
    virtual void run(uint64_t cycles);

    /** Capture state + cycle + statistics + input cursor for a later
     *  restore() (possibly in another engine or — serialized through
     *  sim/checkpoint.hh — another process). Virtual so engines whose
     *  authoritative cursor lives elsewhere (the native adapter's
     *  child) can fill the I/O fields from their own source. */
    virtual EngineSnapshot snapshot() const;

    /** Adopt a snapshot taken from an engine running the same
     *  specification — any engine, including across the process
     *  boundary (the native adapter ships it to its child as one
     *  RESTORE command): the continuation is cycle-for-cycle
     *  identical to an uninterrupted run. @throws SimError when the
     *  snapshot's shape does not match this specification */
    virtual void restore(const EngineSnapshot &snap);

    /** Cycles executed since the last reset. */
    uint64_t cycle() const { return cycle_; }

    const MachineState &state() const
    {
        refreshState();
        return state_;
    }
    MachineState &state()
    {
        refreshState();
        return state_;
    }

    const SimStats &stats() const { return stats_; }

    const ResolvedSpec &resolved() const { return *rs_; }

    /** The shared immutable resolve this engine reads. */
    const std::shared_ptr<const ResolvedSpec> &
    resolvedShared() const
    {
        return rs_;
    }

    /** Current observable value of a component: a combinational output
     *  or a memory's output latch. @throws SimError on unknown name */
    int32_t value(std::string_view name) const;

    /** Read one cell of a memory. @throws SimError on bad name/addr */
    int32_t memCell(std::string_view mem, int64_t addr) const;

  protected:
    /** Hook for engines whose authoritative state lives elsewhere
     *  (the native adapter's child process): called before every
     *  read of state_ through the public accessors (state(),
     *  value(), memCell(), snapshot()) so such engines can sync
     *  state_ lazily instead of after every run(). In-process
     *  engines keep state_ current and the default no-op. */
    virtual void refreshState() const {}

    /** Shape-check a snapshot against this engine's specification.
     *  @throws SimError on var/memory count or size mismatch */
    void checkSnapshotShape(const EngineSnapshot &snap) const;

    /** Emit the per-cycle trace line for the starred components. */
    void traceCycle();

    /** Immutable, potentially cross-thread-shared; never written. */
    std::shared_ptr<const ResolvedSpec> rs_;
    EngineConfig cfg_;
    MachineState state_;
    SimStats stats_;
    NullIo nullIo_;
    IoDevice *io_;
    uint64_t cycle_ = 0;
};

/** Build the table-walking interpreter (ASIM analog). */
std::unique_ptr<Engine> makeInterpreter(const ResolvedSpec &rs,
                                        const EngineConfig &cfg = {});
std::unique_ptr<Engine>
makeInterpreter(std::shared_ptr<const ResolvedSpec> rs,
                const EngineConfig &cfg = {});

/** Options for the bytecode compiler (see sim/compiler.hh). */
struct CompilerOptions
{
    /** Inline ALUs whose function expression is constant (§4.4). */
    bool inlineConstAlu = true;

    /** Specialize memories whose operation is constant (§4.4). */
    bool specializeConstMem = true;

    /** Replace selectors whose case list is all-constant by a direct
     *  table lookup (the microcode-ROM pattern). */
    bool constSelectorTables = true;

    /** Skip the output latch for memories nobody reads (§5.4 "further
     *  optimization ... heuristics to determine which memories do not
     *  need temporary variables"). */
    bool elideUnusedTemps = false;

    /** Fuse adjacent cycle-stream instructions into superinstructions
     *  (CVC-style compile-time collapse; sim/optimizer.cc). */
    bool fuseSuperinstructions = true;

    /** Remove scratch-register stores with no reader — mostly loads
     *  orphaned by consumer-side fusion. */
    bool eliminateDeadStores = true;

    /** Drop memory bounds checks whose address expression is
     *  statically provable to stay inside the memory. */
    bool elideRedundantChecks = true;
};

/** Build the bytecode VM (portable ASIM II analog). */
std::unique_ptr<Engine> makeVm(const ResolvedSpec &rs,
                               const EngineConfig &cfg = {},
                               const CompilerOptions &opts = {});
std::unique_ptr<Engine> makeVm(std::shared_ptr<const ResolvedSpec> rs,
                               const EngineConfig &cfg = {},
                               const CompilerOptions &opts = {});

struct Program;

/** Build a bytecode VM executing a pre-compiled shared program. The
 *  program must have been compiled from `rs` with trace checks kept
 *  whenever `cfg.trace` may be set (sim/compiler.hh); batch
 *  construction uses this to compile once and share the immutable
 *  bytecode across all instances. */
std::unique_ptr<Engine> makeVm(std::shared_ptr<const ResolvedSpec> rs,
                               const EngineConfig &cfg,
                               std::shared_ptr<const Program> program);

} // namespace asim

#endif // ASIM_SIM_ENGINE_HH
