/**
 * @file
 * Trace sinks.
 *
 * Every cycle the simulator prints a line with the cycle number and
 * the values of all starred components, and memory operations with the
 * trace bits set report reads and writes. The thesis text formats
 * (from the generated Pascal):
 *
 *     Cycle <n:3> <name>= <v> <name>= <v> ...
 *     Write to <mem> at <addr>: <value>
 *     Read from <mem> at <addr>: <value>
 */

#ifndef ASIM_SIM_TRACE_HH
#define ASIM_SIM_TRACE_HH

#include <cstdint>
#include <iostream>
#include <string_view>

namespace asim {

/** Callback interface for trace events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Start of the per-cycle trace line. */
    virtual void beginCycle(uint64_t cycle) = 0;

    /** One starred component's value. */
    virtual void value(std::string_view name, int32_t v) = 0;

    /** End of the per-cycle trace line. */
    virtual void endCycle() = 0;

    /** A traced memory write (operation bit 2). */
    virtual void memWrite(std::string_view mem, int32_t addr,
                          int32_t v) = 0;

    /** A traced memory read (operation bit 3). */
    virtual void memRead(std::string_view mem, int32_t addr,
                         int32_t v) = 0;
};

/** Swallows everything. */
class NullTrace : public TraceSink
{
  public:
    void beginCycle(uint64_t) override {}
    void value(std::string_view, int32_t) override {}
    void endCycle() override {}
    void memWrite(std::string_view, int32_t, int32_t) override {}
    void memRead(std::string_view, int32_t, int32_t) override {}
};

/** Renders the thesis text format onto a stream. */
class StreamTrace : public TraceSink
{
  public:
    explicit StreamTrace(std::ostream &os)
        : os_(&os)
    {}

    void beginCycle(uint64_t cycle) override;
    void value(std::string_view name, int32_t v) override;
    void endCycle() override;
    void memWrite(std::string_view mem, int32_t addr,
                  int32_t v) override;
    void memRead(std::string_view mem, int32_t addr,
                 int32_t v) override;

  private:
    std::ostream *os_;
};

} // namespace asim

#endif // ASIM_SIM_TRACE_HH
