/**
 * @file
 * Memory-mapped I/O devices (thesis §4.5, generated `sinput` /
 * `soutput`).
 *
 * Memory operations 2 (input) and 3 (output) route through an
 * IoDevice. The thesis semantics, by I/O address:
 *   - address 0: data is a character
 *   - address 1: data is an integer
 *   - otherwise: data is an integer and the address is reported
 */

#ifndef ASIM_SIM_IO_HH
#define ASIM_SIM_IO_HH

#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace asim {

/** Abstract memory-mapped I/O device. */
class IoDevice
{
  public:
    virtual ~IoDevice() = default;

    /** Memory operation 2: produce an input value for `address`. */
    virtual int32_t input(int32_t address) = 0;

    /** Memory operation 3: consume an output value for `address`. */
    virtual void output(int32_t address, int32_t data) = 0;

    /// @{ Serialize hooks (snapshot/checkpoint support).
    /** Input values consumed from a finite script so far; reads past
     *  the end of the script do not advance the cursor. Devices with
     *  no seekable input (streams) report 0. */
    virtual uint64_t inputsConsumed() const { return 0; }

    /** Reposition the input cursor to `consumed` values from the
     *  start (clamped to the script length). @return false when this
     *  device cannot seek — snapshot restore is then best-effort for
     *  I/O, exactly as interactive input implies. */
    virtual bool seekInputs(uint64_t consumed)
    {
        return consumed == 0;
    }
    /// @}
};

/** Discards output, supplies zero input. */
class NullIo : public IoDevice
{
  public:
    int32_t input(int32_t) override { return 0; }
    void output(int32_t, int32_t) override {}
    bool seekInputs(uint64_t) override { return true; }
};

/**
 * Stream-backed device with the exact thesis text formats:
 *   output addr 0:  `<chr(data)>\n`
 *   output addr 1:  `<data>\n`
 *   output other:   `Output to address <a>: <data>\n`
 *   input  other:   prompts `Input from address <a>: ` before reading
 */
class StreamIo : public IoDevice
{
  public:
    StreamIo(std::istream &in, std::ostream &out)
        : in_(&in), out_(&out)
    {}

    int32_t input(int32_t address) override;
    void output(int32_t address, int32_t data) override;

  private:
    std::istream *in_;
    std::ostream *out_;
};

/**
 * Programmatic device for tests and harnesses: inputs are drawn from a
 * queue (zero when exhausted), outputs are recorded as (address, data)
 * pairs and also rendered in the thesis text format.
 */
class VectorIo : public IoDevice
{
  public:
    /** Queue a value to be returned by the next input(). */
    void pushInput(int32_t v) { inputs_.push_back(v); }

    int32_t input(int32_t address) override;
    void output(int32_t address, int32_t data) override;
    uint64_t inputsConsumed() const override { return pos_; }
    bool seekInputs(uint64_t consumed) override;

    const std::vector<std::pair<int32_t, int32_t>> &
    outputs() const
    {
        return outputs_;
    }

    /** Just the data values written to `address`. */
    std::vector<int32_t> outputsAt(int32_t address) const;

    /** Thesis-format rendering of everything output so far. */
    const std::string &text() const { return text_; }

    void
    clear()
    {
        inputs_.clear();
        pos_ = 0;
        outputs_.clear();
        text_.clear();
    }

  private:
    std::vector<int32_t> inputs_;
    size_t pos_ = 0; ///< next input to serve
    std::vector<std::pair<int32_t, int32_t>> outputs_;
    std::string text_;
};

/**
 * Scripted device for reproducible non-interactive runs: inputs come
 * from a pre-loaded value list (zero when exhausted, matching an
 * exhausted stdin), outputs are rendered in the thesis text format
 * onto a stream as they happen, so they interleave correctly with a
 * trace written to the same stream. Values are returned for every
 * input address alike; address-0 (character) input specs should use
 * StreamIo, whose char-wise reads mirror the generated simulator.
 */
class ScriptIo : public IoDevice
{
  public:
    ScriptIo(std::vector<int32_t> inputs, std::ostream &out);

    int32_t input(int32_t address) override;
    void output(int32_t address, int32_t data) override;
    uint64_t inputsConsumed() const override { return pos_; }
    bool seekInputs(uint64_t consumed) override;

    /** Inputs not yet consumed. */
    size_t remainingInputs() const { return inputs_.size() - pos_; }

  private:
    std::vector<int32_t> inputs_;
    size_t pos_ = 0; ///< next input to serve
    std::ostream *out_;
};

/** Render one output event in the thesis text format. */
std::string formatOutput(int32_t address, int32_t data);

} // namespace asim

#endif // ASIM_SIM_IO_HH
