#include "sim/vm.hh"

#include "sim/compiler.hh"
#include "support/bitops.hh"

namespace asim {

Vm::Vm(std::shared_ptr<const ResolvedSpec> rs,
       const EngineConfig &cfg, const CompilerOptions &opts)
    : Engine(std::move(rs), cfg),
      // Compile from the engine's shared spec (rs_), never the
      // caller's argument, which may have been moved from.
      prog_(std::make_shared<const Program>(
          compileProgram(*rs_, opts, cfg.trace != nullptr)))
{}

Vm::Vm(std::shared_ptr<const ResolvedSpec> rs,
       const EngineConfig &cfg, std::shared_ptr<const Program> program)
    : Engine(std::move(rs), cfg), prog_(std::move(program))
{}

void
Vm::checkAddr(const MemoryState &ms, uint16_t idx) const
{
    if (ms.adr < 0 ||
        ms.adr >= static_cast<int32_t>(ms.cells.size())) {
        throw SimError("memory " + prog_->memInfos[idx].name +
                       " address " + std::to_string(ms.adr) +
                       " outside 0.." +
                       std::to_string(ms.cells.size() - 1) + " (cycle " +
                       std::to_string(cycle_) + ")");
    }
}

void
Vm::selFail(const Instr &in) const
{
    const SelInfo &si = prog_->selInfos[in.c];
    throw SimError("selector " + si.name + " index " +
                   std::to_string(s_[0]) + " outside its " +
                   std::to_string(si.caseCount) + " cases (cycle " +
                   std::to_string(cycle_) + ")");
}

void
Vm::memTrace(const MemoryState &ms, const Instr &in) const
{
    // Cold path: only reached when the compiler left a trace flag on
    // the instruction, which implies a sink was configured.
    if (in.reg & kMemFlagTraceW) {
        if (land(ms.opn, 5) == 5) {
            cfg_.trace->memWrite(prog_->memInfos[in.idx].name, ms.adr,
                                 ms.temp);
        }
    }
    if (in.reg & kMemFlagTraceR) {
        if (land(ms.opn, 9) == 8) {
            cfg_.trace->memRead(prog_->memInfos[in.idx].name, ms.adr,
                                ms.temp);
        }
    }
}

void
Vm::exec(const std::vector<Instr> &code)
{
    auto *vars = state_.vars.data();
    auto *mems = state_.mems.data();
    const Instr *ip = code.data();
    const Instr *const base = ip;
    const Instr *const end = ip + code.size();

    while (ip < end) {
        const Instr &in = *ip;
        switch (in.op) {
          case Op::SetC:
            s_[in.reg] = in.a;
            ++ip;
            break;
          case Op::LoadVar:
            s_[in.reg] = shiftField(land(vars[in.idx], in.a), in.b);
            ++ip;
            break;
          case Op::LoadTemp:
            s_[in.reg] =
                shiftField(land(mems[in.idx].temp, in.a), in.b);
            ++ip;
            break;
          case Op::AccVar:
            s_[in.reg] = wadd(
                s_[in.reg], shiftField(land(vars[in.idx], in.a), in.b));
            ++ip;
            break;
          case Op::AccTemp:
            s_[in.reg] =
                wadd(s_[in.reg],
                     shiftField(land(mems[in.idx].temp, in.a), in.b));
            ++ip;
            break;

          case Op::AluGen:
            vars[in.idx] =
                dologic(s_[0], s_[1], s_[2], cfg_.aluSemantics);
            bumpAlu();
            ++ip;
            break;
          case Op::AluConst:
            vars[in.idx] =
                dologic(in.a, s_[1], s_[2], cfg_.aluSemantics);
            bumpAlu();
            ++ip;
            break;
          case Op::AluZero:
            vars[in.idx] = 0;
            bumpAlu();
            ++ip;
            break;
          case Op::AluRight:
            vars[in.idx] = s_[2];
            bumpAlu();
            ++ip;
            break;
          case Op::AluLeft:
            vars[in.idx] = s_[1];
            bumpAlu();
            ++ip;
            break;
          case Op::AluNot:
            vars[in.idx] = wsub(kValueMask, s_[1]);
            bumpAlu();
            ++ip;
            break;
          case Op::AluAdd:
            vars[in.idx] = wadd(s_[1], s_[2]);
            bumpAlu();
            ++ip;
            break;
          case Op::AluSub:
            vars[in.idx] = wsub(s_[1], s_[2]);
            bumpAlu();
            ++ip;
            break;
          case Op::AluMul:
            vars[in.idx] = wmul(s_[1], s_[2]);
            bumpAlu();
            ++ip;
            break;
          case Op::AluAnd:
            vars[in.idx] = land(s_[1], s_[2]);
            bumpAlu();
            ++ip;
            break;
          case Op::AluOr:
            vars[in.idx] = wsub(wadd(s_[1], s_[2]), land(s_[1], s_[2]));
            bumpAlu();
            ++ip;
            break;
          case Op::AluXor:
            vars[in.idx] = wsub(wadd(s_[1], s_[2]),
                                wmul(land(s_[1], s_[2]), 2));
            bumpAlu();
            ++ip;
            break;
          case Op::AluEq:
            vars[in.idx] = s_[1] == s_[2] ? 1 : 0;
            bumpAlu();
            ++ip;
            break;
          case Op::AluLt:
            vars[in.idx] = s_[1] < s_[2] ? 1 : 0;
            bumpAlu();
            ++ip;
            break;

          case Op::StoreS:
            vars[in.idx] = s_[in.reg];
            ++ip;
            break;
          case Op::StoreC:
            vars[in.idx] = in.a;
            ++ip;
            break;
          case Op::StoreFVar:
            vars[in.idx] = shiftField(land(vars[in.c], in.a), in.b);
            ++ip;
            break;
          case Op::StoreFTemp:
            vars[in.idx] =
                shiftField(land(mems[in.c].temp, in.a), in.b);
            ++ip;
            break;

          case Op::Switch:
            if (static_cast<uint32_t>(s_[0]) >=
                static_cast<uint32_t>(in.b)) {
                selFail(in);
            }
            bumpSel();
            ip = base + prog_->jumpTable[in.a + s_[0]];
            break;
          case Op::Jump:
            ip = base + in.a;
            break;
          case Op::SelTable:
            if (static_cast<uint32_t>(s_[0]) >=
                static_cast<uint32_t>(in.b)) {
                selFail(in);
            }
            bumpSel();
            vars[in.idx] = prog_->constTable[in.a + s_[0]];
            ++ip;
            break;

          case Op::MemAdr:
            mems[in.idx].adr = s_[0];
            ++ip;
            break;
          case Op::MemOpn:
            mems[in.idx].opn = s_[0];
            ++ip;
            break;
          case Op::MemAdrC:
            mems[in.idx].adr = in.a;
            ++ip;
            break;
          case Op::MemOpnC:
            mems[in.idx].opn = in.a;
            ++ip;
            break;
          case Op::MemAdrFVar:
            mems[in.idx].adr =
                shiftField(land(vars[in.c], in.a), in.b);
            ++ip;
            break;
          case Op::MemAdrFTemp:
            mems[in.idx].adr =
                shiftField(land(mems[in.c].temp, in.a), in.b);
            ++ip;
            break;
          case Op::MemOpnFVar:
            mems[in.idx].opn =
                shiftField(land(vars[in.c], in.a), in.b);
            ++ip;
            break;
          case Op::MemOpnFTemp:
            mems[in.idx].opn =
                shiftField(land(mems[in.c].temp, in.a), in.b);
            ++ip;
            break;

          case Op::MemRead: {
            MemoryState &ms = mems[in.idx];
            checkAddr(ms, in.idx);
            if (!(in.reg & kMemFlagElideTemp))
                ms.temp = ms.cells[ms.adr];
            if (cfg_.collectStats)
                ++stats_.mems[in.idx].reads;
            if (in.reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, in);
            ++ip;
            break;
          }
          case Op::MemWrite: {
            MemoryState &ms = mems[in.idx];
            checkAddr(ms, in.idx);
            ms.temp = s_[1];
            ms.cells[ms.adr] = s_[1];
            if (cfg_.collectStats)
                ++stats_.mems[in.idx].writes;
            if (in.reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, in);
            ++ip;
            break;
          }
          case Op::MemInput: {
            MemoryState &ms = mems[in.idx];
            ms.temp = io_->input(ms.adr);
            if (cfg_.collectStats)
                ++stats_.mems[in.idx].inputs;
            if (in.reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, in);
            ++ip;
            break;
          }
          case Op::MemOutput: {
            MemoryState &ms = mems[in.idx];
            ms.temp = s_[1];
            io_->output(ms.adr, s_[1]);
            if (cfg_.collectStats)
                ++stats_.mems[in.idx].outputs;
            if (in.reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, in);
            ++ip;
            break;
          }
          case Op::MemGenPre: {
            MemoryState &ms = mems[in.idx];
            const int32_t op = land(ms.opn, 3);
            if (op == mem_op::kWrite || op == mem_op::kOutput) {
                ++ip; // fall through to the data expression code
                break;
            }
            if (op == mem_op::kRead) {
                checkAddr(ms, in.idx);
                if (!(in.reg & kMemFlagElideTemp))
                    ms.temp = ms.cells[ms.adr];
                if (cfg_.collectStats)
                    ++stats_.mems[in.idx].reads;
            } else { // input
                ms.temp = io_->input(ms.adr);
                if (cfg_.collectStats)
                    ++stats_.mems[in.idx].inputs;
            }
            if (in.reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, in);
            ip = base + in.a;
            break;
          }
          case Op::MemGenData: {
            MemoryState &ms = mems[in.idx];
            const int32_t op = land(ms.opn, 3);
            if (op == mem_op::kWrite)
                checkAddr(ms, in.idx); // before the latch is touched
            ms.temp = s_[1];
            if (op == mem_op::kWrite) {
                ms.cells[ms.adr] = s_[1];
                if (cfg_.collectStats)
                    ++stats_.mems[in.idx].writes;
            } else { // output
                io_->output(ms.adr, s_[1]);
                if (cfg_.collectStats)
                    ++stats_.mems[in.idx].outputs;
            }
            if (in.reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, in);
            ++ip;
            break;
          }
        }
    }
}

void
Vm::step()
{
    exec(prog_->comb);
    traceCycle();
    exec(prog_->latch);
    exec(prog_->update);
    ++cycle_;
    if (cfg_.collectStats)
        ++stats_.cycles;
}

std::unique_ptr<Engine>
makeVm(const ResolvedSpec &rs, const EngineConfig &cfg,
       const CompilerOptions &opts)
{
    return makeVm(std::make_shared<const ResolvedSpec>(rs), cfg,
                  opts);
}

std::unique_ptr<Engine>
makeVm(std::shared_ptr<const ResolvedSpec> rs, const EngineConfig &cfg,
       const CompilerOptions &opts)
{
    return std::make_unique<Vm>(std::move(rs), cfg, opts);
}

std::unique_ptr<Engine>
makeVm(std::shared_ptr<const ResolvedSpec> rs, const EngineConfig &cfg,
       std::shared_ptr<const Program> program)
{
    return std::make_unique<Vm>(std::move(rs), cfg,
                                std::move(program));
}

} // namespace asim
