#include "sim/vm.hh"

#include "sim/compiler.hh"
#include "support/bitops.hh"
#include "support/metrics.hh"

/**
 * Dispatch strategy selection (docs/INTERNALS.md):
 *
 *  - ASIM_VM_COMPUTED_GOTO (CMake option, default ON) asks for
 *    threaded dispatch: every handler ends in its own indirect
 *    `goto *table[op]`, giving the branch predictor one site per
 *    opcode pair instead of a single shared dispatch branch.
 *  - The portable fallback is a switch inside a loop; it is the
 *    compiled form on compilers without the labels-as-values
 *    extension and the CI leg that keeps both modes green.
 *
 * Both modes share the same handler bodies through the CASE/NEXT/JUMP
 * macros below, so they cannot drift apart semantically.
 */
#ifndef ASIM_VM_COMPUTED_GOTO
#define ASIM_VM_COMPUTED_GOTO 1
#endif

#if ASIM_VM_COMPUTED_GOTO && (defined(__GNUC__) || defined(__clang__))
#define ASIM_VM_THREADED 1
#else
#define ASIM_VM_THREADED 0
#endif

namespace asim {

Vm::Vm(std::shared_ptr<const ResolvedSpec> rs,
       const EngineConfig &cfg, const CompilerOptions &opts)
    : Engine(std::move(rs), cfg),
      // Compile from the engine's shared spec (rs_), never the
      // caller's argument, which may have been moved from.
      prog_(std::make_shared<const Program>(
          compileProgram(*rs_, opts, cfg.trace != nullptr)))
{}

Vm::Vm(std::shared_ptr<const ResolvedSpec> rs,
       const EngineConfig &cfg, std::shared_ptr<const Program> program)
    : Engine(std::move(rs), cfg), prog_(std::move(program))
{}

void
Vm::checkAddr(const MemoryState &ms, uint16_t idx,
              uint64_t cycle) const
{
    throw SimError("memory " + prog_->memInfos[idx].name +
                   " address " + std::to_string(ms.adr) +
                   " outside 0.." +
                   std::to_string(ms.cells.size() - 1) + " (cycle " +
                   std::to_string(cycle) + ")");
}

void
Vm::selFail(const Instr &in, int32_t sel, uint64_t cycle) const
{
    const SelInfo &si = prog_->selInfos[in.c];
    throw SimError("selector " + si.name + " index " +
                   std::to_string(sel) + " outside its " +
                   std::to_string(si.caseCount) + " cases (cycle " +
                   std::to_string(cycle) + ")");
}

void
Vm::memTrace(const MemoryState &ms, const Instr &in) const
{
    // Cold path: only reached when the compiler left a trace flag on
    // the instruction, which implies a sink was configured.
    if (in.reg & kMemFlagTraceW) {
        if (land(ms.opn, 5) == 5) {
            cfg_.trace->memWrite(prog_->memInfos[in.idx].name, ms.adr,
                                 ms.temp);
        }
    }
    if (in.reg & kMemFlagTraceR) {
        if (land(ms.opn, 9) == 8) {
            cfg_.trace->memRead(prog_->memInfos[in.idx].name, ms.adr,
                                ms.temp);
        }
    }
}

// Field decode of an instruction word's operands: slot in idx
// (load-style words) or in c (store/latch-style words, whose idx
// names the destination).
#define ASIM_FLDV(w) shiftField(land(vars[(w).idx], (w).a), (w).b)
#define ASIM_FLDT(w) \
    shiftField(land(mems[(w).idx].temp, (w).a), (w).b)
#define ASIM_FLDVC(w) shiftField(land(vars[(w).c], (w).a), (w).b)
#define ASIM_FLDTC(w) \
    shiftField(land(mems[(w).c].temp, (w).a), (w).b)

#if ASIM_VM_THREADED
#define CASE(name) H_##name:
#define DISPATCH() goto *tbl[static_cast<uint8_t>(ip->op)]
#define NEXT() \
    do { \
        ++ip; \
        DISPATCH(); \
    } while (0)
#define NEXT2() \
    do { \
        ip += 2; \
        DISPATCH(); \
    } while (0)
#define NEXTN(k) \
    do { \
        ip += (k); \
        DISPATCH(); \
    } while (0)
#define JUMP(t) \
    do { \
        ip = base + (t); \
        DISPATCH(); \
    } while (0)
#else
#define CASE(name) case Op::name:
#define NEXT() \
    { \
        ++ip; \
        continue; \
    }
#define NEXT2() \
    { \
        ip += 2; \
        continue; \
    }
#define NEXTN(k) \
    { \
        ip += (k); \
        continue; \
    }
#define JUMP(t) \
    { \
        ip = base + (t); \
        continue; \
    }
#endif

void
Vm::runCycles(uint64_t n)
{
    int32_t *const vars = state_.vars.data();
    MemoryState *const mems = state_.mems.data();
    const Instr *const base = prog_->cycle.data();
    const uint32_t *const jt = prog_->cycleJumpTable.data();
    const int32_t *const ct = prog_->constTable.data();
    IoDevice *const io = io_;
    const AluSemantics alu = cfg_.aluSemantics;
    const bool collect = cfg_.collectStats;
    const bool tracing = cfg_.trace != nullptr;
    const uint64_t cycle0 = cycle_;

    int32_t s[4] = {0, 0, 0, 0};
    uint64_t left = n;
    uint64_t aluEvals = 0;
    uint64_t selEvals = 0;
    const Instr *ip = base;

    // Cycles completed so far = n - left; faults report the cycle in
    // progress, which is that same number.
    const auto curCycle = [&] { return cycle0 + (n - left); };
    const auto flush = [&] {
        cycle_ = cycle0 + (n - left);
        if (collect) {
            stats_.cycles += n - left;
            stats_.aluEvals += aluEvals;
            stats_.selEvals += selEvals;
        }
        if (metrics::timingEnabled()) {
            // Sampled at run exit from hot-loop locals, never from
            // inside the dispatch loop: the off path stays one
            // relaxed load. Dispatch is reported as cycles x static
            // stream length (selector jumps may skip ops, so this is
            // the dispatch upper bound the fusion ratio is read from).
            metrics::counter("vm.dispatch.stream_ops")
                .add((n - left) * prog_->cycle.size());
            metrics::counter("vm.alu_evals").add(aluEvals);
            metrics::counter("vm.sel_evals").add(selEvals);
        }
    };
    const auto badAddr = [](const MemoryState &ms) {
        return static_cast<uint64_t>(
                   static_cast<int64_t>(ms.adr)) >= ms.cells.size();
    };

    try {
#if ASIM_VM_THREADED
        // One entry per Op, in exact enum order (sim/bytecode.hh).
        static const void *const tbl[] = {
            &&H_SetC, &&H_LoadVar, &&H_LoadTemp, &&H_AccVar,
            &&H_AccTemp,
            &&H_AluGen, &&H_AluConst, &&H_AluZero, &&H_AluRight,
            &&H_AluLeft, &&H_AluNot, &&H_AluAdd, &&H_AluSub,
            &&H_AluMul, &&H_AluAnd, &&H_AluOr, &&H_AluXor, &&H_AluEq,
            &&H_AluLt,
            &&H_StoreS, &&H_StoreC, &&H_StoreFVar, &&H_StoreFTemp,
            &&H_Switch, &&H_Jump, &&H_SelTable,
            &&H_MemAdr, &&H_MemOpn, &&H_MemAdrC, &&H_MemOpnC,
            &&H_MemAdrFVar, &&H_MemAdrFTemp, &&H_MemOpnFVar,
            &&H_MemOpnFTemp,
            &&H_MemRead, &&H_MemWrite, &&H_MemInput, &&H_MemOutput,
            &&H_MemGenPre, &&H_MemGenData,
            &&H_TraceCycle, &&H_EndCycle, &&H_Nop, &&H_Ext,
            &&H_LoadPairCC, &&H_LoadPairCV, &&H_LoadPairCT,
            &&H_LoadPairVC, &&H_LoadPairVV, &&H_LoadPairVT,
            &&H_LoadPairTC, &&H_LoadPairTV, &&H_LoadPairTT,
            &&H_LoadAccCV, &&H_LoadAccCT, &&H_LoadAccVV,
            &&H_LoadAccVT, &&H_LoadAccTV, &&H_LoadAccTT,
            &&H_MemLatchCC, &&H_MemLatchVC, &&H_MemLatchTC,
            &&H_MemLatchVV,
            &&H_MemWriteC, &&H_MemWriteV, &&H_MemWriteT,
            &&H_MemOutputC, &&H_MemOutputV, &&H_MemOutputT,
            &&H_SelTableV, &&H_SelTableT, &&H_SwitchV, &&H_SwitchT,
            &&H_StoreSJ, &&H_StoreCJ, &&H_StoreFVarJ,
            &&H_StoreFTempJ,
            &&H_MemLatchCV, &&H_MemLatchCT, &&H_MemLatchVT,
            &&H_MemLatchTV, &&H_MemLatchTT,
            &&H_MemGenDataC, &&H_MemGenDataV, &&H_MemGenDataT,
#define ASIM_ALU_FUSED_LABEL(OPNAME, COMBO, L, R, V)                   \
            &&H_AluF##OPNAME##COMBO,
            ASIM_ALU_FUSED_ALL(ASIM_ALU_FUSED_LABEL)
#undef ASIM_ALU_FUSED_LABEL
            &&H_SelStoreV, &&H_SelStoreT,
            &&H_TraceLatchRun, &&H_AluGenF,
            &&H_MemGenC, &&H_MemGenV, &&H_MemGenT,
        };
        static_assert(sizeof(tbl) / sizeof(tbl[0]) == kOpCount,
                      "dispatch table out of sync with Op");
        DISPATCH();
#else
        for (;;) {
            switch (ip->op) {
#endif

        CASE(SetC)
        {
            s[ip->reg] = ip->a;
        }
        NEXT();
        CASE(LoadVar)
        {
            s[ip->reg] = ASIM_FLDV(*ip);
        }
        NEXT();
        CASE(LoadTemp)
        {
            s[ip->reg] = ASIM_FLDT(*ip);
        }
        NEXT();
        CASE(AccVar)
        {
            s[ip->reg] = wadd(s[ip->reg], ASIM_FLDV(*ip));
        }
        NEXT();
        CASE(AccTemp)
        {
            s[ip->reg] = wadd(s[ip->reg], ASIM_FLDT(*ip));
        }
        NEXT();

        CASE(AluGen)
        {
            vars[ip->idx] = dologic(s[0], s[1], s[2], alu);
            aluEvals += collect;
        }
        NEXT();
        CASE(AluConst)
        {
            vars[ip->idx] = dologic(ip->a, s[1], s[2], alu);
            aluEvals += collect;
        }
        NEXT();
        CASE(AluZero)
        {
            vars[ip->idx] = 0;
            aluEvals += collect;
        }
        NEXT();
        CASE(AluRight)
        {
            vars[ip->idx] = s[2];
            aluEvals += collect;
        }
        NEXT();
        CASE(AluLeft)
        {
            vars[ip->idx] = s[1];
            aluEvals += collect;
        }
        NEXT();
        CASE(AluNot)
        {
            vars[ip->idx] = wsub(kValueMask, s[1]);
            aluEvals += collect;
        }
        NEXT();
        CASE(AluAdd)
        {
            vars[ip->idx] = wadd(s[1], s[2]);
            aluEvals += collect;
        }
        NEXT();
        CASE(AluSub)
        {
            vars[ip->idx] = wsub(s[1], s[2]);
            aluEvals += collect;
        }
        NEXT();
        CASE(AluMul)
        {
            vars[ip->idx] = wmul(s[1], s[2]);
            aluEvals += collect;
        }
        NEXT();
        CASE(AluAnd)
        {
            vars[ip->idx] = land(s[1], s[2]);
            aluEvals += collect;
        }
        NEXT();
        CASE(AluOr)
        {
            vars[ip->idx] =
                wsub(wadd(s[1], s[2]), land(s[1], s[2]));
            aluEvals += collect;
        }
        NEXT();
        CASE(AluXor)
        {
            vars[ip->idx] =
                wsub(wadd(s[1], s[2]), wmul(land(s[1], s[2]), 2));
            aluEvals += collect;
        }
        NEXT();
        CASE(AluEq)
        {
            vars[ip->idx] = s[1] == s[2] ? 1 : 0;
            aluEvals += collect;
        }
        NEXT();
        CASE(AluLt)
        {
            vars[ip->idx] = s[1] < s[2] ? 1 : 0;
            aluEvals += collect;
        }
        NEXT();

        CASE(StoreS)
        {
            vars[ip->idx] = s[ip->reg];
        }
        NEXT();
        CASE(StoreC)
        {
            vars[ip->idx] = ip->a;
        }
        NEXT();
        CASE(StoreFVar)
        {
            vars[ip->idx] = ASIM_FLDVC(*ip);
        }
        NEXT();
        CASE(StoreFTemp)
        {
            vars[ip->idx] = ASIM_FLDTC(*ip);
        }
        NEXT();

        CASE(Switch)
        {
            if (static_cast<uint32_t>(s[0]) >=
                static_cast<uint32_t>(ip->b))
                selFail(*ip, s[0], curCycle());
            selEvals += collect;
            JUMP(jt[ip->a + s[0]]);
        }
        CASE(Jump)
        {
            JUMP(ip->a);
        }
        CASE(SelTable)
        {
            if (static_cast<uint32_t>(s[0]) >=
                static_cast<uint32_t>(ip->b))
                selFail(*ip, s[0], curCycle());
            selEvals += collect;
            vars[ip->idx] = ct[ip->a + s[0]];
        }
        NEXT();

        CASE(MemAdr)
        {
            mems[ip->idx].adr = s[0];
        }
        NEXT();
        CASE(MemOpn)
        {
            mems[ip->idx].opn = s[0];
        }
        NEXT();
        CASE(MemAdrC)
        {
            mems[ip->idx].adr = ip->a;
        }
        NEXT();
        CASE(MemOpnC)
        {
            mems[ip->idx].opn = ip->a;
        }
        NEXT();
        CASE(MemAdrFVar)
        {
            mems[ip->idx].adr = ASIM_FLDVC(*ip);
        }
        NEXT();
        CASE(MemAdrFTemp)
        {
            mems[ip->idx].adr = ASIM_FLDTC(*ip);
        }
        NEXT();
        CASE(MemOpnFVar)
        {
            mems[ip->idx].opn = ASIM_FLDVC(*ip);
        }
        NEXT();
        CASE(MemOpnFTemp)
        {
            mems[ip->idx].opn = ASIM_FLDTC(*ip);
        }
        NEXT();

        CASE(MemRead)
        {
            MemoryState &ms = mems[ip->idx];
            if (!(ip->reg & kMemFlagNoCheck) && badAddr(ms))
                checkAddr(ms, ip->idx, curCycle());
            if (!(ip->reg & kMemFlagElideTemp))
                ms.temp = ms.cells[ms.adr];
            if (collect)
                ++stats_.mems[ip->idx].reads;
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();
        CASE(MemWrite)
        {
            MemoryState &ms = mems[ip->idx];
            if (!(ip->reg & kMemFlagNoCheck) && badAddr(ms))
                checkAddr(ms, ip->idx, curCycle());
            ms.temp = s[1];
            ms.cells[ms.adr] = s[1];
            if (collect)
                ++stats_.mems[ip->idx].writes;
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();
        CASE(MemInput)
        {
            MemoryState &ms = mems[ip->idx];
            ms.temp = io->input(ms.adr);
            if (collect)
                ++stats_.mems[ip->idx].inputs;
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();
        CASE(MemOutput)
        {
            MemoryState &ms = mems[ip->idx];
            ms.temp = s[1];
            io->output(ms.adr, s[1]);
            if (collect)
                ++stats_.mems[ip->idx].outputs;
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();
        CASE(MemGenPre)
        {
            MemoryState &ms = mems[ip->idx];
            const int32_t mop = land(ms.opn, 3);
            if (mop == mem_op::kWrite || mop == mem_op::kOutput)
                NEXT(); // fall through to the data expression code
            if (mop == mem_op::kRead) {
                if (!(ip->reg & kMemFlagNoCheck) && badAddr(ms))
                    checkAddr(ms, ip->idx, curCycle());
                if (!(ip->reg & kMemFlagElideTemp))
                    ms.temp = ms.cells[ms.adr];
                if (collect)
                    ++stats_.mems[ip->idx].reads;
            } else { // input
                ms.temp = io->input(ms.adr);
                if (collect)
                    ++stats_.mems[ip->idx].inputs;
            }
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
            JUMP(ip->a);
        }
        CASE(MemGenData)
        {
            MemoryState &ms = mems[ip->idx];
            const int32_t mop = land(ms.opn, 3);
            if (mop == mem_op::kWrite &&
                !(ip->reg & kMemFlagNoCheck) && badAddr(ms))
                checkAddr(ms, ip->idx,
                          curCycle()); // before the latch is touched
            ms.temp = s[1];
            if (mop == mem_op::kWrite) {
                ms.cells[ms.adr] = s[1];
                if (collect)
                    ++stats_.mems[ip->idx].writes;
            } else { // output
                io->output(ms.adr, s[1]);
                if (collect)
                    ++stats_.mems[ip->idx].outputs;
            }
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();

        CASE(TraceCycle)
        {
            if (tracing) {
                cycle_ = curCycle();
                traceCycle();
            }
        }
        NEXT();
        CASE(EndCycle)
        {
            if (--left == 0)
                goto done;
            JUMP(0);
        }
        CASE(Nop)
        {
        }
        NEXT();
        CASE(Ext)
        {
            // Never dispatched: extension words are decoded by their
            // owning superinstruction (sim/optimizer.cc keeps jump
            // targets off them).
            throw SimError("internal: executed an extension word");
        }

        CASE(LoadPairCC)
        {
            const Instr &e = ip[1];
            s[ip->reg] = ip->a;
            s[e.reg] = e.a;
        }
        NEXT2();
        CASE(LoadPairCV)
        {
            const Instr &e = ip[1];
            s[ip->reg] = ip->a;
            s[e.reg] = ASIM_FLDV(e);
        }
        NEXT2();
        CASE(LoadPairCT)
        {
            const Instr &e = ip[1];
            s[ip->reg] = ip->a;
            s[e.reg] = ASIM_FLDT(e);
        }
        NEXT2();
        CASE(LoadPairVC)
        {
            const Instr &e = ip[1];
            s[ip->reg] = ASIM_FLDV(*ip);
            s[e.reg] = e.a;
        }
        NEXT2();
        CASE(LoadPairVV)
        {
            const Instr &e = ip[1];
            s[ip->reg] = ASIM_FLDV(*ip);
            s[e.reg] = ASIM_FLDV(e);
        }
        NEXT2();
        CASE(LoadPairVT)
        {
            const Instr &e = ip[1];
            s[ip->reg] = ASIM_FLDV(*ip);
            s[e.reg] = ASIM_FLDT(e);
        }
        NEXT2();
        CASE(LoadPairTC)
        {
            const Instr &e = ip[1];
            s[ip->reg] = ASIM_FLDT(*ip);
            s[e.reg] = e.a;
        }
        NEXT2();
        CASE(LoadPairTV)
        {
            const Instr &e = ip[1];
            s[ip->reg] = ASIM_FLDT(*ip);
            s[e.reg] = ASIM_FLDV(e);
        }
        NEXT2();
        CASE(LoadPairTT)
        {
            const Instr &e = ip[1];
            s[ip->reg] = ASIM_FLDT(*ip);
            s[e.reg] = ASIM_FLDT(e);
        }
        NEXT2();

        CASE(LoadAccCV)
        {
            const Instr &e = ip[1];
            s[ip->reg] = wadd(ip->a, ASIM_FLDV(e));
        }
        NEXT2();
        CASE(LoadAccCT)
        {
            const Instr &e = ip[1];
            s[ip->reg] = wadd(ip->a, ASIM_FLDT(e));
        }
        NEXT2();
        CASE(LoadAccVV)
        {
            const Instr &e = ip[1];
            s[ip->reg] = wadd(ASIM_FLDV(*ip), ASIM_FLDV(e));
        }
        NEXT2();
        CASE(LoadAccVT)
        {
            const Instr &e = ip[1];
            s[ip->reg] = wadd(ASIM_FLDV(*ip), ASIM_FLDT(e));
        }
        NEXT2();
        CASE(LoadAccTV)
        {
            const Instr &e = ip[1];
            s[ip->reg] = wadd(ASIM_FLDT(*ip), ASIM_FLDV(e));
        }
        NEXT2();
        CASE(LoadAccTT)
        {
            const Instr &e = ip[1];
            s[ip->reg] = wadd(ASIM_FLDT(*ip), ASIM_FLDT(e));
        }
        NEXT2();

        CASE(MemLatchCC)
        {
            MemoryState &ms = mems[ip->idx];
            ms.adr = ip->a;
            ms.opn = ip->b;
        }
        NEXT();
        CASE(MemLatchVC)
        {
            MemoryState &ms = mems[ip->idx];
            ms.adr = ASIM_FLDVC(*ip);
            ms.opn = ip[1].a;
        }
        NEXT2();
        CASE(MemLatchTC)
        {
            MemoryState &ms = mems[ip->idx];
            ms.adr = ASIM_FLDTC(*ip);
            ms.opn = ip[1].a;
        }
        NEXT2();
        CASE(MemLatchVV)
        {
            const Instr &e = ip[1];
            MemoryState &ms = mems[ip->idx];
            ms.adr = ASIM_FLDVC(*ip);
            ms.opn = ASIM_FLDVC(e);
        }
        NEXT2();

        CASE(MemWriteC)
        {
            MemoryState &ms = mems[ip->idx];
            if (!(ip->reg & kMemFlagNoCheck) && badAddr(ms))
                checkAddr(ms, ip->idx, curCycle());
            ms.temp = ip->a;
            ms.cells[ms.adr] = ip->a;
            if (collect)
                ++stats_.mems[ip->idx].writes;
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();
        CASE(MemWriteV)
        {
            MemoryState &ms = mems[ip->idx];
            if (!(ip->reg & kMemFlagNoCheck) && badAddr(ms))
                checkAddr(ms, ip->idx, curCycle());
            const int32_t d = ASIM_FLDVC(*ip);
            ms.temp = d;
            ms.cells[ms.adr] = d;
            if (collect)
                ++stats_.mems[ip->idx].writes;
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();
        CASE(MemWriteT)
        {
            MemoryState &ms = mems[ip->idx];
            if (!(ip->reg & kMemFlagNoCheck) && badAddr(ms))
                checkAddr(ms, ip->idx, curCycle());
            const int32_t d = ASIM_FLDTC(*ip);
            ms.temp = d;
            ms.cells[ms.adr] = d;
            if (collect)
                ++stats_.mems[ip->idx].writes;
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();
        CASE(MemOutputC)
        {
            MemoryState &ms = mems[ip->idx];
            ms.temp = ip->a;
            io->output(ms.adr, ip->a);
            if (collect)
                ++stats_.mems[ip->idx].outputs;
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();
        CASE(MemOutputV)
        {
            MemoryState &ms = mems[ip->idx];
            const int32_t d = ASIM_FLDVC(*ip);
            ms.temp = d;
            io->output(ms.adr, d);
            if (collect)
                ++stats_.mems[ip->idx].outputs;
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();
        CASE(MemOutputT)
        {
            MemoryState &ms = mems[ip->idx];
            const int32_t d = ASIM_FLDTC(*ip);
            ms.temp = d;
            io->output(ms.adr, d);
            if (collect)
                ++stats_.mems[ip->idx].outputs;
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();

        CASE(SelTableV)
        {
            const Instr &e = ip[1];
            const int32_t sel = ASIM_FLDV(e);
            if (static_cast<uint32_t>(sel) >=
                static_cast<uint32_t>(ip->b))
                selFail(*ip, sel, curCycle());
            selEvals += collect;
            vars[ip->idx] = ct[ip->a + sel];
        }
        NEXT2();
        CASE(SelTableT)
        {
            const Instr &e = ip[1];
            const int32_t sel = ASIM_FLDT(e);
            if (static_cast<uint32_t>(sel) >=
                static_cast<uint32_t>(ip->b))
                selFail(*ip, sel, curCycle());
            selEvals += collect;
            vars[ip->idx] = ct[ip->a + sel];
        }
        NEXT2();
        CASE(SwitchV)
        {
            const Instr &e = ip[1];
            const int32_t sel = ASIM_FLDV(e);
            if (static_cast<uint32_t>(sel) >=
                static_cast<uint32_t>(ip->b))
                selFail(*ip, sel, curCycle());
            selEvals += collect;
            JUMP(jt[ip->a + sel]);
        }
        CASE(SwitchT)
        {
            const Instr &e = ip[1];
            const int32_t sel = ASIM_FLDT(e);
            if (static_cast<uint32_t>(sel) >=
                static_cast<uint32_t>(ip->b))
                selFail(*ip, sel, curCycle());
            selEvals += collect;
            JUMP(jt[ip->a + sel]);
        }

        CASE(StoreSJ)
        {
            vars[ip->idx] = s[ip->reg];
            JUMP(ip->a);
        }
        CASE(StoreCJ)
        {
            vars[ip->idx] = ip->a;
            JUMP(ip->b);
        }
        CASE(StoreFVarJ)
        {
            vars[ip->idx] = ASIM_FLDVC(*ip);
            JUMP(ip[1].a);
        }
        CASE(StoreFTempJ)
        {
            vars[ip->idx] = ASIM_FLDTC(*ip);
            JUMP(ip[1].a);
        }

        CASE(MemLatchCV)
        {
            const Instr &e = ip[1];
            MemoryState &ms = mems[ip->idx];
            ms.adr = ip->a;
            ms.opn = ASIM_FLDVC(e);
        }
        NEXT2();
        CASE(MemLatchCT)
        {
            const Instr &e = ip[1];
            MemoryState &ms = mems[ip->idx];
            ms.adr = ip->a;
            ms.opn = ASIM_FLDTC(e);
        }
        NEXT2();
        CASE(MemLatchVT)
        {
            const Instr &e = ip[1];
            MemoryState &ms = mems[ip->idx];
            ms.adr = ASIM_FLDVC(*ip);
            ms.opn = ASIM_FLDTC(e);
        }
        NEXT2();
        CASE(MemLatchTV)
        {
            const Instr &e = ip[1];
            MemoryState &ms = mems[ip->idx];
            ms.adr = ASIM_FLDTC(*ip);
            ms.opn = ASIM_FLDVC(e);
        }
        NEXT2();
        CASE(MemLatchTT)
        {
            const Instr &e = ip[1];
            MemoryState &ms = mems[ip->idx];
            ms.adr = ASIM_FLDTC(*ip);
            ms.opn = ASIM_FLDTC(e);
        }
        NEXT2();

        CASE(MemGenDataC)
        {
            MemoryState &ms = mems[ip->idx];
            const int32_t mop = land(ms.opn, 3);
            const int32_t d = ip->a;
            if (mop == mem_op::kWrite) {
                if (!(ip->reg & kMemFlagNoCheck) && badAddr(ms))
                    checkAddr(ms, ip->idx, curCycle());
                ms.temp = d;
                ms.cells[ms.adr] = d;
                if (collect)
                    ++stats_.mems[ip->idx].writes;
            } else { // output
                ms.temp = d;
                io->output(ms.adr, d);
                if (collect)
                    ++stats_.mems[ip->idx].outputs;
            }
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();
        CASE(MemGenDataV)
        {
            MemoryState &ms = mems[ip->idx];
            const int32_t mop = land(ms.opn, 3);
            const int32_t d = ASIM_FLDVC(*ip);
            if (mop == mem_op::kWrite) {
                if (!(ip->reg & kMemFlagNoCheck) && badAddr(ms))
                    checkAddr(ms, ip->idx, curCycle());
                ms.temp = d;
                ms.cells[ms.adr] = d;
                if (collect)
                    ++stats_.mems[ip->idx].writes;
            } else { // output
                ms.temp = d;
                io->output(ms.adr, d);
                if (collect)
                    ++stats_.mems[ip->idx].outputs;
            }
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();
        CASE(MemGenDataT)
        {
            MemoryState &ms = mems[ip->idx];
            const int32_t mop = land(ms.opn, 3);
            const int32_t d = ASIM_FLDTC(*ip);
            if (mop == mem_op::kWrite) {
                if (!(ip->reg & kMemFlagNoCheck) && badAddr(ms))
                    checkAddr(ms, ip->idx, curCycle());
                ms.temp = d;
                ms.cells[ms.adr] = d;
                if (collect)
                    ++stats_.mems[ip->idx].writes;
            } else { // output
                ms.temp = d;
                io->output(ms.adr, d);
                if (collect)
                    ++stats_.mems[ip->idx].outputs;
            }
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();

        // Fused two-operand ALUs (one handler per op x bank combo,
        // generated from the shared X-macro so the decode expressions
        // are compile-time constants in every handler).
#define ASIM_ALU_FUSED_HANDLER(OPNAME, COMBO, LEXPR, REXPR, VEXPR)     \
        CASE(AluF##OPNAME##COMBO)                                      \
        {                                                              \
            const Instr &e = ip[1];                                    \
            (void)e;                                                   \
            const int32_t l = (LEXPR);                                 \
            const int32_t r = (REXPR);                                 \
            vars[ip->idx] = (VEXPR);                                   \
            aluEvals += collect;                                       \
        }                                                              \
        NEXT2();
        ASIM_ALU_FUSED_ALL(ASIM_ALU_FUSED_HANDLER)
#undef ASIM_ALU_FUSED_HANDLER

        // The selected case's descriptor decodes as one arithmetic
        // form, bias + field(bank[slot]), with the descriptor's reg
        // bit picking the bank (0 = vars, 1 = mem temps).  Constant
        // cases ride the vars form with a zero mask, so only
        // genuinely mixed var/temp selectors pay a data-dependent
        // bank branch.
        CASE(SelStoreV)
        {
            const Instr &e = ip[1];
            const int32_t sel = ASIM_FLDVC(e);
            if (static_cast<uint32_t>(sel) >=
                static_cast<uint32_t>(ip->b))
                selFail(*ip, sel, curCycle());
            selEvals += collect;
            const Instr &d = ip[2 + sel];
            const int32_t src = d.reg ? mems[d.idx].temp
                                      : vars[d.idx];
            vars[ip->idx] =
                d.c + shiftField(land(src, d.a), d.b);
            NEXTN(static_cast<int64_t>(ip->b) + 2);
        }
        CASE(SelStoreT)
        {
            const Instr &e = ip[1];
            const int32_t sel = ASIM_FLDTC(e);
            if (static_cast<uint32_t>(sel) >=
                static_cast<uint32_t>(ip->b))
                selFail(*ip, sel, curCycle());
            selEvals += collect;
            const Instr &d = ip[2 + sel];
            const int32_t src = d.reg ? mems[d.idx].temp
                                      : vars[d.idx];
            vars[ip->idx] =
                d.c + shiftField(land(src, d.a), d.b);
            NEXTN(static_cast<int64_t>(ip->b) + 2);
        }

        CASE(TraceLatchRun)
        {
            if (tracing) {
                cycle_ = curCycle();
                traceCycle();
            }
            const Instr *q = ip + 1;
            const Instr *const qe = q + ip->b;
            do {
                const Instr &in = *q;
                MemoryState &ms = mems[in.idx];
                switch (in.op) {
                  case Op::MemLatchCC:
                    ms.adr = in.a;
                    ms.opn = in.b;
                    q += 1;
                    break;
                  case Op::MemLatchCV:
                    ms.adr = in.a;
                    ms.opn = ASIM_FLDVC(q[1]);
                    q += 2;
                    break;
                  case Op::MemLatchCT:
                    ms.adr = in.a;
                    ms.opn = ASIM_FLDTC(q[1]);
                    q += 2;
                    break;
                  case Op::MemLatchVC:
                    ms.adr = ASIM_FLDVC(in);
                    ms.opn = q[1].a;
                    q += 2;
                    break;
                  case Op::MemLatchTC:
                    ms.adr = ASIM_FLDTC(in);
                    ms.opn = q[1].a;
                    q += 2;
                    break;
                  case Op::MemLatchVV:
                    ms.adr = ASIM_FLDVC(in);
                    ms.opn = ASIM_FLDVC(q[1]);
                    q += 2;
                    break;
                  case Op::MemLatchVT:
                    ms.adr = ASIM_FLDVC(in);
                    ms.opn = ASIM_FLDTC(q[1]);
                    q += 2;
                    break;
                  case Op::MemLatchTV:
                    ms.adr = ASIM_FLDTC(in);
                    ms.opn = ASIM_FLDVC(q[1]);
                    q += 2;
                    break;
                  default: // MemLatchTT (the fuser admits no others)
                    ms.adr = ASIM_FLDTC(in);
                    ms.opn = ASIM_FLDTC(q[1]);
                    q += 2;
                    break;
                }
            } while (q < qe);
            NEXTN(1 + ip->b);
        }

        CASE(AluGenF)
        {
            const Instr &e1 = ip[1];
            const Instr &e2 = ip[2];
            const Instr &e3 = ip[3];
            const uint8_t banks = ip->reg;
            const int32_t f = (banks & 3) == 0 ? e1.a
                              : (banks & 3) == 1 ? ASIM_FLDV(e1)
                                                 : ASIM_FLDT(e1);
            const int32_t l = (banks & 12) == 0 ? e2.a
                              : (banks & 12) == 4 ? ASIM_FLDV(e2)
                                                  : ASIM_FLDT(e2);
            const int32_t r = (banks & 48) == 0 ? e3.a
                              : (banks & 48) == 16 ? ASIM_FLDV(e3)
                                                   : ASIM_FLDT(e3);
            vars[ip->idx] = dologic(f, l, r, alu);
            aluEvals += collect;
            NEXTN(4);
        }

        // The general memory ops fold read and write into one
        // branch-free path: a read stores the cell's own value back,
        // so only the rare I/O pair takes a branch. The per-cycle
        // read/write mix is data-dependent (it was the worst
        // misprediction source in the profile), while op-vs-I/O is
        // fixed per memory and predicts perfectly.
        CASE(MemGenC)
        {
            MemoryState &ms = mems[ip->idx];
            const int32_t mop = land(ms.opn, 3);
            if (mop <= mem_op::kWrite) { // read or write, merged
                if (!(ip->reg & kMemFlagNoCheck) && badAddr(ms))
                    checkAddr(ms, ip->idx, curCycle());
                int32_t *cell = &ms.cells[ms.adr];
                const bool wr = mop == mem_op::kWrite;
                const int32_t v = wr ? ip->a : *cell;
                *cell = v;
                const bool keep =
                    !wr && (ip->reg & kMemFlagElideTemp);
                ms.temp = keep ? ms.temp : v;
                if (collect)
                    ++(wr ? stats_.mems[ip->idx].writes
                          : stats_.mems[ip->idx].reads);
            } else if (mop == mem_op::kOutput) {
                ms.temp = ip->a;
                io->output(ms.adr, ip->a);
                if (collect)
                    ++stats_.mems[ip->idx].outputs;
            } else { // input
                ms.temp = io->input(ms.adr);
                if (collect)
                    ++stats_.mems[ip->idx].inputs;
            }
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();
        CASE(MemGenV)
        {
            MemoryState &ms = mems[ip->idx];
            const int32_t mop = land(ms.opn, 3);
            if (mop <= mem_op::kWrite) { // read or write, merged
                if (!(ip->reg & kMemFlagNoCheck) && badAddr(ms))
                    checkAddr(ms, ip->idx, curCycle());
                int32_t *cell = &ms.cells[ms.adr];
                const bool wr = mop == mem_op::kWrite;
                const int32_t v = wr ? ASIM_FLDVC(*ip) : *cell;
                *cell = v;
                const bool keep =
                    !wr && (ip->reg & kMemFlagElideTemp);
                ms.temp = keep ? ms.temp : v;
                if (collect)
                    ++(wr ? stats_.mems[ip->idx].writes
                          : stats_.mems[ip->idx].reads);
            } else if (mop == mem_op::kOutput) {
                const int32_t d = ASIM_FLDVC(*ip);
                ms.temp = d;
                io->output(ms.adr, d);
                if (collect)
                    ++stats_.mems[ip->idx].outputs;
            } else { // input
                ms.temp = io->input(ms.adr);
                if (collect)
                    ++stats_.mems[ip->idx].inputs;
            }
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();
        CASE(MemGenT)
        {
            MemoryState &ms = mems[ip->idx];
            const int32_t mop = land(ms.opn, 3);
            if (mop <= mem_op::kWrite) { // read or write, merged
                if (!(ip->reg & kMemFlagNoCheck) && badAddr(ms))
                    checkAddr(ms, ip->idx, curCycle());
                int32_t *cell = &ms.cells[ms.adr];
                const bool wr = mop == mem_op::kWrite;
                const int32_t v = wr ? ASIM_FLDTC(*ip) : *cell;
                *cell = v;
                const bool keep =
                    !wr && (ip->reg & kMemFlagElideTemp);
                ms.temp = keep ? ms.temp : v;
                if (collect)
                    ++(wr ? stats_.mems[ip->idx].writes
                          : stats_.mems[ip->idx].reads);
            } else if (mop == mem_op::kOutput) {
                const int32_t d = ASIM_FLDTC(*ip);
                ms.temp = d;
                io->output(ms.adr, d);
                if (collect)
                    ++stats_.mems[ip->idx].outputs;
            } else { // input
                ms.temp = io->input(ms.adr);
                if (collect)
                    ++stats_.mems[ip->idx].inputs;
            }
            if (ip->reg & (kMemFlagTraceW | kMemFlagTraceR))
                memTrace(ms, *ip);
        }
        NEXT();

#if !ASIM_VM_THREADED
            }
        }
#endif
    } catch (...) {
        flush();
        throw;
    }

done:
    flush();
}

void
Vm::step()
{
    runCycles(1);
}

void
Vm::run(uint64_t cycles)
{
    if (cycles > 0)
        runCycles(cycles);
}

const char *
vmDispatchMode()
{
#if ASIM_VM_THREADED
    return "computed-goto (threaded)";
#else
    return "portable switch";
#endif
}

std::unique_ptr<Engine>
makeVm(const ResolvedSpec &rs, const EngineConfig &cfg,
       const CompilerOptions &opts)
{
    return makeVm(std::make_shared<const ResolvedSpec>(rs), cfg,
                  opts);
}

std::unique_ptr<Engine>
makeVm(std::shared_ptr<const ResolvedSpec> rs, const EngineConfig &cfg,
       const CompilerOptions &opts)
{
    return std::make_unique<Vm>(std::move(rs), cfg, opts);
}

std::unique_ptr<Engine>
makeVm(std::shared_ptr<const ResolvedSpec> rs, const EngineConfig &cfg,
       std::shared_ptr<const Program> program)
{
    return std::make_unique<Vm>(std::move(rs), cfg,
                                std::move(program));
}

} // namespace asim
