/**
 * @file
 * The Simulation facade and engine registry — the single front door
 * to the paper's interchangeable execution systems.
 *
 * The thesis' central claim is that one RTL description drives
 * multiple execution systems: the ASIM table interpreter and the
 * compiled ASIM II pipeline. This header makes that claim an API:
 *
 *  - EngineRegistry maps engine names to factories. Built-ins:
 *      "interp"   slot-resolved table interpreter (ASIM analog)
 *      "vm"       compiled bytecode VM (portable ASIM II analog)
 *      "native"   generated C++ + host compiler, out of process
 *                 (the ASIM II pipeline proper)
 *      "symbolic" name-lookup interpreter (faithful ASIM baseline)
 *
 *  - Simulation owns the whole parse -> resolve -> engine pipeline
 *    behind one options struct, plus run control: step()/run(n),
 *    runUntil(predicate)/watchpoints, snapshot()/restore(), and
 *    batched construction of independent instances that share one
 *    resolve.
 *
 * Every consumer (CLIs, equivalence tests, benchmarks) constructs
 * engines through this facade; makeInterpreter()/makeVm() are for
 * sim internals and engine unit tests only.
 */

#ifndef ASIM_SIM_SIMULATION_HH
#define ASIM_SIM_SIMULATION_HH

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/fault.hh"
#include "sim/engine.hh"

namespace asim {

struct NativeBuild;

/** Everything an engine factory may need beyond the resolved spec. */
struct EngineContext
{
    EngineConfig config;
    CompilerOptions compiler;

    /** Pre-compiled bytecode for the "vm" engine; when set, the
     *  factory shares it instead of compiling. Must come from the
     *  same resolved spec with trace checks kept whenever
     *  config.trace may be set (batch construction compiles once and
     *  shares the immutable program across every instance). */
    std::shared_ptr<const Program> program;

    /** Pre-compiled serve-capable simulator for the "native" engine;
     *  when set, the factory adopts it instead of generating and
     *  host-compiling — a batch compiles the binary once and every
     *  instance spawns its own child process off it. Same provenance
     *  rules as `program`. */
    std::shared_ptr<const NativeBuild> nativeBuild;

    /** Scripted stdin for out-of-process engines; in-process engines
     *  receive their inputs through config.io instead. */
    std::string stdinText;

    /** Stream for non-trace output of out-of-process engines. */
    std::ostream *ioEcho = nullptr;

    /** Artifact directory for engines that build binaries; empty
     *  means a fresh temporary directory owned by the engine. */
    std::string workDir;

    /// @{ Intra-spec parallelism (sim/partition.hh); honored by the
    /// "interp" factory, ignored by the other engines.
    unsigned partitions = 1;
    size_t partitionMinComponents = 256;
    /// @}
};

/** String-keyed factory table of execution engines. */
class EngineRegistry
{
  public:
    /** Factories receive the spec as a shared immutable pointer so
     *  engines reference (never copy) one resolve — the invariant
     *  batch construction and parallel execution rely on. */
    using Factory = std::function<std::unique_ptr<Engine>(
        const std::shared_ptr<const ResolvedSpec> &,
        const EngineContext &)>;

    /** The process-wide registry, pre-populated with the built-in
     *  engines named in the file comment. */
    static EngineRegistry &global();

    /**
     * Register an engine.
     *
     * @param outOfProcess true when the engine executes outside this
     *        process (I/O over stdio rather than an IoDevice); the
     *        facade wires I/O accordingly
     * @throws SimError on a duplicate name
     */
    void add(const std::string &name, const std::string &description,
             Factory factory, bool outOfProcess = false);

    bool contains(std::string_view name) const;

    /** True for registered engines that run outside this process. */
    bool outOfProcess(std::string_view name) const;

    /** All registered (name, description) pairs, sorted by name. */
    std::vector<std::pair<std::string, std::string>> list() const;

    /** Construct an engine by name. @throws SimError naming the
     *  registered engines when `name` is unknown */
    std::unique_ptr<Engine>
    make(std::string_view name,
         const std::shared_ptr<const ResolvedSpec> &rs,
         const EngineContext &ctx) const;

  private:
    struct Entry
    {
        Factory factory;
        std::string description;
        bool outOfProcess = false;
    };

    [[noreturn]] void throwUnknown(std::string_view name) const;

    std::map<std::string, Entry, std::less<>> entries_;
};

/** How the facade wires memory-mapped I/O when no explicit IoDevice
 *  is supplied in SimulationOptions::config. */
enum class IoMode
{
    /** No I/O: inputs read zero, outputs are discarded. */
    Null,

    /** Thesis-style stream I/O on ioIn/ioOut (default std::cin /
     *  std::cout): prompts, char reads at address 0. Out-of-process
     *  engines consume ioIn in full up front (set it to a string
     *  stream; a truly interactive native run is not supported). */
    Interactive,

    /** Scripted: inputs come from `scriptInputs`, outputs render in
     *  the thesis text format onto ioOut. */
    Script,
};

/** Options assembling one simulation end to end. */
struct SimulationOptions
{
    /// @{ Specification source — exactly one must be set.
    std::string specFile;
    std::string specText;
    std::shared_ptr<const ResolvedSpec> resolved;
    /// @}

    /** Engine name in the registry. */
    std::string engine = "vm";

    /** Engine options. An explicit config.trace / config.io here
     *  overrides the traceStream / ioMode wiring below. */
    EngineConfig config;

    /** Bytecode-compiler options ("vm"); the "native" engine maps the
     *  shared flags onto its code generator. */
    CompilerOptions compiler;

    /** Pre-compiled shared bytecode for the "vm" engine (see
     *  EngineContext::program). makeBatch() fills this in
     *  automatically; set it by hand only with bytecode compiled
     *  from the same `resolved` spec and compatible options. */
    std::shared_ptr<const Program> program;

    /** Pre-compiled shared simulator for the "native" engine (see
     *  EngineContext::nativeBuild); filled in by
     *  shareBatchArtifacts() under the same rules as `program`. */
    std::shared_ptr<const NativeBuild> nativeBuild;

    /// @{ I/O wiring (used when config.io is null)
    IoMode ioMode = IoMode::Null;
    std::vector<int32_t> scriptInputs;
    std::istream *ioIn = nullptr;
    std::ostream *ioOut = nullptr;
    /// @}

    /**
     * Fault to inject, in the shared grammar of analysis/fault.hh:
     * `component[cell]:bit:mode[@cycle]`. Empty means a healthy run.
     *
     * Without `@cycle` the fault is a permanent spec splice: the
     * facade resolves the *spliced* specification (note the spec
     * identity hash — and hence checkpoint compatibility — changes
     * with it). With `@cycle` the specification is untouched and the
     * facade perturbs engine state once, before the first cycle
     * executed at or after that boundary; restoring a snapshot from
     * an earlier cycle re-arms the injection, restoring one from a
     * later cycle cancels it (the fault lies in the restored
     * history). Uniform across the CLI (--inject=), batch manifests
     * (fault=), and campaigns.
     */
    std::string fault;

    /** When set (and config.trace is null), trace in the thesis text
     *  format onto this stream. */
    std::ostream *traceStream = nullptr;

    /** Artifact directory for the native engine. */
    std::string workDir;

    /** Intra-spec parallelism: split one design's cycle across this
     *  many worker lanes (sim/partition.hh). Requires the "interp"
     *  engine; 0/1 means serial. Results are byte-identical to
     *  serial execution at any lane count. */
    unsigned partitions = 1;

    /** Keep the serial interpreter (even with partitions >= 2) for
     *  specs below this many combinational components — barrier
     *  overhead dwarfs the work on small machines. Defaults to
     *  kPartitionAutoThreshold (sim/partition.hh); tests lower it to
     *  force tiny specs through the partitioned path. */
    size_t partitionMinComponents = 256;
};

/**
 * A fully assembled simulation: resolved specification + engine +
 * I/O/trace wiring, with run control. See the file comment.
 */
class Simulation
{
  public:
    /** Build the whole pipeline. @throws SpecError on specification
     *  problems, SimError on engine/options problems */
    explicit Simulation(const SimulationOptions &opts);

    /** Parse + resolve the options' specification source without
     *  building an engine (shared by tools like asim2c). */
    static ResolvedSpec loadSpec(const SimulationOptions &opts,
                                 Diagnostics *diag = nullptr);

    /** Parse a script file of whitespace-separated integer inputs;
     *  `#` starts a comment running to end of line. @throws SimError
     *  on an unreadable file or a non-integer token */
    static std::vector<int32_t> loadScript(const std::string &path);

    /** Construct `count` independent instances that share a single
     *  parse+resolve — and, for the "vm" engine, a single compiled
     *  program (throughput workloads; see sim/batch.hh for the
     *  parallel driver). Each instance gets its own engine and, in
     *  Script mode, its own input queue. */
    static std::vector<std::unique_ptr<Simulation>>
    makeBatch(const SimulationOptions &opts, size_t count);

    /** The sharing half of makeBatch(): return a copy of `opts` with
     *  the spec resolved once and (for "vm") the bytecode compiled
     *  once, ready to construct any number of instances. Pass
     *  `forceTracingPossible` when a trace sink will be attached
     *  only later (BatchRunner's per-instance capture), so the
     *  shared bytecode keeps its trace checks. */
    static SimulationOptions
    shareBatchArtifacts(const SimulationOptions &opts,
                        bool forceTracingPossible = false);

    const std::string &engineName() const { return engineName_; }
    Engine &engine() { return *engine_; }
    const Engine &engine() const { return *engine_; }
    const ResolvedSpec &resolved() const { return *rs_; }
    const Diagnostics &diagnostics() const { return diag_; }

    /// @{ Run control (forwarded to the engine; the facade applies a
    /// pending @cycle fault at its boundary on the way)
    void reset();
    void step();
    void run(uint64_t cycles);
    uint64_t cycle() const { return engine_->cycle(); }
    /// @}

    /** Cycles+1 of the spec's `=` line (the thesis' inclusive run
     *  length), or -1 when the spec names no cycle count. */
    int64_t defaultCycles() const;

    using Predicate = std::function<bool(const Simulation &)>;

    /** Step until `pred(*this)` holds (checked after each cycle) or
     *  `maxCycles` cycles have executed; returns cycles executed. */
    uint64_t runUntil(const Predicate &pred, uint64_t maxCycles);

    /** Watchpoint: step until component `name` reads `value`. */
    uint64_t runUntilValue(std::string_view name, int32_t value,
                           uint64_t maxCycles);

    int32_t value(std::string_view name) const
    {
        return engine_->value(name);
    }
    int32_t memCell(std::string_view mem, int64_t addr) const
    {
        return engine_->memCell(mem, addr);
    }
    const SimStats &stats() const { return engine_->stats(); }

    EngineSnapshot snapshot() const { return engine_->snapshot(); }
    void restore(const EngineSnapshot &snap);

    /// @{ Durable checkpoints (sim/checkpoint.hh): the snapshot
    /// serialized to a versioned, checksummed binary file bound to
    /// this specification's identity hash. A checkpoint saved by any
    /// registry engine restores under any other.
    /** Write the current snapshot to `path` (atomic: temp+rename).
     *  @throws SimError on I/O failure */
    void saveCheckpoint(const std::string &path) const;

    /** Load, validate (magic, version, checksum, spec hash, shape),
     *  and restore the checkpoint at `path`. @throws SimError with
     *  path/offset/reason on corrupt or mismatched files */
    void restoreCheckpoint(const std::string &path);

    /** This specification's content identity
     *  (analysis/resolve.hh specIdentityHash, cached). */
    uint64_t specHash() const;
    /// @}

  private:
    /** Apply the armed @cycle fault when its boundary has been
     *  reached; called before cycles execute, never after the last
     *  one (so a checkpoint saved exactly at the boundary stays
     *  healthy and a resume re-applies the fault — see
     *  SimulationOptions::fault). */
    void injectPending();

    std::shared_ptr<const ResolvedSpec> rs_;
    Diagnostics diag_;
    std::string engineName_;
    std::unique_ptr<TraceSink> ownedTrace_;
    std::unique_ptr<IoDevice> ownedIo_;
    std::unique_ptr<Engine> engine_;
    FaultSite fault_;        ///< parsed @cycle fault (hasFault_)
    bool hasFault_ = false;  ///< options carried an @cycle fault
    bool faultArmed_ = false; ///< not yet applied on this timeline
    mutable uint64_t specHash_ = 0; ///< lazy; 0 = not yet computed
};

} // namespace asim

#endif // ASIM_SIM_SIMULATION_HH
