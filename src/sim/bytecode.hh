/**
 * @file
 * Bytecode for the compiled simulation engine.
 *
 * The compiler (sim/compiler.hh) lowers a ResolvedSpec into three
 * linear instruction streams — combinational, latch, update — executed
 * in order once per cycle. Field extractions are fused into single
 * instructions (`acc += shift(value & mask)`), constants are folded,
 * ALUs with constant functions get direct opcodes (no dologic
 * dispatch), memories with constant operations get specialized
 * opcodes, all-constant selectors become direct table lookups (the
 * microcode-ROM pattern), and single-term expressions fuse with their
 * destination (store/latch). This mirrors, in a portable form, the
 * optimizations the thesis applied to generated Pascal (§4.4).
 *
 * Hot-path data (instruction stream, constant tables) is separated
 * from cold diagnostic data (component names for error messages and
 * trace events), which lives in side tables indexed by the `c` field.
 */

#ifndef ASIM_SIM_BYTECODE_HH
#define ASIM_SIM_BYTECODE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace asim {

/** VM opcodes. Scratch registers s0..s3 hold expression values. */
enum class Op : uint8_t
{
    // Expression evaluation into a scratch register.
    SetC,       ///< s[reg] = a
    LoadVar,    ///< s[reg] = shift(vars[idx] & a, b)
    LoadTemp,   ///< s[reg] = shift(mems[idx].temp & a, b)
    AccVar,     ///< s[reg] += shift(vars[idx] & a, b)
    AccTemp,    ///< s[reg] += shift(mems[idx].temp & a, b)

    // ALU evaluation (operands in s1/s2 unless noted).
    AluGen,     ///< vars[idx] = dologic(s0, s1, s2)
    AluConst,   ///< vars[idx] = dologic(a, s1, s2)
    AluZero,    ///< vars[idx] = 0
    AluRight,   ///< vars[idx] = s2
    AluLeft,    ///< vars[idx] = s1
    AluNot,     ///< vars[idx] = mask - s1
    AluAdd,     ///< vars[idx] = s1 + s2
    AluSub,     ///< vars[idx] = s1 - s2
    AluMul,     ///< vars[idx] = s1 * s2
    AluAnd,     ///< vars[idx] = s1 & s2
    AluOr,      ///< vars[idx] = s1 | s2
    AluXor,     ///< vars[idx] = s1 ^ s2
    AluEq,      ///< vars[idx] = s1 == s2
    AluLt,      ///< vars[idx] = s1 < s2

    // Stores (selector case results, folded components).
    StoreS,     ///< vars[idx] = s[reg]
    StoreC,     ///< vars[idx] = a
    StoreFVar,  ///< vars[idx] = shift(vars[c] & a, b)
    StoreFTemp, ///< vars[idx] = shift(mems[c].temp & a, b)

    // Selectors.
    Switch,     ///< jump via jumpTable[a + s0]; b = count, c = selInfo
    Jump,       ///< pc = a
    SelTable,   ///< vars[idx] = constTable[a + s0]; b = count,
                ///< c = selInfo

    // Memory latch phase.
    MemAdr,     ///< mems[idx].adr = s0
    MemOpn,     ///< mems[idx].opn = s0
    MemAdrC,    ///< mems[idx].adr = a
    MemOpnC,    ///< mems[idx].opn = a
    MemAdrFVar, ///< mems[idx].adr = shift(vars[c] & a, b)
    MemAdrFTemp,///< mems[idx].adr = shift(mems[c].temp & a, b)
    MemOpnFVar, ///< mems[idx].opn = shift(vars[c] & a, b)
    MemOpnFTemp,///< mems[idx].opn = shift(mems[c].temp & a, b)

    // Memory update phase. `reg` carries VmMemFlags.
    MemRead,    ///< specialized operation 0
    MemWrite,   ///< specialized operation 1, data in s1
    MemInput,   ///< specialized operation 2
    MemOutput,  ///< specialized operation 3, data in s1
    MemGenPre,  ///< generic: handle op 0/2 then jump a; else fall thru
    MemGenData, ///< generic: finish op 1/3 with data in s1
};

/** Per-memory flag bits carried in Instr::reg for memory opcodes. */
enum VmMemFlags : uint8_t
{
    kMemFlagTraceW = 1,    ///< trace writes (check or uncond.)
    kMemFlagTraceR = 2,    ///< trace reads
    kMemFlagElideTemp = 4, ///< §5.4: skip the unobserved latch
};

/** One VM instruction (16 bytes). */
struct Instr
{
    Op op = Op::SetC;
    uint8_t reg = 0;
    uint16_t idx = 0;
    int32_t a = 0;
    int32_t b = 0;
    int32_t c = 0;
};

/** Selector cold data (bounds diagnostics). */
struct SelInfo
{
    std::string name;
    int32_t caseCount = 0;
};

/** Per-memory cold data (names for traces and errors). */
struct VmMemInfo
{
    std::string name;
};

/** A compiled program. */
struct Program
{
    std::vector<Instr> comb;
    std::vector<Instr> latch;
    std::vector<Instr> update;
    std::vector<uint32_t> jumpTable;
    std::vector<int32_t> constTable;
    std::vector<SelInfo> selInfos;
    std::vector<VmMemInfo> memInfos;

    size_t
    totalInstructions() const
    {
        return comb.size() + latch.size() + update.size();
    }

    /** Human-readable disassembly (debugging, tests, tools). */
    std::string disassemble() const;
};

/** Name of an opcode (used by the disassembler). */
const char *opName(Op op);

} // namespace asim

#endif // ASIM_SIM_BYTECODE_HH
