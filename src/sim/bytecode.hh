/**
 * @file
 * Bytecode for the compiled simulation engine.
 *
 * The compiler (sim/compiler.hh) lowers a ResolvedSpec in two stages
 * (docs/INTERNALS.md has the full ISA reference):
 *
 * 1. **Emit** — three linear per-phase streams (combinational, latch,
 *    update) of *simple* instructions, executed in order once per
 *    cycle. Field extractions are fused into single instructions
 *    (`acc += shift(value & mask)`), constants are folded, ALUs with
 *    constant functions get direct opcodes (no dologic dispatch),
 *    memories with constant operations get specialized opcodes,
 *    all-constant selectors become direct table lookups (the
 *    microcode-ROM pattern), and single-term expressions fuse with
 *    their destination (store/latch). This mirrors, in a portable
 *    form, the optimizations the thesis applied to generated Pascal
 *    (§4.4). The phase streams are the *canonical* lowering: the
 *    disassembler prints them, and the optimizer treats them as
 *    read-only input.
 *
 * 2. **Link + optimize** (sim/optimizer.cc) — the phases are
 *    concatenated into one `cycle` stream (comb, TraceCycle, latch,
 *    update, EndCycle) that the VM executes end to end, so a run of
 *    N cycles is a single dispatch loop with no per-phase or
 *    per-cycle call overhead. On that stream the optimizer fuses
 *    adjacent instruction pairs into *superinstructions* (CVC-style
 *    compile-time collapse of per-cycle sequences), removes dead
 *    scratch-register stores the fusion orphans, and elides memory
 *    bounds checks that a static range analysis of the address
 *    expression proves can never fire.
 *
 * Superinstructions that need more operand space than one 16-byte
 * word carry an **extension word**: the following `Instr` slot holds
 * extra operands and has `op == Op::Ext`; it is decoded by its owner
 * and never dispatched (the optimizer never fuses across a jump
 * target, so control flow cannot land on an extension word).
 *
 * Hot-path data (instruction stream, constant tables) is separated
 * from cold diagnostic data (component names for error messages and
 * trace events), which lives in side tables indexed by the `c` field.
 */

#ifndef ASIM_SIM_BYTECODE_HH
#define ASIM_SIM_BYTECODE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace asim {

/**
 * X-macro generating the fused two-operand ALU superinstructions:
 * the 8 direct binary ALU ops x 8 operand-bank combos. Each
 * expansion is `X(OPNAME, COMBO, LEXPR, REXPR, VEXPR)` where LEXPR /
 * REXPR decode the left (op word) and right (Ext word `e`) operands
 * and VEXPR computes the result from `l` and `r`. The decode
 * expressions reference macros (ASIM_FLDVC, ASIM_FLDTC) defined only
 * in sim/vm.cc; other expansion sites ignore those arguments.
 *
 * Combo order (VV..CT) and op order (Add..Lt) are load-bearing: the
 * enum below and the fusion pass in sim/optimizer.cc both index into
 * this layout arithmetically.
 */
#define ASIM_ALU_FUSED_COMBOS(X, OPNAME, VEXPR)                        \
    X(OPNAME, VV, ASIM_FLDVC(*ip), ASIM_FLDVC(e), VEXPR)               \
    X(OPNAME, VT, ASIM_FLDVC(*ip), ASIM_FLDTC(e), VEXPR)               \
    X(OPNAME, TV, ASIM_FLDTC(*ip), ASIM_FLDVC(e), VEXPR)               \
    X(OPNAME, TT, ASIM_FLDTC(*ip), ASIM_FLDTC(e), VEXPR)               \
    X(OPNAME, VC, ASIM_FLDVC(*ip), e.a, VEXPR)                         \
    X(OPNAME, TC, ASIM_FLDTC(*ip), e.a, VEXPR)                         \
    X(OPNAME, CV, ip->a, ASIM_FLDVC(e), VEXPR)                         \
    X(OPNAME, CT, ip->a, ASIM_FLDTC(e), VEXPR)

#define ASIM_ALU_FUSED_ALL(X)                                          \
    ASIM_ALU_FUSED_COMBOS(X, Add, wadd(l, r))                          \
    ASIM_ALU_FUSED_COMBOS(X, Sub, wsub(l, r))                          \
    ASIM_ALU_FUSED_COMBOS(X, Mul, wmul(l, r))                          \
    ASIM_ALU_FUSED_COMBOS(X, And, land(l, r))                          \
    ASIM_ALU_FUSED_COMBOS(X, Or, wsub(wadd(l, r), land(l, r)))         \
    ASIM_ALU_FUSED_COMBOS(X, Xor,                                      \
                          wsub(wadd(l, r), wmul(land(l, r), 2)))       \
    ASIM_ALU_FUSED_COMBOS(X, Eq, (l == r ? 1 : 0))                     \
    ASIM_ALU_FUSED_COMBOS(X, Lt, (l < r ? 1 : 0))

/** VM opcodes. Scratch registers s0..s3 hold expression values.
 *
 *  The computed-goto dispatch table in sim/vm.cc lists handlers in
 *  exactly this order — keep the two in sync (a static_assert over
 *  kOpCount guards the table length). */
enum class Op : uint8_t
{
    // Expression evaluation into a scratch register.
    SetC,       ///< s[reg] = a
    LoadVar,    ///< s[reg] = shift(vars[idx] & a, b)
    LoadTemp,   ///< s[reg] = shift(mems[idx].temp & a, b)
    AccVar,     ///< s[reg] += shift(vars[idx] & a, b)
    AccTemp,    ///< s[reg] += shift(mems[idx].temp & a, b)

    // ALU evaluation (operands in s1/s2 unless noted).
    AluGen,     ///< vars[idx] = dologic(s0, s1, s2)
    AluConst,   ///< vars[idx] = dologic(a, s1, s2)
    AluZero,    ///< vars[idx] = 0
    AluRight,   ///< vars[idx] = s2
    AluLeft,    ///< vars[idx] = s1
    AluNot,     ///< vars[idx] = mask - s1
    AluAdd,     ///< vars[idx] = s1 + s2
    AluSub,     ///< vars[idx] = s1 - s2
    AluMul,     ///< vars[idx] = s1 * s2
    AluAnd,     ///< vars[idx] = s1 & s2
    AluOr,      ///< vars[idx] = s1 | s2
    AluXor,     ///< vars[idx] = s1 ^ s2
    AluEq,      ///< vars[idx] = s1 == s2
    AluLt,      ///< vars[idx] = s1 < s2

    // Stores (selector case results, folded components).
    StoreS,     ///< vars[idx] = s[reg]
    StoreC,     ///< vars[idx] = a
    StoreFVar,  ///< vars[idx] = shift(vars[c] & a, b)
    StoreFTemp, ///< vars[idx] = shift(mems[c].temp & a, b)

    // Selectors.
    Switch,     ///< jump via jumpTable[a + s0]; b = count, c = selInfo
    Jump,       ///< pc = a
    SelTable,   ///< vars[idx] = constTable[a + s0]; b = count,
                ///< c = selInfo

    // Memory latch phase.
    MemAdr,     ///< mems[idx].adr = s0
    MemOpn,     ///< mems[idx].opn = s0
    MemAdrC,    ///< mems[idx].adr = a
    MemOpnC,    ///< mems[idx].opn = a
    MemAdrFVar, ///< mems[idx].adr = shift(vars[c] & a, b)
    MemAdrFTemp,///< mems[idx].adr = shift(mems[c].temp & a, b)
    MemOpnFVar, ///< mems[idx].opn = shift(vars[c] & a, b)
    MemOpnFTemp,///< mems[idx].opn = shift(mems[c].temp & a, b)

    // Memory update phase. `reg` carries VmMemFlags.
    MemRead,    ///< specialized operation 0
    MemWrite,   ///< specialized operation 1, data in s1
    MemInput,   ///< specialized operation 2
    MemOutput,  ///< specialized operation 3, data in s1
    MemGenPre,  ///< generic: handle op 0/2 then jump a; else fall thru
    MemGenData, ///< generic: finish op 1/3 with data in s1

    // ---- cycle-stream structure (sim/optimizer.cc emits these) ----
    TraceCycle, ///< per-cycle trace point (between comb and latch)
    EndCycle,   ///< ++cycle; loop to pc 0 or end the run
    Nop,        ///< dead-store placeholder; removed by compaction
    Ext,        ///< extension word of the preceding superinstruction

    // ---- superinstructions: fused scratch-load pairs (one Ext) ----
    // Two independent simple loads: side 1 decoded from the op word,
    // side 2 from the Ext word; each side is C (s[reg] = a),
    // V (s[reg] = shift(vars[idx] & a, b)) or T (same from
    // mems[idx].temp).
    LoadPairCC, LoadPairCV, LoadPairCT,
    LoadPairVC, LoadPairVV, LoadPairVT,
    LoadPairTC, LoadPairTV, LoadPairTT,
    // Two-term accumulation into one register (reg of the op word):
    // s[reg] = side1 + side2, second side always a field.
    LoadAccCV, LoadAccCT,
    LoadAccVV, LoadAccVT,
    LoadAccTV, LoadAccTT,

    // ---- superinstructions: fused memory latches ----
    MemLatchCC, ///< mems[idx].adr = a; mems[idx].opn = b
    MemLatchVC, ///< adr = shift(vars[c] & a, b); opn = ext.a
    MemLatchTC, ///< adr = shift(mems[c].temp & a, b); opn = ext.a
    MemLatchVV, ///< adr = field of vars[c]; opn = field of
                ///< vars[ext.c] (ext.a/ext.b mask/shift)

    // ---- superinstructions: memory update with inline data ----
    MemWriteC,  ///< write with data = a
    MemWriteV,  ///< write with data = shift(vars[c] & a, b)
    MemWriteT,  ///< write with data = shift(mems[c].temp & a, b)
    MemOutputC, ///< output with data = a
    MemOutputV, ///< output with data = shift(vars[c] & a, b)
    MemOutputT, ///< output with data = shift(mems[c].temp & a, b)

    // ---- superinstructions: selectors with inline select field ----
    // Op word = the Switch/SelTable operands; Ext word = the select
    // field (idx/a/b as slot/mask/shift).
    SelTableV, SelTableT,
    SwitchV, SwitchT,

    // ---- superinstructions: selector-case store + exit jump ----
    StoreSJ,    ///< vars[idx] = s[reg]; pc = a
    StoreCJ,    ///< vars[idx] = a; pc = b
    StoreFVarJ, ///< vars[idx] = shift(vars[c] & a, b); pc = ext.a
    StoreFTempJ,///< vars[idx] = shift(mems[c].temp & a, b); pc = ext.a

    // ---- superinstructions: remaining memory-latch bank combos ----
    // adr side in the op word, opn side in the Ext word, each a
    // constant (a) or a field (a=mask, b=shift, c=slot).
    MemLatchCV, MemLatchCT,
    MemLatchVT, MemLatchTV, MemLatchTT,

    // ---- superinstructions: generic memory update, inline data ----
    // MemGenData with the single-term data expression folded in
    // (const in a, or field a=mask, b=shift, c=slot).
    MemGenDataC, MemGenDataV, MemGenDataT,

    // ---- superinstructions: fused two-operand ALUs ----
    // One dispatch for `vars[idx] = op(left, right)` where both
    // operands are simple (constant or single field). Left operand
    // in the op word (const in a, or field a=mask, b=shift, c=slot),
    // right operand in the Ext word (same layout). Generated by the
    // ASIM_ALU_FUSED_ALL X-macro: 8 direct ops x 8 bank combos, laid
    // out combo-major so sim/optimizer.cc can compute
    // `AluFAddVV + op*8 + combo`.
#define ASIM_ALU_FUSED_ENUM(OPNAME, COMBO, L, R, V) \
    AluF##OPNAME##COMBO,
    ASIM_ALU_FUSED_ALL(ASIM_ALU_FUSED_ENUM)
#undef ASIM_ALU_FUSED_ENUM

    // ---- superinstructions: whole selector as a descriptor table ----
    // A Switch whose every case body is a single simple store to the
    // same variable collapses into one dispatch: the select value
    // indexes an inline table of value descriptors, replacing the
    // data-dependent indirect jump (hard to predict) with a data
    // load. Layout: op word (idx = dst, b = case count, c = selInfo)
    // followed by one Ext select-field word (a = mask, b = shift,
    // c = slot) and then one Ext descriptor word per case,
    // normalised to the single arithmetic form
    //   value = d.c + field(bank[d.idx], d.a, d.b)
    // where d.reg picks the bank (0 = vars, 1 = mem temps) and a
    // constant case carries a zero mask with the constant in d.c.
    // The op word's reg flag is 1 when no case reads a temp (kept
    // for inspection; the handler branches per descriptor).
    SelStoreV,  ///< select field reads vars[slot]
    SelStoreT,  ///< select field reads mems[slot].temp

    // ---- superinstructions: whole latch phase in one dispatch ----
    // Replaces the TraceCycle word when the latch phase is a
    // contiguous run of MemLatch* words: performs the trace point,
    // then interprets the next `b` stream words (which stay in place,
    // in their normal encodings) with an inline loop instead of `b`
    // dispatches. The per-word branch sequence is fixed at compile
    // time, so it predicts perfectly in steady state.
    TraceLatchRun,

    // ---- superinstructions: generic ALU with inline operands ----
    // dologic(funct, left, right) where all three sides are simple.
    // reg packs the three banks (2 bits each, funct/left/right, 0/1/2
    // for C/V/T); three Ext words follow in original simple-load
    // layout (const in a, or field idx = slot, a = mask, b = shift).
    AluGenF,

    // ---- superinstructions: whole generic memory op, inline data ----
    // MemGenPre and an adjacent inline-data MemGenData merged: one
    // dispatch handles read/write/input/output off the latched
    // operation. Data operands as in MemGenDataC/V/T.
    MemGenC, MemGenV, MemGenT,
};

/** Number of opcodes (dispatch-table size in sim/vm.cc). */
inline constexpr size_t kOpCount =
    static_cast<size_t>(Op::MemGenT) + 1;

/** Per-memory flag bits carried in Instr::reg for memory opcodes. */
enum VmMemFlags : uint8_t
{
    kMemFlagTraceW = 1,    ///< trace writes (check or uncond.)
    kMemFlagTraceR = 2,    ///< trace reads
    kMemFlagElideTemp = 4, ///< §5.4: skip the unobserved latch
    kMemFlagNoCheck = 8,   ///< address statically proven in range
};

/** One VM instruction (16 bytes). */
struct Instr
{
    Op op = Op::SetC;
    uint8_t reg = 0;
    uint16_t idx = 0;
    int32_t a = 0;
    int32_t b = 0;
    int32_t c = 0;
};

/** Selector cold data (bounds diagnostics). */
struct SelInfo
{
    std::string name;
    int32_t caseCount = 0;
};

/** Per-memory cold data (names for traces and errors). */
struct VmMemInfo
{
    std::string name;
};

/** A compiled program. */
struct Program
{
    /** Canonical per-phase streams (the emit stage's output; used by
     *  the disassembler, tests, and the optimizer as input). */
    std::vector<Instr> comb;
    std::vector<Instr> latch;
    std::vector<Instr> update;

    /** The linked + optimized whole-cycle stream the VM executes:
     *  comb', TraceCycle, latch', update', EndCycle. Jump targets and
     *  `cycleJumpTable` entries are indices into this stream. */
    std::vector<Instr> cycle;
    std::vector<uint32_t> cycleJumpTable;

    /** Jump table of the canonical `comb` stream (indices into
     *  `comb`; kept for inspection — the VM uses cycleJumpTable). */
    std::vector<uint32_t> jumpTable;
    std::vector<int32_t> constTable;
    std::vector<SelInfo> selInfos;
    std::vector<VmMemInfo> memInfos;

    /** What the link/optimize stage did (see `--dump-bytecode`). */
    struct OptSummary
    {
        uint32_t linked = 0;       ///< instrs entering the optimizer
        uint32_t fused = 0;        ///< superinstructions formed
        uint32_t deadStores = 0;   ///< dead scratch stores removed
        uint32_t checksElided = 0; ///< memories with bounds checks
                                   ///< statically discharged
    };
    OptSummary opt;

    size_t
    totalInstructions() const
    {
        return comb.size() + latch.size() + update.size();
    }

    /** Human-readable disassembly (debugging, tests, tools): the
     *  canonical phase streams followed by the optimized cycle
     *  stream and an optimization summary. */
    std::string disassemble() const;
};

/** Name of an opcode (used by the disassembler). */
const char *opName(Op op);

/** True if `op` carries an extension word (the following slot). */
bool opHasExt(Op op);

} // namespace asim

#endif // ASIM_SIM_BYTECODE_HH
