#include "sim/native_engine.hh"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "support/metrics.hh"
#include "support/tracing.hh"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

namespace asim {

namespace {

using Clock = std::chrono::steady_clock;

/** First line of a diagnostic blob, for compact SimError messages. */
std::string
firstLine(const std::string &text)
{
    size_t nl = text.find('\n');
    return nl == std::string::npos ? text : text.substr(0, nl);
}

std::string
describeWaitStatus(int status)
{
    if (status < 0)
        return "not running";
    if (WIFEXITED(status))
        return "exit status " + std::to_string(WEXITSTATUS(status));
    if (WIFSIGNALED(status))
        return "killed by signal " + std::to_string(WTERMSIG(status));
    return "wait status " + std::to_string(status);
}

/** Byte offset just past the first `tokens` whitespace-separated
 *  tokens of `text` — how far a serve child that consumed that many
 *  integer inputs has advanced its script cursor. */
size_t
tokenOffset(std::string_view text, uint64_t tokens)
{
    size_t pos = 0;
    for (uint64_t i = 0; i < tokens; ++i) {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos == text.size())
            break;
        while (pos < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }
    return pos;
}

} // namespace

NativeEngine::NativeEngine(std::shared_ptr<const ResolvedSpec> rs,
                           const EngineConfig &cfg, Options opts)
    : Engine(std::move(rs), cfg), opts_(std::move(opts))
{
    if (cfg.io) {
        throw SimError(
            "the native engine performs I/O over the generated "
            "program's stdio; script inputs instead of passing an "
            "IoDevice");
    }
    if (opts_.prebuilt) {
        build_ = opts_.prebuilt;
        if (!build_->serveCapable) {
            throw SimError("shared native build was compiled without "
                           "the --serve protocol loop");
        }
        if (!build_->emitsStateDump) {
            throw SimError("shared native build was compiled without "
                           "a state dump");
        }
        if (cfg.trace && !build_->emitsTrace) {
            throw SimError("shared native build was compiled without "
                           "trace output but a trace sink is "
                           "configured");
        }
        if (build_->aluSemantics != cfg.aluSemantics) {
            throw SimError("shared native build was compiled with "
                           "different ALU semantics than this "
                           "engine's configuration");
        }
    } else {
        opts_.codegen.aluSemantics = cfg.aluSemantics;
        opts_.codegen.emitTrace = cfg.trace != nullptr;
        opts_.codegen.emitStateDump = true;
        opts_.codegen.emitServeLoop = true;
        tracing::Span span("native.compile", "lifecycle");
        const uint64_t t0 =
            metrics::timingEnabled() ? metrics::nowNs() : 0;
        build_ = compileSpecShared(*rs_, opts_.codegen, opts_.workDir);
        if (t0) {
            metrics::histogram("native.compile_ns",
                               metrics::Histogram::exponentialBounds(
                                   1000000, 2.0, 16))
                .record(metrics::nowNs() - t0);
        }
    }
    // The child itself spawns lazily at the first command: a batch
    // can construct any number of instances without holding one
    // process + pipe pair per not-yet-running instance.
}

NativeEngine::~NativeEngine()
{
    if (child_.running())
        child_.writeAll("QUIT\n"); // best effort; terminate() reaps
    child_.terminate();
    if (errSpool_)
        std::fclose(errSpool_);
}

void
NativeEngine::ensureChild()
{
    if (child_.running())
        return;
    if (down_) {
        throw SimError("native simulator is not running (it failed "
                       "after cycle " + std::to_string(cycle_) +
                       "); call reset() to relaunch it");
    }
    spawnChild();
}

void
NativeEngine::spawnChild()
{
    if (!errSpool_) {
        errSpool_ = std::tmpfile();
        // Keep the spool out of sibling children (the dup2 onto the
        // serve child's own stderr clears close-on-exec for it).
        if (errSpool_)
            fcntl(fileno(errSpool_), F_SETFD, FD_CLOEXEC);
    } else {
        std::rewind(errSpool_);
        // Truncate the spool so diagnostics are per-incarnation.
        if (ftruncate(fileno(errSpool_), 0) != 0) {
            // Non-fatal: stale bytes only pollute a later diagnostic.
        }
    }
    try {
        child_.start({build_->binaryPath, "--serve"},
                     errSpool_ ? fileno(errSpool_) : -1);
    } catch (const std::exception &e) {
        throw SimError(std::string("cannot launch native simulator: ") +
                       e.what());
    }
    if (!opts_.stdinText.empty()) {
        exchange("INPUT " + std::to_string(opts_.stdinText.size()) +
                     "\n",
                 opts_.stdinText);
    }
}

NativeEngine::Reply
NativeEngine::exchange(const std::string &cmd, std::string_view extra)
{
    // Every subprocess command funnels through here: one histogram
    // sample covers write + child work + reply read (the socketless
    // round-trip tax the serve pipelining work targets).
    static metrics::Histogram &rtt = metrics::histogram(
        "native.roundtrip_ns",
        metrics::Histogram::exponentialBounds(1000, 2.0, 24));
    metrics::ScopedTimerNs timer(rtt);
    static metrics::Counter &commands =
        metrics::counter("native.commands");
    commands.add();

    std::string wire = cmd;
    wire.append(extra);
    if (!child_.writeAll(wire))
        childFailed("broke the command pipe");

    std::string header;
    if (!child_.readLine(header))
        childFailed("died mid-protocol");

    char status[8] = {0};
    unsigned long long cyc = 0, ns = 0, len = 0;
    if (std::sscanf(header.c_str(), "%7s %llu %llu %llu", status, &cyc,
                    &ns, &len) != 4)
        childFailed("sent a corrupt protocol header <" + header + ">");

    Reply r;
    r.cycle = cyc;
    r.simSeconds = static_cast<double>(ns) / 1e9;
    if (!child_.readExact(r.payload, static_cast<size_t>(len)))
        childFailed("died mid-payload");

    if (std::strcmp(status, "OK") != 0) {
        throw SimError("native simulator refused <" +
                       firstLine(cmd) + ">: " + firstLine(r.payload));
    }
    return r;
}

void
NativeEngine::childFailed(const std::string &what)
{
    down_ = true;
    int status = child_.terminate();
    std::string diag;
    if (errSpool_) {
        std::rewind(errSpool_);
        char buf[4096];
        size_t n = std::fread(buf, 1, sizeof buf, errSpool_);
        diag.assign(buf, n);
    }
    std::string msg = "native simulator " + what + " (" +
                      describeWaitStatus(status) +
                      "); engine remains at confirmed cycle " +
                      std::to_string(cycle_) +
                      " — reset() relaunches it";
    if (!diag.empty())
        msg += ": " + firstLine(diag);
    throw SimError(msg);
}

void
NativeEngine::reset()
{
    Engine::reset();
    allOut_.clear();
    ioText_.clear();
    midLine_ = false;
    lastRunSeconds_ = 0;
    lastSimSeconds_ = 0;
    stateDirty_ = false;
    ioOps_ = 0;
    ioBytes_ = 0;
    if (child_.running()) {
        try {
            exchange("RESET\n");
            return;
        } catch (const SimError &) {
            // Child died mid-RESET; relaunch lazily below.
        }
    }
    // No child (never spawned, crashed, or died mid-RESET): a fresh
    // one spawns at the next command.
    down_ = false;
}

void
NativeEngine::run(uint64_t cycles)
{
    if (cycles == 0)
        return;
    ensureChild();
    auto t0 = Clock::now();
    Reply r = exchange("RUN " + std::to_string(cycles) + "\n");
    lastRunSeconds_ =
        std::chrono::duration<double>(Clock::now() - t0).count();
    lastSimSeconds_ = r.simSeconds;
    if (r.cycle != cycle_ + cycles) {
        down_ = true;
        child_.terminate();
        throw SimError("native simulator desynchronized (confirmed "
                       "cycle " + std::to_string(r.cycle) +
                       ", expected " +
                       std::to_string(cycle_ + cycles) + ")");
    }
    ingest(r.payload);
    allOut_.append(r.payload);
    if (cfg_.collectStats)
        stats_.cycles += cycles;
    cycle_ += cycles;
    runCommandCycles_ += cycles;
    stateDirty_ = true;
}

void
NativeEngine::refreshState() const
{
    if (!stateDirty_)
        return;
    if (!child_.running()) {
        // The state for the confirmed cycle was never fetched and
        // the child is gone: serving the older mirror here would
        // silently pair cycle() with a state from an earlier cycle
        // (and a snapshot() of that pair would restore cleanly into
        // other engines). Refuse instead.
        throw SimError("native simulator died before the state for "
                       "cycle " + std::to_string(cycle_) +
                       " was fetched; call reset() to relaunch it");
    }
    auto *self = const_cast<NativeEngine *>(this);
    Reply r = self->exchange("SNAPSHOT\n");
    self->parseStateDump(r.payload);
    stateDirty_ = false;
}

EngineSnapshot
NativeEngine::snapshot() const
{
    EngineSnapshot snap = Engine::snapshot(); // refreshes the mirror
    snap.ioValues = ioOps_;
    snap.ioBytes = ioBytes_;
    return snap;
}

void
NativeEngine::restore(const EngineSnapshot &snap)
{
    checkSnapshotShape(snap);
    uint64_t bytes = snap.ioBytes;
    if (bytes == kNoIoCursor) {
        // In-process snapshots carry no byte cursor: position the
        // script by skipping the consumed input values as tokens
        // (exactly where the child's integer input would stand).
        bytes = tokenOffset(opts_.stdinText, snap.ioValues);
    } else if (bytes > opts_.stdinText.size()) {
        // Validated before any child state is touched: a refused
        // snapshot must leave a down engine down and a live one at
        // its current timeline.
        throw SimError("snapshot input cursor (byte " +
                       std::to_string(bytes) +
                       ") lies beyond this engine's input script (" +
                       std::to_string(opts_.stdinText.size()) +
                       " bytes)");
    }

    // Protocol-native restore: ship the snapshot's machine state,
    // cycle counter, and input cursor to the child as one RESTORE
    // payload (the inverse of the SNAPSHOT dump). O(state), no
    // replay — and a valid recovery path for a down child, since
    // nothing of the old timeline survives it.
    down_ = false;
    ensureChild();

    std::string payload;
    payload += "STATE_CYC " + std::to_string(snap.cycle) + "\n";
    payload += "STATE_I " + std::to_string(snap.ioValues) + " " +
               std::to_string(bytes) + "\n";
    for (size_t i = 0; i < snap.state.vars.size(); ++i) {
        payload += "STATE_V " + std::to_string(i) + " " +
                   std::to_string(snap.state.vars[i]) + "\n";
    }
    for (size_t i = 0; i < snap.state.mems.size(); ++i) {
        const MemoryState &m = snap.state.mems[i];
        payload += "STATE_M " + std::to_string(i) + " " +
                   std::to_string(m.temp) + " " +
                   std::to_string(m.adr) + " " +
                   std::to_string(m.opn) + "\n";
        for (size_t c = 0; c < m.cells.size(); ++c) {
            payload += "STATE_C " + std::to_string(i) + " " +
                       std::to_string(c) + " " +
                       std::to_string(m.cells[c]) + "\n";
        }
    }
    payload += "STATE_END\n";

    try {
        exchange("RESTORE " + std::to_string(payload.size()) + "\n",
                 payload);
    } catch (const SimError &) {
        // An ERR means the child may have applied the payload
        // partially; its state is no longer trustworthy. (Pipe
        // failures already took the down_ path in exchange().)
        if (!down_) {
            down_ = true;
            child_.terminate();
        }
        throw;
    }

    state_ = snap.state;
    cycle_ = snap.cycle;
    stats_ = snap.stats;
    ioOps_ = snap.ioValues;
    ioBytes_ = bytes;
    stateDirty_ = false;
    // The pre-restore timeline's output is not a prefix of the
    // restored one; start the output accumulators afresh.
    allOut_.clear();
    ioText_.clear();
    midLine_ = false;
}

void
NativeEngine::ingest(std::string_view fresh)
{
    auto emitIo = [&](std::string_view piece) {
        ioText_.append(piece);
        if (opts_.ioEcho)
            *opts_.ioEcho << piece;
    };
    // Trace-shaped lines exist in the payload only when the binary
    // was built with trace output; they are replayed into the sink
    // when one is configured and dropped otherwise (a shared batch
    // build may trace for siblings that capture it).
    const bool traced = build_->emitsTrace;
    TraceSink *sink = cfg_.trace;

    size_t pos = 0;
    if (midLine_) {
        // Continuation of a line already partially consumed (an
        // input prompt at the previous cut): raw I/O text.
        size_t nl = fresh.find('\n');
        size_t end = nl == std::string_view::npos ? fresh.size()
                                                  : nl + 1;
        emitIo(fresh.substr(0, end));
        midLine_ = nl == std::string_view::npos;
        pos = end;
    }
    while (pos < fresh.size()) {
        size_t nl = fresh.find('\n', pos);
        bool terminated = nl != std::string_view::npos;
        size_t end = terminated ? nl : fresh.size();
        std::string_view line = fresh.substr(pos, end - pos);
        pos = terminated ? nl + 1 : fresh.size();

        if (terminated && traced && line.rfind("Cycle ", 0) == 0) {
            if (sink)
                replayTraceLine(line);
        } else if (terminated && traced &&
                   line.rfind("Write to ", 0) == 0) {
            if (sink)
                replayMemLine(line, true);
        } else if (terminated && traced &&
                   line.rfind("Read from ", 0) == 0) {
            if (sink)
                replayMemLine(line, false);
        } else {
            // Memory-mapped output or a prompt (only a prompt can be
            // unterminated: every other print ends with a newline).
            emitIo(line);
            if (terminated)
                emitIo("\n");
            midLine_ = !terminated;
        }
    }
}

void
NativeEngine::replayTraceLine(std::string_view lv)
{
    // "Cycle %3lld" then " <name>= %d" per starred component.
    std::string line(lv);
    char *end = nullptr;
    uint64_t cyc = std::strtoull(line.c_str() + 6, &end, 10);
    cfg_.trace->beginCycle(cyc);
    const char *cur = end;
    for (const auto &item : rs_->traceList) {
        std::string needle = " " + item.name + "= ";
        const char *at = std::strstr(cur, needle.c_str());
        if (!at)
            break;
        long v = std::strtol(at + needle.size(), &end, 10);
        cfg_.trace->value(item.name, static_cast<int32_t>(v));
        cur = end;
    }
    cfg_.trace->endCycle();
}

void
NativeEngine::replayMemLine(std::string_view lv, bool write)
{
    // "Write to <mem> at <addr>: <value>" / "Read from <mem> at ...".
    std::string line(lv);
    size_t head = write ? 9 : 10;
    size_t at = line.find(" at ", head);
    if (at == std::string::npos)
        return;
    std::string mem = line.substr(head, at - head);
    char *end = nullptr;
    long addr = std::strtol(line.c_str() + at + 4, &end, 10);
    long v = 0;
    if (end && end[0] == ':')
        v = std::strtol(end + 1, nullptr, 10);
    if (write)
        cfg_.trace->memWrite(mem, static_cast<int32_t>(addr),
                             static_cast<int32_t>(v));
    else
        cfg_.trace->memRead(mem, static_cast<int32_t>(addr),
                            static_cast<int32_t>(v));
}

void
NativeEngine::parseStateDump(const std::string &dump)
{
    bool complete = false;
    size_t pos = 0;
    auto bad = [&]() {
        return SimError("corrupt native state dump: " +
                        firstLine(dump.substr(pos)));
    };
    while (pos < dump.size()) {
        const char *line = dump.c_str() + pos;
        char *end = nullptr;
        if (std::strncmp(line, "STATE_V ", 8) == 0) {
            long slot = std::strtol(line + 8, &end, 10);
            long v = std::strtol(end, nullptr, 10);
            if (slot < 0 ||
                slot >= static_cast<long>(state_.vars.size()))
                throw bad();
            state_.vars[slot] = static_cast<int32_t>(v);
        } else if (std::strncmp(line, "STATE_M ", 8) == 0) {
            long idx = std::strtol(line + 8, &end, 10);
            if (idx < 0 ||
                idx >= static_cast<long>(state_.mems.size()))
                throw bad();
            MemoryState &ms = state_.mems[idx];
            ms.temp = static_cast<int32_t>(std::strtol(end, &end, 10));
            ms.adr = static_cast<int32_t>(std::strtol(end, &end, 10));
            ms.opn = static_cast<int32_t>(std::strtol(end, &end, 10));
        } else if (std::strncmp(line, "STATE_C ", 8) == 0) {
            long idx = std::strtol(line + 8, &end, 10);
            long cell = std::strtol(end, &end, 10);
            long v = std::strtol(end, nullptr, 10);
            if (idx < 0 ||
                idx >= static_cast<long>(state_.mems.size()))
                throw bad();
            auto &cells = state_.mems[idx].cells;
            if (cell < 0 || cell >= static_cast<long>(cells.size()))
                throw bad();
            cells[cell] = static_cast<int32_t>(v);
        } else if (std::strncmp(line, "STATE_I ", 8) == 0) {
            long long ops = std::strtoll(line + 8, &end, 10);
            long long bp = std::strtoll(end, nullptr, 10);
            if (ops < 0 || bp < 0)
                throw bad();
            ioOps_ = static_cast<uint64_t>(ops);
            ioBytes_ = static_cast<uint64_t>(bp);
        } else if (std::strncmp(line, "STATE_END", 9) == 0) {
            complete = true;
        }
        size_t nl = dump.find('\n', pos);
        pos = nl == std::string::npos ? dump.size() : nl + 1;
    }
    if (!complete) {
        throw SimError("native simulator produced no state dump "
                       "(payload: " + firstLine(dump) + ")");
    }
}

} // namespace asim
