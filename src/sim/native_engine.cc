#include "sim/native_engine.hh"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <ostream>

namespace asim {

namespace {

/** First line of a diagnostic blob, for compact SimError messages. */
std::string
firstLine(const std::string &text)
{
    size_t nl = text.find('\n');
    return nl == std::string::npos ? text : text.substr(0, nl);
}

} // namespace

NativeEngine::NativeEngine(std::shared_ptr<const ResolvedSpec> rs,
                           const EngineConfig &cfg, Options opts)
    : Engine(std::move(rs), cfg), opts_(std::move(opts))
{
    if (cfg.io) {
        throw SimError(
            "the native engine performs I/O over the generated "
            "program's stdio; script inputs instead of passing an "
            "IoDevice");
    }
    opts_.codegen.aluSemantics = cfg.aluSemantics;
    opts_.codegen.emitTrace = cfg.trace != nullptr;
    opts_.codegen.emitStateDump = true;
    ownWorkDir_ = opts_.workDir.empty();
    build_ = compileSpec(*rs_, opts_.codegen, opts_.workDir);
}

NativeEngine::~NativeEngine()
{
    if (ownWorkDir_ && !build_.workDir.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(build_.workDir, ec);
    }
}

void
NativeEngine::reset()
{
    Engine::reset();
    allOut_.clear();
    ioText_.clear();
    midLine_ = false;
    lastRun_ = {};
}

void
NativeEngine::run(uint64_t cycles)
{
    if (cycles == 0)
        return;
    advanceTo(cycle_ + cycles);
}

void
NativeEngine::restore(const EngineSnapshot &)
{
    throw SimError("the native engine cannot restore snapshots: the "
                   "generated simulator's state lives out of process");
}

void
NativeEngine::advanceTo(uint64_t target)
{
    // The program executes cycles+1 loop iterations for argument
    // `cycles` (thesis semantics), so `target` cycles = target-1.
    NativeRun r = runBinary(build_, static_cast<int64_t>(target) - 1,
                            opts_.stdinText);
    if (r.exitCode != 0) {
        throw SimError("native simulator exited with status " +
                       std::to_string(r.exitCode) + ": " +
                       firstLine(r.stderrText));
    }
    if (r.stdoutText.size() < allOut_.size() ||
        r.stdoutText.compare(0, allOut_.size(), allOut_) != 0) {
        throw SimError("native replay diverged from the previous run "
                       "(non-deterministic specification?)");
    }
    std::string fresh = r.stdoutText.substr(allOut_.size());
    allOut_ = std::move(r.stdoutText);
    ingest(fresh);
    parseStateDump(r.stderrText);
    if (cfg_.collectStats)
        stats_.cycles += target - cycle_;
    cycle_ = target;
    lastRun_.runSeconds = r.runSeconds;
    lastRun_.simSeconds = r.simSeconds;
    lastRun_.exitCode = r.exitCode;
}

void
NativeEngine::ingest(std::string_view fresh)
{
    auto emitIo = [&](std::string_view piece) {
        ioText_.append(piece);
        if (opts_.ioEcho)
            *opts_.ioEcho << piece;
    };

    size_t pos = 0;
    if (midLine_) {
        // Continuation of a line already partially consumed (an
        // input prompt at the previous cut): raw I/O text.
        size_t nl = fresh.find('\n');
        size_t end = nl == std::string_view::npos ? fresh.size()
                                                  : nl + 1;
        emitIo(fresh.substr(0, end));
        midLine_ = nl == std::string_view::npos;
        pos = end;
    }
    while (pos < fresh.size()) {
        size_t nl = fresh.find('\n', pos);
        bool terminated = nl != std::string_view::npos;
        size_t end = terminated ? nl : fresh.size();
        std::string_view line = fresh.substr(pos, end - pos);
        pos = terminated ? nl + 1 : fresh.size();

        if (terminated && cfg_.trace &&
            line.rfind("Cycle ", 0) == 0) {
            replayTraceLine(line);
        } else if (terminated && cfg_.trace &&
                   line.rfind("Write to ", 0) == 0) {
            replayMemLine(line, true);
        } else if (terminated && cfg_.trace &&
                   line.rfind("Read from ", 0) == 0) {
            replayMemLine(line, false);
        } else {
            // Memory-mapped output or a prompt (only a prompt can be
            // unterminated: every other print ends with a newline).
            emitIo(line);
            if (terminated)
                emitIo("\n");
            midLine_ = !terminated;
        }
    }
}

void
NativeEngine::replayTraceLine(std::string_view lv)
{
    // "Cycle %3lld" then " <name>= %d" per starred component.
    std::string line(lv);
    char *end = nullptr;
    uint64_t cyc = std::strtoull(line.c_str() + 6, &end, 10);
    cfg_.trace->beginCycle(cyc);
    const char *cur = end;
    for (const auto &item : rs_->traceList) {
        std::string needle = " " + item.name + "= ";
        const char *at = std::strstr(cur, needle.c_str());
        if (!at)
            break;
        long v = std::strtol(at + needle.size(), &end, 10);
        cfg_.trace->value(item.name, static_cast<int32_t>(v));
        cur = end;
    }
    cfg_.trace->endCycle();
}

void
NativeEngine::replayMemLine(std::string_view lv, bool write)
{
    // "Write to <mem> at <addr>: <value>" / "Read from <mem> at ...".
    std::string line(lv);
    size_t head = write ? 9 : 10;
    size_t at = line.find(" at ", head);
    if (at == std::string::npos)
        return;
    std::string mem = line.substr(head, at - head);
    char *end = nullptr;
    long addr = std::strtol(line.c_str() + at + 4, &end, 10);
    long v = 0;
    if (end && end[0] == ':')
        v = std::strtol(end + 1, nullptr, 10);
    if (write)
        cfg_.trace->memWrite(mem, static_cast<int32_t>(addr),
                             static_cast<int32_t>(v));
    else
        cfg_.trace->memRead(mem, static_cast<int32_t>(addr),
                            static_cast<int32_t>(v));
}

void
NativeEngine::parseStateDump(const std::string &err)
{
    bool complete = false;
    size_t pos = 0;
    auto bad = [&]() {
        return SimError("corrupt native state dump: " +
                        firstLine(err.substr(pos)));
    };
    while (pos < err.size()) {
        const char *line = err.c_str() + pos;
        char *end = nullptr;
        if (std::strncmp(line, "STATE_V ", 8) == 0) {
            long slot = std::strtol(line + 8, &end, 10);
            long v = std::strtol(end, nullptr, 10);
            if (slot < 0 ||
                slot >= static_cast<long>(state_.vars.size()))
                throw bad();
            state_.vars[slot] = static_cast<int32_t>(v);
        } else if (std::strncmp(line, "STATE_M ", 8) == 0) {
            long idx = std::strtol(line + 8, &end, 10);
            if (idx < 0 ||
                idx >= static_cast<long>(state_.mems.size()))
                throw bad();
            MemoryState &ms = state_.mems[idx];
            ms.temp = static_cast<int32_t>(std::strtol(end, &end, 10));
            ms.adr = static_cast<int32_t>(std::strtol(end, &end, 10));
            ms.opn = static_cast<int32_t>(std::strtol(end, &end, 10));
        } else if (std::strncmp(line, "STATE_C ", 8) == 0) {
            long idx = std::strtol(line + 8, &end, 10);
            long cell = std::strtol(end, &end, 10);
            long v = std::strtol(end, nullptr, 10);
            if (idx < 0 ||
                idx >= static_cast<long>(state_.mems.size()))
                throw bad();
            auto &cells = state_.mems[idx].cells;
            if (cell < 0 || cell >= static_cast<long>(cells.size()))
                throw bad();
            cells[cell] = static_cast<int32_t>(v);
        } else if (std::strncmp(line, "STATE_END", 9) == 0) {
            complete = true;
        }
        size_t nl = err.find('\n', pos);
        pos = nl == std::string::npos ? err.size() : nl + 1;
    }
    if (!complete) {
        throw SimError("native simulator produced no state dump "
                       "(stderr: " + firstLine(err) + ")");
    }
}

} // namespace asim
