#include "sim/engine.hh"

namespace asim {

Engine::Engine(std::shared_ptr<const ResolvedSpec> rs,
               const EngineConfig &cfg)
    : rs_(std::move(rs)), cfg_(cfg), io_(cfg.io ? cfg.io : &nullIo_)
{
    stats_.mems.clear();
    for (const auto &m : rs_->mems) {
        MemStats ms;
        ms.name = m.name;
        stats_.mems.push_back(std::move(ms));
    }
    state_.reset(*rs_);
}

Engine::Engine(const ResolvedSpec &rs, const EngineConfig &cfg)
    : Engine(std::make_shared<const ResolvedSpec>(rs), cfg)
{}

void
Engine::reset()
{
    state_.reset(*rs_);
    stats_.reset();
    cycle_ = 0;
}

void
Engine::run(uint64_t cycles)
{
    for (uint64_t i = 0; i < cycles; ++i)
        step();
}

EngineSnapshot
Engine::snapshot() const
{
    refreshState();
    EngineSnapshot snap;
    snap.state = state_;
    snap.cycle = cycle_;
    snap.stats = stats_;
    snap.ioValues = io_->inputsConsumed();
    return snap;
}

void
Engine::checkSnapshotShape(const EngineSnapshot &snap) const
{
    if (snap.state.vars.size() != state_.vars.size() ||
        snap.state.mems.size() != state_.mems.size()) {
        throw SimError("snapshot does not match this specification "
                       "(component counts differ)");
    }
    for (size_t i = 0; i < state_.mems.size(); ++i) {
        if (snap.state.mems[i].cells.size() !=
            state_.mems[i].cells.size()) {
            throw SimError("snapshot does not match this "
                           "specification (memory <" +
                           rs_->mems[i].name + "> size differs)");
        }
    }
}

void
Engine::restore(const EngineSnapshot &snap)
{
    checkSnapshotShape(snap);
    state_ = snap.state;
    cycle_ = snap.cycle;
    stats_ = snap.stats;
    // Best-effort for devices that cannot seek (interactive streams):
    // the machine state is restored either way, matching the old
    // behavior for un-scripted runs.
    io_->seekInputs(snap.ioValues);
}

void
Engine::traceCycle()
{
    if (!cfg_.trace)
        return;
    cfg_.trace->beginCycle(cycle_);
    for (const auto &item : rs_->traceList) {
        int32_t v = item.isMem ? state_.mems[item.slot].temp
                               : state_.vars[item.slot];
        cfg_.trace->value(item.name, v);
    }
    cfg_.trace->endCycle();
}

int32_t
Engine::value(std::string_view name) const
{
    refreshState();
    int vs = rs_->varSlot(name);
    if (vs >= 0)
        return state_.vars[vs];
    int mi = rs_->memIndex(name);
    if (mi >= 0)
        return state_.mems[mi].temp;
    throw SimError("unknown component <" + std::string(name) + ">");
}

int32_t
Engine::memCell(std::string_view mem, int64_t addr) const
{
    refreshState();
    int mi = rs_->memIndex(mem);
    if (mi < 0)
        throw SimError("unknown memory <" + std::string(mem) + ">");
    const auto &cells = state_.mems[mi].cells;
    if (addr < 0 || addr >= static_cast<int64_t>(cells.size())) {
        throw SimError("address " + std::to_string(addr) +
                       " outside memory " + std::string(mem));
    }
    return cells[addr];
}

} // namespace asim
