#include "sim/trace.hh"

#include <iomanip>

namespace asim {

void
StreamTrace::beginCycle(uint64_t cycle)
{
    // Pascal `write('Cycle ', cyclecount:3)`.
    *os_ << "Cycle " << std::setw(3) << cycle;
}

void
StreamTrace::value(std::string_view name, int32_t v)
{
    *os_ << ' ' << name << "= " << v;
}

void
StreamTrace::endCycle()
{
    *os_ << '\n';
}

void
StreamTrace::memWrite(std::string_view mem, int32_t addr, int32_t v)
{
    *os_ << "Write to " << mem << " at " << addr << ": " << v << '\n';
}

void
StreamTrace::memRead(std::string_view mem, int32_t addr, int32_t v)
{
    *os_ << "Read from " << mem << " at " << addr << ": " << v << '\n';
}

} // namespace asim
