/**
 * @file
 * Checkpoint subsystem: portable binary snapshots on disk.
 *
 * A checkpoint is an EngineSnapshot serialized into a versioned,
 * checksummed, engine-agnostic binary file (layout in DESIGN.md §8):
 *
 *     magic "ASIMCKPT" | format version | spec identity hash |
 *     saved-by tag | cycle | input cursor | statistics |
 *     machine state | CRC-32 trailer
 *
 * Because every engine implements the §3 cycle-semantics contract, a
 * checkpoint written mid-run by *any* registry engine (interp, vm,
 * native, symbolic) restores under any other and the continuation is
 * cycle-for-cycle identical — long simulations survive process death,
 * batches resume after a kill, and a state reached cheaply under the
 * native engine can be inspected under the symbolic one.
 *
 * Integrity rules (the hard part — checkpoint files are *input*):
 *  - every read is bounds-checked (support/serialize.hh); truncated
 *    or bit-flipped files raise SimError with path, offset, and
 *    reason — never undefined behavior;
 *  - the CRC-32 trailer covers every preceding byte, so random
 *    corruption is detected before any field is trusted;
 *  - the format version gates decoding: later majors are refused
 *    with a "newer than this build" diagnostic;
 *  - the spec identity hash (analysis/resolve.hh) binds the file to
 *    the canonical written form of its specification; loading
 *    against a different spec is refused by hash before any shape
 *    check can be fooled by a same-shape impostor.
 */

#ifndef ASIM_SIM_CHECKPOINT_HH
#define ASIM_SIM_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/engine.hh"

namespace asim {

/** Current checkpoint format version. Bump on any layout change;
 *  loaders refuse versions above it (compatibility rules in
 *  DESIGN.md §8). */
inline constexpr uint32_t kCheckpointVersion = 1;

/** File magic, first 8 bytes of every checkpoint. */
inline constexpr std::string_view kCheckpointMagic = "ASIMCKPT";

/** Decoded checkpoint header (peekCheckpoint(), and out-param of the
 *  full decoders) — enough to plan a resume without holding the
 *  machine state. */
struct CheckpointInfo
{
    uint32_t version = 0;
    uint64_t specHash = 0;
    uint64_t cycle = 0;
    std::string savedBy; ///< engine name that wrote it (diagnostic)
};

/** Serialize a snapshot into the binary checkpoint format.
 *  @param specHash identity of the spec the snapshot belongs to
 *  @param savedBy engine name recorded for diagnostics */
std::string encodeCheckpoint(const EngineSnapshot &snap,
                             uint64_t specHash,
                             std::string_view savedBy);

/**
 * Decode a checkpoint blob. Validates magic, version, checksum, and
 * every count/length; see the file comment's integrity rules.
 *
 * @param bytes the encoded file contents
 * @param context diagnostic prefix for errors (the file path)
 * @param info optional out-param receiving the header
 * @throws SimError on any malformed input
 */
EngineSnapshot decodeCheckpoint(std::string_view bytes,
                                const std::string &context,
                                CheckpointInfo *info = nullptr);

/** Capture `engine` and write the checkpoint to `path` atomically
 *  (temp file + rename, so a crash mid-write never leaves a torn
 *  checkpoint under the final name). @throws SimError on I/O
 *  failure or when the engine cannot produce a snapshot */
void saveCheckpoint(const Engine &engine, const std::string &path,
                    std::string_view savedBy = "");

/**
 * Read, validate, and decode the checkpoint at `path` for the
 * specification `rs`: the stored spec identity hash must equal
 * specIdentityHash(rs) and the decoded state's shape must match.
 *
 * @throws SimError naming path, offset, and reason on corrupt input;
 *         naming both hashes on a spec mismatch
 */
EngineSnapshot loadCheckpoint(const std::string &path,
                              const ResolvedSpec &rs);

/** Read and validate only the header of the checkpoint at `path`
 *  (full checksum still verified). @throws SimError as above */
CheckpointInfo peekCheckpoint(const std::string &path);

} // namespace asim

#endif // ASIM_SIM_CHECKPOINT_HH
