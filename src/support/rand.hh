/**
 * @file
 * SplitMix64 — the deterministic seed-driven generator used wherever
 * the simulator needs "random" numbers that must replay identically
 * (fault-campaign sampling; analysis/campaign.hh).
 *
 * No global RNG anywhere: every consumer owns its generator seeded
 * explicitly, and parallel work derives one independent stream per
 * work item from (seed, index) alone — so results are byte-identical
 * at any thread count and across platforms (the recurrence is exact
 * 64-bit arithmetic, no libc rand/distribution variance).
 *
 * Reference: Steele/Lea/Flood, "Fast splittable pseudorandom number
 * generators" (OOPSLA 2014) — the java.util.SplittableRandom mixer.
 */

#ifndef ASIM_SUPPORT_RAND_HH
#define ASIM_SUPPORT_RAND_HH

#include <cstdint>

namespace asim {

/** The SplitMix64 odd increment (2^64 / phi). */
inline constexpr uint64_t kSplitMix64Gamma = 0x9e3779b97f4a7c15ull;

class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed)
        : x_(seed)
    {}

    /** Derive the independent stream for work item `index` of a run
     *  seeded `seed` — the campaign sampler's per-injection stream,
     *  identical no matter which thread (or how many) draws it. */
    static SplitMix64 forIndex(uint64_t seed, uint64_t index)
    {
        SplitMix64 seeder(seed);
        uint64_t base = seeder.next();
        return SplitMix64(base + index * kSplitMix64Gamma);
    }

    uint64_t next()
    {
        uint64_t z = (x_ += kSplitMix64Gamma);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform draw in [0, n); n must be nonzero. Fixed-point
     *  multiply keeps the mapping platform-independent (and bias
     *  below 2^-32 for every n this codebase draws). */
    uint64_t below(uint64_t n)
    {
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * n) >> 64);
    }

  private:
    uint64_t x_;
};

} // namespace asim

#endif // ASIM_SUPPORT_RAND_HH
