/**
 * @file
 * Binary serialization primitives for on-disk artifacts.
 *
 * A ByteWriter appends fixed-width little-endian integers and length-
 * prefixed byte strings to a growing buffer; a ByteReader reads them
 * back with every access bounds-checked. Readers are built for
 * *hostile* input (a truncated or bit-flipped checkpoint file must
 * fail with a diagnostic, never with undefined behavior): any
 * malformed read raises SimError carrying the reader's context
 * string (typically a file path), the byte offset, and what was
 * being read.
 *
 * The integer encodings are unconditionally little-endian so files
 * written on one machine load on any other.
 */

#ifndef ASIM_SUPPORT_SERIALIZE_HH
#define ASIM_SUPPORT_SERIALIZE_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "support/logging.hh"

namespace asim {

/** Append-only little-endian encoder. */
class ByteWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<uint8_t>(v >> (8 * i)));
    }

    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }

    /** Raw bytes, no length prefix. */
    void
    bytes(std::string_view data)
    {
        buf_.append(data.data(), data.size());
    }

    /** Length-prefixed (u32) byte string. */
    void
    str(std::string_view s)
    {
        u32(static_cast<uint32_t>(s.size()));
        bytes(s);
    }

    const std::string &data() const { return buf_; }
    std::string take() { return std::move(buf_); }
    size_t size() const { return buf_.size(); }

  private:
    std::string buf_;
};

/** Bounds-checked little-endian decoder. See file comment. */
class ByteReader
{
  public:
    /** @param data the encoded bytes (must outlive the reader)
     *  @param context diagnostic prefix for errors (e.g. file path) */
    ByteReader(std::string_view data, std::string context)
        : data_(data), context_(std::move(context))
    {}

    uint8_t
    u8(const char *what)
    {
        need(1, what);
        return static_cast<uint8_t>(data_[pos_++]);
    }

    uint32_t
    u32(const char *what)
    {
        need(4, what);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(
                     static_cast<uint8_t>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    uint64_t
    u64(const char *what)
    {
        need(8, what);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(
                     static_cast<uint8_t>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    int32_t
    i32(const char *what)
    {
        return static_cast<int32_t>(u32(what));
    }

    /** Raw bytes, no length prefix. */
    std::string_view
    bytes(size_t n, const char *what)
    {
        need(n, what);
        std::string_view v = data_.substr(pos_, n);
        pos_ += n;
        return v;
    }

    /** Length-prefixed (u32) byte string. The declared length is
     *  validated against the remaining input *before* any allocation,
     *  so a bit-flipped length fails fast instead of allocating. */
    std::string
    str(const char *what)
    {
        uint32_t n = u32(what);
        if (n > remaining())
            fail(std::string(what) + " declares " + std::to_string(n) +
                 " bytes but only " + std::to_string(remaining()) +
                 " remain");
        return std::string(bytes(n, what));
    }

    /** A count that will drive an allocation or loop: validated
     *  against `limit` and against the remaining input assuming at
     *  least `elemSize` encoded bytes per element. */
    uint64_t
    count(const char *what, uint64_t limit, size_t elemSize)
    {
        uint64_t n = u64(what);
        if (n > limit)
            fail(std::string(what) + " is " + std::to_string(n) +
                 ", above the sanity limit " + std::to_string(limit));
        if (elemSize != 0 && n > remaining() / elemSize)
            fail(std::string(what) + " declares " + std::to_string(n) +
                 " elements but only " + std::to_string(remaining()) +
                 " bytes remain");
        return n;
    }

    size_t offset() const { return pos_; }
    size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return pos_ == data_.size(); }

    /** Raise SimError "<context>: <reason> (offset N)". */
    [[noreturn]] void
    fail(const std::string &reason) const
    {
        throw SimError(context_ + ": " + reason + " (offset " +
                       std::to_string(pos_) + ")");
    }

  private:
    void
    need(size_t n, const char *what)
    {
        if (n > remaining())
            fail("truncated reading " + std::string(what) + ": need " +
                 std::to_string(n) + " bytes, have " +
                 std::to_string(remaining()));
    }

    std::string_view data_;
    std::string context_;
    size_t pos_ = 0;
};

/**
 * Write `data` to `path` atomically: a sibling temp file is written,
 * flushed, and renamed into place, so a crash mid-write can never
 * leave a torn file under the final name — the discipline every
 * durable artifact (checkpoints, batch resume markers) relies on.
 * @throws SimError on any I/O failure (the temp file is removed)
 */
void writeFileAtomic(const std::string &path, std::string_view data);

/** FNV-1a 64-bit hash (stable across platforms and releases; used
 *  for content identity keys, not for untrusted-input integrity). */
uint64_t fnv1a64(std::string_view data, uint64_t seed = 0);

/** CRC-32 (IEEE 802.3, reflected) over `data`. */
uint32_t crc32(std::string_view data);

} // namespace asim

#endif // ASIM_SUPPORT_SERIALIZE_HH
