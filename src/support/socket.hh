/**
 * @file
 * Minimal stream-socket support for the serve subsystem.
 *
 * A Socket is a move-only fd wrapper with the two blocking
 * primitives a framed request/response protocol needs (readSome /
 * writeAll); the free functions create listeners and connections
 * over Unix-domain paths and loopback TCP. The first listen/connect
 * installs a process-wide SIG_IGN for SIGPIPE (same discipline as
 * support/subprocess.hh) so a write to a disconnected peer fails
 * with EPIPE instead of killing the process.
 *
 * Errors at creation time (bind, listen, connect) throw SimError
 * naming the endpoint; errors on an established socket are reported
 * by return value (false / <= 0) — the caller reaps the connection
 * and raises its own domain error, exactly like Subprocess.
 */

#ifndef ASIM_SUPPORT_SOCKET_HH
#define ASIM_SUPPORT_SOCKET_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace asim {

/** See file comment. Closes the fd on destruction. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd)
        : fd_(fd)
    {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept
        : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Read up to `n` bytes (blocking, EINTR-retried). @return bytes
     *  read, 0 on orderly EOF, -1 on error */
    long readSome(char *buf, size_t n);

    /** Write all of `data` (EINTR-retried). @return false on any
     *  write error (EPIPE when the peer is gone) */
    bool writeAll(std::string_view data);

    /** Close the fd. Idempotent. */
    void close();

    /** shutdown(2) both directions — unblocks a thread sitting in
     *  readSome() on this socket from another thread. */
    void shutdownBoth();

  private:
    int fd_ = -1;
};

/** Bind + listen on a Unix-domain socket at `path`, replacing a
 *  stale socket file. @throws SimError (with the path) on failure */
Socket listenUnix(const std::string &path);

/** Bind + listen on loopback TCP. @param port 0 picks an ephemeral
 *  port — read it back with localPort(). @throws SimError */
Socket listenTcp(uint16_t port);

/** The local port a TCP listener is bound to. @throws SimError */
uint16_t localPort(const Socket &listener);

/** Accept one connection. An invalid Socket means a transient
 *  failure (EINTR/ECONNABORTED) or a closed listener — poll again
 *  or shut down. */
Socket acceptConnection(Socket &listener);

/** Connect to a Unix-domain socket. @throws SimError */
Socket connectUnix(const std::string &path);

/** Connect to a TCP endpoint (numeric host). @throws SimError */
Socket connectTcp(const std::string &host, uint16_t port);

/**
 * Connect to an endpoint string: `unix:<path>`, `tcp:<host>:<port>`,
 * or a bare filesystem path (treated as unix). @throws SimError on
 * a malformed endpoint or connection failure
 */
Socket connectEndpoint(const std::string &endpoint);

/**
 * poll(2) the fds for readability. @return the index of the first
 * readable (or error/hup — the caller's read will surface it) fd,
 * or -1 on timeout. @param timeoutMs -1 waits forever
 */
int pollReadable(const std::vector<int> &fds, int timeoutMs);

} // namespace asim

#endif // ASIM_SUPPORT_SOCKET_HH
