#include "support/metrics.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace asim::metrics {

namespace {

std::atomic<bool> g_timingEnabled{false};

/** Render a double without locale surprises and without trailing
 *  noise: fixed, 3 decimals. */
std::string
fmtDouble(double v)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << v;
    return os.str();
}

void
appendJsonKey(std::string &out, const std::string &name)
{
    // Metric names are library-chosen (dotted identifiers), but escape
    // defensively so exposition can never emit invalid JSON.
    out += '"';
    for (char c : name) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            out += "?";
            continue;
        }
        out += c;
    }
    out += '"';
}

} // namespace

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool
timingEnabled()
{
    return g_timingEnabled.load(std::memory_order_relaxed);
}

void
setTimingEnabled(bool on)
{
    g_timingEnabled.store(on, std::memory_order_relaxed);
}

namespace detail {

size_t
shardIndex()
{
    static std::atomic<size_t> nextThread{0};
    thread_local const size_t idx =
        nextThread.fetch_add(1, std::memory_order_relaxed) % kShards;
    return idx;
}

} // namespace detail

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds))
{
    std::sort(bounds_.begin(), bounds_.end());
    bounds_.erase(std::unique(bounds_.begin(), bounds_.end()),
                  bounds_.end());
    for (auto &s : shards_)
        s.buckets = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot snap;
    snap.bounds = bounds_;
    snap.counts.assign(bounds_.size() + 1, 0);
    for (const auto &s : shards_) {
        for (size_t i = 0; i < s.buckets.size(); ++i)
            snap.counts[i] +=
                s.buckets[i].load(std::memory_order_relaxed);
        snap.sum += s.sum.load(std::memory_order_relaxed);
    }
    for (uint64_t c : snap.counts)
        snap.count += c;
    return snap;
}

uint64_t
Histogram::Snapshot::quantile(double q) const
{
    if (count == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const uint64_t rank =
        static_cast<uint64_t>(q * double(count - 1)) + 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        seen += counts[i];
        if (seen >= rank) {
            // Overflow bucket has no upper bound; report the largest
            // finite bound (or the mean if there are no bounds).
            if (i < bounds.size())
                return bounds[i];
            return bounds.empty() ? static_cast<uint64_t>(mean())
                                  : bounds.back();
        }
    }
    return bounds.empty() ? 0 : bounds.back();
}

std::vector<uint64_t>
Histogram::exponentialBounds(uint64_t first, double factor, size_t count)
{
    std::vector<uint64_t> bounds;
    bounds.reserve(count);
    double v = double(first);
    for (size_t i = 0; i < count; ++i) {
        const auto b = static_cast<uint64_t>(v);
        if (bounds.empty() || b > bounds.back())
            bounds.push_back(b);
        v *= factor;
    }
    return bounds;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry &
Registry::global()
{
    static Registry *r = new Registry(); // leaked: outlives all threads
    return *r;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name, std::vector<uint64_t> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

RegistrySnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    RegistrySnapshot snap;
    for (const auto &[name, c] : counters_)
        snap.counters[name] = c->value();
    for (const auto &[name, g] : gauges_)
        snap.gauges[name] = {g->value(), g->peak()};
    for (const auto &[name, h] : histograms_)
        snap.histograms[name] = h->snapshot();
    return snap;
}

std::string
Registry::textExposition() const
{
    const RegistrySnapshot snap = snapshot();
    std::ostringstream os;
    for (const auto &[name, v] : snap.counters)
        os << name << " " << v << "\n";
    for (const auto &[name, vp] : snap.gauges)
        os << name << " " << vp.first << "\n"
           << name << ".peak " << vp.second << "\n";
    for (const auto &[name, h] : snap.histograms) {
        os << name << ".count " << h.count << "\n"
           << name << ".sum " << h.sum << "\n"
           << name << ".mean " << fmtDouble(h.mean()) << "\n"
           << name << ".p50 " << h.quantile(0.50) << "\n"
           << name << ".p95 " << h.quantile(0.95) << "\n"
           << name << ".p99 " << h.quantile(0.99) << "\n";
    }
    return os.str();
}

std::string
Registry::jsonExposition() const
{
    const RegistrySnapshot snap = snapshot();
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, v] : snap.counters) {
        if (!first)
            out += ",";
        first = false;
        appendJsonKey(out, name);
        out += ":" + std::to_string(v);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, vp] : snap.gauges) {
        if (!first)
            out += ",";
        first = false;
        appendJsonKey(out, name);
        out += ":{\"value\":" + std::to_string(vp.first) +
               ",\"peak\":" + std::to_string(vp.second) + "}";
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : snap.histograms) {
        if (!first)
            out += ",";
        first = false;
        appendJsonKey(out, name);
        out += ":{\"count\":" + std::to_string(h.count) +
               ",\"sum\":" + std::to_string(h.sum) +
               ",\"mean\":" + fmtDouble(h.mean()) +
               ",\"p50\":" + std::to_string(h.quantile(0.50)) +
               ",\"p95\":" + std::to_string(h.quantile(0.95)) +
               ",\"p99\":" + std::to_string(h.quantile(0.99)) +
               ",\"bounds\":[";
        for (size_t i = 0; i < h.bounds.size(); ++i) {
            if (i)
                out += ",";
            out += std::to_string(h.bounds[i]);
        }
        out += "],\"buckets\":[";
        for (size_t i = 0; i < h.counts.size(); ++i) {
            if (i)
                out += ",";
            out += std::to_string(h.counts[i]);
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

void
Registry::resetForTest()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

} // namespace asim::metrics
