/**
 * @file
 * Error reporting and diagnostics for the ASIM II toolchain.
 *
 * Follows the gem5 fatal-vs-panic discipline:
 *   - SpecError: the *user's* specification is wrong (bad syntax,
 *     undefined component, circular dependency). Equivalent of the
 *     thesis' "Error. ..." messages that abort code generation.
 *   - SimError: a runtime condition detected while simulating (selector
 *     index beyond its case list, memory address out of range).
 *     Equivalent of the thesis' Pascal runtime errors, but diagnosable.
 *   - panic(): an internal invariant of this library was violated.
 */

#ifndef ASIM_SUPPORT_LOGGING_HH
#define ASIM_SUPPORT_LOGGING_HH

#include <stdexcept>
#include <string>
#include <vector>

namespace asim {

namespace tracing {
class SyncWriter;
} // namespace tracing

/** Raised when a specification is malformed. Mirrors the thesis'
 *  compile-time "Error." messages (no code is generated). */
class SpecError : public std::runtime_error
{
  public:
    explicit SpecError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Raised when simulation hits a runtime fault (bad selector index,
 *  memory address out of declared range, unknown ALU function). */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Abort with an internal-bug message. Never the user's fault. */
[[noreturn]] void panic(const std::string &msg);

/** Write one line to the process log sink — by default the tracer's
 *  serialized stderr writer (tracing::stderrWriter()), so concurrent
 *  threads never interleave partial lines. */
void logLine(const std::string &msg);

/** Redirect the log sink (panic + logLine). Pass nullptr to restore
 *  the default stderr writer; returns the previous override. The
 *  writer must outlive its installation. Not thread-safe against
 *  concurrent logging — install sinks at startup or in tests. */
tracing::SyncWriter *setLogSink(tracing::SyncWriter *writer);

/**
 * Collector for non-fatal warnings ("declared but not defined",
 * "defined but not declared", ...). The thesis printed these to the
 * terminal and carried on; we collect them so that tools and tests can
 * inspect them, and optionally echo to a stream.
 */
class Diagnostics
{
  public:
    /** Record one warning message. */
    void warn(const std::string &msg) { warnings_.push_back(msg); }

    /** All warnings recorded so far, in order. */
    const std::vector<std::string> &warnings() const { return warnings_; }

    /** True if no warnings were recorded. */
    bool clean() const { return warnings_.empty(); }

  private:
    std::vector<std::string> warnings_;
};

} // namespace asim

#endif // ASIM_SUPPORT_LOGGING_HH
