#include "support/logging.hh"

#include "support/tracing.hh"

#include <cstdlib>

namespace asim {

namespace {

// The process log sink. Defaults to the tracer's serialized stderr
// writer so daemon threads, pool workers, and the tracer never shear
// each other's lines; tests swap in a capture writer.
tracing::SyncWriter *g_sink = nullptr;

tracing::SyncWriter &
sink()
{
    return g_sink ? *g_sink : tracing::stderrWriter();
}

} // namespace

tracing::SyncWriter *
setLogSink(tracing::SyncWriter *writer)
{
    tracing::SyncWriter *prev = g_sink;
    g_sink = writer;
    return prev;
}

void
logLine(const std::string &msg)
{
    sink().writeLine(msg);
}

void
panic(const std::string &msg)
{
    sink().writeLine("panic: " + msg);
    std::abort();
}

} // namespace asim
