#include "support/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace asim {

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace asim
