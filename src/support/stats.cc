#include "support/stats.hh"

#include <sstream>

namespace asim {

std::string
SimStats::summary() const
{
    std::ostringstream os;
    os << "cycles: " << cycles << "\n";
    os << "alu evaluations: " << aluEvals << "\n";
    os << "selector evaluations: " << selEvals << "\n";
    for (const auto &m : mems) {
        os << "memory " << m.name << ": reads=" << m.reads
           << " writes=" << m.writes << " inputs=" << m.inputs
           << " outputs=" << m.outputs << "\n";
    }
    return os.str();
}

} // namespace asim
