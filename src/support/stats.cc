#include "support/stats.hh"

#include <sstream>

namespace asim {

std::string
SimStats::summary() const
{
    std::ostringstream os;
    os << "cycles: " << cycles << "\n";
    os << "alu evaluations: " << aluEvals << "\n";
    os << "selector evaluations: " << selEvals << "\n";
    for (const auto &m : mems) {
        os << "memory " << m.name << ": reads=" << m.reads
           << " writes=" << m.writes << " inputs=" << m.inputs
           << " outputs=" << m.outputs << "\n";
    }
    return os.str();
}

void
RunStats::addTask(const SimStats &s, double seconds, bool faulted)
{
    ++tasks;
    if (faulted)
        ++faults;
    cycles += s.cycles;
    aluEvals += s.aluEvals;
    selEvals += s.selEvals;
    for (const auto &m : s.mems)
        memAccesses += m.total();
    busySeconds += seconds;
}

void
RunStats::merge(const RunStats &other)
{
    tasks += other.tasks;
    faults += other.faults;
    cycles += other.cycles;
    aluEvals += other.aluEvals;
    selEvals += other.selEvals;
    memAccesses += other.memAccesses;
    busySeconds += other.busySeconds;
    wallSeconds += other.wallSeconds;
}

double
RunStats::cyclesPerSecond() const
{
    return wallSeconds > 0 ? static_cast<double>(cycles) / wallSeconds
                           : 0.0;
}

double
RunStats::speedup() const
{
    return wallSeconds > 0 ? busySeconds / wallSeconds : 0.0;
}

std::string
RunStats::summary() const
{
    std::ostringstream os;
    os << "tasks: " << tasks;
    if (faults)
        os << " (" << faults << " faulted)";
    os << "\n";
    os << "total cycles: " << cycles << "\n";
    os << "alu evaluations: " << aluEvals << "\n";
    os << "selector evaluations: " << selEvals << "\n";
    os << "memory accesses: " << memAccesses << "\n";
    if (wallSeconds > 0) {
        os << "wall seconds: " << wallSeconds << "\n";
        os << "aggregate cycles/sec: " << cyclesPerSecond() << "\n";
    }
    return os.str();
}

} // namespace asim
