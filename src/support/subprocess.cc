#include "support/subprocess.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

extern char **environ;

namespace asim {

namespace {

/** A write to a child that already exited must surface as EPIPE,
 *  not kill this process. Installed once, before the first spawn. */
void
ignoreSigpipe()
{
    static const bool done = [] {
        struct sigaction sa = {};
        sa.sa_handler = SIG_IGN;
        sigaction(SIGPIPE, &sa, nullptr);
        return true;
    }();
    (void)done;
}

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

Subprocess::~Subprocess()
{
    terminate();
}

void
Subprocess::start(const std::vector<std::string> &argv, int stderrFd)
{
    if (running())
        throw std::runtime_error("subprocess already running");
    if (argv.empty())
        throw std::runtime_error("subprocess needs an argv[0]");
    ignoreSigpipe();
    rbuf_.clear();

    // O_CLOEXEC is load-bearing: without it, a child spawned by a
    // *sibling* Subprocess (native batches spawn one per instance)
    // would inherit these pipe ends and keep them open for its whole
    // lifetime — then EOF-based death detection on this child never
    // fires. The child's own 0/1/2 survive exec because dup2
    // clears the close-on-exec flag on the destination fd.
    int inPipe[2] = {-1, -1};  // parent writes -> child stdin
    int outPipe[2] = {-1, -1}; // child stdout -> parent reads
    if (::pipe2(inPipe, O_CLOEXEC) != 0 ||
        ::pipe2(outPipe, O_CLOEXEC) != 0) {
        closeFd(inPipe[0]);
        closeFd(inPipe[1]);
        throw std::runtime_error("pipe2() failed: " +
                                 std::string(std::strerror(errno)));
    }

    posix_spawn_file_actions_t fa;
    posix_spawn_file_actions_init(&fa);
    posix_spawn_file_actions_adddup2(&fa, inPipe[0], 0);
    posix_spawn_file_actions_adddup2(&fa, outPipe[1], 1);
    if (stderrFd >= 0)
        posix_spawn_file_actions_adddup2(&fa, stderrFd, 2);

    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    pid_t pid = -1;
    int rc = ::posix_spawn(&pid, cargv[0], &fa, nullptr, cargv.data(),
                           environ);
    posix_spawn_file_actions_destroy(&fa);
    ::close(inPipe[0]);
    ::close(outPipe[1]);
    if (rc != 0) {
        ::close(inPipe[1]);
        ::close(outPipe[0]);
        throw std::runtime_error("posix_spawn(" + argv[0] +
                                 ") failed: " + std::strerror(rc));
    }
    pid_ = pid;
    inFd_ = inPipe[1];
    outFd_ = outPipe[0];
}

bool
Subprocess::writeAll(std::string_view data)
{
    if (inFd_ < 0)
        return false;
    const char *p = data.data();
    size_t left = data.size();
    while (left > 0) {
        ssize_t n = ::write(inFd_, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        left -= static_cast<size_t>(n);
    }
    return true;
}

bool
Subprocess::readLine(std::string &line)
{
    line.clear();
    for (;;) {
        size_t nl = rbuf_.find('\n');
        if (nl != std::string::npos) {
            line.assign(rbuf_, 0, nl);
            rbuf_.erase(0, nl + 1);
            return true;
        }
        char chunk[4096];
        ssize_t n = ::read(outFd_, chunk, sizeof chunk);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        rbuf_.append(chunk, static_cast<size_t>(n));
    }
}

bool
Subprocess::readExact(std::string &out, size_t n)
{
    out.clear();
    if (rbuf_.size() >= n) {
        out.assign(rbuf_, 0, n);
        rbuf_.erase(0, n);
        return true;
    }
    out.swap(rbuf_);
    while (out.size() < n) {
        char chunk[4096];
        size_t want = n - out.size();
        ssize_t got = ::read(outFd_, chunk,
                             want < sizeof chunk ? want : sizeof chunk);
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0)
            return false;
        out.append(chunk, static_cast<size_t>(got));
    }
    return true;
}

void
Subprocess::closeStdin()
{
    closeFd(inFd_);
}

int
Subprocess::reap(bool force)
{
    if (pid_ <= 0)
        return -1;
    closeFd(inFd_);
    closeFd(outFd_);
    rbuf_.clear();
    if (force)
        ::kill(static_cast<pid_t>(pid_), SIGKILL);
    int status = 0;
    pid_t r;
    do {
        r = ::waitpid(static_cast<pid_t>(pid_), &status, 0);
    } while (r < 0 && errno == EINTR);
    pid_ = -1;
    return r < 0 ? -1 : status;
}

int
Subprocess::terminate()
{
    return reap(/*force=*/true);
}

int
Subprocess::waitExit()
{
    return reap(/*force=*/false);
}

void
Subprocess::kill()
{
    if (pid_ > 0)
        ::kill(static_cast<pid_t>(pid_), SIGKILL);
}

} // namespace asim
