#include "support/socket.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <mutex>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/logging.hh"

namespace asim {

namespace {

/** A write to a disconnected peer must fail with EPIPE, never kill
 *  the process (same rule as support/subprocess.cc). */
void
ignoreSigpipe()
{
    static std::once_flag once;
    std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

[[noreturn]] void
fail(const std::string &what, const std::string &endpoint)
{
    throw SimError(what + " " + endpoint + ": " +
                   std::strerror(errno));
}

} // namespace

long
Socket::readSome(char *buf, size_t n)
{
    for (;;) {
        ssize_t r = ::read(fd_, buf, n);
        if (r >= 0)
            return static_cast<long>(r);
        if (errno != EINTR)
            return -1;
    }
}

bool
Socket::writeAll(std::string_view data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t w = ::write(fd_, data.data() + off, data.size() - off);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(w);
    }
    return true;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

Socket
listenUnix(const std::string &path)
{
    ignoreSigpipe();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw SimError("unix socket path too long (" +
                       std::to_string(path.size()) + " bytes, max " +
                       std::to_string(sizeof(addr.sun_path) - 1) +
                       "): " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fail("cannot create unix socket", path);
    Socket sock(fd);
    ::unlink(path.c_str()); // replace a stale socket file
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fail("cannot bind unix socket", path);
    if (::listen(fd, 64) != 0)
        fail("cannot listen on unix socket", path);
    return sock;
}

Socket
listenTcp(uint16_t port)
{
    ignoreSigpipe();
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fail("cannot create tcp socket", "loopback");
    Socket sock(fd);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fail("cannot bind tcp port", std::to_string(port));
    if (::listen(fd, 64) != 0)
        fail("cannot listen on tcp port", std::to_string(port));
    return sock;
}

uint16_t
localPort(const Socket &listener)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(listener.fd(),
                      reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        fail("cannot read local port of fd",
             std::to_string(listener.fd()));
    return ntohs(addr.sin_port);
}

Socket
acceptConnection(Socket &listener)
{
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    return Socket(fd); // invalid on failure; the caller polls again
}

Socket
connectUnix(const std::string &path)
{
    ignoreSigpipe();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw SimError("unix socket path too long (" +
                       std::to_string(path.size()) + " bytes): " +
                       path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fail("cannot create unix socket", path);
    Socket sock(fd);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        fail("cannot connect to unix socket", path);
    return sock;
}

Socket
connectTcp(const std::string &host, uint16_t port)
{
    ignoreSigpipe();
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        throw SimError("tcp endpoints want a numeric IPv4 host, got: " +
                       host);
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fail("cannot create tcp socket", host);
    Socket sock(fd);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        fail("cannot connect to", host + ":" + std::to_string(port));
    return sock;
}

Socket
connectEndpoint(const std::string &endpoint)
{
    if (endpoint.rfind("unix:", 0) == 0)
        return connectUnix(endpoint.substr(5));
    if (endpoint.rfind("tcp:", 0) == 0) {
        std::string rest = endpoint.substr(4);
        auto colon = rest.rfind(':');
        if (colon == std::string::npos) {
            throw SimError("tcp endpoint wants tcp:<host>:<port>, "
                           "got: " + endpoint);
        }
        long port = std::strtol(rest.c_str() + colon + 1, nullptr, 10);
        if (port <= 0 || port > 65535) {
            throw SimError("bad tcp port in endpoint: " + endpoint);
        }
        return connectTcp(rest.substr(0, colon),
                          static_cast<uint16_t>(port));
    }
    return connectUnix(endpoint);
}

int
pollReadable(const std::vector<int> &fds, int timeoutMs)
{
    std::vector<pollfd> pfds;
    pfds.reserve(fds.size());
    for (int fd : fds)
        pfds.push_back(pollfd{fd, POLLIN, 0});
    int n = ::poll(pfds.data(), pfds.size(), timeoutMs);
    if (n <= 0)
        return -1; // timeout or EINTR: the caller loops
    for (size_t i = 0; i < pfds.size(); ++i) {
        if (pfds[i].revents != 0)
            return static_cast<int>(i);
    }
    return -1;
}

} // namespace asim
