#include "support/text.hh"

namespace asim {

bool
isValidName(std::string_view s)
{
    if (s.empty() || !isLetter(s[0]))
        return false;
    for (char c : s.substr(1)) {
        if (!isLetter(c) && !isDigit(c))
            return false;
    }
    return true;
}

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            break;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
join(const std::vector<std::string> &pieces, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < pieces.size(); ++i) {
        if (i)
            out += sep;
        out += pieces[i];
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
contains(std::string_view hay, std::string_view needle)
{
    return hay.find(needle) != std::string_view::npos;
}

int
countOccurrences(std::string_view hay, std::string_view needle)
{
    if (needle.empty())
        return 0;
    int n = 0;
    size_t pos = 0;
    while ((pos = hay.find(needle, pos)) != std::string_view::npos) {
        ++n;
        pos += needle.size();
    }
    return n;
}

} // namespace asim
