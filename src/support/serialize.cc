#include "support/serialize.hh"

#include <array>
#include <cstdio>
#include <fstream>

namespace asim {

void
writeFileAtomic(const std::string &path, std::string_view data)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(data.data(),
                  static_cast<std::streamsize>(data.size()));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            throw SimError("cannot write " + tmp);
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SimError("cannot move into place: " + path);
    }
}

uint64_t
fnv1a64(std::string_view data, uint64_t seed)
{
    // Offset basis mixed with the caller's seed so independent
    // domains (spec text, option bits) cannot collide trivially.
    uint64_t h = 14695981039346656037ull ^ seed;
    for (char c : data) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

namespace {

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

uint32_t
crc32(std::string_view data)
{
    static const std::array<uint32_t, 256> table = makeCrcTable();
    uint32_t crc = 0xffffffffu;
    for (char ch : data)
        crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xff] ^
              (crc >> 8);
    return crc ^ 0xffffffffu;
}

} // namespace asim
