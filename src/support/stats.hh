/**
 * @file
 * Simulation statistics.
 *
 * The thesis motivates RTL simulation partly by the statistics a run
 * can produce "such as execution cycles required, memory accesses, and
 * other related information" (§1.4). Every engine in this library
 * maintains a SimStats record with exactly those counters.
 */

#ifndef ASIM_SUPPORT_STATS_HH
#define ASIM_SUPPORT_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace asim {

/** Per-memory access counters. */
struct MemStats
{
    std::string name;
    uint64_t reads = 0;    ///< operation 0
    uint64_t writes = 0;   ///< operation 1
    uint64_t inputs = 0;   ///< operation 2 (memory-mapped input)
    uint64_t outputs = 0;  ///< operation 3 (memory-mapped output)

    uint64_t total() const { return reads + writes + inputs + outputs; }
};

/** Whole-run counters maintained by every engine. */
struct SimStats
{
    uint64_t cycles = 0;      ///< simulated cycles executed
    uint64_t aluEvals = 0;    ///< ALU evaluations
    uint64_t selEvals = 0;    ///< selector evaluations
    std::vector<MemStats> mems;

    /** Reset all counters (memory names are preserved). */
    void
    reset()
    {
        cycles = aluEvals = selEvals = 0;
        for (auto &m : mems)
            m.reads = m.writes = m.inputs = m.outputs = 0;
    }

    /** Render a human-readable summary table. */
    std::string summary() const;
};

/**
 * Aggregated counters for a *batch* of runs (one task = one complete
 * simulation run). Each task folds its SimStats and wall time in with
 * addTask(); whole batches combine with merge(). Aggregation is pure
 * arithmetic, so folding per-task records in index order yields the
 * same totals under any thread count — the determinism the batch
 * subsystem (sim/batch.hh) promises.
 */
struct RunStats
{
    uint64_t tasks = 0;       ///< runs folded in
    uint64_t faults = 0;      ///< runs that ended in a SimError
    uint64_t cycles = 0;      ///< simulated cycles, all runs
    uint64_t aluEvals = 0;
    uint64_t selEvals = 0;
    uint64_t memAccesses = 0; ///< reads+writes+inputs+outputs
    double busySeconds = 0;   ///< sum of per-task wall time
    double wallSeconds = 0;   ///< whole-batch wall clock (driver-set)

    /** Fold one finished task in. */
    void addTask(const SimStats &s, double seconds,
                 bool faulted = false);

    /** Fold another aggregate in. */
    void merge(const RunStats &other);

    /** Aggregate throughput: cycles / wallSeconds (0 when unset). */
    double cyclesPerSecond() const;

    /** Parallel speedup estimate: busySeconds / wallSeconds. */
    double speedup() const;

    /** Render a human-readable summary. */
    std::string summary() const;
};

} // namespace asim

#endif // ASIM_SUPPORT_STATS_HH
