/**
 * @file
 * Small text helpers shared by the lexer, parsers, and code generators.
 */

#ifndef ASIM_SUPPORT_TEXT_HH
#define ASIM_SUPPORT_TEXT_HH

#include <string>
#include <string_view>
#include <vector>

namespace asim {

/** Letters per the thesis grammar (a..z, A..Z). */
constexpr bool
isLetter(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

/** Decimal digits. */
constexpr bool
isDigit(char c)
{
    return c >= '0' && c <= '9';
}

/** Hex digits per the thesis grammar (0..9, A..F — upper case only). */
constexpr bool
isHexDigit(char c)
{
    return isDigit(c) || (c >= 'A' && c <= 'F');
}

/** Valid name: a letter followed by letters and digits. */
bool isValidName(std::string_view s);

/** Split `s` on `sep`, keeping empty pieces. */
std::vector<std::string> split(std::string_view s, char sep);

/** Join pieces with `sep`. */
std::string join(const std::vector<std::string> &pieces,
                 std::string_view sep);

/** True if `s` starts with `prefix`. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True if `hay` contains `needle`. */
bool contains(std::string_view hay, std::string_view needle);

/** Count occurrences of `needle` in `hay` (non-overlapping). */
int countOccurrences(std::string_view hay, std::string_view needle);

} // namespace asim

#endif // ASIM_SUPPORT_TEXT_HH
