/**
 * @file
 * A small fixed-size thread pool with a work queue and a
 * `parallelFor` index loop — the execution substrate for bulk
 * simulation workloads (sim/batch.hh).
 *
 * Design constraints, in order:
 *  - determinism: the pool schedules *which thread* runs an index,
 *    never *what* an index computes; callers that keep per-index
 *    state independent get results identical to a serial loop;
 *  - exception safety: a task that throws never takes down a worker;
 *    parallelFor() rethrows the exception of the lowest failing
 *    index after every index has settled, so the surfaced error does
 *    not depend on thread scheduling;
 *  - graceful degradation: `threads = 1` (or a single-index loop)
 *    runs inline on the calling thread — byte-identical behavior to
 *    not having a pool at all.
 */

#ifndef ASIM_SUPPORT_THREAD_POOL_HH
#define ASIM_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace asim {

/** See file comment. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means hardwareThreads() */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding work, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (>= 1). */
    unsigned size() const { return threads_; }

    /** std::thread::hardware_concurrency(), never less than 1. */
    static unsigned hardwareThreads();

    /**
     * Enqueue one task. Tasks may not touch the pool (no nested
     * post/parallelFor). A throwing task is swallowed by the worker;
     * use parallelFor() when failures must surface.
     */
    void post(std::function<void()> task);

    /** Block until the queue is empty and every worker is idle. */
    void drain();

    /**
     * Run `fn(i)` for every i in [begin, end), distributing indices
     * across the workers plus the calling thread. Returns when all
     * indices have settled. If any invocation threw, rethrows the
     * exception of the lowest failing index (deterministic under any
     * scheduling); the remaining indices still run to completion.
     *
     * With one worker or a single index the loop runs inline, in
     * index order, on the calling thread.
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)> &fn);

  private:
    void workerLoop();

    unsigned threads_;
    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;   ///< workers: work or shutdown
    std::condition_variable idle_;   ///< drain(): all quiet
    unsigned active_ = 0;            ///< tasks currently executing
    bool shutdown_ = false;
};

} // namespace asim

#endif // ASIM_SUPPORT_THREAD_POOL_HH
