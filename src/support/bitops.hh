/**
 * @file
 * Bit-level value semantics of the ASIM II simulators.
 *
 * The thesis stores every signal in a 32-bit two's-complement Pascal
 * `integer`, caps usable data width at 31 bits (`mask = 2147483647`),
 * and implements the bitwise AND (`land`) with a set-intersection trick
 * over the raw representation. We reproduce those semantics exactly:
 * values live in int32_t, `land` is a plain bitwise AND, and arithmetic
 * wraps modulo 2^32 (a deterministic stand-in for the unchecked 1986
 * Pascal arithmetic).
 */

#ifndef ASIM_SUPPORT_BITOPS_HH
#define ASIM_SUPPORT_BITOPS_HH

#include <cstdint>

namespace asim {

/** Data values are 31 bits wide: the thesis' `mask` constant. */
constexpr int32_t kValueMask = 0x7fffffff;

/** Maximum number of data bits in an expression ("Too many bits"). */
constexpr int kMaxBits = 31;

/** The thesis' `land` function: bitwise AND over the representation. */
constexpr int32_t
land(int32_t a, int32_t b)
{
    return static_cast<int32_t>(static_cast<uint32_t>(a) &
                                static_cast<uint32_t>(b));
}

/** 2^n for n in [0,31]: the thesis' `highbits` table. */
constexpr int32_t
highbit(int n)
{
    return static_cast<int32_t>(uint32_t{1} << n);
}

/** Mask with bits from..to (inclusive, zero-based) set. */
constexpr int32_t
maskBits(int from, int to)
{
    int32_t m = 0;
    for (int i = from; i <= to; ++i)
        m = static_cast<int32_t>(static_cast<uint32_t>(m) |
                                 (uint32_t{1} << i));
    return m;
}

/** Mask with the low `width` bits set (width in [0,31]). */
constexpr int32_t
lowMask(int width)
{
    return width <= 0 ? 0 : maskBits(0, width - 1);
}

/** Wrapping 32-bit addition (Pascal integer overflow stand-in). */
constexpr int32_t
wadd(int32_t a, int32_t b)
{
    return static_cast<int32_t>(static_cast<uint32_t>(a) +
                                static_cast<uint32_t>(b));
}

/** Wrapping 32-bit subtraction. */
constexpr int32_t
wsub(int32_t a, int32_t b)
{
    return static_cast<int32_t>(static_cast<uint32_t>(a) -
                                static_cast<uint32_t>(b));
}

/** Wrapping 32-bit multiplication. */
constexpr int32_t
wmul(int32_t a, int32_t b)
{
    return static_cast<int32_t>(static_cast<uint32_t>(a) *
                                static_cast<uint32_t>(b));
}

/**
 * Shift a field into its concatenation position.
 *
 * @param v already-masked field value
 * @param shift net shift; positive shifts left, negative right
 */
constexpr int32_t
shiftField(int32_t v, int shift)
{
    if (shift >= 0)
        return static_cast<int32_t>(static_cast<uint32_t>(v) << shift);
    return static_cast<int32_t>(static_cast<uint32_t>(v) >> -shift);
}

} // namespace asim

#endif // ASIM_SUPPORT_BITOPS_HH
