/**
 * @file
 * Span/event tracer emitting Chrome `trace_event` JSON — loadable in
 * Perfetto (ui.perfetto.dev) and chrome://tracing. See
 * docs/OBSERVABILITY.md for the span taxonomy.
 *
 * Off-path contract: when no trace is active, every instrumentation
 * site costs exactly one relaxed atomic load (tracing::enabled()).
 * Span construction captures that flag once; a disabled Span is two
 * null-pointer-sized stores and no clock reads.
 *
 * The writer appends events to the output file under a mutex as they
 * retire. Instrumented code keeps spans coarse (lifecycle phases,
 * batch instances, serve requests) or sampled (one in 64 cycles for
 * per-lane partition phases), so the mutex is never on a per-cycle
 * path. On stop() the file is closed as a JSON object:
 *   {"traceEvents": [...], "asim_metrics": {...}}
 * with the full metrics-registry exposition embedded, so one artifact
 * carries both spans and histograms.
 */

#ifndef ASIM_SUPPORT_TRACING_HH
#define ASIM_SUPPORT_TRACING_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace asim::tracing {

/** Serialized line-oriented writer over a stdio stream. Shared
 *  infrastructure: the tracer writes events through one of these, and
 *  support/logging.cc routes panic/log output through stderrWriter()
 *  so interleaved threads never shear a line. */
class SyncWriter
{
  public:
    /** Does not own `stream`; pass nullptr to discard writes. */
    explicit SyncWriter(std::FILE *stream)
        : stream_(stream)
    {}

    /** Write `text` plus a trailing newline atomically w.r.t. other
     *  writeLine calls on this writer, then flush. */
    void writeLine(const std::string &text);

    /** Write raw text (no newline) under the same mutex. */
    void write(const std::string &text);

    void flush();

  private:
    std::mutex mu_;
    std::FILE *stream_;
};

/** Process-wide writer wrapping stderr. */
SyncWriter &stderrWriter();

namespace detail {
extern std::atomic<bool> g_enabled;
} // namespace detail

/** True while a trace file is open. One relaxed load; instrumentation
 *  sites branch on this and pay nothing else when tracing is off. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Open `path` and start recording. Returns false (and records
 *  nothing) if the file cannot be opened. Starting while already
 *  started is a no-op returning false. Also flips
 *  metrics::setTimingEnabled(true) so duration histograms populate
 *  alongside spans. */
bool start(const std::string &path);

/** Stop recording, embed the metrics exposition, close the file.
 *  No-op when not started. Leaves metrics timing enabled. */
void stop();

/** Small stable id for the calling thread (0 = first thread seen).
 *  Used as the Chrome `tid`; lanes and pool workers name themselves
 *  via setThreadName(). */
uint32_t currentTid();

/** Emit a Chrome metadata event naming the calling thread's track. */
void setThreadName(const std::string &name);

/** Emit a complete ("ph":"X") event. `startNs` from metrics::nowNs();
 *  `argsJson` is either empty or a JSON object body like
 *  "\"cycles\":100" (no braces). `tid` defaults to the caller. */
void completeEvent(const char *name, const char *cat, uint64_t startNs,
                   uint64_t durNs, const std::string &argsJson = "",
                   int64_t tid = -1);

/** Emit an instant ("ph":"i") event at now. */
void instantEvent(const char *name, const char *cat,
                  const std::string &argsJson = "", int64_t tid = -1);

/** Emit a counter ("ph":"C") event: one numeric series sample. */
void counterEvent(const char *name, const char *series, double value);

/** Escape `s` for inclusion inside a JSON string literal (quotes,
 *  backslashes, control characters). For building span args. */
std::string jsonEscape(const std::string &s);

/** RAII complete-event span. Captures enabled() once at construction;
 *  a span built while tracing is off stays inert even if tracing
 *  starts before it closes (and vice versa: a span open across stop()
 *  is dropped by the writer, never torn). */
class Span
{
  public:
    /** `name` and `cat` must outlive the span (string literals). */
    Span(const char *name, const char *cat)
        : name_(enabled() ? name : nullptr), cat_(cat),
          start_(name_ ? nowNsForSpan() : 0)
    {}

    ~Span() { finish(); }

    /** Attach a JSON args body ("\"k\":v,...") emitted with the span. */
    void setArgs(std::string argsJson)
    {
        if (name_)
            args_ = std::move(argsJson);
    }

    /** Close the span early (idempotent). */
    void finish();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    static uint64_t nowNsForSpan();

    const char *name_;
    const char *cat_;
    uint64_t start_;
    std::string args_;
};

} // namespace asim::tracing

#endif // ASIM_SUPPORT_TRACING_HH
