#include "support/tracing.hh"

#include "support/metrics.hh"

#include <cstring>
#include <memory>
#include <sstream>

namespace asim::tracing {

namespace detail {
std::atomic<bool> g_enabled{false};
} // namespace detail

// ---------------------------------------------------------------------------
// SyncWriter
// ---------------------------------------------------------------------------

void
SyncWriter::writeLine(const std::string &text)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!stream_)
        return;
    std::fwrite(text.data(), 1, text.size(), stream_);
    std::fputc('\n', stream_);
    std::fflush(stream_);
}

void
SyncWriter::write(const std::string &text)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!stream_)
        return;
    std::fwrite(text.data(), 1, text.size(), stream_);
}

void
SyncWriter::flush()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (stream_)
        std::fflush(stream_);
}

SyncWriter &
stderrWriter()
{
    static SyncWriter *w = new SyncWriter(stderr);
    return *w;
}

// ---------------------------------------------------------------------------
// Tracer state
// ---------------------------------------------------------------------------

namespace {

/** All mutable tracer state behind one mutex. Event emission takes it
 *  once per retired span — instrumentation keeps spans coarse or
 *  sampled, so this is never a per-cycle lock. */
struct Tracer
{
    std::mutex mu;
    std::FILE *file = nullptr;
    std::unique_ptr<SyncWriter> writer;
    uint64_t epochNs = 0; ///< trace timestamps are relative to this
    bool firstEvent = true;

    static Tracer &get()
    {
        static Tracer *t = new Tracer();
        return *t;
    }
};

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
            continue;
        }
        out += c;
    }
    return out;
}

/** Microsecond timestamp with ns precision, as Chrome expects. */
std::string
fmtTsUs(uint64_t ns)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << double(ns) / 1000.0;
    return os.str();
}

/** Append one event object to the open trace, comma-separated. */
void
emit(const std::string &body)
{
    Tracer &t = Tracer::get();
    std::lock_guard<std::mutex> lock(t.mu);
    if (!t.file)
        return; // stopped while the caller held an active span
    std::string line = t.firstEvent ? "\n" : ",\n";
    t.firstEvent = false;
    line += body;
    std::fwrite(line.data(), 1, line.size(), t.file);
}

std::string
eventJson(const char *ph, const char *name, const char *cat,
          uint64_t tsNs, int64_t tid, const std::string &extra,
          const std::string &argsJson)
{
    std::string out = "{\"name\":\"";
    out += escapeJson(name);
    out += "\",\"cat\":\"";
    out += escapeJson(cat);
    out += "\",\"ph\":\"";
    out += ph;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"ts\":";
    out += fmtTsUs(tsNs);
    out += extra;
    if (!argsJson.empty()) {
        out += ",\"args\":{";
        out += argsJson;
        out += "}";
    }
    out += "}";
    return out;
}

} // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

bool
start(const std::string &path)
{
    Tracer &t = Tracer::get();
    std::lock_guard<std::mutex> lock(t.mu);
    if (t.file)
        return false;
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    t.file = f;
    t.writer = std::make_unique<SyncWriter>(f);
    t.epochNs = metrics::nowNs();
    t.firstEvent = true;
    const char *head = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    std::fwrite(head, 1, std::strlen(head), f);
    detail::g_enabled.store(true, std::memory_order_relaxed);
    metrics::setTimingEnabled(true);
    return true;
}

void
stop()
{
    Tracer &t = Tracer::get();
    // Disable first so new spans go inert, then give in-flight spans a
    // benign target: emit() rechecks t.file under the mutex.
    detail::g_enabled.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(t.mu);
    if (!t.file)
        return;
    const std::string tail =
        "\n],\"asim_metrics\":" +
        metrics::Registry::global().jsonExposition() + "}\n";
    std::fwrite(tail.data(), 1, tail.size(), t.file);
    std::fclose(t.file);
    t.file = nullptr;
    t.writer.reset();
}

uint32_t
currentTid()
{
    static std::atomic<uint32_t> next{0};
    thread_local const uint32_t tid =
        next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

void
setThreadName(const std::string &name)
{
    if (!enabled())
        return;
    std::string body = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                       "\"tid\":";
    body += std::to_string(currentTid());
    body += ",\"args\":{\"name\":\"";
    body += escapeJson(name);
    body += "\"}}";
    emit(body);
}

void
completeEvent(const char *name, const char *cat, uint64_t startNs,
              uint64_t durNs, const std::string &argsJson, int64_t tid)
{
    if (!enabled())
        return;
    Tracer &t = Tracer::get();
    const uint64_t rel = startNs >= t.epochNs ? startNs - t.epochNs : 0;
    emit(eventJson("X", name, cat, rel,
                   tid < 0 ? currentTid() : tid,
                   ",\"dur\":" + fmtTsUs(durNs), argsJson));
}

void
instantEvent(const char *name, const char *cat,
             const std::string &argsJson, int64_t tid)
{
    if (!enabled())
        return;
    Tracer &t = Tracer::get();
    emit(eventJson("i", name, cat, metrics::nowNs() - t.epochNs,
                   tid < 0 ? currentTid() : tid, ",\"s\":\"t\"",
                   argsJson));
}

void
counterEvent(const char *name, const char *series, double value)
{
    if (!enabled())
        return;
    Tracer &t = Tracer::get();
    std::ostringstream arg;
    arg.setf(std::ios::fixed);
    arg.precision(3);
    arg << "\"" << escapeJson(series) << "\":" << value;
    emit(eventJson("C", name, "metric", metrics::nowNs() - t.epochNs,
                   currentTid(), "", arg.str()));
}

std::string
jsonEscape(const std::string &s)
{
    return escapeJson(s);
}

uint64_t
Span::nowNsForSpan()
{
    return metrics::nowNs();
}

void
Span::finish()
{
    if (!name_)
        return;
    const char *name = name_;
    name_ = nullptr;
    completeEvent(name, cat_, start_, metrics::nowNs() - start_, args_);
}

} // namespace asim::tracing
