#include "support/thread_pool.hh"

#include "support/metrics.hh"

#include <algorithm>
#include <atomic>
#include <exception>

namespace asim {

namespace {

// Pool-wide observability (docs/OBSERVABILITY.md). Queue depth rides
// the post/dequeue mutex, so the gauge update is noise there; the
// task-latency histogram needs clock reads and is gated behind
// metrics::timingEnabled() at post() time.
metrics::Gauge &
queueDepthGauge()
{
    static metrics::Gauge &g = metrics::gauge("threadpool.queue_depth");
    return g;
}

metrics::Histogram &
taskLatencyHist()
{
    static metrics::Histogram &h = metrics::histogram(
        "threadpool.task_latency_ns",
        metrics::Histogram::exponentialBounds(1000, 2.0, 22));
    return h;
}

} // namespace

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(threads == 0 ? hardwareThreads() : threads)
{
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    if (metrics::timingEnabled()) {
        // Queue latency = enqueue -> first instruction of the task.
        const uint64_t enqueuedNs = metrics::nowNs();
        task = [enqueuedNs, inner = std::move(task)]() {
            taskLatencyHist().record(metrics::nowNs() - enqueuedNs);
            inner();
        };
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        queueDepthGauge().set(static_cast<int64_t>(queue_.size()));
    }
    wake_.notify_one();
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock,
               [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return shutdown_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // shutdown with nothing left to do
            task = std::move(queue_.front());
            queue_.pop_front();
            queueDepthGauge().set(static_cast<int64_t>(queue_.size()));
            ++active_;
        }
        try {
            task();
        } catch (...) {
            // post() offers no failure channel; parallelFor captures
            // exceptions itself before they reach this backstop.
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
        }
        idle_.notify_all();
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)> &fn)
{
    if (begin >= end)
        return;
    const size_t count = end - begin;

    if (threads_ <= 1 || count == 1) {
        // Inline, in index order — with the same every-index-settles,
        // lowest-index-error-wins semantics as the parallel path, so
        // behavior never depends on the thread count.
        std::exception_ptr first;
        for (size_t i = begin; i < end; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        if (first)
            std::rethrow_exception(first);
        return;
    }

    // One claim-next-index task per participant: work-stealing by
    // atomic counter keeps long and short indices balanced without
    // prescribing which thread runs which index. Each index is
    // claimed by exactly one participant, so each errors slot has a
    // single writer; drain() sequences the slots before the read
    // loop below.
    auto next = std::make_shared<std::atomic<size_t>>(begin);
    auto errors = std::make_shared<std::vector<std::exception_ptr>>(
        count, nullptr);

    auto chew = [next, errors, &fn, begin, end]() {
        for (;;) {
            size_t i = next->fetch_add(1);
            if (i >= end)
                return;
            try {
                fn(i);
            } catch (...) {
                (*errors)[i - begin] = std::current_exception();
            }
        }
    };

    const unsigned helpers =
        static_cast<unsigned>(std::min<size_t>(threads_, count) - 1);
    for (unsigned t = 0; t < helpers; ++t)
        post(chew);
    chew(); // the calling thread participates
    drain();

    for (const auto &e : *errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

} // namespace asim
