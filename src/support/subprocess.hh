/**
 * @file
 * Subprocess — a long-lived child process with bidirectional pipes.
 *
 * Built for request/response coprocesses (the native engine's
 * `simulator --serve` children, DESIGN.md §5): the parent writes a
 * command to the child's stdin and reads a framed reply off its
 * stdout. The child's stderr is redirected to a caller-supplied file
 * descriptor (never a pipe — an unread stderr pipe could fill and
 * deadlock the child), typically an unlinked spool file the caller
 * rewinds for diagnostics after a failure.
 *
 * I/O errors are reported by return value, not exception: a false
 * from writeAll()/readLine()/readExact() means the pipe is broken or
 * at EOF — the caller reaps the child with terminate() and raises
 * its own domain error. The first start() installs a process-wide
 * SIG_IGN for SIGPIPE so a write to a dead child fails with EPIPE
 * instead of killing the process.
 */

#ifndef ASIM_SUPPORT_SUBPROCESS_HH
#define ASIM_SUPPORT_SUBPROCESS_HH

#include <string>
#include <string_view>
#include <vector>

namespace asim {

/** See file comment. Movable, not copyable; the destructor kills and
 *  reaps any still-running child. */
class Subprocess
{
  public:
    Subprocess() = default;
    ~Subprocess();
    Subprocess(const Subprocess &) = delete;
    Subprocess &operator=(const Subprocess &) = delete;

    /**
     * Spawn `argv` (argv[0] is the binary path) with stdin/stdout
     * piped to this object. @param stderrFd fd dup2'ed onto the
     * child's stderr, or -1 to inherit the parent's.
     * @throws std::runtime_error when the spawn fails or a child is
     *         already running
     */
    void start(const std::vector<std::string> &argv, int stderrFd = -1);

    /** True while a child has been started and not yet reaped. (The
     *  child may have exited; that surfaces as read/write failure.) */
    bool running() const { return pid_ > 0; }

    /** Child process id, or -1 when not running. */
    long pid() const { return pid_; }

    /** Write all of `data` to the child's stdin. @return false on
     *  any write error (EPIPE when the child died). */
    bool writeAll(std::string_view data);

    /** Read one '\n'-terminated line (newline stripped) from the
     *  child's stdout. @return false on EOF/error */
    bool readLine(std::string &line);

    /** Read exactly `n` bytes from the child's stdout into `out`
     *  (resized). @return false on EOF/error */
    bool readExact(std::string &out, size_t n);

    /** Close the child's stdin (EOF to the child). Idempotent. */
    void closeStdin();

    /** Close pipes, SIGKILL the child if still alive, reap it.
     *  @return the raw wait status, or -1 when nothing ran */
    int terminate();

    /** Close stdin and wait for the child to exit on its own.
     *  @return the raw wait status, or -1 when nothing ran */
    int waitExit();

    /** Send SIGKILL without reaping (test hook for crash paths). */
    void kill();

  private:
    int reap(bool force);

    long pid_ = -1;
    int inFd_ = -1;    ///< write end of the child's stdin
    int outFd_ = -1;   ///< read end of the child's stdout
    std::string rbuf_; ///< readLine/readExact buffer
};

} // namespace asim

#endif // ASIM_SUPPORT_SUBPROCESS_HH
