/**
 * @file
 * Process-wide metrics registry: counters, gauges, and fixed-bucket
 * histograms (DESIGN.md §11, docs/OBSERVABILITY.md).
 *
 * Hot-path contract: Counter::add / Histogram::record are one relaxed
 * fetch_add on a cache-line-padded per-thread shard — no locks, no
 * allocation, no shared-line contention between threads. Registration
 * and snapshot/exposition are cold paths behind a mutex.
 *
 * Timing instrumentation (anything that needs a clock read per event —
 * task latency, per-lane phase timing, barrier waits) is additionally
 * gated behind metrics::timingEnabled(), a single relaxed atomic load,
 * so the fully-disabled build-in cost on engine hot paths is one
 * predictable branch. Plain event counters (requests served, sessions
 * opened, instances run) are always on: they sit on paths that already
 * pay a syscall or a mutex, where one shard add is noise.
 *
 * Metric values never feed back into simulation results: traces,
 * checkpoints, and batch/campaign JSON stay byte-identical whether
 * observability is off, on, or mid-scrape (enforced by
 * tests/sim/observability_determinism_test.cc).
 */

#ifndef ASIM_SUPPORT_METRICS_HH
#define ASIM_SUPPORT_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace asim::metrics {

/** Nanoseconds on the steady clock; the time base for every duration
 *  metric and for tracing.cc span timestamps. */
uint64_t nowNs();

/** True when timing instrumentation should run (set by --trace-out,
 *  by the serve daemon, or explicitly). One relaxed load. */
bool timingEnabled();

/** Flip timing instrumentation on or off process-wide. */
void setTimingEnabled(bool on);

namespace detail {

/** Shard count for per-thread accumulation. Threads hash onto shards
 *  by a monotonically assigned thread index, so up to kShards threads
 *  accumulate with zero sharing; beyond that shards are reused (still
 *  lock-free, occasionally contended). */
constexpr size_t kShards = 16;

/** Stable small index for the calling thread, used to pick a shard. */
size_t shardIndex();

struct alignas(64) PaddedU64
{
    std::atomic<uint64_t> v{0};
};

} // namespace detail

/** Monotonic event counter with sharded lock-free accumulation. */
class Counter
{
  public:
    void add(uint64_t n = 1) noexcept
    {
        shards_[detail::shardIndex()].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Sum of all shards (snapshot-consistent enough for exposition). */
    uint64_t value() const noexcept
    {
        uint64_t sum = 0;
        for (const auto &s : shards_)
            sum += s.v.load(std::memory_order_relaxed);
        return sum;
    }

  private:
    std::array<detail::PaddedU64, detail::kShards> shards_;
};

/** Signed instantaneous value plus a high-water mark. Single atomic:
 *  gauges track things like live sessions or queue depth, where the
 *  write rate is low and a shared line is fine. */
class Gauge
{
  public:
    void set(int64_t v) noexcept
    {
        value_.store(v, std::memory_order_relaxed);
        bumpPeak(v);
    }

    void add(int64_t delta) noexcept
    {
        const int64_t now =
            value_.fetch_add(delta, std::memory_order_relaxed) + delta;
        bumpPeak(now);
    }

    int64_t value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Highest value ever set/reached (never decreases). */
    int64_t peak() const noexcept
    {
        return peak_.load(std::memory_order_relaxed);
    }

  private:
    void bumpPeak(int64_t candidate) noexcept
    {
        int64_t cur = peak_.load(std::memory_order_relaxed);
        while (candidate > cur &&
               !peak_.compare_exchange_weak(cur, candidate,
                                            std::memory_order_relaxed))
        {}
    }

    std::atomic<int64_t> value_{0};
    std::atomic<int64_t> peak_{0};
};

/** Fixed-bucket histogram. Bucket i counts samples <= bounds[i]; one
 *  implicit overflow bucket counts the rest. Recording is a sharded
 *  relaxed fetch_add like Counter; bucket search is a short linear
 *  scan (bucket counts are small, typically <= 24). */
class Histogram
{
  public:
    /** Aggregated view merged across shards. */
    struct Snapshot
    {
        std::vector<uint64_t> bounds; ///< upper bounds, ascending
        std::vector<uint64_t> counts; ///< bounds.size() + 1 entries
        uint64_t count = 0;           ///< total samples
        uint64_t sum = 0;             ///< sum of sample values

        /** Approximate quantile (0..1) using bucket upper bounds. */
        uint64_t quantile(double q) const;
        double mean() const
        {
            return count ? double(sum) / double(count) : 0.0;
        }
    };

    explicit Histogram(std::vector<uint64_t> bounds);

    void record(uint64_t v) noexcept
    {
        Shard &s = shards_[detail::shardIndex()];
        size_t b = 0;
        while (b < bounds_.size() && v > bounds_[b])
            ++b;
        s.buckets[b].fetch_add(1, std::memory_order_relaxed);
        s.sum.fetch_add(v, std::memory_order_relaxed);
    }

    Snapshot snapshot() const;

    /** `count` exponentially spaced upper bounds starting at `first`,
     *  each `factor` x the previous — the standard latency ladder. */
    static std::vector<uint64_t> exponentialBounds(uint64_t first,
                                                   double factor,
                                                   size_t count);

  private:
    struct Shard
    {
        std::vector<std::atomic<uint64_t>> buckets;
        std::atomic<uint64_t> sum{0};
    };

    std::vector<uint64_t> bounds_;
    std::array<Shard, detail::kShards> shards_;
};

/** Everything the registry knows, merged and ready to render. */
struct RegistrySnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, std::pair<int64_t, int64_t>> gauges; // value, peak
    std::map<std::string, Histogram::Snapshot> histograms;
};

/**
 * Process-wide name -> metric table. Lookup-or-create takes a mutex
 * (cold; call sites cache the returned reference), accumulation never
 * does. Returned references stay valid for the process lifetime.
 */
class Registry
{
  public:
    static Registry &global();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** Bounds are fixed at first registration; later calls with the
     *  same name return the existing histogram regardless of bounds. */
    Histogram &histogram(const std::string &name,
                         std::vector<uint64_t> bounds);

    RegistrySnapshot snapshot() const;

    /** One `name value` line per metric (histograms render count/sum/
     *  mean/p50/p95/p99), sorted by name. */
    std::string textExposition() const;

    /** JSON object {counters:{}, gauges:{}, histograms:{}} with full
     *  bucket arrays — the payload of the serve METRICS opcode and the
     *  `asim_metrics` block of --trace-out files. */
    std::string jsonExposition() const;

    /** Drop every registered metric. Tests only: references returned
     *  earlier dangle after this. */
    void resetForTest();

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** Shorthands against the global registry. */
inline Counter &
counter(const std::string &name)
{
    return Registry::global().counter(name);
}

inline Gauge &
gauge(const std::string &name)
{
    return Registry::global().gauge(name);
}

inline Histogram &
histogram(const std::string &name, std::vector<uint64_t> bounds)
{
    return Registry::global().histogram(name, std::move(bounds));
}

/** RAII duration sample: records now - start into a histogram when
 *  destroyed, if timing was enabled at construction. */
class ScopedTimerNs
{
  public:
    explicit ScopedTimerNs(Histogram &h)
        : hist_(timingEnabled() ? &h : nullptr),
          start_(hist_ ? nowNs() : 0)
    {}

    ~ScopedTimerNs()
    {
        if (hist_)
            hist_->record(nowNs() - start_);
    }

    ScopedTimerNs(const ScopedTimerNs &) = delete;
    ScopedTimerNs &operator=(const ScopedTimerNs &) = delete;

  private:
    Histogram *hist_;
    uint64_t start_;
};

} // namespace asim::metrics

#endif // ASIM_SUPPORT_METRICS_HH
