/**
 * @file
 * `asim-run` — run an ASIM II specification through the Simulation
 * facade.
 *
 * Usage: asim-run [options] <spec-file>
 *   --engine=NAME        execution engine (default vm; see
 *                        --list-engines for the registry)
 *   --cycles=N           override the spec's `=` cycle count
 *   --io=MODE            interactive (default), null, or
 *                        script:<file> — scripted integer inputs,
 *                        thesis-format outputs on stdout
 *   --stats              print access statistics after the run
 *   --no-trace           suppress the per-cycle trace
 *   --fixed-shl          use repaired shift-left semantics
 *   --list-engines       list registered engines and exit
 *
 * Batch mode (bulk-parallel execution through sim/batch.hh):
 *   --batch=N            run N independent instances of the spec off
 *                        one shared resolve
 *   --batch-manifest=F   run the jobs listed in manifest F (one
 *                        `spec [cycles=..] [io=..] [engine=..]
 *                        [count=..] [watch=comp:val]` per line)
 *   --threads=M          worker threads (default: all hardware
 *                        threads)
 *   --json=F             also write the batch report as JSON to F
 *                        (`-` for stdout)
 * Batch runs print a per-instance summary table instead of a trace
 * and exit 2 when any instance faulted.
 *
 * Mirrors the thesis' interactive behavior: when no cycle count is
 * available it asks "Number of cycles to trace", and after the run it
 * offers "Continue to cycle (0 to quit)". Scripted runs are fully
 * non-interactive.
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>

#include "sim/batch.hh"
#include "sim/simulation.hh"

namespace {

void
usage()
{
    std::cerr << "usage: asim-run [--engine=NAME] [--cycles=N]\n"
              << "                [--io=interactive|null|script:"
                 "<file>]\n"
              << "                [--stats] [--no-trace] "
                 "[--fixed-shl]\n"
              << "                [--batch=N | "
                 "--batch-manifest=<file>]\n"
              << "                [--threads=M] [--json=<file>]\n"
              << "                [--list-engines] <spec-file>\n";
}

/** Assemble and run a batch; returns the process exit code. */
int
runBatch(const asim::SimulationOptions &opts, const std::string &file,
         int64_t batchCount, const std::string &manifest,
         unsigned threads, int64_t cycles, bool stats,
         const std::string &jsonPath)
{
    using namespace asim;

    BatchOptions bopts;
    bopts.threads = threads;
    bopts.captureState = false; // report channels only
    BatchRunner runner(bopts);

    if (!manifest.empty()) {
        SimulationOptions defaults = opts;
        defaults.specFile.clear();
        runner.loadManifest(
            manifest, defaults,
            cycles > 0 ? static_cast<uint64_t>(cycles) : 0);
    } else {
        BatchJob job;
        job.options = opts;
        job.options.specFile = file;
        if (cycles > 0)
            job.cycles = static_cast<uint64_t>(cycles);
        runner.addBatch(job, static_cast<size_t>(batchCount));
    }

    BatchResult result = runner.run();
    std::cout << result.summaryTable();
    if (stats)
        std::cerr << result.aggregate.summary();
    if (!jsonPath.empty()) {
        if (jsonPath == "-") {
            std::cout << result.json();
        } else {
            std::ofstream out(jsonPath);
            if (!out) {
                std::cerr << "cannot write " << jsonPath << "\n";
                return 1;
            }
            out << result.json();
        }
    }
    return result.allOk() ? 0 : 2;
}

void
listEngines()
{
    for (const auto &[name, description] :
         asim::EngineRegistry::global().list()) {
        std::cout << name << "\t" << description << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace asim;

    std::string file;
    SimulationOptions opts;
    opts.ioMode = IoMode::Interactive;
    int64_t cycles = -1;
    bool stats = false;
    bool trace = true;
    bool interactive = true;
    bool ioFlagSeen = false;
    int64_t batchCount = 0;
    std::string manifest;
    unsigned threads = 0;
    std::string jsonPath;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--engine=", 0) == 0) {
            opts.engine = arg.substr(9);
        } else if (arg.rfind("--cycles=", 0) == 0) {
            cycles = std::atoll(arg.c_str() + 9);
        } else if (arg.rfind("--batch=", 0) == 0) {
            batchCount = std::atoll(arg.c_str() + 8);
            if (batchCount <= 0) {
                std::cerr << "--batch wants a positive count\n";
                return 1;
            }
        } else if (arg.rfind("--batch-manifest=", 0) == 0) {
            manifest = arg.substr(17);
        } else if (arg.rfind("--threads=", 0) == 0) {
            long long t = std::atoll(arg.c_str() + 10);
            if (t <= 0) {
                std::cerr << "--threads wants a positive count\n";
                return 1;
            }
            threads = static_cast<unsigned>(t);
        } else if (arg.rfind("--json=", 0) == 0) {
            jsonPath = arg.substr(7);
        } else if (arg == "--io=interactive") {
            opts.ioMode = IoMode::Interactive;
            interactive = true;
            ioFlagSeen = true;
        } else if (arg == "--io=null") {
            opts.ioMode = IoMode::Null;
            interactive = false;
            ioFlagSeen = true;
        } else if (arg.rfind("--io=script:", 0) == 0) {
            opts.ioMode = IoMode::Script;
            interactive = false;
            ioFlagSeen = true;
            try {
                opts.scriptInputs =
                    Simulation::loadScript(arg.substr(12));
            } catch (const SimError &e) {
                std::cerr << e.what() << "\n";
                return 1;
            }
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--no-trace") {
            trace = false;
        } else if (arg == "--fixed-shl") {
            opts.config.aluSemantics = AluSemantics::Fixed;
        } else if (arg == "--list-engines") {
            listEngines();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 1;
        } else {
            file = arg;
        }
    }
    if (file.empty() && manifest.empty()) {
        usage();
        return 1;
    }

    if (batchCount > 0 || !manifest.empty()) {
        if (batchCount > 0 && !manifest.empty()) {
            std::cerr << "--batch and --batch-manifest are mutually "
                         "exclusive\n";
            return 1;
        }
        if (manifest.empty() && file.empty()) {
            usage();
            return 1;
        }
        // Batch instances run concurrently; without an explicit
        // --io choice they run with null I/O, never interactive.
        if (!ioFlagSeen)
            opts.ioMode = IoMode::Null;
        try {
            return runBatch(opts, file, std::max<int64_t>(batchCount, 1),
                            manifest, threads, cycles, stats,
                            jsonPath);
        } catch (const SpecError &e) {
            std::cerr << e.what() << "\n";
            return 1;
        } catch (const SimError &e) {
            std::cerr << e.what() << "\n";
            return 1;
        }
    }

    try {
        opts.specFile = file;
        opts.traceStream = trace ? &std::cout : nullptr;
        Simulation sim(opts);
        for (const auto &w : sim.diagnostics().warnings())
            std::cerr << w << "\n";
        std::cerr << sim.resolved().spec.comps.size()
                  << " components read.\n";

        int64_t todo = cycles;
        if (todo < 0)
            todo = sim.defaultCycles();
        if (todo < 0) {
            if (!interactive) {
                std::cerr << "spec names no cycle count; pass "
                             "--cycles=N\n";
                return 1;
            }
            std::cout << "Number of cycles to trace\n";
            std::cin >> todo;
            ++todo; // thesis loop is inclusive
        }

        while (todo > 0) {
            sim.run(static_cast<uint64_t>(todo));
            // Explicit --cycles or a scripted/null run: no
            // interactive continue.
            if (cycles >= 0 || !interactive)
                break;
            std::cout << "Continue to cycle (0 to quit)\n";
            int64_t target = 0;
            if (!(std::cin >> target) || target <= 0)
                break;
            todo = target - static_cast<int64_t>(sim.cycle()) + 1;
        }

        if (stats)
            std::cerr << sim.stats().summary();
        return 0;
    } catch (const SpecError &e) {
        std::cerr << e.what() << "\n";
        std::cerr << "Error in program (no code generated).\n";
        return 1;
    } catch (const SimError &e) {
        std::cerr << "runtime error: " << e.what() << "\n";
        return 2;
    }
}
