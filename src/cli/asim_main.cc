/**
 * @file
 * `asim-run` — run an ASIM II specification through the Simulation
 * facade.
 *
 * Usage: asim-run [options] <spec-file>
 *   --engine=NAME        execution engine (default vm; see
 *                        --list-engines for the registry)
 *   --partitions=N       split one design's cycle across N worker
 *                        lanes (requires --engine=interp; results
 *                        are byte-identical to serial; small specs
 *                        stay serial — see sim/partition.hh)
 *   --synthetic=PRESET   simulate a generated scaling spec instead
 *                        of a file: 1k, 10k, 100k, 1m, or a plain
 *                        combinational component count
 *   --cycles=N           override the spec's `=` cycle count
 *   --io=MODE            interactive (default), null, or
 *                        script:<file> — scripted integer inputs,
 *                        thesis-format outputs on stdout
 *   --stats              print access statistics after the run
 *   --no-trace           suppress the per-cycle trace
 *   --fixed-shl          use repaired shift-left semantics
 *   --list-engines       list registered engines and exit
 *   --dump-bytecode      compile the spec for the vm engine, print
 *                        the dispatch mode, the canonical bytecode,
 *                        and the fused cycle stream with its
 *                        optimization summary, then exit
 *
 * Fault injection (analysis/fault.hh, analysis/campaign.hh):
 *   --inject=FAULT       perturb the run: FAULT is
 *                        component[cell]:bit:mode[@cycle] — without
 *                        @cycle a permanent stuck-at splice, with
 *                        @cycle a transient state upset at that
 *                        cycle boundary; mode is a registered
 *                        injector (set0, set1, toggle). Works for
 *                        single runs and --batch fleets alike
 *   --campaign=N         run a Monte-Carlo fault campaign of N
 *                        seeded injections: one golden run +
 *                        checkpoint, N perturbed restores in
 *                        parallel, outcomes classified
 *                        masked/sdc/fault/hang per component
 *                        (--cycles sets the horizon; --json for the
 *                        byte-reproducible report)
 *   --seed=S             campaign sampling seed (default 1)
 *   --golden-cycle=N     campaign golden-checkpoint cycle
 *                        (default horizon/2)
 *   --injector=MODE      campaign fault policy (default toggle)
 *   --campaign-watch=C:V campaign completion watchpoint: instances
 *                        that never reach component C == V hang
 *   --hang-budget=N      extra cycles past the horizon before a
 *                        watchpoint instance counts as hung
 *                        (default: one extra horizon)
 *   --campaign-splice    sample permanent stuck-at splices (re-run
 *                        from cycle zero) instead of transient
 *                        state upsets
 *   --list-injectors     list registered fault injectors and exit
 *
 * Checkpoints (sim/checkpoint.hh — portable across all engines):
 *   --save-state=F       write a checkpoint to F when the run ends
 *   --restore-from=F     restore the checkpoint F before running
 *                        (--cycles then counts cycles to execute
 *                        *this* run, on top of the restored cycle)
 *   --checkpoint-every=N additionally checkpoint to the --save-state
 *                        file every N cycles mid-run (with
 *                        --checkpoint-dir in batch mode: per-
 *                        instance periodic checkpoints)
 *
 * Batch mode (bulk-parallel execution through sim/batch.hh):
 *   --batch=N            run N independent instances of the spec off
 *                        one shared resolve
 *   --batch-manifest=F   run the jobs listed in manifest F (one
 *                        `spec [cycles=..] [io=..] [engine=..]
 *                        [count=..] [partitions=..]
 *                        [watch=comp:val]` per line)
 *   --threads=M          worker threads (default: all hardware
 *                        threads)
 *   --json=F             also write the batch report as JSON to F
 *                        (`-` for stdout)
 *   --checkpoint-dir=D   leave per-instance checkpoints in D; when D
 *                        already holds artifacts of an earlier run
 *                        of the same batch, finished instances are
 *                        skipped and interrupted ones resume
 * Batch runs print a per-instance summary table instead of a trace
 * and exit 2 when any instance faulted.
 *
 * Remote mode (drive an asim-serve daemon; DESIGN.md §9):
 *   --connect=ENDPOINT   run against the daemon at ENDPOINT
 *                        (unix:<path>, tcp:<host>:<port>, or a bare
 *                        socket path) instead of in process; the
 *                        session's output/trace prints to stdout
 *   --session=NAME       session name (default: the spec's basename)
 *                        — reconnecting to a live or parked session
 *                        continues it where it left off
 *   --evict              park the session to disk after the run
 *   --close-session      delete the session after the run
 *   --server-stats       print the daemon's STATS JSON and exit
 *   --server-metrics     print the daemon's METRICS JSON (protocol
 *                        v3 metrics-registry exposition) and exit
 *   --shutdown-server    ask the daemon to shut down cleanly
 *
 * Observability (docs/OBSERVABILITY.md):
 *   --trace-out=F        write a Chrome trace_event / Perfetto JSON
 *                        trace of this invocation to F (spans for
 *                        parse/compile/run, per-lane partition
 *                        phases, batch instances, campaign stages)
 *                        with the final metrics registry embedded
 *                        as the `asim_metrics` key. Simulation
 *                        outputs are byte-identical with or without
 *                        tracing.
 * --save-state/--restore-from work remotely too: the daemon's
 * SNAPSHOT blob *is* a checkpoint file.
 *
 * Mirrors the thesis' interactive behavior: when no cycle count is
 * available it asks "Number of cycles to trace", and after the run it
 * offers "Continue to cycle (0 to quit)". Scripted runs are fully
 * non-interactive.
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/campaign.hh"
#include "machines/synthetic.hh"
#include "serve/client.hh"
#include "sim/batch.hh"
#include "support/serialize.hh"
#include "sim/compiler.hh"
#include "sim/partition.hh"
#include "sim/simulation.hh"
#include "sim/vm.hh"
#include "support/tracing.hh"

namespace {

/** Finalize an open --trace-out file on every exit path (stop() is a
 *  no-op when tracing never started). */
struct TraceGuard
{
    ~TraceGuard() { asim::tracing::stop(); }
};

void
usage()
{
    std::cerr << "usage: asim-run [--engine=NAME] [--partitions=N]\n"
              << "                [--synthetic=PRESET] [--cycles=N]\n"
              << "                [--io=interactive|null|script:"
                 "<file>]\n"
              << "                [--stats] [--no-trace] "
                 "[--fixed-shl]\n"
              << "                [--inject=comp[cell]:bit:mode"
                 "[@cycle]]\n"
              << "                [--campaign=N] [--seed=S] "
                 "[--golden-cycle=N]\n"
              << "                [--injector=MODE] "
                 "[--campaign-watch=comp:val]\n"
              << "                [--hang-budget=N] "
                 "[--campaign-splice]\n"
              << "                [--save-state=<file>] "
                 "[--restore-from=<file>]\n"
              << "                [--checkpoint-every=N] "
                 "[--checkpoint-dir=<dir>]\n"
              << "                [--batch=N | "
                 "--batch-manifest=<file>]\n"
              << "                [--threads=M] [--json=<file>]\n"
              << "                [--connect=<endpoint>] "
                 "[--session=NAME]\n"
              << "                [--evict] [--close-session]\n"
              << "                [--server-stats] "
                 "[--server-metrics] [--shutdown-server]\n"
              << "                [--trace-out=<file>]\n"
              << "                [--list-engines] "
                 "[--list-injectors] [--dump-bytecode]\n"
              << "                <spec-file>\n";
}

/** Assemble and run a batch; returns the process exit code. */
int
runBatch(const asim::SimulationOptions &opts, const std::string &file,
         int64_t batchCount, const std::string &manifest,
         unsigned threads, int64_t cycles, bool stats,
         const std::string &jsonPath,
         const std::string &checkpointDir, uint64_t checkpointEvery)
{
    using namespace asim;

    BatchOptions bopts;
    bopts.threads = threads;
    bopts.captureState = false; // report channels only
    bopts.checkpointDir = checkpointDir;
    bopts.checkpointEvery = checkpointEvery;
    BatchRunner runner(bopts);

    if (!manifest.empty()) {
        SimulationOptions defaults = opts;
        defaults.specFile.clear();
        runner.loadManifest(
            manifest, defaults,
            cycles > 0 ? static_cast<uint64_t>(cycles) : 0);
    } else {
        BatchJob job;
        job.options = opts;
        job.options.specFile = file;
        if (cycles > 0)
            job.cycles = static_cast<uint64_t>(cycles);
        runner.addBatch(job, static_cast<size_t>(batchCount));
    }

    if (!checkpointDir.empty()) {
        size_t resumed = runner.resumeFromCheckpoints();
        if (resumed > 0) {
            std::cerr << "resuming " << resumed << " of "
                      << runner.jobCount() << " instances from "
                      << checkpointDir << "\n";
        }
    }

    BatchResult result = runner.run();
    std::cout << result.summaryTable();
    if (stats)
        std::cerr << result.aggregate.summary();
    if (!jsonPath.empty()) {
        if (jsonPath == "-") {
            std::cout << result.json();
        } else {
            std::ofstream out(jsonPath);
            if (!out) {
                std::cerr << "cannot write " << jsonPath << "\n";
                return 1;
            }
            out << result.json();
        }
    }
    return result.allOk() ? 0 : 2;
}

void
listEngines()
{
    for (const auto &[name, description] :
         asim::EngineRegistry::global().list()) {
        std::cout << name << "\t" << description << "\n";
    }
}

/** Campaign flags gathered from the command line. */
struct CampaignCliOptions
{
    int64_t runs = 0; ///< 0 = no campaign requested
    uint64_t seed = 1;
    uint64_t goldenCycle = 0;
    std::string injector = "toggle";
    bool splice = false;
    std::string watchName;
    int32_t watchValue = 0;
    uint64_t hangBudget = 0;
};

/** Run a fault campaign; returns the process exit code. */
int
runCampaign(const asim::SimulationOptions &opts,
            const std::string &file, const CampaignCliOptions &cli,
            unsigned threads, int64_t cycles, bool stats,
            const std::string &jsonPath)
{
    using namespace asim;

    CampaignOptions co;
    co.base = opts;
    if (!file.empty())
        co.base.specFile = file;
    co.runs = static_cast<uint64_t>(cli.runs);
    co.seed = cli.seed;
    co.goldenCycle = cli.goldenCycle;
    if (cycles > 0)
        co.horizon = static_cast<uint64_t>(cycles);
    co.injector = cli.injector;
    co.splice = cli.splice;
    co.watchName = cli.watchName;
    co.watchValue = cli.watchValue;
    co.hangBudget = cli.hangBudget;
    co.threads = threads;

    CampaignRunner runner(std::move(co));
    CampaignResult result = runner.run();
    std::cout << result.table();
    if (stats) {
        std::cerr << result.total.injections << " injections: "
                  << result.total.masked << " masked, "
                  << result.total.sdc << " sdc, "
                  << result.total.fault << " fault, "
                  << result.total.hang << " hang\n";
    }
    if (!jsonPath.empty()) {
        if (jsonPath == "-") {
            std::cout << result.json();
        } else {
            std::ofstream out(jsonPath);
            if (!out) {
                std::cerr << "cannot write " << jsonPath << "\n";
                return 1;
            }
            out << result.json();
        }
    }
    return 0;
}

/** Everything the remote (--connect) mode needs beyond `opts`. */
struct RemoteOptions
{
    std::string endpoint;
    std::string session;
    bool serverStats = false;
    bool serverMetrics = false;
    bool shutdownServer = false;
    bool evictAfter = false;
    bool closeAfter = false;
};

/** A --session default the daemon will accept, derived from the
 *  spec filename ("specs/counter.asim" -> "counter"). */
std::string
defaultSessionName(const std::string &file)
{
    std::string base = file;
    auto slash = base.find_last_of('/');
    if (slash != std::string::npos)
        base = base.substr(slash + 1);
    auto dot = base.rfind('.');
    if (dot != std::string::npos && dot > 0)
        base = base.substr(0, dot);
    std::string name;
    for (char c : base) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        name.push_back(ok ? c : '_');
    }
    if (name.empty() || name.size() > 64)
        name = "cli";
    return name;
}

/** Drive an asim-serve daemon instead of simulating in process. */
int
runRemote(const RemoteOptions &remote,
          const asim::SimulationOptions &opts, const std::string &file,
          int64_t cycles, bool trace, bool stats,
          const std::string &saveState, const std::string &restoreFrom)
{
    using namespace asim;

    serve::ServeClient client(remote.endpoint);

    // Admin-only invocations need no spec at all.
    if ((file.empty() && opts.specText.empty()) ||
        remote.serverStats || remote.serverMetrics) {
        if (remote.serverStats)
            std::cout << client.statsJson() << "\n";
        if (remote.serverMetrics)
            std::cout << client.metricsJson() << "\n";
        if (remote.shutdownServer)
            client.shutdownServer();
        if (!remote.serverStats && !remote.serverMetrics &&
            !remote.shutdownServer) {
            std::cerr << "--connect without a spec file needs "
                         "--server-stats, --server-metrics, or "
                         "--shutdown-server\n";
            return 1;
        }
        return 0;
    }

    std::string specText = opts.specText;
    if (!file.empty()) {
        std::ifstream in(file);
        if (!in) {
            std::cerr << "cannot read " << file << "\n";
            return 1;
        }
        specText.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    }

    serve::ServeClient::OpenOptions open;
    open.name = remote.session.empty()
                    ? (file.empty() ? "synthetic"
                                    : defaultSessionName(file))
                    : remote.session;
    open.specText = specText;
    open.engine = opts.engine;
    open.io = opts.ioMode == IoMode::Script
                  ? serve::SessionIo::Script
                  : serve::SessionIo::Null;
    open.inputs = opts.scriptInputs;
    open.trace = trace;
    open.aluFixed = opts.config.aluSemantics == AluSemantics::Fixed;
    open.partitions = opts.partitions;

    auto session = client.open(open);
    std::cerr << "session \"" << open.name << "\" (id " << session.id
              << ") on " << remote.endpoint << " at cycle "
              << session.cycle
              << (session.resumed ? " (resumed from checkpoint)" : "")
              << "\n";

    if (!restoreFrom.empty()) {
        std::ifstream ckpt(restoreFrom, std::ios::binary);
        if (!ckpt) {
            std::cerr << "cannot read " << restoreFrom << "\n";
            return 1;
        }
        std::string blob{std::istreambuf_iterator<char>(ckpt),
                         std::istreambuf_iterator<char>()};
        uint64_t cycle = client.restore(session.id, blob);
        std::cerr << "restored " << restoreFrom << " at cycle "
                  << cycle << "\n";
    }

    int64_t todo = cycles >= 0 ? cycles : session.defaultCycles;
    if (todo < 0) {
        std::cerr << "spec names no cycle count; pass --cycles=N\n";
        return 1;
    }
    auto run = client.run(session.id, static_cast<uint64_t>(todo));
    std::cout << run.output;
    std::cerr << "ran to cycle " << run.cycle << "\n";

    if (!saveState.empty()) {
        std::string blob = client.snapshot(session.id);
        writeFileAtomic(saveState, blob);
        std::cerr << "saved checkpoint " << saveState << " at cycle "
                  << run.cycle << "\n";
    }
    if (stats)
        std::cerr << client.statsJson() << "\n";
    if (remote.closeAfter)
        client.closeSession(session.id);
    else if (remote.evictAfter)
        client.evict(session.id);
    if (remote.shutdownServer)
        client.shutdownServer();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace asim;

    std::string file;
    SimulationOptions opts;
    opts.ioMode = IoMode::Interactive;
    int64_t cycles = -1;
    bool stats = false;
    bool trace = true;
    bool interactive = true;
    bool ioFlagSeen = false;
    int64_t batchCount = 0;
    std::string manifest;
    unsigned threads = 0;
    std::string jsonPath;
    std::string saveState;
    std::string restoreFrom;
    std::string checkpointDir;
    uint64_t checkpointEvery = 0;
    bool dumpBytecode = false;
    std::string synthetic;
    std::string traceOut;
    RemoteOptions remote;
    CampaignCliOptions campaign;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--engine=", 0) == 0) {
            opts.engine = arg.substr(9);
        } else if (arg.rfind("--partitions=", 0) == 0) {
            long long p = std::atoll(arg.c_str() + 13);
            if (p <= 0) {
                std::cerr << "--partitions wants a positive count\n";
                return 1;
            }
            opts.partitions = static_cast<unsigned>(p);
        } else if (arg.rfind("--synthetic=", 0) == 0) {
            synthetic = arg.substr(12);
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            traceOut = arg.substr(12);
        } else if (arg.rfind("--cycles=", 0) == 0) {
            cycles = std::atoll(arg.c_str() + 9);
        } else if (arg.rfind("--batch=", 0) == 0) {
            batchCount = std::atoll(arg.c_str() + 8);
            if (batchCount <= 0) {
                std::cerr << "--batch wants a positive count\n";
                return 1;
            }
        } else if (arg.rfind("--batch-manifest=", 0) == 0) {
            manifest = arg.substr(17);
        } else if (arg.rfind("--threads=", 0) == 0) {
            long long t = std::atoll(arg.c_str() + 10);
            if (t <= 0) {
                std::cerr << "--threads wants a positive count\n";
                return 1;
            }
            threads = static_cast<unsigned>(t);
        } else if (arg.rfind("--json=", 0) == 0) {
            jsonPath = arg.substr(7);
        } else if (arg.rfind("--save-state=", 0) == 0) {
            saveState = arg.substr(13);
        } else if (arg.rfind("--restore-from=", 0) == 0) {
            restoreFrom = arg.substr(15);
        } else if (arg.rfind("--checkpoint-dir=", 0) == 0) {
            checkpointDir = arg.substr(17);
        } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
            long long n = std::atoll(arg.c_str() + 19);
            if (n <= 0) {
                std::cerr
                    << "--checkpoint-every wants a positive count\n";
                return 1;
            }
            checkpointEvery = static_cast<uint64_t>(n);
        } else if (arg == "--io=interactive") {
            opts.ioMode = IoMode::Interactive;
            interactive = true;
            ioFlagSeen = true;
        } else if (arg == "--io=null") {
            opts.ioMode = IoMode::Null;
            interactive = false;
            ioFlagSeen = true;
        } else if (arg.rfind("--io=script:", 0) == 0) {
            opts.ioMode = IoMode::Script;
            interactive = false;
            ioFlagSeen = true;
            try {
                opts.scriptInputs =
                    Simulation::loadScript(arg.substr(12));
            } catch (const SimError &e) {
                std::cerr << e.what() << "\n";
                return 1;
            }
        } else if (arg.rfind("--inject=", 0) == 0) {
            opts.fault = arg.substr(9);
        } else if (arg.rfind("--campaign=", 0) == 0) {
            campaign.runs = std::atoll(arg.c_str() + 11);
            if (campaign.runs <= 0) {
                std::cerr << "--campaign wants a positive count\n";
                return 1;
            }
        } else if (arg.rfind("--seed=", 0) == 0) {
            campaign.seed = std::strtoull(arg.c_str() + 7, nullptr, 0);
        } else if (arg.rfind("--golden-cycle=", 0) == 0) {
            campaign.goldenCycle =
                std::strtoull(arg.c_str() + 15, nullptr, 10);
        } else if (arg.rfind("--injector=", 0) == 0) {
            campaign.injector = arg.substr(11);
        } else if (arg.rfind("--campaign-watch=", 0) == 0) {
            std::string watch = arg.substr(17);
            auto colon = watch.rfind(':');
            if (colon == std::string::npos || colon == 0) {
                std::cerr << "--campaign-watch wants "
                             "component:value\n";
                return 1;
            }
            campaign.watchName = watch.substr(0, colon);
            campaign.watchValue = static_cast<int32_t>(
                std::strtol(watch.c_str() + colon + 1, nullptr, 0));
        } else if (arg.rfind("--hang-budget=", 0) == 0) {
            campaign.hangBudget =
                std::strtoull(arg.c_str() + 14, nullptr, 10);
        } else if (arg == "--campaign-splice") {
            campaign.splice = true;
        } else if (arg == "--list-injectors") {
            for (const std::string &name :
                 FaultInjectorRegistry::global().list()) {
                std::cout << name << "\n";
            }
            return 0;
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--no-trace") {
            trace = false;
        } else if (arg == "--fixed-shl") {
            opts.config.aluSemantics = AluSemantics::Fixed;
        } else if (arg.rfind("--connect=", 0) == 0) {
            remote.endpoint = arg.substr(10);
        } else if (arg.rfind("--session=", 0) == 0) {
            remote.session = arg.substr(10);
        } else if (arg == "--server-stats") {
            remote.serverStats = true;
        } else if (arg == "--server-metrics") {
            remote.serverMetrics = true;
        } else if (arg == "--shutdown-server") {
            remote.shutdownServer = true;
        } else if (arg == "--evict") {
            remote.evictAfter = true;
        } else if (arg == "--close-session") {
            remote.closeAfter = true;
        } else if (arg == "--list-engines") {
            listEngines();
            return 0;
        } else if (arg == "--dump-bytecode") {
            dumpBytecode = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 1;
        } else {
            file = arg;
        }
    }
    TraceGuard traceGuard;
    if (!traceOut.empty() && !tracing::start(traceOut)) {
        std::cerr << "cannot write trace file " << traceOut << "\n";
        return 1;
    }
    if (!synthetic.empty()) {
        if (!file.empty()) {
            std::cerr << "--synthetic and a spec file are mutually "
                         "exclusive\n";
            return 1;
        }
        try {
            opts.specText =
                generateSyntheticText(syntheticPreset(synthetic));
        } catch (const SpecError &e) {
            std::cerr << e.what() << "\n";
            return 1;
        }
        // Corpus specs are I/O-free and name their own cycle count;
        // never prompt interactively.
        if (!ioFlagSeen)
            opts.ioMode = IoMode::Null;
        interactive = false;
    }
    if (!remote.endpoint.empty()) {
        // Remote mode: the daemon simulates; this process is a
        // protocol client. Interactive I/O cannot cross the wire.
        if (!opts.fault.empty() || campaign.runs > 0) {
            std::cerr << "--inject/--campaign run in process; they "
                         "are not supported with --connect\n";
            return 1;
        }
        try {
            return runRemote(remote, opts, file, cycles, trace, stats,
                             saveState, restoreFrom);
        } catch (const SimError &e) {
            std::cerr << e.what() << "\n";
            return 2;
        }
    }
    if (remote.serverStats || remote.shutdownServer ||
        remote.evictAfter || remote.closeAfter ||
        !remote.session.empty()) {
        std::cerr << "--session/--server-stats/--shutdown-server/"
                     "--evict/--close-session need --connect\n";
        return 1;
    }

    if (file.empty() && manifest.empty() && synthetic.empty()) {
        usage();
        return 1;
    }

    if (dumpBytecode) {
        // Compile-only path: show what the vm engine will execute.
        if (!file.empty())
            opts.specFile = file;
        try {
            ResolvedSpec rs = Simulation::loadSpec(opts);
            Program prog =
                compileProgram(rs, opts.compiler, trace);
            std::cout << "dispatch: " << vmDispatchMode() << "\n"
                      << prog.disassemble();
        } catch (const SpecError &e) {
            std::cerr << e.what() << "\n";
            return 1;
        } catch (const SimError &e) {
            std::cerr << e.what() << "\n";
            return 1;
        }
        return 0;
    }

    if (campaign.runs > 0) {
        if (batchCount > 0 || !manifest.empty()) {
            std::cerr << "--campaign and --batch/--batch-manifest "
                         "are mutually exclusive\n";
            return 1;
        }
        if (!opts.fault.empty()) {
            std::cerr << "--campaign samples its own faults; it is "
                         "mutually exclusive with --inject\n";
            return 1;
        }
        if (!saveState.empty() || !restoreFrom.empty() ||
            !checkpointDir.empty()) {
            std::cerr << "--campaign manages its own golden "
                         "checkpoint; drop --save-state/"
                         "--restore-from/--checkpoint-dir\n";
            return 1;
        }
        // Campaign instances run concurrently; without an explicit
        // --io choice they run with null I/O, never interactive.
        if (!ioFlagSeen)
            opts.ioMode = IoMode::Null;
        try {
            return runCampaign(opts, file, campaign, threads, cycles,
                               stats, jsonPath);
        } catch (const SpecError &e) {
            std::cerr << e.what() << "\n";
            return 1;
        } catch (const SimError &e) {
            std::cerr << e.what() << "\n";
            return 1;
        }
    }

    if (batchCount > 0 || !manifest.empty()) {
        if (batchCount > 0 && !manifest.empty()) {
            std::cerr << "--batch and --batch-manifest are mutually "
                         "exclusive\n";
            return 1;
        }
        if (manifest.empty() && file.empty() && synthetic.empty()) {
            usage();
            return 1;
        }
        if (!saveState.empty() || !restoreFrom.empty()) {
            std::cerr << "--save-state/--restore-from are single-run "
                         "flags; batches use --checkpoint-dir\n";
            return 1;
        }
        // Batch instances run concurrently; without an explicit
        // --io choice they run with null I/O, never interactive.
        if (!ioFlagSeen)
            opts.ioMode = IoMode::Null;
        try {
            return runBatch(opts, file, std::max<int64_t>(batchCount, 1),
                            manifest, threads, cycles, stats,
                            jsonPath, checkpointDir, checkpointEvery);
        } catch (const SpecError &e) {
            std::cerr << e.what() << "\n";
            return 1;
        } catch (const SimError &e) {
            std::cerr << e.what() << "\n";
            return 1;
        }
    }

    if (!checkpointDir.empty()) {
        std::cerr << "--checkpoint-dir is a batch flag; single runs "
                     "use --save-state/--restore-from\n";
        return 1;
    }
    if (checkpointEvery != 0 && saveState.empty()) {
        std::cerr << "--checkpoint-every needs --save-state (the "
                     "file the periodic checkpoints go to)\n";
        return 1;
    }

    try {
        if (!file.empty())
            opts.specFile = file;
        opts.traceStream = trace ? &std::cout : nullptr;
        Simulation sim(opts);
        for (const auto &w : sim.diagnostics().warnings())
            std::cerr << w << "\n";
        std::cerr << sim.resolved().spec.comps.size()
                  << " components read.\n";
        if (const auto *pi = dynamic_cast<const PartitionedInterpreter *>(
                &sim.engine())) {
            std::cerr << pi->plan().summary() << "\n";
        }

        if (!restoreFrom.empty()) {
            sim.restoreCheckpoint(restoreFrom);
            std::cerr << "restored " << restoreFrom << " at cycle "
                      << sim.cycle() << "\n";
        }

        int64_t todo = cycles;
        if (todo < 0)
            todo = sim.defaultCycles();
        if (todo < 0) {
            if (!interactive) {
                std::cerr << "spec names no cycle count; pass "
                             "--cycles=N\n";
                return 1;
            }
            std::cout << "Number of cycles to trace\n";
            std::cin >> todo;
            ++todo; // thesis loop is inclusive
        }

        // One run step, checkpointing every checkpointEvery cycles
        // when asked to.
        auto runChunked = [&](uint64_t n) {
            while (n > 0) {
                uint64_t chunk = n;
                if (checkpointEvery != 0)
                    chunk = std::min(chunk, checkpointEvery);
                sim.run(chunk);
                n -= chunk;
                if (checkpointEvery != 0 && n > 0)
                    sim.saveCheckpoint(saveState);
            }
        };

        while (todo > 0) {
            runChunked(static_cast<uint64_t>(todo));
            // Explicit --cycles or a scripted/null run: no
            // interactive continue.
            if (cycles >= 0 || !interactive)
                break;
            std::cout << "Continue to cycle (0 to quit)\n";
            int64_t target = 0;
            if (!(std::cin >> target) || target <= 0)
                break;
            todo = target - static_cast<int64_t>(sim.cycle()) + 1;
        }

        if (!saveState.empty()) {
            sim.saveCheckpoint(saveState);
            std::cerr << "saved checkpoint " << saveState
                      << " at cycle " << sim.cycle() << "\n";
        }
        if (stats)
            std::cerr << sim.stats().summary();
        return 0;
    } catch (const SpecError &e) {
        std::cerr << e.what() << "\n";
        std::cerr << "Error in program (no code generated).\n";
        return 1;
    } catch (const SimError &e) {
        std::cerr << "runtime error: " << e.what() << "\n";
        return 2;
    }
}
