/**
 * @file
 * `asim-run` — run an ASIM II specification.
 *
 * Usage: asim-run [options] <spec-file>
 *   --engine=vm|interp   execution engine (default vm)
 *   --cycles=N           override the spec's `=` cycle count
 *   --stats              print access statistics after the run
 *   --no-trace           suppress the per-cycle trace
 *   --fixed-shl          use repaired shift-left semantics
 *
 * Mirrors the thesis' interactive behavior: when no cycle count is
 * available it asks "Number of cycles to trace", and after the run it
 * offers "Continue to cycle (0 to quit)".
 */

#include <cstring>
#include <iostream>
#include <string>

#include "analysis/resolve.hh"
#include "lang/parser.hh"
#include "sim/engine.hh"

namespace {

void
usage()
{
    std::cerr << "usage: asim-run [--engine=vm|interp] [--cycles=N]\n"
              << "                [--stats] [--no-trace] [--fixed-shl]\n"
              << "                <spec-file>\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace asim;

    std::string file;
    std::string engineName = "vm";
    int64_t cycles = -1;
    bool stats = false;
    bool trace = true;
    AluSemantics sem = AluSemantics::Thesis;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--engine=", 0) == 0) {
            engineName = arg.substr(9);
        } else if (arg.rfind("--cycles=", 0) == 0) {
            cycles = std::atoll(arg.c_str() + 9);
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--no-trace") {
            trace = false;
        } else if (arg == "--fixed-shl") {
            sem = AluSemantics::Fixed;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 1;
        } else {
            file = arg;
        }
    }
    if (file.empty()) {
        usage();
        return 1;
    }

    try {
        Diagnostics diag;
        ResolvedSpec rs = resolve(parseSpecFile(file, &diag), &diag);
        for (const auto &w : diag.warnings())
            std::cerr << w << "\n";
        std::cerr << rs.spec.comps.size() << " components read.\n";

        StreamTrace streamTrace(std::cout);
        StreamIo io(std::cin, std::cout);
        EngineConfig cfg;
        cfg.trace = trace ? &streamTrace : nullptr;
        cfg.io = &io;
        cfg.aluSemantics = sem;

        auto engine = engineName == "interp" ? makeInterpreter(rs, cfg)
                                             : makeVm(rs, cfg);

        int64_t todo = cycles;
        if (todo < 0 && rs.spec.cyclesSpecified)
            todo = rs.spec.thesisIterations();
        if (todo < 0) {
            std::cout << "Number of cycles to trace\n";
            std::cin >> todo;
            ++todo; // thesis loop is inclusive
        }

        while (todo > 0) {
            engine->run(static_cast<uint64_t>(todo));
            if (cycles >= 0)
                break; // explicit --cycles: no interactive continue
            std::cout << "Continue to cycle (0 to quit)\n";
            int64_t target = 0;
            if (!(std::cin >> target) || target <= 0)
                break;
            todo = target - static_cast<int64_t>(engine->cycle()) + 1;
        }

        if (stats)
            std::cerr << engine->stats().summary();
        return 0;
    } catch (const SpecError &e) {
        std::cerr << e.what() << "\n";
        std::cerr << "Error in program (no code generated).\n";
        return 1;
    } catch (const SimError &e) {
        std::cerr << "runtime error: " << e.what() << "\n";
        return 2;
    }
}
