/**
 * @file
 * `asim-run` — run an ASIM II specification through the Simulation
 * facade.
 *
 * Usage: asim-run [options] <spec-file>
 *   --engine=NAME        execution engine (default vm; see
 *                        --list-engines for the registry)
 *   --cycles=N           override the spec's `=` cycle count
 *   --io=MODE            interactive (default), null, or
 *                        script:<file> — scripted integer inputs,
 *                        thesis-format outputs on stdout
 *   --stats              print access statistics after the run
 *   --no-trace           suppress the per-cycle trace
 *   --fixed-shl          use repaired shift-left semantics
 *   --list-engines       list registered engines and exit
 *
 * Mirrors the thesis' interactive behavior: when no cycle count is
 * available it asks "Number of cycles to trace", and after the run it
 * offers "Continue to cycle (0 to quit)". Scripted runs are fully
 * non-interactive.
 */

#include <iostream>
#include <string>

#include "sim/simulation.hh"

namespace {

void
usage()
{
    std::cerr << "usage: asim-run [--engine=NAME] [--cycles=N]\n"
              << "                [--io=interactive|null|script:"
                 "<file>]\n"
              << "                [--stats] [--no-trace] "
                 "[--fixed-shl]\n"
              << "                [--list-engines] <spec-file>\n";
}

void
listEngines()
{
    for (const auto &[name, description] :
         asim::EngineRegistry::global().list()) {
        std::cout << name << "\t" << description << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace asim;

    std::string file;
    SimulationOptions opts;
    opts.ioMode = IoMode::Interactive;
    int64_t cycles = -1;
    bool stats = false;
    bool trace = true;
    bool interactive = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--engine=", 0) == 0) {
            opts.engine = arg.substr(9);
        } else if (arg.rfind("--cycles=", 0) == 0) {
            cycles = std::atoll(arg.c_str() + 9);
        } else if (arg == "--io=interactive") {
            opts.ioMode = IoMode::Interactive;
            interactive = true;
        } else if (arg == "--io=null") {
            opts.ioMode = IoMode::Null;
            interactive = false;
        } else if (arg.rfind("--io=script:", 0) == 0) {
            opts.ioMode = IoMode::Script;
            interactive = false;
            try {
                opts.scriptInputs =
                    Simulation::loadScript(arg.substr(12));
            } catch (const SimError &e) {
                std::cerr << e.what() << "\n";
                return 1;
            }
        } else if (arg == "--stats") {
            stats = true;
        } else if (arg == "--no-trace") {
            trace = false;
        } else if (arg == "--fixed-shl") {
            opts.config.aluSemantics = AluSemantics::Fixed;
        } else if (arg == "--list-engines") {
            listEngines();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
            return 1;
        } else {
            file = arg;
        }
    }
    if (file.empty()) {
        usage();
        return 1;
    }

    try {
        opts.specFile = file;
        opts.traceStream = trace ? &std::cout : nullptr;
        Simulation sim(opts);
        for (const auto &w : sim.diagnostics().warnings())
            std::cerr << w << "\n";
        std::cerr << sim.resolved().spec.comps.size()
                  << " components read.\n";

        int64_t todo = cycles;
        if (todo < 0)
            todo = sim.defaultCycles();
        if (todo < 0) {
            if (!interactive) {
                std::cerr << "spec names no cycle count; pass "
                             "--cycles=N\n";
                return 1;
            }
            std::cout << "Number of cycles to trace\n";
            std::cin >> todo;
            ++todo; // thesis loop is inclusive
        }

        while (todo > 0) {
            sim.run(static_cast<uint64_t>(todo));
            // Explicit --cycles or a scripted/null run: no
            // interactive continue.
            if (cycles >= 0 || !interactive)
                break;
            std::cout << "Continue to cycle (0 to quit)\n";
            int64_t target = 0;
            if (!(std::cin >> target) || target <= 0)
                break;
            todo = target - static_cast<int64_t>(sim.cycle()) + 1;
        }

        if (stats)
            std::cerr << sim.stats().summary();
        return 0;
    } catch (const SpecError &e) {
        std::cerr << e.what() << "\n";
        std::cerr << "Error in program (no code generated).\n";
        return 1;
    } catch (const SimError &e) {
        std::cerr << "runtime error: " << e.what() << "\n";
        return 2;
    }
}
