/**
 * @file
 * `asim2c` — the ASIM II compiler: specification in, Pascal or C++
 * out (thesis Appendix A: `sim [file]` producing `simulator.p`).
 *
 * Usage: asim2c [options] <spec-file>
 *   --lang=pascal|cpp    target language (default pascal)
 *   -o <file>            output path (default simulator.p / .cc)
 *   --no-trace           generate without trace statements
 *   --no-optimize        disable constant inlining/specialization
 *   --fixed-shl          repaired shift-left semantics
 *   --serve              C++ only: also emit the persistent `--serve`
 *                        command loop + state dump (the protocol the
 *                        NativeEngine adapter drives; DESIGN.md §5)
 *   --spec-hash          print the specification's identity hash
 *                        (the checkpoint/build-cache key) and exit
 *   --trace-out=FILE     write a Chrome trace_event JSON profile of
 *                        this compile (parse/resolve/codegen spans)
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/resolve.hh"
#include "codegen/codegen.hh"
#include "sim/simulation.hh"
#include "support/tracing.hh"

int
main(int argc, char **argv)
{
    using namespace asim;

    std::string file;
    std::string lang = "pascal";
    std::string outPath;
    std::string traceOut;
    bool specHashOnly = false;
    CodegenOptions opts;

    struct TraceGuard
    {
        ~TraceGuard() { tracing::stop(); }
    } traceGuard;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--lang=", 0) == 0) {
            lang = arg.substr(7);
        } else if (arg == "-o" && i + 1 < argc) {
            outPath = argv[++i];
        } else if (arg == "--no-trace") {
            opts.emitTrace = false;
        } else if (arg == "--no-optimize") {
            opts.inlineConstAlu = false;
            opts.specializeConstMem = false;
        } else if (arg == "--fixed-shl") {
            opts.aluSemantics = AluSemantics::Fixed;
        } else if (arg == "--serve") {
            opts.emitServeLoop = true;
            opts.emitStateDump = true;
        } else if (arg == "--spec-hash") {
            specHashOnly = true;
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            traceOut = arg.substr(12);
        } else if (arg == "--help" || arg == "-h") {
            std::cerr << "usage: asim2c [--lang=pascal|cpp] [-o file]\n"
                      << "              [--no-trace] [--no-optimize]\n"
                      << "              [--fixed-shl] [--serve]\n"
                      << "              [--spec-hash] "
                         "[--trace-out=file] <spec-file>\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option " << arg << "\n";
            return 1;
        } else {
            file = arg;
        }
    }
    if (file.empty()) {
        std::cerr << "usage: asim2c [options] <spec-file>\n";
        return 1;
    }
    if (lang != "pascal" && lang != "cpp") {
        std::cerr << "unknown language " << lang << "\n";
        return 1;
    }
    if (opts.emitServeLoop && lang != "cpp") {
        std::cerr << "--serve is C++ only (--lang=cpp)\n";
        return 1;
    }
    if (outPath.empty())
        outPath = lang == "pascal" ? "simulator.p" : "simulator.cc";
    if (!traceOut.empty() && !tracing::start(traceOut)) {
        std::cerr << "cannot write trace file " << traceOut << "\n";
        return 1;
    }

    try {
        Diagnostics diag;
        if (specHashOnly) {
            SimulationOptions sopts;
            sopts.specFile = file;
            ResolvedSpec rs = Simulation::loadSpec(sopts, &diag);
            char buf[19];
            std::snprintf(buf, sizeof buf, "%016llx",
                          static_cast<unsigned long long>(
                              specIdentityHash(rs)));
            std::cout << buf << "\n";
            return 0;
        }
        std::cerr << "Reading file " << file << "\n";
        SimulationOptions sopts;
        sopts.specFile = file;
        tracing::Span loadSpan("asim2c.parse_resolve", "compile");
        ResolvedSpec rs = Simulation::loadSpec(sopts, &diag);
        loadSpan.finish();
        std::cerr << rs.spec.comps.size() << " components read.\n";
        std::cerr << "Sorting components.\n";
        for (const auto &w : diag.warnings())
            std::cerr << w << "\n";
        std::cerr << "Generating code.\n";
        tracing::Span genSpan("asim2c.codegen", "compile");
        genSpan.setArgs("\"lang\":\"" + lang + "\"");
        std::string code = lang == "pascal" ? generatePascal(rs, opts)
                                            : generateCpp(rs, opts);
        genSpan.finish();
        std::ofstream out(outPath, std::ios::binary);
        out << code;
        if (!out) {
            std::cerr << "cannot write " << outPath << "\n";
            return 1;
        }
        std::cerr << "Wrote " << outPath << "\n";
        return 0;
    } catch (const SpecError &e) {
        std::cerr << e.what() << "\n";
        std::cerr << "Error in program (no code generated).\n";
        return 1;
    }
}
