/**
 * @file
 * `asim-serve` — the multi-tenant simulation daemon (DESIGN.md §9).
 *
 * Usage: asim-serve [options]
 *   --socket=PATH          listen on a Unix-domain socket at PATH
 *   --tcp=PORT             also listen on loopback TCP (0 picks an
 *                          ephemeral port, printed on startup)
 *   --state-dir=DIR        parked-session artifacts (default
 *                          asim-serve-state)
 *   --evict-after-ms=N     park sessions idle longer than N ms
 *                          (default 60000; 0 disables the sweep)
 *   --trace-out=FILE       write a Chrome trace_event JSON trace of
 *                          the daemon's lifetime (session lifecycle
 *                          events, engine spans) to FILE on shutdown
 *   --quiet                no startup/shutdown chatter
 *
 * The daemon always runs with timing metrics enabled so a METRICS
 * scrape (or asim-run --server-metrics) returns populated request-
 * latency and engine histograms; the cost is confined to request
 * handling and engine boundaries (docs/OBSERVABILITY.md).
 *
 * The daemon runs until a client sends SHUTDOWN or it receives
 * SIGINT/SIGTERM; both paths park every live session to --state-dir
 * so a restarted daemon resumes them by name. Drive it with
 * `asim-run --connect=<endpoint>` or the serve/client.hh library.
 */

#include <atomic>
#include <csignal>
#include <cstdint>
#include <iostream>
#include <string>

#include "serve/server.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/tracing.hh"

namespace {

std::atomic<bool> gStop{false};

void
onSignal(int)
{
    gStop = true;
}

void
usage()
{
    std::cerr << "usage: asim-serve [--socket=PATH] [--tcp=PORT]\n"
              << "                  [--state-dir=DIR] "
                 "[--evict-after-ms=N]\n"
              << "                  [--trace-out=FILE] [--quiet]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace asim;

    serve::ServeOptions opts;
    opts.evictAfterMs = 60000;
    bool quiet = false;
    std::string traceOut;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--socket=", 0) == 0) {
            opts.unixPath = arg.substr(9);
        } else if (arg.rfind("--tcp=", 0) == 0) {
            long long port = std::atoll(arg.c_str() + 6);
            if (port < 0 || port > 65535) {
                std::cerr << "--tcp wants a port in 0..65535\n";
                return 1;
            }
            opts.tcpPort = static_cast<int>(port);
        } else if (arg.rfind("--state-dir=", 0) == 0) {
            opts.stateDir = arg.substr(12);
        } else if (arg.rfind("--evict-after-ms=", 0) == 0) {
            opts.evictAfterMs = std::atoll(arg.c_str() + 17);
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            traceOut = arg.substr(12);
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            usage();
            return 1;
        }
    }
    if (opts.unixPath.empty() && opts.tcpPort < 0) {
        std::cerr << "asim-serve needs --socket=PATH and/or "
                     "--tcp=PORT\n";
        usage();
        return 1;
    }

    // Daemon metrics are always live (see file comment); tracing only
    // when asked for.
    metrics::setTimingEnabled(true);
    if (!traceOut.empty() && !tracing::start(traceOut)) {
        std::cerr << "asim-serve: cannot write trace file " << traceOut
                  << "\n";
        return 1;
    }

    try {
        serve::ServeServer server(opts);
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        server.start();
        if (!quiet) {
            if (!opts.unixPath.empty())
                std::cerr << "asim-serve: listening on unix:"
                          << opts.unixPath << "\n";
            if (opts.tcpPort >= 0)
                std::cerr << "asim-serve: listening on tcp:127.0.0.1:"
                          << server.tcpPort() << "\n";
            std::cerr << "asim-serve: state dir " << opts.stateDir
                      << ", evict after " << opts.evictAfterMs
                      << " ms\n";
        }
        while (!server.waitForShutdown(200) && !gStop) {
        }
        if (!quiet) {
            std::cerr << "asim-serve: "
                      << (gStop ? "signal" : "shutdown command")
                      << ", parking sessions\n"
                      << server.statsJson() << "\n";
        }
        server.stop(/*parkSessions=*/true);
        tracing::stop();
        return 0;
    } catch (const SimError &e) {
        std::cerr << "asim-serve: " << e.what() << "\n";
        tracing::stop();
        return 1;
    }
}
