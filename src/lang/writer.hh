/**
 * @file
 * Serializer: render a Spec back to ASIM II source text.
 *
 * Used by the synthetic spec generator, the fault injector, and the
 * parse(write(spec)) round-trip property tests.
 */

#ifndef ASIM_LANG_WRITER_HH
#define ASIM_LANG_WRITER_HH

#include <string>

#include "lang/ast.hh"

namespace asim {

/** Render `spec` as a complete, parseable specification text. */
std::string writeSpec(const Spec &spec);

/** Render a single component definition line. */
std::string writeComponent(const Component &comp);

} // namespace asim

#endif // ASIM_LANG_WRITER_HH
