/**
 * @file
 * Abstract syntax of an ASIM II specification.
 *
 * A specification (thesis Appendix A/B) consists of:
 *   - a mandatory `#` comment line (echoed into generated code),
 *   - macro definitions (`-name text`, referenced as `~name`),
 *   - an optional cycle count (`= N`),
 *   - a declaration list of component names (suffix `*` = traced),
 *     terminated by `.`,
 *   - component definitions, terminated by `.`:
 *       A name function left right
 *       S name selector value0 value1 ... valuen
 *       M name address data operation number [initial values]
 */

#ifndef ASIM_LANG_AST_HH
#define ASIM_LANG_AST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "lang/expr.hh"

namespace asim {

/** The three ASIM II primitives. */
enum class CompKind
{
    Alu,
    Selector,
    Memory,
};

/** Printable primitive letter (A/S/M). */
char compKindLetter(CompKind kind);

/** One component definition. Only the fields for `kind` are valid. */
struct Component
{
    CompKind kind = CompKind::Alu;
    std::string name;

    /// @{ ALU fields
    Expr funct;
    Expr left;
    Expr right;
    /// @}

    /// @{ Selector fields
    Expr select;
    std::vector<Expr> cases;
    /// @}

    /// @{ Memory fields
    Expr addr;
    Expr data;
    Expr opn;
    /** Number of cells. The spec's negative size ("initialize from the
     *  list") is normalized: size is always positive here and
     *  `init` is non-empty iff the spec used a negative size. */
    int64_t memSize = 0;
    std::vector<int32_t> init;
    /// @}
};

/** A declaration-list entry: component name plus trace flag. */
struct DeclName
{
    std::string name;
    bool traced = false;

    bool operator==(const DeclName &) const = default;
};

/** A whole parsed specification. */
struct Spec
{
    /** The first-line comment, without the leading `#`. */
    std::string comment;

    /** Cycle count from the `=` directive; meaningful only if
     *  `cyclesSpecified`. The thesis main loop runs while
     *  `cyclecount <= cycles`, i.e. cycles+1 iterations. */
    int64_t cycles = 0;
    bool cyclesSpecified = false;

    std::vector<DeclName> decls;
    std::vector<Component> comps;

    /** Find a component by name; nullptr if absent. */
    const Component *find(std::string_view name) const;
    Component *find(std::string_view name);

    /** The thesis' inclusive loop-iteration count for `= N`. */
    int64_t thesisIterations() const { return cycles + 1; }
};

/** Memory operation bits (thesis Appendix A). */
namespace mem_op {
constexpr int32_t kRead = 0;
constexpr int32_t kWrite = 1;
constexpr int32_t kInput = 2;
constexpr int32_t kOutput = 3;
constexpr int32_t kTraceWrites = 4;
constexpr int32_t kTraceReads = 8;
} // namespace mem_op

} // namespace asim

#endif // ASIM_LANG_AST_HH
