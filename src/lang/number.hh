/**
 * @file
 * ASIM II number grammar (thesis Appendix B `number` / `str2num`).
 *
 * A number is a sum of atoms joined by `+` with no whitespace:
 *   - decimal:      `128`
 *   - hex:          `$7F`    (digits 0-9, A-F)
 *   - binary:       `%1101`
 *   - power of two: `^12`    (= 2^12)
 *
 * Example from the thesis decode ROM: `128+3+^8` = 387.
 */

#ifndef ASIM_LANG_NUMBER_HH
#define ASIM_LANG_NUMBER_HH

#include <cstdint>
#include <string_view>

namespace asim {

/**
 * Parse a number token.
 *
 * @throws SpecError on a malformed number (the thesis' "Error.
 *         Malformed number" diagnostic).
 */
int32_t parseNumber(std::string_view text);

/** Parse a possibly-negative number (memory size field: `-133`). */
int64_t parseSignedNumber(std::string_view text);

/** True if `text` is a syntactically valid number. */
bool isNumber(std::string_view text);

/** True if `text` is a valid *numeric expression constant* — the
 *  thesis' `numeric()` check used to trigger code optimization: every
 *  character is one of `+ % $ ^ 0-9 A-F`. */
bool isNumericText(std::string_view text);

} // namespace asim

#endif // ASIM_LANG_NUMBER_HH
