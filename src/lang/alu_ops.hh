/**
 * @file
 * The fourteen ASIM II ALU functions (thesis Appendix A, implemented as
 * the generated `dologic` in Appendix E).
 *
 *   0 zero           7 left * right
 *   1 right          8 AND(left, right)
 *   2 left           9 OR(left, right)
 *   3 NOT(left)     10 XOR(left, right)
 *   4 left + right  11 unused (zero)
 *   5 left - right  12 left = right  (1 if true, 0 if false)
 *   6 left * 2^right (shift left)
 *                   13 left < right
 *
 * Function 6 carries a faithful quirk: the thesis loop
 *
 *     value := 0;
 *     while (right > 0) and (left <> 0) do begin
 *         left := land(left + left, mask); value := left; ...
 *
 * never assigns `value` when the shift count is zero, so
 * `dologic(6, x, 0) = 0` rather than `x`. AluSemantics::Thesis keeps
 * that behavior (the default — it is what both ASIM and ASIM II
 * executed); AluSemantics::Fixed repairs it to a true shift.
 */

#ifndef ASIM_LANG_ALU_OPS_HH
#define ASIM_LANG_ALU_OPS_HH

#include <cstdint>

namespace asim {

/** Which shift-left edge-case behavior to use. */
enum class AluSemantics
{
    Thesis, ///< dologic(6, x, 0) == 0, exactly as generated in 1986
    Fixed,  ///< dologic(6, x, 0) == land(x, mask)
};

/** Symbolic names for the ALU function codes. */
enum AluFunction : int32_t
{
    kAluZero = 0,
    kAluRight = 1,
    kAluLeft = 2,
    kAluNot = 3,
    kAluAdd = 4,
    kAluSub = 5,
    kAluShl = 6,
    kAluMul = 7,
    kAluAnd = 8,
    kAluOr = 9,
    kAluXor = 10,
    kAluUnused = 11,
    kAluEq = 12,
    kAluLt = 13,

    kAluFunctionCount = 14,
};

/**
 * Evaluate ALU function `funct` on `left` and `right`.
 *
 * @throws SimError if `funct` is outside [0,13] (the generated Pascal
 *         would have died with a case-range error).
 */
int32_t dologic(int32_t funct, int32_t left, int32_t right,
                AluSemantics sem = AluSemantics::Thesis);

/** True if `funct` names a valid ALU function. */
constexpr bool
validAluFunction(int32_t funct)
{
    return funct >= 0 && funct < kAluFunctionCount;
}

} // namespace asim

#endif // ASIM_LANG_ALU_OPS_HH
