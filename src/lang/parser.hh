/**
 * @file
 * ASIM II specification parser (thesis `readit` + support procedures).
 *
 * Includes the modularity extension the thesis calls for in §5.4
 * ("Modularity is an important concept... expanding that description
 * at compile time"): a module is defined once and expanded textually
 * per instance.
 *
 *     D adder a b sum .      { define module `adder`, ports a b sum }
 *     A sum 4 a b            { body: ordinary components }
 *     E                      { end of module }
 *     ...
 *     U add1 adder x y z     { instantiate: a=x, b=y, sum=z }
 *
 * Components whose names are ports take the instantiation's actual
 * names; internal components are prefixed with the instance name.
 * Expanded components are appended to the declaration list
 * automatically (untraced — star the actuals to trace them).
 */

#ifndef ASIM_LANG_PARSER_HH
#define ASIM_LANG_PARSER_HH

#include <string>
#include <string_view>

#include "lang/ast.hh"
#include "support/logging.hh"

namespace asim {

/**
 * Parse a complete specification text.
 *
 * @param text whole file contents
 * @param diag optional collector for warnings (may be nullptr)
 * @throws SpecError on any malformed construct
 */
Spec parseSpec(std::string_view text, Diagnostics *diag = nullptr);

/** Parse a specification from a file on disk. */
Spec parseSpecFile(const std::string &path, Diagnostics *diag = nullptr);

} // namespace asim

#endif // ASIM_LANG_PARSER_HH
