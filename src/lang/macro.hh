/**
 * @file
 * ASIM II macro table.
 *
 * Macros are defined near the top of a specification as `-name text`
 * and referenced anywhere in later tokens as `~name`. A macro body may
 * reference previously defined macros (they are expanded at definition
 * time), so bodies stored here are always flat. Macro names follow the
 * component-name rules (letter, then letters/digits).
 */

#ifndef ASIM_LANG_MACRO_HH
#define ASIM_LANG_MACRO_HH

#include <map>
#include <string>
#include <string_view>

namespace asim {

/** Ordered macro table with `~name` expansion. */
class MacroTable
{
  public:
    /** Define a macro; `body` is stored as given (already expanded).
     *  @throws SpecError on an invalid name or redefinition. */
    void define(std::string_view name, std::string_view body);

    /** True if `name` is defined. */
    bool defined(std::string_view name) const;

    /** Body of `name`.
     *  @throws SpecError if undefined ("Error. Macro <x> not defined"). */
    const std::string &lookup(std::string_view name) const;

    /** Expand every `~name` occurrence in `token`. Names are maximal
     *  letter/digit runs after `~`.
     *  @throws SpecError on an undefined macro. */
    std::string expand(std::string_view token) const;

    size_t size() const { return table_.size(); }

  private:
    std::map<std::string, std::string, std::less<>> table_;
};

} // namespace asim

#endif // ASIM_LANG_MACRO_HH
