#include "lang/writer.hh"

#include <sstream>

namespace asim {

std::string
writeComponent(const Component &comp)
{
    std::ostringstream os;
    os << compKindLetter(comp.kind) << ' ' << comp.name;
    switch (comp.kind) {
      case CompKind::Alu:
        os << ' ' << exprToString(comp.funct)
           << ' ' << exprToString(comp.left)
           << ' ' << exprToString(comp.right);
        break;
      case CompKind::Selector:
        os << ' ' << exprToString(comp.select);
        for (const auto &c : comp.cases)
            os << ' ' << exprToString(c);
        break;
      case CompKind::Memory:
        os << ' ' << exprToString(comp.addr)
           << ' ' << exprToString(comp.data)
           << ' ' << exprToString(comp.opn);
        if (!comp.init.empty()) {
            os << " -" << comp.memSize;
            for (int32_t v : comp.init)
                os << ' ' << v;
        } else {
            os << ' ' << comp.memSize;
        }
        break;
    }
    return os.str();
}

std::string
writeSpec(const Spec &spec)
{
    std::ostringstream os;
    os << '#' << spec.comment << '\n';
    if (spec.cyclesSpecified)
        os << "= " << spec.cycles << '\n';
    for (const auto &d : spec.decls)
        os << d.name << (d.traced ? "*" : "") << '\n';
    os << ".\n";
    for (const auto &c : spec.comps)
        os << writeComponent(c) << '\n';
    os << ".\n";
    return os.str();
}

} // namespace asim
