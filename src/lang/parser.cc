#include "lang/parser.hh"

#include <fstream>
#include <map>
#include <sstream>

#include "lang/lexer.hh"
#include "lang/number.hh"
#include "support/text.hh"

namespace asim {

namespace {

/** Thesis `checkname`: letters and digits, starting with a letter. */
void
checkName(std::string_view name)
{
    if (!isValidName(name)) {
        throw SpecError("Error. Component name " + std::string(name) +
                        " invalid, use letters and numbers only.");
    }
}

class Parser
{
  public:
    Parser(std::string_view text, Diagnostics *diag)
        : lexer_(text), diag_(diag)
    {}

    Spec
    run()
    {
        sink_ = &spec_.comps;
        readComment();
        token_ = lexer_.next();
        readMacros();
        readCycles();
        readDeclList();
        readComponents();
        return std::move(spec_);
    }

  private:
    void
    readComment()
    {
        std::string line = lexer_.readCommentLine();
        if (line.empty() || line[0] != '#')
            throw SpecError("Error. Comment required.");
        spec_.comment = line.substr(1);
    }

    void
    advance()
    {
        token_ = lexer_.next();
    }

    void
    readMacros()
    {
        // Macro definitions: '-name body' pairs. The name is read with
        // expansion off; the body with expansion on, so earlier macros
        // expand inside later bodies (no recursion possible).
        while (!token_.empty() && token_[0] == '-') {
            std::string name = token_.substr(1);
            checkName(name);
            lexer_.setExpandMacros(true);
            std::string body = lexer_.next();
            lexer_.setExpandMacros(false);
            if (body.empty())
                throw SpecError("Error. Macro " + name + " has no body.");
            lexer_.macros().define(name, body);
            advance();
        }
        // From here on every token undergoes ~name substitution.
        lexer_.setExpandMacros(true);
    }

    void
    readCycles()
    {
        if (token_ == "=") {
            advance();
            spec_.cycles = parseNumber(token_);
            spec_.cyclesSpecified = true;
            advance();
        }
    }

    void
    readDeclList()
    {
        while (token_ != ".") {
            if (token_.empty())
                throw SpecError("Error. Unexpected end of file in "
                                "declaration list.");
            DeclName d;
            if (token_.size() > 1 && token_.back() == '*') {
                d.name = token_.substr(0, token_.size() - 1);
                d.traced = true;
            } else {
                d.name = token_;
            }
            checkName(d.name);
            spec_.decls.push_back(std::move(d));
            advance();
        }
        advance(); // consume '.'
    }

    std::string
    nextField(const char *what)
    {
        std::string t = lexer_.next();
        if (t.empty()) {
            throw SpecError(std::string("Error. Unexpected end of file "
                                        "reading ") + what + lastContext());
        }
        return t;
    }

    std::string
    lastContext() const
    {
        if (spec_.comps.empty())
            return std::string(".");
        return " (last component read is <" + spec_.comps.back().name +
               ">).";
    }

    void
    readComponents()
    {
        while (token_ != ".") {
            if (token_.size() != 1 ||
                (token_ != "A" && token_ != "S" && token_ != "M" &&
                 token_ != "D" && token_ != "U")) {
                throw SpecError("Error. Component expected. Got <" +
                                token_ + "> instead" + lastContext());
            }
            if (token_ == "A")
                readAlu();
            else if (token_ == "S")
                readSelector();
            else if (token_ == "M")
                readMemory();
            else if (token_ == "D")
                readModuleDef();
            else
                readModuleUse();
        }
    }

    /** A module template: ports plus body components. */
    struct Module
    {
        std::vector<std::string> ports;
        std::vector<Component> body;
    };

    void
    readModuleDef()
    {
        std::string name = nextField("module name");
        checkName(name);
        if (modules_.count(name)) {
            throw SpecError("Error. Module " + name +
                            " defined twice.");
        }
        Module mod;
        advance();
        while (token_ != ".") {
            if (token_.empty()) {
                throw SpecError("Error. Unexpected end of file in "
                                "module " + name + " port list.");
            }
            checkName(token_);
            mod.ports.push_back(token_);
            advance();
        }
        // Body: ordinary components until 'E'. Parse into a side list
        // by temporarily swapping the component sink.
        advance();
        std::vector<Component> *outer = sink_;
        sink_ = &mod.body;
        while (token_ != "E") {
            if (token_.empty()) {
                sink_ = outer;
                throw SpecError("Error. Module " + name +
                                " not terminated with E.");
            }
            if (token_ == "A") {
                readAlu();
            } else if (token_ == "S") {
                readSelector();
            } else if (token_ == "M") {
                readMemory();
            } else {
                sink_ = outer;
                throw SpecError("Error. Component expected in module " +
                                name + ". Got <" + token_ + ">.");
            }
        }
        sink_ = outer;
        advance(); // past 'E'
        modules_.emplace(std::move(name), std::move(mod));
    }

    void
    readModuleUse()
    {
        std::string inst = nextField("instance name");
        checkName(inst);
        std::string modName = nextField("module name");
        auto it = modules_.find(modName);
        if (it == modules_.end()) {
            throw SpecError("Error. Module <" + modName +
                            "> not found.");
        }
        const Module &mod = it->second;

        // One actual per port.
        std::map<std::string, std::string> rename;
        for (const auto &port : mod.ports) {
            std::string actual = nextField("module actual");
            checkName(actual);
            rename[port] = actual;
        }
        // Internal components get instance-prefixed names.
        for (const auto &c : mod.body) {
            if (!rename.count(c.name))
                rename[c.name] = inst + c.name;
        }

        auto mapName = [&](const std::string &n) {
            auto rit = rename.find(n);
            return rit == rename.end() ? n : rit->second;
        };
        auto mapExpr = [&](Expr e) {
            for (auto &t : e.terms) {
                if (t.kind == Term::Kind::Ref)
                    t.ref = mapName(t.ref);
            }
            e.source = exprToString(e);
            return e;
        };

        for (const Component &tmpl : mod.body) {
            Component c = tmpl;
            c.name = mapName(tmpl.name);
            c.funct = mapExpr(tmpl.funct);
            c.left = mapExpr(tmpl.left);
            c.right = mapExpr(tmpl.right);
            c.select = mapExpr(tmpl.select);
            for (auto &e : c.cases)
                e = mapExpr(e);
            c.addr = mapExpr(tmpl.addr);
            c.data = mapExpr(tmpl.data);
            c.opn = mapExpr(tmpl.opn);
            sink_->push_back(std::move(c));
            // Expanded names join the declaration list untraced
            // unless the user already declared them.
            bool declared = false;
            for (const auto &d : spec_.decls) {
                if (d.name == sink_->back().name) {
                    declared = true;
                    break;
                }
            }
            if (!declared) {
                spec_.decls.push_back(
                    DeclName{sink_->back().name, false});
            }
        }
        advance();
    }

    void
    readAlu()
    {
        Component c;
        c.kind = CompKind::Alu;
        c.name = nextField("ALU name");
        checkName(c.name);
        c.funct = parseExpr(nextField("ALU function"));
        c.left = parseExpr(nextField("ALU left operand"));
        c.right = parseExpr(nextField("ALU right operand"));
        sink_->push_back(std::move(c));
        advance();
    }

    void
    readSelector()
    {
        Component c;
        c.kind = CompKind::Selector;
        c.name = nextField("selector name");
        checkName(c.name);
        c.select = parseExpr(nextField("selector index"));
        // Case values run until the next component letter or final '.'.
        advance();
        while (true) {
            if (token_ == ".")
                break;
            if (token_.size() == 1 &&
                (token_ == "A" || token_ == "S" || token_ == "M")) {
                break;
            }
            if (token_.empty()) {
                throw SpecError("Error. Unexpected end of file in "
                                "selector " + c.name + " case list.");
            }
            c.cases.push_back(parseExpr(token_));
            advance();
        }
        if (c.cases.empty()) {
            throw SpecError("Error. Selector " + c.name +
                            " has no case values.");
        }
        sink_->push_back(std::move(c));
    }

    void
    readMemory()
    {
        Component c;
        c.kind = CompKind::Memory;
        c.name = nextField("memory name");
        checkName(c.name);
        c.addr = parseExpr(nextField("memory address"));
        c.data = parseExpr(nextField("memory data"));
        c.opn = parseExpr(nextField("memory operation"));
        int64_t n = parseSignedNumber(nextField("memory size"));
        if (n == 0) {
            throw SpecError("Error. Memory " + c.name +
                            " has zero cells.");
        }
        if (n < 0) {
            // Negative size: exactly |n| initial values follow.
            c.memSize = -n;
            for (int64_t i = 0; i < c.memSize; ++i) {
                c.init.push_back(
                    parseNumber(nextField("memory initial value")));
            }
        } else {
            c.memSize = n;
        }
        sink_->push_back(std::move(c));
        advance();
    }

    Lexer lexer_;
    Diagnostics *diag_;
    Spec spec_;
    std::string token_;

    /** Where parsed components go: the spec, or a module body. */
    std::vector<Component> *sink_ = nullptr;

    /** Module templates (§5.4 modularity extension). */
    std::map<std::string, Module> modules_;
};

} // namespace

const Component *
Spec::find(std::string_view name) const
{
    for (const auto &c : comps) {
        if (c.name == name)
            return &c;
    }
    return nullptr;
}

Component *
Spec::find(std::string_view name)
{
    for (auto &c : comps) {
        if (c.name == name)
            return &c;
    }
    return nullptr;
}

char
compKindLetter(CompKind kind)
{
    switch (kind) {
      case CompKind::Alu:
        return 'A';
      case CompKind::Selector:
        return 'S';
      case CompKind::Memory:
        return 'M';
    }
    return '?';
}

Spec
parseSpec(std::string_view text, Diagnostics *diag)
{
    return Parser(text, diag).run();
}

Spec
parseSpecFile(const std::string &path, Diagnostics *diag)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SpecError("Error. Cannot open file " + path + ".");
    std::ostringstream os;
    os << in.rdbuf();
    return parseSpec(os.str(), diag);
}

} // namespace asim
