/**
 * @file
 * ASIM II expressions: bit-field extraction and concatenation.
 *
 * An expression is a comma-separated list of terms. The *rightmost*
 * term occupies the least-significant bits of the result (Figure 3.1:
 * `mem.3.4,#01,count.1` places bit 1 of `count` at position 0, the
 * two-bit string `01` at positions 1..2, and bits 3..4 of `mem` at
 * positions 3..4). Terms are:
 *
 *   - `name`          whole component (consumes the remaining width)
 *   - `name.f`        single bit f of the component
 *   - `name.f.t`      bits f..t (inclusive) of the component
 *   - `number`        constant (consumes the remaining width)
 *   - `number.w`      constant restricted to w bits
 *   - `#bits`         binary string, width = number of digits
 *
 * The total width may not exceed 31 bits ("Too many bits").
 */

#ifndef ASIM_LANG_EXPR_HH
#define ASIM_LANG_EXPR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace asim {

/** One concatenation term. */
struct Term
{
    enum class Kind
    {
        Const,      ///< numeric constant, optional explicit width
        BitString,  ///< `#0101` — value with intrinsic width
        Ref,        ///< component reference with optional subfield
    };

    Kind kind = Kind::Const;

    /** Constant / bit-string value. */
    int32_t value = 0;

    /** Explicit width in bits; -1 = unbounded (consumes the rest). */
    int width = -1;

    /** Referenced component name (Kind::Ref). */
    std::string ref;

    /** Subfield low bit; -1 = whole component. */
    int from = -1;

    /** Subfield high bit; -1 = single bit (just `from`). */
    int to = -1;

    bool operator==(const Term &) const = default;
};

/** A parsed expression: terms stored leftmost (most significant) first,
 *  plus the original source text for diagnostics and code comments. */
struct Expr
{
    std::vector<Term> terms;
    std::string source;

    bool empty() const { return terms.empty(); }

    /** True if no term references a component. */
    bool isConstant() const;

    bool
    operator==(const Expr &o) const
    {
        return terms == o.terms;
    }
};

/**
 * Parse one expression token.
 *
 * @param text the whitespace-free token
 * @throws SpecError on malformed input ("Error. Malformed expression")
 */
Expr parseExpr(std::string_view text);

/** Render an Expr back to specification syntax. */
std::string exprToString(const Expr &expr);

/** Names of all components referenced by `expr` (with duplicates). */
std::vector<std::string> referencedNames(const Expr &expr);

} // namespace asim

#endif // ASIM_LANG_EXPR_HH
