#include "lang/number.hh"

#include <string>

#include "support/bitops.hh"
#include "support/logging.hh"
#include "support/text.hh"

namespace asim {

namespace {

[[noreturn]] void
malformed(std::string_view text)
{
    throw SpecError("Error. Malformed number " + std::string(text) + ".");
}

/** Parse one atom starting at `i`; advances `i` past the atom. */
int32_t
parseAtom(std::string_view text, size_t &i)
{
    if (i >= text.size())
        malformed(text);
    char c = text[i];
    int64_t k = 0;
    if (isDigit(c)) {
        while (i < text.size() && isDigit(text[i])) {
            k = k * 10 + (text[i] - '0');
            ++i;
        }
    } else if (c == '$') {
        ++i;
        if (i >= text.size() || !isHexDigit(text[i]))
            malformed(text);
        while (i < text.size() && isHexDigit(text[i])) {
            k *= 16;
            if (isDigit(text[i]))
                k += text[i] - '0';
            else
                k += text[i] - 'A' + 10;
            ++i;
        }
    } else if (c == '%') {
        ++i;
        if (i >= text.size() || (text[i] != '0' && text[i] != '1'))
            malformed(text);
        while (i < text.size() && (text[i] == '0' || text[i] == '1')) {
            k = k * 2 + (text[i] - '0');
            ++i;
        }
    } else if (c == '^') {
        ++i;
        if (i >= text.size() || !isDigit(text[i]))
            malformed(text);
        int64_t e = 0;
        while (i < text.size() && isDigit(text[i])) {
            e = e * 10 + (text[i] - '0');
            ++i;
        }
        // Faithful to str2num: 1 multiplied by 2, e times (wraps).
        int32_t v = 1;
        for (int64_t m = 0; m < e; ++m)
            v = wmul(v, 2);
        return v;
    } else {
        malformed(text);
    }
    return static_cast<int32_t>(k);
}

} // namespace

int32_t
parseNumber(std::string_view text)
{
    if (text.empty())
        malformed(text);
    size_t i = 0;
    int32_t total = 0;
    while (true) {
        total = wadd(total, parseAtom(text, i));
        if (i == text.size())
            return total;
        if (text[i] != '+')
            malformed(text);
        ++i;
    }
}

int64_t
parseSignedNumber(std::string_view text)
{
    if (!text.empty() && text[0] == '-')
        return -static_cast<int64_t>(parseNumber(text.substr(1)));
    return parseNumber(text);
}

bool
isNumber(std::string_view text)
{
    try {
        parseNumber(text);
        return true;
    } catch (const SpecError &) {
        return false;
    }
}

bool
isNumericText(std::string_view text)
{
    if (text.empty())
        return false;
    for (char c : text) {
        if (c != '+' && c != '%' && c != '$' && c != '^' &&
            !isDigit(c) && !(c >= 'A' && c <= 'F')) {
            return false;
        }
    }
    return true;
}

} // namespace asim
