#include "lang/expr.hh"

#include <sstream>

#include "lang/number.hh"
#include "support/logging.hh"
#include "support/text.hh"

namespace asim {

namespace {

[[noreturn]] void
malformed(std::string_view text)
{
    throw SpecError("Error. Malformed expression " + std::string(text) +
                    ".");
}

/** Parse one comma-free piece into a Term. */
Term
parseTerm(std::string_view piece, std::string_view whole)
{
    Term t;
    if (piece.empty())
        malformed(whole);

    char c = piece[0];
    if (c == '#') {
        // Binary bit string: width = number of digits.
        t.kind = Term::Kind::BitString;
        std::string_view bits = piece.substr(1);
        if (bits.empty())
            malformed(whole);
        int32_t v = 0;
        for (char b : bits) {
            if (b != '0' && b != '1')
                malformed(whole);
            v = v * 2 + (b - '0');
        }
        t.value = v;
        t.width = static_cast<int>(bits.size());
        return t;
    }

    if (isDigit(c) || c == '$' || c == '%' || c == '^') {
        // Constant, optionally followed by `.width`.
        t.kind = Term::Kind::Const;
        size_t dot = piece.find('.');
        if (dot == std::string_view::npos) {
            t.value = parseNumber(piece);
            t.width = -1;
        } else {
            t.value = parseNumber(piece.substr(0, dot));
            std::string_view wtext = piece.substr(dot + 1);
            if (wtext.empty())
                malformed(whole);
            t.width = parseNumber(wtext);
            if (t.width < 0 || t.width > 31)
                malformed(whole);
        }
        return t;
    }

    if (isLetter(c)) {
        // Component reference with optional subfield.
        t.kind = Term::Kind::Ref;
        auto pieces = split(piece, '.');
        if (pieces.size() > 3)
            malformed(whole);
        if (!isValidName(pieces[0]))
            malformed(whole);
        t.ref = pieces[0];
        if (pieces.size() >= 2) {
            if (pieces[1].empty())
                malformed(whole);
            t.from = parseNumber(pieces[1]);
        }
        if (pieces.size() == 3) {
            if (pieces[2].empty())
                malformed(whole);
            t.to = parseNumber(pieces[2]);
            if (t.to < t.from)
                malformed(whole);
        }
        if (t.from > 31 || t.to > 31)
            malformed(whole);
        return t;
    }

    malformed(whole);
}

} // namespace

bool
Expr::isConstant() const
{
    for (const auto &t : terms) {
        if (t.kind == Term::Kind::Ref)
            return false;
    }
    return true;
}

Expr
parseExpr(std::string_view text)
{
    Expr e;
    e.source = std::string(text);
    if (text.empty())
        malformed(text);
    for (const auto &piece : split(text, ','))
        e.terms.push_back(parseTerm(piece, text));
    return e;
}

std::string
exprToString(const Expr &expr)
{
    std::ostringstream os;
    for (size_t i = 0; i < expr.terms.size(); ++i) {
        if (i)
            os << ',';
        const Term &t = expr.terms[i];
        switch (t.kind) {
          case Term::Kind::Const:
            os << t.value;
            if (t.width >= 0)
                os << '.' << t.width;
            break;
          case Term::Kind::BitString:
            os << '#';
            for (int b = t.width - 1; b >= 0; --b)
                os << ((t.value >> b) & 1);
            break;
          case Term::Kind::Ref:
            os << t.ref;
            if (t.from >= 0)
                os << '.' << t.from;
            if (t.to >= 0)
                os << '.' << t.to;
            break;
        }
    }
    return os.str();
}

std::vector<std::string>
referencedNames(const Expr &expr)
{
    std::vector<std::string> names;
    for (const auto &t : expr.terms) {
        if (t.kind == Term::Kind::Ref)
            names.push_back(t.ref);
    }
    return names;
}

} // namespace asim
