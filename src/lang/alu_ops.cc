#include "lang/alu_ops.hh"

#include <string>

#include "support/bitops.hh"
#include "support/logging.hh"

namespace asim {

int32_t
dologic(int32_t funct, int32_t left, int32_t right, AluSemantics sem)
{
    switch (funct) {
      case kAluZero:
        return 0;
      case kAluRight:
        return right;
      case kAluLeft:
        return left;
      case kAluNot:
        return wsub(kValueMask, left);
      case kAluAdd:
        return wadd(left, right);
      case kAluSub:
        return wsub(left, right);
      case kAluShl: {
        if (sem == AluSemantics::Fixed) {
            int32_t v = land(left, kValueMask);
            for (int32_t r = right; r > 0 && v != 0; --r)
                v = land(wadd(v, v), kValueMask);
            return v;
        }
        // Thesis semantics: `value` is only written inside the loop,
        // so a zero shift count (or zero input) yields 0.
        int32_t value = 0;
        int32_t l = left;
        for (int32_t r = right; r > 0 && l != 0; --r) {
            l = land(wadd(l, l), kValueMask);
            value = l;
        }
        return value;
      }
      case kAluMul:
        return wmul(left, right);
      case kAluAnd:
        return land(left, right);
      case kAluOr:
        return wsub(wadd(left, right), land(left, right));
      case kAluXor:
        return wsub(wadd(left, right), wmul(land(left, right), 2));
      case kAluUnused:
        return 0;
      case kAluEq:
        return left == right ? 1 : 0;
      case kAluLt:
        return left < right ? 1 : 0;
      default:
        throw SimError("ALU function " + std::to_string(funct) +
                       " out of range 0..13");
    }
}

} // namespace asim
