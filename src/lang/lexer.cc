#include "lang/lexer.hh"

#include "support/logging.hh"
#include "support/text.hh"

namespace asim {

Lexer::Lexer(std::string_view text)
    : text_(text)
{}

std::string
Lexer::readCommentLine()
{
    std::string line;
    while (pos_ < text_.size() && text_[pos_] != '\n')
        line += text_[pos_++];
    if (pos_ < text_.size()) {
        ++pos_;
        ++line_;
    }
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
    return line;
}

bool
Lexer::isWhitespace(char c) const
{
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

void
Lexer::skipWhitespace()
{
    while (pos_ < text_.size()) {
        char c = text_[pos_];
        if (c == '{') {
            // Comment: skip to matching '}' (no nesting, per thesis).
            while (pos_ < text_.size() && text_[pos_] != '}')
                advanceOne();
            if (pos_ < text_.size())
                advanceOne(); // the '}'
        } else if (isWhitespace(c)) {
            advanceOne();
        } else {
            break;
        }
    }
}

std::string
Lexer::next()
{
    if (pendingDot_) {
        pendingDot_ = false;
        return ".";
    }

    skipWhitespace();
    tokenLine_ = line_;

    std::string token;
    while (pos_ < text_.size()) {
        char c = text_[pos_];
        if (isWhitespace(c) || c == '{')
            break;
        if (expand_ && c == '~') {
            advanceOne();
            size_t start = pos_;
            while (pos_ < text_.size() &&
                   (isLetter(text_[pos_]) || isDigit(text_[pos_]))) {
                advanceOne();
            }
            std::string_view name(text_.data() + start, pos_ - start);
            token += macros_.lookup(name);
        } else {
            token += c;
            advanceOne();
        }
    }

    // Split a trailing '.' off multi-character tokens, but keep
    // intermediate dots (subfields) intact: "count." -> "count", ".".
    if (token.size() > 1 && token.back() == '.') {
        token.pop_back();
        pendingDot_ = true;
    }
    return token;
}

} // namespace asim
