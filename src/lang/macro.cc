#include "lang/macro.hh"

#include "support/logging.hh"
#include "support/text.hh"

namespace asim {

void
MacroTable::define(std::string_view name, std::string_view body)
{
    if (!isValidName(name)) {
        throw SpecError("Error. Macro name " + std::string(name) +
                        " invalid, use letters and numbers only.");
    }
    if (defined(name)) {
        throw SpecError("Error. Macro " + std::string(name) +
                        " defined twice.");
    }
    table_.emplace(std::string(name), std::string(body));
}

bool
MacroTable::defined(std::string_view name) const
{
    return table_.find(name) != table_.end();
}

const std::string &
MacroTable::lookup(std::string_view name) const
{
    auto it = table_.find(name);
    if (it == table_.end()) {
        throw SpecError("Error. Macro <" + std::string(name) +
                        "> not defined.");
    }
    return it->second;
}

std::string
MacroTable::expand(std::string_view token) const
{
    std::string out;
    size_t i = 0;
    while (i < token.size()) {
        if (token[i] != '~') {
            out += token[i++];
            continue;
        }
        ++i;
        size_t start = i;
        while (i < token.size() &&
               (isLetter(token[i]) || isDigit(token[i]))) {
            ++i;
        }
        out += lookup(token.substr(start, i - start));
    }
    return out;
}

} // namespace asim
