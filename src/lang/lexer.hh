/**
 * @file
 * Token scanner for ASIM II specifications (thesis `gettoken`).
 *
 * Tokens are maximal runs of non-whitespace characters. Whitespace is
 * blank, tab, CR, LF; `{ ... }` comments act as whitespace anywhere
 * (nesting is not supported, matching the thesis). A trailing `.` on a
 * token longer than one character is split off as its own token (this
 * is how `count.` ends the declaration list while `count.3` stays one
 * token — the thesis splits the final '.' and the parser relies on it).
 * Macro references `~name` are substituted in place when expansion is
 * enabled.
 */

#ifndef ASIM_LANG_LEXER_HH
#define ASIM_LANG_LEXER_HH

#include <string>
#include <string_view>

#include "lang/macro.hh"

namespace asim {

/** Streaming tokenizer over a whole specification text. */
class Lexer
{
  public:
    explicit Lexer(std::string_view text);

    /** Read the mandatory first line (the `#` comment). Must be called
     *  before the first next(). Returns the raw line. */
    std::string readCommentLine();

    /** Next token; empty string at end of input. */
    std::string next();

    /** Enable/disable `~name` macro substitution (the thesis disables
     *  it while reading a macro definition's name). */
    void setExpandMacros(bool on) { expand_ = on; }

    /** The macro table used for substitution. */
    MacroTable &macros() { return macros_; }
    const MacroTable &macros() const { return macros_; }

    /** 1-based line number of the most recently returned token. */
    int line() const { return tokenLine_; }

  private:
    bool isWhitespace(char c) const;
    void skipWhitespace();

    /** Consume one character, maintaining the line counter. */
    void
    advanceOne()
    {
        if (pos_ < text_.size() && text_[pos_] == '\n')
            ++line_;
        ++pos_;
    }

    std::string text_;
    size_t pos_ = 0;
    int line_ = 1;
    int tokenLine_ = 1;
    bool expand_ = false;
    MacroTable macros_;

    /** Pending `.` split off the previous token. */
    bool pendingDot_ = false;
};

} // namespace asim

#endif // ASIM_LANG_LEXER_HH
