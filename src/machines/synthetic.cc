#include "machines/synthetic.hh"

#include <algorithm>
#include <random>

#include "lang/writer.hh"
#include "support/bitops.hh"

namespace asim {

namespace {

class Generator
{
  public:
    explicit Generator(const SyntheticOptions &opts)
        : opts_(opts), rng_(opts.seed)
    {}

    Spec
    run()
    {
        spec_.comment = " synthetic spec seed " +
                        std::to_string(opts_.seed);
        spec_.cycles = 64;
        spec_.cyclesSpecified = true;

        // Memories first so combinational components can reference
        // their latches from the start.
        for (int i = 0; i < opts_.memories; ++i)
            addMemoryName();
        int combTotal = opts_.alus + opts_.selectors;
        std::vector<CompKind> kinds;
        for (int i = 0; i < opts_.alus; ++i)
            kinds.push_back(CompKind::Alu);
        for (int i = 0; i < opts_.selectors; ++i)
            kinds.push_back(CompKind::Selector);
        std::shuffle(kinds.begin(), kinds.end(), rng_);

        for (int i = 0; i < combTotal; ++i) {
            if (kinds[i] == CompKind::Alu)
                addAlu(i);
            else
                addSelector(i);
        }
        for (int i = 0; i < opts_.memories; ++i)
            defineMemory(i);

        // Declarations, with a random subset starred.
        for (const auto &c : spec_.comps) {
            DeclName d;
            d.name = c.name;
            d.traced = pct(opts_.tracedPercent);
            spec_.decls.push_back(std::move(d));
        }
        return std::move(spec_);
    }

  private:
    bool pct(int p) { return static_cast<int>(rng_() % 100) < p; }

    int
    uniform(int lo, int hi)
    {
        return lo + static_cast<int>(rng_() % (hi - lo + 1));
    }

    Term
    constTerm(int width)
    {
        Term t;
        t.kind = Term::Kind::Const;
        t.value = uniform(0, (1 << std::min(width, 16)) - 1);
        t.width = width;
        return t;
    }

    /** A reference term with an explicit subfield of `width` bits. */
    Term
    refTerm(int width)
    {
        Term t;
        t.kind = Term::Kind::Ref;
        // Choose among already-defined combinational components and
        // any memory (memory latches never create cycles).
        if (!combNames_.empty() && (memNames_.empty() || pct(60))) {
            t.ref = combNames_[uniform(
                0, static_cast<int>(combNames_.size()) - 1)];
        } else if (!memNames_.empty()) {
            t.ref = memNames_[uniform(
                0, static_cast<int>(memNames_.size()) - 1)];
        } else {
            return constTerm(width);
        }
        t.from = uniform(0, 8);
        t.to = t.from + width - 1;
        if (width == 1 && pct(50))
            t.to = -1; // single-bit form `name.f`
        return t;
    }

    /** Random expression totalling exactly `width` bits. */
    Expr
    expr(int width)
    {
        Expr e;
        int remaining = width;
        while (remaining > 0) {
            int w = uniform(1, std::min(remaining, 6));
            if (remaining - w == 1)
                w = remaining; // avoid awkward 1-bit tails sometimes
            switch (uniform(0, 2)) {
              case 0:
                e.terms.push_back(constTerm(w));
                break;
              case 1: {
                Term t;
                t.kind = Term::Kind::BitString;
                t.width = w;
                t.value = uniform(0, (1 << w) - 1);
                e.terms.push_back(t);
                break;
              }
              default:
                e.terms.push_back(refTerm(w));
                break;
            }
            remaining -= w;
        }
        e.source = exprToString(e);
        return e;
    }

    void
    addMemoryName()
    {
        memNames_.push_back("mem" +
                            std::to_string(memNames_.size()));
    }

    void
    addAlu(int i)
    {
        Component c;
        c.kind = CompKind::Alu;
        c.name = "alu" + std::to_string(i);
        if (pct(opts_.dynamicFunctPercent) &&
            (!combNames_.empty() || !memNames_.empty())) {
            // Dynamic function: a 3-bit subfield, always in 0..7.
            Expr f;
            f.terms.push_back(refTerm(3));
            f.source = exprToString(f);
            c.funct = f;
        } else {
            Expr f;
            Term t;
            t.kind = Term::Kind::Const;
            t.value = uniform(0, 13);
            t.width = -1;
            f.terms.push_back(t);
            f.source = exprToString(f);
            c.funct = f;
        }
        c.left = expr(uniform(1, 12));
        c.right = expr(uniform(1, 12));
        spec_.comps.push_back(c);
        combNames_.push_back(c.name);
    }

    void
    addSelector(int i)
    {
        Component c;
        c.kind = CompKind::Selector;
        c.name = "sel" + std::to_string(i);
        // k-bit index, 2^k cases: always in range.
        int k = uniform(1, 3);
        Expr s;
        s.terms.push_back(refTerm(k));
        if (s.terms[0].kind != Term::Kind::Ref) {
            // refTerm degraded to a constant (no components yet);
            // constant index is masked to k bits and stays in range.
            s.terms[0].width = k;
        }
        s.source = exprToString(s);
        c.select = s;
        for (int j = 0; j < (1 << k); ++j)
            c.cases.push_back(expr(uniform(1, 10)));
        spec_.comps.push_back(c);
        combNames_.push_back(c.name);
    }

    void
    defineMemory(int i)
    {
        Component c;
        c.kind = CompKind::Memory;
        c.name = memNames_[i];
        int bits = uniform(2, 6);
        c.memSize = 1 << bits;
        // Address: subfield of `bits` bits — always in range.
        c.addr = expr(bits);
        c.data = expr(uniform(1, 12));
        // Operation: constants (read/write with optional trace bits)
        // or a dynamic 2-bit field; I/O ops only when allowed.
        int roll = uniform(0, 9);
        if (roll < 3) {
            c.opn = expr(2); // dynamic 0..3 (includes I/O)
            if (!opts_.withIo) {
                // Constrain to 1 bit: read/write only.
                c.opn = expr(1);
            }
        } else {
            static const int32_t kOps[] = {0, 1, 1, 0, 5, 9, 1, 0, 2, 3};
            int32_t op = kOps[roll];
            if (!opts_.withIo && (op == 2 || op == 3))
                op = land(op, 1);
            Expr f;
            Term t;
            t.kind = Term::Kind::Const;
            t.value = op;
            t.width = -1;
            f.terms.push_back(t);
            f.source = exprToString(f);
            c.opn = f;
        }
        if (pct(40)) {
            for (int64_t j = 0; j < c.memSize; ++j)
                c.init.push_back(uniform(0, 4095));
        }
        spec_.comps.push_back(c);
    }

    SyntheticOptions opts_;
    std::mt19937 rng_;
    Spec spec_;
    std::vector<std::string> combNames_;
    std::vector<std::string> memNames_;
};

} // namespace

Spec
generateSynthetic(const SyntheticOptions &opts)
{
    return Generator(opts).run();
}

std::string
generateSyntheticText(const SyntheticOptions &opts)
{
    return writeSpec(generateSynthetic(opts));
}

} // namespace asim
