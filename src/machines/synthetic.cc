#include "machines/synthetic.hh"

#include <algorithm>
#include <random>
#include <string>

#include "lang/writer.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace asim {

namespace {

class Generator
{
  public:
    explicit Generator(const SyntheticOptions &opts)
        : opts_(opts), rng_(opts.seed)
    {}

    Spec
    run()
    {
        spec_.comment = " synthetic spec seed " +
                        std::to_string(opts_.seed);
        spec_.cycles = 64;
        spec_.cyclesSpecified = true;

        // Memories first so combinational components can reference
        // their latches from the start.
        for (int i = 0; i < opts_.memories; ++i)
            addMemoryName();
        int combTotal = opts_.alus + opts_.selectors;
        std::vector<CompKind> kinds;
        for (int i = 0; i < opts_.alus; ++i)
            kinds.push_back(CompKind::Alu);
        for (int i = 0; i < opts_.selectors; ++i)
            kinds.push_back(CompKind::Selector);
        std::shuffle(kinds.begin(), kinds.end(), rng_);

        if (opts_.layers > 0) {
            // Layered mode: fix each component's layer/column before
            // defining it so reference choices can honor the depth
            // and locality knobs.
            layers_ = std::min(opts_.layers, std::max(combTotal, 1));
            layerWidth_ =
                (combTotal + layers_ - 1) / std::max(layers_, 1);
            prevLayer_.clear();
            curLayer_.clear();
        }

        for (int i = 0; i < combTotal; ++i) {
            if (opts_.layers > 0) {
                layer_ = i / layerWidth_;
                col_ = i % layerWidth_;
                if (col_ == 0) {
                    if (i > 0) {
                        prevLayer_ = std::move(curLayer_);
                        curLayer_.clear();
                    }
                    layerStart_ = static_cast<int>(combNames_.size());
                }
            }
            if (kinds[i] == CompKind::Alu)
                addAlu(i);
            else
                addSelector(i);
            if (opts_.layers > 0)
                curLayer_.push_back(spec_.comps.back().name);
        }
        if (opts_.layers > 0) {
            // Memories sit conceptually below the last layer: their
            // (latched, order-free) inputs sample the final outputs.
            prevLayer_ = curLayer_;
            layer_ = layers_;
            layerStart_ = static_cast<int>(combNames_.size());
        }
        for (int i = 0; i < opts_.memories; ++i)
            defineMemory(i);

        // Declarations, with a random subset starred.
        for (const auto &c : spec_.comps) {
            DeclName d;
            d.name = c.name;
            d.traced = pct(opts_.tracedPercent);
            spec_.decls.push_back(std::move(d));
        }
        return std::move(spec_);
    }

  private:
    bool pct(int p) { return static_cast<int>(rng_() % 100) < p; }

    int
    uniform(int lo, int hi)
    {
        return lo + static_cast<int>(rng_() % (hi - lo + 1));
    }

    Term
    constTerm(int width)
    {
        Term t;
        t.kind = Term::Kind::Const;
        t.value = uniform(0, (1 << std::min(width, 16)) - 1);
        t.width = width;
        return t;
    }

    /** Layered mode: pick the producer by the depth/locality knobs —
     *  mostly the same column one layer up, otherwise any strictly
     *  earlier layer or a memory latch. Never the current layer, so
     *  the network's dependency depth is exactly the layer count. */
    Term
    layeredRef(int width)
    {
        Term t;
        t.kind = Term::Kind::Ref;
        if (layer_ == 0 || layerStart_ == 0) {
            if (memNames_.empty() || !pct(70))
                return constTerm(width);
            t.ref = memNames_[uniform(
                0, static_cast<int>(memNames_.size()) - 1)];
        } else if (!prevLayer_.empty() &&
                   pct(opts_.localityPercent)) {
            t.ref = prevLayer_[col_ %
                               static_cast<int>(prevLayer_.size())];
        } else if (!memNames_.empty() && pct(10)) {
            t.ref = memNames_[uniform(
                0, static_cast<int>(memNames_.size()) - 1)];
        } else {
            t.ref = combNames_[uniform(0, layerStart_ - 1)];
        }
        t.from = uniform(0, 8);
        t.to = t.from + width - 1;
        if (width == 1 && pct(50))
            t.to = -1; // single-bit form `name.f`
        return t;
    }

    /** A reference term with an explicit subfield of `width` bits. */
    Term
    refTerm(int width)
    {
        if (opts_.layers > 0)
            return layeredRef(width);
        Term t;
        t.kind = Term::Kind::Ref;
        // Choose among already-defined combinational components and
        // any memory (memory latches never create cycles).
        if (!combNames_.empty() && (memNames_.empty() || pct(60))) {
            t.ref = combNames_[uniform(
                0, static_cast<int>(combNames_.size()) - 1)];
        } else if (!memNames_.empty()) {
            t.ref = memNames_[uniform(
                0, static_cast<int>(memNames_.size()) - 1)];
        } else {
            return constTerm(width);
        }
        t.from = uniform(0, 8);
        t.to = t.from + width - 1;
        if (width == 1 && pct(50))
            t.to = -1; // single-bit form `name.f`
        return t;
    }

    /** Random expression totalling exactly `width` bits. */
    Expr
    expr(int width)
    {
        Expr e;
        int remaining = width;
        while (remaining > 0) {
            int w = uniform(1, std::min(remaining, 6));
            if (remaining - w == 1)
                w = remaining; // avoid awkward 1-bit tails sometimes
            switch (uniform(0, 2)) {
              case 0:
                e.terms.push_back(constTerm(w));
                break;
              case 1: {
                Term t;
                t.kind = Term::Kind::BitString;
                t.width = w;
                t.value = uniform(0, (1 << w) - 1);
                e.terms.push_back(t);
                break;
              }
              default:
                e.terms.push_back(refTerm(w));
                break;
            }
            remaining -= w;
        }
        e.source = exprToString(e);
        return e;
    }

    void
    addMemoryName()
    {
        memNames_.push_back("mem" +
                            std::to_string(memNames_.size()));
    }

    void
    addAlu(int i)
    {
        Component c;
        c.kind = CompKind::Alu;
        c.name = "alu" + std::to_string(i);
        if (pct(opts_.dynamicFunctPercent) &&
            (!combNames_.empty() || !memNames_.empty())) {
            // Dynamic function: a 3-bit subfield, always in 0..7.
            Expr f;
            f.terms.push_back(refTerm(3));
            f.source = exprToString(f);
            c.funct = f;
        } else {
            Expr f;
            Term t;
            t.kind = Term::Kind::Const;
            t.value = uniform(0, 13);
            t.width = -1;
            f.terms.push_back(t);
            f.source = exprToString(f);
            c.funct = f;
        }
        c.left = expr(uniform(1, 12));
        c.right = expr(uniform(1, 12));
        spec_.comps.push_back(c);
        combNames_.push_back(c.name);
    }

    void
    addSelector(int i)
    {
        Component c;
        c.kind = CompKind::Selector;
        c.name = "sel" + std::to_string(i);
        // k-bit index, 2^k cases: always in range.
        int k = uniform(1, 3);
        Expr s;
        s.terms.push_back(refTerm(k));
        if (s.terms[0].kind != Term::Kind::Ref) {
            // refTerm degraded to a constant (no components yet);
            // constant index is masked to k bits and stays in range.
            s.terms[0].width = k;
        }
        s.source = exprToString(s);
        c.select = s;
        for (int j = 0; j < (1 << k); ++j)
            c.cases.push_back(expr(uniform(1, 10)));
        spec_.comps.push_back(c);
        combNames_.push_back(c.name);
    }

    void
    defineMemory(int i)
    {
        Component c;
        c.kind = CompKind::Memory;
        c.name = memNames_[i];
        int bits = uniform(2, 6);
        c.memSize = 1 << bits;
        // Address: subfield of `bits` bits — always in range.
        c.addr = expr(bits);
        c.data = expr(uniform(1, 12));
        // Operation: constants (read/write with optional trace bits)
        // or a dynamic 2-bit field; I/O ops only when allowed.
        int roll = uniform(0, 9);
        if (roll < 3) {
            c.opn = expr(2); // dynamic 0..3 (includes I/O)
            if (!opts_.withIo) {
                // Constrain to 1 bit: read/write only.
                c.opn = expr(1);
            }
        } else {
            static const int32_t kOps[] = {0, 1, 1, 0, 5, 9, 1, 0, 2, 3};
            int32_t op = kOps[roll];
            if (!opts_.withIo && (op == 2 || op == 3))
                op = land(op, 1);
            Expr f;
            Term t;
            t.kind = Term::Kind::Const;
            t.value = op;
            t.width = -1;
            f.terms.push_back(t);
            f.source = exprToString(f);
            c.opn = f;
        }
        if (pct(40)) {
            for (int64_t j = 0; j < c.memSize; ++j)
                c.init.push_back(uniform(0, 4095));
        }
        spec_.comps.push_back(c);
    }

    SyntheticOptions opts_;
    std::mt19937 rng_;
    Spec spec_;
    std::vector<std::string> combNames_;
    std::vector<std::string> memNames_;

    /// @{ Layered-mode bookkeeping (opts_.layers > 0).
    int layers_ = 0;       ///< effective layer count
    int layerWidth_ = 1;   ///< components per layer
    int layer_ = 0;        ///< layer being defined
    int col_ = 0;          ///< column within the layer
    int layerStart_ = 0;   ///< combNames_ size when this layer began
    std::vector<std::string> prevLayer_;
    std::vector<std::string> curLayer_;
    /// @}
};

} // namespace

Spec
generateSynthetic(const SyntheticOptions &opts)
{
    return Generator(opts).run();
}

std::string
generateSyntheticText(const SyntheticOptions &opts)
{
    return writeSpec(generateSynthetic(opts));
}

SyntheticOptions
syntheticPreset(const std::string &name)
{
    int64_t total = -1;
    if (name == "1k") {
        total = 1000;
    } else if (name == "10k") {
        total = 10000;
    } else if (name == "100k") {
        total = 100000;
    } else if (name == "1m" || name == "1M") {
        total = 1000000;
    } else {
        try {
            size_t pos = 0;
            total = std::stoll(name, &pos);
            if (pos != name.size())
                total = -1;
        } catch (...) {
            total = -1;
        }
    }
    if (total < 1 || total > 4000000) {
        throw SpecError("Error. Unknown synthetic preset <" + name +
                        "> (use 1k, 10k, 100k, 1m, or a component "
                        "count up to 4000000).");
    }

    SyntheticOptions o;
    // Mostly ALUs: selectors carry several case expressions each and
    // would otherwise dominate both resolve time and spec size.
    o.selectors = static_cast<int>(total / 8);
    o.alus = static_cast<int>(total) - o.selectors;
    o.memories = total >= 1000 ? 8 : 2;
    o.seed = 0xA51Bu ^ static_cast<uint32_t>(total);
    // I/O-free and untraced: every engine and thread count replays
    // the same run with no script, and benchmarks measure the
    // datapath rather than the trace formatter.
    o.withIo = false;
    o.dynamicFunctPercent = 20;
    o.tracedPercent = 0;
    o.layers = 16;
    o.localityPercent = 90;
    return o;
}

} // namespace asim
