/**
 * @file
 * Random-specification generator.
 *
 * Produces valid, acyclic, runtime-safe specifications for the
 * engine-equivalence property tests (interpreter == VM == generated
 * C++) and for the scaling benchmarks. Safety by construction:
 * selector indexes are subfields narrower than the case count, memory
 * addresses are subfields narrower than the memory size, and dynamic
 * ALU functions are 3-bit subfields (0..7, all valid).
 */

#ifndef ASIM_MACHINES_SYNTHETIC_HH
#define ASIM_MACHINES_SYNTHETIC_HH

#include <cstdint>
#include <string>

#include "lang/ast.hh"

namespace asim {

/** Generation parameters. */
struct SyntheticOptions
{
    int alus = 8;
    int selectors = 4;
    int memories = 3;
    uint32_t seed = 1;

    /** Allow input/output memory operations (feed a VectorIo). */
    bool withIo = true;

    /** Fraction (0..100) of ALUs with a non-constant function. */
    int dynamicFunctPercent = 25;

    /** Star roughly this fraction (0..100) of components. */
    int tracedPercent = 30;

    /**
     * When > 0, arrange the combinational components into this many
     * dependency layers: a component in layer k only references
     * components in layers < k (plus memory latches), so the
     * dependency depth of the network is exactly the layer count —
     * the scaling corpus' depth knob. 0 keeps the legacy growth
     * (references to any earlier component).
     */
    int layers = 0;

    /**
     * Layered mode only: the chance (0..100) that a reference stays
     * in the producer "column" directly above the component. High
     * locality yields many independent column chains (the partition
     * component-packer's best case); 0 wires layers together almost
     * randomly, producing one giant connected component with heavy
     * cross-partition traffic (the levelized scheduler's worst
     * case).
     */
    int localityPercent = 90;
};

/** Generate a specification AST. */
Spec generateSynthetic(const SyntheticOptions &opts);

/** Generate and serialize (exercises the full text pipeline). */
std::string generateSyntheticText(const SyntheticOptions &opts);

/**
 * Scaling-corpus presets for `asim-run --synthetic=` and the
 * partitioning benchmarks: "1k", "10k", "100k", "1m" (approximate
 * combinational component counts), or any plain integer. Layered
 * (depth 16, 90% locality), I/O-free and untraced so every engine
 * and thread count produces identical runs. @throws SpecError on an
 * unknown preset name */
SyntheticOptions syntheticPreset(const std::string &name);

} // namespace asim

#endif // ASIM_MACHINES_SYNTHETIC_HH
