/**
 * @file
 * Random-specification generator.
 *
 * Produces valid, acyclic, runtime-safe specifications for the
 * engine-equivalence property tests (interpreter == VM == generated
 * C++) and for the scaling benchmarks. Safety by construction:
 * selector indexes are subfields narrower than the case count, memory
 * addresses are subfields narrower than the memory size, and dynamic
 * ALU functions are 3-bit subfields (0..7, all valid).
 */

#ifndef ASIM_MACHINES_SYNTHETIC_HH
#define ASIM_MACHINES_SYNTHETIC_HH

#include <cstdint>
#include <string>

#include "lang/ast.hh"

namespace asim {

/** Generation parameters. */
struct SyntheticOptions
{
    int alus = 8;
    int selectors = 4;
    int memories = 3;
    uint32_t seed = 1;

    /** Allow input/output memory operations (feed a VectorIo). */
    bool withIo = true;

    /** Fraction (0..100) of ALUs with a non-constant function. */
    int dynamicFunctPercent = 25;

    /** Star roughly this fraction (0..100) of components. */
    int tracedPercent = 30;
};

/** Generate a specification AST. */
Spec generateSynthetic(const SyntheticOptions &opts);

/** Generate and serialize (exercises the full text pipeline). */
std::string generateSyntheticText(const SyntheticOptions &opts);

} // namespace asim

#endif // ASIM_MACHINES_SYNTHETIC_HH
