/**
 * @file
 * The Itty Bitty Stack Machine (thesis Appendix D).
 *
 * A microcoded stack computer built purely from ASIM II primitives,
 * structured like the thesis machine: a state register stepping
 * through a microcode ROM (a constant selector), a single-ported
 * stack/data RAM with left/right operand latches feeding one ALU, a
 * program ROM with an instruction register, and memory-mapped output.
 * The microcode ROM contents are produced by the builder in this
 * module (the thesis' hand-assembled ROM survives only as damaged OCR,
 * so we regenerate an equivalent machine and verify it end-to-end: it
 * must actually print the primes).
 *
 * ISA (one word per opcode; PUSHI/BZ/BR take an operand word):
 *
 *    0 NOP   1 HALT   2 PUSHI n   3 LOAD   4 STORE   5 ADD   6 SUB
 *    7 MUL   8 AND    9 OR       10 XOR   11 EQ     12 LT   13 NOT
 *   14 NEG  15 DUP   16 SWAP     17 DROP  18 BZ a   19 BR a 20 OUT
 *   21 IN
 *
 * Stack discipline: LOAD pops an address and pushes ram[addr]; STORE
 * pops an address, then a value, and writes it; binary operators pop
 * right then left and push op(left, right); BZ pops the condition and
 * branches to the absolute operand address when it is zero; OUT pops
 * and prints an integer (memory-mapped output at I/O address 1).
 */

#ifndef ASIM_MACHINES_STACK_MACHINE_HH
#define ASIM_MACHINES_STACK_MACHINE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace asim {

/** Stack machine opcodes. */
enum StackOp : int32_t
{
    kOpNop = 0,
    kOpHalt = 1,
    kOpPushi = 2,
    kOpLoad = 3,
    kOpStore = 4,
    kOpAdd = 5,
    kOpSub = 6,
    kOpMul = 7,
    kOpAnd = 8,
    kOpOr = 9,
    kOpXor = 10,
    kOpEq = 11,
    kOpLt = 12,
    kOpNot = 13,
    kOpNeg = 14,
    kOpDup = 15,
    kOpSwap = 16,
    kOpDrop = 17,
    kOpBz = 18,
    kOpBr = 19,
    kOpOut = 20,
    kOpIn = 21,

    kStackOpCount = 22,
};

/** RAM size of the stack machine (stack + globals + arrays). */
constexpr int kStackRamSize = 256;

/** Initial stack pointer (the stack grows upward from here). */
constexpr int kStackBase = 64;

/** The microcode halt state: reaching it means the program executed
 *  HALT (Engine::value("state") == kStackHaltState). */
constexpr int32_t kStackHaltState = 3;

/** Label-based assembler for the stack ISA. */
class StackAssembler
{
  public:
    using Label = int;

    /// @{ Instructions
    void nop() { emit(kOpNop); }
    void halt() { emit(kOpHalt); }
    void pushi(int32_t v);
    void load() { emit(kOpLoad); }
    void store() { emit(kOpStore); }
    void add() { emit(kOpAdd); }
    void sub() { emit(kOpSub); }
    void mul() { emit(kOpMul); }
    void bitAnd() { emit(kOpAnd); }
    void bitOr() { emit(kOpOr); }
    void bitXor() { emit(kOpXor); }
    void eq() { emit(kOpEq); }
    void lt() { emit(kOpLt); }
    void bitNot() { emit(kOpNot); }
    void neg() { emit(kOpNeg); }
    void dup() { emit(kOpDup); }
    void swap() { emit(kOpSwap); }
    void drop() { emit(kOpDrop); }
    void bz(Label l);
    void br(Label l);
    void out() { emit(kOpOut); }
    void in() { emit(kOpIn); }
    /// @}

    /** Allocate an unbound label. */
    Label newLabel();

    /** Bind `l` to the current location. */
    void bind(Label l);

    /** Current location counter. */
    int here() const { return static_cast<int>(words_.size()); }

    /** Finish: resolve all label fixups and return the program image.
     *  @throws SpecError on an unbound label */
    std::vector<int32_t> assemble();

  private:
    void emit(int32_t w) { words_.push_back(w); }

    std::vector<int32_t> words_;
    std::vector<int32_t> labels_;           ///< label -> address (-1)
    std::vector<std::pair<int, int>> fixups_; ///< (word index, label)
};

/**
 * Render the complete stack machine specification.
 *
 * @param program assembled program image (padded internally to a
 *        power of two for the ROM)
 * @param cycles `=` directive value
 * @param traced star the architectural registers (state, pc, sp, ir)
 *        for per-cycle tracing
 */
std::string stackMachineSpec(const std::vector<int32_t> &program,
                             int64_t cycles, bool traced = false);

/**
 * Assemble the Sieve of Eratosthenes (thesis Appendix D workload).
 *
 * Sieves the odd numbers 3, 5, ..., 2*size+3, printing each prime via
 * memory-mapped output, then the count of primes, then halting.
 */
std::vector<int32_t> sieveProgram(int size);

/** Host-side reference: the primes the sieve should print. */
std::vector<int32_t> sieveReference(int size);

/** Thesis Figure 5.1 cycle budget ("5545 cycles"). */
constexpr int64_t kThesisSieveCycles = 5545;

/** Sieve size used in the reproduction benches; sized so the machine
 *  is still busy at the thesis' 5545-cycle budget. */
constexpr int kBenchSieveSize = 20;

} // namespace asim

#endif // ASIM_MACHINES_STACK_MACHINE_HH
