/**
 * @file
 * The tiny 10-bit computer of thesis Appendix F.
 *
 * A 10-bit-word accumulator machine with five instructions — load,
 * store, branch, branch-on-borrow, subtract — and 128 words of unified
 * program/data memory, built (like the thesis version) purely from
 * ASIM II primitives: a 2-bit phase counter, an instruction register,
 * an opcode-decode ROM expressed as a constant selector, and a
 * subtract ALU with a borrow flip-flop.
 *
 * Instruction format: 3-bit opcode (bits 7..9), 7-bit address
 * (bits 0..6). Opcodes follow the thesis macro values (~LD 256 etc.):
 *
 *     2 LD a   ac <- mem[a]
 *     3 ST a   mem[a] <- ac
 *     4 BB a   if borrow then pc <- a
 *     5 BR a   pc <- a
 *     6 SU a   ac <- ac - mem[a]; borrow <- (ac < mem[a])
 *
 * Every instruction takes four phases: fetch issue, instruction load,
 * operand access / pc update, accumulator writeback.
 */

#ifndef ASIM_MACHINES_TINY_COMPUTER_HH
#define ASIM_MACHINES_TINY_COMPUTER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace asim {

/** Number of memory words in the tiny computer. */
constexpr int kTinyMemWords = 128;

/** Cycles per instruction (four phases). */
constexpr int kTinyPhases = 4;

/** Assembler for the five-instruction ISA. */
class TinyAssembler
{
  public:
    /// @{ Emit one instruction; returns its word address.
    int ld(int addr) { return emit(2, addr); }
    int st(int addr) { return emit(3, addr); }
    int bb(int addr) { return emit(4, addr); }
    int br(int addr) { return emit(5, addr); }
    int su(int addr) { return emit(6, addr); }
    /// @}

    /** Emit a raw data word; returns its address. */
    int word(int32_t v);

    /** Current location counter. */
    int here() const { return static_cast<int>(words_.size()); }

    /** Reserve a cell initialized to `v` and return its address. */
    int cell(int32_t v) { return word(v); }

    /** Patch the address field of the instruction at `at`. */
    void patchAddr(int at, int addr);

    /** The memory image, padded with zeros to kTinyMemWords. */
    std::vector<int32_t> image() const;

  private:
    int emit(int opcode, int addr);
    std::vector<int32_t> words_;
};

/** Render the complete tiny-computer specification around a memory
 *  image. @param cycles `=` directive value */
std::string tinyComputerSpec(const std::vector<int32_t> &memImage,
                             int64_t cycles);

/** Demo program: computes `a mod b` by repeated subtraction; the
 *  result is left in the cell returned via `resultAddr`. */
std::vector<int32_t> tinyModProgram(int32_t a, int32_t b,
                                    int &resultAddr);

/** Demo program: computes `a * b` by repeated addition (synthesized
 *  from subtract: x + y == x - (0 - y)); result via `resultAddr`. */
std::vector<int32_t> tinyMulProgram(int32_t a, int32_t b,
                                    int &resultAddr);

} // namespace asim

#endif // ASIM_MACHINES_TINY_COMPUTER_HH
