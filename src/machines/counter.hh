/**
 * @file
 * Small introductory machines: an n-bit counter and a traffic-light
 * controller. The thesis pitches ASIM II as covering "many different
 * hardware projects ranging from a simple counter to a stack machine"
 * (§3.2) — these are the simple-counter end of that range.
 */

#ifndef ASIM_MACHINES_COUNTER_HH
#define ASIM_MACHINES_COUNTER_HH

#include <cstdint>
#include <string>

namespace asim {

/**
 * An n-bit wrap-around counter.
 *
 * Components: one ALU (`next = count + 1`, masked to `bits`) and one
 * single-cell memory holding the count.
 *
 * @param bits counter width (1..30)
 * @param cycles value for the `=` directive
 */
std::string counterSpec(int bits, int64_t cycles);

/**
 * A three-phase traffic light: green (4 cycles), yellow (1), red (3).
 *
 * Demonstrates selectors as next-state logic: a countdown timer, a
 * phase register, and selector-based reload values.
 *
 * @param cycles value for the `=` directive
 */
std::string trafficLightSpec(int64_t cycles);

} // namespace asim

#endif // ASIM_MACHINES_COUNTER_HH
