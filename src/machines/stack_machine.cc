#include "machines/stack_machine.hh"

#include <sstream>

#include "support/logging.hh"

namespace asim {

namespace {

/**
 * Microcode control word. Field layout (bits of the `uc` selector
 * value; every field is read through an explicit subfield in the
 * specification, so this enum is the single source of truth):
 *
 *   0-1   RAMOP  0 read / 1 write / 2 input / 3 output
 *   2-4   ASEL   ram address: 0 sp / 1 sp-1 / 2 sp-2 / 3 right / 4 one
 *   5-7   DSEL   ram data: 0 alu / 1 left / 2 right / 3 prog / 4 ram
 *   8     SPWR   stack pointer write enable
 *   9     SPSEL  0 sp+1 / 1 sp-1
 *   10    PCWR   program counter write enable
 *   11-12 PCSEL  0 pc+1 / 1 bz target / 2 operand (absolute)
 *   13    IRWR   instruction register load
 *   14    LWR    left operand latch load
 *   15    RWR    right operand latch load
 *   16    LZ     alu left input forced to 0 (unary negate)
 *   18-19 NS     next state: 0 seq / 1 dispatch / 2 fetch / 3 halt
 */
struct Uc
{
    int32_t w = 0;

    Uc &ramop(int v) { w |= v << 0; return *this; }
    Uc &asel(int v) { w |= v << 2; return *this; }
    Uc &dsel(int v) { w |= v << 5; return *this; }
    Uc &spInc() { w |= 1 << 8; return *this; }
    Uc &spDec() { w |= (1 << 8) | (1 << 9); return *this; }
    Uc &pc(int sel) { w |= (1 << 10) | (sel << 11); return *this; }
    Uc &irwr() { w |= 1 << 13; return *this; }
    Uc &lwr() { w |= 1 << 14; return *this; }
    Uc &rwr() { w |= 1 << 15; return *this; }
    Uc &lz() { w |= 1 << 16; return *this; }
    Uc &seq() { return *this; }                    // NS = 0
    Uc &dispatch() { w |= 1 << 18; return *this; } // NS = 1
    Uc &fetch() { w |= 2 << 18; return *this; }    // NS = 2
    Uc &halt() { w |= 3 << 18; return *this; }     // NS = 3
};

// ASEL values
constexpr int kAselSp = 0;
constexpr int kAselSpm1 = 1;
constexpr int kAselSpm2 = 2;
constexpr int kAselRight = 3;
constexpr int kAselOne = 4;

// DSEL values
constexpr int kDselAlu = 0;
constexpr int kDselLeft = 1;
constexpr int kDselRight = 2;
constexpr int kDselProg = 3;
constexpr int kDselRam = 4;

// PCSEL values
constexpr int kPcInc = 0;
constexpr int kPcBz = 1;
constexpr int kPcProg = 2;

// RAMOP values
constexpr int kRamRead = 0;
constexpr int kRamWrite = 1;
constexpr int kRamInput = 2;
constexpr int kRamOutput = 3;

constexpr int kDispatchBase = 16;
constexpr int kSlotStates = 4;
constexpr int kNumStates = kDispatchBase + 32 * kSlotStates;

/**
 * Build the microcode ROM: common prologue states 0..3, then a 4-state
 * slot per opcode at 16 + op*4.
 *
 * Timing contract (from the ASIM II cycle semantics): a RAM read
 * issued in state T lands in the RAM output latch at the *end* of T;
 * LWR/RWR in state T+1 capture it; combinational values (alu, operand
 * word) used as RAM write data in state T must already rest on latches
 * written at the end of T-1.
 */
std::vector<int32_t>
buildMicrocode()
{
    std::vector<int32_t> rom(kNumStates, Uc{}.halt().w);

    auto slot = [&](int op) { return kDispatchBase + op * kSlotStates; };
    auto set = [&](int state, Uc uc) { rom.at(state) = uc.w; };

    // Common prologue.
    set(0, Uc{}.seq());                 // S0: fetch wait (prog reads pc)
    set(1, Uc{}.irwr().pc(kPcInc).seq()); // S1: ir <- prog, pc++
    set(2, Uc{}.dispatch());            // S2: state <- 16 + 4*opcode
    set(3, Uc{}.halt());                // S3: HALT spin

    // NOP
    set(slot(kOpNop), Uc{}.fetch());

    // HALT
    set(slot(kOpHalt), Uc{}.halt());

    // PUSHI: ram[sp] <- operand; sp++; pc++ (skip operand)
    set(slot(kOpPushi), Uc{}
        .ramop(kRamWrite).asel(kAselSp).dsel(kDselProg)
        .spInc().pc(kPcInc).fetch());

    // LOAD: pop addr, push ram[addr] (top cell reused in place)
    set(slot(kOpLoad) + 0, Uc{}.asel(kAselSpm1).seq());
    set(slot(kOpLoad) + 1, Uc{}.rwr().seq());
    set(slot(kOpLoad) + 2, Uc{}.asel(kAselRight).seq());
    set(slot(kOpLoad) + 3, Uc{}
        .ramop(kRamWrite).asel(kAselSpm1).dsel(kDselRam).fetch());

    // STORE: pop addr, pop value, ram[addr] <- value
    set(slot(kOpStore) + 0, Uc{}.asel(kAselSpm1).spDec().seq());
    set(slot(kOpStore) + 1, Uc{}.rwr().asel(kAselSpm1).spDec().seq());
    set(slot(kOpStore) + 2, Uc{}.lwr().seq());
    set(slot(kOpStore) + 3, Uc{}
        .ramop(kRamWrite).asel(kAselRight).dsel(kDselLeft).fetch());

    // Binary ALU operators: pop right, pop left, push alu(left, right).
    for (int op : {kOpAdd, kOpSub, kOpMul, kOpAnd, kOpOr, kOpXor,
                   kOpEq, kOpLt}) {
        set(slot(op) + 0, Uc{}.asel(kAselSpm1).spDec().seq());
        set(slot(op) + 1, Uc{}.rwr().asel(kAselSpm1).spDec().seq());
        set(slot(op) + 2, Uc{}.lwr().seq());
        set(slot(op) + 3, Uc{}
            .ramop(kRamWrite).asel(kAselSp).dsel(kDselAlu)
            .spInc().fetch());
    }

    // NOT: unary through the left latch (alu function 3).
    set(slot(kOpNot) + 0, Uc{}.asel(kAselSpm1).spDec().seq());
    set(slot(kOpNot) + 1, Uc{}.lwr().seq());
    set(slot(kOpNot) + 2, Uc{}
        .ramop(kRamWrite).asel(kAselSp).dsel(kDselAlu).spInc().fetch());

    // NEG: unary through the right latch with the left input zeroed
    // (alu function 5: 0 - right).
    set(slot(kOpNeg) + 0, Uc{}.asel(kAselSpm1).spDec().seq());
    set(slot(kOpNeg) + 1, Uc{}.rwr().seq());
    set(slot(kOpNeg) + 2, Uc{}
        .ramop(kRamWrite).asel(kAselSp).dsel(kDselAlu)
        .lz().spInc().fetch());

    // DUP
    set(slot(kOpDup) + 0, Uc{}.asel(kAselSpm1).seq());
    set(slot(kOpDup) + 1, Uc{}.lwr().seq());
    set(slot(kOpDup) + 2, Uc{}
        .ramop(kRamWrite).asel(kAselSp).dsel(kDselLeft)
        .spInc().fetch());

    // SWAP
    set(slot(kOpSwap) + 0, Uc{}.asel(kAselSpm1).seq());
    set(slot(kOpSwap) + 1, Uc{}.rwr().asel(kAselSpm2).seq());
    set(slot(kOpSwap) + 2, Uc{}
        .lwr().ramop(kRamWrite).asel(kAselSpm2).dsel(kDselRight).seq());
    set(slot(kOpSwap) + 3, Uc{}
        .ramop(kRamWrite).asel(kAselSpm1).dsel(kDselLeft).fetch());

    // DROP
    set(slot(kOpDrop), Uc{}.spDec().fetch());

    // BZ: pop condition; pc <- (cond == 0) ? operand : pc+1
    set(slot(kOpBz) + 0, Uc{}.asel(kAselSpm1).spDec().seq());
    set(slot(kOpBz) + 1, Uc{}.rwr().seq());
    set(slot(kOpBz) + 2, Uc{}.pc(kPcBz).fetch());

    // BR: pc <- operand
    set(slot(kOpBr), Uc{}.pc(kPcProg).fetch());

    // OUT: pop value, write to I/O address 1 (integer output)
    set(slot(kOpOut) + 0, Uc{}.asel(kAselSpm1).spDec().seq());
    set(slot(kOpOut) + 1, Uc{}.rwr().seq());
    set(slot(kOpOut) + 2, Uc{}
        .ramop(kRamOutput).asel(kAselOne).dsel(kDselRight).fetch());

    // IN: read I/O address 1, push
    set(slot(kOpIn) + 0, Uc{}.ramop(kRamInput).asel(kAselOne).seq());
    set(slot(kOpIn) + 1, Uc{}
        .ramop(kRamWrite).asel(kAselSp).dsel(kDselRam)
        .spInc().fetch());

    return rom;
}

/** Opcode -> ALU function table for the `aluf` selector. */
std::vector<int32_t>
buildAluFunctions()
{
    std::vector<int32_t> f(32, 0);
    f[kOpAdd] = 4;
    f[kOpSub] = 5;
    f[kOpMul] = 7;
    f[kOpAnd] = 8;
    f[kOpOr] = 9;
    f[kOpXor] = 10;
    f[kOpEq] = 12;
    f[kOpLt] = 13;
    f[kOpNot] = 3;
    f[kOpNeg] = 5; // 0 - right via the LZ control bit
    return f;
}

/** Smallest power of two >= n, and its bit count. */
int
log2ceil(int n)
{
    int bits = 0;
    while ((1 << bits) < n)
        ++bits;
    return bits;
}

} // namespace

void
StackAssembler::pushi(int32_t v)
{
    emit(kOpPushi);
    emit(v);
}

StackAssembler::Label
StackAssembler::newLabel()
{
    labels_.push_back(-1);
    return static_cast<Label>(labels_.size() - 1);
}

void
StackAssembler::bind(Label l)
{
    labels_.at(l) = here();
}

void
StackAssembler::bz(Label l)
{
    emit(kOpBz);
    fixups_.emplace_back(here(), l);
    emit(0);
}

void
StackAssembler::br(Label l)
{
    emit(kOpBr);
    fixups_.emplace_back(here(), l);
    emit(0);
}

std::vector<int32_t>
StackAssembler::assemble()
{
    for (const auto &[at, label] : fixups_) {
        if (labels_.at(label) < 0)
            throw SpecError("stack assembler: unbound label");
        words_.at(at) = labels_.at(label);
    }
    return words_;
}

std::string
stackMachineSpec(const std::vector<int32_t> &program, int64_t cycles,
                 bool traced)
{
    const std::vector<int32_t> ucode = buildMicrocode();
    const std::vector<int32_t> aluf = buildAluFunctions();

    // Pad the program ROM to a power of two so the pc can be masked
    // like a real address bus.
    const int progBits =
        log2ceil(std::max<int>(2, static_cast<int>(program.size())));
    std::vector<int32_t> prog = program;
    prog.resize(size_t{1} << progBits, 0);

    const int stateBits = log2ceil(kNumStates);
    const int ramBits = log2ceil(kStackRamSize);
    const std::string star = traced ? "*" : "";

    std::ostringstream os;
    os << "# Itty Bitty Stack Machine (thesis Appendix D workload)\n";
    os << "= " << cycles << "\n";
    os << "state" << star << " uc nextst seqst disp pc" << star
       << " incpc pcdata bztgt iszero\n";
    os << "sp" << star << " spinc spdec spdec2 spdata ir" << star
       << " left right lsel aluf alures\n";
    os << "maddr wdata ram prog .\n";

    // --- Microcode sequencer ---------------------------------------
    os << "A seqst 4 state.0." << (stateBits - 1) << " 1\n";
    os << "A disp 4 ir.0.4,#00 " << kDispatchBase << "\n";
    os << "S nextst uc.18.19 seqst disp 0 " << kStackHaltState << "\n";
    os << "M state 0 nextst.0." << (stateBits - 1) << " 1 1\n";
    os << "S uc state.0." << (stateBits - 1);
    for (int32_t w : ucode)
        os << ' ' << w;
    os << "\n";

    // --- Program counter and branch unit ----------------------------
    os << "A incpc 4 pc 1\n";
    os << "A iszero 12 right 0\n";
    os << "S bztgt iszero incpc prog\n";
    os << "S pcdata uc.11.12 incpc bztgt prog incpc\n";
    os << "M pc 0 pcdata uc.10 1\n";

    // --- Stack pointer ----------------------------------------------
    os << "A spinc 4 sp 1\n";
    os << "A spdec 5 sp 1\n";
    os << "A spdec2 5 sp 2\n";
    os << "S spdata uc.9 spinc spdec\n";
    os << "M sp 0 spdata uc.8 -1 " << kStackBase << "\n";

    // --- Instruction register and operand latches -------------------
    // (left and right are declared before ram so STORE's write data is
    // available in the same update phase — the same declaration-order
    // trick the thesis machine uses.)
    os << "M ir 0 prog uc.13 1\n";
    os << "M left 0 ram uc.14 1\n";
    os << "M right 0 ram uc.15 1\n";

    // --- ALU ---------------------------------------------------------
    os << "S lsel uc.16 left 0\n";
    os << "S aluf ir.0.4";
    for (int32_t f : aluf)
        os << ' ' << f;
    os << "\n";
    os << "A alures aluf lsel right\n";

    // --- Stack / data RAM with memory-mapped I/O ---------------------
    os << "S maddr uc.2.4 sp spdec spdec2 right 1\n";
    os << "S wdata uc.5.7 alures left right prog ram\n";
    os << "M ram maddr.0." << (ramBits - 1) << " wdata uc.0.1 "
       << kStackRamSize << "\n";

    // --- Program ROM --------------------------------------------------
    os << "M prog pc.0." << (progBits - 1) << " 0 0 -" << prog.size();
    for (int32_t w : prog)
        os << ' ' << w;
    os << "\n";
    os << ".\n";
    return os.str();
}

std::vector<int32_t>
sieveProgram(int size)
{
    if (size < 1 || size > 100)
        throw SpecError("sieve size must be 1..100");

    // RAM layout: globals at 0.., flags array, stack from kStackBase.
    const int vI = 0;
    const int vCount = 1;
    const int vPrime = 2;
    const int vK = 3;
    const int flags = 8;
    if (flags + size + 1 >= kStackBase)
        throw SpecError("sieve flags overlap the stack");

    StackAssembler as;
    auto loadVar = [&](int a) { as.pushi(a); as.load(); };
    auto storeVar = [&](int a) { as.pushi(a); as.store(); };

    // count = 0
    as.pushi(0);
    storeVar(vCount);

    // for (i = 0; i <= size; i++) flags[i] = 1;
    as.pushi(0);
    storeVar(vI);
    auto initLoop = as.newLabel();
    auto initDone = as.newLabel();
    as.bind(initLoop);
    as.pushi(1);
    as.pushi(flags);
    loadVar(vI);
    as.add();
    as.store();
    loadVar(vI);
    as.pushi(1);
    as.add();
    storeVar(vI);
    loadVar(vI);
    as.pushi(size + 1);
    as.lt();
    as.bz(initDone);
    as.br(initLoop);
    as.bind(initDone);

    // for (i = 0; i <= size; i++)
    as.pushi(0);
    storeVar(vI);
    auto mainLoop = as.newLabel();
    auto mainDone = as.newLabel();
    auto skip = as.newLabel();
    as.bind(mainLoop);

    // if (flags[i]) {
    as.pushi(flags);
    loadVar(vI);
    as.add();
    as.load();
    as.bz(skip);

    //   prime = i + i + 3; print prime; count++;
    loadVar(vI);
    as.dup();
    as.add();
    as.pushi(3);
    as.add();          // [prime]
    as.dup();
    as.out();          // print
    as.dup();
    storeVar(vPrime);  // [prime]
    loadVar(vCount);
    as.pushi(1);
    as.add();
    storeVar(vCount);  // [prime]

    //   for (k = i + prime; k <= size; k += prime) flags[k] = 0;
    loadVar(vI);
    as.add();          // [i + prime]
    storeVar(vK);
    auto innerLoop = as.newLabel();
    auto innerDone = as.newLabel();
    as.bind(innerLoop);
    loadVar(vK);
    as.pushi(size + 1);
    as.lt();
    as.bz(innerDone);
    as.pushi(0);
    as.pushi(flags);
    loadVar(vK);
    as.add();
    as.store();
    loadVar(vK);
    loadVar(vPrime);
    as.add();
    storeVar(vK);
    as.br(innerLoop);
    as.bind(innerDone);

    // } i++
    as.bind(skip);
    loadVar(vI);
    as.pushi(1);
    as.add();
    storeVar(vI);
    loadVar(vI);
    as.pushi(size + 1);
    as.lt();
    as.bz(mainDone);
    as.br(mainLoop);
    as.bind(mainDone);

    // print count; halt
    loadVar(vCount);
    as.out();
    as.halt();
    return as.assemble();
}

std::vector<int32_t>
sieveReference(int size)
{
    std::vector<bool> flags(size + 1, true);
    std::vector<int32_t> out;
    for (int i = 0; i <= size; ++i) {
        if (!flags[i])
            continue;
        int prime = i + i + 3;
        out.push_back(prime);
        for (int k = i + prime; k <= size; k += prime)
            flags[k] = false;
    }
    out.push_back(static_cast<int32_t>(out.size())); // trailing count
    return out;
}

} // namespace asim
