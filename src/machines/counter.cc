#include "machines/counter.hh"

#include <sstream>

#include "support/logging.hh"

namespace asim {

std::string
counterSpec(int bits, int64_t cycles)
{
    if (bits < 1 || bits > 30)
        throw SpecError("counter width must be 1..30");
    std::ostringstream os;
    os << "# " << bits << "-bit counter\n";
    os << "= " << cycles << "\n";
    os << "count* next .\n";
    os << "A next 4 count.0." << (bits - 1) << " 1\n";
    os << "M count 0 next 1 1\n";
    os << ".\n";
    return os.str();
}

std::string
trafficLightSpec(int64_t cycles)
{
    std::ostringstream os;
    os << "# traffic light controller: green 4, yellow 1, red 3\n";
    os << "= " << cycles << "\n";
    os << "phase* timer* timerdone phaseadv nextphase nexttimer\n";
    os << "timerdec reload .\n";
    // timerdone = (timer == 0)
    os << "A timerdone 12 timer 0\n";
    // phaseadv: next phase in the 0 -> 1 -> 2 -> 0 sequence
    os << "S phaseadv phase.0.1 1 2 0\n";
    // hold or advance the phase
    os << "S nextphase timerdone.0 phase phaseadv\n";
    // countdown, or reload for the *next* phase
    os << "A timerdec 5 timer 1\n";
    os << "S reload phaseadv.0.1 3 0 2\n";
    os << "S nexttimer timerdone.0 timerdec reload\n";
    // registers (timer starts at 3: green lasts 4 cycles, 3..0)
    os << "M phase 0 nextphase 1 1\n";
    os << "M timer 0 nexttimer 1 -1 3\n";
    os << ".\n";
    return os.str();
}

} // namespace asim
