#include "machines/tiny_computer.hh"

#include <sstream>

#include "support/logging.hh"

namespace asim {

int
TinyAssembler::emit(int opcode, int addr)
{
    if (addr < 0 || addr >= kTinyMemWords)
        throw SpecError("tiny computer address out of range");
    return word(static_cast<int32_t>((opcode << 7) | addr));
}

int
TinyAssembler::word(int32_t v)
{
    if (here() >= kTinyMemWords)
        throw SpecError("tiny computer program exceeds 128 words");
    words_.push_back(v);
    return here() - 1;
}

void
TinyAssembler::patchAddr(int at, int addr)
{
    words_.at(at) =
        static_cast<int32_t>((words_.at(at) & ~0x7f) | (addr & 0x7f));
}

std::vector<int32_t>
TinyAssembler::image() const
{
    std::vector<int32_t> img = words_;
    img.resize(kTinyMemWords, 0);
    return img;
}

std::string
tinyComputerSpec(const std::vector<int32_t> &memImage, int64_t cycles)
{
    if (memImage.size() != kTinyMemWords)
        throw SpecError("tiny computer memory image must be 128 words");

    std::ostringstream os;
    os << "# tiny 10-bit computer (thesis Appendix F): "
          "ld st bb br su\n";
    os << "= " << cycles << "\n";
    os << "state phase nextst pc* incpc newpc dojump cond ir*\n";
    os << "opdec acsel acld acwr memop ma alu bnew bwr\n";
    os << "ac* borrow* memory .\n";

    // Phase counter: 2-bit state, one-hot phase word.
    os << "A nextst 4 state.0.1 1\n";
    os << "S phase state.0.1 %0001 %0010 %0100 %1000\n";
    os << "M state 0 nextst.0.1 1 1\n";

    // Decode ROM: opcode -> control bits
    //   bit0 memory write @p2 (ST)   bit1 ac load @p3 (LD)
    //   bit2 ac subtract @p3 (SU)    bit3 jump always (BR)
    //   bit4 jump on borrow (BB)
    os << "S opdec ir.7.9 0 0 2 1 16 8 4 0\n";

    // Program counter.
    os << "A incpc 4 pc 1\n";
    os << "S cond opdec.4 0 borrow\n";
    os << "S dojump opdec.3 cond 1\n";
    os << "S newpc dojump.0 incpc ir.0.6\n";
    os << "M pc 0 newpc.0.6 phase.2 1\n";

    // Instruction register, loaded in phase 1.
    os << "M ir 0 memory phase.1 1\n";

    // Memory: fetch at pc, operand access at ir's address field.
    os << "S ma phase.2 pc ir.0.6\n";
    os << "A memop 8 opdec.0 phase.2\n";
    os << "M memory ma.0.6 ac memop -" << kTinyMemWords;
    for (int32_t w : memImage)
        os << ' ' << w;
    os << "\n";

    // Accumulator: load or subtract in phase 3.
    os << "A alu 5 ac memory\n";
    os << "S acsel opdec.2 memory alu\n";
    os << "A acld 9 opdec.1 opdec.2\n";
    os << "A acwr 8 acld phase.3\n";
    os << "M ac 0 acsel acwr 1\n";

    // Borrow flip-flop, set by subtract.
    os << "A bnew 13 ac memory\n";
    os << "A bwr 8 opdec.2 phase.3\n";
    os << "M borrow 0 bnew bwr 1\n";
    os << ".\n";
    return os.str();
}

std::vector<int32_t>
tinyModProgram(int32_t a, int32_t b, int &resultAddr)
{
    TinyAssembler as;
    // Data cells are placed after the code; reserve the layout first
    // by assembling with a dummy address and patching.
    //
    //   loop: LD a
    //         SU b        ; ac = a - b, borrow = (a < b)
    //         BB done     ; a < b -> a is the remainder
    //         ST a        ; a = a - b
    //         BR loop
    //   done: BR done
    const int loop = as.here();
    const int i0 = as.ld(0);
    const int i1 = as.su(0);
    const int i2 = as.bb(0);
    const int i3 = as.st(0);
    as.br(loop);
    const int done = as.here();
    as.br(done);
    const int cellA = as.cell(a);
    const int cellB = as.cell(b);
    as.patchAddr(i0, cellA);
    as.patchAddr(i1, cellB);
    as.patchAddr(i2, done);
    as.patchAddr(i3, cellA);
    resultAddr = cellA;
    return as.image();
}

std::vector<int32_t>
tinyMulProgram(int32_t a, int32_t b, int &resultAddr)
{
    TinyAssembler as;
    //   acc = 0; negA = 0 - a
    //   for (cnt = b; cnt >= 1; --cnt) acc = acc - negA;
    //
    //         LD zero
    //         SU a        ; ac = -a
    //         ST negA
    //   loop: LD cnt
    //         SU one      ; borrow when cnt == 0
    //         BB done
    //         ST cnt
    //         LD acc
    //         SU negA     ; acc + a
    //         ST acc
    //         BR loop
    //   done: BR done
    const int i0 = as.ld(0);
    const int i1 = as.su(0);
    const int i2 = as.st(0);
    const int loop = as.here();
    const int i3 = as.ld(0);
    const int i4 = as.su(0);
    const int i5 = as.bb(0);
    const int i6 = as.st(0);
    const int i7 = as.ld(0);
    const int i8 = as.su(0);
    const int i9 = as.st(0);
    as.br(loop);
    const int done = as.here();
    as.br(done);

    const int cellZero = as.cell(0);
    const int cellOne = as.cell(1);
    const int cellA = as.cell(a);
    const int cellCnt = as.cell(b);
    const int cellNegA = as.cell(0);
    const int cellAcc = as.cell(0);

    as.patchAddr(i0, cellZero);
    as.patchAddr(i1, cellA);
    as.patchAddr(i2, cellNegA);
    as.patchAddr(i3, cellCnt);
    as.patchAddr(i4, cellOne);
    as.patchAddr(i5, done);
    as.patchAddr(i6, cellCnt);
    as.patchAddr(i7, cellAcc);
    as.patchAddr(i8, cellNegA);
    as.patchAddr(i9, cellAcc);

    resultAddr = cellAcc;
    return as.image();
}

} // namespace asim
