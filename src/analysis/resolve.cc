#include "analysis/resolve.hh"

#include <set>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "analysis/depgraph.hh"
#include "analysis/width.hh"
#include "lang/alu_ops.hh"
#include "lang/parser.hh"
#include "lang/writer.hh"
#include "support/bitops.hh"
#include "support/serialize.hh"

namespace asim {

namespace {

/** Context for expression resolution: name -> (kind, slot). Keys are
 *  views into strings owned by the spec being resolved (alive for the
 *  whole resolve), and the map is a hash table: resolution does one
 *  lookup per reference term, which on a 100k+-component corpus spec
 *  made ordered-map string compares the dominant resolve cost. */
struct NameMap
{
    std::unordered_map<std::string_view, std::pair<CompKind, int>> map;
};

/**
 * Resolve one expression. Mirrors the thesis' `expr` procedure: scan
 * terms right-to-left, accumulating the bit position (`numbits`);
 * constants fold into `constTotal`; references become masked+shifted
 * terms. Errors on unknown components and on widths beyond 31 bits.
 */
ResolvedExpr
resolveExprImpl(const Expr &expr, const NameMap &names)
{
    ResolvedExpr out;
    out.source = expr.source;

    int numbits = 0;
    // Right-to-left accumulation, exactly like the thesis.
    std::vector<ResolvedTerm> reversed;
    for (auto it = expr.terms.rbegin(); it != expr.terms.rend(); ++it) {
        const Term &t = *it;
        switch (t.kind) {
          case Term::Kind::Const:
            if (t.width >= 0) {
                out.constTotal = wadd(
                    out.constTotal,
                    shiftField(land(t.value, lowMask(t.width)), numbits));
                numbits += t.width;
            } else {
                out.constTotal =
                    wadd(out.constTotal, shiftField(t.value, numbits));
                numbits = kMaxBits;
            }
            break;
          case Term::Kind::BitString:
            out.constTotal =
                wadd(out.constTotal, shiftField(t.value, numbits));
            numbits += t.width;
            break;
          case Term::Kind::Ref: {
            auto nit = names.map.find(t.ref);
            if (nit == names.map.end()) {
                throw SpecError("Error. Component <" + t.ref +
                                "> not found.");
            }
            ResolvedTerm rt;
            rt.bank = nit->second.first == CompKind::Memory
                          ? ResolvedTerm::Bank::MemTemp
                          : ResolvedTerm::Bank::Var;
            rt.slot = nit->second.second;
            if (t.from < 0) {
                rt.whole = true;
                rt.mask = -1;
                rt.from = 0;
                rt.shift = numbits;
                rt.fieldWidth = kMaxBits;
                numbits = kMaxBits;
            } else {
                int to = t.to < 0 ? t.from : t.to;
                rt.whole = false;
                rt.mask = maskBits(t.from, to);
                rt.from = t.from;
                rt.shift = numbits - t.from;
                rt.fieldWidth = to - t.from + 1;
                numbits += rt.fieldWidth;
            }
            reversed.push_back(rt);
            break;
          }
        }
        if (numbits > kMaxBits) {
            throw SpecError("Error. Too many bits in " + expr.source +
                            ".");
        }
    }
    out.width = numbits;
    // Store leftmost-first for readable codegen.
    out.terms.assign(reversed.rbegin(), reversed.rend());
    return out;
}

MemDesc::TraceMode
traceModeFor(const MemDesc &m, int minWidth, int32_t checkMask,
             int32_t checkValue)
{
    // Thesis gencode: emit a runtime-checked trace statement when the
    // operation expression is non-constant and wide enough to carry
    // the flag bit (`numberofbits`); decide statically when it is
    // constant. Writes trace when opn&5 == 5, reads when opn&9 == 8.
    if (!m.opnConst) {
        return m.opnWidth >= minWidth ? MemDesc::TraceMode::Runtime
                                      : MemDesc::TraceMode::Never;
    }
    return land(m.opnValue, checkMask) == checkValue
               ? MemDesc::TraceMode::Always
               : MemDesc::TraceMode::Never;
}

} // namespace

int
ResolvedSpec::varSlot(std::string_view name) const
{
    auto it = varSlots.find(name);
    return it == varSlots.end() ? -1 : it->second;
}

int
ResolvedSpec::memIndex(std::string_view name) const
{
    auto it = memIndexes.find(name);
    return it == memIndexes.end() ? -1 : it->second;
}

ResolvedSpec
resolve(const Spec &spec, Diagnostics *diag)
{
    ResolvedSpec rs;
    rs.spec = spec;

    // Duplicate-definition check (stricter than the thesis, which
    // silently used the last definition).
    {
        std::unordered_set<std::string_view> seen;
        seen.reserve(spec.comps.size());
        for (const auto &c : spec.comps) {
            if (!seen.insert(c.name).second) {
                throw SpecError("Error. Component " + c.name +
                                " defined twice.");
            }
        }
    }

    // Assign slots: combinational outputs get var slots, memories get
    // memory indexes, both in declaration order.
    NameMap names;
    names.map.reserve(spec.comps.size());
    for (const auto &c : spec.comps) {
        if (c.kind == CompKind::Memory) {
            int idx = static_cast<int>(rs.memIndexes.size());
            rs.memIndexes.emplace(c.name, idx);
            names.map.emplace(c.name,
                              std::make_pair(CompKind::Memory, idx));
        } else {
            int slot = static_cast<int>(rs.varSlots.size());
            rs.varSlots.emplace(c.name, slot);
            names.map.emplace(c.name, std::make_pair(c.kind, slot));
        }
    }
    rs.numVarSlots = static_cast<int>(rs.varSlots.size());

    // checkdcl: declared but not defined / defined but not declared.
    if (diag) {
        std::set<std::string> declared;
        for (const auto &d : spec.decls) {
            declared.insert(d.name);
            if (!spec.find(d.name)) {
                diag->warn("Warning: " + d.name +
                           " declared but not defined.");
            }
        }
        for (const auto &c : spec.comps) {
            if (!declared.count(c.name)) {
                diag->warn("Warning: " + c.name +
                           " defined but not declared.");
            }
        }
    }

    // Order the combinational network (throws on cycles).
    std::vector<int> order = orderCombinational(spec.comps);

    for (int idx : order) {
        const Component &c = spec.comps[idx];
        CombComp cc;
        cc.kind = c.kind;
        cc.name = c.name;
        cc.slot = rs.varSlot(c.name);
        cc.declIndex = idx;
        if (c.kind == CompKind::Alu) {
            cc.funct = resolveExprImpl(c.funct, names);
            cc.left = resolveExprImpl(c.left, names);
            cc.right = resolveExprImpl(c.right, names);
            cc.functConst = cc.funct.isConstant();
            if (cc.functConst) {
                cc.functValue = cc.funct.constTotal;
                if (!validAluFunction(cc.functValue)) {
                    throw SpecError(
                        "Error. ALU " + c.name + " has constant function "
                        + std::to_string(cc.functValue) +
                        " outside 0..13.");
                }
            }
        } else {
            cc.select = resolveExprImpl(c.select, names);
            for (const auto &e : c.cases)
                cc.cases.push_back(resolveExprImpl(e, names));
        }
        rs.comb.push_back(std::move(cc));
    }

    for (int idx = 0; idx < static_cast<int>(spec.comps.size()); ++idx) {
        const Component &c = spec.comps[idx];
        if (c.kind != CompKind::Memory)
            continue;
        MemDesc m;
        m.name = c.name;
        m.index = rs.memIndex(c.name);
        m.declIndex = idx;
        m.addr = resolveExprImpl(c.addr, names);
        m.data = resolveExprImpl(c.data, names);
        m.opn = resolveExprImpl(c.opn, names);
        m.opnConst = m.opn.isConstant();
        if (m.opnConst)
            m.opnValue = m.opn.constTotal;
        m.opnWidth = widthOf(c.opn);
        m.size = c.memSize;
        m.init = c.init;
        if (!m.init.empty() &&
            static_cast<int64_t>(m.init.size()) != m.size) {
            throw SpecError("Error. Memory " + c.name + " declares " +
                            std::to_string(m.size) + " cells but has " +
                            std::to_string(m.init.size()) +
                            " initial values.");
        }
        m.traceWrites = traceModeFor(m, 3, 5, 5);
        m.traceReads = traceModeFor(m, 4, 9, 8);
        rs.mems.push_back(std::move(m));
    }

    // Build the per-cycle trace list from the starred declarations.
    for (const auto &d : spec.decls) {
        if (!d.traced)
            continue;
        TraceItem item;
        item.name = d.name;
        int vs = rs.varSlot(d.name);
        if (vs >= 0) {
            item.isMem = false;
            item.slot = vs;
        } else {
            int mi = rs.memIndex(d.name);
            if (mi < 0) {
                if (diag) {
                    diag->warn("Warning: " + d.name +
                               " traced but not defined.");
                }
                continue;
            }
            item.isMem = true;
            item.slot = mi;
        }
        rs.traceList.push_back(std::move(item));
    }

    return rs;
}

ResolvedSpec
resolveText(std::string_view text, Diagnostics *diag)
{
    return resolve(parseSpec(text, diag), diag);
}

uint64_t
specIdentityHash(const ResolvedSpec &rs)
{
    return fnv1a64(writeSpec(rs.spec));
}

ResolvedExpr
resolveExpr(const Expr &expr, const ResolvedSpec &rs)
{
    NameMap names;
    for (const auto &[name, slot] : rs.varSlots) {
        CompKind kind = rs.spec.find(name)->kind;
        names.map.emplace(name, std::make_pair(kind, slot));
    }
    for (const auto &[name, idx] : rs.memIndexes)
        names.map.emplace(name, std::make_pair(CompKind::Memory, idx));
    return resolveExprImpl(expr, names);
}

} // namespace asim
