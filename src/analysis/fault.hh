/**
 * @file
 * Fault injection (thesis §2.3.2) behind a pluggable injector policy.
 *
 * The thesis names fault injection — "inserting a fault in the
 * specification to cause errors (by design) in the simulation run" —
 * as a core application of a CHDL simulator. This module provides the
 * injection *policies* and the shared fault grammar; the campaign
 * driver that fans injections out at scale lives in
 * analysis/campaign.hh.
 *
 * A FaultInjector is one bit-level perturbation policy ("set0",
 * "set1", "toggle") usable at two sites:
 *
 *  - **spec splice** (permanent stuck-at): the faulted component is
 *    renamed and an ALU is spliced in under the original name that
 *    forces/flips one output bit. Every consumer transparently
 *    observes the faulty value; timing is unchanged for combinational
 *    victims (the splice is itself combinational).
 *  - **state injection** (transient upset): one word of a saved
 *    EngineSnapshot — a memory cell or output latch — is perturbed at
 *    a cycle boundary (an SEU-style bit flip). Combinational outputs
 *    are recomputed every cycle, so only memory state is a valid
 *    target.
 *
 * Injectors are string-keyed in a process-wide registry mirroring the
 * engine registry idiom (sim/simulation.hh), so campaigns, the CLI,
 * and batch manifests name policies uniformly and new policies bolt
 * on without touching call sites.
 *
 * The textual fault grammar shared by `asim-run --inject=`, the
 * batch-manifest `fault=` key, and campaign reports is
 *
 *     component[cell]:bit:mode[@cycle]
 *
 * where `[cell]` (optional) addresses one memory cell, `bit` is the
 * target bit (0..30), `mode` is a registry key, and `@cycle`
 * (optional) selects transient state injection at that cycle boundary
 * instead of a permanent spec splice. parseFaultSite() /
 * validateFaultSite() are the single parse/validation path, so a bad
 * component, bit, cell, or mode produces the same SpecError text
 * everywhere.
 */

#ifndef ASIM_ANALYSIS_FAULT_HH
#define ASIM_ANALYSIS_FAULT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lang/ast.hh"

namespace asim {

struct ResolvedSpec;

/** One bit-level fault policy; see the file comment for the two
 *  injection sites. Implementations are stateless and shared. */
class FaultInjector
{
  public:
    virtual ~FaultInjector() = default;

    /** Registry key ("set0", "set1", "toggle"). */
    virtual const std::string &name() const = 0;

    /** State-injection site: return `value` with bit `bit` perturbed
     *  under this policy. `bit` must be in 0..30 (31-bit words,
     *  support/bitops.hh). */
    virtual int32_t apply(int32_t value, int bit) const = 0;

    /**
     * Spec-splice site: return a copy of `spec` where bit `bit` of
     * component `comp` is permanently perturbed under this policy.
     *
     * The victim is renamed `<comp>FAULTED` and an ALU is spliced in
     * under the original name computing `shadow <op> mask`. For a
     * memory victim the splice observes the output latch, adding one
     * combinational stage but no extra cycle of delay.
     *
     * @throws SpecError if `comp` does not exist, `bit` is out of
     *         range, or `<comp>FAULTED` already exists
     */
    virtual Spec splice(const Spec &spec, const std::string &comp,
                        int bit) const;

  protected:
    /// @{ The ALU function and right-operand mask the default
    /// splice() wires in: `faulted = shadow <aluOp> mask(bit)`.
    virtual int32_t spliceAluOp() const = 0;
    virtual int32_t spliceMask(int bit) const = 0;
    /// @}
};

/** String-keyed table of fault policies, mirroring EngineRegistry. */
class FaultInjectorRegistry
{
  public:
    /** The process-wide registry, pre-populated with "set0" (stuck-
     *  at-0), "set1" (stuck-at-1), and "toggle" (bit flip / XOR). */
    static FaultInjectorRegistry &global();

    /** Register a policy under injector->name().
     *  @throws SpecError on a duplicate name */
    void add(std::unique_ptr<FaultInjector> injector);

    bool contains(std::string_view name) const;

    /** Look up a policy by name. @throws SpecError naming the
     *  registered policies when `name` is unknown */
    const FaultInjector &get(std::string_view name) const;

    /** All registered policy names, sorted. */
    std::vector<std::string> list() const;

  private:
    std::map<std::string, std::unique_ptr<FaultInjector>, std::less<>>
        entries_;
};

/** One parsed fault: where, which bit, which policy, and when. */
struct FaultSite
{
    std::string component;

    /** Memory cell address; -1 targets the whole component (a
     *  combinational output for splices, a memory's output latch for
     *  state injection). */
    int64_t cell = -1;

    int bit = 0;

    /** FaultInjectorRegistry key. */
    std::string mode = "toggle";

    /** State-injection cycle boundary; meaningful when atCycle. The
     *  fault perturbs the state *before* the first cycle executed at
     *  or after this boundary. */
    uint64_t cycle = 0;

    /** true = transient state injection at `cycle`; false = permanent
     *  spec splice. */
    bool atCycle = false;
};

/**
 * Parse `component[cell]:bit:mode[@cycle]` (see file comment).
 * Validates only what needs no specification: the grammar and the bit
 * range. @throws SpecError with the shared error texts
 */
FaultSite parseFaultSite(const std::string &text);

/** Render a FaultSite back into the canonical grammar (the form
 *  parseFaultSite accepts; used for labels and campaign reports). */
std::string formatFaultSite(const FaultSite &site);

/**
 * Validate a parsed fault against a resolved specification: the
 * component exists, the mode is registered, cell faults address a
 * real memory cell, and state injection (`@cycle`) targets memory
 * (combinational outputs are recomputed every cycle and hold no
 * state). @throws SpecError with the shared error texts
 */
void validateFaultSite(const ResolvedSpec &rs, const FaultSite &site);

/**
 * Compatibility wrapper over the registry ("set0"/"set1" splices).
 * Prefer FaultInjectorRegistry::global().get(mode).splice(...).
 */
enum class StuckMode
{
    StuckAt0,
    StuckAt1,
};

/** Return a copy of `spec` with bit `bit` of component `comp` stuck.
 *  Thin wrapper over the "set0"/"set1" registry policies.
 *  @throws SpecError if `comp` does not exist or `bit` is out of
 *  range */
Spec injectStuckBit(const Spec &spec, const std::string &comp, int bit,
                    StuckMode mode);

} // namespace asim

#endif // ASIM_ANALYSIS_FAULT_HH
