/**
 * @file
 * Fault injection (thesis §2.3.2).
 *
 * The thesis names fault injection — "inserting a fault in the
 * specification to cause errors (by design) in the simulation run" —
 * as a core application of a CHDL simulator. This module implements
 * the classic stuck-at fault model at the specification level: the
 * faulted component is renamed and an ALU is spliced in under the
 * original name that forces one output bit to 0 or 1. Every consumer
 * transparently observes the faulty value; timing is unchanged for
 * combinational victims (the splice is itself combinational).
 */

#ifndef ASIM_ANALYSIS_FAULT_HH
#define ASIM_ANALYSIS_FAULT_HH

#include <string>

#include "lang/ast.hh"

namespace asim {

/** Stuck-at fault polarities. */
enum class StuckMode
{
    StuckAt0,
    StuckAt1,
};

/**
 * Return a copy of `spec` with bit `bit` of component `comp` stuck.
 *
 * For a memory victim the splice observes the output latch, adding one
 * combinational stage but no extra cycle of delay (the wrapper ALU
 * evaluates in the same cycle the latch is visible).
 *
 * @throws SpecError if `comp` does not exist or `bit` is out of range
 */
Spec injectStuckBit(const Spec &spec, const std::string &comp, int bit,
                    StuckMode mode);

} // namespace asim

#endif // ASIM_ANALYSIS_FAULT_HH
