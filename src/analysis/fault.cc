#include "analysis/fault.hh"

#include "lang/alu_ops.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace asim {

namespace {

/** Build a one-term constant expression. */
Expr
constExpr(int32_t value)
{
    Expr e;
    Term t;
    t.kind = Term::Kind::Const;
    t.value = value;
    e.terms.push_back(t);
    e.source = std::to_string(value);
    return e;
}

/** Build a whole-component reference expression. */
Expr
refExpr(const std::string &name)
{
    Expr e;
    Term t;
    t.kind = Term::Kind::Ref;
    t.ref = name;
    e.terms.push_back(t);
    e.source = name;
    return e;
}

} // namespace

Spec
injectStuckBit(const Spec &spec, const std::string &comp, int bit,
               StuckMode mode)
{
    if (bit < 0 || bit >= kMaxBits) {
        throw SpecError("Error. Fault bit " + std::to_string(bit) +
                        " out of range 0..30.");
    }

    Spec out = spec;
    Component *victim = out.find(comp);
    if (!victim)
        throw SpecError("Error. Component <" + comp + "> not found.");

    const std::string shadow = comp + "FAULTED";
    if (out.find(shadow)) {
        throw SpecError("Error. Component " + shadow +
                        " already exists.");
    }
    victim->name = shadow;

    // Splice: name = shadow AND mask   (stuck-at-0)
    //         name = shadow OR  bit    (stuck-at-1)
    Component splice;
    splice.kind = CompKind::Alu;
    splice.name = comp;
    splice.left = refExpr(shadow);
    if (mode == StuckMode::StuckAt0) {
        splice.funct = constExpr(kAluAnd);
        splice.right = constExpr(land(kValueMask, ~highbit(bit)));
    } else {
        splice.funct = constExpr(kAluOr);
        splice.right = constExpr(highbit(bit));
    }
    out.comps.push_back(std::move(splice));

    // The shadow needs a declaration entry (untraced); the original
    // declaration keeps tracing the *observed* (faulty) value.
    out.decls.push_back(DeclName{shadow, false});
    return out;
}

} // namespace asim
