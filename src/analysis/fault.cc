#include "analysis/fault.hh"

#include <cctype>

#include "analysis/resolve.hh"
#include "lang/alu_ops.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace asim {

namespace {

/** Build a one-term constant expression. */
Expr
constExpr(int32_t value)
{
    Expr e;
    Term t;
    t.kind = Term::Kind::Const;
    t.value = value;
    e.terms.push_back(t);
    e.source = std::to_string(value);
    return e;
}

/** Build a whole-component reference expression. */
Expr
refExpr(const std::string &name)
{
    Expr e;
    Term t;
    t.kind = Term::Kind::Ref;
    t.ref = name;
    e.terms.push_back(t);
    e.source = name;
    return e;
}

[[noreturn]] void
throwBitRange(int bit)
{
    throw SpecError("Error. Fault bit " + std::to_string(bit) +
                    " out of range 0.." + std::to_string(kMaxBits - 1) +
                    ".");
}

class Set0Injector final : public FaultInjector
{
  public:
    const std::string &name() const override
    {
        static const std::string n = "set0";
        return n;
    }
    int32_t apply(int32_t value, int bit) const override
    {
        return land(value, ~highbit(bit));
    }

  protected:
    int32_t spliceAluOp() const override { return kAluAnd; }
    int32_t spliceMask(int bit) const override
    {
        return land(kValueMask, ~highbit(bit));
    }
};

class Set1Injector final : public FaultInjector
{
  public:
    const std::string &name() const override
    {
        static const std::string n = "set1";
        return n;
    }
    int32_t apply(int32_t value, int bit) const override
    {
        return value | highbit(bit);
    }

  protected:
    int32_t spliceAluOp() const override { return kAluOr; }
    int32_t spliceMask(int bit) const override
    {
        return highbit(bit);
    }
};

class ToggleInjector final : public FaultInjector
{
  public:
    const std::string &name() const override
    {
        static const std::string n = "toggle";
        return n;
    }
    int32_t apply(int32_t value, int bit) const override
    {
        return value ^ highbit(bit);
    }

  protected:
    int32_t spliceAluOp() const override { return kAluXor; }
    int32_t spliceMask(int bit) const override
    {
        return highbit(bit);
    }
};

} // namespace

// ---------------------------------------------------------------------
// FaultInjector — default spec splice
// ---------------------------------------------------------------------

Spec
FaultInjector::splice(const Spec &spec, const std::string &comp,
                      int bit) const
{
    if (bit < 0 || bit >= kMaxBits)
        throwBitRange(bit);

    Spec out = spec;
    Component *victim = out.find(comp);
    if (!victim)
        throw SpecError("Error. Component <" + comp + "> not found.");

    const std::string shadow = comp + "FAULTED";
    if (out.find(shadow)) {
        throw SpecError("Error. Component " + shadow +
                        " already exists.");
    }
    victim->name = shadow;

    // Splice: name = shadow <op> mask, e.g.
    //         name = shadow AND ~bit   (set0)
    //         name = shadow OR   bit   (set1)
    //         name = shadow XOR  bit   (toggle)
    Component splice;
    splice.kind = CompKind::Alu;
    splice.name = comp;
    splice.left = refExpr(shadow);
    splice.funct = constExpr(spliceAluOp());
    splice.right = constExpr(spliceMask(bit));
    out.comps.push_back(std::move(splice));

    // The shadow needs a declaration entry (untraced); the original
    // declaration keeps tracing the *observed* (faulty) value.
    out.decls.push_back(DeclName{shadow, false});
    return out;
}

// ---------------------------------------------------------------------
// FaultInjectorRegistry
// ---------------------------------------------------------------------

FaultInjectorRegistry &
FaultInjectorRegistry::global()
{
    static FaultInjectorRegistry *reg = [] {
        auto *r = new FaultInjectorRegistry;
        r->add(std::make_unique<Set0Injector>());
        r->add(std::make_unique<Set1Injector>());
        r->add(std::make_unique<ToggleInjector>());
        return r;
    }();
    return *reg;
}

void
FaultInjectorRegistry::add(std::unique_ptr<FaultInjector> injector)
{
    const std::string &name = injector->name();
    auto [it, inserted] =
        entries_.try_emplace(name, std::move(injector));
    if (!inserted) {
        throw SpecError("Error. Fault injector <" + name +
                        "> is already registered.");
    }
}

bool
FaultInjectorRegistry::contains(std::string_view name) const
{
    return entries_.find(name) != entries_.end();
}

const FaultInjector &
FaultInjectorRegistry::get(std::string_view name) const
{
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        std::string known;
        for (const auto &[n, entry] : entries_) {
            if (!known.empty())
                known += ", ";
            known += n;
        }
        throw SpecError("Error. Unknown fault injector <" +
                        std::string(name) +
                        ">; registered injectors: " + known + ".");
    }
    return *it->second;
}

std::vector<std::string>
FaultInjectorRegistry::list() const
{
    std::vector<std::string> out;
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

// ---------------------------------------------------------------------
// Fault grammar — the shared parse/validation path
// ---------------------------------------------------------------------

namespace {

[[noreturn]] void
throwBadFault(const std::string &text, const std::string &why)
{
    throw SpecError("Error. Bad fault <" + text + ">: " + why +
                    " (want component[cell]:bit:mode[@cycle]).");
}

[[noreturn]] void
throwCellNeedsCycle(const std::string &component)
{
    throw SpecError("Error. Cell faults need @cycle (a spec splice "
                    "can only observe component <" + component +
                    ">'s output).");
}

/** strtoll wrapper: all of `s` must be a decimal integer. */
bool
parseInt(const std::string &s, long long *out)
{
    if (s.empty())
        return false;
    size_t used = 0;
    try {
        *out = std::stoll(s, &used, 10);
    } catch (const std::exception &) {
        return false;
    }
    return used == s.size();
}

} // namespace

FaultSite
parseFaultSite(const std::string &text)
{
    FaultSite site;

    std::string body = text;
    if (auto at = body.rfind('@'); at != std::string::npos) {
        long long cycle = 0;
        if (!parseInt(body.substr(at + 1), &cycle) || cycle < 0)
            throwBadFault(text, "cycle must be a non-negative integer");
        site.atCycle = true;
        site.cycle = static_cast<uint64_t>(cycle);
        body.resize(at);
    }

    // component[cell] : bit : mode — split on the *last* two colons
    // so component names stay unconstrained.
    auto modeColon = body.rfind(':');
    if (modeColon == std::string::npos)
        throwBadFault(text, "missing :bit:mode");
    auto bitColon = body.rfind(':', modeColon - 1);
    if (bitColon == std::string::npos || bitColon == 0)
        throwBadFault(text, "missing :bit:mode");

    site.mode = body.substr(modeColon + 1);
    if (site.mode.empty())
        throwBadFault(text, "missing mode");

    long long bit = 0;
    if (!parseInt(body.substr(bitColon + 1, modeColon - bitColon - 1),
                  &bit))
        throwBadFault(text, "bit must be an integer");
    if (bit < 0 || bit >= kMaxBits)
        throwBitRange(static_cast<int>(bit));
    site.bit = static_cast<int>(bit);

    site.component = body.substr(0, bitColon);
    if (auto open = site.component.find('[');
        open != std::string::npos) {
        if (site.component.back() != ']')
            throwBadFault(text, "unterminated cell address");
        long long cell = 0;
        if (!parseInt(site.component.substr(
                          open + 1,
                          site.component.size() - open - 2),
                      &cell) ||
            cell < 0)
            throwBadFault(text,
                          "cell must be a non-negative integer");
        site.cell = cell;
        site.component.resize(open);
    }
    if (site.component.empty())
        throwBadFault(text, "missing component");
    if (site.cell >= 0 && !site.atCycle)
        throwCellNeedsCycle(site.component);
    return site;
}

std::string
formatFaultSite(const FaultSite &site)
{
    std::string out = site.component;
    if (site.cell >= 0)
        out += "[" + std::to_string(site.cell) + "]";
    out += ":" + std::to_string(site.bit) + ":" + site.mode;
    if (site.atCycle)
        out += "@" + std::to_string(site.cycle);
    return out;
}

void
validateFaultSite(const ResolvedSpec &rs, const FaultSite &site)
{
    FaultInjectorRegistry::global().get(site.mode); // throws unknown
    if (site.bit < 0 || site.bit >= kMaxBits)
        throwBitRange(site.bit);

    const int mem = rs.memIndex(site.component);
    if (mem < 0 && rs.varSlot(site.component) < 0) {
        throw SpecError("Error. Component <" + site.component +
                        "> not found.");
    }

    if (site.cell >= 0) {
        if (mem < 0) {
            throw SpecError("Error. Component <" + site.component +
                            "> is not a memory; cell faults need a "
                            "memory.");
        }
        if (site.cell >= rs.mems[static_cast<size_t>(mem)].size) {
            throw SpecError(
                "Error. Fault cell " + std::to_string(site.cell) +
                " out of range for memory <" + site.component +
                "> (size " +
                std::to_string(rs.mems[static_cast<size_t>(mem)].size) +
                ").");
        }
        if (!site.atCycle)
            throwCellNeedsCycle(site.component);
    }

    if (site.atCycle && mem < 0) {
        throw SpecError("Error. Component <" + site.component +
                        "> holds no state; @cycle faults need a "
                        "memory (omit @cycle to splice a stuck "
                        "bit).");
    }
}

// ---------------------------------------------------------------------
// Compatibility wrapper
// ---------------------------------------------------------------------

Spec
injectStuckBit(const Spec &spec, const std::string &comp, int bit,
               StuckMode mode)
{
    return FaultInjectorRegistry::global()
        .get(mode == StuckMode::StuckAt0 ? "set0" : "set1")
        .splice(spec, comp, bit);
}

} // namespace asim
