/**
 * @file
 * Combinational dependency analysis and ordering (thesis `orderit`).
 *
 * ALUs and selectors form the combinational network: a component that
 * reads another ALU/selector's output must be evaluated after it.
 * Memories impose no ordering — their inputs are latched and their
 * outputs go through one-cycle-delay temporaries. The thesis used an
 * O(n^3) exchange sort; we use Kahn's algorithm with declaration-order
 * tie-breaking, which produces a valid order under exactly the same
 * dependency relation and reports circular dependencies with the full
 * residual component set.
 */

#ifndef ASIM_ANALYSIS_DEPGRAPH_HH
#define ASIM_ANALYSIS_DEPGRAPH_HH

#include <string>
#include <vector>

#include "lang/ast.hh"

namespace asim {

/** All expressions that feed component `c` (its inputs). */
std::vector<const Expr *> inputExprs(const Component &c);

/** True if component `a` depends on the output of component `b`
 *  (thesis `dependent`): some input expression of `a` references
 *  `b.name`. Memories never depend on anything for ordering. */
bool dependsOn(const Component &a, const Component &b);

/**
 * Topologically order the combinational components.
 *
 * @param comps all components, declaration order
 * @return indices into `comps` of the ALUs/selectors in a valid
 *         evaluation order (memories are not included)
 * @throws SpecError naming the components on a combinational cycle
 *         ("Error. Circular dependency with ...")
 */
std::vector<int> orderCombinational(const std::vector<Component> &comps);

} // namespace asim

#endif // ASIM_ANALYSIS_DEPGRAPH_HH
